package dtdinfer

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"dtdinfer/internal/corpus"
	"dtdinfer/internal/dtd"
)

// Snapshot equivalence properties over realistic corpora, exercised
// across both decoders and worker counts 1..8 (run under -race by make
// check): a summary saved and loaded through the public API must infer
// byte-identically to the extraction it came from, and K shard summaries
// merged in order must reproduce single-corpus ingestion exactly.

func equivCorpus() []string {
	docs := corpus.Protein(3, 60)
	return append(docs, corpus.Mondial(4, 30)...)
}

func ingestEquiv(t *testing.T, docs []string, decoder dtd.DecoderKind, workers int) *Extraction {
	t.Helper()
	readers := make([]io.Reader, len(docs))
	for i, d := range docs {
		readers[i] = strings.NewReader(d)
	}
	x := NewExtraction()
	opts := &dtd.IngestOptions{Decoder: decoder}
	if _, err := x.AddDocumentsParallelContext(context.Background(), readers, workers, opts, dtd.FailFast); err != nil {
		t.Fatalf("decoder=%s workers=%d: %v", decoder, workers, err)
	}
	return x
}

func corpusBytes(t *testing.T, x *Extraction) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCorpus(x, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotSaveLoadInferEquivalence(t *testing.T) {
	docs := equivCorpus()
	direct := ingestEquiv(t, docs, dtd.DecoderFast, 1)
	// Bytes first: inference itself warms the summary (model cache,
	// cleared dirty set), which is persisted state too.
	wantBytes := corpusBytes(t, direct)
	want, err := InferDTDFromExtraction(direct, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, decoder := range []dtd.DecoderKind{dtd.DecoderFast, dtd.DecoderStd} {
		for workers := 1; workers <= 8; workers++ {
			x := ingestEquiv(t, docs, decoder, workers)
			data := corpusBytes(t, x)
			if !bytes.Equal(data, wantBytes) {
				t.Errorf("decoder=%s workers=%d: summary bytes differ from sequential fast-decoder summary", decoder, workers)
			}
			loaded, err := ReadCorpus(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("decoder=%s workers=%d: %v", decoder, workers, err)
			}
			got, err := InferDTDFromExtraction(loaded, IDTD, nil)
			if err != nil {
				t.Fatalf("decoder=%s workers=%d: %v", decoder, workers, err)
			}
			if got.String() != want.String() {
				t.Errorf("decoder=%s workers=%d: DTD from loaded summary differs\ngot:\n%s\nwant:\n%s",
					decoder, workers, got, want)
			}
		}
	}
}

func TestSnapshotShardMergeEquivalence(t *testing.T) {
	docs := equivCorpus()
	direct := ingestEquiv(t, docs, dtd.DecoderFast, 1)
	wantBytes := corpusBytes(t, direct) // before inference warms the summary
	want, err := InferDTDFromExtraction(direct, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 7} {
		// Contiguous sharding: merging the shards in order replays the
		// single-corpus document order, which the summary's first-seen
		// sequence encoding (and hence byte identity) is defined over.
		// Each shard still builds its own symbol numbering from scratch;
		// the merge re-maps them.
		shardDocs := make([][]string, k)
		per := (len(docs) + k - 1) / k
		for i, d := range docs {
			shardDocs[i/per] = append(shardDocs[i/per], d)
		}
		var merged *Extraction
		for i, sd := range shardDocs {
			shard := ingestEquiv(t, sd, dtd.DecoderFast, 4)
			loaded, err := ReadCorpus(bytes.NewReader(corpusBytes(t, shard)))
			if err != nil {
				t.Fatalf("k=%d shard=%d: %v", k, i, err)
			}
			if merged == nil {
				merged = loaded
			} else {
				merged.MergeSummary(loaded)
			}
		}
		if got := corpusBytes(t, merged); !bytes.Equal(got, wantBytes) {
			t.Errorf("k=%d: merged summary bytes differ from single-corpus summary", k)
		}
		got, err := InferDTDFromExtraction(merged, IDTD, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("k=%d: DTD from merged shards differs\ngot:\n%s\nwant:\n%s", k, got, want)
		}
	}
}

func TestSaveLoadCorpusFiles(t *testing.T) {
	docs := equivCorpus()[:10]
	x := ingestEquiv(t, docs, dtd.DecoderFast, 1)
	path := t.TempDir() + "/c.corpus"
	if err := SaveCorpus(x, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := corpusBytes(t, loaded), corpusBytes(t, x); !bytes.Equal(got, want) {
		t.Error("file round trip is not byte-identical")
	}
	if _, err := LoadCorpus(path + ".missing"); err == nil {
		t.Error("missing file loaded cleanly")
	}
}
