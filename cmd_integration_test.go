package dtdinfer

// Integration tests for the command-line tools: each binary is built once
// into a temporary directory and driven through its primary flows,
// including failure exit codes.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "dtdinfer-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"dtdinfer", "dtdmerge", "dtdvalidate", "dtddiff", "xmlgen", "experiments", "dtdserved"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("building %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Skipf("cannot build tools: %v", buildErr)
	}
	return binDir
}

func runTool(t *testing.T, name string, stdin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	code := 0
	if exit, ok := err.(*exec.ExitError); ok {
		code = exit.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return string(out), code
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIDtdinferFromStdin(t *testing.T) {
	out, code := runTool(t, "dtdinfer", `<a><b>1</b><b>2</b><c/></a>`)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	for _, want := range []string{"<!DOCTYPE a [", "<!ELEMENT a (b+,c)>", "<!ELEMENT c EMPTY>"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIDtdinferXSDAndAlgos(t *testing.T) {
	dir := t.TempDir()
	doc := writeFile(t, dir, "d.xml", `<r><x>7</x><x>8</x></r>`)
	out, code := runTool(t, "dtdinfer", "", "-format", "xsd", doc)
	if code != 0 || !strings.Contains(out, `<xs:schema`) {
		t.Fatalf("xsd output broken (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, `type="xs:integer"`) {
		t.Errorf("datatype detection missing:\n%s", out)
	}
	for _, algo := range []string{"crx", "xtract", "trang", "stateelim"} {
		out, code = runTool(t, "dtdinfer", "", "-algo", algo, doc)
		if code != 0 {
			t.Errorf("algo %s failed (exit %d): %s", algo, code, out)
		}
	}
	if _, code = runTool(t, "dtdinfer", "", "-algo", "nope", doc); code == 0 {
		t.Error("unknown algorithm must fail")
	}
}

func TestCLIValidateAndDiff(t *testing.T) {
	dir := t.TempDir()
	schema := writeFile(t, dir, "s.dtd", `<!DOCTYPE r [
<!ELEMENT r (x+)>
<!ELEMENT x (#PCDATA)>
]>`)
	good := writeFile(t, dir, "good.xml", `<r><x>1</x></r>`)
	bad := writeFile(t, dir, "bad.xml", `<r></r>`)
	out, code := runTool(t, "dtdvalidate", "", "-dtd", schema, good)
	if code != 0 || !strings.Contains(out, "valid") {
		t.Errorf("good doc: exit %d, %s", code, out)
	}
	out, code = runTool(t, "dtdvalidate", "", "-dtd", schema, bad)
	if code != 1 || !strings.Contains(out, "do not match") {
		t.Errorf("bad doc: exit %d, %s", code, out)
	}

	schema2 := writeFile(t, dir, "s2.dtd", `<!DOCTYPE r [
<!ELEMENT r (x*)>
<!ELEMENT x (#PCDATA)>
]>`)
	out, code = runTool(t, "dtddiff", "", schema, schema2)
	if code != 1 || !strings.Contains(out, "r: stricter") {
		t.Errorf("diff: exit %d, %s", code, out)
	}
	out, code = runTool(t, "dtddiff", "", schema, schema)
	if code != 0 || !strings.Contains(out, "equivalent") {
		t.Errorf("self diff: exit %d, %s", code, out)
	}
}

func TestCLIXmlgenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	schema := writeFile(t, dir, "s.dtd", `<!DOCTYPE r [
<!ELEMENT r (x+,y?)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y EMPTY>
]>`)
	out, code := runTool(t, "xmlgen", "", "-dtd", schema, "-n", "5", "-seed", "3")
	if code != 0 {
		t.Fatalf("xmlgen: exit %d, %s", code, out)
	}
	docs := strings.Split(strings.TrimSpace(out), "\n")
	if len(docs) != 5 {
		t.Fatalf("got %d documents", len(docs))
	}
	// Every generated document validates against the schema it came from.
	for _, doc := range docs {
		path := writeFile(t, dir, "gen.xml", doc)
		if _, code := runTool(t, "dtdvalidate", "", "-dtd", schema, path); code != 0 {
			t.Errorf("generated document invalid: %s", doc)
		}
	}
	// String generation from an expression.
	out, code = runTool(t, "xmlgen", "", "-expr", "(a|b)+,c", "-n", "4")
	if code != 0 || len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("expr generation: exit %d, %s", code, out)
	}
}

func TestCLIExperimentsConciseness(t *testing.T) {
	out, code := runTool(t, "experiments", "", "-exp", "conciseness")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "((b? (a + c))+ d)+ e") || !strings.Contains(out, "blow-up factor") {
		t.Errorf("conciseness output broken:\n%s", out)
	}
	if _, code := runTool(t, "experiments", "", "-exp", "bogus"); code == 0 {
		t.Error("unknown experiment must fail")
	}
}

func TestCLIDtdinferSkipMalformedAndStats(t *testing.T) {
	dir := t.TempDir()
	good1 := writeFile(t, dir, "g1.xml", `<r><x>1</x><y/></r>`)
	bad := writeFile(t, dir, "bad.xml", `<r><x>broken</r>`)
	good2 := writeFile(t, dir, "g2.xml", `<r><x>2</x><x>3</x></r>`)

	// Fail-fast (the default) aborts on the malformed file.
	out, code := runTool(t, "dtdinfer", "", good1, bad, good2)
	if code == 0 {
		t.Fatalf("malformed input must fail by default:\n%s", out)
	}
	if !strings.Contains(out, "bad.xml") {
		t.Errorf("error does not name the failing file:\n%s", out)
	}

	// Skip-and-record infers from the documents that parsed and reports
	// the rejection in the stats.
	out, code = runTool(t, "dtdinfer", "", "-skip-malformed", "-stats", good1, bad, good2)
	if code != 0 {
		t.Fatalf("skip-malformed failed (exit %d):\n%s", code, out)
	}
	for _, want := range []string{"<!ELEMENT r (x+,y?)>", "ingested 2/3 documents (1 rejected)", "bad.xml", "inferred"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The skipped document does not change the result.
	clean, code := runTool(t, "dtdinfer", "", good1, good2)
	if code != 0 || !strings.Contains(out, strings.TrimSpace(clean[:strings.Index(clean, "\n")])) {
		t.Errorf("skip run diverges from clean run:\n%s\nvs\n%s", out, clean)
	}
}

func TestCLIDtdinferDecodingCaps(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	for i := 0; i < 5000; i++ {
		b.WriteString("<d>")
	}
	for i := 0; i < 5000; i++ {
		b.WriteString("</d>")
	}
	deep := writeFile(t, dir, "deep.xml", b.String())
	out, code := runTool(t, "dtdinfer", "", "-max-depth", "100", deep)
	if code == 0 || !strings.Contains(out, "depth") {
		t.Errorf("depth cap not enforced (exit %d):\n%s", code, out)
	}
	out, code = runTool(t, "dtdinfer", "", "-max-bytes", "64", deep)
	if code == 0 || !strings.Contains(out, "bytes") {
		t.Errorf("byte cap not enforced (exit %d):\n%s", code, out)
	}
	// Within caps the document is accepted.
	if out, code = runTool(t, "dtdinfer", "", "-hardened", deep); code != 0 {
		t.Errorf("hardened defaults rejected a sane document (exit %d):\n%s", code, out)
	}
}

func TestCLIDtdvalidateIDREFAndCaps(t *testing.T) {
	dir := t.TempDir()
	schema := writeFile(t, dir, "ref.dtd", `<!DOCTYPE db [
<!ELEMENT db (rec|ref)*>
<!ELEMENT rec EMPTY>
<!ELEMENT ref EMPTY>
<!ATTLIST rec id ID #REQUIRED>
<!ATTLIST ref to IDREF #REQUIRED>
]>`)
	ok := writeFile(t, dir, "ok.xml", `<db><ref to="a"/><rec id="a"/></db>`)
	dangling := writeFile(t, dir, "dangling.xml", `<db><rec id="a"/><ref to="zzz"/></db>`)
	out, code := runTool(t, "dtdvalidate", "", "-dtd", schema, ok)
	if code != 0 || !strings.Contains(out, "valid") {
		t.Errorf("forward reference must validate (exit %d):\n%s", code, out)
	}
	out, code = runTool(t, "dtdvalidate", "", "-dtd", schema, dangling)
	if code != 1 || !strings.Contains(out, "does not match any ID") {
		t.Errorf("dangling IDREF not reported (exit %d):\n%s", code, out)
	}
	deep := writeFile(t, dir, "deep.xml",
		strings.Repeat("<db>", 2000)+strings.Repeat("</db>", 2000))
	out, code = runTool(t, "dtdvalidate", "", "-dtd", schema, "-max-depth", "50", deep)
	if code != 1 || !strings.Contains(out, "depth") {
		t.Errorf("validator depth cap not enforced (exit %d):\n%s", code, out)
	}
}

func TestCLIDtddiffChangeFeed(t *testing.T) {
	dir := t.TempDir()
	v3 := writeFile(t, dir, "v3.dtd", `<!DOCTYPE r [
<!ELEMENT r (x+)>
<!ELEMENT x (#PCDATA)>
]>`)
	v4 := writeFile(t, dir, "v4.dtd", `<!DOCTYPE r [
<!ELEMENT r (x*,y?)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y EMPTY>
]>`)
	out, code := runTool(t, "dtddiff", "", "-feed", "-from", "3", v3, v4)
	if code != 1 {
		t.Errorf("changed feed must exit 1, got %d:\n%s", code, out)
	}
	for _, want := range []string{"v3→v4:", "modified <r>", "added <y>"} {
		if !strings.Contains(out, want) {
			t.Errorf("feed missing %q:\n%s", want, out)
		}
	}
	out, code = runTool(t, "dtddiff", "", "-feed", "-from", "4", "-to", "7", v4, v4)
	if code != 0 || !strings.Contains(out, "v4→v7: no changes") {
		t.Errorf("self feed: exit %d:\n%s", code, out)
	}
}

func TestCLIDtdinferStatsCacheLine(t *testing.T) {
	dir := t.TempDir()
	doc := writeFile(t, dir, "d.xml", `<r><x>1</x><y/></r>`)
	out, code := runTool(t, "dtdinfer", "", "-stats", doc)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "cache:") || !strings.Contains(out, "dirty elements") {
		t.Errorf("stats output missing cache counters:\n%s", out)
	}
}

// TestCLICorpusSaveLoad: -save-corpus then -load-corpus reproduces the
// direct run's DTD exactly, and a load-only run reads nothing from stdin.
func TestCLICorpusSaveLoad(t *testing.T) {
	dir := t.TempDir()
	d1 := writeFile(t, dir, "d1.xml", `<db><rec id="a1"><name>n</name></rec></db>`)
	d2 := writeFile(t, dir, "d2.xml", `<db><rec id="a2"><name>n</name><name>m</name></rec></db>`)
	corpus := filepath.Join(dir, "all.corpus")

	want, code := runTool(t, "dtdinfer", "", d1, d2)
	if code != 0 {
		t.Fatalf("direct run exit %d:\n%s", code, want)
	}
	if out, code := runTool(t, "dtdinfer", "", "-save-corpus", corpus, "-no-infer", d1, d2); code != 0 {
		t.Fatalf("save exit %d:\n%s", code, out)
	}
	// Stdin deliberately holds a document that would change the DTD; a
	// load-only run must ignore it.
	got, code := runTool(t, "dtdinfer", `<other/>`, "-load-corpus", corpus)
	if code != 0 {
		t.Fatalf("load exit %d:\n%s", code, got)
	}
	if got != want {
		t.Errorf("load-corpus run differs from direct run:\n got %s\nwant %s", got, want)
	}

	// Incremental top-up: loading the d1-only summary and ingesting d2
	// matches the direct two-document run.
	half := filepath.Join(dir, "half.corpus")
	if out, code := runTool(t, "dtdinfer", "", "-save-corpus", half, "-no-infer", d1); code != 0 {
		t.Fatalf("save half exit %d:\n%s", code, out)
	}
	got, code = runTool(t, "dtdinfer", "", "-load-corpus", half, d2)
	if code != 0 {
		t.Fatalf("incremental exit %d:\n%s", code, got)
	}
	if got != want {
		t.Errorf("load+ingest differs from direct run:\n got %s\nwant %s", got, want)
	}

	if out, code := runTool(t, "dtdinfer", "", "-context", "1", "-save-corpus", corpus, d1); code == 0 {
		t.Errorf("-context with -save-corpus accepted:\n%s", out)
	}
	if out, code := runTool(t, "dtdinfer", "", "-load-corpus", filepath.Join(dir, "missing.corpus")); code == 0 {
		t.Errorf("missing corpus file accepted:\n%s", out)
	}
	garbage := writeFile(t, dir, "garbage.corpus", "DTDS\x01 not a snapshot")
	if out, code := runTool(t, "dtdinfer", "", "-load-corpus", garbage); code == 0 {
		t.Errorf("corrupt corpus accepted:\n%s", out)
	}
}

// TestCLIDtdmerge: shard summaries merged by dtdmerge infer the same DTD
// as a single run over all documents, and -o round-trips the merge.
func TestCLIDtdmerge(t *testing.T) {
	dir := t.TempDir()
	docs := []string{
		`<db><rec id="a1" kind="x"><name>n</name></rec></db>`,
		`<db><rec id="a2" kind="y"><name>n</name><name>m</name></rec></db>`,
		`<db><note>t <b>b</b></note></db>`,
	}
	var files, shards []string
	for i, doc := range docs {
		f := writeFile(t, dir, fmt.Sprintf("d%d.xml", i), doc)
		files = append(files, f)
		shard := filepath.Join(dir, fmt.Sprintf("s%d.corpus", i))
		if out, code := runTool(t, "dtdinfer", "", "-save-corpus", shard, "-no-infer", f); code != 0 {
			t.Fatalf("shard %d exit %d:\n%s", i, code, out)
		}
		shards = append(shards, shard)
	}
	want, code := runTool(t, "dtdinfer", "", files...)
	if code != 0 {
		t.Fatalf("direct run exit %d:\n%s", code, want)
	}
	got, code := runTool(t, "dtdmerge", "", shards...)
	if code != 0 {
		t.Fatalf("dtdmerge exit %d:\n%s", code, got)
	}
	if got != want {
		t.Errorf("dtdmerge DTD differs from single-run DTD:\n got %s\nwant %s", got, want)
	}

	merged := filepath.Join(dir, "merged.corpus")
	if out, code := runTool(t, "dtdmerge", "", append([]string{"-o", merged, "-no-infer"}, shards...)...); code != 0 {
		t.Fatalf("merge -o exit %d:\n%s", code, out)
	}
	got, code = runTool(t, "dtdinfer", "", "-load-corpus", merged)
	if code != 0 {
		t.Fatalf("load merged exit %d:\n%s", code, got)
	}
	if got != want {
		t.Errorf("merged summary infers differently:\n got %s\nwant %s", got, want)
	}

	if out, code := runTool(t, "dtdmerge", ""); code == 0 {
		t.Errorf("dtdmerge with no arguments accepted:\n%s", out)
	}
}
