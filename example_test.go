package dtdinfer_test

import (
	"fmt"
	"io"
	"strings"

	"dtdinfer"
)

func docs(srcs ...string) []io.Reader {
	out := make([]io.Reader, len(srcs))
	for i, s := range srcs {
		out[i] = strings.NewReader(s)
	}
	return out
}

// Inferring a DTD from documents with iDTD, the paper's SORE engine.
func ExampleInferDTD() {
	d, err := dtdinfer.InferDTD(docs(
		`<library><book><title>A</title><author>X</author><author>Y</author></book></library>`,
		`<library><book><title>B</title></book></library>`,
	), dtdinfer.IDTD, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	// Output:
	// <!DOCTYPE library [
	// <!ELEMENT author (#PCDATA)>
	// <!ELEMENT book (title,author*)>
	// <!ELEMENT library (book)>
	// <!ELEMENT title (#PCDATA)>
	// ]>
}

// Learning a single content model from positive example strings; the
// sample here is the paper's running example, recovered as the SORE
// ((b?(a+c))+d)+e of Figures 1-3.
func ExampleInferContentModel() {
	sample := [][]string{
		{"b", "a", "c", "a", "c", "d", "a", "c", "d", "e"},
		{"c", "b", "a", "c", "d", "b", "a", "c", "d", "e"},
		{"a", "b", "c", "c", "a", "a", "d", "c", "d", "e"},
	}
	e, err := dtdinfer.InferContentModel(sample, dtdinfer.IDTD, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(e.DTDString())
	// Output:
	// ((b?,(a|c))+,d)+,e
}

// CRX generalizes from very few strings — the sparse-data setting.
func ExampleInferContentModel_crx() {
	sample := [][]string{
		{"a", "b", "d"},
		{"b", "c", "d", "e", "e"},
		{"c", "a", "d", "e"},
	}
	e, err := dtdinfer.InferContentModel(sample, dtdinfer.CRX, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(e)
	// Output:
	// (a + b + c)+ d e*
}

// Validating documents against an inferred schema.
func ExampleNewValidator() {
	d, err := dtdinfer.ParseDTD(`<!DOCTYPE r [
<!ELEMENT r (x+)>
<!ELEMENT x (#PCDATA)>
]>`)
	if err != nil {
		panic(err)
	}
	v := dtdinfer.NewValidator(d)
	fmt.Println(v.ValidDocument(`<r><x>1</x></r>`))
	fmt.Println(v.ValidDocument(`<r></r>`))
	// Output:
	// true
	// false
}

// Incremental CHARE inference: summarize batches, merge, infer.
func ExampleNewIncrementalCRX() {
	inc := dtdinfer.NewIncrementalCRX()
	inc.AddString([]string{"customer", "item", "total"})
	inc.AddString([]string{"customer", "item", "item", "total"})

	later := dtdinfer.NewIncrementalCRX()
	later.AddString([]string{"customer", "total"})
	inc.Merge(later)

	res, err := inc.Infer()
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Expr)
	// Output:
	// customer item* total
}
