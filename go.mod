module dtdinfer

go 1.22
