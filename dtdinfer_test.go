package dtdinfer

import (
	"io"
	"strings"
	"testing"

	"dtdinfer/internal/corpus"
)

var quickDocs = []string{
	`<library><book><title>A</title><author>X</author><author>Y</author></book></library>`,
	`<library><book><title>B</title></book><book><title>C</title><author>Z</author><isbn>1</isbn></book></library>`,
}

func readers(docs []string) []io.Reader {
	out := make([]io.Reader, len(docs))
	for i, d := range docs {
		out[i] = strings.NewReader(d)
	}
	return out
}

func TestInferDTDEndToEnd(t *testing.T) {
	d, err := InferDTD(readers(quickDocs), IDTD, nil)
	if err != nil {
		t.Fatalf("InferDTD: %v", err)
	}
	if d.Root != "library" {
		t.Errorf("root = %s", d.Root)
	}
	// iDTD is more precise than a chain: isbn was only ever seen after at
	// least one author, and the SORE keeps that.
	if got := d.Elements["book"].Model.String(); got != "title (author+ isbn?)?" {
		t.Errorf("book model = %q", got)
	}
	dc, err := InferDTD(readers(quickDocs), CRX, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.Elements["book"].Model.String(); got != "title author* isbn?" {
		t.Errorf("CRX book model = %q", got)
	}
	// The inferred DTD validates the training documents.
	v := NewValidator(d)
	for _, doc := range quickDocs {
		if !v.ValidDocument(doc) {
			t.Errorf("inferred DTD rejects training document %q", doc)
		}
	}
	// Round trip through the DTD text form.
	d2, err := ParseDTD(d.String())
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	if !d.Equal(d2) {
		t.Error("DTD text round trip changed the schema")
	}
}

func TestInferDTDAllAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{IDTD, CRX, XTRACT, TrangLike, StateElim} {
		d, err := InferDTD(readers(quickDocs), algo, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		v := NewValidator(d)
		for _, doc := range quickDocs {
			if !v.ValidDocument(doc) {
				t.Errorf("%s: inferred DTD rejects a training document", algo)
			}
		}
	}
}

func TestInferContentModel(t *testing.T) {
	sample := [][]string{{"a", "b"}, {"a", "b", "b"}, {"a"}}
	e, err := InferContentModel(sample, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "a b*" {
		t.Errorf("model = %q", e)
	}
}

func TestInferXSDEndToEnd(t *testing.T) {
	out, err := InferXSD(readers(quickDocs), IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`<xs:schema`, `<xs:element name="book">`,
		`<xs:element name="isbn" type="xs:integer"/>`} {
		if !strings.Contains(out, want) {
			t.Errorf("XSD missing %q\n%s", want, out)
		}
	}
}

func TestIncrementalCRXFacade(t *testing.T) {
	inc := NewIncrementalCRX()
	inc.AddString([]string{"a", "b"})
	later := NewIncrementalCRX()
	later.AddString([]string{"a"})
	inc.Merge(later)
	res, err := inc.Infer()
	if err != nil {
		t.Fatal(err)
	}
	if res.Expr.String() != "a b?" {
		t.Errorf("incremental result = %q", res.Expr)
	}
}

func TestParseAlgorithm(t *testing.T) {
	if _, err := ParseAlgorithm("idtd"); err != nil {
		t.Error(err)
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

func TestProteinCorpusEndToEnd(t *testing.T) {
	docs := corpus.Protein(1, 60)
	d, err := InferDTD(corpus.Documents(docs), IDTD, nil)
	if err != nil {
		t.Fatalf("InferDTD: %v", err)
	}
	// The schema-cleaning observation of Section 1.1: the corpus supports
	// (volume|month), stricter than the published volume?,month?.
	model := d.Elements["refinfo"].Model.String()
	if strings.Contains(model, "volume? month?") || strings.Contains(model, "volume?  month?") {
		t.Errorf("refinfo model not tightened: %q", model)
	}
	v := NewValidator(d)
	for _, doc := range docs {
		if !v.ValidDocument(doc) {
			t.Fatal("inferred DTD rejects a corpus document")
		}
	}
	// The published (looser) DTD also validates the corpus.
	pub := corpus.ProteinDTD()
	pv := NewValidator(pub)
	for _, doc := range docs {
		if !pv.ValidDocument(doc) {
			t.Fatal("published DTD rejects a corpus document")
		}
	}
}

func TestXSDRoundTripThroughFacade(t *testing.T) {
	d, err := InferDTD(readers(quickDocs), IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseXSD(GenerateXSD(d, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(back) {
		t.Errorf("facade XSD round trip changed the DTD:\n%s\nvs\n%s", d, back)
	}
}

func TestAttributeInferenceThroughFacade(t *testing.T) {
	docs := []string{
		`<m><s id="a1" state="on"/><s id="a2" state="off"/></m>`,
		`<m><s id="a3" state="on"/><s id="a4" state="off"/></m>`,
	}
	d, err := InferDTD(readers(docs), IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := d.String()
	for _, want := range []string{"<!ATTLIST s id ID #REQUIRED>", "<!ATTLIST s state (off|on) #REQUIRED>"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in\n%s", want, text)
		}
	}
}

func TestIncrementalSOAFacade(t *testing.T) {
	inc := NewIncrementalSOA()
	inc.AddString([]string{"a", "b"})
	later := NewIncrementalSOA()
	later.AddString([]string{"a", "b", "b"})
	inc.Merge(later)
	e, err := InferSORE(inc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "a b+" {
		t.Errorf("incremental SORE = %q", e)
	}
}

func TestContextualSchemaThroughFacade(t *testing.T) {
	docs := []string{
		`<store><book><name><title>T</title></name><author><name><first>A</first><last>B</last></name></author></book></store>`,
		`<store><book><name><title>U</title></name><author><name><first>C</first><last>D</last></name></author></book></store>`,
	}
	s, err := InferContextualSchema(readers(docs), 1, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.IsDTDExpressible() {
		t.Fatalf("name must get two types:\n%s", s)
	}
	v := NewContextualValidator(s)
	for _, doc := range docs {
		if !v.ValidDocument(doc) {
			t.Error("training document rejected")
		}
	}
	if !strings.Contains(s.ToXSD(), `<xs:complexType name="t-name.1">`) {
		t.Error("XSD emission broken")
	}
}

func TestInferDTDWithReportPublicAPI(t *testing.T) {
	want, err := InferDTD(readers(quickDocs), IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := append(readers(quickDocs[:1]),
		strings.NewReader(`<library><book><title>bad</library>`))
	batch = append(batch, readers(quickDocs[1:])...)
	d, report, stats, err := InferDTDWithReport(batch, IDTD, nil, DefaultIngestOptions(), SkipAndRecord)
	if err != nil {
		t.Fatalf("skip policy must not error: %v", err)
	}
	if !d.Equal(want) {
		t.Errorf("DTD with skipped malformed document differs:\n%s\nvs\n%s", d, want)
	}
	if report.Accepted != 2 || report.Rejected != 1 || len(report.Errors) != 1 {
		t.Errorf("report = %+v", report)
	}
	if report.Errors[0].Index != 1 {
		t.Errorf("error index = %d, want 1", report.Errors[0].Index)
	}
	if stats == nil || len(stats.PerElement) == 0 {
		t.Error("missing inference timings")
	}
}

func TestIngestOptionsRejectDeepNesting(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100_000; i++ {
		b.WriteString("<d>")
	}
	// Never closed: the depth cap must fire long before EOF handling.
	x := NewExtraction()
	err := x.AddDocumentOptions(strings.NewReader(b.String()), DefaultIngestOptions())
	if err == nil {
		t.Fatal("deep nesting must be rejected")
	}
	if !strings.Contains(err.Error(), "depth") {
		t.Errorf("error does not describe the cap: %v", err)
	}
}
