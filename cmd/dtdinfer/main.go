// Command dtdinfer infers a concise DTD (or XML Schema) from XML documents.
//
// Usage:
//
//	dtdinfer [-algo idtd|crx|xtract|trang|stateelim] [-format dtd|xsd]
//	         [-numeric] [-noise N] file.xml [file2.xml ...]
//
// With no files, one document is read from standard input. The default
// algorithm is iDTD; use -algo crx when only a few documents are available.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dtdinfer/internal/contextual"
	"dtdinfer/internal/core"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/xsd"
)

func main() {
	algoName := flag.String("algo", "idtd", "inference algorithm: idtd, crx, rewrite, xtract, trang or stateelim")
	format := flag.String("format", "dtd", "output format: dtd or xsd")
	numeric := flag.Bool("numeric", false, "refine repetitions to {m,n} bounds from the data (Section 9)")
	noise := flag.Int("noise", 0, "iDTD noise threshold: drop edges supported by at most N strings when stuck")
	contextK := flag.Int("context", 0, "infer a contextual schema with k ancestor names of typing context (0 = plain DTD)")
	flag.Parse()

	algo, err := core.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	opts := &core.Options{NumericPredicates: *numeric}
	opts.IDTD.NoiseThreshold = *noise

	if *contextK > 0 {
		runContextual(*contextK, algo, opts, *format)
		return
	}

	x := dtd.NewExtraction()
	if flag.NArg() == 0 {
		if err := x.AddDocument(os.Stdin); err != nil {
			fatal(fmt.Errorf("stdin: %w", err))
		}
	}
	for _, name := range flag.Args() {
		if err := addFile(x, name); err != nil {
			fatal(err)
		}
	}
	d, err := core.InferDTDFromExtraction(x, algo, opts)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "dtd":
		fmt.Println(d)
	case "xsd":
		fmt.Print(xsd.Generate(d, x.TextSamples))
	default:
		fatal(fmt.Errorf("unknown format %q (want dtd or xsd)", *format))
	}
}

// runContextual infers a k-local contextual schema instead of a DTD.
func runContextual(k int, algo core.Algorithm, opts *core.Options, format string) {
	x := contextual.NewExtraction(k)
	add := func(r io.Reader, label string) {
		if err := x.AddDocument(r); err != nil {
			fatal(fmt.Errorf("%s: %w", label, err))
		}
	}
	if flag.NArg() == 0 {
		add(os.Stdin, "stdin")
	}
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		add(f, name)
		f.Close()
	}
	s, err := x.InferSchema(core.Inferrer(algo, opts))
	if err != nil {
		fatal(err)
	}
	switch format {
	case "dtd":
		fmt.Print(s)
		if !s.IsDTDExpressible() {
			fmt.Printf("(elements with context-dependent types: %v; flattened DTD below)\n",
				s.MultiTypeElements())
		}
		fmt.Println(s.ToDTD())
	case "xsd":
		fmt.Print(s.ToXSD())
	default:
		fatal(fmt.Errorf("unknown format %q (want dtd or xsd)", format))
	}
}

func addFile(x *dtd.Extraction, name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := x.AddDocument(io.Reader(f)); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtdinfer:", err)
	os.Exit(1)
}
