// Command dtdinfer infers a concise DTD (or XML Schema) from XML documents.
//
// Usage:
//
//	dtdinfer [-algo idtd|crx|xtract|trang|stateelim] [-format dtd|xsd]
//	         [-numeric] [-noise N] [-skip-malformed] [-stats] [-j N]
//	         [-decoder fast|std]
//	         [-max-depth N] [-max-tokens N] [-max-names N] [-max-bytes N]
//	         [-timeout D] [-max-soa-states N] [-max-expr-size N]
//	         [-degrade ladder|fail]
//	         [-save-corpus FILE] [-load-corpus FILE] [-no-infer]
//	         file.xml [file2.xml ...]
//
// With no files, one document is read from standard input. The default
// algorithm is iDTD; use -algo crx when only a few documents are available.
//
// Corpus summaries: -save-corpus writes the ingested corpus summary —
// counted samples, statistics, and (after inference) the memoized content
// models — to FILE; -load-corpus starts from such a summary instead of an
// empty corpus, ingesting any named documents on top (stdin is not read),
// so repeated runs over a growing corpus re-parse only the new documents
// and replay cached models for unchanged elements. -no-infer skips
// inference, for summarize-only shards; cmd/dtdmerge merges shard
// summaries and infers once.
//
// Ingestion is failure-atomic per document. By default a malformed document
// aborts the run (fail-fast); with -skip-malformed it is recorded, skipped,
// and inference proceeds over the documents that parsed. The -max-* flags
// cap decoding resources (0 = unlimited; -hardened applies production-safe
// defaults), rejecting XML bombs before they exhaust memory. -stats prints
// the ingestion report and per-element inference timings to standard error.
// -j shards document decoding across N worker goroutines (0 = GOMAXPROCS);
// the result is byte-identical at every worker count. -decoder selects the
// XML decoder: the default fast path is a zero-copy structure tokenizer,
// std is encoding/xml, kept as the reference oracle — both produce
// byte-identical extractions.
//
// Robustness: -timeout caps each element's inference wall clock,
// -max-soa-states and -max-expr-size cap the automaton and output sizes,
// and -degrade selects what happens when an element's engine fails, runs
// over budget, or panics. The default ladder falls back to CRX and then to
// the universal content model (a1|...|an)* so the run always produces a
// schema (degradations are listed by -stats); -degrade=fail aborts instead.
// An interrupt (Ctrl-C) cancels decoding and inference promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"dtdinfer/internal/contextual"
	"dtdinfer/internal/core"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/xsd"
)

func main() {
	algoName := flag.String("algo", "idtd", "inference algorithm: "+core.AlgorithmList())
	format := flag.String("format", "dtd", "output format: dtd or xsd")
	numeric := flag.Bool("numeric", false, "refine repetitions to {m,n} bounds from the data (Section 9)")
	noise := flag.Int("noise", 0, "iDTD noise threshold: drop edges supported by at most N strings when stuck")
	contextK := flag.Int("context", 0, "infer a contextual schema with k ancestor names of typing context (0 = plain DTD)")
	skipMalformed := flag.Bool("skip-malformed", false, "skip and record documents that fail to parse instead of aborting")
	stats := flag.Bool("stats", false, "print the ingestion report and per-element inference timings to stderr")
	hardened := flag.Bool("hardened", false, "apply production-safe decoding caps (overridden by explicit -max-* flags)")
	parallel := flag.Int("j", 0, "ingestion worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	decoderName := flag.String("decoder", "fast", "XML decoder: fast (zero-copy structure tokenizer) or std (encoding/xml)")
	maxDepth := flag.Int("max-depth", 0, "cap element nesting depth per document (0 = unlimited)")
	maxTokens := flag.Int64("max-tokens", 0, "cap XML tokens per document (0 = unlimited)")
	maxNames := flag.Int("max-names", 0, "cap distinct element names per document (0 = unlimited)")
	maxBytes := flag.Int64("max-bytes", 0, "cap input bytes per document (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "cap each element's inference wall clock (0 = unlimited)")
	maxSOAStates := flag.Int("max-soa-states", 0, "cap the automaton states an engine may process per element (0 = unlimited)")
	maxExprSize := flag.Int("max-expr-size", 0, "cap the token count of an inferred content model (0 = unlimited)")
	degrade := flag.String("degrade", "ladder", "on engine failure or exceeded budget: ladder (fall back to crx, then (a1|...|an)*) or fail")
	saveCorpus := flag.String("save-corpus", "", "write the corpus summary (samples, statistics, cached models) to FILE after ingestion")
	loadCorpus := flag.String("load-corpus", "", "start from the corpus summary in FILE instead of an empty corpus; named documents are ingested on top")
	noInfer := flag.Bool("no-infer", false, "skip inference and print nothing; use with -save-corpus to only summarize")
	flag.Parse()

	algo, err := core.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	opts := &core.Options{NumericPredicates: *numeric, Parallelism: *parallel}
	opts.IDTD.NoiseThreshold = *noise
	opts.Budget = core.Budget{
		Deadline:     *timeout,
		MaxSOAStates: *maxSOAStates,
		MaxExprSize:  *maxExprSize,
	}
	switch *degrade {
	case "ladder":
		opts.Degrade = core.DegradeLadder
	case "fail":
		opts.Degrade = core.DegradeFail
	default:
		fatal(fmt.Errorf("unknown -degrade mode %q (want ladder or fail)", *degrade))
	}

	ingest := &dtd.IngestOptions{}
	if *hardened {
		ingest = dtd.DefaultIngestOptions()
	}
	decoder, err := dtd.ParseDecoder(*decoderName)
	if err != nil {
		fatal(err)
	}
	ingest.Decoder = decoder
	if *maxDepth > 0 {
		ingest.MaxDepth = *maxDepth
	}
	if *maxTokens > 0 {
		ingest.MaxTokens = *maxTokens
	}
	if *maxNames > 0 {
		ingest.MaxNames = *maxNames
	}
	if *maxBytes > 0 {
		ingest.MaxBytes = *maxBytes
	}
	policy := dtd.FailFast
	if *skipMalformed {
		policy = dtd.SkipAndRecord
	}

	if *contextK > 0 {
		if *loadCorpus != "" || *saveCorpus != "" {
			fatal(fmt.Errorf("-load-corpus/-save-corpus apply to DTD corpora; they cannot be combined with -context"))
		}
		runContextual(*contextK, algo, opts, *format, ingest, policy, *stats)
		return
	}

	// An interrupt cancels the context; decoding workers and engine hot
	// loops observe it cooperatively and the run exits promptly with the
	// corpus state discarded rather than torn.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// With -load-corpus, the named files (possibly none) are ingested on
	// top of the loaded summary; stdin is only the implicit input when
	// starting from an empty corpus.
	var docs []dtd.Doc
	x := dtd.NewExtraction()
	if *loadCorpus != "" {
		if x, err = core.LoadCorpus(*loadCorpus); err != nil {
			fatal(err)
		}
		docs = openFileDocs()
	} else {
		docs = openDocs()
	}
	defer closeDocs(docs)
	report, err := x.AddDocsParallelContext(ctx, docs, opts.Parallelism, ingest, policy)
	if err != nil {
		if *stats {
			fmt.Fprintln(os.Stderr, report)
		}
		fatal(err)
	}
	save := func() {
		if *saveCorpus != "" {
			if err := core.SaveCorpus(x, *saveCorpus); err != nil {
				fatal(err)
			}
		}
	}
	if *noInfer {
		save()
		if *stats {
			fmt.Fprintln(os.Stderr, report)
		}
		return
	}
	d, inferStats, err := core.InferDTDFromExtractionContext(ctx, x, algo, opts)
	// Saved after inference, so the summary carries the memoized content
	// models and a later -load-corpus run starts warm.
	save()
	if *stats {
		fmt.Fprintln(os.Stderr, report)
		if inferStats != nil {
			fmt.Fprintln(os.Stderr, inferStats)
		}
	}
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "dtd":
		fmt.Println(d)
	case "xsd":
		fmt.Print(xsd.Generate(d, x.TextSamples))
	default:
		fatal(fmt.Errorf("unknown format %q (want dtd or xsd)", *format))
	}
}

// openDocs assembles the labeled inputs: stdin when no files are named.
func openDocs() []dtd.Doc {
	if flag.NArg() == 0 {
		return []dtd.Doc{{Label: "stdin", R: os.Stdin}}
	}
	return openFileDocs()
}

// openFileDocs opens exactly the named files — no stdin fallback.
func openFileDocs() []dtd.Doc {
	docs := make([]dtd.Doc, 0, flag.NArg())
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		docs = append(docs, dtd.Doc{Label: name, R: f})
	}
	return docs
}

func closeDocs(docs []dtd.Doc) {
	for _, d := range docs {
		if c, ok := d.R.(io.Closer); ok && d.R != os.Stdin {
			c.Close()
		}
	}
}

// runContextual infers a k-local contextual schema instead of a DTD, with
// the same decoding caps and fault-isolation policy as the DTD path.
func runContextual(k int, algo core.Algorithm, opts *core.Options, format string,
	ingest *dtd.IngestOptions, policy dtd.ErrorPolicy, stats bool) {
	docs := openDocs()
	defer closeDocs(docs)
	x := contextual.NewExtraction(k)
	accepted, rejected := 0, 0
	for _, doc := range docs {
		if err := x.AddDocumentOptions(doc.R, ingest); err != nil {
			if policy == dtd.FailFast {
				fatal(fmt.Errorf("%s: %w", doc.Label, err))
			}
			rejected++
			fmt.Fprintf(os.Stderr, "dtdinfer: skipped %s: %v\n", doc.Label, err)
			continue
		}
		accepted++
	}
	if stats {
		fmt.Fprintf(os.Stderr, "ingested %d/%d documents (%d rejected)\n",
			accepted, accepted+rejected, rejected)
	}
	s, err := x.InferSchema(core.Inferrer(algo, opts))
	if err != nil {
		fatal(err)
	}
	switch format {
	case "dtd":
		fmt.Print(s)
		if !s.IsDTDExpressible() {
			fmt.Printf("(elements with context-dependent types: %v; flattened DTD below)\n",
				s.MultiTypeElements())
		}
		fmt.Println(s.ToDTD())
	case "xsd":
		fmt.Print(s.ToXSD())
	default:
		fatal(fmt.Errorf("unknown format %q (want dtd or xsd)", format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtdinfer:", err)
	os.Exit(1)
}
