// Command dtdserved is the schema service daemon: named per-tenant
// corpora behind an HTTP API, each serving its current inferred DTD/XSD
// and validating documents from an immutable published snapshot while
// ingestion advances the next version through a bounded queue.
//
//	dtdserved [-listen ADDR] [-data DIR]
//	          [-algo idtd|crx|xtract|trang|stateelim] [-numeric] [-noise N]
//	          [-timeout D] [-max-soa-states N] [-max-expr-size N]
//	          [-degrade ladder|fail] [-j N]
//	          [-queue N] [-request-timeout D] [-drain-timeout D]
//	          [-persist-interval D] [-max-body BYTES]
//
// On SIGTERM or SIGINT the daemon drains: new requests are refused with
// 503 while in-flight ones complete, queues flush, every dirty tenant
// persists a final summary, and the process exits 0 — or 1 when the
// drain deadline expires, or 3 when a final persist failed (serving was
// clean but durability is behind). On startup each tenant recovers from
// its last summary under -data; a corrupt summary is quarantined and
// the tenant starts empty rather than blocking boot.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dtdinfer/internal/core"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8391", "listen address (host:port; port 0 picks a free port)")
	dataDir := flag.String("data", "", "directory for durable tenant summaries (empty = in-memory only)")
	algoName := flag.String("algo", "idtd", "inference algorithm: "+core.AlgorithmList())
	numeric := flag.Bool("numeric", false, "refine repetitions to {m,n} bounds from the data (Section 9)")
	noise := flag.Int("noise", 0, "iDTD noise threshold: drop edges supported by at most N strings when stuck")
	timeout := flag.Duration("timeout", 0, "cap each element's inference wall clock (0 = unlimited)")
	maxSOAStates := flag.Int("max-soa-states", 0, "cap the automaton states an engine may process per element (0 = unlimited)")
	maxExprSize := flag.Int("max-expr-size", 0, "cap the token count of an inferred content model (0 = unlimited)")
	degrade := flag.String("degrade", "ladder", "on engine failure or exceeded budget: ladder (fall back to crx, then (a1|...|an)*) or fail")
	parallelism := flag.Int("j", 0, "ingestion worker goroutines per batch (0 = GOMAXPROCS)")
	queueSize := flag.Int("queue", 64, "per-tenant ingest queue bound (full queue answers 429)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request handler deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "total drain deadline on SIGTERM")
	persistInterval := flag.Duration("persist-interval", 15*time.Second, "dirty-tenant auto-persist period (<0 disables)")
	maxBody := flag.Int64("max-body", 32<<20, "request body cap in bytes")
	maxDepth := flag.Int("max-depth", 0, "decoder cap: element nesting depth per document (0 = unlimited)")
	maxTokens := flag.Int64("max-tokens", 0, "decoder cap: XML tokens per document (0 = unlimited)")
	maxNames := flag.Int("max-names", 0, "decoder cap: distinct element names per document (0 = unlimited)")
	maxBytes := flag.Int64("max-bytes", 0, "decoder cap: bytes per document (0 = unlimited)")
	flag.Parse()

	logger := log.New(os.Stderr, "dtdserved: ", log.LstdFlags)
	algo, err := core.ParseAlgorithm(*algoName)
	if err != nil {
		logger.Fatal(err)
	}
	opts := core.Options{NumericPredicates: *numeric, Parallelism: *parallelism}
	opts.IDTD.NoiseThreshold = *noise
	opts.Budget = core.Budget{Deadline: *timeout, MaxSOAStates: *maxSOAStates, MaxExprSize: *maxExprSize}
	switch *degrade {
	case "ladder":
		opts.Degrade = core.DegradeLadder
	case "fail":
		opts.Degrade = core.DegradeFail
	default:
		logger.Fatalf("-degrade must be ladder or fail, got %q", *degrade)
	}
	var ingest *dtd.IngestOptions
	if *maxDepth != 0 || *maxTokens != 0 || *maxNames != 0 || *maxBytes != 0 {
		ingest = &dtd.IngestOptions{MaxDepth: *maxDepth, MaxTokens: *maxTokens, MaxNames: *maxNames, MaxBytes: *maxBytes}
	}

	srv, err := server.New(server.Config{
		Algo:            algo,
		Opts:            opts,
		Ingest:          ingest,
		DataDir:         *dataDir,
		QueueSize:       *queueSize,
		RequestTimeout:  *requestTimeout,
		PersistInterval: *persistInterval,
		MaxBodyBytes:    *maxBody,
		Logf:            logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	// The listening line is the readiness signal scripts and tests key
	// on; with port 0 it is also where the chosen port appears.
	fmt.Printf("dtdserved: listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Printf("received %v, draining (deadline %v)", sig, *drainTimeout)
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	}

	// Drain, in the order the server contract requires: refuse new
	// requests, let in-flight ones finish (workers still running), then
	// flush queues and persist.
	deadline := time.Now().Add(*drainTimeout)
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("listener shutdown: %v", err)
		os.Exit(1)
	}
	err = srv.Close(time.Until(deadline))
	switch {
	case err == nil:
		logger.Printf("drained cleanly")
		os.Exit(0)
	case err == server.ErrDrainTimeout:
		logger.Printf("drain deadline exceeded")
		os.Exit(1)
	default:
		logger.Printf("drained, but: %v", err)
		os.Exit(3)
	}
}
