// Command dtdvalidate checks XML documents against a DTD and reports every
// violation, the "automatic validation" application motivating schema
// inference in the paper's introduction.
//
// Usage:
//
//	dtdvalidate -dtd schema.dtd [-hardened] [-max-depth N] [-max-bytes N]
//	            file.xml [file2.xml ...]
//
// The exit status is 1 when any document is invalid. The -max-* flags cap
// decoding resources per document (0 = unlimited; -hardened applies
// production-safe defaults), so a decoding bomb is reported as malformed
// instead of exhausting memory.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdinfer/internal/dtd"
)

func main() {
	dtdFile := flag.String("dtd", "", "DTD file to validate against")
	hardened := flag.Bool("hardened", false, "apply production-safe decoding caps (overridden by explicit -max-* flags)")
	maxDepth := flag.Int("max-depth", 0, "cap element nesting depth per document (0 = unlimited)")
	maxTokens := flag.Int64("max-tokens", 0, "cap XML tokens per document (0 = unlimited)")
	maxBytes := flag.Int64("max-bytes", 0, "cap input bytes per document (0 = unlimited)")
	flag.Parse()
	if *dtdFile == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ingest := &dtd.IngestOptions{}
	if *hardened {
		ingest = dtd.DefaultIngestOptions()
	}
	if *maxDepth > 0 {
		ingest.MaxDepth = *maxDepth
	}
	if *maxTokens > 0 {
		ingest.MaxTokens = *maxTokens
	}
	if *maxBytes > 0 {
		ingest.MaxBytes = *maxBytes
	}
	src, err := os.ReadFile(*dtdFile)
	if err != nil {
		fatal(err)
	}
	d, err := dtd.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	v := dtd.NewValidator(d)
	bad := 0
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		violations, err := v.ValidateOptions(f, ingest)
		f.Close()
		if err != nil {
			fmt.Printf("%s: malformed: %v\n", name, err)
			bad++
			continue
		}
		if len(violations) == 0 {
			fmt.Printf("%s: valid\n", name)
			continue
		}
		bad++
		for _, viol := range violations {
			fmt.Printf("%s: %s\n", name, viol)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtdvalidate:", err)
	os.Exit(1)
}
