// Command dtdvalidate checks XML documents against a DTD and reports every
// violation, the "automatic validation" application motivating schema
// inference in the paper's introduction.
//
// Usage:
//
//	dtdvalidate -dtd schema.dtd file.xml [file2.xml ...]
//
// The exit status is 1 when any document is invalid.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdinfer/internal/dtd"
)

func main() {
	dtdFile := flag.String("dtd", "", "DTD file to validate against")
	flag.Parse()
	if *dtdFile == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*dtdFile)
	if err != nil {
		fatal(err)
	}
	d, err := dtd.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	v := dtd.NewValidator(d)
	bad := 0
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		violations, err := v.Validate(f)
		f.Close()
		if err != nil {
			fmt.Printf("%s: malformed: %v\n", name, err)
			bad++
			continue
		}
		if len(violations) == 0 {
			fmt.Printf("%s: valid\n", name)
			continue
		}
		bad++
		for _, viol := range violations {
			fmt.Printf("%s: %s\n", name, viol)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtdvalidate:", err)
	os.Exit(1)
}
