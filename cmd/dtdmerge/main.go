// Command dtdmerge merges corpus summaries written by dtdinfer
// -save-corpus and infers a DTD (or XML Schema) over the union — the
// reduce side of a map-reduce over a sharded corpus:
//
//	dtdmerge [-algo idtd|crx|xtract|trang|stateelim] [-format dtd|xsd]
//	         [-numeric] [-noise N] [-stats]
//	         [-timeout D] [-max-soa-states N] [-max-expr-size N]
//	         [-degrade ladder|fail]
//	         [-o FILE] [-no-infer]
//	         shard1.corpus shard2.corpus [...]
//
// Each shard summary is the output of an independent dtdinfer
// -save-corpus run over a slice of the documents (on any machine: the
// format is byte-order independent). Merging is exact, not approximate —
// inference over the merged summary is byte-identical to single-machine
// inference over all the documents at once. -o additionally writes the
// merged summary back out as a corpus file; -no-infer skips inference,
// for building merge trees. Cached content models carried by the shards
// are adopted where compatible and revalidated by content fingerprint
// before use, so they can only speed inference up, never change it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dtdinfer/internal/core"
	"dtdinfer/internal/xsd"
)

func main() {
	algoName := flag.String("algo", "idtd", "inference algorithm: "+core.AlgorithmList())
	format := flag.String("format", "dtd", "output format: dtd or xsd")
	numeric := flag.Bool("numeric", false, "refine repetitions to {m,n} bounds from the data (Section 9)")
	noise := flag.Int("noise", 0, "iDTD noise threshold: drop edges supported by at most N strings when stuck")
	stats := flag.Bool("stats", false, "print per-element inference timings to stderr")
	timeout := flag.Duration("timeout", 0, "cap each element's inference wall clock (0 = unlimited)")
	maxSOAStates := flag.Int("max-soa-states", 0, "cap the automaton states an engine may process per element (0 = unlimited)")
	maxExprSize := flag.Int("max-expr-size", 0, "cap the token count of an inferred content model (0 = unlimited)")
	degrade := flag.String("degrade", "ladder", "on engine failure or exceeded budget: ladder (fall back to crx, then (a1|...|an)*) or fail")
	out := flag.String("o", "", "write the merged corpus summary to FILE")
	noInfer := flag.Bool("no-infer", false, "skip inference and print nothing; use with -o to only merge")
	flag.Parse()

	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no corpus summaries named (write them with dtdinfer -save-corpus)"))
	}
	algo, err := core.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	opts := &core.Options{NumericPredicates: *numeric}
	opts.IDTD.NoiseThreshold = *noise
	opts.Budget = core.Budget{
		Deadline:     *timeout,
		MaxSOAStates: *maxSOAStates,
		MaxExprSize:  *maxExprSize,
	}
	switch *degrade {
	case "ladder":
		opts.Degrade = core.DegradeLadder
	case "fail":
		opts.Degrade = core.DegradeFail
	default:
		fatal(fmt.Errorf("unknown -degrade mode %q (want ladder or fail)", *degrade))
	}

	// Shards merge in argument order, one at a time — each summary is
	// decoded, folded into the accumulator and released before the next
	// is read, so merging K shards never holds K decoded summaries.
	// Summary merge is commutative up to symbol numbering, and the
	// snapshot's canonical encoding plus the deterministic merge make any
	// fixed order reproduce single-corpus ingestion byte-identically.
	x, err := core.MergeCorpusFiles(flag.Args())
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := core.SaveCorpus(x, *out); err != nil {
			fatal(err)
		}
	}
	if *noInfer {
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	d, inferStats, err := core.InferDTDFromExtractionContext(ctx, x, algo, opts)
	if *stats && inferStats != nil {
		fmt.Fprintln(os.Stderr, inferStats)
	}
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "dtd":
		fmt.Println(d)
	case "xsd":
		fmt.Print(xsd.Generate(d, x.TextSamples))
	default:
		fatal(fmt.Errorf("unknown format %q (want dtd or xsd)", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtdmerge:", err)
	os.Exit(1)
}
