// Command experiments regenerates the tables and figures of the paper's
// evaluation.
//
// Usage:
//
//	experiments [-exp table1|table2|figure4|perf|conciseness|all]
//	            [-trials 200] [-steps 20] [-seed 1]
//
// Figure 4 with the paper's 200 trials per size takes a few minutes; lower
// -trials for a quick look.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdinfer/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, figure4, perf, conciseness, ablation or all")
	trials := flag.Int("trials", 200, "Figure 4 subsamples per size (the paper uses 200)")
	steps := flag.Int("steps", 20, "Figure 4 sample sizes per panel")
	seed := flag.Int64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "emit Figure 4 curves as CSV for plotting")
	flag.Parse()

	run := func(name string) {
		switch name {
		case "table1":
			fmt.Println(experiments.FormatTable1(experiments.RunTable1(*seed)))
		case "table2":
			fmt.Println(experiments.FormatTable2(experiments.RunTable2(*seed)))
		case "figure4":
			cfg := &experiments.Figure4Config{Trials: *trials, Steps: *steps, Seed: *seed}
			results := experiments.RunFigure4(cfg)
			if *csv {
				fmt.Print(experiments.FormatFigure4CSV(results))
			} else {
				fmt.Println(experiments.FormatFigure4(results))
			}
		case "perf":
			fmt.Println(experiments.FormatPerf(experiments.RunPerf(*seed)))
		case "conciseness":
			fmt.Println(experiments.FormatConciseness(experiments.RunConciseness()))
		case "ablation":
			fmt.Println(experiments.FormatAblation(experiments.RunAblation(*seed)))
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *exp == "all" {
		for _, name := range []string{"conciseness", "table1", "table2", "figure4", "perf", "ablation"} {
			run(name)
		}
		return
	}
	run(*exp)
}
