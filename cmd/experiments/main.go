// Command experiments regenerates the tables and figures of the paper's
// evaluation.
//
// Usage:
//
//	experiments [-exp table1|table2|figure4|perf|conciseness|all]
//	            [-trials 200] [-steps 20] [-seed 1]
//
// Figure 4 with the paper's 200 trials per size takes a few minutes; lower
// -trials for a quick look.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdinfer/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, figure4, perf, conciseness, ablation or all")
	trials := flag.Int("trials", 200, "Figure 4 subsamples per size (the paper uses 200)")
	steps := flag.Int("steps", 20, "Figure 4 sample sizes per panel")
	seed := flag.Int64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "emit Figure 4 curves as CSV for plotting")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Steps: *steps, CSV: *csv}
	if *exp == "all" {
		// One failing experiment is reported and the rest still run; the
		// exit status records that something failed.
		failed := false
		for _, name := range experiments.Names() {
			out, err := experiments.Run(name, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
				failed = true
				continue
			}
			fmt.Println(out)
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	out, err := experiments.Run(*exp, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	fmt.Println(out)
}
