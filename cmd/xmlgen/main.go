// Command xmlgen generates synthetic XML documents from a DTD, or sample
// strings from a content-model expression — the repository's stand-in for
// the ToXgene generator used in the paper's experiments.
//
// Usage:
//
//	xmlgen -dtd schema.dtd [-n 10] [-seed 1]            # documents
//	xmlgen -expr "(b?(a + c))+d" [-n 10] [-representative]  # strings
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dtdinfer/internal/datagen"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
)

func main() {
	dtdFile := flag.String("dtd", "", "DTD file to generate documents from")
	expr := flag.String("expr", "", "content-model expression to generate strings from")
	n := flag.Int("n", 10, "number of documents/strings")
	seed := flag.Int64("seed", 1, "random seed")
	representative := flag.Bool("representative", false,
		"make the string sample representative (cover all 2-grams of the expression)")
	flag.Parse()

	switch {
	case *dtdFile != "" && *expr != "":
		fatal(fmt.Errorf("use either -dtd or -expr, not both"))
	case *dtdFile != "":
		src, err := os.ReadFile(*dtdFile)
		if err != nil {
			fatal(err)
		}
		d, err := dtd.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		g := &datagen.DocGenerator{DTD: d, Sampler: datagen.NewSampler(*seed)}
		for _, doc := range g.GenerateN(*n) {
			fmt.Println(doc)
		}
	case *expr != "":
		e, err := regex.Parse(*expr)
		if err != nil {
			fatal(err)
		}
		s := datagen.NewSampler(*seed)
		var sample [][]string
		if *representative {
			sample = datagen.RepresentativeSample(s, e, max(*n, len(datagen.EdgeCoverSample(e))))
		} else {
			sample = s.SampleN(e, *n)
		}
		for _, w := range sample {
			fmt.Println(strings.Join(w, " "))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlgen:", err)
	os.Exit(1)
}
