// Command benchjson converts `go test -bench` output read from standard
// input into a JSON array on standard output, one object per benchmark
// result with the metrics the perf trajectory tracks:
//
//	go test -bench 'Perf|EndToEnd|IngestParallel' -benchmem . | benchjson > BENCH_PR2.json
//
// Lines that are not benchmark results (the cpu/goos preamble, PASS/ok
// trailers) are ignored. Custom metrics reported via b.ReportMetric are
// captured under "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. GOMAXPROCS (from the -N suffix the
// testing package appends to every benchmark name) and the machine's CPU
// count are recorded per entry so a run that never exercised real cores —
// gomaxprocs 1, or cpus 1 under an oversubscribed GOMAXPROCS — is visible
// in the recorded data instead of hiding a parallel regression.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  int64              `json:"b_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_op,omitempty"`
	Gomaxprocs  int                `json:"gomaxprocs,omitempty"`
	CPUs        int                `json:"cpus,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// StageNs groups the pipelined-ingestion stage timings (metrics
	// reported with a "stage-<name>-ns" unit) into a per-entry breakdown:
	// decode, flush-wait, commit, committer-idle, final-merge, wall.
	StageNs map[string]float64 `json:"stage_ns,omitempty"`
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw stream to stderr so the make target still shows
		// progress while capturing JSON on stdout.
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkName-8  100  12345 ns/op  67 B/op ..."
// line; ok is false for anything else.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	r := Result{Name: name, Iterations: iters, CPUs: runtime.NumCPU()}
	// Record the -GOMAXPROCS suffix, then strip it so names are stable
	// across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			r.Gomaxprocs = n
			r.Name = name[:i]
		}
	}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
			seen = true
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		default:
			if stage, ok := strings.CutPrefix(unit, "stage-"); ok {
				if stage, ok := strings.CutSuffix(stage, "-ns"); ok {
					if r.StageNs == nil {
						r.StageNs = map[string]float64{}
					}
					r.StageNs[stage] = val
					continue
				}
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, seen
}
