// Command dtddiff compares two DTDs element by element, by the languages
// of their content models — the tool form of the paper's schema-cleaning
// workflow (diff a published DTD against the DTD inferred from the actual
// corpus) and of the Section 9 noise analysis (diff the inferred schema
// against the specification for "a uniform view of the kind of errors").
//
// Usage:
//
//	dtddiff [-v] first.dtd second.dtd
//	dtddiff -feed [-from N] [-to M] first.dtd second.dtd
//
// With -feed the diff is rendered as a one-line snapshot change feed
// ("v3→v4: modified <order>, added <sku>"), treating the first DTD as
// snapshot version N (default 0) and the second as version M (default
// N+1) — the observable form of an incremental publish.
//
// Exit status 1 when the DTDs differ.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdinfer/internal/dtd"
)

func main() {
	verbose := flag.Bool("v", false, "also list equivalent elements")
	feed := flag.Bool("feed", false, "render the diff as a snapshot change-feed line")
	from := flag.Uint64("from", 0, "snapshot version of the first DTD (with -feed)")
	to := flag.Uint64("to", 0, "snapshot version of the second DTD (with -feed; default from+1)")
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	first, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	second, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	entries := dtd.Diff(first, second)
	if *feed {
		t := *to
		if t == 0 {
			t = *from + 1
		}
		changes := dtd.Changes(entries)
		fmt.Println(dtd.FormatChangeFeed(*from, t, changes))
		if !changes.Empty() {
			os.Exit(1)
		}
		return
	}
	fmt.Print(dtd.FormatDiff(entries, *verbose))
	for _, e := range entries {
		if e.Relation != dtd.Equivalent {
			os.Exit(1)
		}
	}
}

func load(name string) (*dtd.DTD, error) {
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	d, err := dtd.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return d, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtddiff:", err)
	os.Exit(1)
}
