// Command dtddiff compares two DTDs element by element, by the languages
// of their content models — the tool form of the paper's schema-cleaning
// workflow (diff a published DTD against the DTD inferred from the actual
// corpus) and of the Section 9 noise analysis (diff the inferred schema
// against the specification for "a uniform view of the kind of errors").
//
// Usage:
//
//	dtddiff [-v] first.dtd second.dtd
//
// Exit status 1 when the DTDs differ.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdinfer/internal/dtd"
)

func main() {
	verbose := flag.Bool("v", false, "also list equivalent elements")
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	first, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	second, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	entries := dtd.Diff(first, second)
	fmt.Print(dtd.FormatDiff(entries, *verbose))
	for _, e := range entries {
		if e.Relation != dtd.Equivalent {
			os.Exit(1)
		}
	}
}

func load(name string) (*dtd.DTD, error) {
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	d, err := dtd.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return d, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtddiff:", err)
	os.Exit(1)
}
