// Quickstart: infer a DTD and an XML Schema from a handful of documents.
package main

import (
	"fmt"
	"io"
	"log"
	"strings"

	"dtdinfer"
)

var docs = []string{
	`<library>
	  <book><title>The Art of Computer Programming</title><author>Knuth</author><year>1968</year></book>
	  <book><title>A Discipline of Programming</title><author>Dijkstra</author></book>
	</library>`,
	`<library>
	  <book><title>Communicating Sequential Processes</title><author>Hoare</author><author>et al.</author><year>1985</year></book>
	  <journal><title>JACM</title><issue>12</issue><issue>13</issue></journal>
	</library>`,
}

func readers() []io.Reader {
	out := make([]io.Reader, len(docs))
	for i, d := range docs {
		out[i] = strings.NewReader(d)
	}
	return out
}

func main() {
	// iDTD: the SORE inference of the paper, precise with enough data.
	d, err := dtdinfer.InferDTD(readers(), dtdinfer.IDTD, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Inferred DTD (iDTD):")
	fmt.Println(d)

	// The same corpus through CRX: more general chain expressions,
	// the right choice when data is sparse.
	c, err := dtdinfer.InferDTD(readers(), dtdinfer.CRX, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nInferred DTD (CRX):")
	fmt.Println(c)

	// Validate a new document against the inferred schema.
	v := dtdinfer.NewValidator(d)
	good := `<library><book><title>T</title><author>A</author></book></library>`
	bad := `<library><book><author>A</author></book></library>` // title missing
	fmt.Printf("\nvalid   %q: %v\n", "book with title", v.ValidDocument(good))
	fmt.Printf("invalid %q: %v\n", "book without title", v.ValidDocument(bad))

	// Emit the schema as W3C XML Schema with detected datatypes.
	xsdOut, err := dtdinfer.InferXSD(readers(), dtdinfer.IDTD, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nXML Schema:")
	fmt.Println(xsdOut)
}
