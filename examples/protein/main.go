// Protein: the paper's large-corpus scenario (Section 1.1 and Table 1).
//
// A synthetic Protein Sequence Database corpus is generated, a DTD is
// inferred with iDTD, and the inferred refinfo content model is compared
// against the published DTD: the corpus never specifies volume and month
// together, so inference tightens volume?,month? into (volume|month) — the
// schema-cleaning application motivating the paper.
package main

import (
	"fmt"
	"log"
	"strings"

	"dtdinfer"
	"dtdinfer/internal/corpus"
)

func main() {
	docs := corpus.Protein(1, 300)
	fmt.Println(corpus.Describe("synthetic Protein Sequence Database", docs))

	inferred, err := dtdinfer.InferDTD(corpus.Documents(docs), dtdinfer.IDTD, nil)
	if err != nil {
		log.Fatal(err)
	}
	published := corpus.ProteinDTD()

	fmt.Println("\npublished refinfo:")
	fmt.Println(" ", published.Elements["refinfo"])
	fmt.Println("inferred refinfo (iDTD):")
	fmt.Println(" ", inferred.Elements["refinfo"])

	// Both schemas validate the corpus, but the inferred one is stricter:
	// it rejects a refinfo carrying both volume and month.
	overSpecified := `<refinfo><authors><author>A</author></authors>` +
		`<citation>C</citation><volume>12</volume><month>May</month>` +
		`<year>2006</year></refinfo>`
	iv := dtdinfer.NewValidator(inferred)
	pv := dtdinfer.NewValidator(published)
	// Validate the fragment against the refinfo declaration by wrapping the
	// validators around single-element documents.
	fmt.Println("\nrefinfo with both volume and month:")
	fmt.Println("  published DTD accepts it:", validFragment(pv, overSpecified))
	fmt.Println("  inferred DTD accepts it: ", validFragment(iv, overSpecified))

	ok := 0
	for _, doc := range docs {
		if iv.ValidDocument(doc) {
			ok++
		}
	}
	fmt.Printf("\ninferred DTD validates %d/%d corpus documents\n", ok, len(docs))

	// The full inferred schema, for inspection.
	fmt.Println("\nfull inferred DTD:")
	fmt.Println(inferred)
}

func validFragment(v *dtdinfer.Validator, frag string) bool {
	violations, err := v.Validate(strings.NewReader(frag))
	if err != nil {
		return false
	}
	for _, viol := range violations {
		// Ignore the root mismatch: we validate a fragment on purpose.
		if !strings.HasPrefix(viol.Reason, "root") {
			return false
		}
	}
	return true
}
