// Incremental: the Section 9 incremental-recomputation scenario. XML data
// arrives in batches (answers to queries trickling in over time); instead
// of re-reading everything, only a compact summary is kept — the →W order
// relation plus capped occurrence profiles for CRX — and the inferred
// expression is refreshed from the summary after each batch.
package main

import (
	"fmt"
	"log"

	"dtdinfer"
)

// Three arriving batches of content sequences for an <order> element.
var batches = [][][]string{
	{
		{"customer", "item", "total"},
		{"customer", "item", "item", "total"},
	},
	{
		{"customer", "item", "total", "note"},
		{"customer", "item", "item", "item", "total"},
	},
	{
		{"customer", "coupon", "item", "total"},
		{"customer", "coupon", "item", "item", "total", "note"},
	},
}

func main() {
	inc := dtdinfer.NewIncrementalCRX()
	for i, batch := range batches {
		// Summarize only the new strings, then merge — the XML that
		// produced them can be forgotten.
		fresh := dtdinfer.NewIncrementalCRX()
		for _, w := range batch {
			fresh.AddString(w)
		}
		inc.Merge(fresh)

		res, err := inc.Infer()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after batch %d (%d strings total): %s\n",
			i+1, inc.Total(), res.Expr)
	}

	// The incremental result is identical to a batch run over all data.
	var all [][]string
	for _, b := range batches {
		all = append(all, b...)
	}
	batchExpr, err := dtdinfer.InferContentModel(all, dtdinfer.CRX, nil)
	if err != nil {
		log.Fatal(err)
	}
	incRes, err := inc.Infer()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch result     : %s\n", batchExpr)
	fmt.Printf("incremental equal: %v\n", batchExpr.String() == incRes.Expr.String())
}
