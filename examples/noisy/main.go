// Noisy: the Section 9 noise scenario. The paper found 89% of crawled
// XHTML documents invalid, with a dozen disallowed children scattered over
// more than 30000 paragraph elements. This example generates such a noisy
// corpus of <p> child sequences and contrasts three inferences:
//
//   - plain iDTD keeps the noise symbols in the content model;
//   - support-threshold pruning (the "obvious way") drops them up front;
//   - the noise-aware iDTD drops weakly-supported edges only when the
//     rewriting gets stuck.
package main

import (
	"fmt"
	"log"
	"sort"

	"dtdinfer"
	"dtdinfer/internal/corpus"
	"dtdinfer/internal/idtd"
	"dtdinfer/internal/soa"
)

func main() {
	// The paper's scale: over 30000 paragraph occurrences with about ten
	// disallowed children among them.
	sample, alphabet := corpus.XHTMLParagraphs(7, 30000, 10)
	fmt.Printf("corpus: %d paragraph sequences over %d inline elements, 10 noisy\n",
		len(sample), len(alphabet))

	plain, err := dtdinfer.InferContentModel(sample, dtdinfer.IDTD, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplain iDTD keeps the noise (%d symbols):\n  %s\n",
		len(plain.Symbols()), clip(plain.String()))

	// Support-threshold pruning before inference.
	a := soa.Infer(sample)
	reportSupports(a)
	a.PruneSupport(10, 0)
	pruned, err := idtd.FromSOA(a, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter pruning symbols with support < 10 (%d symbols):\n  %s\n",
		len(pruned.Expr.Symbols()), clip(pruned.Expr.String()))

	if got, want := len(pruned.Expr.Symbols()), len(alphabet); got != want {
		fmt.Printf("WARNING: expected the %d clean symbols, got %d\n", want, got)
	}

	// Noise-aware iDTD: thresholded edge dropping only when stuck.
	opts := &dtdinfer.Options{}
	opts.IDTD.NoiseThreshold = 5
	aware, err := dtdinfer.InferContentModel(sample, dtdinfer.IDTD, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnoise-aware iDTD (threshold 5, %d symbols):\n  %s\n",
		len(aware.Symbols()), clip(aware.String()))
}

func reportSupports(a *soa.SOA) {
	type sup struct {
		sym string
		n   int
	}
	var weak []sup
	for _, s := range a.Symbols() {
		if n := a.SymbolSupport(s); n < 10 {
			weak = append(weak, sup{s, n})
		}
	}
	sort.Slice(weak, func(i, j int) bool { return weak[i].sym < weak[j].sym })
	fmt.Println("\nweakly supported symbols (the injected noise):")
	for _, w := range weak {
		fmt.Printf("  %-8s support %d\n", w.sym, w.n)
	}
}

func clip(s string) string {
	if len(s) <= 120 {
		return s
	}
	return s[:58] + " ... " + s[len(s)-58:]
}
