// Webservice: the paper's sparse-data scenario (Section 1.2). Only a
// handful of XML answers from a (simulated) web service are available —
// far too few for a representative sample — and CRX's strong
// generalization still recovers a sensible schema, accepting combinations
// never seen together in the sample.
package main

import (
	"fmt"
	"io"
	"log"
	"strings"

	"dtdinfer"
)

// Five answers, as if returned by a stock-quote service.
var answers = []string{
	`<quotes><quote><symbol>ACME</symbol><price>12.5</price><volume>10300</volume></quote></quotes>`,
	`<quotes><quote><symbol>GLOBEX</symbol><price>8.25</price></quote>
	 <quote><symbol>INITECH</symbol><price>3.75</price><note>halted</note></quote></quotes>`,
	`<quotes><quote><symbol>HOOLI</symbol><price>101.0</price><volume>990</volume><note>ipo</note></quote></quotes>`,
	`<quotes></quotes>`,
	`<quotes><quote><symbol>PIEDPIPER</symbol><price>1.01</price></quote></quotes>`,
}

func docs() []io.Reader {
	out := make([]io.Reader, len(answers))
	for i, a := range answers {
		out[i] = strings.NewReader(a)
	}
	return out
}

func main() {
	d, err := dtdinfer.InferDTD(docs(), dtdinfer.CRX, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DTD inferred by CRX from 5 answers:")
	fmt.Println(d)

	// Compare with iDTD on the same sparse sample: the SORE overfits the
	// few observed orderings, while the CHARE generalizes.
	di, err := dtdinfer.InferDTD(docs(), dtdinfer.IDTD, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquote content model, CRX :", di2str(d, "quote"))
	fmt.Println("quote content model, iDTD:", di2str(di, "quote"))

	// The inferred schema generalizes: it accepts combinations never seen
	// together in the tiny sample.
	v := dtdinfer.NewValidator(d)
	unseen := `<quotes><quote><symbol>X</symbol><price>1.0</price><volume>5</volume><note>new</note></quote>` +
		`<quote><symbol>Y</symbol><price>2.0</price></quote></quotes>`
	fmt.Println("\nCRX schema accepts an unseen combination:", v.ValidDocument(unseen))

	// An XSD with detected datatypes (price is decimal, volume integer).
	xsdOut, err := dtdinfer.InferXSD(docs(), dtdinfer.CRX, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nXML Schema with detected datatypes:")
	fmt.Println(xsdOut)
}

func di2str(d *dtdinfer.DTD, element string) string {
	if m := d.Model(element); m != nil {
		return m.String()
	}
	return "(none)"
}
