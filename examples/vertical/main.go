// Vertical: the paper's future work (Section 10) realized — schemas with
// vertical (ancestor-dependent) typing, the structural mechanism by which
// XML Schema exceeds DTDs. The classic case: <name> under <book> holds a
// title, <name> under <author> holds first/last; one DTD content model
// must blur the two, while the k-local contextual schema keeps them apart
// and its validator rejects the confusion a DTD validator cannot see.
package main

import (
	"fmt"
	"io"
	"log"
	"strings"

	"dtdinfer"
)

var docs = []string{
	`<store>
	  <book><name><title>SICP</title><sub>2nd ed</sub></name>
	        <author><name><first>Hal</first><last>Abelson</last></name></author></book>
	</store>`,
	`<store>
	  <book><name><title>TAPL</title></name>
	        <author><name><first>Benjamin</first><last>Pierce</last></name></author></book>
	</store>`,
}

func readers() []io.Reader {
	out := make([]io.Reader, len(docs))
	for i, d := range docs {
		out[i] = strings.NewReader(d)
	}
	return out
}

func main() {
	// Plain DTD inference must merge the two name populations.
	d, err := dtdinfer.InferDTD(readers(), dtdinfer.IDTD, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DTD view (one content model per element):")
	fmt.Println(" ", d.Elements["name"])

	// Contextual inference with k = 1 keeps them apart.
	s, err := dtdinfer.InferContextualSchema(readers(), 1, dtdinfer.IDTD, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nContextual schema (k = 1):")
	fmt.Print(s)

	// The precision is observable: a document putting book-name content
	// under an author passes the DTD but fails the contextual schema.
	confused := `<store><book><name><title>T</title></name>` +
		`<author><name><title>X</title></name></author></book></store>`
	dv := dtdinfer.NewValidator(d)
	cv := dtdinfer.NewContextualValidator(s)
	fmt.Println("\nauthor/name holding a title:")
	fmt.Println("  DTD validator accepts:       ", dv.ValidDocument(confused))
	fmt.Println("  contextual validator accepts:", cv.ValidDocument(confused))

	fmt.Println("\nXML Schema with named types and local element declarations:")
	fmt.Println(s.ToXSD())
}
