package dtdinfer

// The benchmark harness regenerates every table and figure of the paper's
// evaluation; run with
//
//	go test -bench=. -benchmem
//
// Figure 4 runs with reduced trial counts here to keep benchmark runs
// short; cmd/experiments reproduces the full 200-trial curves.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/core"
	"dtdinfer/internal/corpus"
	"dtdinfer/internal/datagen"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/experiments"
	"dtdinfer/internal/idtd"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
	"dtdinfer/internal/sample"
	"dtdinfer/internal/soa"
	"dtdinfer/internal/stateelim"
)

// BenchmarkConcisenessStateElimVsRewrite regenerates the introduction's
// (†) vs (‡) contrast on the Figure 1 automaton.
func BenchmarkConcisenessStateElimVsRewrite(b *testing.B) {
	b.Run("rewrite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := experiments.RunConciseness()
			if err != nil {
				b.Fatal(err)
			}
			if r.RewriteTokens != 12 {
				b.Fatalf("rewrite tokens = %d", r.RewriteTokens)
			}
		}
	})
	b.Run("stateelim", func(b *testing.B) {
		sample := [][]string{split("bacacdacde"), split("cbacdbacde"), split("abccaadcde")}
		a := soa.Infer(sample)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stateelim.FromSOA(a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func split(w string) []string {
	out := make([]string, len(w))
	for i, r := range w {
		out[i] = string(r)
	}
	return out
}

// BenchmarkTable1 regenerates Table 1, one sub-benchmark per element
// definition and algorithm.
func BenchmarkTable1(b *testing.B) {
	for _, row := range experiments.Table1 {
		truth := regex.MustParse(row.CorpusTruth)
		// One sampler for both branches, so the representative-sample
		// fallback draws from the same stream as the initial sample.
		s := datagen.NewSampler(1)
		sample := s.SampleN(truth, row.SampleSize)
		if cover := datagen.EdgeCoverSample(truth); len(cover) <= row.SampleSize {
			sample = datagen.RepresentativeSample(s, truth, row.SampleSize)
		}
		for _, algo := range []core.Algorithm{core.CRX, core.IDTD} {
			b.Run(row.Element+"/"+string(algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.InferExpr(sample, algo, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2, one sub-benchmark per expression and
// algorithm (xtract on its capped sample).
func BenchmarkTable2(b *testing.B) {
	for _, row := range experiments.Table2 {
		target := regex.MustParse(row.Original)
		s := datagen.NewSampler(1)
		sample := datagen.RepresentativeSample(s, target, row.SampleSize)
		for _, algo := range []core.Algorithm{core.CRX, core.IDTD, core.TrangLike} {
			b.Run(row.Element+"/"+string(algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.InferExpr(sample, algo, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		xs := sample
		if row.XtractSize < len(sample) {
			xs = sample[:row.XtractSize]
		}
		b.Run(row.Element+"/xtract", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.InferExpr(xs, core.XTRACT, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4 regenerates the three generalization panels with reduced
// trial counts (the full 200-trial version is cmd/experiments -exp=figure4).
func BenchmarkFigure4(b *testing.B) {
	for _, panel := range experiments.Figure4 {
		b.Run(panel.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunFigure4Panel(panel, &experiments.Figure4Config{
					Trials: 5, Steps: 6, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(r.Points) == 0 {
					b.Fatal("no curve points")
				}
			}
		})
	}
}

// BenchmarkPerfIDTDExample4 and BenchmarkPerfCRXExample4 are the Section
// 8.3 timing workloads: example4 (61 symbols) from 10000 strings. The paper
// reports 7 s (iDTD) and 3.2 s (CRX) on a 2.5 GHz Pentium 4 including JVM
// startup.
func BenchmarkPerfIDTDExample4(b *testing.B) {
	benchPerf(b, core.IDTD)
}

// BenchmarkPerfCRXExample4 is the CRX side of the Section 8.3 comparison.
func BenchmarkPerfCRXExample4(b *testing.B) {
	benchPerf(b, core.CRX)
}

func benchPerf(b *testing.B, algo core.Algorithm) {
	row := experiments.Table2[3]
	target := regex.MustParse(row.Original)
	sample := datagen.RepresentativeSample(datagen.NewSampler(1), target, row.SampleSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.InferExpr(sample, algo, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfTypical times the paper's "typical" workload: a 10-symbol
// expression from a few hundred strings (about a second on their machine).
func BenchmarkPerfTypical(b *testing.B) {
	typical := regex.MustParse("a1 a2? (a3 + a4 + a5)* a6 (a7 + a8)? a9* a10")
	sample := datagen.RepresentativeSample(datagen.NewSampler(1), typical, 300)
	for _, algo := range []core.Algorithm{core.IDTD, core.CRX} {
		b.Run(string(algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.InferExpr(sample, algo, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEndDTD measures whole-pipeline inference (XML parsing,
// extraction, per-element inference) on the synthetic Protein corpus,
// once sequentially and once per parallel ingestion worker count. The
// output is byte-identical across worker counts; only wall clock changes.
func BenchmarkEndToEndDTD(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchCorpus(b, 200, 1) })
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("par%d", workers), func(b *testing.B) {
			benchCorpus(b, 200, workers)
		})
	}
}

func benchCorpus(b *testing.B, n, workers int) {
	docs, docBytes := corpusDocs(n)
	opts := &Options{Parallelism: workers}
	// Emit the workload shape alongside the timings: parallel ingestion
	// only pays off once the corpus outweighs the goroutine/merge overhead
	// and GOMAXPROCS actually offers cores, so regressions in par* vs seq
	// are uninterpretable without both numbers.
	b.ReportMetric(float64(benchDocCount(n)), "corpus-docs")
	b.ReportMetric(float64(docBytes), "corpus-bytes")
	reportCPUShape(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InferDTD(docs(), IDTD, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestParallel isolates the sharded ingestion pipeline (XML
// decoding and extraction, no inference) across worker counts.
func BenchmarkIngestParallel(b *testing.B) {
	docs, docBytes := corpusDocs(400)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportMetric(float64(docBytes), "corpus-bytes")
			reportCPUShape(b)
			var last *IngestReport
			for i := 0; i < b.N; i++ {
				x := NewExtraction()
				report, err := x.AddDocumentsParallel(docs(), workers, nil, dtd.FailFast)
				if err != nil {
					b.Fatal(err)
				}
				last = report
			}
			reportPipelineStages(b, last)
		})
	}
}

// BenchmarkIngestDecoder contrasts the two XML decoder paths on the same
// sequential ingestion workload: "fast" is the structure-only tokenizer
// (the default), "std" the encoding/xml fallback kept as the
// differential-testing oracle.
func BenchmarkIngestDecoder(b *testing.B) {
	docs, _ := corpusDocs(400)
	for _, decoder := range []dtd.DecoderKind{dtd.DecoderFast, dtd.DecoderStd} {
		b.Run(decoder.String(), func(b *testing.B) {
			opts := &IngestOptions{Decoder: decoder}
			for i := 0; i < b.N; i++ {
				x := NewExtraction()
				if _, err := x.AddDocuments(docs(), opts, dtd.FailFast); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// reportCPUShape records the CPU context a parallel benchmark ran under.
// A recorded gomaxprocs of 1, or cpus of 1 with an oversubscribed
// gomaxprocs, means the run never exercised real parallelism — BENCH_PR5
// hid a parallel-ingestion regression exactly this way, so the shape is
// now part of every recorded entry.
func reportCPUShape(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// reportPipelineStages records the pipelined committer's per-stage wall
// and idle timings from the last iteration's report, under "stage-*-ns"
// units so cmd/benchjson groups them into a stage_ns breakdown per
// entry. The workers=1 entry reports none: it runs the sequential path.
func reportPipelineStages(b *testing.B, report *IngestReport) {
	if report == nil || report.Pipeline == nil {
		return
	}
	p := report.Pipeline
	b.ReportMetric(float64(p.Decode.Nanoseconds()), "stage-decode-ns")
	b.ReportMetric(float64(p.FlushWait.Nanoseconds()), "stage-flush-wait-ns")
	b.ReportMetric(float64(p.Commit.Nanoseconds()), "stage-commit-ns")
	b.ReportMetric(float64(p.CommitterIdle.Nanoseconds()), "stage-committer-idle-ns")
	b.ReportMetric(float64(p.FinalMerge.Nanoseconds()), "stage-final-merge-ns")
	b.ReportMetric(float64(p.Wall.Nanoseconds()), "stage-wall-ns")
	b.ReportMetric(float64(p.FlushUnits), "flush-units")
	b.ReportMetric(float64(p.ArenaReuses), "arena-reuses")
}

// benchCorpusMB is the DTDINFER_BENCH_MB override: when set (as `make
// bench` does), the ingestion benchmarks run over a generated corpus of at
// least that many megabytes instead of the small default, so parallel
// worker counts are measured against a workload big enough to amortize
// fan-out. The corpus is generated once and shared across benchmarks.
var (
	benchBigOnce  sync.Once
	benchBigDocs  []string
	benchBigBytes int64
)

func benchBigCorpus() ([]string, int64) {
	benchBigOnce.Do(func() {
		mb, err := strconv.Atoi(os.Getenv("DTDINFER_BENCH_MB"))
		if err != nil || mb <= 0 {
			return
		}
		want := int64(mb) * 1_000_000
		// Generate in slabs until the size target is met; seeds advance so
		// slabs differ, and the loop is deterministic for a given target.
		for seed := int64(1); benchBigBytes < want; seed++ {
			slab := corpus.Protein(seed, 5000)
			for _, d := range slab {
				benchBigBytes += int64(len(d))
			}
			benchBigDocs = append(benchBigDocs, slab...)
		}
	})
	return benchBigDocs, benchBigBytes
}

// benchDocCount reports how many documents corpusDocs(n) actually serves.
func benchDocCount(n int) int {
	if docs, _ := benchBigCorpus(); docs != nil {
		return len(docs)
	}
	return n
}

// corpusDocs returns a factory of fresh readers over a generated Protein
// corpus (readers are consumed by each inference run) plus the corpus
// byte size. n documents are generated unless DTDINFER_BENCH_MB demands a
// bigger corpus.
func corpusDocs(n int) (func() []io.Reader, int64) {
	docs, bytes := benchBigCorpus()
	if docs == nil {
		docs = corpus.Protein(1, n)
		for _, d := range docs {
			bytes += int64(len(d))
		}
	}
	return func() []io.Reader { return corpus.Documents(docs) }, bytes
}

// BenchmarkIncrementalInfer measures memoized re-inference against cold
// inference over the same extraction. "cold" invalidates the model cache
// every iteration, so every element re-enters the engine. "warm-1elem"
// re-infers after an update that gives exactly one element (the corpus
// root) a shape it has never seen; every other element is served from the
// fingerprinted cache. "warm-10pct" re-infers after ingesting a fresh
// batch a tenth the corpus size. Ingestion is off the clock (StopTimer):
// the contrast is pure inference cost. The recorded cache-hits/engine-runs
// metrics show how much of each pass was memoized.
func BenchmarkIncrementalInfer(b *testing.B) {
	const nDocs = 2000
	docs := corpus.Protein(1, nDocs)
	build := func(b *testing.B) *Extraction {
		x := NewExtraction()
		if _, err := x.AddDocuments(corpus.Documents(docs), nil, dtd.FailFast); err != nil {
			b.Fatal(err)
		}
		return x
	}
	infer := func(b *testing.B, x *Extraction) *dtd.InferStats {
		_, st, err := core.InferDTDFromExtractionStats(x, core.IDTD, nil)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	report := func(b *testing.B, hits, engine int64) {
		b.ReportMetric(float64(hits)/float64(b.N), "cache-hits/op")
		b.ReportMetric(float64(engine)/float64(b.N), "engine-runs/op")
	}

	b.Run("cold", func(b *testing.B) {
		x := build(b)
		var hits, engine int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.InvalidateCache()
			st := infer(b, x)
			hits += int64(st.CacheHits)
			engine += int64(st.CacheMisses + st.CacheRecomputes)
		}
		report(b, hits, engine)
	})

	b.Run("warm-1elem", func(b *testing.B) {
		x := build(b)
		inner := strings.TrimSuffix(strings.TrimPrefix(docs[0], "<ProteinDatabase>"), "</ProteinDatabase>")
		infer(b, x) // prime the cache
		var hits, engine int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// The repeat count grows monotonically, so every update hands
			// the root a child sequence it has never seen; the entry
			// subtree replays document 0, so every other element's sample
			// keeps its fingerprint and stays warm.
			doc := "<ProteinDatabase>" + strings.Repeat(inner, 50+i) + "</ProteinDatabase>"
			if err := x.AddDocument(strings.NewReader(doc)); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			st := infer(b, x)
			hits += int64(st.CacheHits)
			engine += int64(st.CacheMisses + st.CacheRecomputes)
		}
		report(b, hits, engine)
	})

	b.Run("warm-10pct", func(b *testing.B) {
		x := build(b)
		infer(b, x) // prime the cache
		var hits, engine int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			batch := corpus.Protein(int64(1000+i), nDocs/10)
			if _, err := x.AddDocuments(corpus.Documents(batch), nil, dtd.FailFast); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			st := infer(b, x)
			hits += int64(st.CacheHits)
			engine += int64(st.CacheMisses + st.CacheRecomputes)
		}
		report(b, hits, engine)
	})
}

// BenchmarkIngestDedup contrasts the two sample pipelines on a
// duplicate-heavy sample. "verbatim" feeds every string to the engine
// individually — the pre-counted representation, paid on every inference
// call. "counted" infers from the deduplicated sample.Set the ingestion
// layer hands every engine (built once per corpus, outside the loop);
// "counted-cold" additionally pays the one-time build. All three produce
// the identical expression.
func BenchmarkIngestDedup(b *testing.B) {
	typical := regex.MustParse("a1 a2? (a3 + a4 + a5)* a6 (a7 + a8)? a9* a10")
	strs := datagen.RepresentativeSample(datagen.NewSampler(1), typical, 10000)
	set := sample.FromStrings(strs)
	b.Logf("sample: %d strings, %d unique", set.Total(), set.Unique())
	b.Run("verbatim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := idtd.Infer(strs, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("counted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := idtd.InferSample(set, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("counted-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := idtd.InferSample(sample.FromStrings(strs), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRepairPolicy measures the design choice DESIGN.md calls
// out: how the repair-candidate policy affects iDTD's exact-recovery rate
// on sparse samples of random SOREs. Run with -v to see the rates; the
// benchmark reports recoveries per policy via b.ReportMetric.
func BenchmarkAblationRepairPolicy(b *testing.B) {
	alpha := []string{"a", "b", "c", "d", "e"}
	for _, tc := range []struct {
		name   string
		policy idtd.RepairPolicy
	}{
		{"balanced", idtd.PolicyBalanced},
		{"disjunction-first", idtd.PolicyDisjunctionFirst},
		{"optional-first", idtd.PolicyOptionalFirst},
	} {
		b.Run(tc.name, func(b *testing.B) {
			exact, runs := 0, 0
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				target := regextest.RandomSORE(rng, alpha, 3)
				var ws [][]string
				nonEmpty := false
				for j := 0; j < 8; j++ {
					w := regextest.Sample(rng, target, 1, 2)
					nonEmpty = nonEmpty || len(w) > 0
					ws = append(ws, w)
				}
				if !nonEmpty {
					continue
				}
				res, err := idtd.Infer(ws, &idtd.Options{Policy: tc.policy})
				if err != nil {
					b.Fatal(err)
				}
				runs++
				if automata.ExprEquivalent(res.Expr, target) {
					exact++
				}
			}
			if runs > 0 {
				b.ReportMetric(float64(exact)/float64(runs), "exact-recovery")
			}
		})
	}
}

// BenchmarkSnapshotSave and BenchmarkSnapshotLoad measure durable corpus
// summaries against the work they replace. Save serializes the in-memory
// summary; load deserializes and revalidates it; "reingest" is the cost
// of rebuilding the same extraction from the raw documents, which is
// what a process restart pays without a snapshot. The summary-bytes
// metric against corpus-bytes shows the compression a summary achieves
// over the corpus it stands in for.
func BenchmarkSnapshotSave(b *testing.B) {
	docs, docBytes := corpusDocs(400)
	x := NewExtraction()
	if _, err := x.AddDocuments(docs(), nil, dtd.FailFast); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(x, &buf); err != nil {
		b.Fatal(err)
	}
	summaryBytes := buf.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteCorpus(x, &buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(docBytes), "corpus-bytes")
	b.ReportMetric(float64(summaryBytes), "summary-bytes")
}

func BenchmarkSnapshotLoad(b *testing.B) {
	docs, docBytes := corpusDocs(400)
	x := NewExtraction()
	if _, err := x.AddDocuments(docs(), nil, dtd.FailFast); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(x, &buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	b.Run("load", func(b *testing.B) {
		b.ReportMetric(float64(docBytes), "corpus-bytes")
		b.ReportMetric(float64(len(data)), "summary-bytes")
		for i := 0; i < b.N; i++ {
			if _, err := ReadCorpus(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The baseline a load replaces: re-parsing every document. The
	// acceptance bar for this PR is load ≥ 10x faster than reingest at
	// BENCH_MB=100.
	b.Run("reingest", func(b *testing.B) {
		b.ReportMetric(float64(docBytes), "corpus-bytes")
		for i := 0; i < b.N; i++ {
			y := NewExtraction()
			if _, err := y.AddDocuments(docs(), nil, dtd.FailFast); err != nil {
				b.Fatal(err)
			}
		}
	})
}
