package dtdinfer

// Integration tests for the dtdserved daemon as a real process: SIGTERM
// drain correctness and kill -9 crash recovery. These drive the built
// binary over loopback HTTP, so they exercise the full stack — flag
// parsing, signal handling, listener shutdown ordering, and the final
// persist — not just the in-process server package.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dtdinfer/internal/core"
)

// daemon wraps a running dtdserved process.
type daemon struct {
	cmd    *exec.Cmd
	base   string // http://127.0.0.1:PORT
	stderr *bytes.Buffer
	done   chan error
}

// startDaemon launches dtdserved on a free port and waits for the
// listening line.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	bin := filepath.Join(buildTools(t), "dtdserved")
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &stderr, done: make(chan error, 1)}
	go func() { d.done <- cmd.Wait() }()
	t.Cleanup(func() {
		// Receivers put the result back (see exitCode), so this receive
		// always completes once the process is gone.
		cmd.Process.Kill()
		err := <-d.done
		d.done <- err
	})

	// The first stdout line announces the bound address.
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-lines:
		const prefix = "dtdserved: listening on "
		if !ok || !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected startup line %q (stderr: %s)", line, stderr.String())
		}
		d.base = "http://" + strings.TrimPrefix(line, prefix)
	case err := <-d.done:
		d.done <- err
		t.Fatalf("daemon exited before listening: %v\n%s", err, stderr.String())
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not announce its listen address")
	}
	return d
}

// exitCode waits for the process to exit and returns its code.
func (d *daemon) exitCode(t *testing.T, within time.Duration) int {
	t.Helper()
	select {
	case err := <-d.done:
		d.done <- err // keep the result available for Cleanup and re-reads
		if err == nil {
			return 0
		}
		if exit, ok := err.(*exec.ExitError); ok {
			return exit.ExitCode()
		}
		t.Fatalf("daemon wait: %v", err)
	case <-time.After(within):
		t.Fatalf("daemon did not exit within %v\nstderr: %s", within, d.stderr.String())
	}
	return -1
}

func httpPost(url, body string) (int, string, error) {
	resp, err := http.Post(url, "application/xml", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), nil
}

func httpGet(url string) (int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), nil
}

// TestDaemonSIGTERMDrainsCleanly: under concurrent ingest and read load,
// SIGTERM must complete every accepted request, persist the corpus, and
// exit 0 — and a restarted daemon must serve the same schema without
// re-ingestion.
func TestDaemonSIGTERMDrainsCleanly(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, "-data", dir, "-queue", "256", "-drain-timeout", "30s", "-persist-interval", "-1s")
	base := d.base + "/v1/tenants/shop"

	if code, body, err := httpPost(base+"/documents",
		"<store><book><title>a</title><price>1</price></book></store>"); err != nil || code != 200 {
		t.Fatalf("priming ingest: code=%d err=%v body=%s", code, err, body)
	}

	var (
		wg       sync.WaitGroup
		accepted atomic.Int64
		other    atomic.Int64
		draining atomic.Bool
	)
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(2)
		go func(i int) { // ingest load
			defer wg.Done()
			doc := fmt.Sprintf("<store><book><title>t%d</title></book></store>", i)
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _, err := httpPost(base+"/documents", doc)
				switch {
				case err != nil:
					// Once the drain begins the listener is closed:
					// connection errors are the expected outcome for new
					// dials. Before that they are real failures.
					if draining.Load() {
						return
					}
					other.Add(1)
				case code == 200:
					accepted.Add(1)
				case code == 503 || code == 429:
				default:
					other.Add(1)
				}
			}
		}(i)
		go func() { // read load
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _, err := httpGet(base + "/dtd")
				if err != nil {
					if draining.Load() {
						return
					}
					other.Add(1)
					continue
				}
				if code != 200 && code != 503 {
					other.Add(1)
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	draining.Store(true)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Let the drain overlap the tail of the load, then release the
	// goroutines that have not already hit a closed listener.
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if code := d.exitCode(t, 30*time.Second); code != 0 {
		t.Fatalf("exit code %d after SIGTERM, want 0\nstderr: %s", code, d.stderr.String())
	}
	if other.Load() != 0 {
		t.Errorf("%d requests saw unexpected statuses or mid-flight errors", other.Load())
	}
	if accepted.Load() == 0 {
		t.Error("no ingest request was accepted during the load window")
	}

	// The final persist captured everything accepted: the summary loads
	// and a restarted daemon serves a DTD identical to library inference
	// over it.
	x, err := core.LoadCorpus(filepath.Join(dir, "shop.corpus"))
	if err != nil {
		t.Fatalf("summary after drain: %v", err)
	}
	// priming + accepted load requests; the drain contract says every 200
	// is durable. (A request whose response was lost to the shutdown race
	// may still have been ingested, so >= rather than ==.)
	wantDocs := int(1 + accepted.Load())
	if x.Documents < wantDocs {
		t.Errorf("persisted %d documents, want at least %d (every accepted request must be durable)", x.Documents, wantDocs)
	}
	ref, err := core.InferDTDFromExtraction(x, core.IDTD, &core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	d2 := startDaemon(t, "-data", dir, "-persist-interval", "-1s")
	code, dtdText, err := httpGet(d2.base + "/v1/tenants/shop/dtd")
	if err != nil || code != 200 {
		t.Fatalf("dtd after restart: code=%d err=%v", code, err)
	}
	if dtdText != ref.String() {
		t.Errorf("restarted daemon serves a different DTD:\n%s\nwant:\n%s", dtdText, ref)
	}
}

// TestDaemonKill9Recovery: a daemon killed with SIGKILL mid-ingest loses
// only what was not yet persisted; the restart serves a schema
// byte-identical to inference over the last persisted summary, and the
// un-persisted tail is simply absent.
func TestDaemonKill9Recovery(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, "-data", dir, "-persist-interval", "-1s")
	base := d.base + "/v1/tenants/crashy"

	for _, doc := range []string{
		"<log><entry><msg>a</msg></entry></log>",
		"<log><entry><msg>b</msg><level>info</level></entry></log>",
	} {
		if code, body, err := httpPost(base+"/documents", doc); err != nil || code != 200 {
			t.Fatalf("ingest: code=%d err=%v body=%s", code, err, body)
		}
	}
	if code, body, err := httpPost(base+"/persist", ""); err != nil || code != 200 {
		t.Fatalf("persist: code=%d err=%v body=%s", code, err, body)
	}
	// This document arrives after the durability point and dies with the
	// process.
	if code, _, err := httpPost(base+"/documents", "<log><entry><msg>c</msg><lost>y</lost></entry></log>"); err != nil || code != 200 {
		t.Fatalf("post-persist ingest: code=%d err=%v", code, err)
	}

	if err := d.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no final persist
		t.Fatal(err)
	}
	d.exitCode(t, 10*time.Second)

	x, err := core.LoadCorpus(filepath.Join(dir, "crashy.corpus"))
	if err != nil {
		t.Fatalf("summary after kill -9: %v", err)
	}
	if x.Documents != 2 {
		t.Fatalf("summary holds %d documents, want the 2 persisted ones", x.Documents)
	}
	ref, err := core.InferDTDFromExtraction(x, core.IDTD, &core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	d2 := startDaemon(t, "-data", dir, "-persist-interval", "-1s")
	code, dtdText, err := httpGet(d2.base + "/v1/tenants/crashy/dtd")
	if err != nil || code != 200 {
		t.Fatalf("dtd after crash restart: code=%d err=%v", code, err)
	}
	if dtdText != ref.String() {
		t.Errorf("recovered DTD differs from inference over the persisted summary:\n%s\nwant:\n%s", dtdText, ref)
	}
	if strings.Contains(dtdText, "lost") {
		t.Error("recovered DTD contains the un-persisted document's element")
	}
	// The recovered tenant keeps working.
	if code, _, err := httpPost(d2.base+"/v1/tenants/crashy/documents",
		"<log><entry><msg>d</msg></entry></log>"); err != nil || code != 200 {
		t.Errorf("ingest after crash recovery: code=%d err=%v", code, err)
	}
}

// TestDaemonHealthAndMetrics smoke-checks the operational endpoints of a
// real process.
func TestDaemonHealthAndMetrics(t *testing.T) {
	d := startDaemon(t, "-persist-interval", "-1s")
	if code, body, err := httpGet(d.base + "/healthz"); err != nil || code != 200 || body != "ok\n" {
		t.Errorf("healthz: code=%d body=%q err=%v", code, body, err)
	}
	if code, _, err := httpGet(d.base + "/readyz"); err != nil || code != 200 {
		t.Errorf("readyz: code=%d err=%v", code, err)
	}
	if code, _, err := httpPost(d.base+"/v1/tenants/m/documents", "<a><b/></a>"); err != nil || code != 200 {
		t.Fatalf("ingest: code=%d err=%v", code, err)
	}
	code, body, err := httpGet(d.base + "/metrics")
	if err != nil || code != 200 {
		t.Fatalf("metrics: code=%d err=%v", code, err)
	}
	for _, want := range []string{
		"dtdserved_http_requests_total",
		"dtdserved_ingest_documents_total 1",
		`dtdserved_tenant_version{tenant="m"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// SIGINT drains like SIGTERM.
	if err := d.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if code := d.exitCode(t, 20*time.Second); code != 0 {
		t.Errorf("exit code %d after SIGINT, want 0\nstderr: %s", code, d.stderr.String())
	}
}
