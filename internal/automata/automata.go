// Package automata provides the finite automata substrate used to validate
// the inference algorithms: Glushkov construction from regular expressions,
// determinization, Hopcroft minimization, language equivalence, inclusion,
// membership, and bounded enumeration. The alphabet is a set of element
// names (strings), matching the DTD setting where automata run over
// sequences of child element names rather than characters.
package automata

import (
	"sort"

	"dtdinfer/internal/regex"
)

// NFA is a nondeterministic finite automaton over element names. State 0 is
// the start state. There are no ε-transitions; Glushkov construction does
// not produce any.
type NFA struct {
	// NumStates is the number of states, numbered 0..NumStates-1.
	NumStates int
	// Accept marks accepting states.
	Accept []bool
	// Trans maps state and symbol to the successor set.
	Trans []map[string][]int
	// Alphabet is the sorted set of symbols with at least one transition.
	Alphabet []string
}

// Glushkov builds the Glushkov (position) automaton of e. Numerical
// predicates are expanded first. For a SORE the result is deterministic and
// is isomorphic to the expression's single occurrence automaton
// (Proposition 1 of the paper).
func Glushkov(e *regex.Expr) *NFA {
	e = regex.ExpandRepeats(e)
	g := e.GlushkovSets()
	n := len(g.Syms) + 1 // positions shifted by one; state 0 is the start
	a := &NFA{
		NumStates: n,
		Accept:    make([]bool, n),
		Trans:     make([]map[string][]int, n),
	}
	for i := range a.Trans {
		a.Trans[i] = map[string][]int{}
	}
	a.Accept[0] = g.Nullable
	for p := range g.First {
		sym := g.Syms[p]
		a.Trans[0][sym] = append(a.Trans[0][sym], p+1)
	}
	for p := range g.Last {
		a.Accept[p+1] = true
	}
	for p, fs := range g.Follow {
		for q := range fs {
			sym := g.Syms[q]
			a.Trans[p+1][sym] = append(a.Trans[p+1][sym], q+1)
		}
	}
	alpha := map[string]bool{}
	for _, s := range g.Syms {
		alpha[s] = true
	}
	a.Alphabet = sortedKeys(alpha)
	for i := range a.Trans {
		for _, succs := range a.Trans[i] {
			sort.Ints(succs)
		}
	}
	return a
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Member reports whether the NFA accepts the string w of element names.
func (a *NFA) Member(w []string) bool {
	cur := map[int]bool{0: true}
	for _, sym := range w {
		next := map[int]bool{}
		for s := range cur {
			for _, t := range a.Trans[s][sym] {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for s := range cur {
		if a.Accept[s] {
			return true
		}
	}
	return false
}

// IsDeterministic reports whether no state has two transitions on the same
// symbol. The Glushkov automaton of a one-unambiguous expression is
// deterministic.
func (a *NFA) IsDeterministic() bool {
	for _, tr := range a.Trans {
		for _, succs := range tr {
			if len(succs) > 1 {
				return false
			}
		}
	}
	return true
}

// DFA is a deterministic finite automaton over element names. State 0 is
// the start state; missing transitions go to an implicit dead state.
type DFA struct {
	NumStates int
	Accept    []bool
	Trans     []map[string]int
	Alphabet  []string
}

// Determinize converts the NFA to an equivalent DFA by subset construction.
func (a *NFA) Determinize() *DFA {
	type key = string
	encode := func(set []int) key {
		b := make([]byte, 0, len(set)*3)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), byte(s>>16))
		}
		return string(b)
	}
	start := []int{0}
	ids := map[key]int{encode(start): 0}
	sets := [][]int{start}
	d := &DFA{Alphabet: a.Alphabet}
	d.Trans = append(d.Trans, nil)
	d.Accept = append(d.Accept, false)
	for i := 0; i < len(sets); i++ {
		set := sets[i]
		acc := false
		succ := map[string]map[int]bool{}
		for _, s := range set {
			if a.Accept[s] {
				acc = true
			}
			for sym, ts := range a.Trans[s] {
				m := succ[sym]
				if m == nil {
					m = map[int]bool{}
					succ[sym] = m
				}
				for _, t := range ts {
					m[t] = true
				}
			}
		}
		d.Accept[i] = acc
		tr := map[string]int{}
		for sym, m := range succ {
			next := make([]int, 0, len(m))
			for t := range m {
				next = append(next, t)
			}
			sort.Ints(next)
			k := encode(next)
			id, ok := ids[k]
			if !ok {
				id = len(sets)
				ids[k] = id
				sets = append(sets, next)
				d.Trans = append(d.Trans, nil)
				d.Accept = append(d.Accept, false)
			}
			tr[sym] = id
		}
		d.Trans[i] = tr
	}
	d.NumStates = len(sets)
	return d
}

// FromExpr builds the minimal DFA of a regular expression.
func FromExpr(e *regex.Expr) *DFA {
	return Glushkov(e).Determinize().Minimize()
}

// Member reports whether the DFA accepts w.
func (d *DFA) Member(w []string) bool {
	s := 0
	for _, sym := range w {
		t, ok := d.Trans[s][sym]
		if !ok {
			return false
		}
		s = t
	}
	return d.Accept[s]
}
