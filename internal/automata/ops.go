package automata

import "sort"

// Minimize returns the minimal DFA for the same language, using Moore's
// partition-refinement algorithm over the completed automaton (the implicit
// dead state participates in the refinement but is dropped again from the
// result). Unreachable states are removed first.
func (d *DFA) Minimize() *DFA {
	d = d.trim()
	n := d.NumStates + 1 // extra dead state at index n-1... appended below
	dead := d.NumStates
	// class[s] is the current partition class of s; start from accept split.
	class := make([]int, n)
	for s := 0; s < d.NumStates; s++ {
		if d.Accept[s] {
			class[s] = 1
		}
	}
	class[dead] = 0
	step := func(s int, sym string) int {
		if s == dead {
			return dead
		}
		t, ok := d.Trans[s][sym]
		if !ok {
			return dead
		}
		return t
	}
	for {
		// Signature of a state: its class plus the classes of its successors.
		type sig struct {
			own  int
			succ string
		}
		sigs := make([]sig, n)
		for s := 0; s < n; s++ {
			b := make([]byte, 0, len(d.Alphabet)*3)
			for _, sym := range d.Alphabet {
				c := class[step(s, sym)]
				b = append(b, byte(c), byte(c>>8), byte(c>>16))
			}
			sigs[s] = sig{own: class[s], succ: string(b)}
		}
		ids := map[sig]int{}
		next := make([]int, n)
		for s := 0; s < n; s++ {
			id, ok := ids[sigs[s]]
			if !ok {
				id = len(ids)
				ids[sigs[s]] = id
			}
			next[s] = id
		}
		same := true
		for s := 0; s < n; s++ {
			if next[s] != class[s] {
				same = false
				break
			}
		}
		class = next
		if same {
			break
		}
	}
	// Build the quotient automaton, dropping the dead class.
	deadClass := class[dead]
	remap := map[int]int{}
	order := []int{class[0]}
	remap[class[0]] = 0
	for s := 0; s < d.NumStates; s++ {
		c := class[s]
		if c == deadClass {
			continue
		}
		if _, ok := remap[c]; !ok {
			remap[c] = len(order)
			order = append(order, c)
		}
	}
	out := &DFA{
		NumStates: len(order),
		Accept:    make([]bool, len(order)),
		Trans:     make([]map[string]int, len(order)),
		Alphabet:  d.Alphabet,
	}
	for i := range out.Trans {
		out.Trans[i] = map[string]int{}
	}
	for s := 0; s < d.NumStates; s++ {
		c := class[s]
		if c == deadClass {
			continue
		}
		i := remap[c]
		out.Accept[i] = d.Accept[s]
		for sym, t := range d.Trans[s] {
			if class[t] == deadClass {
				continue
			}
			out.Trans[i][sym] = remap[class[t]]
		}
	}
	return out
}

// trim removes unreachable states and states from which no accepting state
// is reachable.
func (d *DFA) trim() *DFA {
	reach := make([]bool, d.NumStates)
	queue := []int{0}
	reach[0] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, t := range d.Trans[s] {
			if !reach[t] {
				reach[t] = true
				queue = append(queue, t)
			}
		}
	}
	// Backward reachability from accepting states.
	rev := make([][]int, d.NumStates)
	for s := 0; s < d.NumStates; s++ {
		for _, t := range d.Trans[s] {
			rev[t] = append(rev[t], s)
		}
	}
	live := make([]bool, d.NumStates)
	queue = queue[:0]
	for s := 0; s < d.NumStates; s++ {
		if d.Accept[s] && reach[s] {
			live[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, p := range rev[s] {
			if reach[p] && !live[p] {
				live[p] = true
				queue = append(queue, p)
			}
		}
	}
	keep := make([]int, d.NumStates)
	for i := range keep {
		keep[i] = -1
	}
	var order []int
	if live[0] {
		keep[0] = 0
		order = append(order, 0)
	}
	for s := 1; s < d.NumStates; s++ {
		if live[s] {
			keep[s] = len(order)
			order = append(order, s)
		}
	}
	out := &DFA{Alphabet: d.Alphabet}
	if len(order) == 0 || keep[0] == -1 {
		// Empty language: single non-accepting start state.
		return &DFA{
			NumStates: 1,
			Accept:    []bool{false},
			Trans:     []map[string]int{{}},
			Alphabet:  d.Alphabet,
		}
	}
	out.NumStates = len(order)
	out.Accept = make([]bool, len(order))
	out.Trans = make([]map[string]int, len(order))
	for i, s := range order {
		out.Accept[i] = d.Accept[s]
		out.Trans[i] = map[string]int{}
		for sym, t := range d.Trans[s] {
			if keep[t] >= 0 {
				out.Trans[i][sym] = keep[t]
			}
		}
	}
	return out
}

// Equivalent reports whether two DFAs accept the same language, by breadth-
// first search over the product automaton with implicit dead states.
func Equivalent(d1, d2 *DFA) bool {
	return compare(d1, d2, func(a1, a2 bool) bool { return a1 != a2 })
}

// Includes reports whether L(d2) ⊆ L(d1).
func Includes(d1, d2 *DFA) bool {
	return compare(d1, d2, func(a1, a2 bool) bool { return a2 && !a1 })
}

// compare explores the product of d1 and d2 and returns false as soon as a
// reachable state pair violates the predicate bad(accept1, accept2);
// otherwise it returns true. The dead state is represented as -1.
func compare(d1, d2 *DFA, bad func(a1, a2 bool) bool) bool {
	alpha := map[string]bool{}
	for _, s := range d1.Alphabet {
		alpha[s] = true
	}
	for _, s := range d2.Alphabet {
		alpha[s] = true
	}
	alphabet := sortedKeys(alpha)
	type pair struct{ s1, s2 int }
	accepts := func(d *DFA, s int) bool { return s >= 0 && d.Accept[s] }
	move := func(d *DFA, s int, sym string) int {
		if s < 0 {
			return -1
		}
		t, ok := d.Trans[s][sym]
		if !ok {
			return -1
		}
		return t
	}
	start := pair{0, 0}
	seen := map[pair]bool{start: true}
	queue := []pair{start}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if bad(accepts(d1, p.s1), accepts(d2, p.s2)) {
			return false
		}
		if p.s1 < 0 && p.s2 < 0 {
			continue
		}
		for _, sym := range alphabet {
			q := pair{move(d1, p.s1, sym), move(d2, p.s2, sym)}
			if q.s1 < 0 && q.s2 < 0 {
				continue
			}
			if !seen[q] {
				seen[q] = true
				queue = append(queue, q)
			}
		}
	}
	return true
}

// Enumerate returns all accepted strings of length at most maxLen, in
// shortlex order. It is intended for exhaustively checking language
// equalities on small alphabets in tests.
func (d *DFA) Enumerate(maxLen int) [][]string {
	var out [][]string
	type node struct {
		state int
		word  []string
	}
	frontier := []node{{0, nil}}
	if d.Accept[0] {
		out = append(out, nil)
	}
	for l := 1; l <= maxLen; l++ {
		var next []node
		for _, n := range frontier {
			syms := make([]string, 0, len(d.Trans[n.state]))
			for sym := range d.Trans[n.state] {
				syms = append(syms, sym)
			}
			sort.Strings(syms)
			for _, sym := range syms {
				t := d.Trans[n.state][sym]
				w := append(append([]string{}, n.word...), sym)
				next = append(next, node{t, w})
				if d.Accept[t] {
					out = append(out, w)
				}
			}
		}
		frontier = next
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}
