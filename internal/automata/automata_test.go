package automata

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
)

func split(w string) []string {
	if w == "" {
		return nil
	}
	out := make([]string, len(w))
	for i, r := range w {
		out[i] = string(r)
	}
	return out
}

func TestGlushkovMemberPaperExample(t *testing.T) {
	e := regex.MustParse("((b?(a + c))+d)+e")
	a := Glushkov(e)
	accepts := []string{"ade", "bade", "cde", "acde", "bacacdacde", "cbacdbacde", "abccaadcde", "adade"}
	rejects := []string{"", "e", "ad", "ae", "abde", "ade e", "bde", "dade"}
	for _, w := range accepts {
		if !a.Member(split(w)) {
			t.Errorf("should accept %q", w)
		}
	}
	for _, w := range rejects {
		if a.Member(split(w)) {
			t.Errorf("should reject %q", w)
		}
	}
}

func TestGlushkovDeterministicForSORE(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alpha := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < 200; i++ {
		e := regextest.RandomSORE(rng, alpha, 3)
		if !Glushkov(e).IsDeterministic() {
			t.Fatalf("Glushkov automaton of SORE %s is not deterministic", e)
		}
	}
}

func TestDeterminizeAgreesWithNFA(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	alpha := []string{"a", "b", "c"}
	for i := 0; i < 100; i++ {
		e := regextest.RandomExpr(rng, alpha, 3)
		n := Glushkov(e)
		d := n.Determinize()
		for j := 0; j < 50; j++ {
			w := randomWord(rng, alpha, 6)
			if n.Member(w) != d.Member(w) {
				t.Fatalf("NFA and DFA disagree on %v for %s", w, e)
			}
		}
	}
}

func randomWord(rng *rand.Rand, alpha []string, maxLen int) []string {
	n := rng.Intn(maxLen + 1)
	w := make([]string, n)
	for i := range w {
		w[i] = alpha[rng.Intn(len(alpha))]
	}
	return w
}

func TestMinimizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alpha := []string{"a", "b", "c"}
	for i := 0; i < 100; i++ {
		e := regextest.RandomExpr(rng, alpha, 3)
		d := Glushkov(e).Determinize()
		m := d.Minimize()
		if m.NumStates > d.NumStates {
			t.Fatalf("minimize grew automaton for %s: %d > %d", e, m.NumStates, d.NumStates)
		}
		for j := 0; j < 80; j++ {
			w := randomWord(rng, alpha, 6)
			if d.Member(w) != m.Member(w) {
				t.Fatalf("minimized DFA disagrees on %v for %s", w, e)
			}
		}
	}
}

func TestMinimizeCanonicalSize(t *testing.T) {
	// a+ and a a* and (a a*)? a — wait, the last is not equivalent; use two
	// standard pairs with known minimal sizes.
	d := FromExpr(regex.MustParse("a+"))
	if d.NumStates != 2 {
		t.Errorf("minimal DFA of a+ has %d states, want 2", d.NumStates)
	}
	d = FromExpr(regex.MustParse("a*"))
	if d.NumStates != 1 {
		t.Errorf("minimal DFA of a* has %d states, want 1", d.NumStates)
	}
}

func TestEquivalentBasics(t *testing.T) {
	pairs := []struct {
		e1, e2 string
		want   bool
	}{
		{"(a+)?", "a*", true},
		{"a a*", "a+", true},
		{"(a + b)*", "(a* b*)*", true},
		{"a?", "a", false},
		{"a b", "b a", false},
		{"(a?)+", "a*", true},
		{"a (b + c)", "a b + a c", true},
		{"((b?(a + c))+d)+e", "((b?(a + c)+)+d)+e", true}, // noted in Figure 3 caption
		{"(a + b)+", "(a + b)*", false},
	}
	for _, tc := range pairs {
		got := ExprEquivalent(regex.MustParse(tc.e1), regex.MustParse(tc.e2))
		if got != tc.want {
			t.Errorf("Equivalent(%q, %q) = %v, want %v", tc.e1, tc.e2, got, tc.want)
		}
	}
}

func TestIncludes(t *testing.T) {
	tests := []struct {
		super, sub string
		want       bool
	}{
		{"(a + b)*", "a+", true},
		{"a+", "(a + b)*", false},
		{"a? b? c?", "a c", true},
		{"a b? c", "a c?", false},
		{"a1 (b1 + d1) (c1 + e1)", "a1 b1? d1? c1? e1?", false}, // the CHARE is more general
		{"a1 b1? d1? c1? e1?", "a1 (b1 + d1) (c1 + e1)", false}, // and incomparable: bd not in rhs... check below
	}
	// a1(b1+d1)(c1+e1) requires exactly one of b1/d1 then one of c1/e1; the
	// CHARE a1 b1? d1? c1? e1? accepts a1 b1 d1 c1 e1 which the former rejects,
	// and accepts a1 (nothing) which the former also rejects. Conversely every
	// string of the former is accepted by the CHARE, so inclusion holds one way.
	tests[4].want = false // super=(a+b)-form does not include the CHARE
	tests[5].want = true  // the CHARE includes the stricter expression
	for _, tc := range tests {
		got := ExprIncludes(regex.MustParse(tc.super), regex.MustParse(tc.sub))
		if got != tc.want {
			t.Errorf("Includes(%q ⊇ %q) = %v, want %v", tc.super, tc.sub, got, tc.want)
		}
	}
}

func TestSimplifyPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	alpha := []string{"a", "b", "c", "d"}
	for i := 0; i < 150; i++ {
		e := regextest.RandomExpr(rng, alpha, 4)
		s := regex.Simplify(e)
		if !ExprEquivalent(e, s) {
			t.Fatalf("Simplify changed language: %s vs %s", e, s)
		}
	}
}

func TestExpandRepeatsPreservesLanguage(t *testing.T) {
	cases := []string{"a{2,}", "a{2,4}", "a{1,3} b", "(a b){2}", "(a + b){0,2}"}
	for _, c := range cases {
		e := regex.MustParse(c)
		x := regex.ExpandRepeats(e)
		if !ExprEquivalent(e, x) {
			t.Fatalf("ExpandRepeats changed language of %q: %s", c, x)
		}
	}
}

func TestEnumerate(t *testing.T) {
	d := FromExpr(regex.MustParse("(a + b) c?"))
	got := d.Enumerate(2)
	want := [][]string{{"a"}, {"b"}, {"a", "c"}, {"b", "c"}}
	if len(got) != len(want) {
		t.Fatalf("Enumerate = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("Enumerate = %v, want %v", got, want)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("Enumerate = %v, want %v", got, want)
			}
		}
	}
}

func TestEnumerateMatchesMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alpha := []string{"a", "b"}
	for i := 0; i < 40; i++ {
		e := regextest.RandomExpr(rng, alpha, 3)
		d := FromExpr(e)
		seen := map[string]bool{}
		for _, w := range d.Enumerate(5) {
			if !ExprMember(e, w) {
				t.Fatalf("enumerated non-member %v of %s", w, e)
			}
			seen[join(w)] = true
		}
		// Exhaustive cross-check over all words of length <= 4.
		var all func(prefix []string, l int)
		all = func(prefix []string, l int) {
			if ExprMember(e, prefix) != seen[join(prefix)] {
				t.Fatalf("membership mismatch on %v for %s", prefix, e)
			}
			if l == 0 {
				return
			}
			for _, s := range alpha {
				all(append(prefix, s), l-1)
			}
		}
		all(nil, 4)
	}
}

func join(w []string) string {
	out := ""
	for _, s := range w {
		out += s + "."
	}
	return out
}

func TestSampleStringsAreMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	alpha := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 100; i++ {
		e := regextest.RandomExpr(rng, alpha, 4)
		a := Glushkov(e)
		for j := 0; j < 20; j++ {
			w := regextest.Sample(rng, e, 1, 2)
			if !a.Member(w) {
				t.Fatalf("sampled string %v not in L(%s)", w, e)
			}
		}
	}
}

func TestEmptyLanguageMinimize(t *testing.T) {
	// An automaton with an unreachable accepting state minimizes to the
	// 1-state empty-language DFA.
	d := &DFA{
		NumStates: 2,
		Accept:    []bool{false, true},
		Trans:     []map[string]int{{}, {"a": 1}},
		Alphabet:  []string{"a"},
	}
	m := d.Minimize()
	if m.NumStates != 1 || m.Accept[0] {
		t.Errorf("empty language minimized to %d states, accept=%v", m.NumStates, m.Accept)
	}
	if !Equivalent(m, m) {
		t.Error("empty language must be self-equivalent")
	}
}

// Derivative matching and the Glushkov automaton are independent engines;
// they must agree on every expression and word (testing/quick property).
func TestDerivativesAgreeWithGlushkov(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alpha := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := regextest.RandomExpr(r, alpha, 4)
		g := Glushkov(e)
		for j := 0; j < 40; j++ {
			w := randomWord(r, alpha, 7)
			if g.Member(w) != e.Match(w) {
				t.Logf("disagree on %v for %s", w, e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Myhill-Nerode: equivalent expressions have minimal DFAs of the same
// size (the minimal DFA is unique up to isomorphism).
func TestMinimalDFACanonicalSize(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	alpha := []string{"a", "b", "c"}
	for i := 0; i < 150; i++ {
		e := regextest.RandomExpr(rng, alpha, 3)
		d1 := FromExpr(e)
		d2 := FromExpr(regex.Simplify(e))
		if !Equivalent(d1, d2) {
			t.Fatalf("Simplify changed language of %s", e)
		}
		if d1.NumStates != d2.NumStates {
			t.Fatalf("minimal DFAs differ in size for %s: %d vs %d",
				e, d1.NumStates, d2.NumStates)
		}
	}
}
