package automata

import "dtdinfer/internal/regex"

// ExprEquivalent reports whether L(e1) = L(e2).
func ExprEquivalent(e1, e2 *regex.Expr) bool {
	return Equivalent(FromExpr(e1), FromExpr(e2))
}

// ExprIncludes reports whether L(sub) ⊆ L(super).
func ExprIncludes(super, sub *regex.Expr) bool {
	return Includes(FromExpr(super), FromExpr(sub))
}

// ExprMember reports whether the string w of element names belongs to L(e).
func ExprMember(e *regex.Expr, w []string) bool {
	return Glushkov(e).Member(w)
}

// AcceptsAll reports whether every string in ws belongs to L(e).
func AcceptsAll(e *regex.Expr, ws [][]string) bool {
	a := Glushkov(e)
	for _, w := range ws {
		if !a.Member(w) {
			return false
		}
	}
	return true
}
