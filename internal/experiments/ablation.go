package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/datagen"
	"dtdinfer/internal/idtd"
	"dtdinfer/internal/ktest"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
	"dtdinfer/internal/sampling"
)

// AblationResult collects the two design-choice studies DESIGN.md calls
// out: the iDTD repair-candidate policy, and the window size k of the
// k-testable substrate (why the paper's 2T-INF stops at k = 2).
type AblationResult struct {
	// PolicyRecovery maps each repair policy to its exact-recovery rate on
	// sparse samples of random SOREs.
	PolicyRecovery map[string]float64
	// PolicyRuns is the number of inference runs per policy.
	PolicyRuns int
	// KTest maps window size k to the acceptance curve: for each sample
	// size, the fraction of fresh target strings the inferred k-testable
	// language accepts (generalization; k = 2 should dominate).
	KTest      map[int][]float64
	KTestSizes []int
}

// RunAblation executes both studies.
func RunAblation(seed int64) AblationResult {
	res := AblationResult{
		PolicyRecovery: map[string]float64{},
		KTest:          map[int][]float64{},
	}

	// Repair policy: exact recovery of random SOREs from 8 sparse samples.
	policies := map[string]idtd.RepairPolicy{
		"balanced":          idtd.PolicyBalanced,
		"disjunction-first": idtd.PolicyDisjunctionFirst,
		"optional-first":    idtd.PolicyOptionalFirst,
	}
	alpha := []string{"a", "b", "c", "d", "e"}
	const runs = 300
	for name, policy := range policies {
		exact, counted := 0, 0
		for i := 0; i < runs; i++ {
			rng := rand.New(rand.NewSource(seed + int64(i)))
			target := regextest.RandomSORE(rng, alpha, 3)
			var ws [][]string
			nonEmpty := false
			for j := 0; j < 8; j++ {
				w := regextest.Sample(rng, target, 1, 2)
				nonEmpty = nonEmpty || len(w) > 0
				ws = append(ws, w)
			}
			if !nonEmpty {
				continue
			}
			r, err := idtd.Infer(ws, &idtd.Options{Policy: policy})
			if err != nil {
				continue
			}
			counted++
			if automata.ExprEquivalent(r.Expr, target) {
				exact++
			}
		}
		res.PolicyRecovery[name] = float64(exact) / float64(counted)
		res.PolicyRuns = counted
	}

	// k-testable window: generalization of L_k on the (‡) target.
	target := regex.MustParse(Figure4[2].Target)
	s := datagen.NewSampler(seed)
	base := datagen.RepresentativeSample(s, target, 1000)
	probe := datagen.NewSampler(seed+1).SampleN(target, 400)
	res.KTestSizes = []int{20, 40, 80, 160, 320, 640, 1000}
	rng := rand.New(rand.NewSource(seed + 2))
	covers := sampling.CoversAlphabet(target.Symbols())
	for _, k := range []int{2, 3, 4} {
		var curve []float64
		for _, size := range res.KTestSizes {
			sub := sampling.ReservoirEnsuring(rng, base, size, covers, 50)
			l := ktest.Infer(k, sub)
			hit := 0
			for _, w := range probe {
				if l.Member(w) {
					hit++
				}
			}
			curve = append(curve, float64(hit)/float64(len(probe)))
		}
		res.KTest[k] = curve
	}
	return res
}

// FormatAblation renders both studies.
func FormatAblation(r AblationResult) string {
	var b strings.Builder
	b.WriteString(header("Ablations: iDTD repair policy and the k-testable window"))
	fmt.Fprintf(&b, "\nrepair policy — exact recovery of random SOREs from 8 sparse strings (%d runs):\n", r.PolicyRuns)
	for _, name := range []string{"balanced", "disjunction-first", "optional-first"} {
		fmt.Fprintf(&b, "  %-18s %.3f\n", name, r.PolicyRecovery[name])
	}
	b.WriteString("\nk-testable window — fraction of fresh target strings accepted by L_k\n")
	b.WriteString("inferred from a subsample of the given size (target: Figure 4's (‡)):\n")
	fmt.Fprintf(&b, "%8s", "size")
	for _, k := range []int{2, 3, 4} {
		fmt.Fprintf(&b, "%9s", fmt.Sprintf("k=%d", k))
	}
	b.WriteString("\n")
	for i, size := range r.KTestSizes {
		fmt.Fprintf(&b, "%8d", size)
		for _, k := range []int{2, 3, 4} {
			fmt.Fprintf(&b, "%9.3f", r.KTest[k][i])
		}
		b.WriteString("\n")
	}
	b.WriteString("\nk = 2 generalizes fastest from small samples — and is the only window\n" +
		"for which the inferred automaton is single occurrence and rewritable\n" +
		"into a SORE, the paper's reason to build on 2T-INF.\n")
	return b.String()
}
