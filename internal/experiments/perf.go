package experiments

import (
	"fmt"
	"strings"
	"time"

	"dtdinfer/internal/core"
	"dtdinfer/internal/gfa"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/soa"
	"dtdinfer/internal/stateelim"
)

// PerfResult reproduces the Section 8.3 performance discussion: example4
// (61 symbols) from 10000 example strings took iDTD 7 s and CRX 3.2 s on
// the authors' 2.5 GHz Pentium 4 (including JVM startup); a "typical"
// 10-symbol expression from a few hundred strings took about a second.
type PerfResult struct {
	// Example4IDTD and Example4CRX are this machine's timings.
	Example4IDTD time.Duration
	Example4CRX  time.Duration
	// TypicalIDTD and TypicalCRX time a 10-symbol expression over 300
	// strings.
	TypicalIDTD time.Duration
	TypicalCRX  time.Duration
	// SampleSize records the example4 sample size used.
	SampleSize int
}

// RunPerf measures the Section 8.3 workloads.
func RunPerf(seed int64) (PerfResult, error) {
	row := Table2[3] // example4
	target := regex.MustParse(row.Original)
	sample := sampleFor(target, row.SampleSize, seed)
	res := PerfResult{SampleSize: len(sample)}
	var err error
	if res.Example4IDTD, err = timeAlgo(sample, core.IDTD); err != nil {
		return res, err
	}
	if res.Example4CRX, err = timeAlgo(sample, core.CRX); err != nil {
		return res, err
	}

	typical := regex.MustParse("a1 a2? (a3 + a4 + a5)* a6 (a7 + a8)? a9* a10")
	tsample := sampleFor(typical, 300, seed+1)
	if res.TypicalIDTD, err = timeAlgo(tsample, core.IDTD); err != nil {
		return res, err
	}
	if res.TypicalCRX, err = timeAlgo(tsample, core.CRX); err != nil {
		return res, err
	}
	return res, nil
}

func timeAlgo(sample [][]string, algo core.Algorithm) (time.Duration, error) {
	start := time.Now()
	if _, err := core.InferExpr(sample, algo, nil); err != nil {
		return 0, fmt.Errorf("experiments: %s failed: %w", algo, err)
	}
	return time.Since(start), nil
}

// FormatPerf renders the timings next to the paper's.
func FormatPerf(r PerfResult) string {
	var b strings.Builder
	b.WriteString(header("Section 8.3: performance"))
	fmt.Fprintf(&b, "example4, %d strings, 61 symbols:\n", r.SampleSize)
	fmt.Fprintf(&b, "  iDTD : %v   (paper: 7 s on a 2.5 GHz P4, incl. JVM startup)\n", r.Example4IDTD)
	fmt.Fprintf(&b, "  crx  : %v   (paper: 3.2 s)\n", r.Example4CRX)
	fmt.Fprintf(&b, "typical 10-symbol expression, 300 strings:\n")
	fmt.Fprintf(&b, "  iDTD : %v   (paper: about a second)\n", r.TypicalIDTD)
	fmt.Fprintf(&b, "  crx  : %v\n", r.TypicalCRX)
	return b.String()
}

// ConcisenessResult reproduces the introduction's contrast between state
// elimination (expression (†)) and rewrite (expression (‡)) on the
// Figure 1 automaton.
type ConcisenessResult struct {
	StateElim       *regex.Expr
	Rewrite         *regex.Expr
	StateElimTokens int
	RewriteTokens   int
	// Trace is the rewrite derivation, matching Figure 3 step by step.
	Trace []string
}

// RunConciseness runs both translations on the Figure 1 automaton.
func RunConciseness() (ConcisenessResult, error) {
	sample := [][]string{
		split("bacacdacde"), split("cbacdbacde"), split("abccaadcde"),
	}
	a := soa.Infer(sample)
	big, err := stateelim.FromSOA(a)
	if err != nil {
		return ConcisenessResult{}, fmt.Errorf("experiments: state elimination failed: %w", err)
	}
	g := gfa.FromSOA(a)
	g.EnableTrace()
	g.Saturate()
	small, err := g.Result()
	if err != nil {
		return ConcisenessResult{}, fmt.Errorf("experiments: rewrite failed: %w", err)
	}
	return ConcisenessResult{
		StateElim:       big,
		Rewrite:         small,
		StateElimTokens: big.Tokens(),
		RewriteTokens:   small.Tokens(),
		Trace:           g.Trace(),
	}, nil
}

func split(w string) []string {
	out := make([]string, len(w))
	for i, r := range w {
		out[i] = string(r)
	}
	return out
}

// FormatConciseness renders the contrast.
func FormatConciseness(r ConcisenessResult) string {
	var b strings.Builder
	b.WriteString(header("Introduction / Figures 1-3: state elimination vs rewrite"))
	fmt.Fprintf(&b, "automaton: Figure 1 (W = {bacacdacde, cbacdbacde, abccaadcde})\n")
	fmt.Fprintf(&b, "rewrite derivation (Figure 3):\n")
	for i, step := range r.Trace {
		fmt.Fprintf(&b, "  (%d) %s\n", i+1, step)
	}
	fmt.Fprintf(&b, "rewrite (‡)        : %s   [%d tokens]\n", r.Rewrite, r.RewriteTokens)
	fmt.Fprintf(&b, "state elimination (†): %d tokens\n", r.StateElimTokens)
	fmt.Fprintf(&b, "  %s\n", shorten(r.StateElim.String()))
	fmt.Fprintf(&b, "blow-up factor     : %.1fx\n",
		float64(r.StateElimTokens)/float64(r.RewriteTokens))
	return b.String()
}
