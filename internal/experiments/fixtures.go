// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 8) plus the introduction's conciseness contrast:
//
//	Table 1   — real-world element definitions (Protein SDB, Mondial)
//	Table 2   — sophisticated real-world expressions on generated data
//	Figure 4  — generalization curves (fraction of subsamples recovering
//	            the target, per sample size, for CRX / iDTD / rewrite)
//	§8.3      — timing of iDTD and CRX on example4
//	Intro/Fig 1-3 — state elimination blow-up vs rewrite
//
// Data is synthesized with internal/datagen (the ToXgene substitute): each
// element's sample is generated from the expression the paper reports as
// the corpus behaviour, at the paper's sample sizes, and is representative
// in the 2T-INF sense unless an experiment deliberately subsamples.
package experiments

// Table1Row describes one element definition of Table 1.
type Table1Row struct {
	// Element is the element name as listed in the paper.
	Element string
	// Original is the content model of the published DTD.
	Original string
	// CorpusTruth is the stricter expression the paper reports the actual
	// corpus to follow (equal to Original when the data matches the DTD);
	// samples are generated from it, and the paper's result for crx/iDTD
	// coincides with it.
	CorpusTruth string
	// PaperCRX is the crx result the paper reports when it differs from
	// CorpusTruth (empty means crx and iDTD coincide, the common case).
	PaperCRX string
	// SampleSize is the number of strings used for crx/iDTD in the paper.
	SampleSize int
	// XtractSize is the (smaller) sample the paper could run xtract on;
	// 0 means xtract could not run at all at any reported size.
	XtractSize int
	// PaperXtractTokens is the token count the paper reports for xtract
	// when it only reports a size ("an expression of 185 tokens"); 0 when
	// the paper shows the expression itself.
	PaperXtractTokens int
}

// Table1 lists the nine non-trivial element definitions of Table 1. The
// abstract names a1, a2, ... follow the paper.
var Table1 = []Table1Row{
	{
		Element:           "ProteinEntry",
		Original:          "a1 a2 a3 a4* a5* a6* a7* a8* a9? a10? a11* a12 a13",
		CorpusTruth:       "a1 a2 a3 a4+ a5* a6* a7* a8* a9? a10? a11* a12 a13",
		SampleSize:        2458,
		XtractSize:        843,
		PaperXtractTokens: 185,
	},
	{
		Element:     "organism",
		Original:    "a1 a2? a3 a4? a5*",
		CorpusTruth: "a1 a2? a3 a4? a5*",
		SampleSize:  9,
		XtractSize:  9,
	},
	{
		Element:     "reference",
		Original:    "a1 a2* a3* a4*",
		CorpusTruth: "a1 a2* a3* a4*",
		SampleSize:  45,
		XtractSize:  45,
	},
	{
		Element:     "refinfo",
		Original:    "a1 a2 a3? a4? a5 a6? (a7 + a8)? a9?",
		CorpusTruth: "a1 a2 (a3 + a4)? a5 a6? a7? a9? a8?",
		SampleSize:  10,
		XtractSize:  10,
	},
	{
		Element:     "authors",
		Original:    "a1+ + (a2 a3?)",
		CorpusTruth: "a1+ + (a2 a3)",
		PaperCRX:    "a1* a2? a3?",
		SampleSize:  54,
		XtractSize:  54,
	},
	{
		Element:           "accinfo",
		Original:          "a1 a2* a3* a4? a5? a6? a7*",
		CorpusTruth:       "a1 a2* a3+ a4? a5? a6? a7*",
		SampleSize:        124,
		XtractSize:        124,
		PaperXtractTokens: 97,
	},
	{
		Element:           "genetics",
		Original:          "a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a11* a12*",
		CorpusTruth:       "a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a12*",
		SampleSize:        219,
		XtractSize:        219,
		PaperXtractTokens: 329,
	},
	{
		Element:     "function",
		Original:    "a1? a2* a3*",
		CorpusTruth: "a1? a2* a3*",
		SampleSize:  26,
		XtractSize:  26,
	},
	{
		Element:     "city",
		Original:    "a1 a2* a3*",
		CorpusTruth: "a1 a2* a3*",
		SampleSize:  9,
		XtractSize:  9,
	},
}

// Table2Row describes one synthetic expression of Table 2.
type Table2Row struct {
	// Element names the row (example1..example5).
	Element string
	// Original is the target expression from a real-world DTD.
	Original string
	// PaperCRX and PaperIDTD are the results the paper reports.
	PaperCRX  string
	PaperIDTD string
	// SampleSize is the generated sample size for crx and iDTD.
	SampleSize int
	// XtractSize is the capped sample size the paper could run xtract on.
	XtractSize int
	// PaperXtractTokens is the xtract output size the paper reports (0
	// when the paper shows the expression, as for example1).
	PaperXtractTokens int
}

func disj(prefix string, from, to int) string {
	out := ""
	for i := from; i <= to; i++ {
		if out != "" {
			out += " + "
		}
		out += prefix + itoa(i)
	}
	return "(" + out + ")"
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

// Table2 lists the five expressions of Table 2.
var Table2 = []Table2Row{
	{
		Element:    "example1",
		Original:   "a1+ + (a2? a3+)",
		PaperCRX:   "a1* a2? a3*",
		PaperIDTD:  "a1+ + (a2? a3+)",
		SampleSize: 48,
		XtractSize: 48,
	},
	{
		Element:           "example2",
		Original:          "(a1 a2? a3?)? a4? " + disj("a", 5, 18) + "*",
		PaperCRX:          "a1? a2? a3? a4? " + disj("a", 5, 18) + "*",
		PaperIDTD:         "(a1 a2? a3?)? a4? " + disj("a", 5, 18) + "*",
		SampleSize:        2210,
		XtractSize:        300,
		PaperXtractTokens: 252,
	},
	{
		Element:           "example3",
		Original:          "a1? (a2 a3?)? " + disj("a", 4, 44) + "* a45+",
		PaperCRX:          "a1? a2? a3? " + disj("a", 4, 44) + "* a45+",
		PaperIDTD:         "a1? (a2 a3?)? " + disj("a", 4, 44) + "* a45+",
		SampleSize:        5741,
		XtractSize:        400,
		PaperXtractTokens: 142,
	},
	{
		Element:           "example4",
		Original:          "a1? a2 a3? a4? (a5+ + (" + disj("a", 6, 61) + "+ a5*))",
		PaperCRX:          "a1? a2 a3? a4? " + disj("a", 6, 61) + "* a5*",
		PaperIDTD:         "a1? a2 a3? a4? " + disj("a", 6, 61) + "* a5*",
		SampleSize:        10000,
		XtractSize:        500,
		PaperXtractTokens: 185,
	},
	{
		Element:           "example5",
		Original:          "a1 (a2 + a3)* (a4 (a2 + a3 + a5)*)*",
		PaperCRX:          "a1 (a2 + a3 + a4 + a5)*",
		PaperIDTD:         "a1 ((a2 + a3 + a4)+ a5*)*",
		SampleSize:        1281,
		XtractSize:        500,
		PaperXtractTokens: 85,
	},
}

// Figure4Panel describes one plot of Figure 4.
type Figure4Panel struct {
	// Name labels the panel.
	Name string
	// Target is the expression samples are drawn from.
	Target string
	// MaxSize is the largest subsample size plotted.
	MaxSize int
	// BaseSample is the size of the representative base sample the
	// subsamples are drawn from.
	BaseSample int
}

// Figure4 lists the three panels: example2, example4, and the expression
// (‡) = (a1 (a2+...+a12)+ (a13+a14))+.
var Figure4 = []Figure4Panel{
	{Name: "example2", Target: Table2[1].Original, MaxSize: 2000, BaseSample: 2210},
	{Name: "example4", Target: Table2[3].Original, MaxSize: 6000, BaseSample: 10000},
	{Name: "expr-ddagger", Target: "(a1 " + disj("a", 2, 12) + "+ (a13 + a14))+",
		MaxSize: 900, BaseSample: 1000},
}
