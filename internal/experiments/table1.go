package experiments

import (
	"fmt"
	"strings"

	"dtdinfer/internal/core"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
	"dtdinfer/internal/xtract"
)

// Table1Result is the reproduction of one Table 1 row.
type Table1Result struct {
	Row  Table1Row
	CRX  AlgoResult
	IDTD AlgoResult
	// Xtract runs on the (possibly smaller) XtractSize sample.
	Xtract AlgoResult
	// CRXMatch / IDTDMatch compare against the corpus-truth expression the
	// paper reports as the crx/iDTD result.
	CRXMatch  matches
	IDTDMatch matches
}

// RunTable1 reproduces Table 1: for every element definition, a sample of
// the paper's size is generated from the corpus-truth expression and all
// three systems infer a content model from it.
func RunTable1(seed int64) []Table1Result {
	var out []Table1Result
	for i, row := range Table1 {
		truth := regex.MustParse(row.CorpusTruth)
		sample := sampleFor(truth, row.SampleSize, seed+int64(i))
		set := smp.FromStrings(sample)
		res := Table1Result{Row: row}
		res.CRX = runAlgoSample(set, core.CRX, nil)
		res.IDTD = runAlgoSample(set, core.IDTD, nil)
		xset := set
		if row.XtractSize < len(sample) {
			xset = smp.FromStrings(sample[:row.XtractSize])
		}
		res.Xtract = runAlgoSample(xset, core.XTRACT, &core.Options{
			XTRACT: xtract.Options{MaxStrings: 1000},
		})
		crxTruth := truth
		if row.PaperCRX != "" {
			crxTruth = regex.MustParse(row.PaperCRX)
		}
		res.CRXMatch = compare(res.CRX, crxTruth)
		res.IDTDMatch = compare(res.IDTD, truth)
		out = append(out, res)
	}
	return out
}

// FormatTable1 renders the reproduction next to the paper's numbers.
func FormatTable1(results []Table1Result) string {
	var b strings.Builder
	b.WriteString(header("Table 1: real-world element definitions (Protein SDB + Mondial)"))
	for _, r := range results {
		fmt.Fprintf(&b, "\n%s (sample %d", r.Row.Element, r.Row.SampleSize)
		if r.Row.XtractSize != r.Row.SampleSize {
			fmt.Fprintf(&b, ", xtract %d", r.Row.XtractSize)
		}
		b.WriteString(")\n")
		fmt.Fprintf(&b, "  original DTD : %s\n", r.Row.Original)
		fmt.Fprintf(&b, "  paper result : %s\n", r.Row.CorpusTruth)
		if r.Row.PaperCRX != "" {
			fmt.Fprintf(&b, "  paper crx    : %s\n", r.Row.PaperCRX)
		}
		fmt.Fprintf(&b, "  crx          : %s%s\n", r.CRX.Render(), mark(r.CRXMatch))
		fmt.Fprintf(&b, "  iDTD         : %s%s\n", r.IDTD.Render(), mark(r.IDTDMatch))
		fmt.Fprintf(&b, "  xtract       : %s", r.Xtract.Render())
		if r.Row.PaperXtractTokens > 0 {
			fmt.Fprintf(&b, "   (paper: %d tokens)", r.Row.PaperXtractTokens)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func mark(m matches) string {
	switch {
	case m.Syntax:
		return "   [= paper]"
	case m.Language:
		return "   [≡ paper]"
	default:
		return ""
	}
}
