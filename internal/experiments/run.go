package experiments

import (
	"fmt"
	"strings"
	"time"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/core"
	"dtdinfer/internal/datagen"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
)

// AlgoResult is the outcome of one algorithm on one sample.
type AlgoResult struct {
	// Expr is the inferred expression (nil on error).
	Expr *regex.Expr
	// Tokens is the size of Expr (0 on error).
	Tokens int
	// Err is the inference error, e.g. xtract's string cap.
	Err error
	// Duration is the wall-clock inference time.
	Duration time.Duration
}

func runAlgo(sample [][]string, algo core.Algorithm, opts *core.Options) AlgoResult {
	return runAlgoSample(smp.FromStrings(sample), algo, opts)
}

// runAlgoSample runs one algorithm on an already-built counted sample, so
// callers comparing several algorithms on the same sample intern it once.
func runAlgoSample(set *smp.Set, algo core.Algorithm, opts *core.Options) AlgoResult {
	start := time.Now()
	e, err := core.InferSampleExpr(set, algo, opts)
	res := AlgoResult{Expr: e, Err: err, Duration: time.Since(start)}
	if e != nil {
		res.Tokens = e.Tokens()
	}
	return res
}

// Render prints the expression or the error.
func (r AlgoResult) Render() string {
	if r.Err != nil {
		return "FAILED: " + r.Err.Error()
	}
	if r.Tokens > 40 {
		return fmt.Sprintf("an expression of %d tokens", r.Tokens)
	}
	return r.Expr.String()
}

// sampleFor generates the experiment sample for a target expression: a
// representative sample (edge cover plus random padding) when the size
// allows, otherwise purely random draws — matching the paper's setup where
// large generated samples were made representative while the small
// real-world samples were whatever the corpus contained.
func sampleFor(target *regex.Expr, size int, seed int64) [][]string {
	s := datagen.NewSampler(seed)
	if cover := datagen.EdgeCoverSample(target); len(cover) <= size {
		return datagen.RepresentativeSample(s, target, size)
	}
	return s.SampleN(target, size)
}

// matches compares an inference result against an expected expression both
// syntactically (up to commutativity of +) and by language.
type matches struct {
	Syntax   bool
	Language bool
}

func compare(result AlgoResult, expected *regex.Expr) matches {
	if result.Err != nil || result.Expr == nil {
		return matches{}
	}
	return matches{
		Syntax:   regex.EqualModuloUnionOrder(result.Expr, expected),
		Language: automata.ExprEquivalent(result.Expr, expected),
	}
}

func header(title string) string {
	line := strings.Repeat("=", len(title))
	return line + "\n" + title + "\n" + line + "\n"
}

// Config tunes a Run invocation; zero fields take each experiment's
// defaults (200 trials, 20 steps, seed 1).
type Config struct {
	// Seed drives sample generation and subsampling.
	Seed int64
	// Trials is the Figure 4 subsample count per size.
	Trials int
	// Steps is the Figure 4 sample-size count per panel.
	Steps int
	// CSV renders Figure 4 as CSV instead of aligned columns.
	CSV bool
}

// Names lists the runnable experiments in the order "all" runs them.
func Names() []string {
	return []string{"conciseness", "table1", "table2", "figure4", "perf", "ablation"}
}

// Run executes one named experiment and returns its rendered report. A
// failing experiment returns an error instead of panicking, so a driver
// running several experiments can report the failure and continue with
// the rest.
func Run(name string, cfg Config) (string, error) {
	switch name {
	case "conciseness":
		r, err := RunConciseness()
		if err != nil {
			return "", err
		}
		return FormatConciseness(r), nil
	case "table1":
		return FormatTable1(RunTable1(cfg.Seed)), nil
	case "table2":
		return FormatTable2(RunTable2(cfg.Seed)), nil
	case "figure4":
		results, err := RunFigure4(&Figure4Config{Trials: cfg.Trials, Steps: cfg.Steps, Seed: cfg.Seed})
		if err != nil {
			return "", err
		}
		if cfg.CSV {
			return FormatFigure4CSV(results), nil
		}
		return FormatFigure4(results), nil
	case "perf":
		r, err := RunPerf(cfg.Seed)
		if err != nil {
			return "", err
		}
		return FormatPerf(r), nil
	case "ablation":
		return FormatAblation(RunAblation(cfg.Seed)), nil
	}
	return "", fmt.Errorf("experiments: unknown experiment %q", name)
}
