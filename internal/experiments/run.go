package experiments

import (
	"fmt"
	"strings"
	"time"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/core"
	"dtdinfer/internal/datagen"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
)

// AlgoResult is the outcome of one algorithm on one sample.
type AlgoResult struct {
	// Expr is the inferred expression (nil on error).
	Expr *regex.Expr
	// Tokens is the size of Expr (0 on error).
	Tokens int
	// Err is the inference error, e.g. xtract's string cap.
	Err error
	// Duration is the wall-clock inference time.
	Duration time.Duration
}

func runAlgo(sample [][]string, algo core.Algorithm, opts *core.Options) AlgoResult {
	return runAlgoSample(smp.FromStrings(sample), algo, opts)
}

// runAlgoSample runs one algorithm on an already-built counted sample, so
// callers comparing several algorithms on the same sample intern it once.
func runAlgoSample(set *smp.Set, algo core.Algorithm, opts *core.Options) AlgoResult {
	start := time.Now()
	e, err := core.InferSampleExpr(set, algo, opts)
	res := AlgoResult{Expr: e, Err: err, Duration: time.Since(start)}
	if e != nil {
		res.Tokens = e.Tokens()
	}
	return res
}

// Render prints the expression or the error.
func (r AlgoResult) Render() string {
	if r.Err != nil {
		return "FAILED: " + r.Err.Error()
	}
	if r.Tokens > 40 {
		return fmt.Sprintf("an expression of %d tokens", r.Tokens)
	}
	return r.Expr.String()
}

// sampleFor generates the experiment sample for a target expression: a
// representative sample (edge cover plus random padding) when the size
// allows, otherwise purely random draws — matching the paper's setup where
// large generated samples were made representative while the small
// real-world samples were whatever the corpus contained.
func sampleFor(target *regex.Expr, size int, seed int64) [][]string {
	s := datagen.NewSampler(seed)
	if cover := datagen.EdgeCoverSample(target); len(cover) <= size {
		return datagen.RepresentativeSample(s, target, size)
	}
	return s.SampleN(target, size)
}

// matches compares an inference result against an expected expression both
// syntactically (up to commutativity of +) and by language.
type matches struct {
	Syntax   bool
	Language bool
}

func compare(result AlgoResult, expected *regex.Expr) matches {
	if result.Err != nil || result.Expr == nil {
		return matches{}
	}
	return matches{
		Syntax:   regex.EqualModuloUnionOrder(result.Expr, expected),
		Language: automata.ExprEquivalent(result.Expr, expected),
	}
}

func header(title string) string {
	line := strings.Repeat("=", len(title))
	return line + "\n" + title + "\n" + line + "\n"
}
