package experiments

import (
	"fmt"
	"strings"

	"dtdinfer/internal/core"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
	"dtdinfer/internal/xtract"
)

// Table2Result is the reproduction of one Table 2 row.
type Table2Result struct {
	Row    Table2Row
	CRX    AlgoResult
	IDTD   AlgoResult
	Trang  AlgoResult
	Xtract AlgoResult
	// Matches against the results the paper reports for each system.
	CRXMatch  matches
	IDTDMatch matches
}

// RunTable2 reproduces Table 2: samples are generated from the original
// expressions (representative, as the paper ensured with ToXgene), xtract
// capped at the sizes the paper could still run it on. The Trang-like
// baseline is included as in Section 8.1's discussion.
func RunTable2(seed int64) []Table2Result {
	var out []Table2Result
	for i, row := range Table2 {
		target := regex.MustParse(row.Original)
		sample := sampleFor(target, row.SampleSize, seed+100+int64(i))
		set := smp.FromStrings(sample)
		res := Table2Result{Row: row}
		res.CRX = runAlgoSample(set, core.CRX, nil)
		res.IDTD = runAlgoSample(set, core.IDTD, nil)
		res.Trang = runAlgoSample(set, core.TrangLike, nil)
		xset := set
		if row.XtractSize < len(sample) {
			xset = smp.FromStrings(sample[:row.XtractSize])
		}
		res.Xtract = runAlgoSample(xset, core.XTRACT, &core.Options{
			XTRACT: xtract.Options{MaxStrings: 1000},
		})
		res.CRXMatch = compare(res.CRX, regex.MustParse(row.PaperCRX))
		res.IDTDMatch = compare(res.IDTD, regex.MustParse(row.PaperIDTD))
		out = append(out, res)
	}
	return out
}

// FormatTable2 renders the reproduction next to the paper's numbers.
func FormatTable2(results []Table2Result) string {
	var b strings.Builder
	b.WriteString(header("Table 2: sophisticated real-world expressions on generated data"))
	for _, r := range results {
		fmt.Fprintf(&b, "\n%s (sample %d, xtract %d)\n", r.Row.Element, r.Row.SampleSize, r.Row.XtractSize)
		fmt.Fprintf(&b, "  original     : %s\n", shorten(r.Row.Original))
		fmt.Fprintf(&b, "  paper crx    : %s\n", shorten(r.Row.PaperCRX))
		fmt.Fprintf(&b, "  crx          : %s%s\n", shorten(r.CRX.Render()), mark(r.CRXMatch))
		fmt.Fprintf(&b, "  paper iDTD   : %s\n", shorten(r.Row.PaperIDTD))
		fmt.Fprintf(&b, "  iDTD         : %s%s\n", shorten(r.IDTD.Render()), mark(r.IDTDMatch))
		fmt.Fprintf(&b, "  trang-like   : %s\n", shorten(r.Trang.Render()))
		fmt.Fprintf(&b, "  xtract       : %s", r.Xtract.Render())
		if r.Row.PaperXtractTokens > 0 {
			fmt.Fprintf(&b, "   (paper: %d tokens)", r.Row.PaperXtractTokens)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// shorten elides the long middle of big disjunctions for terminal output.
func shorten(s string) string {
	if len(s) <= 110 {
		return s
	}
	return s[:52] + " ... " + s[len(s)-52:]
}
