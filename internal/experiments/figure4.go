package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"dtdinfer/internal/core"
	"dtdinfer/internal/datagen"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
	"dtdinfer/internal/sampling"
)

// Figure4Algorithms are the three curves of each panel.
var Figure4Algorithms = []core.Algorithm{core.CRX, core.IDTD, core.RewriteOnly}

// CurvePoint is one x-position of a Figure 4 panel: the fraction of trials
// at which each algorithm recovered its target expression from a subsample
// of the given size.
type CurvePoint struct {
	Size     int
	Fraction map[core.Algorithm]float64
}

// PanelResult is one reproduced plot of Figure 4.
type PanelResult struct {
	Panel Figure4Panel
	// Targets are the full-sample results per algorithm (rcrx for CRX;
	// riDTD for both iDTD and rewrite, as in Section 8.2).
	Targets map[core.Algorithm]*regex.Expr
	Points  []CurvePoint
	// CriticalSize is the smallest tested size at which every trial
	// recovered the target (0 when never reached).
	CriticalSize map[core.Algorithm]int
}

// Figure4Config tunes the reproduction cost. The paper uses 200 reservoir
// subsamples per size.
type Figure4Config struct {
	// Trials per size; 0 means 200 (the paper's setting).
	Trials int
	// Steps is the number of subsample sizes per panel; 0 means 20.
	Steps int
	// Seed drives sample generation and subsampling.
	Seed int64
}

func (c *Figure4Config) withDefaults() Figure4Config {
	out := Figure4Config{Trials: 200, Steps: 20, Seed: 1}
	if c != nil {
		if c.Trials > 0 {
			out.Trials = c.Trials
		}
		if c.Steps > 0 {
			out.Steps = c.Steps
		}
		if c.Seed != 0 {
			out.Seed = c.Seed
		}
	}
	return out
}

// RunFigure4Panel reproduces one panel: draw a representative base sample
// from the target, compute each algorithm's full-sample result, then for
// each subsample size count how often the algorithm recovers that result
// from reservoir subsamples (which are required to cover the alphabet, as
// the paper's methodology specifies).
func RunFigure4Panel(panel Figure4Panel, cfg *Figure4Config) (PanelResult, error) {
	c := cfg.withDefaults()
	target := regex.MustParse(panel.Target)
	s := datagen.NewSampler(c.Seed)
	base := datagen.RepresentativeSample(s, target, panel.BaseSample)
	res := PanelResult{
		Panel:        panel,
		Targets:      map[core.Algorithm]*regex.Expr{},
		CriticalSize: map[core.Algorithm]int{},
	}
	// Full-sample targets: rcrx for CRX; riDTD for iDTD and for rewrite
	// (whose success is "deriving riDTD", per the Section 8.2 text).
	for _, algo := range []core.Algorithm{core.CRX, core.IDTD} {
		r := runAlgo(base, algo, nil)
		if r.Err != nil {
			return res, fmt.Errorf("experiments: %s failed on full %s sample: %w",
				algo, panel.Name, r.Err)
		}
		res.Targets[algo] = r.Expr
	}
	res.Targets[core.RewriteOnly] = res.Targets[core.IDTD]

	alphabet := target.Symbols()
	coversSet := sampling.CoversAlphabetSet(alphabet)
	rng := rand.New(rand.NewSource(c.Seed + 7))
	sizes := panelSizes(panel, len(alphabet), c.Steps)
	// Each draw is interned into a counted set once; the coverage check is
	// then one table lookup per alphabet symbol, and the accepted draw's
	// set is shared by all three algorithms.
	var subSet *smp.Set
	covers := func(sub [][]string) bool {
		subSet = smp.FromStrings(sub)
		return coversSet(subSet)
	}
	for _, size := range sizes {
		point := CurvePoint{Size: size, Fraction: map[core.Algorithm]float64{}}
		hits := map[core.Algorithm]int{}
		for t := 0; t < c.Trials; t++ {
			sampling.ReservoirEnsuring(rng, base, size, covers, 50)
			for _, algo := range Figure4Algorithms {
				r := runAlgoSample(subSet, algo, nil)
				if r.Err == nil && regex.EqualModuloUnionOrder(r.Expr, res.Targets[algo]) {
					hits[algo]++
				}
			}
		}
		for _, algo := range Figure4Algorithms {
			point.Fraction[algo] = float64(hits[algo]) / float64(c.Trials)
			if point.Fraction[algo] == 1 && res.CriticalSize[algo] == 0 {
				res.CriticalSize[algo] = size
			}
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// panelSizes spreads sizes geometrically from just above the alphabet size
// to MaxSize, so the low end — where CRX and iDTD separate — is resolved.
func panelSizes(panel Figure4Panel, alphabet, steps int) []int {
	min := alphabet + 2
	if min < 5 {
		min = 5
	}
	ratio := float64(panel.MaxSize) / float64(min)
	var sizes []int
	for i := 0; i <= steps; i++ {
		s := int(float64(min) * math.Pow(ratio, float64(i)/float64(steps)))
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	// Deduplicate.
	out := sizes[:0]
	for i, s := range sizes {
		if i == 0 || s != sizes[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// RunFigure4 reproduces all three panels.
func RunFigure4(cfg *Figure4Config) ([]PanelResult, error) {
	var out []PanelResult
	for _, p := range Figure4 {
		r, err := RunFigure4Panel(p, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatFigure4 renders the curves as aligned columns (one block per
// panel), mirroring the three plots of Figure 4.
func FormatFigure4(results []PanelResult) string {
	var b strings.Builder
	b.WriteString(header("Figure 4: fraction of subsamples recovering the target vs sample size"))
	for _, r := range results {
		fmt.Fprintf(&b, "\npanel %s (target %s)\n", r.Panel.Name, shorten(r.Panel.Target))
		fmt.Fprintf(&b, "%8s %8s %8s %8s\n", "size", "crx", "idtd", "rewrite")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%8d %8.3f %8.3f %8.3f\n", p.Size,
				p.Fraction[core.CRX], p.Fraction[core.IDTD], p.Fraction[core.RewriteOnly])
		}
		fmt.Fprintf(&b, "critical sizes: crx=%s idtd=%s rewrite=%s\n",
			critStr(r.CriticalSize[core.CRX]), critStr(r.CriticalSize[core.IDTD]),
			critStr(r.CriticalSize[core.RewriteOnly]))
	}
	return b.String()
}

func critStr(c int) string {
	if c == 0 {
		return "not reached"
	}
	return fmt.Sprintf("%d", c)
}

// FormatFigure4CSV renders the curves as CSV (panel,size,algorithm,
// fraction), ready for external plotting.
func FormatFigure4CSV(results []PanelResult) string {
	var b strings.Builder
	b.WriteString("panel,size,algorithm,fraction\n")
	for _, r := range results {
		for _, p := range r.Points {
			for _, algo := range Figure4Algorithms {
				fmt.Fprintf(&b, "%s,%d,%s,%.4f\n", r.Panel.Name, p.Size, algo, p.Fraction[algo])
			}
		}
	}
	return b.String()
}
