package experiments

import (
	"strings"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/core"
	"dtdinfer/internal/regex"
)

// Table 1: crx must reproduce the paper's result on every row, and iDTD on
// every row except refinfo, whose 10-string sample makes the repair outcome
// sample-dependent (see EXPERIMENTS.md); there iDTD must still be a SORE
// superset of the corpus truth.
func TestTable1ReproducesPaper(t *testing.T) {
	results := RunTable1(1)
	if len(results) != len(Table1) {
		t.Fatalf("got %d rows", len(results))
	}
	for _, r := range results {
		if r.CRX.Err != nil || r.IDTD.Err != nil {
			t.Fatalf("%s: inference failed: %v %v", r.Row.Element, r.CRX.Err, r.IDTD.Err)
		}
		truth := regex.MustParse(r.Row.CorpusTruth)
		switch r.Row.Element {
		case "authors":
			// Factor order between the two incomparable branches depends on
			// which kind of string is seen first; check the language-level
			// structure instead of factor order.
			if !automata.ExprIncludes(r.CRX.Expr, truth) {
				t.Errorf("authors: crx %s does not include the truth", r.CRX.Expr)
			}
			if !r.IDTDMatch.Syntax {
				t.Errorf("authors: iDTD = %s, want %s", r.IDTD.Expr, r.Row.CorpusTruth)
			}
		case "refinfo":
			if !r.CRXMatch.Syntax {
				t.Errorf("refinfo: crx = %s, want %s", r.CRX.Expr, r.Row.CorpusTruth)
			}
			if !automata.ExprIncludes(r.IDTD.Expr, truth) {
				t.Errorf("refinfo: iDTD %s does not include the truth", r.IDTD.Expr)
			}
		default:
			if !r.CRXMatch.Syntax {
				t.Errorf("%s: crx = %s, want %s", r.Row.Element, r.CRX.Expr, r.Row.CorpusTruth)
			}
			if !r.IDTDMatch.Syntax {
				t.Errorf("%s: iDTD = %s, want %s", r.Row.Element, r.IDTD.Expr, r.Row.CorpusTruth)
			}
		}
		// The xtract shortcoming: wherever the paper reports only a token
		// count, our reconstruction must also be much larger than crx.
		if r.Row.PaperXtractTokens > 0 && r.Xtract.Err == nil &&
			r.Xtract.Tokens < 3*r.CRX.Tokens {
			t.Errorf("%s: xtract %d tokens vs crx %d — blow-up missing",
				r.Row.Element, r.Xtract.Tokens, r.CRX.Tokens)
		}
	}
}

// Table 2: crx and iDTD must match the paper's reported expressions
// (syntactically up to commutativity of + for chain shapes; by language for
// example5's iDTD result, whose equivalent spellings differ).
func TestTable2ReproducesPaper(t *testing.T) {
	results := RunTable2(1)
	for _, r := range results {
		if r.CRX.Err != nil || r.IDTD.Err != nil {
			t.Fatalf("%s: inference failed: %v %v", r.Row.Element, r.CRX.Err, r.IDTD.Err)
		}
		if !r.CRXMatch.Syntax {
			t.Errorf("%s: crx = %s, want %s", r.Row.Element, r.CRX.Expr, r.Row.PaperCRX)
		}
		if !r.IDTDMatch.Language {
			t.Errorf("%s: iDTD = %s, not equivalent to paper's %s",
				r.Row.Element, r.IDTD.Expr, r.Row.PaperIDTD)
		}
		// iDTD is at least as precise as crx on the SORE rows (1-3): its
		// language is included in crx's.
		if r.Row.Element == "example1" || r.Row.Element == "example2" || r.Row.Element == "example3" {
			if !automata.ExprIncludes(r.CRX.Expr, r.IDTD.Expr) {
				t.Errorf("%s: L(iDTD) ⊄ L(crx)", r.Row.Element)
			}
		}
		// The xtract blow-up: larger than both on every row but example1.
		if r.Row.PaperXtractTokens > 0 && r.Xtract.Err == nil &&
			r.Xtract.Tokens < 2*r.CRX.Tokens {
			t.Errorf("%s: xtract %d tokens vs crx %d", r.Row.Element, r.Xtract.Tokens, r.CRX.Tokens)
		}
	}
}

// Section 8.1: the Trang-like baseline produces the same result as crx on
// the chain-shaped rows, and example1's top-level disjunction where crx
// cannot.
func TestTable2TrangBehaviour(t *testing.T) {
	results := RunTable2(1)
	for _, r := range results {
		if r.Trang.Err != nil {
			t.Fatalf("%s: trang failed: %v", r.Row.Element, r.Trang.Err)
		}
		switch r.Row.Element {
		case "example1":
			if !automata.ExprEquivalent(r.Trang.Expr, regex.MustParse(r.Row.Original)) {
				t.Errorf("example1: trang = %s, want ≡ %s", r.Trang.Expr, r.Row.Original)
			}
		case "example2", "example5":
			if !automata.ExprEquivalent(r.Trang.Expr, r.CRX.Expr) {
				t.Errorf("%s: trang %s differs from crx %s", r.Row.Element, r.Trang.Expr, r.CRX.Expr)
			}
		}
	}
}

// Figure 4 (reduced trials for test time): the qualitative shape must hold
// on the (‡) panel — crx saturates before iDTD, which saturates before
// rewrite; rewrite fails entirely at small sizes while iDTD succeeds.
func TestFigure4Shape(t *testing.T) {
	r, err := RunFigure4Panel(Figure4[2], &Figure4Config{Trials: 25, Steps: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	crxC, idtdC, rwC := r.CriticalSize[core.CRX], r.CriticalSize[core.IDTD],
		r.CriticalSize[core.RewriteOnly]
	if crxC == 0 || idtdC == 0 {
		t.Fatalf("crx/idtd never saturated: %d %d", crxC, idtdC)
	}
	if !(crxC < idtdC) {
		t.Errorf("crx critical size %d should be below iDTD's %d", crxC, idtdC)
	}
	if rwC != 0 && rwC <= idtdC {
		t.Errorf("rewrite critical size %d should exceed iDTD's %d", rwC, idtdC)
	}
	// At the smallest size, iDTD already succeeds sometimes while rewrite
	// never does ("iDTD is able to infer riDTD in cases where rewrite alone
	// fails").
	first := r.Points[0]
	if first.Fraction[core.RewriteOnly] > 0 {
		t.Errorf("rewrite should fail at size %d", first.Size)
	}
	if first.Fraction[core.IDTD] == 0 && r.Points[1].Fraction[core.IDTD] == 0 {
		t.Errorf("iDTD should start succeeding early")
	}
	// The generalization gap: crx needs 2-10x fewer strings than iDTD.
	if idtdC < 2*crxC {
		t.Errorf("generalization gap too small: crx=%d idtd=%d", crxC, idtdC)
	}
}

func TestConcisenessContrast(t *testing.T) {
	r, err := RunConciseness()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rewrite.String(); got != "((b? (a + c))+ d)+ e" {
		t.Errorf("rewrite = %q", got)
	}
	if r.RewriteTokens != 12 {
		t.Errorf("rewrite tokens = %d", r.RewriteTokens)
	}
	if r.StateElimTokens < 5*r.RewriteTokens {
		t.Errorf("state elimination should blow up: %d vs %d tokens",
			r.StateElimTokens, r.RewriteTokens)
	}
	if !automata.ExprEquivalent(r.StateElim, r.Rewrite) {
		t.Error("the two translations must be language-equivalent")
	}
}

func TestPerfRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("perf experiment in -short mode")
	}
	r, err := RunPerf(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Example4IDTD <= 0 || r.Example4CRX <= 0 {
		t.Fatal("timings missing")
	}
	out := FormatPerf(r)
	if !strings.Contains(out, "example4") {
		t.Errorf("format output broken: %s", out)
	}
}

func TestFormatters(t *testing.T) {
	t1 := FormatTable1(RunTable1(1))
	for _, want := range []string{"ProteinEntry", "refinfo", "crx", "iDTD", "xtract"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
	cr, err := RunConciseness()
	if err != nil {
		t.Fatal(err)
	}
	c := FormatConciseness(cr)
	if !strings.Contains(c, "blow-up factor") {
		t.Error("conciseness output broken")
	}
}

func TestPanelSizesMonotoneAndBounded(t *testing.T) {
	sizes := panelSizes(Figure4[0], 18, 20)
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not strictly increasing: %v", sizes)
		}
	}
	if sizes[len(sizes)-1] != Figure4[0].MaxSize {
		t.Errorf("last size = %d, want %d", sizes[len(sizes)-1], Figure4[0].MaxSize)
	}
}

func TestAblation(t *testing.T) {
	r := RunAblation(1)
	for _, name := range []string{"balanced", "disjunction-first", "optional-first"} {
		rate, ok := r.PolicyRecovery[name]
		if !ok || rate <= 0.2 || rate > 1 {
			t.Errorf("policy %s recovery = %v", name, rate)
		}
	}
	// The k-testable study must show k=2 dominating larger windows at
	// every size, and reaching (near-)full coverage by the largest.
	for i := range r.KTestSizes {
		if r.KTest[2][i] < r.KTest[3][i] || r.KTest[3][i] < r.KTest[4][i] {
			t.Errorf("generalization not monotone in k at size %d: %v %v %v",
				r.KTestSizes[i], r.KTest[2][i], r.KTest[3][i], r.KTest[4][i])
		}
	}
	last := len(r.KTestSizes) - 1
	if r.KTest[2][last] < 0.99 {
		t.Errorf("k=2 should cover the target at size %d, got %v",
			r.KTestSizes[last], r.KTest[2][last])
	}
	out := FormatAblation(r)
	if !strings.Contains(out, "repair policy") || !strings.Contains(out, "k-testable") {
		t.Error("ablation formatting broken")
	}
}

func TestFigure4CSV(t *testing.T) {
	r, err := RunFigure4Panel(Figure4[2], &Figure4Config{Trials: 2, Steps: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFigure4CSV([]PanelResult{r})
	if !strings.Contains(out, "panel,size,algorithm,fraction") ||
		!strings.Contains(out, "expr-ddagger") {
		t.Errorf("CSV output broken:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	want := 1 + len(r.Points)*len(Figure4Algorithms)
	if lines != want {
		t.Errorf("CSV has %d lines, want %d", lines, want)
	}
}
