package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dtdinfer/internal/dtd"
	"dtdinfer/internal/faultinject"
)

// testExtraction ingests a small two-document corpus.
func testExtraction(t *testing.T) *dtd.Extraction {
	t.Helper()
	x := dtd.NewExtraction()
	docs := []string{
		"<store><book><title>a</title><price>1</price></book></store>",
		"<store><book><title>b</title></book><book><title>c</title><price>2</price></book></store>",
	}
	for _, d := range docs {
		if err := x.AddDocumentOptions(strings.NewReader(d), nil); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	return x
}

// TestSaveCorpusDurableRename exercises the full durable-save path —
// temp file, file sync, rename, directory sync — against a fresh
// tmpdir, and checks the summary loads back equivalent.
func TestSaveCorpusDurableRename(t *testing.T) {
	x := testExtraction(t)
	path := filepath.Join(t.TempDir(), "sub", "corpus.bin")
	if err := os.Mkdir(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(x, path); err != nil {
		t.Fatalf("SaveCorpus: %v", err)
	}
	// The temp file must be gone: only the renamed target remains.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "corpus.bin" {
		t.Errorf("directory after save = %v, want exactly corpus.bin", entries)
	}
	got, err := LoadCorpus(path)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	want, _, err := InferDTDFromExtractionContext(context.Background(), x, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := InferDTDFromExtractionContext(context.Background(), got, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != want.String() {
		t.Errorf("loaded corpus infers:\n%s\nwant:\n%s", d, want)
	}
}

// TestSaveCorpusRelativePath pins the dirOf(".") branch of the
// directory sync: a bare filename must sync the working directory, not
// fail trying to open an empty path.
func TestSaveCorpusRelativePath(t *testing.T) {
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := SaveCorpus(testExtraction(t), "corpus.bin"); err != nil {
		t.Fatalf("SaveCorpus(relative): %v", err)
	}
	if _, err := os.Stat("corpus.bin"); err != nil {
		t.Fatalf("saved file: %v", err)
	}
}

func TestSaveCorpusRetrySucceedsAfterTransientFailures(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("disk on fire")
	faultinject.Set("persist.write", "", faultinject.Fault{Err: boom, Times: 2})
	var retries []int
	var slept []time.Duration
	policy := &RetryPolicy{
		Attempts: 3,
		Backoff:  time.Millisecond,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
		OnRetry:  func(attempt int, err error) { retries = append(retries, attempt) },
	}
	path := filepath.Join(t.TempDir(), "corpus.bin")
	if err := SaveCorpusRetry(testExtraction(t), path, policy); err != nil {
		t.Fatalf("SaveCorpusRetry: %v", err)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Errorf("OnRetry attempts = %v, want [1 2]", retries)
	}
	if len(slept) != 2 {
		t.Errorf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d <= 0 {
			t.Errorf("backoff %d = %v, want > 0", i, d)
		}
	}
	if _, err := LoadCorpus(path); err != nil {
		t.Errorf("summary unreadable after retried save: %v", err)
	}
}

func TestSaveCorpusRetryExhaustsAttempts(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("disk still on fire")
	faultinject.Set("persist.write", "", faultinject.Fault{Err: boom})
	attempts := 0
	policy := &RetryPolicy{
		Attempts: 3,
		Backoff:  time.Millisecond,
		Sleep:    func(time.Duration) {},
		OnRetry:  func(int, error) { attempts++ },
	}
	path := filepath.Join(t.TempDir(), "corpus.bin")
	err := SaveCorpusRetry(testExtraction(t), path, policy)
	if !errors.Is(err, boom) {
		t.Fatalf("SaveCorpusRetry = %v, want the injected error", err)
	}
	if attempts != 2 {
		t.Errorf("observed %d retries, want 2 (3 attempts total)", attempts)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("target exists after exhausted retries: %v", err)
	}
}

func TestRetryPolicyBackoffCapped(t *testing.T) {
	p := RetryPolicy{Backoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}.resolved()
	for n := 1; n < 64; n++ {
		d := p.backoff(n)
		if d < p.MaxBackoff/2-1 && n > 3 {
			t.Errorf("backoff(%d) = %v, want >= half the cap once saturated", n, d)
		}
		if d > p.MaxBackoff+p.MaxBackoff/2 {
			t.Errorf("backoff(%d) = %v, exceeds cap+jitter %v", n, d, p.MaxBackoff+p.MaxBackoff/2)
		}
	}
}

// TestMergeCorpusFilesMatchesLoadAllPath saves K=8 disjoint shard
// summaries and checks the streaming merge (load one, fold, release) is
// byte-identical — same snapshot encoding, same inferred DTD — to the
// old path that decoded every shard up front and merged the lot.
func TestMergeCorpusFilesMatchesLoadAllPath(t *testing.T) {
	const shards = 8
	dir := t.TempDir()
	paths := make([]string, shards)
	for s := 0; s < shards; s++ {
		x := dtd.NewExtraction()
		for d := 0; d < 3; d++ {
			doc := "<store><book id=\"" + strings.Repeat("x", s+1) + "\"><title>t</title>" +
				strings.Repeat("<price>9</price>", s%3) + "</book></store>"
			if err := x.AddDocumentOptions(strings.NewReader(doc), nil); err != nil {
				t.Fatal(err)
			}
		}
		paths[s] = filepath.Join(dir, "shard"+string(rune('0'+s))+".corpus")
		if err := SaveCorpus(x, paths[s]); err != nil {
			t.Fatal(err)
		}
	}

	streamed, err := MergeCorpusFiles(paths)
	if err != nil {
		t.Fatalf("MergeCorpusFiles: %v", err)
	}

	// Old path: decode all K first, then merge in order.
	loaded := make([]*dtd.Extraction, shards)
	for i, p := range paths {
		if loaded[i], err = LoadCorpus(p); err != nil {
			t.Fatal(err)
		}
	}
	all := loaded[0]
	for _, shard := range loaded[1:] {
		all.MergeSummary(shard)
	}

	var sb, ab bytes.Buffer
	if err := WriteCorpus(streamed, &sb); err != nil {
		t.Fatal(err)
	}
	if err := WriteCorpus(all, &ab); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), ab.Bytes()) {
		t.Error("streaming merge snapshot differs from load-all merge")
	}
	ds, _, err := InferDTDFromExtractionContext(context.Background(), streamed, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	da, _, err := InferDTDFromExtractionContext(context.Background(), all, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.String() != da.String() {
		t.Errorf("streaming merge DTD = %q, want %q", ds, da)
	}
}

func TestMergeCorpusFilesErrors(t *testing.T) {
	if _, err := MergeCorpusFiles(nil); err == nil {
		t.Error("empty path list did not error")
	}
	if _, err := MergeCorpusFiles([]string{filepath.Join(t.TempDir(), "missing.corpus")}); err == nil {
		t.Error("missing file did not error")
	}
}
