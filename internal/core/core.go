// Package core ties the inference algorithms of the paper into one
// engine: given positive example strings (or whole XML documents), it
// derives concise deterministic regular expressions — SOREs via iDTD,
// CHAREs via CRX — or runs one of the baselines (XTRACT, the Trang-like
// pipeline, classical state elimination) for comparison, and assembles
// complete DTDs or XML Schemas. Every engine is a registered Learner
// consuming the counted, interned sample representation; names, parsing
// and CLI usage text all derive from the registry.
package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"dtdinfer/internal/crx"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/gfa"
	"dtdinfer/internal/idtd"
	"dtdinfer/internal/numpred"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/sample"
	"dtdinfer/internal/stateelim"
	"dtdinfer/internal/tranglike"
	"dtdinfer/internal/xsd"
	"dtdinfer/internal/xtract"
)

// Algorithm selects the inference engine for content models.
type Algorithm string

const (
	// IDTD is the paper's SORE inference: 2T-INF + rewrite + repair rules.
	IDTD Algorithm = "idtd"
	// CRX is the paper's CHARE inference, strongest on sparse data.
	CRX Algorithm = "crx"
	// RewriteOnly is rewrite without repair rules: fails on
	// non-representative samples (used to reproduce Figure 4).
	RewriteOnly Algorithm = "rewrite"
	// XTRACT is the reconstruction of the Garofalakis et al. system.
	XTRACT Algorithm = "xtract"
	// TrangLike is the reconstruction of Trang's strategy.
	TrangLike Algorithm = "trang"
	// StateElim is classical state elimination over the 2T-INF automaton.
	StateElim Algorithm = "stateelim"
)

// Budget caps the resources one element's inference may consume. The zero
// value applies no caps. Budgets are enforced cooperatively: the deadline
// becomes a per-element context timeout, and the structural caps are
// carried in the context and checked by every engine at its blow-up
// points (automaton size before the expensive phase, expression size after
// it).
type Budget struct {
	// Deadline is the wall-clock cap per element (0 = none).
	Deadline time.Duration
	// MaxSOAStates caps the automaton alphabet size an engine may process
	// (0 = none). Engines whose cost is superlinear in states — state
	// elimination above all — fail fast instead of blowing up.
	MaxSOAStates int
	// MaxExprSize caps the token count of an accepted expression (0 =
	// none), rejecting page-filling outputs a human would never read.
	MaxExprSize int
}

// DegradeMode selects what happens when an element's configured engine
// fails, exceeds its budget, or panics.
type DegradeMode int

const (
	// DegradeFail propagates the failure, aborting the whole inference —
	// the historical behaviour and the zero value, so existing library
	// callers are unaffected.
	DegradeFail DegradeMode = iota
	// DegradeLadder walks the degradation ladder instead: the configured
	// engine, then CRX (cheap, linear, cannot blow up), then the universal
	// content model (a1|...|an)* over the element's observed children. The
	// accepted rung is recorded in the element's ElementOutcome.
	DegradeLadder
)

func (m DegradeMode) String() string {
	switch m {
	case DegradeFail:
		return "fail"
	case DegradeLadder:
		return "ladder"
	}
	return fmt.Sprintf("DegradeMode(%d)", int(m))
}

// Options tune the engines.
type Options struct {
	// IDTD options (fuzziness k, noise threshold, ...).
	IDTD idtd.Options
	// XTRACT options (string cap, block length).
	XTRACT xtract.Options
	// NumericPredicates enables the Section 9 post-processing that refines
	// r+ factors to r{m}/r{m,} bounds from the sample.
	NumericPredicates bool
	// Parallelism is the number of worker goroutines used for document
	// ingestion (XML decoding). 0 selects GOMAXPROCS, 1 forces sequential
	// ingestion. Results are byte-identical at every setting; see
	// dtd.AddDocsParallel.
	Parallelism int
	// Budget caps each element's inference (zero value = uncapped).
	Budget Budget
	// Degrade selects the reaction to a failing or over-budget engine.
	Degrade DegradeMode
}

// Learner is one registered inference engine: the name the tools address
// it by, a one-line description for usage text, and the inference function
// over the counted, interned sample representation.
type Learner struct {
	// Algo is the registry key, as used by ParseAlgorithm and the CLIs.
	Algo Algorithm
	// Doc is a one-line description shown in command-line usage.
	Doc string
	// Infer derives a content-model expression from a counted sample. The
	// context carries cancellation and the resource budget; engines check
	// it cooperatively at their blow-up points.
	Infer func(ctx context.Context, s *sample.Set, opts *Options) (*regex.Expr, error)
}

// registry holds the learners in registration order — the order names
// appear in usage text and error messages.
var registry []Learner

// byAlgo indexes the registry for ParseAlgorithm and dispatch.
var byAlgo = map[Algorithm]*Learner{}

// Register adds a learner to the registry. It panics on a duplicate or
// empty name; registration happens at init time, so a collision is a
// programming error, not a runtime condition.
func Register(l Learner) {
	if l.Algo == "" || l.Infer == nil {
		panic("core: Register requires a name and an Infer func")
	}
	if _, dup := byAlgo[l.Algo]; dup {
		panic(fmt.Sprintf("core: duplicate learner %q", l.Algo))
	}
	registry = append(registry, l)
	byAlgo[l.Algo] = &registry[len(registry)-1]
}

// Learners returns the registered learners in registration order.
func Learners() []Learner {
	out := make([]Learner, len(registry))
	copy(out, registry)
	return out
}

// AlgorithmNames returns the registered algorithm names in registration
// order — the single source the CLIs derive their -algo usage from.
func AlgorithmNames() []string {
	names := make([]string, len(registry))
	for i, l := range registry {
		names[i] = string(l.Algo)
	}
	return names
}

// AlgorithmList renders the registered names as "a, b, ... or z" for
// error and usage text.
func AlgorithmList() string {
	names := AlgorithmNames()
	if len(names) == 0 {
		return ""
	}
	if len(names) == 1 {
		return names[0]
	}
	return strings.Join(names[:len(names)-1], ", ") + " or " + names[len(names)-1]
}

// ParseAlgorithm converts a name (as used by the command-line tools) into
// an Algorithm. The set of accepted names — and the error text listing
// them — comes from the learner registry.
func ParseAlgorithm(name string) (Algorithm, error) {
	if _, ok := byAlgo[Algorithm(name)]; ok {
		return Algorithm(name), nil
	}
	return "", fmt.Errorf("core: unknown algorithm %q (want %s)", name, AlgorithmList())
}

func init() {
	Register(Learner{
		Algo: IDTD,
		Doc:  "SORE inference: 2T-INF + rewrite + repair rules (the paper's iDTD)",
		Infer: func(ctx context.Context, s *sample.Set, opts *Options) (*regex.Expr, error) {
			res, err := idtd.InferSampleContext(ctx, s, &opts.IDTD)
			if err != nil {
				return nil, err
			}
			return res.Expr, nil
		},
	})
	Register(Learner{
		Algo: CRX,
		Doc:  "CHARE inference, strongest on sparse data (the paper's CRX)",
		Infer: func(ctx context.Context, s *sample.Set, opts *Options) (*regex.Expr, error) {
			res, err := crx.InferSampleContext(ctx, s)
			if err != nil {
				return nil, err
			}
			return res.Expr, nil
		},
	})
	Register(Learner{
		Algo: RewriteOnly,
		Doc:  "rewrite without repair rules; fails on non-representative samples (Figure 4)",
		Infer: func(ctx context.Context, s *sample.Set, opts *Options) (*regex.Expr, error) {
			return gfa.InferSampleContext(ctx, s)
		},
	})
	Register(Learner{
		Algo: XTRACT,
		Doc:  "reconstruction of the Garofalakis et al. XTRACT system",
		Infer: func(ctx context.Context, s *sample.Set, opts *Options) (*regex.Expr, error) {
			return xtract.InferSampleContext(ctx, s, &opts.XTRACT)
		},
	})
	Register(Learner{
		Algo: TrangLike,
		Doc:  "reconstruction of Trang's inference strategy",
		Infer: func(ctx context.Context, s *sample.Set, opts *Options) (*regex.Expr, error) {
			return tranglike.InferSampleContext(ctx, s)
		},
	})
	Register(Learner{
		Algo: StateElim,
		Doc:  "classical state elimination over the 2T-INF automaton (negative baseline)",
		Infer: func(ctx context.Context, s *sample.Set, opts *Options) (*regex.Expr, error) {
			return stateelim.InferSampleContext(ctx, s)
		},
	})
}

// InferSampleExpr derives a content-model expression from a counted,
// interned sample with the chosen algorithm. This is the engine hot path:
// the registered learner consumes interned IDs directly, and the optional
// numeric-predicate refinement scans unique sequences only.
func InferSampleExpr(s *sample.Set, algo Algorithm, opts *Options) (*regex.Expr, error) {
	return InferSampleExprContext(context.Background(), s, algo, opts)
}

// InferSampleExprContext is InferSampleExpr under a context. It runs the
// single chosen engine — no degradation ladder — so experiment harnesses
// measuring one algorithm observe that algorithm's own failures.
func InferSampleExprContext(ctx context.Context, s *sample.Set, algo Algorithm, opts *Options) (*regex.Expr, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	l, ok := byAlgo[algo]
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (want %s)", algo, AlgorithmList())
	}
	e, err := l.Infer(ctx, s, &o)
	if err != nil {
		return nil, err
	}
	if o.NumericPredicates {
		e = numpred.RefineSample(e, s)
	}
	return e, nil
}

// InferExpr derives a content-model expression from positive example
// strings with the chosen algorithm. The strings are folded into the
// counted sample representation first, so duplicates cost a count bump
// rather than repeated work in the engine.
func InferExpr(strs [][]string, algo Algorithm, opts *Options) (*regex.Expr, error) {
	return InferSampleExpr(sample.FromStrings(strs), algo, opts)
}

// Inferrer adapts an algorithm to the dtd.InferFunc shape (verbatim
// strings), used by consumers that assemble their own string samples.
func Inferrer(algo Algorithm, opts *Options) dtd.InferFunc {
	return func(sample [][]string) (*regex.Expr, error) {
		return InferExpr(sample, algo, opts)
	}
}

// SampleInferrer adapts an algorithm to the dtd.InferSampleFunc shape —
// the path every document-level entry point runs on.
func SampleInferrer(algo Algorithm, opts *Options) dtd.InferSampleFunc {
	return func(s *sample.Set) (*regex.Expr, error) {
		return InferSampleExpr(s, algo, opts)
	}
}

// ingestAll is the single ingestion pipeline behind every document-level
// entry point: hardened, fault-isolated, sharded across workers according
// to opts.Parallelism, and cancellable through the context. The report is
// never nil.
func ingestAll(ctx context.Context, docs []io.Reader, opts *Options,
	ingest *dtd.IngestOptions, policy dtd.ErrorPolicy) (*dtd.Extraction, *dtd.IngestReport, error) {
	workers := 0
	if opts != nil {
		workers = opts.Parallelism
	}
	x := dtd.NewExtraction()
	report, err := x.AddDocumentsParallelContext(ctx, docs, workers, ingest, policy)
	if err != nil {
		return nil, report, fmt.Errorf("core: %w", err)
	}
	return x, report, nil
}

// InferDTD extracts element sequences from the given XML documents and
// infers a complete DTD. Ingestion runs through the same sharded,
// fault-isolated pipeline as InferDTDReport (uncapped, fail-fast).
func InferDTD(docs []io.Reader, algo Algorithm, opts *Options) (*dtd.DTD, error) {
	return InferDTDContext(context.Background(), docs, algo, opts)
}

// InferDTDContext is InferDTD under a context: cancellation propagates
// into the decode loops and every engine's hot loop, and opts.Budget /
// opts.Degrade govern per-element budgets and the degradation ladder.
func InferDTDContext(ctx context.Context, docs []io.Reader, algo Algorithm, opts *Options) (*dtd.DTD, error) {
	x, _, err := ingestAll(ctx, docs, opts, nil, dtd.FailFast)
	if err != nil {
		return nil, err
	}
	d, _, err := x.InferDTDElements(ctx, ElementInferrer(algo, opts))
	return d, err
}

// InferDTDReport is InferDTD with hardened ingestion: documents are
// ingested under the resource caps of ingest (nil = unlimited) with
// per-document fault isolation under the chosen policy, and the returned
// IngestReport and InferStats carry the ingestion counters, per-document
// errors, per-element inference timings and degradation outcomes. Under
// SkipAndRecord a malformed document is recorded and skipped rather than
// aborting the batch. The report is non-nil even on error; the stats are
// non-nil whenever inference ran.
func InferDTDReport(docs []io.Reader, algo Algorithm, opts *Options,
	ingest *dtd.IngestOptions, policy dtd.ErrorPolicy) (*dtd.DTD, *dtd.IngestReport, *dtd.InferStats, error) {
	return InferDTDReportContext(context.Background(), docs, algo, opts, ingest, policy)
}

// InferDTDReportContext is InferDTDReport under a context.
func InferDTDReportContext(ctx context.Context, docs []io.Reader, algo Algorithm, opts *Options,
	ingest *dtd.IngestOptions, policy dtd.ErrorPolicy) (*dtd.DTD, *dtd.IngestReport, *dtd.InferStats, error) {
	x, report, err := ingestAll(ctx, docs, opts, ingest, policy)
	if err != nil {
		return nil, report, nil, err
	}
	d, stats, err := x.InferDTDElements(ctx, ElementInferrer(algo, opts))
	if err != nil {
		return nil, report, stats, err
	}
	return d, report, stats, nil
}

// InferDTDFromExtraction infers a DTD from already-extracted sequences.
func InferDTDFromExtraction(x *dtd.Extraction, algo Algorithm, opts *Options) (*dtd.DTD, error) {
	d, _, err := InferDTDFromExtractionContext(context.Background(), x, algo, opts)
	return d, err
}

// InferDTDFromExtractionStats additionally reports per-element inference
// timings and degradation outcomes from InferDTD's worker pool.
func InferDTDFromExtractionStats(x *dtd.Extraction, algo Algorithm, opts *Options) (*dtd.DTD, *dtd.InferStats, error) {
	return InferDTDFromExtractionContext(context.Background(), x, algo, opts)
}

// InferDTDFromExtractionContext is InferDTDFromExtractionStats under a
// context — the entry point the CLI and incremental workflows run on.
// Inference is memoized per element on the extraction: repeated calls
// with the same algorithm and options replay cached content models for
// every element whose sample has not changed since the previous call
// (validated by content fingerprint, so the result is byte-identical to
// a cold run), and the returned InferStats carries the hit/miss/
// recompute counters. A call with different algorithm or options keys
// its own cache entries and never aliases another configuration's.
func InferDTDFromExtractionContext(ctx context.Context, x *dtd.Extraction, algo Algorithm, opts *Options) (*dtd.DTD, *dtd.InferStats, error) {
	return x.InferDTDElementsCached(ctx, cacheConfig(algo, opts), ElementInferrer(algo, opts))
}

// InferXSD infers a DTD from the documents and renders it as an XML Schema
// with datatype detection over the sampled text values (Section 9).
func InferXSD(docs []io.Reader, algo Algorithm, opts *Options) (string, error) {
	return InferXSDContext(context.Background(), docs, algo, opts)
}

// InferXSDContext is InferXSD under a context, with the same cancellation
// and budget semantics as InferDTDContext.
func InferXSDContext(ctx context.Context, docs []io.Reader, algo Algorithm, opts *Options) (string, error) {
	x, _, err := ingestAll(ctx, docs, opts, nil, dtd.FailFast)
	if err != nil {
		return "", err
	}
	d, _, err := x.InferDTDElements(ctx, ElementInferrer(algo, opts))
	if err != nil {
		return "", err
	}
	return xsd.Generate(d, x.TextSamples), nil
}
