// Package core ties the inference algorithms of the paper into one
// engine: given positive example strings (or whole XML documents), it
// derives concise deterministic regular expressions — SOREs via iDTD,
// CHAREs via CRX — or runs one of the baselines (XTRACT, the Trang-like
// pipeline, classical state elimination) for comparison, and assembles
// complete DTDs or XML Schemas.
package core

import (
	"fmt"
	"io"

	"dtdinfer/internal/crx"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/gfa"
	"dtdinfer/internal/idtd"
	"dtdinfer/internal/numpred"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/soa"
	"dtdinfer/internal/stateelim"
	"dtdinfer/internal/tranglike"
	"dtdinfer/internal/xsd"
	"dtdinfer/internal/xtract"
)

// Algorithm selects the inference engine for content models.
type Algorithm string

const (
	// IDTD is the paper's SORE inference: 2T-INF + rewrite + repair rules.
	IDTD Algorithm = "idtd"
	// CRX is the paper's CHARE inference, strongest on sparse data.
	CRX Algorithm = "crx"
	// RewriteOnly is rewrite without repair rules: fails on
	// non-representative samples (used to reproduce Figure 4).
	RewriteOnly Algorithm = "rewrite"
	// XTRACT is the reconstruction of the Garofalakis et al. system.
	XTRACT Algorithm = "xtract"
	// TrangLike is the reconstruction of Trang's strategy.
	TrangLike Algorithm = "trang"
	// StateElim is classical state elimination over the 2T-INF automaton.
	StateElim Algorithm = "stateelim"
)

// ParseAlgorithm converts a name (as used by the command-line tools) into
// an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch Algorithm(name) {
	case IDTD, CRX, RewriteOnly, XTRACT, TrangLike, StateElim:
		return Algorithm(name), nil
	}
	return "", fmt.Errorf("core: unknown algorithm %q (want idtd, crx, rewrite, xtract, trang or stateelim)", name)
}

// Options tune the engines.
type Options struct {
	// IDTD options (fuzziness k, noise threshold, ...).
	IDTD idtd.Options
	// XTRACT options (string cap, block length).
	XTRACT xtract.Options
	// NumericPredicates enables the Section 9 post-processing that refines
	// r+ factors to r{m}/r{m,} bounds from the sample.
	NumericPredicates bool
	// Parallelism is the number of worker goroutines used for document
	// ingestion (XML decoding). 0 selects GOMAXPROCS, 1 forces sequential
	// ingestion. Results are byte-identical at every setting; see
	// dtd.AddDocsParallel.
	Parallelism int
}

// InferExpr derives a content-model expression from positive example
// strings with the chosen algorithm.
func InferExpr(sample [][]string, algo Algorithm, opts *Options) (*regex.Expr, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	var e *regex.Expr
	var err error
	switch algo {
	case IDTD:
		var res *idtd.Result
		res, err = idtd.Infer(sample, &o.IDTD)
		if err == nil {
			e = res.Expr
		}
	case CRX:
		var res *crx.Result
		res, err = crx.Infer(sample)
		if err == nil {
			e = res.Expr
		}
	case RewriteOnly:
		e, err = gfa.Rewrite(soa.Infer(sample))
	case XTRACT:
		e, err = xtract.Infer(sample, &o.XTRACT)
	case TrangLike:
		e, err = tranglike.Infer(sample)
	case StateElim:
		e, err = stateelim.FromSOA(soa.Infer(sample))
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, err
	}
	if o.NumericPredicates {
		e = numpred.Refine(e, sample)
	}
	return e, nil
}

// Inferrer adapts an algorithm to the dtd.InferFunc shape.
func Inferrer(algo Algorithm, opts *Options) dtd.InferFunc {
	return func(sample [][]string) (*regex.Expr, error) {
		return InferExpr(sample, algo, opts)
	}
}

// ingestAll is the single ingestion pipeline behind every document-level
// entry point: hardened, fault-isolated, and sharded across workers
// according to opts.Parallelism. The report is never nil.
func ingestAll(docs []io.Reader, opts *Options,
	ingest *dtd.IngestOptions, policy dtd.ErrorPolicy) (*dtd.Extraction, *dtd.IngestReport, error) {
	workers := 0
	if opts != nil {
		workers = opts.Parallelism
	}
	x := dtd.NewExtraction()
	report, err := x.AddDocumentsParallel(docs, workers, ingest, policy)
	if err != nil {
		return nil, report, fmt.Errorf("core: %w", err)
	}
	return x, report, nil
}

// InferDTD extracts element sequences from the given XML documents and
// infers a complete DTD. Ingestion runs through the same sharded,
// fault-isolated pipeline as InferDTDReport (uncapped, fail-fast).
func InferDTD(docs []io.Reader, algo Algorithm, opts *Options) (*dtd.DTD, error) {
	x, _, err := ingestAll(docs, opts, nil, dtd.FailFast)
	if err != nil {
		return nil, err
	}
	return x.InferDTD(Inferrer(algo, opts))
}

// InferDTDReport is InferDTD with hardened ingestion: documents are
// ingested under the resource caps of ingest (nil = unlimited) with
// per-document fault isolation under the chosen policy, and the returned
// IngestReport and InferStats carry the ingestion counters, per-document
// errors and per-element inference timings. Under SkipAndRecord a
// malformed document is recorded and skipped rather than aborting the
// batch. The report is non-nil even on error; the stats are non-nil
// whenever inference ran.
func InferDTDReport(docs []io.Reader, algo Algorithm, opts *Options,
	ingest *dtd.IngestOptions, policy dtd.ErrorPolicy) (*dtd.DTD, *dtd.IngestReport, *dtd.InferStats, error) {
	x, report, err := ingestAll(docs, opts, ingest, policy)
	if err != nil {
		return nil, report, nil, err
	}
	d, stats, err := x.InferDTDStats(Inferrer(algo, opts))
	if err != nil {
		return nil, report, stats, err
	}
	return d, report, stats, nil
}

// InferDTDFromExtraction infers a DTD from already-extracted sequences.
func InferDTDFromExtraction(x *dtd.Extraction, algo Algorithm, opts *Options) (*dtd.DTD, error) {
	return x.InferDTD(Inferrer(algo, opts))
}

// InferDTDFromExtractionStats additionally reports per-element inference
// timings from InferDTD's worker pool.
func InferDTDFromExtractionStats(x *dtd.Extraction, algo Algorithm, opts *Options) (*dtd.DTD, *dtd.InferStats, error) {
	return x.InferDTDStats(Inferrer(algo, opts))
}

// InferXSD infers a DTD from the documents and renders it as an XML Schema
// with datatype detection over the sampled text values (Section 9).
func InferXSD(docs []io.Reader, algo Algorithm, opts *Options) (string, error) {
	x, _, err := ingestAll(docs, opts, nil, dtd.FailFast)
	if err != nil {
		return "", err
	}
	d, err := x.InferDTD(Inferrer(algo, opts))
	if err != nil {
		return "", err
	}
	return xsd.Generate(d, x.TextSamples), nil
}
