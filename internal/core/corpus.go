package core

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"dtdinfer/internal/dtd"
	"dtdinfer/internal/faultinject"
)

// Durable corpus summaries. A corpus summary is everything inference
// needs and nothing it does not: the counted sequence samples, text and
// attribute statistics, root counts, and the incremental-inference state
// (dirty set, memoized content models, memoized <!ATTLIST> declarations).
// The documents themselves are gone — a summary of a multi-gigabyte
// corpus is typically kilobytes — yet inference over a loaded summary is
// byte-identical to inference over the original extraction, and a warm
// summary replays its cached models without running any engine.
//
// Summaries merge: extractions built from disjoint document shards (on
// different machines, in different processes) can each be saved, then
// combined with dtd.(*Extraction).MergeSummary into a summary equivalent
// to single-machine ingestion. cmd/dtdmerge is the CLI face of that
// map-reduce shape.

// SaveCorpus writes the extraction's corpus summary to path atomically
// and durably: the snapshot is written to a temporary file in the same
// directory, synced, renamed into place, and then the containing
// directory is synced too. The file sync alone makes the *content*
// durable; only the directory sync makes the *rename* durable — without
// it a power loss after SaveCorpus returns can legally resurface the old
// file (or no file) under the target name.
func SaveCorpus(x *dtd.Extraction, path string) error {
	if err := faultinject.Fire("persist.write", path); err != nil {
		return fmt.Errorf("core: saving corpus to %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(dirOf(path), ".corpus-*.tmp")
	if err != nil {
		return fmt.Errorf("core: saving corpus: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := x.WriteSnapshot(bw); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving corpus to %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving corpus to %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving corpus to %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: saving corpus to %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: saving corpus: %w", err)
	}
	if err := syncDir(dirOf(path)); err != nil {
		return fmt.Errorf("core: saving corpus to %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1]
		}
	}
	return "."
}

// RetryPolicy shapes the retry loop around a failing persist: how many
// attempts in total, and how long to back off between them. Backoff is
// exponential from Backoff up to MaxBackoff, with ±50% jitter so a fleet
// of tenants whose persists fail together (a full disk, a flaky mount)
// does not retry in lockstep. The zero value means DefaultRetryPolicy.
type RetryPolicy struct {
	// Attempts is the total number of tries (first attempt included);
	// 0 means 3. 1 disables retries.
	Attempts int
	// Backoff is the delay before the second attempt; 0 means 50ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means 2s.
	MaxBackoff time.Duration
	// Sleep replaces time.Sleep in tests; nil means time.Sleep.
	Sleep func(time.Duration)
	// OnRetry observes each failed attempt before the backoff sleep
	// (attempt numbers from 1). Metrics counters hook in here.
	OnRetry func(attempt int, err error)
}

// DefaultRetryPolicy is the policy a zero RetryPolicy resolves to.
var DefaultRetryPolicy = RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second}

func (p RetryPolicy) resolved() RetryPolicy {
	if p.Attempts == 0 {
		p.Attempts = DefaultRetryPolicy.Attempts
	}
	if p.Backoff == 0 {
		p.Backoff = DefaultRetryPolicy.Backoff
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = DefaultRetryPolicy.MaxBackoff
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// backoff returns the jittered delay before attempt n+1 (n from 1).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.Backoff << (n - 1)
	if d > p.MaxBackoff || d <= 0 { // <= 0 guards shift overflow
		d = p.MaxBackoff
	}
	// ±50% jitter; rand is fine here — this is desynchronization, not
	// cryptography, and tests assert on attempt counts, not delays.
	return d/2 + time.Duration(rand.Int63n(int64(d)+1))
}

// SaveCorpusRetry is SaveCorpus under a retry policy: transient write
// failures (the fault injection point "persist.write" included) are
// retried with jittered exponential backoff until an attempt succeeds or
// the policy's attempts are exhausted, in which case the last error is
// returned. This is the one persist loop shared by the schema service
// daemon's periodic auto-persist and Incremental's refresh-time
// auto-persist.
func SaveCorpusRetry(x *dtd.Extraction, path string, policy *RetryPolicy) error {
	p := DefaultRetryPolicy
	if policy != nil {
		p = *policy
	}
	p = p.resolved()
	var err error
	for attempt := 1; ; attempt++ {
		err = SaveCorpus(x, path)
		if err == nil || attempt >= p.Attempts {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		p.Sleep(p.backoff(attempt))
	}
}

// LoadCorpus reads a corpus summary previously written by SaveCorpus
// (or WriteCorpus). The bytes are treated as untrusted: framing, field
// ranges, canonical ordering and content fingerprints are all validated,
// and corruption yields an error, never a panic. Loading costs O(size of
// the summary) — independent of the size of the corpus it summarizes.
func LoadCorpus(path string) (*dtd.Extraction, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading corpus: %w", err)
	}
	defer f.Close()
	x, err := dtd.ReadSnapshot(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("core: loading corpus from %s: %w", path, err)
	}
	return x, nil
}

// WriteCorpus streams the extraction's corpus summary to w — the
// io.Writer form of SaveCorpus for callers that own the destination
// (sockets, object stores, pipelines).
func WriteCorpus(x *dtd.Extraction, w io.Writer) error {
	if err := x.WriteSnapshot(w); err != nil {
		return fmt.Errorf("core: writing corpus: %w", err)
	}
	return nil
}

// MergeCorpusFiles loads the named corpus summaries and merges them in
// argument order, streaming: each summary is decoded, folded into the
// accumulator, and released before the next is read, so peak memory is
// the accumulator plus one decoded shard — never all K shards at once.
// Summary merge is deterministic, so the result is byte-identical to
// decoding every shard up front and merging them in the same order (and,
// transitively, to single-machine ingestion of all the documents).
func MergeCorpusFiles(paths []string) (*dtd.Extraction, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: merging corpus files: no summaries named")
	}
	x, err := LoadCorpus(paths[0])
	if err != nil {
		return nil, err
	}
	for _, name := range paths[1:] {
		shard, err := LoadCorpus(name)
		if err != nil {
			return nil, err
		}
		x.MergeSummary(shard)
		// shard is dead here: MergeSummary copies the statistics and
		// retains only adopted cache entries, so the decoded shard is
		// collectable before the next file is opened.
	}
	return x, nil
}

// ReadCorpus is the io.Reader form of LoadCorpus.
func ReadCorpus(r io.Reader) (*dtd.Extraction, error) {
	x, err := dtd.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading corpus: %w", err)
	}
	return x, nil
}
