package core

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"dtdinfer/internal/dtd"
)

// Durable corpus summaries. A corpus summary is everything inference
// needs and nothing it does not: the counted sequence samples, text and
// attribute statistics, root counts, and the incremental-inference state
// (dirty set, memoized content models, memoized <!ATTLIST> declarations).
// The documents themselves are gone — a summary of a multi-gigabyte
// corpus is typically kilobytes — yet inference over a loaded summary is
// byte-identical to inference over the original extraction, and a warm
// summary replays its cached models without running any engine.
//
// Summaries merge: extractions built from disjoint document shards (on
// different machines, in different processes) can each be saved, then
// combined with dtd.(*Extraction).MergeSummary into a summary equivalent
// to single-machine ingestion. cmd/dtdmerge is the CLI face of that
// map-reduce shape.

// SaveCorpus writes the extraction's corpus summary to path atomically:
// the snapshot is written to a temporary file in the same directory and
// renamed into place only after a successful sync, so a crash mid-write
// never leaves a truncated summary under the target name.
func SaveCorpus(x *dtd.Extraction, path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".corpus-*.tmp")
	if err != nil {
		return fmt.Errorf("core: saving corpus: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := x.WriteSnapshot(bw); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving corpus to %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving corpus to %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving corpus to %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: saving corpus to %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: saving corpus: %w", err)
	}
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1]
		}
	}
	return "."
}

// LoadCorpus reads a corpus summary previously written by SaveCorpus
// (or WriteCorpus). The bytes are treated as untrusted: framing, field
// ranges, canonical ordering and content fingerprints are all validated,
// and corruption yields an error, never a panic. Loading costs O(size of
// the summary) — independent of the size of the corpus it summarizes.
func LoadCorpus(path string) (*dtd.Extraction, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading corpus: %w", err)
	}
	defer f.Close()
	x, err := dtd.ReadSnapshot(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("core: loading corpus from %s: %w", path, err)
	}
	return x, nil
}

// WriteCorpus streams the extraction's corpus summary to w — the
// io.Writer form of SaveCorpus for callers that own the destination
// (sockets, object stores, pipelines).
func WriteCorpus(x *dtd.Extraction, w io.Writer) error {
	if err := x.WriteSnapshot(w); err != nil {
		return fmt.Errorf("core: writing corpus: %w", err)
	}
	return nil
}

// ReadCorpus is the io.Reader form of LoadCorpus.
func ReadCorpus(r io.Reader) (*dtd.Extraction, error) {
	x, err := dtd.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading corpus: %w", err)
	}
	return x, nil
}
