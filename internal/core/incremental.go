package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"dtdinfer/internal/dtd"
)

// Incremental inference and versioned snapshots (the paper's Section 9
// maintenance scenario). The dtd layer memoizes per-element content
// models under fingerprint validation; this file supplies the engine-
// configuration keys that make the cache safe across differently
// configured passes, and the Snapshot/Incremental types that publish
// each inference result as an immutable, monotonically versioned value
// readers can validate against while the next version is prepared.

// cacheConfig derives the model-cache configuration for one engine
// setup. The key must change whenever anything that can alter an
// engine's output for the same sample changes: the algorithm, the
// engine options, the numeric-predicate refinement, the budget (it can
// fail an engine mid-ladder), and the degradation mode. Rendering the
// option structs with %+v keeps the key exhaustive by construction —
// a new option field changes the key format rather than silently
// aliasing two configurations.
func cacheConfig(algo Algorithm, opts *Options) *dtd.CacheConfig {
	var o Options
	if opts != nil {
		o = *opts
	}
	key := fmt.Sprintf("%s|idtd:%+v|xtract:%+v|numeric:%t|budget:%+v|degrade:%d",
		algo, o.IDTD, o.XTRACT, o.NumericPredicates, o.Budget, o.Degrade)
	return &dtd.CacheConfig{Key: key, Counted: countSensitive(algo, &o)}
}

// countSensitive reports whether the configured engine's output can
// depend on sequence *multiplicities* rather than just the set of
// distinct sequences. Count-insensitive configurations validate cached
// models against the shape fingerprint, so bulk merges that only bump
// counts of already-seen shapes stay warm; count-sensitive ones use the
// counted fingerprint and recompute on any sample growth.
func countSensitive(algo Algorithm, o *Options) bool {
	if o.NumericPredicates {
		// r{m}/r{m,} bounds are computed from occurrence statistics.
		return true
	}
	switch algo {
	case CRX, TrangLike, StateElim, RewriteOnly:
		// Pure 2T-INF/partition constructions over the distinct
		// sequences; duplicates add nothing.
		return false
	case IDTD:
		// The repair rules run on the 2T-INF automaton (shape-only), but
		// a noise threshold prunes edges by occurrence support.
		return o.IDTD.NoiseThreshold > 0
	default:
		// XTRACT's MDL ranking weighs candidate frequency; unknown
		// engines get the conservative choice.
		return true
	}
}

// Snapshot is one published inference result: an immutable DTD with the
// stats of the pass that produced it, tagged with a monotonically
// increasing version. Snapshots are never mutated after publication —
// readers may hold one indefinitely while newer versions appear.
type Snapshot struct {
	// Version numbers successful publishes from 1; 0 never appears on a
	// published snapshot and can denote "nothing published yet".
	Version uint64
	// DTD is the inferred schema.
	DTD *dtd.DTD
	// Stats reports the inference pass, including cache traffic.
	Stats *dtd.InferStats
	// Documents is the extraction's document count at inference time.
	Documents int
}

// Incremental maintains a DTD over a growing corpus: ingest batches with
// AddDocs, publish a new immutable Snapshot with Refresh, read the
// latest with Current. Writers (AddDocs, Refresh) serialize on an
// internal mutex; Current is a lock-free atomic load, safe from any
// number of readers concurrent with ingestion and re-inference. A failed
// Refresh publishes nothing: readers keep the previous snapshot.
type Incremental struct {
	algo Algorithm
	opts Options

	mu  sync.Mutex // guards x and the prepare-publish sequence
	x   *dtd.Extraction
	cur atomic.Pointer[Snapshot]

	// Auto-persist state (see EnableAutoPersist). persistPath is
	// immutable after EnableAutoPersist; lastPersistErr is guarded by mu.
	persistPath    string
	persistRetry   RetryPolicy
	lastPersistErr error
}

// NewIncremental returns an empty incremental inferrer for the given
// engine configuration (opts may be nil; it is captured by value).
func NewIncremental(algo Algorithm, opts *Options) *Incremental {
	return NewIncrementalFromExtraction(dtd.NewExtraction(), algo, opts)
}

// NewIncrementalFromExtraction wraps an existing extraction — typically
// one recovered with LoadCorpus — so a restarted process resumes exactly
// where the persisted summary left off: the first Refresh replays the
// summary's warm caches, and subsequent ingestion dirties only what it
// changes. The extraction must not be used by the caller afterwards.
func NewIncrementalFromExtraction(x *dtd.Extraction, algo Algorithm, opts *Options) *Incremental {
	inc := &Incremental{algo: algo, x: x}
	if opts != nil {
		inc.opts = *opts
	}
	return inc
}

// AddDocs ingests one batch of documents into the accumulated
// extraction, sharded across opts.Parallelism workers, under the given
// caps and fault-isolation policy. It does not re-infer; call Refresh
// to publish a snapshot reflecting the new state.
func (inc *Incremental) AddDocs(ctx context.Context, docs []dtd.Doc, ingest *dtd.IngestOptions, policy dtd.ErrorPolicy) (*dtd.IngestReport, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.x.AddDocsParallelContext(ctx, docs, inc.opts.Parallelism, ingest, policy)
}

// Refresh runs an incremental inference pass over the accumulated
// extraction and, on success, publishes the result as the next snapshot
// version with an atomic swap. Elements whose samples are unchanged
// since the previous pass replay their cached content models without
// entering the engines. On error nothing is published — Current keeps
// returning the previous snapshot, whose version is unchanged — and the
// pass's partial cache fills still benefit the next Refresh.
func (inc *Incremental) Refresh(ctx context.Context) (*Snapshot, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	d, stats, err := inc.x.InferDTDElementsCached(ctx, cacheConfig(inc.algo, &inc.opts), ElementInferrer(inc.algo, &inc.opts))
	if err != nil {
		return nil, err
	}
	version := uint64(1)
	if prev := inc.cur.Load(); prev != nil {
		version = prev.Version + 1
	}
	snap := &Snapshot{Version: version, DTD: d, Stats: stats, Documents: inc.x.Documents}
	inc.cur.Store(snap)
	if inc.persistPath != "" {
		inc.lastPersistErr = SaveCorpusRetry(inc.x, inc.persistPath, &inc.persistRetry)
	}
	return snap, nil
}

// EnableAutoPersist makes every subsequent successful Refresh save the
// accumulated corpus summary to path via SaveCorpusRetry under the given
// policy (nil = DefaultRetryPolicy). A persist failure never blocks the
// publish — readers get the new snapshot either way — and is reported by
// LastPersistError; the next Refresh (or PersistNow) tries again. Call
// before sharing the Incremental across goroutines.
func (inc *Incremental) EnableAutoPersist(path string, policy *RetryPolicy) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.persistPath = path
	if policy != nil {
		inc.persistRetry = *policy
	} else {
		inc.persistRetry = RetryPolicy{}
	}
}

// PersistNow saves the accumulated corpus summary to the auto-persist
// path immediately (one retried persist, same policy as Refresh), for
// final flushes on shutdown. It is an error if auto-persist is not
// enabled.
func (inc *Incremental) PersistNow() error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.persistPath == "" {
		return fmt.Errorf("core: PersistNow without EnableAutoPersist")
	}
	inc.lastPersistErr = SaveCorpusRetry(inc.x, inc.persistPath, &inc.persistRetry)
	return inc.lastPersistErr
}

// LastPersistError returns the outcome of the most recent auto-persist
// attempt (nil when it succeeded, or before any persist ran).
func (inc *Incremental) LastPersistError() error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.lastPersistErr
}

// MergeSummary folds another extraction — typically a corpus summary
// loaded with LoadCorpus or ReadCorpus, built from a disjoint document
// shard — into the accumulated state, exactly as if the shard's
// documents had been ingested here. Call Refresh to publish a snapshot
// reflecting the merged corpus.
func (inc *Incremental) MergeSummary(o *dtd.Extraction) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.x.MergeSummary(o)
}

// Current returns the latest published snapshot (nil before the first
// successful Refresh). It never blocks: readers validate against the
// snapshot they loaded while writers prepare the next version.
func (inc *Incremental) Current() *Snapshot { return inc.cur.Load() }

// Extraction exposes the accumulated extraction for inspection. The
// caller must not mutate it concurrently with AddDocs or Refresh.
func (inc *Incremental) Extraction() *dtd.Extraction {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.x
}

// ChangeFeed renders what changed between two published snapshots as a
// one-line feed entry ("v3→v4: modified <order>, added <sku>"). A nil
// prev reports every element of next as added (the initial publish).
func ChangeFeed(prev, next *Snapshot) string {
	var from uint64
	var c dtd.ChangeSummary
	if prev != nil {
		from = prev.Version
		c = dtd.Changes(dtd.Diff(prev.DTD, next.DTD))
	} else {
		c = dtd.Changes(dtd.Diff(dtd.New(next.DTD.Root), next.DTD))
	}
	return dtd.FormatChangeFeed(from, next.Version, c)
}
