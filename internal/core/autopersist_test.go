package core

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dtdinfer/internal/dtd"
	"dtdinfer/internal/faultinject"
)

func incDocs(labels ...string) []dtd.Doc {
	docs := make([]dtd.Doc, len(labels))
	for i, body := range labels {
		docs[i] = dtd.Doc{Label: "doc", R: strings.NewReader(body)}
	}
	return docs
}

// TestAutoPersistOnRefresh: with auto-persist enabled, every successful
// Refresh leaves a loadable summary whose inference matches the
// published snapshot byte for byte.
func TestAutoPersistOnRefresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenant.corpus")
	inc := NewIncremental(IDTD, nil)
	inc.EnableAutoPersist(path, &RetryPolicy{Sleep: func(time.Duration) {}})
	ctx := context.Background()
	if _, err := inc.AddDocs(ctx, incDocs("<a><b/><c/></a>"), nil, dtd.FailFast); err != nil {
		t.Fatal(err)
	}
	snap, err := inc.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.LastPersistError(); err != nil {
		t.Fatalf("LastPersistError after successful Refresh: %v", err)
	}
	x, err := LoadCorpus(path)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	d, _, err := InferDTDFromExtractionContext(ctx, x, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != snap.DTD.String() {
		t.Errorf("recovered DTD:\n%s\nwant published:\n%s", d, snap.DTD)
	}

	// A second batch advances both the snapshot and the summary.
	if _, err := inc.AddDocs(ctx, incDocs("<a><b/><b/><c/></a>"), nil, dtd.FailFast); err != nil {
		t.Fatal(err)
	}
	snap2, err := inc.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Version != snap.Version+1 {
		t.Errorf("version = %d, want %d", snap2.Version, snap.Version+1)
	}
	x2, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if x2.Documents != 2 {
		t.Errorf("persisted summary has %d documents, want 2", x2.Documents)
	}
}

// TestAutoPersistFailureDoesNotBlockPublish: a persist that keeps
// failing surfaces through LastPersistError while the snapshot still
// publishes; once the fault clears, the next Refresh persists again.
func TestAutoPersistFailureDoesNotBlockPublish(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("no space left on device")
	path := filepath.Join(t.TempDir(), "tenant.corpus")
	inc := NewIncremental(IDTD, nil)
	inc.EnableAutoPersist(path, &RetryPolicy{Attempts: 2, Sleep: func(time.Duration) {}})
	ctx := context.Background()
	if _, err := inc.AddDocs(ctx, incDocs("<a><b/></a>"), nil, dtd.FailFast); err != nil {
		t.Fatal(err)
	}
	faultinject.Set("persist.write", "", faultinject.Fault{Err: boom})
	snap, err := inc.Refresh(ctx)
	if err != nil {
		t.Fatalf("Refresh must publish despite persist failure, got %v", err)
	}
	if snap == nil || snap.Version != 1 {
		t.Fatalf("snapshot = %+v, want version 1", snap)
	}
	if err := inc.LastPersistError(); !errors.Is(err, boom) {
		t.Errorf("LastPersistError = %v, want the injected error", err)
	}
	faultinject.Reset()
	if _, err := inc.AddDocs(ctx, incDocs("<a><b/><b/></a>"), nil, dtd.FailFast); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if err := inc.LastPersistError(); err != nil {
		t.Errorf("LastPersistError after fault cleared = %v, want nil", err)
	}
	if _, err := LoadCorpus(path); err != nil {
		t.Errorf("summary unreadable after recovery: %v", err)
	}
}

// TestPersistNowAndRecoveryRoundTrip: PersistNow flushes without a
// Refresh, and NewIncrementalFromExtraction resumes from the summary.
func TestPersistNowAndRecoveryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenant.corpus")
	inc := NewIncremental(CRX, nil)
	ctx := context.Background()
	if err := inc.PersistNow(); err == nil {
		t.Error("PersistNow without EnableAutoPersist must fail")
	}
	inc.EnableAutoPersist(path, nil)
	if _, err := inc.AddDocs(ctx, incDocs("<r><x/><y/></r>"), nil, dtd.FailFast); err != nil {
		t.Fatal(err)
	}
	if err := inc.PersistNow(); err != nil {
		t.Fatalf("PersistNow: %v", err)
	}
	snap, err := inc.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}

	x, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	inc2 := NewIncrementalFromExtraction(x, CRX, nil)
	snap2, err := inc2.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.DTD.String() != snap.DTD.String() {
		t.Errorf("recovered incremental infers:\n%s\nwant:\n%s", snap2.DTD, snap.DTD)
	}
	if snap2.Documents != 1 {
		t.Errorf("recovered Documents = %d, want 1", snap2.Documents)
	}
}

// TestIncrementalMergeSummary: merging a shard summary is equivalent to
// ingesting the shard's documents directly.
func TestIncrementalMergeSummary(t *testing.T) {
	ctx := context.Background()
	shard := dtd.NewExtraction()
	if err := shard.AddDocumentOptions(strings.NewReader("<r><y/><z/></r>"), nil); err != nil {
		t.Fatal(err)
	}

	merged := NewIncremental(IDTD, nil)
	if _, err := merged.AddDocs(ctx, incDocs("<r><x/></r>"), nil, dtd.FailFast); err != nil {
		t.Fatal(err)
	}
	merged.MergeSummary(shard)
	got, err := merged.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}

	direct := NewIncremental(IDTD, nil)
	if _, err := direct.AddDocs(ctx, incDocs("<r><x/></r>", "<r><y/><z/></r>"), nil, dtd.FailFast); err != nil {
		t.Fatal(err)
	}
	want, err := direct.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.DTD.String() != want.DTD.String() {
		t.Errorf("merged summary infers:\n%s\nwant direct ingestion:\n%s", got.DTD, want.DTD)
	}
	if got.Documents != want.Documents {
		t.Errorf("merged Documents = %d, want %d", got.Documents, want.Documents)
	}
}
