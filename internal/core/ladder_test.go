package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dtdinfer/internal/dtd"
	"dtdinfer/internal/faultinject"
)

// corpus builds the test extraction: r holds repeated a's, a holds x and
// y, b holds x; x and y are empty. Element a (two child symbols) is the
// degradation target; every other element must be untouched by faults
// keyed to a.
func corpus(t *testing.T) *dtd.Extraction {
	t.Helper()
	x := dtd.NewExtraction()
	docs := []string{
		"<r><a><x></x><y></y></a><b><x></x></b></r>",
		"<r><a><x></x></a><a><y></y></a></r>",
	}
	for _, d := range docs {
		if err := x.AddDocument(strings.NewReader(d)); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

// outcomeOf finds one element's outcome in the stats.
func outcomeOf(t *testing.T, stats *dtd.InferStats, name string) dtd.ElementOutcome {
	t.Helper()
	for _, o := range stats.Outcomes {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("no outcome recorded for element %s (have %v)", name, stats.Outcomes)
	return dtd.ElementOutcome{}
}

// declOf renders one element's declaration for byte-identity checks.
func declOf(t *testing.T, d *dtd.DTD, name string) string {
	t.Helper()
	for _, e := range d.Elements {
		if e.Name == name {
			return e.String()
		}
	}
	t.Fatalf("no declaration for element %s", name)
	return ""
}

func ladderOpts() *Options {
	return &Options{Degrade: DegradeLadder}
}

// baseline infers the corpus fault-free and returns the per-element
// declarations the degraded runs must reproduce for untouched elements.
func baseline(t *testing.T) (*dtd.DTD, *dtd.InferStats) {
	t.Helper()
	faultinject.Reset()
	d, stats, err := InferDTDFromExtractionStats(corpus(t), IDTD, ladderOpts())
	if err != nil {
		t.Fatal(err)
	}
	return d, stats
}

func TestLadderPanicDegradesToCRX(t *testing.T) {
	base, baseStats := baseline(t)
	if o := outcomeOf(t, baseStats, "a"); o.DegradedFrom != "" || o.Engine != "idtd" {
		t.Fatalf("fault-free outcome unexpectedly degraded: %+v", o)
	}

	faultinject.Set(FaultPoint(IDTD), "a", faultinject.Fault{Panic: true})
	defer faultinject.Reset()
	d, stats, err := InferDTDFromExtractionStats(corpus(t), IDTD, ladderOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := outcomeOf(t, stats, "a")
	if o.Engine != "crx" || o.DegradedFrom != "idtd" {
		t.Errorf("outcome = %+v, want crx degraded from idtd", o)
	}
	if !strings.Contains(o.Cause, "panic") {
		t.Errorf("cause = %q, want a panic cause", o.Cause)
	}
	// Elements the fault never touched are byte-identical to the baseline.
	for _, name := range []string{"r", "b", "x", "y"} {
		if got, want := declOf(t, d, name), declOf(t, base, name); got != want {
			t.Errorf("untouched element %s changed: %q != %q", name, got, want)
		}
	}
}

func TestLadderErrorReachesUniversal(t *testing.T) {
	base, _ := baseline(t)
	boom := errors.New("boom")
	faultinject.Set(FaultPoint(IDTD), "a", faultinject.Fault{Err: boom})
	faultinject.Set(FaultPoint(CRX), "a", faultinject.Fault{Err: boom})
	defer faultinject.Reset()
	d, stats, err := InferDTDFromExtractionStats(corpus(t), IDTD, ladderOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := outcomeOf(t, stats, "a")
	if o.Engine != UniversalEngine || o.DegradedFrom != "idtd" {
		t.Errorf("outcome = %+v, want universal degraded from idtd", o)
	}
	if got := declOf(t, d, "a"); !strings.Contains(got, "(x|y)*") {
		t.Errorf("universal model = %q, want (x|y)*", got)
	}
	for _, name := range []string{"r", "b", "x", "y"} {
		if got, want := declOf(t, d, name), declOf(t, base, name); got != want {
			t.Errorf("untouched element %s changed: %q != %q", name, got, want)
		}
	}
}

func TestLadderDeadlineCause(t *testing.T) {
	faultinject.Set(FaultPoint(IDTD), "a", faultinject.Fault{Delay: 50 * time.Millisecond})
	defer faultinject.Reset()
	opts := ladderOpts()
	opts.Budget.Deadline = 5 * time.Millisecond
	_, stats, err := InferDTDFromExtractionStats(corpus(t), IDTD, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := outcomeOf(t, stats, "a")
	if o.DegradedFrom != "idtd" || o.Cause != "deadline" {
		t.Errorf("outcome = %+v, want deadline degradation from idtd", o)
	}
}

func TestLadderStateBudget(t *testing.T) {
	opts := ladderOpts()
	opts.Budget.MaxSOAStates = 1
	_, stats, err := InferDTDFromExtractionStats(corpus(t), IDTD, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Element a has two child symbols and exceeds the cap in iDTD; CRX has
	// no automaton, so the ladder lands there. Element b has a single
	// child symbol and stays on the primary engine.
	o := outcomeOf(t, stats, "a")
	if o.Engine != "crx" || !strings.Contains(o.Cause, "soa-states") {
		t.Errorf("outcome = %+v, want crx with an soa-states cause", o)
	}
	if o := outcomeOf(t, stats, "b"); o.DegradedFrom != "" {
		t.Errorf("element b under budget should not degrade: %+v", o)
	}
}

func TestLadderExprSizeBudget(t *testing.T) {
	opts := ladderOpts()
	opts.Budget.MaxExprSize = 1
	_, stats, err := InferDTDFromExtractionStats(corpus(t), IDTD, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Both idtd's and crx's results for a exceed one token, so only the
	// universal rung (exempt from the size check — it is the rung of last
	// resort) remains.
	o := outcomeOf(t, stats, "a")
	if o.Engine != UniversalEngine || !strings.Contains(o.Cause, "expr-size") {
		t.Errorf("outcome = %+v, want universal with an expr-size cause", o)
	}
}

func TestDegradeFailPropagates(t *testing.T) {
	boom := errors.New("boom")
	faultinject.Set(FaultPoint(IDTD), "a", faultinject.Fault{Err: boom})
	defer faultinject.Reset()
	opts := &Options{Degrade: DegradeFail}
	_, _, err := InferDTDFromExtractionStats(corpus(t), IDTD, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected error", err)
	}
	if err == nil || !strings.Contains(err.Error(), "content model of a") {
		t.Errorf("err = %v, want the element-name wrapping", err)
	}
}

func TestDegradeFailContainsPanic(t *testing.T) {
	faultinject.Set(FaultPoint(IDTD), "a", faultinject.Fault{Panic: true})
	defer faultinject.Reset()
	_, _, err := InferDTDFromExtractionStats(corpus(t), IDTD, &Options{Degrade: DegradeFail})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a contained panic error", err)
	}
}

func TestLadderParentCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := InferDTDFromExtractionContext(ctx, corpus(t), IDTD, ladderOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
