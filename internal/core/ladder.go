package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dtdinfer/internal/budget"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/faultinject"
	"dtdinfer/internal/numpred"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/sample"
)

// The degradation ladder. A single pathological element — one whose
// sample blows up the configured engine, trips a budget, or exposes a bug
// that panics — must not take down the inference of a whole corpus. The
// ladder runs at the learner-dispatch boundary, per element: the
// configured engine first, then CRX (linear-time, cannot blow up, still a
// sound generalization per Theorem 3), then the universal content model
// (a1|...|an)* over the element's observed children, which accepts
// everything and can never fail. Every element therefore gets *some*
// declaration, and the rung it landed on is recorded in its
// dtd.ElementOutcome so degradation is visible, not silent.
//
// Each attempt runs under a recover barrier (a panicking engine degrades
// like an erring one) and, when opts.Budget.Deadline is set, under its own
// context.WithTimeout. Expiry of that per-element deadline degrades;
// cancellation of the parent context propagates and aborts the whole
// inference — the two are distinguished by checking the parent's Err.

// UniversalEngine is the ElementOutcome.Engine name of the last ladder
// rung, the always-succeeding universal content model.
const UniversalEngine = "universal"

// FaultPoint returns the faultinject hook point of one engine's dispatch,
// as fired by every attempt the ladder makes ("engine.idtd", ...).
func FaultPoint(algo Algorithm) string { return "engine." + string(algo) }

// ElementInferrer adapts an algorithm to the dtd.InferElementFunc shape,
// adding the budget enforcement, panic containment, and — under
// DegradeLadder — the degradation ladder. This is the dispatch every
// document-level entry point runs on.
func ElementInferrer(algo Algorithm, opts *Options) dtd.InferElementFunc {
	var o Options
	if opts != nil {
		o = *opts
	}
	return func(ctx context.Context, name string, s *sample.Set) (*regex.Expr, *dtd.ElementOutcome, error) {
		t0 := time.Now()
		e, err := attemptEngine(ctx, algo, name, s, &o)
		if err == nil {
			return e, &dtd.ElementOutcome{
				Name:    name,
				Engine:  string(algo),
				Elapsed: time.Since(t0),
			}, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// The caller cancelled the whole inference; degrading here
			// would mask that, so propagate.
			return nil, nil, cerr
		}
		cause := causeOf(err)
		if o.Degrade != DegradeLadder {
			return nil, &dtd.ElementOutcome{
				Name:    name,
				Engine:  string(algo),
				Cause:   cause,
				Elapsed: time.Since(t0),
			}, err
		}
		if algo != CRX {
			e, crxErr := attemptEngine(ctx, CRX, name, s, &o)
			if crxErr == nil {
				return e, &dtd.ElementOutcome{
					Name:         name,
					Engine:       string(CRX),
					DegradedFrom: string(algo),
					Cause:        cause,
					Elapsed:      time.Since(t0),
				}, nil
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, nil, cerr
			}
			cause += "; crx: " + causeOf(crxErr)
		}
		return universalModel(s), &dtd.ElementOutcome{
			Name:         name,
			Engine:       UniversalEngine,
			DegradedFrom: string(algo),
			Cause:        cause,
			Elapsed:      time.Since(t0),
		}, nil
	}
}

// attemptEngine runs one ladder rung: one engine on one element's sample,
// under the per-element budget and a recover barrier. The fault-injection
// hook fires after the per-element deadline starts, so an injected Delay
// deterministically produces a deadline failure.
func attemptEngine(ctx context.Context, algo Algorithm, name string, s *sample.Set, o *Options) (e *regex.Expr, err error) {
	l, ok := byAlgo[algo]
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (want %s)", algo, AlgorithmList())
	}
	actx := ctx
	if o.Budget.Deadline > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, o.Budget.Deadline)
		defer cancel()
	}
	actx = budget.With(actx, budget.Limits{
		MaxSOAStates: o.Budget.MaxSOAStates,
		MaxExprSize:  o.Budget.MaxExprSize,
	})
	defer func() {
		if r := recover(); r != nil {
			e, err = nil, fmt.Errorf("core: engine %s panicked on element %s: %v", algo, name, r)
		}
	}()
	if ferr := faultinject.Fire(FaultPoint(algo), name); ferr != nil {
		return nil, ferr
	}
	// An injected Delay may have consumed the element's deadline while the
	// hook slept; surface that as the deadline failure it simulates.
	if aerr := actx.Err(); aerr != nil {
		return nil, aerr
	}
	e, err = l.Infer(actx, s, o)
	if err != nil {
		return nil, err
	}
	if err := budget.CheckExprSize(actx, e.Tokens()); err != nil {
		return nil, err
	}
	if o.NumericPredicates {
		e = numpred.RefineSample(e, s)
	}
	return e, nil
}

// causeOf compresses a rung failure into the short ElementOutcome.Cause
// form: "deadline" for per-element timeouts, "cancelled" for cancellation
// observed inside the engine, the error text otherwise (budget errors
// already read "budget: ...", injected panics "faultinject: ...").
func causeOf(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	default:
		return err.Error()
	}
}

// universalModel is the bottom rung: (a1|...|an)* over the element's
// observed children. It accepts every sequence over the alphabet, so it
// can never fail, and it is a valid deterministic content model.
func universalModel(s *sample.Set) *regex.Expr {
	syms := s.Symbols()
	subs := make([]*regex.Expr, len(syms))
	for i, name := range syms {
		subs[i] = regex.Sym(name)
	}
	return regex.Simplify(regex.Star(regex.Union(subs...)))
}
