package core

import (
	"io"
	"strings"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
)

func split(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		for _, r := range w {
			out[i] = append(out[i], string(r))
		}
	}
	return out
}

func TestParseAlgorithm(t *testing.T) {
	for _, name := range []string{"idtd", "crx", "rewrite", "xtract", "trang", "stateelim"} {
		if _, err := ParseAlgorithm(name); err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", name, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("want error")
	}
}

func TestInferExprAllAlgorithmsCoverSample(t *testing.T) {
	sample := split("ab", "abb", "aab", "b")
	for _, algo := range []Algorithm{IDTD, CRX, XTRACT, TrangLike, StateElim} {
		e, err := InferExpr(sample, algo, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for _, w := range sample {
			if !automata.ExprMember(regex.ExpandRepeats(e), w) {
				t.Errorf("%s result %s rejects %v", algo, e, w)
			}
		}
	}
}

func TestRewriteOnlyFailsOnNonRepresentative(t *testing.T) {
	// The Figure 2 sample: rewrite alone must fail, iDTD must not.
	sample := split("bacacdacde", "cbacdbacde")
	if _, err := InferExpr(sample, RewriteOnly, nil); err == nil {
		t.Error("rewrite should fail on the Figure 2 sample")
	}
	if _, err := InferExpr(sample, IDTD, nil); err != nil {
		t.Errorf("iDTD should succeed: %v", err)
	}
}

func TestNumericPredicatesOption(t *testing.T) {
	sample := split("aabb", "aabbb")
	e, err := InferExpr(sample, IDTD, &Options{NumericPredicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "a{2} b{2,}" {
		t.Errorf("numeric result = %q, want a{2} b{2,}", e)
	}
}

func TestInferDTDFromReaders(t *testing.T) {
	docs := []string{
		`<r><x>1</x><x>2</x></r>`,
		`<r><x>3</x></r>`,
	}
	var readers []interface{ Read([]byte) (int, error) }
	_ = readers
	x := dtd.NewExtraction()
	for _, d := range docs {
		if err := x.AddDocument(strings.NewReader(d)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := InferDTDFromExtraction(x, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["r"].Model.String(); got != "x+" {
		t.Errorf("model = %q", got)
	}
}

func TestInferXSDSmoke(t *testing.T) {
	x := dtd.NewExtraction()
	if err := x.AddDocument(strings.NewReader(`<r><n>7</n></r>`)); err != nil {
		t.Fatal(err)
	}
	d, err := InferDTDFromExtraction(x, CRX, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Elements["n"].Type != dtd.PCData {
		t.Errorf("n should be #PCDATA")
	}
}

func TestUnknownAlgorithmError(t *testing.T) {
	if _, err := InferExpr(split("a"), Algorithm("nope"), nil); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

func TestInferDTDAndXSDFromDocuments(t *testing.T) {
	docs := []io.Reader{
		strings.NewReader(`<r><x>1</x><y/></r>`),
		strings.NewReader(`<r><x>2</x><x>3</x></r>`),
	}
	d, err := InferDTD(docs, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["r"].Model.String(); got != "x+ y?" {
		t.Errorf("model = %q", got)
	}
	out, err := InferXSD([]io.Reader{strings.NewReader(`<r><x>5</x></r>`)}, CRX, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `type="xs:integer"`) {
		t.Errorf("XSD datatype detection missing:\n%s", out)
	}
	if _, err := InferDTD([]io.Reader{strings.NewReader("<broken")}, IDTD, nil); err == nil {
		t.Error("malformed document must fail")
	}
	if _, err := InferXSD([]io.Reader{strings.NewReader("<broken")}, IDTD, nil); err == nil {
		t.Error("malformed document must fail for XSD too")
	}
}

func TestInferDTDReportSkipPolicy(t *testing.T) {
	good := func() []io.Reader {
		return []io.Reader{
			strings.NewReader(`<r><x>1</x><y/></r>`),
			strings.NewReader(`<r><x>2</x><x>3</x></r>`),
		}
	}
	want, err := InferDTD(good(), IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	docs := []io.Reader{
		strings.NewReader(`<r><x>1</x><y/></r>`),
		strings.NewReader(`<r><x>bad</r>`),
		strings.NewReader(`<r><x>2</x><x>3</x></r>`),
	}
	d, report, stats, err := InferDTDReport(docs, IDTD, nil, nil, dtd.SkipAndRecord)
	if err != nil {
		t.Fatalf("skip policy must not error: %v", err)
	}
	if report.Accepted != 2 || report.Rejected != 1 || len(report.Errors) != 1 {
		t.Errorf("report = %+v", report)
	}
	if stats == nil || len(stats.PerElement) == 0 {
		t.Errorf("missing inference stats")
	}
	if !d.Equal(want) {
		t.Errorf("DTD with skipped document differs:\n%s\nvs\n%s", d, want)
	}
}

func TestInferDTDReportFailFast(t *testing.T) {
	docs := []io.Reader{
		strings.NewReader(`<r><x>1</x></r>`),
		strings.NewReader(`<broken`),
	}
	_, report, _, err := InferDTDReport(docs, IDTD, nil, nil, dtd.FailFast)
	if err == nil {
		t.Fatal("fail-fast must surface the error")
	}
	if report == nil || report.Rejected != 1 {
		t.Errorf("report = %+v", report)
	}
}

func TestInferDTDReportLimits(t *testing.T) {
	deep := strings.Repeat("<d>", 1000) + strings.Repeat("</d>", 1000)
	_, report, _, err := InferDTDReport(
		[]io.Reader{strings.NewReader(deep)}, IDTD, nil,
		&dtd.IngestOptions{MaxDepth: 10}, dtd.FailFast)
	if err == nil {
		t.Fatal("depth cap must reject the document")
	}
	if !strings.Contains(err.Error(), "depth") {
		t.Errorf("error does not name the cap: %v", err)
	}
	if report.Rejected != 1 {
		t.Errorf("report = %+v", report)
	}
}

func TestInferDTDFromExtractionStats(t *testing.T) {
	x := dtd.NewExtraction()
	if err := x.AddDocument(strings.NewReader(`<r><x>1</x></r>`)); err != nil {
		t.Fatal(err)
	}
	d, stats, err := InferDTDFromExtractionStats(x, CRX, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || stats == nil || stats.Wall <= 0 {
		t.Errorf("stats = %+v", stats)
	}
}
