package core

import (
	"io"
	"strings"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
)

func split(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		for _, r := range w {
			out[i] = append(out[i], string(r))
		}
	}
	return out
}

func TestParseAlgorithm(t *testing.T) {
	for _, name := range []string{"idtd", "crx", "rewrite", "xtract", "trang", "stateelim"} {
		if _, err := ParseAlgorithm(name); err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", name, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("want error")
	}
}

func TestInferExprAllAlgorithmsCoverSample(t *testing.T) {
	sample := split("ab", "abb", "aab", "b")
	for _, algo := range []Algorithm{IDTD, CRX, XTRACT, TrangLike, StateElim} {
		e, err := InferExpr(sample, algo, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for _, w := range sample {
			if !automata.ExprMember(regex.ExpandRepeats(e), w) {
				t.Errorf("%s result %s rejects %v", algo, e, w)
			}
		}
	}
}

func TestRewriteOnlyFailsOnNonRepresentative(t *testing.T) {
	// The Figure 2 sample: rewrite alone must fail, iDTD must not.
	sample := split("bacacdacde", "cbacdbacde")
	if _, err := InferExpr(sample, RewriteOnly, nil); err == nil {
		t.Error("rewrite should fail on the Figure 2 sample")
	}
	if _, err := InferExpr(sample, IDTD, nil); err != nil {
		t.Errorf("iDTD should succeed: %v", err)
	}
}

func TestNumericPredicatesOption(t *testing.T) {
	sample := split("aabb", "aabbb")
	e, err := InferExpr(sample, IDTD, &Options{NumericPredicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "a{2} b{2,}" {
		t.Errorf("numeric result = %q, want a{2} b{2,}", e)
	}
}

func TestInferDTDFromReaders(t *testing.T) {
	docs := []string{
		`<r><x>1</x><x>2</x></r>`,
		`<r><x>3</x></r>`,
	}
	var readers []interface{ Read([]byte) (int, error) }
	_ = readers
	x := dtd.NewExtraction()
	for _, d := range docs {
		if err := x.AddDocument(strings.NewReader(d)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := InferDTDFromExtraction(x, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["r"].Model.String(); got != "x+" {
		t.Errorf("model = %q", got)
	}
}

func TestInferXSDSmoke(t *testing.T) {
	x := dtd.NewExtraction()
	if err := x.AddDocument(strings.NewReader(`<r><n>7</n></r>`)); err != nil {
		t.Fatal(err)
	}
	d, err := InferDTDFromExtraction(x, CRX, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Elements["n"].Type != dtd.PCData {
		t.Errorf("n should be #PCDATA")
	}
}

func TestUnknownAlgorithmError(t *testing.T) {
	if _, err := InferExpr(split("a"), Algorithm("nope"), nil); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

func TestInferDTDAndXSDFromDocuments(t *testing.T) {
	docs := []io.Reader{
		strings.NewReader(`<r><x>1</x><y/></r>`),
		strings.NewReader(`<r><x>2</x><x>3</x></r>`),
	}
	d, err := InferDTD(docs, IDTD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["r"].Model.String(); got != "x+ y?" {
		t.Errorf("model = %q", got)
	}
	out, err := InferXSD([]io.Reader{strings.NewReader(`<r><x>5</x></r>`)}, CRX, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `type="xs:integer"`) {
		t.Errorf("XSD datatype detection missing:\n%s", out)
	}
	if _, err := InferDTD([]io.Reader{strings.NewReader("<broken")}, IDTD, nil); err == nil {
		t.Error("malformed document must fail")
	}
	if _, err := InferXSD([]io.Reader{strings.NewReader("<broken")}, IDTD, nil); err == nil {
		t.Error("malformed document must fail for XSD too")
	}
}
