package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dtdinfer/internal/dtd"
	"dtdinfer/internal/faultinject"
	"dtdinfer/internal/idtd"
)

func idtdNoise(n int) idtd.Options { return idtd.Options{NoiseThreshold: n} }

func addBatch(t *testing.T, inc *Incremental, docs ...string) {
	t.Helper()
	batch := make([]dtd.Doc, len(docs))
	for i, d := range docs {
		batch[i] = dtd.Doc{Label: "doc", R: strings.NewReader(d)}
	}
	if _, err := inc.AddDocs(context.Background(), batch, nil, dtd.FailFast); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalSnapshotVersions: Refresh publishes monotonically
// versioned snapshots; unchanged corpora still publish (with full cache
// hits), and Current always returns the latest published value.
func TestIncrementalSnapshotVersions(t *testing.T) {
	inc := NewIncremental(IDTD, nil)
	if inc.Current() != nil {
		t.Fatal("snapshot published before first Refresh")
	}
	addBatch(t, inc, `<r><a/><b/></r>`)
	s1, err := inc.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s1.Version != 1 || inc.Current() != s1 {
		t.Fatalf("first publish: version=%d current=%p", s1.Version, inc.Current())
	}
	if s1.Documents != 1 {
		t.Errorf("snapshot documents = %d, want 1", s1.Documents)
	}
	s2, err := inc.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != 2 {
		t.Errorf("second publish version = %d, want 2", s2.Version)
	}
	if s2.Stats.CacheHits == 0 || s2.Stats.CacheMisses != 0 {
		t.Errorf("unchanged refresh: %d hits %d misses, want all hits", s2.Stats.CacheHits, s2.Stats.CacheMisses)
	}
	if s1.DTD.String() != s2.DTD.String() {
		t.Error("unchanged refresh altered the DTD")
	}
}

// TestIncrementalFailedRefreshKeepsSnapshot: a Refresh whose engine
// fails publishes nothing — readers keep the previous snapshot at its
// previous version — and a later successful Refresh picks up where the
// corpus actually is.
func TestIncrementalFailedRefreshKeepsSnapshot(t *testing.T) {
	defer faultinject.Reset()
	inc := NewIncremental(IDTD, &Options{Degrade: DegradeFail})
	addBatch(t, inc, `<r><a><c/></a></r>`)
	s1, err := inc.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Change element a's sample so the next pass must re-enter the
	// engine for it, then make that engine fail.
	addBatch(t, inc, `<r><a><c/><c/></a></r>`)
	boom := errors.New("injected engine failure")
	faultinject.Set(FaultPoint(IDTD), "a", faultinject.Fault{Err: boom})
	if _, err := inc.Refresh(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	cur := inc.Current()
	if cur != s1 {
		t.Fatalf("failed refresh replaced the snapshot: %p -> %p", s1, cur)
	}
	if cur.Version != 1 {
		t.Fatalf("failed refresh moved the version to %d", cur.Version)
	}

	faultinject.Reset()
	s2, err := inc.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != 2 {
		t.Errorf("recovery publish version = %d, want 2", s2.Version)
	}
	if s2.DTD.String() == s1.DTD.String() {
		t.Error("recovery publish did not reflect the new sample")
	}
}

// TestChangeFeed: the feed line names what changed between snapshots,
// including the initial publish (everything added) and the no-change
// case.
func TestChangeFeed(t *testing.T) {
	inc := NewIncremental(IDTD, nil)
	addBatch(t, inc, `<r><a/></r>`)
	s1, err := inc.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	initial := ChangeFeed(nil, s1)
	for _, want := range []string{"v0→v1:", "added", "<a>"} {
		if !strings.Contains(initial, want) {
			t.Errorf("initial feed %q missing %q", initial, want)
		}
	}

	addBatch(t, inc, `<r><a/><b/></r>`)
	s2, err := inc.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	feed := ChangeFeed(s1, s2)
	for _, want := range []string{"v1→v2:", "modified <r>", "added <b>"} {
		if !strings.Contains(feed, want) {
			t.Errorf("feed %q missing %q", feed, want)
		}
	}

	s3, err := inc.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if feed := ChangeFeed(s2, s3); !strings.Contains(feed, "no changes") {
		t.Errorf("unchanged feed %q should say no changes", feed)
	}
}

// TestCountSensitive pins the per-engine fingerprint choice: shape-only
// constructions stay warm across multiplicity-only growth; anything that
// weighs occurrence counts must recompute.
func TestCountSensitive(t *testing.T) {
	for _, tc := range []struct {
		algo Algorithm
		opts Options
		want bool
	}{
		{IDTD, Options{}, false},
		{IDTD, Options{IDTD: idtdNoise(2)}, true},
		{CRX, Options{}, false},
		{RewriteOnly, Options{}, false},
		{TrangLike, Options{}, false},
		{StateElim, Options{}, false},
		{XTRACT, Options{}, true},
		{CRX, Options{NumericPredicates: true}, true},
	} {
		if got := countSensitive(tc.algo, &tc.opts); got != tc.want {
			t.Errorf("countSensitive(%s, %+v) = %t, want %t", tc.algo, tc.opts, got, tc.want)
		}
	}
}

// TestCacheConfigKeysDiffer: configurations that can change engine
// output must key distinct cache namespaces.
func TestCacheConfigKeysDiffer(t *testing.T) {
	base := cacheConfig(IDTD, nil)
	for name, opts := range map[string]*Options{
		"numeric": {NumericPredicates: true},
		"budget":  {Budget: Budget{MaxExprSize: 10}},
		"degrade": {Degrade: DegradeLadder},
		"noise":   {IDTD: idtdNoise(1)},
	} {
		if c := cacheConfig(IDTD, opts); c.Key == base.Key {
			t.Errorf("%s options did not change the cache key", name)
		}
	}
	if c := cacheConfig(CRX, nil); c.Key == base.Key {
		t.Error("algorithm did not change the cache key")
	}
}
