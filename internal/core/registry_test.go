package core

import (
	"reflect"
	"strings"
	"testing"

	"dtdinfer/internal/crx"
	"dtdinfer/internal/gfa"
	"dtdinfer/internal/idtd"
	"dtdinfer/internal/numpred"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/sample"
	"dtdinfer/internal/soa"
	"dtdinfer/internal/stateelim"
	"dtdinfer/internal/tranglike"
	"dtdinfer/internal/xtract"
)

func TestRegistryDrivesNamesAndErrors(t *testing.T) {
	want := []string{"idtd", "crx", "rewrite", "xtract", "trang", "stateelim"}
	if got := AlgorithmNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("AlgorithmNames = %v, want %v", got, want)
	}
	if got := AlgorithmList(); got != "idtd, crx, rewrite, xtract, trang or stateelim" {
		t.Errorf("AlgorithmList = %q", got)
	}
	_, err := ParseAlgorithm("bogus")
	if err == nil {
		t.Fatal("want error")
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered algorithm %q", err, name)
		}
	}
	if len(Learners()) != len(want) {
		t.Errorf("Learners() has %d entries", len(Learners()))
	}
	for _, l := range Learners() {
		if l.Doc == "" {
			t.Errorf("learner %s has no usage doc", l.Algo)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	Register(Learner{Algo: IDTD, Infer: Learners()[0].Infer})
}

// equivalenceSamples exercise dedup-heavy, sparse and empty-containing
// shapes, so multiplicity handling in every engine is on the hook.
func equivalenceSamples() [][][]string {
	return [][][]string{
		split("ab", "abb", "aab", "b"),
		split("ab", "ab", "ab", "abb", "abb", "b", ""),
		split("bacacdacde", "cbacdbacde", "abccaadcde"),
		split("aabb", "aabb", "aabbb"),
		{{"x"}, {"x"}, {"x"}, nil},
	}
}

// TestEnginesInferSampleMatchesInfer checks, engine by engine, that the
// counted-sample entry point renders the exact expression of the verbatim
// string entry point on the same data.
func TestEnginesInferSampleMatchesInfer(t *testing.T) {
	type engine struct {
		name       string
		fromString func([][]string) (*regex.Expr, error)
		fromSample func(*sample.Set) (*regex.Expr, error)
	}
	engines := []engine{
		{"idtd",
			func(s [][]string) (*regex.Expr, error) {
				r, err := idtd.Infer(s, nil)
				if err != nil {
					return nil, err
				}
				return r.Expr, nil
			},
			func(s *sample.Set) (*regex.Expr, error) {
				r, err := idtd.InferSample(s, nil)
				if err != nil {
					return nil, err
				}
				return r.Expr, nil
			}},
		{"crx",
			func(s [][]string) (*regex.Expr, error) {
				r, err := crx.Infer(s)
				if err != nil {
					return nil, err
				}
				return r.Expr, nil
			},
			func(s *sample.Set) (*regex.Expr, error) {
				r, err := crx.InferSample(s)
				if err != nil {
					return nil, err
				}
				return r.Expr, nil
			}},
		{"rewrite",
			func(s [][]string) (*regex.Expr, error) { return gfa.Rewrite(soa.Infer(s)) },
			gfa.InferSample},
		{"xtract",
			func(s [][]string) (*regex.Expr, error) { return xtract.Infer(s, nil) },
			func(s *sample.Set) (*regex.Expr, error) { return xtract.InferSample(s, nil) }},
		{"trang",
			tranglike.Infer,
			tranglike.InferSample},
		{"stateelim",
			func(s [][]string) (*regex.Expr, error) { return stateelim.FromSOA(soa.Infer(s)) },
			stateelim.InferSample},
	}
	for _, eng := range engines {
		for i, strs := range equivalenceSamples() {
			want, errS := eng.fromString(strs)
			got, errC := eng.fromSample(sample.FromStrings(strs))
			if (errS == nil) != (errC == nil) {
				t.Errorf("%s sample %d: string err=%v, counted err=%v", eng.name, i, errS, errC)
				continue
			}
			if errS != nil {
				continue
			}
			if want.String() != got.String() {
				t.Errorf("%s sample %d: counted path diverges:\n  strings: %s\n  counted: %s",
					eng.name, i, want, got)
			}
		}
	}
}

func TestSOAInferSampleMatchesInfer(t *testing.T) {
	for i, strs := range equivalenceSamples() {
		a := soa.Infer(strs)
		b := soa.InferSample(sample.FromStrings(strs))
		if !reflect.DeepEqual(a.Edges(), b.Edges()) {
			t.Errorf("sample %d: edges differ", i)
		}
		for _, e := range a.Edges() {
			if a.EdgeSupport(e[0], e[1]) != b.EdgeSupport(e[0], e[1]) {
				t.Errorf("sample %d: support(%s→%s) = %d vs %d", i, e[0], e[1],
					a.EdgeSupport(e[0], e[1]), b.EdgeSupport(e[0], e[1]))
			}
		}
	}
}

func TestNumpredRefineSampleMatchesRefine(t *testing.T) {
	for i, strs := range equivalenceSamples() {
		e, err := InferExpr(strs, IDTD, nil)
		if err != nil {
			continue
		}
		want := numpred.Refine(e, strs)
		got := numpred.RefineSample(e, sample.FromStrings(strs))
		if want.String() != got.String() {
			t.Errorf("sample %d: %s vs %s", i, want, got)
		}
	}
}

func TestInferSampleExprMatchesInferExpr(t *testing.T) {
	for _, algo := range []Algorithm{IDTD, CRX, RewriteOnly, XTRACT, TrangLike, StateElim} {
		for i, strs := range equivalenceSamples() {
			for _, numeric := range []bool{false, true} {
				opts := &Options{NumericPredicates: numeric}
				want, errS := InferExpr(strs, algo, opts)
				got, errC := InferSampleExpr(sample.FromStrings(strs), algo, opts)
				if (errS == nil) != (errC == nil) {
					t.Errorf("%s sample %d numeric=%v: err %v vs %v", algo, i, numeric, errS, errC)
					continue
				}
				if errS == nil && want.String() != got.String() {
					t.Errorf("%s sample %d numeric=%v: %s vs %s", algo, i, numeric, want, got)
				}
			}
		}
	}
}
