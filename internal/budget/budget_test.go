package budget

import (
	"context"
	"errors"
	"testing"
)

func TestZeroContextChecksNothing(t *testing.T) {
	ctx := context.Background()
	if err := CheckStates(ctx, 1<<30); err != nil {
		t.Errorf("CheckStates on limitless context = %v", err)
	}
	if err := CheckExprSize(ctx, 1<<30); err != nil {
		t.Errorf("CheckExprSize on limitless context = %v", err)
	}
	if With(ctx, Limits{}) != ctx {
		t.Error("With(zero limits) should return the context unchanged")
	}
}

func TestLimitsEnforced(t *testing.T) {
	ctx := With(context.Background(), Limits{MaxSOAStates: 10, MaxExprSize: 20})
	if err := CheckStates(ctx, 10); err != nil {
		t.Errorf("at the cap should pass: %v", err)
	}
	err := CheckStates(ctx, 11)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("over the cap = %v, want ErrBudget", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "soa-states" || le.Max != 10 || le.Actual != 11 {
		t.Errorf("limit error = %+v", le)
	}
	if err := CheckExprSize(ctx, 21); !errors.Is(err, ErrBudget) {
		t.Errorf("expr-size over the cap = %v, want ErrBudget", err)
	}
}

func TestFromRoundTrip(t *testing.T) {
	l := Limits{MaxSOAStates: 3}
	ctx := With(context.Background(), l)
	if got := From(ctx); got != l {
		t.Errorf("From = %+v, want %+v", got, l)
	}
	if got := From(context.Background()); !got.Zero() {
		t.Errorf("From(background) = %+v, want zero", got)
	}
}
