// Package budget carries per-element inference budgets through a
// context.Context and defines the error the engines report when a budget
// is exceeded. The wall-clock part of a budget is the context deadline
// itself (set by the dispatcher with context.WithTimeout); this package
// carries the structural limits — automaton states and expression size —
// that a deadline alone cannot enforce early.
//
// Engines consult the limits at their natural choke points: the SOA-based
// engines check MaxSOAStates once the automaton's alphabet is known, and
// the dispatcher checks MaxExprSize on every returned expression. A
// context without limits (the default) checks nothing.
package budget

import (
	"context"
	"errors"
	"fmt"
)

// Limits are the structural budget caps. The zero value imposes none.
type Limits struct {
	// MaxSOAStates caps the number of symbol states of the single
	// occurrence automaton an engine may build (0 = unlimited). The SOA
	// has one state per alphabet symbol plus two virtual states; the cap
	// counts the symbol states only.
	MaxSOAStates int
	// MaxExprSize caps the token count of an inferred content-model
	// expression (0 = unlimited).
	MaxExprSize int
}

// Zero reports whether the limits impose nothing.
func (l Limits) Zero() bool { return l == Limits{} }

// ErrBudget matches (with errors.Is) every exceeded budget.
var ErrBudget = errors.New("budget exceeded")

// LimitError reports which budget cap was exceeded.
type LimitError struct {
	// Limit names the exceeded cap: "soa-states" or "expr-size".
	Limit string
	// Max is the configured cap, Actual the observed value.
	Max, Actual int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("budget: %s %d exceeds limit %d", e.Limit, e.Actual, e.Max)
}

// Is makes errors.Is(err, ErrBudget) true for every exceeded cap.
func (e *LimitError) Is(target error) bool { return target == ErrBudget }

// key is the private context key type for Limits.
type key struct{}

// With returns a context carrying the limits. Zero limits return ctx
// unchanged.
func With(ctx context.Context, l Limits) context.Context {
	if l.Zero() {
		return ctx
	}
	return context.WithValue(ctx, key{}, l)
}

// From extracts the limits carried by ctx (zero when none).
func From(ctx context.Context) Limits {
	l, _ := ctx.Value(key{}).(Limits)
	return l
}

// CheckStates verifies an automaton state count against the context's
// MaxSOAStates cap.
func CheckStates(ctx context.Context, states int) error {
	if l := From(ctx); l.MaxSOAStates > 0 && states > l.MaxSOAStates {
		return &LimitError{Limit: "soa-states", Max: l.MaxSOAStates, Actual: states}
	}
	return nil
}

// CheckExprSize verifies an expression token count against the context's
// MaxExprSize cap.
func CheckExprSize(ctx context.Context, tokens int) error {
	if l := From(ctx); l.MaxExprSize > 0 && tokens > l.MaxExprSize {
		return &LimitError{Limit: "expr-size", Max: l.MaxExprSize, Actual: tokens}
	}
	return nil
}
