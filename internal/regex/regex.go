// Package regex implements the regular expression abstraction used by the
// DTD inference algorithms of Bex, Neven, Schwentick and Tuyls,
// "Inference of Concise DTDs from XML Data" (VLDB 2006).
//
// Expressions are built over a finite alphabet of element names. Following
// the paper, the empty string ε and the empty language ∅ are not expressible
// as basic symbols; optionality is expressed with the ? operator. The package
// provides construction, parsing (both the paper's mathematical notation and
// DTD content-model notation), printing, syntactic analysis (first/last/
// follow sets, nullability), normalization, and classification into the
// paper's two target classes:
//
//   - SORE: single occurrence regular expressions, in which every element
//     name occurs at most once (e.g. ((b?(a+c))+d)+e);
//   - CHARE: chain regular expressions, concatenations of factors of the
//     form (a1+...+ak), (a1+...+ak)?, (a1+...+ak)+ or (a1+...+ak)*.
package regex

import (
	"fmt"
	"sort"
	"strings"
)

// Op identifies the operator at the root of an expression node.
type Op int

const (
	// OpSymbol is a leaf: a single element name.
	OpSymbol Op = iota
	// OpConcat is the concatenation r1 · r2 · ... · rn, n >= 2.
	OpConcat
	// OpUnion is the disjunction r1 + r2 + ... + rn, n >= 2.
	OpUnion
	// OpOpt is r?, accepting ε or any string of r.
	OpOpt
	// OpPlus is r+, one or more repetitions of r.
	OpPlus
	// OpStar is r*, zero or more repetitions of r.
	OpStar
	// OpRepeat is the numerical-predicate extension r{m,n} of Section 9;
	// n == Unbounded means r{m,}. It is semantically r^m · r* (bounded
	// accordingly) and is produced only by the numpred post-processing,
	// never by the core inference algorithms.
	OpRepeat
)

// Unbounded marks an OpRepeat with no upper bound, as in r{2,}.
const Unbounded = -1

func (o Op) String() string {
	switch o {
	case OpSymbol:
		return "symbol"
	case OpConcat:
		return "concat"
	case OpUnion:
		return "union"
	case OpOpt:
		return "opt"
	case OpPlus:
		return "plus"
	case OpStar:
		return "star"
	case OpRepeat:
		return "repeat"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Expr is a node of a regular expression tree. Expressions are immutable by
// convention: algorithms build new trees rather than mutating shared nodes.
type Expr struct {
	// Op is the node operator.
	Op Op
	// Name is the element name for OpSymbol leaves.
	Name string
	// Subs holds the children: n >= 2 children for OpConcat and OpUnion,
	// exactly one for OpOpt, OpPlus, OpStar and OpRepeat.
	Subs []*Expr
	// Min and Max bound an OpRepeat node; Max may be Unbounded.
	Min, Max int
}

// Sym returns a leaf expression for the element name s.
func Sym(s string) *Expr {
	return &Expr{Op: OpSymbol, Name: s}
}

// Concat returns the concatenation of the given expressions, flattening
// nested concatenations. With a single argument it returns that argument;
// it panics when called without arguments, as ε is not expressible.
func Concat(subs ...*Expr) *Expr {
	flat := flatten(OpConcat, subs)
	if len(flat) == 0 {
		panic("regex: Concat of zero expressions (ε is not expressible)")
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Expr{Op: OpConcat, Subs: flat}
}

// Union returns the disjunction of the given expressions, flattening nested
// disjunctions and removing syntactic duplicates. With a single argument it
// returns that argument; it panics when called without arguments.
func Union(subs ...*Expr) *Expr {
	flat := flatten(OpUnion, subs)
	if len(flat) == 0 {
		panic("regex: Union of zero expressions (∅ is not expressible)")
	}
	uniq := flat[:0]
	for _, e := range flat {
		dup := false
		for _, u := range uniq {
			if Equal(u, e) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, e)
		}
	}
	if len(uniq) == 1 {
		return uniq[0]
	}
	return &Expr{Op: OpUnion, Subs: uniq}
}

func flatten(op Op, subs []*Expr) []*Expr {
	var out []*Expr
	for _, s := range subs {
		if s == nil {
			continue
		}
		if s.Op == op {
			out = append(out, s.Subs...)
		} else {
			out = append(out, s)
		}
	}
	return out
}

// Opt returns e?.
func Opt(e *Expr) *Expr { return &Expr{Op: OpOpt, Subs: []*Expr{e}} }

// Plus returns e+.
func Plus(e *Expr) *Expr { return &Expr{Op: OpPlus, Subs: []*Expr{e}} }

// Star returns e*.
func Star(e *Expr) *Expr { return &Expr{Op: OpStar, Subs: []*Expr{e}} }

// Repeat returns e{min,max}; max may be Unbounded.
func Repeat(e *Expr, min, max int) *Expr {
	if min < 0 || (max != Unbounded && max < min) {
		panic(fmt.Sprintf("regex: invalid repeat bounds {%d,%d}", min, max))
	}
	return &Expr{Op: OpRepeat, Subs: []*Expr{e}, Min: min, Max: max}
}

// Sub returns the single child of a unary node. It panics on other nodes.
func (e *Expr) Sub() *Expr {
	switch e.Op {
	case OpOpt, OpPlus, OpStar, OpRepeat:
		return e.Subs[0]
	}
	panic("regex: Sub on non-unary node " + e.Op.String())
}

// Symbols returns the sorted set of distinct element names occurring in e.
func (e *Expr) Symbols() []string {
	set := map[string]bool{}
	e.Walk(func(n *Expr) {
		if n.Op == OpSymbol {
			set[n.Name] = true
		}
	})
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SymbolOccurrences returns the number of times each element name occurs
// syntactically in e. A SORE has every count equal to one.
func (e *Expr) SymbolOccurrences() map[string]int {
	counts := map[string]int{}
	e.Walk(func(n *Expr) {
		if n.Op == OpSymbol {
			counts[n.Name]++
		}
	})
	return counts
}

// Walk visits every node of e in pre-order.
func (e *Expr) Walk(f func(*Expr)) {
	if e == nil {
		return
	}
	f(e)
	for _, s := range e.Subs {
		s.Walk(f)
	}
}

// Tokens counts the size of e in tokens: one per symbol occurrence and one
// per operator application (an n-ary concatenation or disjunction counts as
// n-1 binary applications). This is the conciseness measure used when the
// paper reports results like "an expression of 185 tokens".
func (e *Expr) Tokens() int {
	n := 0
	e.Walk(func(x *Expr) {
		switch x.Op {
		case OpSymbol:
			n++
		case OpConcat, OpUnion:
			n += len(x.Subs) - 1
		default:
			n++
		}
	})
	return n
}

// Depth returns the height of the expression tree.
func (e *Expr) Depth() int {
	if e == nil {
		return 0
	}
	d := 0
	for _, s := range e.Subs {
		if sd := s.Depth(); sd > d {
			d = sd
		}
	}
	return d + 1
}

// Clone returns a deep copy of e.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	c := &Expr{Op: e.Op, Name: e.Name, Min: e.Min, Max: e.Max}
	if e.Subs != nil {
		c.Subs = make([]*Expr, len(e.Subs))
		for i, s := range e.Subs {
			c.Subs[i] = s.Clone()
		}
	}
	return c
}

// Equal reports whether two expressions are syntactically identical.
func Equal(a, b *Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Op != b.Op || a.Name != b.Name || a.Min != b.Min || a.Max != b.Max ||
		len(a.Subs) != len(b.Subs) {
		return false
	}
	for i := range a.Subs {
		if !Equal(a.Subs[i], b.Subs[i]) {
			return false
		}
	}
	return true
}

// EqualModuloUnionOrder reports whether a and b are syntactically equal up
// to commutativity of +, the equality notion of Theorem 5.
func EqualModuloUnionOrder(a, b *Expr) bool {
	return Equal(sortUnions(a), sortUnions(b))
}

func sortUnions(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	c := &Expr{Op: e.Op, Name: e.Name, Min: e.Min, Max: e.Max}
	if e.Subs != nil {
		c.Subs = make([]*Expr, len(e.Subs))
		for i, s := range e.Subs {
			c.Subs[i] = sortUnions(s)
		}
	}
	if c.Op == OpUnion {
		sort.Slice(c.Subs, func(i, j int) bool {
			return c.Subs[i].key() < c.Subs[j].key()
		})
	}
	return c
}

// key returns a total-order key for deterministic sorting of subtrees.
func (e *Expr) key() string {
	var b strings.Builder
	e.writeKey(&b)
	return b.String()
}

func (e *Expr) writeKey(b *strings.Builder) {
	switch e.Op {
	case OpSymbol:
		b.WriteString(e.Name)
	default:
		fmt.Fprintf(b, "(%d", int(e.Op))
		if e.Op == OpRepeat {
			fmt.Fprintf(b, "{%d,%d}", e.Min, e.Max)
		}
		for _, s := range e.Subs {
			b.WriteByte(' ')
			s.writeKey(b)
		}
		b.WriteByte(')')
	}
}
