package regex

// Brzozowski derivatives give a second, automaton-free matching engine for
// expressions. The derivative of a language L by a symbol a is
// { w : aw ∈ L }; a string belongs to L(e) iff deriving e by each of its
// symbols in turn leaves a nullable expression. The implementation is used
// both as a public matcher and as an independent oracle against which the
// Glushkov automata are cross-checked in the property tests.
//
// Because ε and ∅ are not expressible in this AST (following the paper),
// derivatives are represented by *Expr plus two out-of-band markers.

// deriv is an expression extended with ε and ∅.
type deriv struct {
	// kind discriminates: 0 expression, 1 ε, 2 ∅.
	kind int
	e    *Expr
}

var (
	dEps   = deriv{kind: 1}
	dEmpty = deriv{kind: 2}
)

func dExpr(e *Expr) deriv { return deriv{kind: 0, e: e} }

func (d deriv) nullable() bool {
	switch d.kind {
	case 1:
		return true
	case 2:
		return false
	default:
		return d.e.Nullable()
	}
}

// derive computes the derivative of d by the symbol a.
func derive(d deriv, a string) deriv {
	if d.kind != 0 {
		return dEmpty
	}
	e := d.e
	switch e.Op {
	case OpSymbol:
		if e.Name == a {
			return dEps
		}
		return dEmpty
	case OpUnion:
		out := dEmpty
		for _, s := range e.Subs {
			out = dUnion(out, derive(dExpr(s), a))
		}
		return out
	case OpConcat:
		// d(e1 e2...en) = d(e1)·rest + (if e1 nullable) d(e2...en).
		rest := tailOf(e)
		first := dConcat(derive(dExpr(e.Subs[0]), a), rest)
		if e.Subs[0].Nullable() {
			return dUnion(first, derive(rest, a))
		}
		return first
	case OpOpt:
		return derive(dExpr(e.Sub()), a)
	case OpPlus, OpStar:
		// d(e+) = d(e*) = d(e)·e*.
		return dConcat(derive(dExpr(e.Sub()), a), dExpr(Star(e.Sub())))
	case OpRepeat:
		return derive(dExpr(ExpandRepeats(e)), a)
	}
	return dEmpty
}

func tailOf(e *Expr) deriv {
	if len(e.Subs) == 2 {
		return dExpr(e.Subs[1])
	}
	return dExpr(&Expr{Op: OpConcat, Subs: e.Subs[1:]})
}

func dUnion(a, b deriv) deriv {
	switch {
	case a.kind == 2:
		return b
	case b.kind == 2:
		return a
	case a.kind == 1 && b.kind == 1:
		return dEps
	case a.kind == 1:
		return dExpr(Opt(b.e))
	case b.kind == 1:
		return dExpr(Opt(a.e))
	default:
		return dExpr(Union(a.e, b.e))
	}
}

func dConcat(a, b deriv) deriv {
	switch {
	case a.kind == 2 || b.kind == 2:
		return dEmpty
	case a.kind == 1:
		return b
	case b.kind == 1:
		return a
	default:
		return dExpr(Concat(a.e, b.e))
	}
}

// Match reports whether the string of element names w belongs to L(e),
// by Brzozowski derivatives. For repeated matching against the same
// expression, compiling a DFA with the automata package is faster; Match
// needs no preprocessing and serves as an independent oracle.
func (e *Expr) Match(w []string) bool {
	d := dExpr(e)
	for _, a := range w {
		d = derive(d, a)
		if d.kind == 2 {
			return false
		}
	}
	return d.nullable()
}
