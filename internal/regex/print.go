package regex

import (
	"fmt"
	"strings"
)

// Precedence levels, loosest to tightest: union < concat < postfix.
const (
	precUnion = iota
	precConcat
	precPostfix
	precAtom
)

func (e *Expr) prec() int {
	switch e.Op {
	case OpSymbol:
		return precAtom
	case OpUnion:
		return precUnion
	case OpConcat:
		return precConcat
	default:
		return precPostfix
	}
}

// String renders e in the paper's mathematical notation: concatenation by
// juxtaposition (separated by a space), disjunction as " + ", and postfix
// ?, +, * and {m,n} attached without a space, e.g. ((b? (a + c))+ d)+ e.
// The output parses back with Parse.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b, paperStyle)
	return b.String()
}

// DTDString renders e as a DTD content particle: sequences with commas,
// choices with |, e.g. ((b?,(a|c))+,d)+,e. The output parses back with
// Parse and is accepted inside a <!ELEMENT name (...)> declaration after
// wrapping in parentheses.
func (e *Expr) DTDString() string {
	var b strings.Builder
	e.write(&b, dtdStyle)
	return b.String()
}

type printStyle int

const (
	paperStyle printStyle = iota
	dtdStyle
)

func (e *Expr) write(b *strings.Builder, st printStyle) {
	switch e.Op {
	case OpSymbol:
		b.WriteString(e.Name)
	case OpConcat:
		sep := " "
		if st == dtdStyle {
			sep = ","
		}
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteString(sep)
			}
			s.writeParen(b, st, precConcat)
		}
	case OpUnion:
		sep := " + "
		if st == dtdStyle {
			sep = "|"
		}
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteString(sep)
			}
			s.writeParen(b, st, precUnion)
		}
	case OpOpt, OpPlus, OpStar, OpRepeat:
		e.Sub().writeParen(b, st, precPostfix)
		switch e.Op {
		case OpOpt:
			b.WriteByte('?')
		case OpPlus:
			b.WriteByte('+')
		case OpStar:
			b.WriteByte('*')
		case OpRepeat:
			if e.Max == Unbounded {
				fmt.Fprintf(b, "{%d,}", e.Min)
			} else if e.Min == e.Max {
				fmt.Fprintf(b, "{%d}", e.Min)
			} else {
				fmt.Fprintf(b, "{%d,%d}", e.Min, e.Max)
			}
		}
	}
}

// writeParen writes e, parenthesized when its operator binds looser than the
// context requires. Postfix operators always parenthesize non-atomic
// operands for readability, matching the paper's style (a+)? not a+?.
func (e *Expr) writeParen(b *strings.Builder, st printStyle, ctx int) {
	p := e.prec()
	need := p < ctx
	if ctx == precPostfix && p != precAtom {
		need = true
	}
	if need {
		b.WriteByte('(')
		e.write(b, st)
		b.WriteByte(')')
	} else {
		e.write(b, st)
	}
}
