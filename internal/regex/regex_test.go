package regex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructorsFlatten(t *testing.T) {
	e := Concat(Concat(Sym("a"), Sym("b")), Sym("c"))
	if e.Op != OpConcat || len(e.Subs) != 3 {
		t.Fatalf("nested concat not flattened: %v", e)
	}
	u := Union(Union(Sym("a"), Sym("b")), Sym("c"))
	if u.Op != OpUnion || len(u.Subs) != 3 {
		t.Fatalf("nested union not flattened: %v", u)
	}
}

func TestUnionDeduplicates(t *testing.T) {
	u := Union(Sym("a"), Sym("b"), Sym("a"))
	if len(u.Subs) != 2 {
		t.Fatalf("union did not deduplicate: %s", u)
	}
	if s := Union(Sym("a"), Sym("a")); s.Op != OpSymbol || s.Name != "a" {
		t.Fatalf("union of identical terms should collapse, got %s", s)
	}
}

func TestSingleChildConstructors(t *testing.T) {
	if e := Concat(Sym("a")); e.Op != OpSymbol {
		t.Errorf("Concat of one = %v", e)
	}
	if e := Union(Sym("a")); e.Op != OpSymbol {
		t.Errorf("Union of one = %v", e)
	}
}

func TestConcatPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Concat() should panic")
		}
	}()
	Concat()
}

func TestStringPaperNotation(t *testing.T) {
	tests := []struct {
		build *Expr
		want  string
	}{
		{Sym("a"), "a"},
		{Concat(Sym("a"), Sym("b")), "a b"},
		{Union(Sym("a"), Sym("b")), "a + b"},
		{Opt(Sym("a")), "a?"},
		{Plus(Sym("a")), "a+"},
		{Star(Sym("a")), "a*"},
		{Plus(Concat(Opt(Sym("b")), Union(Sym("a"), Sym("c")))), "(b? (a + c))+"},
		{
			Concat(Plus(Concat(Plus(Concat(Opt(Sym("b")), Union(Sym("a"), Sym("c")))), Sym("d"))), Sym("e")),
			"((b? (a + c))+ d)+ e",
		},
		{Opt(Plus(Sym("a"))), "(a+)?"},
		{Concat(Union(Sym("a"), Sym("b")), Sym("c")), "(a + b) c"},
		{Union(Concat(Sym("a"), Sym("b")), Sym("c")), "a b + c"},
		{Repeat(Sym("a"), 2, Unbounded), "a{2,}"},
		{Repeat(Sym("a"), 2, 2), "a{2}"},
		{Repeat(Sym("a"), 1, 3), "a{1,3}"},
	}
	for _, tc := range tests {
		if got := tc.build.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestDTDString(t *testing.T) {
	e := Concat(Plus(Concat(Plus(Concat(Opt(Sym("b")), Union(Sym("a"), Sym("c")))), Sym("d"))), Sym("e"))
	want := "((b?,(a|c))+,d)+,e"
	if got := e.DTDString(); got != want {
		t.Errorf("DTDString() = %q, want %q", got, want)
	}
}

func TestParsePaperExpressions(t *testing.T) {
	// Expressions lifted verbatim from the paper.
	tests := []struct {
		in   string
		want *Expr
	}{
		{"((b?(a + c))+d)+e",
			Concat(Plus(Concat(Plus(Concat(Opt(Sym("b")), Union(Sym("a"), Sym("c")))), Sym("d"))), Sym("e"))},
		{"a(b + c)*d+(e + f)?",
			Concat(Sym("a"), Star(Union(Sym("b"), Sym("c"))), Plus(Sym("d")), Opt(Union(Sym("e"), Sym("f"))))},
		{"a1+ + (a2?a3+)",
			Union(Plus(Sym("a1")), Concat(Opt(Sym("a2")), Plus(Sym("a3"))))},
		{"(a1 a2? a3?)? a4? (a5 + a18)*",
			Concat(Opt(Concat(Sym("a1"), Opt(Sym("a2")), Opt(Sym("a3")))), Opt(Sym("a4")), Star(Union(Sym("a5"), Sym("a18"))))},
		{"a1 (a2 + a3)* (a4 (a2x + a3x + a5)*)*",
			Concat(Sym("a1"), Star(Union(Sym("a2"), Sym("a3"))), Star(Concat(Sym("a4"), Star(Union(Sym("a2x"), Sym("a3x"), Sym("a5"))))))},
		{"authors,citation,(volume|month),year,pages?,(title|description)?,xrefs?",
			Concat(Sym("authors"), Sym("citation"), Union(Sym("volume"), Sym("month")), Sym("year"),
				Opt(Sym("pages")), Opt(Union(Sym("title"), Sym("description"))), Opt(Sym("xrefs")))},
		{"a=b + c", Union(Sym("a"), Sym("c"))}, // '=' is not a symbol rune... see below
	}
	// Drop the last malformed case; it documents that '=' is rejected.
	tests = tests[:len(tests)-1]
	for _, tc := range tests {
		got, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", tc.in, err)
			continue
		}
		if !Equal(got, tc.want) {
			t.Errorf("Parse(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{"", "(", "a)", "(a", "a +", "+a", "a ++ b", "a{", "a{x}", "a{3,1}", "a=b", "?",
		"a,,b", "a,"} {
		if e, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %s, want error", in, e)
		}
	}
}

func TestParseUnicodeStar(t *testing.T) {
	e, err := Parse("a∗b")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !Equal(e, Concat(Star(Sym("a")), Sym("b"))) {
		t.Errorf("got %s", e)
	}
}

func TestParsePostfixVsUnionPlus(t *testing.T) {
	// Tight + after an operand is postfix; spaced or leading + is union.
	e := MustParse("(a + b)+c")
	want := Concat(Plus(Union(Sym("a"), Sym("b"))), Sym("c"))
	if !Equal(e, want) {
		t.Errorf("got %s, want %s", e, want)
	}
	e = MustParse("a + b+")
	want = Union(Sym("a"), Plus(Sym("b")))
	if !Equal(e, want) {
		t.Errorf("got %s, want %s", e, want)
	}
}

func TestParseRepeatBounds(t *testing.T) {
	if e := MustParse("a{2,}"); !Equal(e, Repeat(Sym("a"), 2, Unbounded)) {
		t.Errorf("got %s", e)
	}
	if e := MustParse("a{3}"); !Equal(e, Repeat(Sym("a"), 3, 3)) {
		t.Errorf("got %s", e)
	}
	if e := MustParse("a{1,4}"); !Equal(e, Repeat(Sym("a"), 1, 4)) {
		t.Errorf("got %s", e)
	}
}

func TestRoundTripFixed(t *testing.T) {
	for _, in := range []string{
		"((b? (a + c))+ d)+ e",
		"a1* a2? a3*",
		"a1+ + a2? a3+",
		"(a + b) (c + d)?",
		"a{2,} b{1,3}",
		"((a|b),c)+,d?",
	} {
		e1 := MustParse(in)
		e2 := MustParse(e1.String())
		e3 := MustParse(e1.DTDString())
		if !Equal(e1, e2) {
			t.Errorf("paper round trip of %q: %s != %s", in, e1, e2)
		}
		if !Equal(e1, e3) {
			t.Errorf("DTD round trip of %q: %s != %s", in, e1, e3)
		}
	}
}

func TestSymbolsAndOccurrences(t *testing.T) {
	e := MustParse("a (a + b)* c")
	syms := e.Symbols()
	if len(syms) != 3 || syms[0] != "a" || syms[1] != "b" || syms[2] != "c" {
		t.Errorf("Symbols = %v", syms)
	}
	occ := e.SymbolOccurrences()
	if occ["a"] != 2 || occ["b"] != 1 || occ["c"] != 1 {
		t.Errorf("occurrences = %v", occ)
	}
}

func TestTokens(t *testing.T) {
	// ((b?(a+c))+d)+e: 5 symbols, ?, two +, one inner union (1), three concats
	// at two binary nodes... count: symbols=5, opt=1, plus=2, union(2 subs)=1,
	// concat(b?,(a+c))=1, concat(x,d)=1, concat(y,e)=1 => 12.
	e := MustParse("((b?(a + c))+d)+e")
	if got := e.Tokens(); got != 12 {
		t.Errorf("Tokens = %d, want 12", got)
	}
	if got := Sym("a").Tokens(); got != 1 {
		t.Errorf("Tokens(a) = %d", got)
	}
}

func TestNullable(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"a", false},
		{"a?", true},
		{"a*", true},
		{"a+", false},
		{"a? b?", true},
		{"a? b", false},
		{"a + b?", true},
		{"(a+)?", true},
		{"a{0,3}", true},
		{"a{2,}", false},
	}
	for _, tc := range tests {
		if got := MustParse(tc.in).Nullable(); got != tc.want {
			t.Errorf("Nullable(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestFirstLastSymbols(t *testing.T) {
	e := MustParse("((b?(a + c))+d)+e")
	first := e.FirstSymbols()
	if len(first) != 3 || first[0] != "a" || first[1] != "b" || first[2] != "c" {
		t.Errorf("FirstSymbols = %v", first)
	}
	last := e.LastSymbols()
	if len(last) != 1 || last[0] != "e" {
		t.Errorf("LastSymbols = %v", last)
	}
}

func TestFollowPairsMatchesPaperSection4(t *testing.T) {
	// Section 4: for r = (a+b)+c, S_r = {ab, aa, ba, bb, ac, bc}.
	e := MustParse("(a + b)+c")
	got := e.FollowPairs()
	want := [][2]string{{"a", "b"}, {"a", "a"}, {"b", "a"}, {"b", "b"}, {"a", "c"}, {"b", "c"}}
	if len(got) != len(want) {
		t.Fatalf("FollowPairs = %v, want %v", got, want)
	}
	for _, p := range want {
		if !got[p] {
			t.Errorf("missing 2-gram %v", p)
		}
	}
}

func TestIsDeterministic(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"((b?(a + c))+d)+e", true},
		{"a (a + b)*", true}, // the paper's non-SORE example; still 1-unambiguous
		{"(a + b)* a", false},
		{"a? a", false},
		{"a b a", false}, // two a-positions, but deterministic? follow(b)={a3}, first={a1}: deterministic
	}
	// Correct the last expectation: "a b a" is deterministic (no competing
	// positions share a Follow or First set).
	tests[len(tests)-1].want = true
	for _, tc := range tests {
		if got := MustParse(tc.in).IsDeterministic(); got != tc.want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestIsSORE(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"((b?(a + c))+d)+e", true},
		{"a (a + b)*", false},
		{"a1? a2 a3? a4? ((a5+) + ((a6 + a7)+ a8*))", true},
		{"a", true},
	}
	for _, tc := range tests {
		if got := MustParse(tc.in).IsSORE(); got != tc.want {
			t.Errorf("IsSORE(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestIsCHARE(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"a (b + c)* d+ (e + f)?", true},
		{"(a b + c)*", false},
		{"(a* + b?)*", false},
		{"((b?(a + c))+d)+e", false}, // SORE but not CHARE
		{"a1* a2? a3*", true},
		{"a", true},
		{"(a + b)+", true},
		{"(a + b) (a + c)", false}, // repeats a: not a SORE
	}
	for _, tc := range tests {
		if got := MustParse(tc.in).IsCHARE(); got != tc.want {
			t.Errorf("IsCHARE(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestChainFactors(t *testing.T) {
	e := MustParse("a (b + c)* d+")
	fs, ok := e.ChainFactors()
	if !ok || len(fs) != 3 {
		t.Fatalf("ChainFactors = %v, %v", fs, ok)
	}
	if _, ok := MustParse("((b?(a + c))+d)+e").ChainFactors(); ok {
		t.Error("non-CHARE should not decompose")
	}
}

func TestSimplify(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"(a+)?", "a*"},
		{"(a?)+", "a*"},
		{"(a+)+", "a+"},
		{"a??", "a?"},
		{"(a*)*", "a*"},
		{"((a+)?)+", "a*"},
		{"(a? b?)?", "a? b?"}, // ? on nullable operand is dropped
		{"(a? b?)+", "(a? b?)+"},
		{"a + a", "a"},
		{"a{1}", "a"},
		{"a{0,1}", "a?"},
		{"a{1,}", "a+"},
		{"a{0,}", "a*"},
		{"a{2,4}", "a{2,4}"},
	}
	for _, tc := range tests {
		got := Simplify(MustParse(tc.in))
		if got.String() != tc.want {
			t.Errorf("Simplify(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestExpandRepeats(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"a{2,}", "a a+"},
		{"a{2}", "a a"},
		{"a{2,4}", "a a a? a?"},
		{"a{1,2}", "a a?"},
		{"a{0,}", "a*"},
		{"b a{2,} c", "b a a+ c"},
	}
	for _, tc := range tests {
		got := ExpandRepeats(MustParse(tc.in))
		if got.String() != tc.want {
			t.Errorf("ExpandRepeats(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEqualModuloUnionOrder(t *testing.T) {
	a := MustParse("(a + b + c)+ d")
	b := MustParse("(c + a + b)+ d")
	if !EqualModuloUnionOrder(a, b) {
		t.Error("union order should not matter")
	}
	c := MustParse("(a + b)+ d")
	if EqualModuloUnionOrder(a, c) {
		t.Error("different unions must differ")
	}
	if !EqualModuloUnionOrder(MustParse("a (b + c) + d"), MustParse("d + a (c + b)")) {
		t.Error("nested and top-level unions should sort")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := MustParse("(a + b)+ c")
	c := e.Clone()
	if !Equal(e, c) {
		t.Fatal("clone differs")
	}
	c.Subs[0].Subs[0].Name = "z"
	if Equal(e, c) {
		t.Fatal("clone shares nodes with original")
	}
}

func TestDepth(t *testing.T) {
	if d := Sym("a").Depth(); d != 1 {
		t.Errorf("Depth(a) = %d", d)
	}
	if d := MustParse("((b?(a + c))+d)+e").Depth(); d != 7 {
		t.Errorf("Depth = %d, want 7", d)
	}
}

func TestSimplifyIdempotentQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	alpha := []string{"a", "b", "c", "d"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExprLocal(r, alpha, 4)
		s1 := Simplify(e)
		s2 := Simplify(s1)
		return Equal(s1, s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSimplifyPreservesSymbolsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	alpha := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExprLocal(r, alpha, 4)
		s := Simplify(e)
		// Simplification may drop duplicated union branches but never an
		// entire symbol's occurrences... it can: a + a -> a. What must hold
		// is that the symbol SET is preserved (no symbol disappears, none
		// appears).
		got, want := s.Symbols(), e.Symbols()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestTokensPositiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExprLocal(r, []string{"a", "b"}, 5)
		return e.Tokens() >= 1 && e.Depth() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
