package regex

// quant describes the effect of a (possibly stacked) quantifier: whether it
// admits zero occurrences and whether it admits more than one. The four
// combinations correspond to no quantifier, ?, +, and *. Stacked quantifiers
// compose by component-wise disjunction, which validates the paper's
// normalization rules (s+)+ → s+, s?? → s?, (s?)+ → (s+)? ≡ s*.
type quant struct {
	nullable   bool
	repeatable bool
}

func (q quant) apply(e *Expr) *Expr {
	switch {
	case q.nullable && q.repeatable:
		return Star(e)
	case q.nullable:
		return Opt(e)
	case q.repeatable:
		return Plus(e)
	default:
		return e
	}
}

func quantOf(op Op) (quant, bool) {
	switch op {
	case OpOpt:
		return quant{nullable: true}, true
	case OpPlus:
		return quant{repeatable: true}, true
	case OpStar:
		return quant{nullable: true, repeatable: true}, true
	}
	return quant{}, false
}

// Simplify returns a language-equivalent expression in normal form:
// stacked quantifiers are collapsed ((r+)? becomes r*, (r+)+ becomes r+,
// r?? becomes r?, (r?)+ becomes r*), a quantifier ? on an already nullable
// operand is dropped, and concatenations/disjunctions are flattened with
// syntactic duplicates removed from disjunctions. Simplify serves both as
// the paper's normalization step in the completeness proof of rewrite and
// as the post-processing that reintroduces the Kleene star, which rewrite
// itself never emits.
func Simplify(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	if q, ok := quantOf(e.Op); ok {
		inner := e.Sub()
		for {
			iq, ok := quantOf(inner.Op)
			if !ok {
				break
			}
			q = quant{q.nullable || iq.nullable, q.repeatable || iq.repeatable}
			inner = inner.Sub()
		}
		inner = Simplify(inner)
		// Simplifying the operand may surface a quantifier at its root
		// (e.g. d? + d hoists to (d)?): absorb it too.
		for {
			iq, ok := quantOf(inner.Op)
			if !ok {
				break
			}
			q = quant{q.nullable || iq.nullable, q.repeatable || iq.repeatable}
			inner = inner.Sub()
		}
		// Under a repeatable quantifier, quantifiers on disjunction members
		// are absorbed: (a+ + b)+ ≡ (a + b)+ and (a? + b)+ ≡ (a + b)*.
		// Under a bare ?, only member ?'s can be absorbed: (a? + b)? ≡ (a + b)?.
		if inner.Op == OpUnion {
			subs := make([]*Expr, len(inner.Subs))
			changed := false
			for i, s := range inner.Subs {
				iq, ok := quantOf(s.Op)
				if ok && (q.repeatable || (iq.nullable && !iq.repeatable)) {
					q.nullable = q.nullable || iq.nullable
					subs[i] = s.Sub()
					changed = true
				} else {
					subs[i] = s
				}
			}
			if changed {
				inner = Simplify(Union(subs...))
				if iq2, ok := quantOf(inner.Op); ok {
					// The union collapsed to a single quantified term.
					q = quant{q.nullable || iq2.nullable, q.repeatable || iq2.repeatable}
					inner = inner.Sub()
				}
			}
		}
		if q.nullable && inner.Nullable() {
			// r? ≡ r and r* ≡ r+ when ε ∈ L(r).
			q.nullable = false
		}
		return q.apply(inner)
	}
	switch e.Op {
	case OpSymbol:
		return e
	case OpConcat:
		subs := make([]*Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[i] = Simplify(s)
		}
		return Concat(subs...)
	case OpUnion:
		subs := make([]*Expr, len(e.Subs))
		hoistOpt := false
		for i, s := range e.Subs {
			subs[i] = Simplify(s)
			// Hoist member ?'s out of the disjunction: a? + b ≡ (a + b)?.
			// Star members keep their star (a* + b already contains ε, and
			// (a + b)* would be a different language).
			if subs[i].Op == OpOpt {
				subs[i] = subs[i].Sub()
				hoistOpt = true
			}
		}
		u := Union(subs...)
		if hoistOpt && !u.Nullable() {
			return Opt(u)
		}
		return u
	case OpRepeat:
		inner := Simplify(e.Sub())
		if e.Min == 1 && e.Max == 1 {
			return inner
		}
		if e.Min == 0 && e.Max == 1 {
			return Simplify(Opt(inner))
		}
		if e.Min == 0 && e.Max == Unbounded {
			return Simplify(Star(inner))
		}
		if e.Min == 1 && e.Max == Unbounded {
			return Simplify(Plus(inner))
		}
		return Repeat(inner, e.Min, e.Max)
	}
	return e
}

// ExpandRepeats rewrites every numerical predicate r{m,n} into the core
// operators: r{2,} becomes r·r·r*, r{2,3} becomes r·r·r?, and so on. The
// result uses only symbols, concatenation, disjunction, ?, + and *, so the
// automata substrate need not treat OpRepeat specially.
func ExpandRepeats(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	if e.Op == OpRepeat {
		inner := ExpandRepeats(e.Sub())
		var subs []*Expr
		for i := 0; i < e.Min; i++ {
			subs = append(subs, inner.Clone())
		}
		switch {
		case e.Max == Unbounded && e.Min == 0:
			return Star(inner)
		case e.Max == Unbounded:
			subs[len(subs)-1] = Plus(inner.Clone())
		default:
			for i := e.Min; i < e.Max; i++ {
				subs = append(subs, Opt(inner.Clone()))
			}
		}
		if len(subs) == 0 {
			// {0,0}: only ε; not expressible as a bare expression. Callers
			// never produce this (numpred emits bounds with Max >= 1).
			panic("regex: ExpandRepeats on r{0,0}")
		}
		return Concat(subs...)
	}
	if e.Subs == nil {
		return e
	}
	c := &Expr{Op: e.Op, Name: e.Name, Min: e.Min, Max: e.Max}
	c.Subs = make([]*Expr, len(e.Subs))
	for i, s := range e.Subs {
		c.Subs[i] = ExpandRepeats(s)
	}
	return c
}
