package regex

import "testing"

var benchExprSrc = "a1? (a2 a3?)? (a4 + a5 + a6 + a7 + a8 + a9 + a10)* a11+ ((b?(a + c))+d)+e"

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchExprSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkString(b *testing.B) {
	e := MustParse(benchExprSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.String()
	}
}

func BenchmarkSimplify(b *testing.B) {
	e := MustParse("((a+)? + (b?)+ + ((c*)*)?)+ d{1,1} (e{0,1})+")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Simplify(e)
	}
}

func BenchmarkMatchDerivatives(b *testing.B) {
	e := MustParse("((b?(a + c))+d)+e")
	w := []string{"b", "a", "c", "a", "c", "d", "a", "c", "d", "e"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Match(w) {
			b.Fatal("reject")
		}
	}
}

func BenchmarkGlushkovSets(b *testing.B) {
	e := MustParse(benchExprSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.GlushkovSets()
	}
}
