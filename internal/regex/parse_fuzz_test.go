package regex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Parse must never panic, whatever bytes arrive.
func TestParseNeverPanics(t *testing.T) {
	f := func(input string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", input, r)
			}
		}()
		e, err := Parse(input)
		if err == nil && e == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Adversarial hand-picked inputs.
	for _, in := range []string{"((((", "a{999999999999999999999}", "a{1,2,3}",
		"+++", "a| |b", ",,,,", "a? ? ?", "(a+b)?)", "{}", "a{-1}", "∗∗", "·desc·"} {
		Parse(in)
	}
}

// String() output always re-parses to a syntactically identical tree
// (printer/parser adjunction) for arbitrary generated expressions.
func TestPrintParseAdjunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	alpha := []string{"a", "b", "cd", "e-f", "g.h", "i:j", "k_l", "a1", "a10"}
	for i := 0; i < 2000; i++ {
		e := randomExprLocal(rng, alpha, 4)
		for _, rendered := range []string{e.String(), e.DTDString()} {
			back, err := Parse(rendered)
			if err != nil {
				t.Fatalf("Parse(%q) failed: %v (from %v)", rendered, err, e)
			}
			if !Equal(e, back) {
				t.Fatalf("round trip changed tree: %q -> %q", rendered, back)
			}
		}
	}
}

func randomExprLocal(rng *rand.Rand, alpha []string, depth int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return Sym(alpha[rng.Intn(len(alpha))])
	}
	switch rng.Intn(7) {
	case 0:
		return Opt(randomExprLocal(rng, alpha, depth-1))
	case 1:
		return Plus(randomExprLocal(rng, alpha, depth-1))
	case 2:
		return Star(randomExprLocal(rng, alpha, depth-1))
	case 3:
		min := rng.Intn(3)
		max := min + rng.Intn(3)
		if max == 0 {
			max = 1
		}
		if rng.Intn(2) == 0 {
			return Repeat(randomExprLocal(rng, alpha, depth-1), min, Unbounded)
		}
		return Repeat(randomExprLocal(rng, alpha, depth-1), min, max)
	case 4, 5:
		n := 2 + rng.Intn(3)
		subs := make([]*Expr, n)
		for i := range subs {
			subs[i] = randomExprLocal(rng, alpha, depth-1)
		}
		return Concat(subs...)
	default:
		n := 2 + rng.Intn(3)
		subs := make([]*Expr, n)
		for i := range subs {
			subs[i] = randomExprLocal(rng, alpha, depth-1)
		}
		return Union(subs...)
	}
}
