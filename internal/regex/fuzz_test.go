package regex

import "testing"

// FuzzParse exercises the expression parser with arbitrary input; run it
// with `go test -fuzz=FuzzParse ./internal/regex`. As a unit test it
// replays the seed corpus. Invariants: no panic, and any successfully
// parsed expression must survive a print/parse round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"((b?(a + c))+d)+e",
		"a1+ + (a2?a3+)",
		"authors,citation,(volume|month),year",
		"a{2,} b{1,3}",
		"(a|b),c?",
		"a? ? +",
		"(((",
		"a∗·b",
		"{9}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := Parse(input)
		if err != nil {
			return
		}
		if e == nil {
			t.Fatalf("Parse(%q) returned nil without error", input)
		}
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", e.String(), input, err)
		}
		if !Equal(e, back) {
			t.Fatalf("round trip changed tree for %q: %s vs %s", input, e, back)
		}
		if s := Simplify(e); s == nil {
			t.Fatalf("Simplify(%q) returned nil", input)
		}
	})
}
