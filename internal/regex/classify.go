package regex

// IsSORE reports whether e is a single occurrence regular expression: every
// element name occurs at most once syntactically. SOREs are always
// deterministic and their size is linear in the alphabet.
func (e *Expr) IsSORE() bool {
	for _, n := range e.SymbolOccurrences() {
		if n > 1 {
			return false
		}
	}
	return true
}

// IsCHARE reports whether e is a chain regular expression: a concatenation
// f1···fn of factors, each factor being (a1+...+ak), (a1+...+ak)?,
// (a1+...+ak)+ or (a1+...+ak)* with k >= 1 and the ai distinct alphabet
// symbols (distinct across the whole expression, since CHAREs are SOREs).
func (e *Expr) IsCHARE() bool {
	if !e.IsSORE() {
		return false
	}
	factors := []*Expr{e}
	if e.Op == OpConcat {
		factors = e.Subs
	}
	for _, f := range factors {
		if !isChainFactor(f) {
			return false
		}
	}
	return true
}

func isChainFactor(f *Expr) bool {
	switch f.Op {
	case OpOpt, OpPlus, OpStar:
		f = f.Sub()
	case OpRepeat:
		// Numerical predicates are an extension; a{m,n} factors are accepted
		// as generalized chain factors.
		f = f.Sub()
	}
	return isSymbolDisjunction(f)
}

func isSymbolDisjunction(f *Expr) bool {
	if f.Op == OpSymbol {
		return true
	}
	if f.Op != OpUnion {
		return false
	}
	for _, s := range f.Subs {
		if s.Op != OpSymbol {
			return false
		}
	}
	return true
}

// ChainFactors decomposes a CHARE into its factors, returning nil and false
// when e is not a CHARE.
func (e *Expr) ChainFactors() ([]*Expr, bool) {
	if !e.IsCHARE() {
		return nil, false
	}
	if e.Op == OpConcat {
		return e.Subs, true
	}
	return []*Expr{e}, true
}
