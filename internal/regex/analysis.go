package regex

import "sort"

// Nullable reports whether ε ∈ L(e).
func (e *Expr) Nullable() bool {
	switch e.Op {
	case OpSymbol:
		return false
	case OpConcat:
		for _, s := range e.Subs {
			if !s.Nullable() {
				return false
			}
		}
		return true
	case OpUnion:
		for _, s := range e.Subs {
			if s.Nullable() {
				return true
			}
		}
		return false
	case OpOpt, OpStar:
		return true
	case OpPlus:
		return e.Sub().Nullable()
	case OpRepeat:
		return e.Min == 0 || e.Sub().Nullable()
	}
	return false
}

// Glushkov holds the position-level analysis of an expression: each syntactic
// occurrence of a symbol is a position 0..n-1 numbered left to right. First,
// Last and Follow are the standard Glushkov sets; the Glushkov automaton of a
// SORE is exactly its single occurrence automaton (Proposition 1).
type Glushkov struct {
	// Syms maps each position to its element name.
	Syms []string
	// Nullable reports ε ∈ L(e).
	Nullable bool
	// First and Last are the positions that can start/end an accepted string.
	First, Last map[int]bool
	// Follow maps each position to the positions that may immediately
	// follow it in an accepted string.
	Follow map[int]map[int]bool
}

// GlushkovSets computes the position analysis of e.
func (e *Expr) GlushkovSets() *Glushkov {
	g := &Glushkov{
		First:  map[int]bool{},
		Last:   map[int]bool{},
		Follow: map[int]map[int]bool{},
	}
	st := g.build(e)
	g.Nullable = st.nullable
	for p := range st.first {
		g.First[p] = true
	}
	for p := range st.last {
		g.Last[p] = true
	}
	return g
}

type glState struct {
	nullable    bool
	first, last map[int]bool
}

func singleton(p int) map[int]bool { return map[int]bool{p: true} }

func unionSet(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool, len(a)+len(b))
	for p := range a {
		out[p] = true
	}
	for p := range b {
		out[p] = true
	}
	return out
}

func (g *Glushkov) link(lasts, firsts map[int]bool) {
	for p := range lasts {
		m := g.Follow[p]
		if m == nil {
			m = map[int]bool{}
			g.Follow[p] = m
		}
		for q := range firsts {
			m[q] = true
		}
	}
}

func (g *Glushkov) build(e *Expr) glState {
	switch e.Op {
	case OpSymbol:
		p := len(g.Syms)
		g.Syms = append(g.Syms, e.Name)
		return glState{nullable: false, first: singleton(p), last: singleton(p)}
	case OpConcat:
		cur := g.build(e.Subs[0])
		for _, s := range e.Subs[1:] {
			nxt := g.build(s)
			g.link(cur.last, nxt.first)
			st := glState{nullable: cur.nullable && nxt.nullable}
			if cur.nullable {
				st.first = unionSet(cur.first, nxt.first)
			} else {
				st.first = cur.first
			}
			if nxt.nullable {
				st.last = unionSet(cur.last, nxt.last)
			} else {
				st.last = nxt.last
			}
			cur = st
		}
		return cur
	case OpUnion:
		cur := g.build(e.Subs[0])
		for _, s := range e.Subs[1:] {
			nxt := g.build(s)
			cur = glState{
				nullable: cur.nullable || nxt.nullable,
				first:    unionSet(cur.first, nxt.first),
				last:     unionSet(cur.last, nxt.last),
			}
		}
		return cur
	case OpOpt:
		st := g.build(e.Sub())
		st.nullable = true
		return st
	case OpPlus:
		st := g.build(e.Sub())
		g.link(st.last, st.first)
		return st
	case OpStar:
		st := g.build(e.Sub())
		g.link(st.last, st.first)
		st.nullable = true
		return st
	case OpRepeat:
		st := g.build(e.Sub())
		if e.Max == Unbounded || e.Max > 1 {
			g.link(st.last, st.first)
		}
		if e.Min == 0 {
			st.nullable = true
		}
		return st
	}
	panic("regex: unknown op in GlushkovSets")
}

// FirstSymbols returns the sorted set of element names that can start a
// string of L(e).
func (e *Expr) FirstSymbols() []string {
	g := e.GlushkovSets()
	return g.symbolSet(g.First)
}

// LastSymbols returns the sorted set of element names that can end a string
// of L(e).
func (e *Expr) LastSymbols() []string {
	g := e.GlushkovSets()
	return g.symbolSet(g.Last)
}

func (g *Glushkov) symbolSet(ps map[int]bool) []string {
	set := map[string]bool{}
	for p := range ps {
		set[g.Syms[p]] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// FollowPairs returns the set of 2-grams realizable in strings of L(e): the
// pairs ab such that some string of L(e) contains a immediately followed by
// b. Together with FirstSymbols and LastSymbols it determines the SOA of e
// when e is a SORE (Section 4 of the paper).
func (e *Expr) FollowPairs() map[[2]string]bool {
	g := e.GlushkovSets()
	out := map[[2]string]bool{}
	for p, fs := range g.Follow {
		for q := range fs {
			out[[2]string{g.Syms[p], g.Syms[q]}] = true
		}
	}
	return out
}

// IsDeterministic reports whether e is a deterministic (one-unambiguous)
// regular expression in the sense of Brüggemann-Klein and Wood: no two
// distinct positions carrying the same symbol compete in First or in any
// Follow set. Every SORE is deterministic.
func (e *Expr) IsDeterministic() bool {
	g := e.GlushkovSets()
	if symbolClash(g.Syms, g.First) {
		return false
	}
	for _, fs := range g.Follow {
		if symbolClash(g.Syms, fs) {
			return false
		}
	}
	return true
}

func symbolClash(syms []string, ps map[int]bool) bool {
	seen := map[string]bool{}
	for p := range ps {
		if seen[syms[p]] {
			return true
		}
		seen[syms[p]] = true
	}
	return false
}
