package regex

import (
	"testing"
)

func words(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		for _, r := range w {
			out[i] = append(out[i], string(r))
		}
	}
	return out
}

func TestMatchBasics(t *testing.T) {
	tests := []struct {
		expr    string
		accept  []string
		rejects []string
	}{
		{"a", []string{"a"}, []string{"", "b", "aa"}},
		{"a b", []string{"ab"}, []string{"a", "b", "ba", "abb"}},
		{"a + b", []string{"a", "b"}, []string{"", "ab"}},
		{"a?", []string{"", "a"}, []string{"aa"}},
		{"a*", []string{"", "a", "aaaa"}, []string{"b"}},
		{"a+", []string{"a", "aa"}, []string{""}},
		{"a{2,3}", []string{"aa", "aaa"}, []string{"a", "aaaa"}},
		{"((b?(a + c))+d)+e", []string{"ade", "bade", "bacacdacde"}, []string{"", "e", "dade"}},
		{"a? b? c?", []string{"", "a", "bc", "abc"}, []string{"cb", "aa"}},
	}
	for _, tc := range tests {
		e := MustParse(tc.expr)
		for _, w := range words(tc.accept...) {
			if !e.Match(w) {
				t.Errorf("%s should match %v", tc.expr, w)
			}
		}
		for _, w := range words(tc.rejects...) {
			if e.Match(w) {
				t.Errorf("%s should reject %v", tc.expr, w)
			}
		}
	}
}

func TestMatchMultiCharNames(t *testing.T) {
	e := MustParse("authors,citation,(volume|month)")
	if !e.Match([]string{"authors", "citation", "volume"}) {
		t.Error("reject of valid sequence")
	}
	if e.Match([]string{"authors", "citation", "volume", "month"}) {
		t.Error("accept of both volume and month")
	}
}
