package regex

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a regular expression in either the paper's mathematical
// notation or DTD content-model notation (the two may be mixed):
//
//   - concatenation: juxtaposition separated by whitespace, "·", or ",";
//   - disjunction: "|" always, or "+" when it is not in postfix position;
//   - postfix operators ?, +, * and the numerical-predicate extension
//     {m,n}, {m,}, {m} bind tightest;
//   - element names are runs of letters, digits, '_', '-', '.' and ':'
//     starting with a letter or '_'.
//
// A "+" is read as the postfix one-or-more operator exactly when it
// immediately follows, without intervening whitespace, a symbol, a closing
// parenthesis, or another postfix operator; otherwise it is disjunction.
// This matches the paper's typography: in "(b?(a + c))+d" the spaced "+" is
// a disjunction and the tight "+" after ")" is postfix.
func Parse(input string) (*Expr, error) {
	p := &parser{src: normalizeInput(input)}
	p.lex()
	if len(p.toks) == 0 {
		return nil, fmt.Errorf("regex: empty expression")
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("regex: unexpected %q at token %d in %q",
			p.toks[p.pos].text, p.pos, input)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and fixed tables.
func MustParse(input string) *Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

func normalizeInput(s string) string {
	r := strings.NewReplacer("∗", "*", "·", " ", "⋅", " ", "ε", "")
	return r.Replace(s)
}

type tokKind int

const (
	tokSym tokKind = iota
	tokLParen
	tokRParen
	tokUnion    // '|' or a disjunction '+'
	tokComma    // ',' explicit concatenation
	tokOpt      // '?'
	tokPostPlus // postfix '+'
	tokStar     // '*'
	tokRepeat   // '{m,n}'
)

type token struct {
	kind     tokKind
	text     string
	min, max int // tokRepeat bounds
}

type parser struct {
	src  string
	toks []token
	pos  int
	err  error
}

func isSymStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isSymRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' ||
		r == '.' || r == ':'
}

func (p *parser) lex() {
	src := []rune(p.src)
	i := 0
	// prevTight reports whether the previous non-space character ends an
	// operand, with no whitespace between it and position i.
	prevTight := false
	for i < len(src) {
		r := src[i]
		switch {
		case unicode.IsSpace(r):
			prevTight = false
			i++
		case r == '(':
			p.toks = append(p.toks, token{kind: tokLParen, text: "("})
			prevTight = false
			i++
		case r == ')':
			p.toks = append(p.toks, token{kind: tokRParen, text: ")"})
			prevTight = true
			i++
		case r == '|':
			p.toks = append(p.toks, token{kind: tokUnion, text: "|"})
			prevTight = false
			i++
		case r == ',':
			p.toks = append(p.toks, token{kind: tokComma, text: ","})
			prevTight = false
			i++
		case r == '?':
			p.toks = append(p.toks, token{kind: tokOpt, text: "?"})
			prevTight = true
			i++
		case r == '*':
			p.toks = append(p.toks, token{kind: tokStar, text: "*"})
			prevTight = true
			i++
		case r == '+':
			if prevTight {
				p.toks = append(p.toks, token{kind: tokPostPlus, text: "+"})
				prevTight = true
			} else {
				p.toks = append(p.toks, token{kind: tokUnion, text: "+"})
			}
			i++
		case r == '{':
			j := i + 1
			for j < len(src) && src[j] != '}' {
				j++
			}
			if j == len(src) {
				p.err = fmt.Errorf("regex: unterminated {...} in %q", p.src)
				return
			}
			t, err := parseBounds(string(src[i+1 : j]))
			if err != nil {
				p.err = err
				return
			}
			p.toks = append(p.toks, t)
			prevTight = true
			i = j + 1
		case isSymStart(r):
			j := i
			for j < len(src) && isSymRune(src[j]) {
				j++
			}
			p.toks = append(p.toks, token{kind: tokSym, text: string(src[i:j])})
			prevTight = true
			i = j
		default:
			p.err = fmt.Errorf("regex: unexpected character %q in %q", r, p.src)
			return
		}
	}
}

func parseBounds(s string) (token, error) {
	s = strings.TrimSpace(s)
	t := token{kind: tokRepeat, text: "{" + s + "}"}
	comma := strings.IndexByte(s, ',')
	if comma < 0 {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return t, fmt.Errorf("regex: bad repeat bound %q", s)
		}
		t.min, t.max = n, n
		return t, nil
	}
	lo, hi := strings.TrimSpace(s[:comma]), strings.TrimSpace(s[comma+1:])
	n, err := strconv.Atoi(lo)
	if err != nil || n < 0 {
		return t, fmt.Errorf("regex: bad repeat lower bound %q", lo)
	}
	t.min = n
	if hi == "" {
		t.max = Unbounded
		return t, nil
	}
	m, err := strconv.Atoi(hi)
	if err != nil || m < n {
		return t, fmt.Errorf("regex: bad repeat upper bound %q", hi)
	}
	t.max = m
	return t, nil
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) parseUnion() (*Expr, error) {
	if p.err != nil {
		return nil, p.err
	}
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokUnion {
			break
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &Expr{Op: OpUnion, Subs: flatten(OpUnion, subs)}, nil
}

func (p *parser) parseConcat() (*Expr, error) {
	first, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		if t.kind == tokComma {
			p.pos++
			t, ok = p.peek()
			if !ok {
				return nil, fmt.Errorf("regex: trailing comma")
			}
		}
		if t.kind != tokSym && t.kind != tokLParen {
			break
		}
		next, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &Expr{Op: OpConcat, Subs: flatten(OpConcat, subs)}, nil
}

func (p *parser) parsePostfix() (*Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		switch t.kind {
		case tokOpt:
			e = Opt(e)
		case tokPostPlus:
			e = Plus(e)
		case tokStar:
			e = Star(e)
		case tokRepeat:
			e = Repeat(e, t.min, t.max)
		default:
			return e, nil
		}
		p.pos++
	}
	return e, nil
}

func (p *parser) parseAtom() (*Expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("regex: unexpected end of expression in %q", p.src)
	}
	switch t.kind {
	case tokSym:
		p.pos++
		return Sym(t.text), nil
	case tokLParen:
		p.pos++
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		t, ok = p.peek()
		if !ok || t.kind != tokRParen {
			return nil, fmt.Errorf("regex: missing ) in %q", p.src)
		}
		p.pos++
		return e, nil
	default:
		return nil, fmt.Errorf("regex: unexpected %q in %q", t.text, p.src)
	}
}
