package contextual

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"dtdinfer/internal/dtd"
	"dtdinfer/internal/gfa"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/soa"
)

// The classic vertical-typing example: name under book has a different
// content model than name under author. A DTD cannot express this; the
// contextual schema with k = 1 can.
const storeDoc = `<store>
  <book><name><title>T1</title><sub>S</sub></name><author><name><first>A</first><last>B</last></name></author></book>
  <book><name><title>T2</title></name><author><name><first>C</first><last>D</last></name></author></book>
</store>`

func soreInfer(sample [][]string) (*regex.Expr, error) {
	return gfa.Rewrite(soa.Infer(sample))
}

func inferStore(t *testing.T, k int) *Schema {
	t.Helper()
	x := NewExtraction(k)
	if err := x.AddDocument(strings.NewReader(storeDoc)); err != nil {
		t.Fatal(err)
	}
	s, err := x.InferSchema(soreInfer)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestContextualSplitsNameTypes(t *testing.T) {
	s := inferStore(t, 1)
	multi := s.MultiTypeElements()
	if len(multi) != 1 || multi[0] != "name" {
		t.Fatalf("MultiTypeElements = %v, want [name]", multi)
	}
	if s.IsDTDExpressible() {
		t.Error("schema with two name types is not DTD-expressible")
	}
	bookName := s.TypeOf("book/name")
	authorName := s.TypeOf("author/name")
	if bookName == nil || authorName == nil {
		t.Fatal("contexts missing")
	}
	if bookName == authorName {
		t.Fatal("the two name contexts must have distinct types")
	}
	if got := bookName.Model.String(); got != "title sub?" {
		t.Errorf("book/name model = %q", got)
	}
	if got := authorName.Model.String(); got != "first last" {
		t.Errorf("author/name model = %q", got)
	}
	if s.Root != "store" {
		t.Errorf("root = %q", s.Root)
	}
}

func TestContextualMergesEquivalentContexts(t *testing.T) {
	// name under book and under journal have the same model: one type.
	doc := `<lib>
	  <book><name><title>T</title></name></book>
	  <journal><name><title>J</title></name></journal>
	</lib>`
	x := NewExtraction(1)
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	s, err := x.InferSchema(soreInfer)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsDTDExpressible() {
		t.Errorf("equivalent contexts must merge:\n%s", s)
	}
	bn, jn := s.TypeOf("book/name"), s.TypeOf("journal/name")
	if bn == nil || bn != jn {
		t.Errorf("book/name and journal/name should share one type")
	}
	if bn.Name != "name" {
		t.Errorf("single type keeps the bare element name, got %q", bn.Name)
	}
}

func TestContextualKZeroIsDTD(t *testing.T) {
	s := inferStore(t, 0)
	if !s.IsDTDExpressible() {
		t.Fatalf("k=0 schema must be a DTD:\n%s", s)
	}
	// With k=0 the two name populations blend into one model.
	ty := s.TypeOf("name")
	if ty == nil {
		t.Fatal("name type missing")
	}
	for _, sym := range []string{"title", "first"} {
		found := false
		for _, x := range ty.Model.Symbols() {
			if x == sym {
				found = true
			}
		}
		if !found {
			t.Errorf("k=0 name model %s should mention %s", ty.Model, sym)
		}
	}
}

func TestToDTDLosslessWhenSingleTyped(t *testing.T) {
	doc := `<r><a><x>1</x></a><a><x>2</x><x>3</x></a></r>`
	x := NewExtraction(1)
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	s, err := x.InferSchema(soreInfer)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsDTDExpressible() {
		t.Fatal("single-typed schema expected")
	}
	d := s.ToDTD()
	if got := d.Elements["a"].Model.String(); got != "x+" {
		t.Errorf("a model = %q", got)
	}
	if d.Elements["x"].Type != dtd.PCData {
		t.Errorf("x should be #PCDATA")
	}
}

func TestToDTDOverApproximatesMultiTyped(t *testing.T) {
	s := inferStore(t, 1)
	d := s.ToDTD()
	// The flattened name model must cover both context languages.
	model := d.Elements["name"].Model
	v := dtd.NewValidator(d)
	_ = v
	for _, w := range [][]string{{"title"}, {"title", "sub"}, {"first", "last"}} {
		if !model.Match(w) {
			t.Errorf("flattened name model %s rejects %v", model, w)
		}
	}
	// And the DTD validates the original document.
	vd := dtd.NewValidator(d)
	violations, err := vd.Validate(strings.NewReader(storeDoc))
	if err != nil || len(violations) != 0 {
		t.Errorf("flattened DTD rejects the corpus: %v %v", err, violations)
	}
}

func TestSchemaString(t *testing.T) {
	s := inferStore(t, 1)
	out := s.String()
	for _, want := range []string{"type name.1", "type name.2", "book/name", "author/name"} {
		if !strings.Contains(out, want) {
			t.Errorf("schema rendering missing %q:\n%s", want, out)
		}
	}
}

func TestContextualRejectsBadXML(t *testing.T) {
	x := NewExtraction(1)
	if err := x.AddDocument(strings.NewReader("<a><b></a>")); err == nil {
		t.Fatal("want error")
	}
}

func TestDeepContexts(t *testing.T) {
	// k=2 distinguishes by grandparent as well.
	doc := `<r>
	  <u><w><q>1</q></w></u>
	  <v><w><q>2</q><q>3</q></w></v>
	  <u><w><q>4</q></w></u>
	  <v><w><q>5</q><q>6</q></w></v>
	</r>`
	x := NewExtraction(2)
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	s, err := x.InferSchema(soreInfer)
	if err != nil {
		t.Fatal(err)
	}
	uw, vw := s.TypeOf("r/u/w"), s.TypeOf("r/v/w")
	if uw == nil || vw == nil {
		t.Fatalf("grandparent contexts missing:\n%s", s)
	}
	if uw == vw {
		t.Errorf("w under u (one q) and under v (two q) must differ:\n%s", s)
	}
}

func TestContextualXSDEmission(t *testing.T) {
	s := inferStore(t, 1)
	out := s.ToXSD()
	// Well-formed XML.
	var probe interface{}
	if err := xmlUnmarshal(out, &probe); err != nil {
		t.Fatalf("XSD not well-formed: %v\n%s", err, out)
	}
	for _, want := range []string{
		`<xs:element name="store" type="t-store"/>`,
		`<xs:complexType name="t-name.1">`,
		`<xs:complexType name="t-name.2">`,
		`type="t-name.1"`,
		`type="t-name.2"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("XSD missing %q:\n%s", want, out)
		}
	}
}

func TestContextualValidator(t *testing.T) {
	s := inferStore(t, 1)
	v := NewValidator(s)
	if !v.ValidDocument(storeDoc) {
		violations, _ := v.Validate(strings.NewReader(storeDoc))
		t.Fatalf("training document rejected: %v", violations)
	}
	// A DTD validator could not catch this: author/name with book/name
	// content. The contextual validator must.
	bad := `<store><book><name><title>T</title></name>` +
		`<author><name><title>X</title></name></author></book></store>`
	violations, err := v.Validate(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, viol := range violations {
		if strings.Contains(viol.Reason, "do not match type") {
			found = true
		}
	}
	if !found {
		t.Errorf("context-sensitive violation not detected: %v", violations)
	}
	// The flattened DTD accepts the same document: the precision gain is
	// real.
	dv := dtd.NewValidator(s.ToDTD())
	vs, err := dv.Validate(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("flattened DTD should accept the confusable document, got %v", vs)
	}
}

func TestContextualValidatorUnknownContext(t *testing.T) {
	s := inferStore(t, 1)
	v := NewValidator(s)
	violations, err := v.Validate(strings.NewReader(`<store><magazine/></store>`))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, viol := range violations {
		if strings.Contains(viol.Reason, "no type for context") {
			found = true
		}
	}
	if !found {
		t.Errorf("unknown context not reported: %v", violations)
	}
}

func xmlUnmarshal(s string, v interface{}) error {
	return xml.Unmarshal([]byte(s), v)
}

// Refinement proper: two w-contexts share the local model (q) but their
// q-children have different types, so the bisimulation condition forces a
// split of w — only visible at k = 2, where the child context keeps the
// grandparent.
func TestRefinementSplitsOnChildTypes(t *testing.T) {
	doc := `<r>
	  <u><w><q><z>x</z></q></w></u>
	  <v><w><q/></w></v>
	  <u><w><q><z>y</z></q></w></u>
	  <v><w><q/></w></v>
	</r>`
	x := NewExtraction(2)
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	s, err := x.InferSchema(soreInfer)
	if err != nil {
		t.Fatal(err)
	}
	uw, vw := s.TypeOf("r/u/w"), s.TypeOf("r/v/w")
	if uw == nil || vw == nil {
		t.Fatalf("contexts missing:\n%s", s)
	}
	if uw == vw {
		t.Fatalf("same local model but different child types: refinement must split w\n%s", s)
	}
	// And the XSD binds each w type's q to the right q type.
	out := s.ToXSD()
	if !strings.Contains(out, `name="q" type="t-q.`) {
		t.Errorf("local q declarations missing type bindings:\n%s", out)
	}
}

func TestContextualMixedEmptyAndValidation(t *testing.T) {
	doc := `<r><p>text <b>bold</b> more</p><p>plain</p><hr/></r>`
	x := NewExtraction(1)
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	s, err := x.InferSchema(soreInfer)
	if err != nil {
		t.Fatal(err)
	}
	out := s.ToXSD()
	for _, want := range []string{`mixed="true"`, `<xs:complexType name="t-hr"/>`} {
		if !strings.Contains(out, want) {
			t.Errorf("XSD missing %q:\n%s", want, out)
		}
	}
	v := NewValidator(s)
	if !v.ValidDocument(doc) {
		t.Error("training doc rejected")
	}
	cases := []struct{ doc, reason string }{
		{`<r><p>t</p><p>x</p><hr>oops</hr></r>`, "EMPTY element has content"},
		{`<r><p><i/>t</p><p>x</p><hr/></r>`, "not allowed in mixed content"},
		{`<x/>`, "root is x"},
	}
	for _, tc := range cases {
		violations, err := v.Validate(strings.NewReader(tc.doc))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, viol := range violations {
			if strings.Contains(viol.Reason, tc.reason) {
				found = true
			}
		}
		if !found {
			t.Errorf("doc %q: want %q, got %v", tc.doc, tc.reason, violations)
		}
	}
}

func TestToDTDMergesMixedTypes(t *testing.T) {
	// name is mixed under book, plain text under author: the flattened DTD
	// merges to mixed content.
	doc := `<r><book><name>t <em>x</em></name></book><author><name>plain</name></author></r>`
	x := NewExtraction(1)
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	s, err := x.InferSchema(soreInfer)
	if err != nil {
		t.Fatal(err)
	}
	d := s.ToDTD()
	if d.Elements["name"].Type != dtd.Mixed {
		t.Errorf("flattened name should be mixed, got %v", d.Elements["name"].Type)
	}
}

func TestToDTDMixedMergeKeepsChildSymbols(t *testing.T) {
	// name has element content (t) under b but plain text under a. The
	// flattened mixed model must keep t as an alternative — previously the
	// Children-kind symbols were dropped, yielding the invalid (#PCDATA|)*.
	doc := `<s><b><name><t>x</t></name></b><a><name>y</name></a></s>`
	x := NewExtraction(1)
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	s, err := x.InferSchema(soreInfer)
	if err != nil {
		t.Fatal(err)
	}
	d := s.ToDTD()
	name := d.Elements["name"]
	if name.Type != dtd.Mixed || len(name.MixedNames) != 1 || name.MixedNames[0] != "t" {
		t.Errorf("flattened name = %s, want (#PCDATA|t)*", name)
	}
	if strings.Contains(d.String(), "|)") {
		t.Errorf("flattened DTD contains an empty alternative:\n%s", d)
	}
}

// snapshotCtx renders the extraction deterministically for atomicity checks.
func snapshotCtx(x *Extraction) string {
	var b strings.Builder
	ctxs := make([]string, 0, len(x.Sequences))
	for c := range x.Sequences {
		ctxs = append(ctxs, string(c))
	}
	sort.Strings(ctxs)
	for _, c := range ctxs {
		fmt.Fprintf(&b, "seq %s:", c)
		for _, s := range x.Sequences[Context(c)] {
			fmt.Fprintf(&b, " [%s]", strings.Join(s, ","))
		}
		b.WriteByte('\n')
	}
	ctxs = ctxs[:0]
	for c := range x.HasText {
		ctxs = append(ctxs, string(c))
	}
	sort.Strings(ctxs)
	for _, c := range ctxs {
		fmt.Fprintf(&b, "text %s=%v\n", c, x.HasText[Context(c)])
	}
	roots := make([]string, 0, len(x.Roots))
	for r := range x.Roots {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for _, r := range roots {
		fmt.Fprintf(&b, "root %s=%d\n", r, x.Roots[r])
	}
	return b.String()
}

func TestAddDocumentAtomicOnParseError(t *testing.T) {
	x := NewExtraction(1)
	if err := x.AddDocument(strings.NewReader(storeDoc)); err != nil {
		t.Fatal(err)
	}
	before := snapshotCtx(x)
	// Breaks after several well-formed elements.
	bad := `<store><book><name><title>T</title></name></book><book><oops></store>`
	if err := x.AddDocument(strings.NewReader(bad)); err == nil {
		t.Fatal("malformed document must fail")
	}
	if after := snapshotCtx(x); after != before {
		t.Errorf("failed AddDocument mutated the extraction:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// Truncated document: unbalanced at EOF.
	if err := x.AddDocument(strings.NewReader(`<store><book>`)); err == nil {
		t.Fatal("truncated document must fail")
	}
	if after := snapshotCtx(x); after != before {
		t.Errorf("truncated document mutated the extraction")
	}
}

func TestAddDocumentOptionsLimits(t *testing.T) {
	deep := strings.Repeat("<d>", 5000) + strings.Repeat("</d>", 5000)
	x := NewExtraction(1)
	err := x.AddDocumentOptions(strings.NewReader(deep), &dtd.IngestOptions{MaxDepth: 100})
	if !errors.Is(err, dtd.ErrLimit) {
		t.Fatalf("want ErrLimit, got %v", err)
	}
	if len(x.Sequences) != 0 || len(x.Roots) != 0 {
		t.Error("rejected document leaked state")
	}
	for _, opts := range []dtd.IngestOptions{
		{MaxBytes: 32},
		{MaxTokens: 16},
		{MaxNames: 0, MaxDepth: 0, MaxTokens: 0, MaxBytes: 64},
	} {
		x := NewExtraction(0)
		if err := x.AddDocumentOptions(strings.NewReader(deep), &opts); !errors.Is(err, dtd.ErrLimit) {
			t.Errorf("opts %+v: want ErrLimit, got %v", opts, err)
		}
	}
	// MaxNames: the wide document has 5 distinct names.
	wide := `<r><a/><b/><c/><d/></r>`
	x = NewExtraction(1)
	if err := x.AddDocumentOptions(strings.NewReader(wide), &dtd.IngestOptions{MaxNames: 3}); !errors.Is(err, dtd.ErrLimit) {
		t.Errorf("names cap not enforced: %v", err)
	}
	if err := x.AddDocumentOptions(strings.NewReader(wide), nil); err != nil {
		t.Errorf("unlimited ingestion failed: %v", err)
	}
}

func TestMergeContextual(t *testing.T) {
	direct := NewExtraction(1)
	docA := `<store><book><name><title>T</title></name></book></store>`
	docB := `<store><author><name>plain</name></author></store>`
	for _, d := range []string{docA, docB} {
		if err := direct.AddDocument(strings.NewReader(d)); err != nil {
			t.Fatal(err)
		}
	}
	a, b := NewExtraction(1), NewExtraction(1)
	if err := a.AddDocument(strings.NewReader(docA)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocument(strings.NewReader(docB)); err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	if snapshotCtx(a) != snapshotCtx(direct) {
		t.Errorf("merge differs from direct ingestion:\n%s\nvs\n%s", snapshotCtx(a), snapshotCtx(direct))
	}
}
