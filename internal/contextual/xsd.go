package contextual

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
)

// ToXSD renders the contextual schema as W3C XML Schema: one named
// complexType per inferred type, with child elements declared locally and
// bound to the type of their context — the mechanism by which XML Schema
// exceeds DTD expressiveness, and exactly what the refinement step makes
// well-defined.
func (s *Schema) ToXSD() string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.WriteString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" elementFormDefault="qualified">` + "\n")
	rootType := s.typeOf[Context(s.Root)]
	if rootType != nil {
		fmt.Fprintf(&b, "  <xs:element name=%q type=%q/>\n", s.Root, typeRef(rootType))
	}
	for _, t := range s.Types {
		s.writeType(&b, t)
	}
	b.WriteString("</xs:schema>\n")
	return b.String()
}

// typeRef names a type in the schema; simple kinds map to built-ins.
func typeRef(t *Type) string {
	switch t.Kind {
	case dtd.PCData:
		return "xs:string"
	case dtd.Any:
		return "xs:anyType"
	default:
		return "t-" + t.Name
	}
}

func (s *Schema) writeType(b *strings.Builder, t *Type) {
	switch t.Kind {
	case dtd.PCData, dtd.Any:
		return // built-in reference, nothing to declare
	case dtd.Empty:
		fmt.Fprintf(b, "  <xs:complexType name=%q/>\n", "t-"+t.Name)
	case dtd.Mixed:
		fmt.Fprintf(b, "  <xs:complexType name=%q mixed=\"true\">\n", "t-"+t.Name)
		fmt.Fprintf(b, "    <xs:choice minOccurs=\"0\" maxOccurs=\"unbounded\">\n")
		for _, child := range t.MixedNames {
			s.writeLocalElement(b, t, child, "", "      ")
		}
		fmt.Fprintf(b, "    </xs:choice>\n")
		fmt.Fprintf(b, "  </xs:complexType>\n")
	case dtd.Children:
		fmt.Fprintf(b, "  <xs:complexType name=%q>\n", "t-"+t.Name)
		// A complexType's content must be a model group: wrap a bare
		// element reference in a sequence.
		if isSymbolParticle(t.Model) {
			fmt.Fprintf(b, "    <xs:sequence>\n")
			s.writeParticle(b, t, t.Model, occ{1, 1}, "      ")
			fmt.Fprintf(b, "    </xs:sequence>\n")
		} else {
			s.writeParticle(b, t, t.Model, occ{1, 1}, "    ")
		}
		fmt.Fprintf(b, "  </xs:complexType>\n")
	}
}

func isSymbolParticle(e *regex.Expr) bool {
	for {
		switch e.Op {
		case regex.OpSymbol:
			return true
		case regex.OpOpt, regex.OpPlus, regex.OpStar, regex.OpRepeat:
			e = e.Sub()
		default:
			return false
		}
	}
}

type occ struct{ min, max int }

func (o occ) attrs() string {
	out := ""
	if o.min != 1 {
		out += fmt.Sprintf(" minOccurs=%q", strconv.Itoa(o.min))
	}
	switch {
	case o.max == regex.Unbounded:
		out += ` maxOccurs="unbounded"`
	case o.max != 1:
		out += fmt.Sprintf(" maxOccurs=%q", strconv.Itoa(o.max))
	}
	return out
}

func (s *Schema) writeParticle(b *strings.Builder, owner *Type, e *regex.Expr, o occ, indent string) {
	for {
		switch e.Op {
		case regex.OpOpt:
			o.min = 0
			e = e.Sub()
			continue
		case regex.OpPlus:
			o.max = regex.Unbounded
			e = e.Sub()
			continue
		case regex.OpStar:
			o.min, o.max = 0, regex.Unbounded
			e = e.Sub()
			continue
		case regex.OpRepeat:
			o.min, o.max = e.Min, e.Max
			e = e.Sub()
			continue
		}
		break
	}
	switch e.Op {
	case regex.OpSymbol:
		s.writeLocalElement(b, owner, e.Name, o.attrs(), indent)
	case regex.OpConcat:
		fmt.Fprintf(b, "%s<xs:sequence%s>\n", indent, o.attrs())
		for _, sub := range e.Subs {
			s.writeParticle(b, owner, sub, occ{1, 1}, indent+"  ")
		}
		fmt.Fprintf(b, "%s</xs:sequence>\n", indent)
	case regex.OpUnion:
		fmt.Fprintf(b, "%s<xs:choice%s>\n", indent, o.attrs())
		for _, sub := range e.Subs {
			s.writeParticle(b, owner, sub, occ{1, 1}, indent+"  ")
		}
		fmt.Fprintf(b, "%s</xs:choice>\n", indent)
	}
}

// writeLocalElement declares a child element locally, bound to the type of
// the child's context. Thanks to the refinement step the choice of owner
// context is immaterial.
func (s *Schema) writeLocalElement(b *strings.Builder, owner *Type, child, occAttrs, indent string) {
	ct := s.childType(owner, child)
	if ct == nil {
		fmt.Fprintf(b, "%s<xs:element name=%q type=\"xs:anyType\"%s/>\n", indent, child, occAttrs)
		return
	}
	fmt.Fprintf(b, "%s<xs:element name=%q type=%q%s/>\n", indent, child, typeRef(ct), occAttrs)
}

func (s *Schema) childType(owner *Type, child string) *Type {
	if len(owner.Contexts) == 0 {
		return nil
	}
	k := s.k()
	return s.typeOf[childContext(owner.Contexts[0], child, k)]
}

// k recovers the context depth from the assignment (the longest context).
func (s *Schema) k() int {
	max := 0
	for c := range s.typeOf {
		if n := strings.Count(string(c), "/"); n > max {
			max = n
		}
	}
	return max
}

// Validator checks documents against a contextual schema, tracking the
// context of every open element and matching children against the DFA of
// the context's type.
type Validator struct {
	schema *Schema
	k      int
	dfas   map[*Type]*automata.DFA
}

// NewValidator compiles every type's content model.
func NewValidator(s *Schema) *Validator {
	v := &Validator{schema: s, k: s.k(), dfas: map[*Type]*automata.DFA{}}
	for _, t := range s.Types {
		if t.Kind == dtd.Children {
			v.dfas[t] = automata.FromExpr(t.Model)
		}
	}
	return v
}

// Validate parses one document and returns the violations.
func (v *Validator) Validate(r io.Reader) ([]dtd.Violation, error) {
	dec := xml.NewDecoder(r)
	type frame struct {
		ctx      Context
		children []string
		text     bool
	}
	var stack []frame
	var out []dtd.Violation
	report := func(element, reason string) {
		out = append(out, dtd.Violation{Element: element, Offset: dec.InputOffset(), Reason: reason})
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, fmt.Errorf("contextual: parsing XML: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			name := t.Name.Local
			var ctx Context
			if len(stack) == 0 {
				if name != v.schema.Root {
					report(name, fmt.Sprintf("root is %s, schema expects %s", name, v.schema.Root))
				}
				ctx = Context(name)
			} else {
				top := &stack[len(stack)-1]
				top.children = append(top.children, name)
				ctx = childContext(top.ctx, name, v.k)
			}
			if v.schema.typeOf[ctx] == nil {
				report(name, fmt.Sprintf("no type for context %s", ctx))
			}
			stack = append(stack, frame{ctx: ctx})
		case xml.EndElement:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			v.check(top.ctx, top.children, top.text, report)
		case xml.CharData:
			if len(stack) > 0 && strings.TrimSpace(string(t)) != "" {
				stack[len(stack)-1].text = true
			}
		}
	}
	if len(stack) != 0 {
		return out, fmt.Errorf("contextual: unbalanced XML document")
	}
	return out, nil
}

func (v *Validator) check(ctx Context, children []string, text bool, report func(element, reason string)) {
	t := v.schema.typeOf[ctx]
	if t == nil {
		return // already reported
	}
	name := ctx.Element()
	switch t.Kind {
	case dtd.Empty:
		if len(children) > 0 || text {
			report(name, "EMPTY element has content")
		}
	case dtd.PCData:
		if len(children) > 0 {
			report(name, "text-only element has child elements")
		}
	case dtd.Mixed:
		allowed := map[string]bool{}
		for _, n := range t.MixedNames {
			allowed[n] = true
		}
		for _, c := range children {
			if !allowed[c] {
				report(name, fmt.Sprintf("child %s not allowed in mixed content", c))
			}
		}
	case dtd.Children:
		if text {
			report(name, "character data not allowed in element content")
		}
		if !v.dfas[t].Member(children) {
			report(name, fmt.Sprintf("children %v do not match type %s (%s)",
				children, t.Name, t.Model.DTDString()))
		}
	}
}

// ValidDocument reports whether the document validates.
func (v *Validator) ValidDocument(doc string) bool {
	violations, err := v.Validate(strings.NewReader(doc))
	return err == nil && len(violations) == 0
}
