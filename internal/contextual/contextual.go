// Package contextual implements the paper's stated future work (Sections
// 9-10): inference of schemas beyond DTD expressiveness, where the content
// model of an element may depend on its ancestors — "DTDs with vertical
// regular expressions", the structural core of XML Schema identified by
// Bex, Neven, Martens and Schwentick.
//
// The implementation realizes k-local typing: example strings are
// collected per context (the path suffix of up to k ancestor names), a
// content model is inferred per context with any of the library's
// algorithms, and contexts of the same element whose inferred languages
// coincide are merged back together. A DTD corresponds to k = 0 (every
// element has one type); k = 1 distinguishes elements by their parent,
// which already covers the classic name-under-book versus
// name-under-author example and the single-type XSDs that dominate in
// practice.
package contextual

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/xmltok"
)

// Context identifies where an element occurs: its name preceded by up to
// K ancestor names, joined by '/'. The root's context is just its name.
type Context string

// Element returns the element name of the context (its last segment).
func (c Context) Element() string {
	s := string(c)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// Extraction accumulates per-context observations from XML documents.
type Extraction struct {
	// K is the number of ancestor names kept in a context (default 1).
	K int
	// Sequences maps a context to the observed children sequences.
	Sequences map[Context][][]string
	// HasText marks contexts with non-whitespace character data.
	HasText map[Context]bool
	// Roots counts observed root element names.
	Roots map[string]int
}

// NewExtraction returns an empty accumulator with k ancestors of context
// (k = 0 reduces to plain DTD inference).
func NewExtraction(k int) *Extraction {
	return &Extraction{
		K:         k,
		Sequences: map[Context][][]string{},
		HasText:   map[Context]bool{},
		Roots:     map[string]int{},
	}
}

// AddDocument parses one XML document and accumulates its sequences. Like
// dtd.Extraction.AddDocument, the operation is failure-atomic: a document
// that fails mid-parse leaves the extraction unchanged.
func (x *Extraction) AddDocument(r io.Reader) error {
	return x.AddDocumentOptions(r, nil)
}

// AddDocumentOptions is AddDocument under the resource caps of
// dtd.IngestOptions (nil applies no limits), rejecting deeply nested or
// oversized documents with a *dtd.LimitError before they exhaust memory.
func (x *Extraction) AddDocumentOptions(r io.Reader, opts *dtd.IngestOptions) error {
	stage := NewExtraction(x.K)
	if err := stage.extractOne(r, opts); err != nil {
		return err
	}
	x.Merge(stage)
	return nil
}

// Merge folds another extraction's observations into x. The contexts of o
// must have been collected with the same K for the result to be coherent.
func (x *Extraction) Merge(o *Extraction) {
	for c, seqs := range o.Sequences {
		x.Sequences[c] = append(x.Sequences[c], seqs...)
	}
	for c, has := range o.HasText {
		if has {
			x.HasText[c] = true
		}
	}
	for name, n := range o.Roots {
		x.Roots[name] += n
	}
}

// extractOne runs the decode loop over one document, mutating x directly;
// AddDocumentOptions runs it on a staging extraction for atomicity. The
// decoder is selected by opts.Decoder exactly as in package dtd: the fast
// structure tokenizer by default, encoding/xml on DecoderStd.
func (x *Extraction) extractOne(r io.Reader, opts *dtd.IngestOptions) error {
	var o dtd.IngestOptions
	if opts != nil {
		o = *opts
	}
	if o.Decoder == dtd.DecoderStd {
		return x.extractOneStd(r, o)
	}
	return x.extractOneFast(r, o)
}

// extractOneFast is extractOne over the zero-copy structure tokenizer.
// Both loops maintain their own frame stack and apply the caps in the
// same order, so acceptance and extraction state are identical.
func (x *Extraction) extractOneFast(r io.Reader, o dtd.IngestOptions) error {
	tok := xmltok.NewTokenizer()
	tok.Reset(dtd.MeterReader(r, o.MaxBytes))
	type frame struct {
		name     string
		ctx      Context
		children []string
	}
	var stack []frame
	var tokens int64
	names := map[string]bool{}
	for {
		kind, err := tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var le *dtd.LimitError
			if errors.As(err, &le) {
				return le
			}
			return fmt.Errorf("contextual: parsing XML: %w", err)
		}
		tokens++
		if o.MaxTokens > 0 && tokens > o.MaxTokens {
			return &dtd.LimitError{Limit: "tokens", Max: o.MaxTokens, Offset: tok.InputOffset()}
		}
		switch kind {
		case xmltok.StartElement:
			if o.MaxDepth > 0 && len(stack) >= o.MaxDepth {
				return &dtd.LimitError{Limit: "depth", Max: int64(o.MaxDepth), Offset: tok.InputOffset()}
			}
			name := string(tok.Name())
			if !names[name] {
				if o.MaxNames > 0 && len(names) >= o.MaxNames {
					return &dtd.LimitError{Limit: "names", Max: int64(o.MaxNames), Offset: tok.InputOffset()}
				}
				names[name] = true
			}
			if len(stack) == 0 {
				x.Roots[name]++
			} else {
				stack[len(stack)-1].children = append(stack[len(stack)-1].children, name)
			}
			ancestors := make([]string, len(stack))
			for i, f := range stack {
				ancestors[i] = f.name
			}
			stack = append(stack, frame{name: name, ctx: x.context(ancestors, name)})
		case xmltok.EndElement:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x.Sequences[top.ctx] = append(x.Sequences[top.ctx], top.children)
		case xmltok.CharData:
			if len(stack) > 0 && len(bytes.TrimSpace(tok.Text())) != 0 {
				x.HasText[stack[len(stack)-1].ctx] = true
			}
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("contextual: unbalanced XML document")
	}
	return nil
}

// extractOneStd is extractOne over encoding/xml, kept as the reference
// oracle and selectable fallback.
func (x *Extraction) extractOneStd(r io.Reader, o dtd.IngestOptions) error {
	dec := xml.NewDecoder(dtd.MeterReader(r, o.MaxBytes))
	type frame struct {
		name     string
		ctx      Context
		children []string
	}
	var stack []frame
	var tokens int64
	names := map[string]bool{}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			var le *dtd.LimitError
			if errors.As(err, &le) {
				return le
			}
			return fmt.Errorf("contextual: parsing XML: %w", err)
		}
		tokens++
		if o.MaxTokens > 0 && tokens > o.MaxTokens {
			return &dtd.LimitError{Limit: "tokens", Max: o.MaxTokens, Offset: dec.InputOffset()}
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if o.MaxDepth > 0 && len(stack) >= o.MaxDepth {
				return &dtd.LimitError{Limit: "depth", Max: int64(o.MaxDepth), Offset: dec.InputOffset()}
			}
			name := t.Name.Local
			if !names[name] {
				if o.MaxNames > 0 && len(names) >= o.MaxNames {
					return &dtd.LimitError{Limit: "names", Max: int64(o.MaxNames), Offset: dec.InputOffset()}
				}
				names[name] = true
			}
			if len(stack) == 0 {
				x.Roots[name]++
			} else {
				stack[len(stack)-1].children = append(stack[len(stack)-1].children, name)
			}
			ancestors := make([]string, len(stack))
			for i, f := range stack {
				ancestors[i] = f.name
			}
			stack = append(stack, frame{name: name, ctx: x.context(ancestors, name)})
		case xml.EndElement:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x.Sequences[top.ctx] = append(x.Sequences[top.ctx], top.children)
		case xml.CharData:
			if len(stack) > 0 && strings.TrimSpace(string(t)) != "" {
				x.HasText[stack[len(stack)-1].ctx] = true
			}
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("contextual: unbalanced XML document")
	}
	return nil
}

func (x *Extraction) context(ancestors []string, name string) Context {
	k := x.K
	if k < 0 {
		k = 0
	}
	parts := []string{name}
	for i := len(ancestors) - 1; i >= 0 && len(parts) <= k; i-- {
		parts = append([]string{ancestors[i]}, parts...)
	}
	return Context(strings.Join(parts, "/"))
}

// Type is one inferred element type: a content kind shared by one or more
// contexts of the same element name.
type Type struct {
	// Name is the type's identifier, derived from the element name and a
	// counter when an element has several types (book.name, author.name
	// collapse to name when their models agree).
	Name string
	// Element is the element name this type describes.
	Element string
	// Kind and Model/MixedNames follow dtd.Element.
	Kind       dtd.ContentType
	Model      *regex.Expr
	MixedNames []string
	// Contexts lists the contexts assigned to this type, sorted.
	Contexts []Context
}

// Schema is a contextual schema: a set of types plus the assignment of
// contexts to types. When every element has exactly one type the schema
// is structurally a DTD.
type Schema struct {
	Root  string
	Types []*Type
	// typeOf maps each context to its type.
	typeOf map[Context]*Type
}

// InferSchema infers per-context content models with the given inferrer
// and merges contexts of an element whose languages coincide.
func (x *Extraction) InferSchema(infer dtd.InferFunc) (*Schema, error) {
	contexts := make([]Context, 0, len(x.Sequences))
	for c := range x.Sequences {
		contexts = append(contexts, c)
	}
	sort.Slice(contexts, func(i, j int) bool { return contexts[i] < contexts[j] })

	// Infer a candidate type per context.
	perContext := map[Context]*Type{}
	for _, c := range contexts {
		ty, err := x.inferOne(c, infer)
		if err != nil {
			return nil, err
		}
		perContext[c] = ty
	}

	// Group contexts by element and merge language-equivalent candidates.
	byElement := map[string][]Context{}
	for _, c := range contexts {
		byElement[c.Element()] = append(byElement[c.Element()], c)
	}
	names := make([]string, 0, len(byElement))
	for n := range byElement {
		names = append(names, n)
	}
	sort.Strings(names)

	s := &Schema{typeOf: map[Context]*Type{}}
	if root := mostFrequent(x.Roots); root != "" {
		s.Root = root
	}
	for _, elem := range names {
		var groups []*Type
		for _, c := range byElement[elem] {
			cand := perContext[c]
			merged := false
			for _, g := range groups {
				if sameType(g, cand) {
					g.Contexts = append(g.Contexts, c)
					s.typeOf[c] = g
					merged = true
					break
				}
			}
			if !merged {
				cand.Contexts = []Context{c}
				groups = append(groups, cand)
				s.typeOf[c] = cand
			}
		}
		for _, g := range groups {
			sort.Slice(g.Contexts, func(a, b int) bool { return g.Contexts[a] < g.Contexts[b] })
			s.Types = append(s.Types, g)
		}
	}
	// Partition refinement: groups must also agree on every child's type
	// so that the schema renders as one complexType per type.
	s.refine(x.K)
	return s, nil
}

func (x *Extraction) inferOne(c Context, infer dtd.InferFunc) (*Type, error) {
	seqs := x.Sequences[c]
	hasChildren := false
	childSet := map[string]bool{}
	for _, w := range seqs {
		if len(w) > 0 {
			hasChildren = true
		}
		for _, s := range w {
			childSet[s] = true
		}
	}
	ty := &Type{Element: c.Element()}
	switch {
	case !hasChildren && x.HasText[c]:
		ty.Kind = dtd.PCData
	case !hasChildren:
		ty.Kind = dtd.Empty
	case x.HasText[c]:
		ty.Kind = dtd.Mixed
		for s := range childSet {
			ty.MixedNames = append(ty.MixedNames, s)
		}
		sort.Strings(ty.MixedNames)
	default:
		model, err := infer(seqs)
		if err != nil {
			return nil, fmt.Errorf("contextual: inferring %s: %w", c, err)
		}
		ty.Kind = dtd.Children
		ty.Model = model
	}
	return ty, nil
}

func sameType(a, b *Type) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case dtd.Children:
		return automata.ExprEquivalent(a.Model, b.Model)
	case dtd.Mixed:
		return strings.Join(a.MixedNames, "|") == strings.Join(b.MixedNames, "|")
	default:
		return true
	}
}

func mostFrequent(counts map[string]int) string {
	best, bestN := "", -1
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if counts[n] > bestN {
			best, bestN = n, counts[n]
		}
	}
	return best
}

// TypeOf returns the type assigned to a context (nil when unobserved).
func (s *Schema) TypeOf(c Context) *Type { return s.typeOf[c] }

// MultiTypeElements returns the element names with more than one type —
// exactly the places where the schema exceeds DTD expressiveness.
func (s *Schema) MultiTypeElements() []string {
	count := map[string]int{}
	for _, t := range s.Types {
		count[t.Element]++
	}
	var out []string
	for n, c := range count {
		if c > 1 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// IsDTDExpressible reports whether every element has a single type, in
// which case ToDTD is lossless.
func (s *Schema) IsDTDExpressible() bool { return len(s.MultiTypeElements()) == 0 }

// ToDTD flattens the schema to a DTD by merging each element's types into
// one content model (union of the models). Lossless when every element has
// one type; otherwise the DTD is the best DTD over-approximation.
func (s *Schema) ToDTD() *dtd.DTD {
	d := dtd.New(s.Root)
	byElement := map[string][]*Type{}
	var names []string
	for _, t := range s.Types {
		if _, ok := byElement[t.Element]; !ok {
			names = append(names, t.Element)
		}
		byElement[t.Element] = append(byElement[t.Element], t)
	}
	sort.Strings(names)
	for _, n := range names {
		types := byElement[n]
		if len(types) == 1 {
			d.Declare(toDTDElement(types[0]))
			continue
		}
		// Merge: union of the children models (text/mixed kinds dominate).
		merged := &Type{Element: n, Kind: dtd.Children}
		var models []*regex.Expr
		for _, t := range types {
			switch t.Kind {
			case dtd.Children:
				models = append(models, t.Model)
			case dtd.Mixed, dtd.PCData:
				merged.Kind = dtd.Mixed
				merged.MixedNames = mergeNames(merged.MixedNames, t.MixedNames)
			}
		}
		if merged.Kind == dtd.Children && len(models) > 0 {
			merged.Model = regex.Simplify(regex.Union(models...))
		} else if len(models) == 0 && merged.Kind == dtd.Children {
			merged.Kind = dtd.Empty
		} else if merged.Kind == dtd.Mixed {
			// A text-bearing sibling forces mixed content; the element
			// models contributed by Children-kind siblings survive as
			// alternatives, not as dropped symbols.
			for _, m := range models {
				merged.MixedNames = mergeNames(merged.MixedNames, m.Symbols())
			}
			if len(merged.MixedNames) == 0 {
				merged.Kind = dtd.PCData
			}
		}
		d.Declare(toDTDElement(merged))
	}
	return d
}

func toDTDElement(t *Type) *dtd.Element {
	return &dtd.Element{
		Name:       t.Element,
		Type:       t.Kind,
		Model:      t.Model,
		MixedNames: t.MixedNames,
	}
}

func mergeNames(a, b []string) []string {
	set := map[string]bool{}
	for _, n := range a {
		set[n] = true
	}
	for _, n := range b {
		set[n] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders the schema: one line per type with its contexts.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema root=%s\n", s.Root)
	for _, t := range s.Types {
		fmt.Fprintf(&b, "  type %s", t.Name)
		switch t.Kind {
		case dtd.Children:
			fmt.Fprintf(&b, " = (%s)", t.Model.DTDString())
		case dtd.Mixed:
			fmt.Fprintf(&b, " = (#PCDATA|%s)*", strings.Join(t.MixedNames, "|"))
		default:
			fmt.Fprintf(&b, " = %s", t.Kind)
		}
		fmt.Fprintf(&b, "   [%s]\n", contextsString(t.Contexts))
	}
	return b.String()
}

func contextsString(cs []Context) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = string(c)
	}
	return strings.Join(parts, ", ")
}
