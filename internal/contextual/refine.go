package contextual

import (
	"sort"
	"strings"
)

// childContext returns the context a child element of name child has when
// its parent occurs in context c, keeping at most k ancestor segments.
func childContext(c Context, child string, k int) Context {
	segs := strings.Split(string(c), "/")
	segs = append(segs, child)
	if len(segs) > k+1 {
		segs = segs[len(segs)-(k+1):]
	}
	return Context(strings.Join(segs, "/"))
}

// refine splits the schema's types until contexts grouped together also
// agree on the type of every child — the bisimulation condition that makes
// one complexType per type well-defined when the schema is rendered as XML
// Schema. Initial groups come from local language equivalence; refinement
// is a standard partition refinement over the context graph.
func (s *Schema) refine(k int) {
	group := map[Context]*Type{}
	for c, t := range s.typeOf {
		group[c] = t
	}
	for {
		split := false
		for _, t := range s.Types {
			if len(t.Contexts) < 2 {
				continue
			}
			// Signature of a context: the current group of each child
			// context, per child symbol of the type's alphabet.
			sig := func(c Context) string {
				var parts []string
				var children []string
				switch {
				case t.Model != nil:
					children = t.Model.Symbols()
				case len(t.MixedNames) > 0:
					children = t.MixedNames
				}
				for _, child := range children {
					cc := childContext(c, child, k)
					ct := group[cc]
					if ct == nil {
						parts = append(parts, child+"=?")
						continue
					}
					parts = append(parts, child+"="+string(ct.Contexts[0]))
				}
				return strings.Join(parts, ";")
			}
			sigs := map[string][]Context{}
			for _, c := range t.Contexts {
				sigs[sig(c)] = append(sigs[sig(c)], c)
			}
			if len(sigs) < 2 {
				continue
			}
			// Split: keep the first signature's contexts on t, spawn new
			// types for the others.
			split = true
			keys := make([]string, 0, len(sigs))
			for key := range sigs {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			t.Contexts = sigs[keys[0]]
			for _, key := range keys[1:] {
				nt := &Type{
					Element:    t.Element,
					Kind:       t.Kind,
					Model:      t.Model,
					MixedNames: t.MixedNames,
					Contexts:   sigs[key],
				}
				sort.Slice(nt.Contexts, func(a, b int) bool { return nt.Contexts[a] < nt.Contexts[b] })
				s.Types = append(s.Types, nt)
				for _, c := range nt.Contexts {
					s.typeOf[c] = nt
					group[c] = nt
				}
			}
		}
		if !split {
			break
		}
	}
	s.renameAndSort()
}

// renameAndSort reassigns type names (bare element name when unique,
// numbered otherwise) and orders Types deterministically.
func (s *Schema) renameAndSort() {
	sort.Slice(s.Types, func(i, j int) bool {
		if s.Types[i].Element != s.Types[j].Element {
			return s.Types[i].Element < s.Types[j].Element
		}
		return s.Types[i].Contexts[0] < s.Types[j].Contexts[0]
	})
	count := map[string]int{}
	for _, t := range s.Types {
		count[t.Element]++
	}
	idx := map[string]int{}
	for _, t := range s.Types {
		if count[t.Element] == 1 {
			t.Name = t.Element
			continue
		}
		idx[t.Element]++
		t.Name = t.Element + "." + itoa(idx[t.Element])
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
