package contextual

import (
	"reflect"
	"strings"
	"testing"

	"dtdinfer/internal/dtd"
)

// Differential test: the contextual extraction loop must behave
// identically over the fast structure tokenizer and encoding/xml —
// same acceptance, same per-context state — under no caps and tight
// caps, at several context widths.
func TestContextualDecoderEquivalence(t *testing.T) {
	corpus := []string{
		`<a/>`,
		`<db><rec id="a1"><name>n1</name></rec><rec><name/></rec></db>`,
		`<book><name>t</name><author><name>a</name></author></book>`,
		`<a>t1<b/>t2<b/>t3</a>`,
		`<a><![CDATA[raw]]></a>`,
		"<a>\n\t\n</a>",
		`<a xmlns:x="u" x:y="1"><x:b/></a>`,
		`<!DOCTYPE r [<!ELEMENT r (a)>]><r><a/></r>`,
		`<?pi data?><a/><!--c-->`,
		`<日本語><子>値</子></日本語>`,
		strings.Repeat("<d>", 30) + "x" + strings.Repeat("</d>", 30),
		// Rejected inputs.
		``,
		`<a>`,
		`<a><b></a></b>`,
		`<a>&undefined;</a>`,
		"<a>\xff\xfe</a>",
	}
	capsList := []dtd.IngestOptions{
		{},
		{MaxDepth: 10, MaxTokens: 64, MaxNames: 4, MaxBytes: 1 << 10},
	}
	for _, k := range []int{0, 1, 2} {
		for _, caps := range capsList {
			fastOpts, stdOpts := caps, caps
			fastOpts.Decoder = dtd.DecoderFast
			stdOpts.Decoder = dtd.DecoderStd
			for _, doc := range corpus {
				xf := NewExtraction(k)
				errF := xf.AddDocumentOptions(strings.NewReader(doc), &fastOpts)
				xs := NewExtraction(k)
				errS := xs.AddDocumentOptions(strings.NewReader(doc), &stdOpts)
				if (errF == nil) != (errS == nil) {
					t.Fatalf("k=%d caps=%+v: acceptance differs for %q:\nfast: %v\nstd:  %v",
						k, caps, doc, errF, errS)
				}
				if errF == nil && !reflect.DeepEqual(xf, xs) {
					t.Fatalf("k=%d caps=%+v: extraction differs for %q:\nfast: %+v\nstd:  %+v",
						k, caps, doc, xf, xs)
				}
			}
		}
	}
}
