package corpus

import (
	"strings"
	"testing"

	"dtdinfer/internal/dtd"
)

func TestProteinCorpusValidAgainstPublishedDTD(t *testing.T) {
	docs := Protein(1, 50)
	if len(docs) != 50 {
		t.Fatalf("got %d documents", len(docs))
	}
	v := dtd.NewValidator(ProteinDTD())
	for i, doc := range docs {
		violations, err := v.Validate(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("document %d malformed: %v", i, err)
		}
		if len(violations) != 0 {
			t.Fatalf("document %d invalid: %v", i, violations)
		}
	}
}

func TestProteinCorpusNeverMixesVolumeAndMonth(t *testing.T) {
	x := dtd.NewExtraction()
	for _, doc := range Protein(2, 100) {
		if err := x.AddDocument(strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	for _, seq := range x.Sequences["refinfo"].UniqueStrings() {
		hasVolume, hasMonth := false, false
		for _, c := range seq {
			if c == "volume" {
				hasVolume = true
			}
			if c == "month" {
				hasMonth = true
			}
		}
		if hasVolume && hasMonth {
			t.Fatalf("refinfo sequence %v mixes volume and month", seq)
		}
		if !hasVolume && !hasMonth {
			t.Fatalf("refinfo sequence %v has neither volume nor month", seq)
		}
	}
}

func TestMondialCorpusValid(t *testing.T) {
	v := dtd.NewValidator(MondialDTD())
	for i, doc := range Mondial(3, 30) {
		violations, err := v.Validate(strings.NewReader(doc))
		if err != nil || len(violations) != 0 {
			t.Fatalf("document %d invalid: %v %v", i, err, violations)
		}
	}
}

func TestXHTMLParagraphsNoise(t *testing.T) {
	ws, alphabet := XHTMLParagraphs(4, 2000, 10)
	if len(ws) != 2000 {
		t.Fatalf("got %d strings", len(ws))
	}
	if len(alphabet) != XHTMLParagraphSymbols {
		t.Fatalf("alphabet size = %d", len(alphabet))
	}
	clean := map[string]bool{}
	for _, s := range alphabet {
		clean[s] = true
	}
	noisy := 0
	for _, w := range ws {
		bad := false
		for _, s := range w {
			if !clean[s] {
				bad = true
			}
		}
		if bad {
			noisy++
		}
	}
	if noisy == 0 || noisy > 10 {
		t.Errorf("noisy strings = %d, want 1..10", noisy)
	}
}

func TestDescribe(t *testing.T) {
	out := Describe("x", []string{"<a/>", "<b/>"})
	if !strings.Contains(out, "2 documents") {
		t.Errorf("Describe = %q", out)
	}
}
