// Package corpus synthesizes the evaluation corpora of Section 8. The
// originals — the 683 MB Protein Sequence Database and the Mondial database
// from the Miklau XML repository, and the XHTML crawl of Section 9 — are
// not shippable, so each is re-created from the regularities the paper
// reports: documents are generated from the element definitions the paper
// lists (including the data-level quirks the inference is supposed to
// discover, such as volume/month mutual exclusion in refinfo and the absent
// a11 child of genetics), and the XHTML corpus carries the reported low
// rate of disallowed children inside paragraph elements.
package corpus

import (
	"fmt"
	"io"
	"strings"

	"dtdinfer/internal/datagen"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
)

// ProteinDTD returns the Protein Sequence Database DTD fragment used in the
// paper's discussion, with the loose refinfo definition
// (volume? month? instead of (volume|month)).
func ProteinDTD() *dtd.DTD {
	return dtd.MustParse(`<!DOCTYPE ProteinDatabase [
<!ELEMENT ProteinDatabase (ProteinEntry+)>
<!ELEMENT ProteinEntry (header,protein,organism,reference+,genetics?,function?,classification?,keywords?,feature*,summary,sequence)>
<!ELEMENT header (uid,accinfo)>
<!ELEMENT protein (name,description?)>
<!ELEMENT organism (source,common?,formal,variety?,note*)>
<!ELEMENT reference (refinfo,accinfo*,note*,summary*)>
<!ELEMENT refinfo (authors,citation,volume?,month?,year,pages?,(title|description)?,xrefs?)>
<!ELEMENT authors (author+|(collective,author?))>
<!ELEMENT accinfo (accession,mol-type*,seq-spec*,label?,status?,note?,xrefs*)>
<!ELEMENT genetics (gene*,map-position?,genome?,mosaic?,module?,status?,introns?,mgi?,pgi?,egi?,gdb*,omim*)>
<!ELEMENT function (description?,keyword*,note*)>
<!ELEMENT uid (#PCDATA)> <!ELEMENT accession (#PCDATA)> <!ELEMENT name (#PCDATA)>
<!ELEMENT description (#PCDATA)> <!ELEMENT source (#PCDATA)> <!ELEMENT common (#PCDATA)>
<!ELEMENT formal (#PCDATA)> <!ELEMENT variety (#PCDATA)> <!ELEMENT note (#PCDATA)>
<!ELEMENT citation (#PCDATA)> <!ELEMENT volume (#PCDATA)> <!ELEMENT month (#PCDATA)>
<!ELEMENT year (#PCDATA)> <!ELEMENT pages (#PCDATA)> <!ELEMENT title (#PCDATA)>
<!ELEMENT xrefs (#PCDATA)> <!ELEMENT author (#PCDATA)> <!ELEMENT collective (#PCDATA)>
<!ELEMENT mol-type (#PCDATA)> <!ELEMENT seq-spec (#PCDATA)> <!ELEMENT label (#PCDATA)>
<!ELEMENT status (#PCDATA)> <!ELEMENT gene (#PCDATA)> <!ELEMENT map-position (#PCDATA)>
<!ELEMENT genome (#PCDATA)> <!ELEMENT mosaic (#PCDATA)> <!ELEMENT module (#PCDATA)>
<!ELEMENT introns (#PCDATA)> <!ELEMENT mgi (#PCDATA)> <!ELEMENT pgi (#PCDATA)>
<!ELEMENT egi (#PCDATA)> <!ELEMENT gdb (#PCDATA)> <!ELEMENT omim (#PCDATA)>
<!ELEMENT classification (#PCDATA)> <!ELEMENT keywords (#PCDATA)> <!ELEMENT keyword (#PCDATA)>
<!ELEMENT feature (#PCDATA)> <!ELEMENT summary (#PCDATA)> <!ELEMENT sequence (#PCDATA)>
]>`)
}

// proteinCorpusDTD is the DTD the *data* actually follows: stricter than
// ProteinDTD in exactly the ways the paper reports the corpus to be.
func proteinCorpusDTD() *dtd.DTD {
	d := ProteinDTD()
	// The corpus never specifies volume and month together: one names a
	// journal's volume, the other a conference month (Section 1.1).
	d.Declare(&dtd.Element{
		Name: "refinfo", Type: dtd.Children,
		Model: regex.MustParse("authors,citation,(volume|month),year,pages?,(title|description)?,xrefs?"),
	})
	// Authors never have a collective without an author list completion.
	d.Declare(&dtd.Element{
		Name: "authors", Type: dtd.Children,
		Model: regex.MustParse("author+|(collective,author)"),
	})
	return d
}

// Protein generates n Protein Sequence Database documents (one
// ProteinDatabase root with one entry each, keeping documents small).
func Protein(seed int64, n int) []string {
	g := &datagen.DocGenerator{
		DTD:     proteinCorpusDTD(),
		Sampler: datagen.NewSampler(seed),
		Text:    proteinText,
	}
	return g.GenerateN(n)
}

func proteinText(element string) string {
	switch element {
	case "uid", "volume", "introns":
		return "42"
	case "year":
		return "2006"
	case "month":
		return "September"
	case "pages":
		return "912-915"
	default:
		return element + " value"
	}
}

// MondialDTD returns the fragment of the Mondial DTD around the city
// element used in Table 1.
func MondialDTD() *dtd.DTD {
	return dtd.MustParse(`<!DOCTYPE mondial [
<!ELEMENT mondial (country+)>
<!ELEMENT country (name,city+)>
<!ELEMENT city (name,population*,located_at*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT population (#PCDATA)>
<!ELEMENT located_at (#PCDATA)>
]>`)
}

// Mondial generates n Mondial documents.
func Mondial(seed int64, n int) []string {
	g := &datagen.DocGenerator{
		DTD:     MondialDTD(),
		Sampler: datagen.NewSampler(seed),
		Text: func(e string) string {
			if e == "population" {
				return "123456"
			}
			return e
		},
	}
	return g.GenerateN(n)
}

// XHTMLParagraphSymbols is the size of the repeated disjunction in the
// XHTML <p> content model the paper cites (k = 41).
const XHTMLParagraphSymbols = 41

// XHTMLParagraphs generates paragraph child sequences mimicking the noisy
// XHTML corpus of Section 9: total strings drawn from the repeated
// disjunction (a1+...+a41)*, of which noisy carry one disallowed child
// (such as table or h1). The paper found about 10 offending strings among
// more than 30000 paragraph occurrences.
func XHTMLParagraphs(seed int64, total, noisy int) ([][]string, []string) {
	alphabet := make([]string, XHTMLParagraphSymbols)
	inline := []string{"a", "abbr", "acronym", "b", "bdo", "big", "br", "button",
		"cite", "code", "del", "dfn", "em", "i", "img", "input", "ins", "kbd",
		"label", "map", "object", "q", "samp", "select", "small", "span",
		"strong", "sub", "sup", "textarea", "tt", "var", "u", "s", "strike",
		"font", "iframe", "script", "noscript", "applet", "basefont"}
	copy(alphabet, inline)
	subs := make([]*regex.Expr, len(alphabet))
	for i, s := range alphabet {
		subs[i] = regex.Sym(s)
	}
	clean := regex.Star(regex.Union(subs...))
	s := datagen.NewSampler(seed)
	ws := s.SampleN(clean, total)
	disallowed := []string{"table", "h1", "h2", "li", "div"}
	for i := 0; i < noisy && i < total; i++ {
		w := ws[i*total/(noisy+1)]
		bad := disallowed[i%len(disallowed)]
		ws[i*total/(noisy+1)] = append(append([]string{}, w...), bad)
	}
	return ws, alphabet
}

// Documents wraps generated document strings as readers for the public
// inference API.
func Documents(docs []string) []io.Reader {
	out := make([]io.Reader, len(docs))
	for i, d := range docs {
		out[i] = strings.NewReader(d)
	}
	return out
}

// Describe summarizes a corpus for logging.
func Describe(name string, docs []string) string {
	bytes := 0
	for _, d := range docs {
		bytes += len(d)
	}
	return fmt.Sprintf("%s: %d documents, %d bytes", name, len(docs), bytes)
}
