// Package soa implements single occurrence automata and the 2T-INF
// inference algorithm of Garcia and Vidal, as used in Section 4 of the
// paper. An SOA is an automaton in which every element name labels at most
// one state; it is fully determined by its sets of initial symbols I, final
// symbols F and allowed 2-grams S, so 2T-INF reduces to collecting those
// sets from the sample. Every SORE has an up-to-isomorphism unique SOA
// (Proposition 1).
//
// The SOA additionally records support counts — how many sample strings
// witnessed each symbol and edge — which back the noise-handling extension
// of Section 9, and it supports merging for incremental recomputation.
package soa

import (
	"fmt"
	"sort"
	"strings"

	"dtdinfer/internal/regex"
)

// Source and Sink are the reserved names of the virtual initial and final
// states. They cannot be used as element names.
const (
	Source = "⊢"
	Sink   = "⊣"
)

// SOA is a single occurrence automaton with support counts.
type SOA struct {
	syms map[string]bool
	// edges[a][b] is the number of sample strings witnessing the 2-gram ab;
	// the virtual Source and Sink appear as endpoints for initial and final
	// symbols. An edge in the automaton is any pair with count >= 1.
	edges map[string]map[string]int
	// symSupport[a] counts sample strings containing a.
	symSupport map[string]int
	// emptyCount counts empty sample strings (ε-acceptance).
	emptyCount int
	// total counts all sample strings seen.
	total int
}

// New returns an empty SOA accepting no strings.
func New() *SOA {
	return &SOA{
		syms:       map[string]bool{},
		edges:      map[string]map[string]int{},
		symSupport: map[string]int{},
	}
}

// Infer runs 2T-INF on the sample: the result is the canonical SOA whose
// language is the smallest 2-testable language containing every string.
func Infer(sample [][]string) *SOA {
	a := New()
	for _, w := range sample {
		a.AddString(w)
	}
	return a
}

// AddString extends the automaton with one sample string, incrementally
// updating the sets I, F and S and all support counts.
func (a *SOA) AddString(w []string) {
	a.total++
	if len(w) == 0 {
		a.emptyCount++
		return
	}
	seen := map[string]bool{}
	for _, s := range w {
		if s == Source || s == Sink {
			panic(fmt.Sprintf("soa: reserved symbol %q in sample", s))
		}
		a.syms[s] = true
		if !seen[s] {
			seen[s] = true
			a.symSupport[s]++
		}
	}
	a.bump(Source, w[0])
	for i := 0; i+1 < len(w); i++ {
		a.bump(w[i], w[i+1])
	}
	a.bump(w[len(w)-1], Sink)
}

func (a *SOA) bump(from, to string) {
	m := a.edges[from]
	if m == nil {
		m = map[string]int{}
		a.edges[from] = m
	}
	m[to]++
}

// AddEdge inserts an edge with the given support (default use: support 1),
// creating the endpoint states as needed. It is used by repair rules and by
// direct automaton construction in tests.
func (a *SOA) AddEdge(from, to string) {
	if from != Source {
		a.syms[from] = true
	}
	if to != Sink {
		a.syms[to] = true
	}
	a.bump(from, to)
}

// RemoveEdge deletes an edge regardless of support.
func (a *SOA) RemoveEdge(from, to string) {
	if m := a.edges[from]; m != nil {
		delete(m, to)
		if len(m) == 0 {
			delete(a.edges, from)
		}
	}
}

// HasEdge reports whether the automaton has an edge from one symbol to
// another; Source and Sink address the virtual states.
func (a *SOA) HasEdge(from, to string) bool {
	return a.edges[from][to] > 0
}

// EdgeSupport returns the number of sample strings witnessing the edge.
func (a *SOA) EdgeSupport(from, to string) int { return a.edges[from][to] }

// SymbolSupport returns the number of sample strings containing the symbol.
func (a *SOA) SymbolSupport(s string) int { return a.symSupport[s] }

// Total returns the number of sample strings consumed.
func (a *SOA) Total() int { return a.total }

// AcceptsEmpty reports whether the empty string is accepted (it was seen in
// the sample).
func (a *SOA) AcceptsEmpty() bool { return a.emptyCount > 0 }

// Symbols returns the sorted alphabet of the automaton.
func (a *SOA) Symbols() []string {
	out := make([]string, 0, len(a.syms))
	for s := range a.syms {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Successors returns the sorted successors of a state (possibly including
// Sink). Pass Source for the initial symbols.
func (a *SOA) Successors(s string) []string {
	m := a.edges[s]
	out := make([]string, 0, len(m))
	for t, n := range m {
		if n > 0 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Predecessors returns the sorted predecessors of a state (possibly
// including Source). Pass Sink for the final symbols.
func (a *SOA) Predecessors(s string) []string {
	var out []string
	for f, m := range a.edges {
		if m[s] > 0 {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// InitialSymbols returns the set I of symbols that may start a string.
func (a *SOA) InitialSymbols() []string {
	out := a.Successors(Source)
	return dropVirtual(out)
}

// FinalSymbols returns the set F of symbols that may end a string.
func (a *SOA) FinalSymbols() []string {
	return dropVirtual(a.Predecessors(Sink))
}

func dropVirtual(ss []string) []string {
	out := ss[:0]
	for _, s := range ss {
		if s != Source && s != Sink {
			out = append(out, s)
		}
	}
	return out
}

// EdgeCount returns the number of edges, including those from Source and to
// Sink.
func (a *SOA) EdgeCount() int {
	n := 0
	for _, m := range a.edges {
		for _, c := range m {
			if c > 0 {
				n++
			}
		}
	}
	return n
}

// Edges returns every edge (from, to) in deterministic order.
func (a *SOA) Edges() [][2]string {
	var out [][2]string
	for f, m := range a.edges {
		for t, c := range m {
			if c > 0 {
				out = append(out, [2]string{f, t})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Member reports whether the automaton accepts w: the first symbol must be
// initial, every adjacent pair an edge, and the last symbol final. The empty
// string is accepted only if it occurred in the sample.
func (a *SOA) Member(w []string) bool {
	if len(w) == 0 {
		return a.AcceptsEmpty()
	}
	if !a.HasEdge(Source, w[0]) {
		return false
	}
	for i := 0; i+1 < len(w); i++ {
		if !a.HasEdge(w[i], w[i+1]) {
			return false
		}
	}
	return a.HasEdge(w[len(w)-1], Sink)
}

// Equal reports whether two SOAs accept the same language. Because a
// 2-testable language is uniquely identified by (I, F, S), this is a
// structural comparison of edges and ε-acceptance; supports are ignored.
func (a *SOA) Equal(b *SOA) bool {
	if a.AcceptsEmpty() != b.AcceptsEmpty() {
		return false
	}
	if len(a.syms) != len(b.syms) {
		return false
	}
	for s := range a.syms {
		if !b.syms[s] {
			return false
		}
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// Merge folds another SOA into a, summing supports. It implements the
// incremental recomputation of Section 9: infer an SOA for the newly
// arrived data only, then merge.
func (a *SOA) Merge(b *SOA) {
	for s := range b.syms {
		a.syms[s] = true
	}
	for s, n := range b.symSupport {
		a.symSupport[s] += n
	}
	for f, m := range b.edges {
		for t, c := range m {
			am := a.edges[f]
			if am == nil {
				am = map[string]int{}
				a.edges[f] = am
			}
			am[t] += c
		}
	}
	a.emptyCount += b.emptyCount
	a.total += b.total
}

// Clone returns a deep copy.
func (a *SOA) Clone() *SOA {
	c := New()
	c.Merge(a)
	return c
}

// PruneSupport removes edges whose support is below edgeThreshold and
// symbols whose support is below symThreshold (together with their incident
// edges). It implements the basic noise-handling strategy of Section 9.
func (a *SOA) PruneSupport(symThreshold, edgeThreshold int) {
	var weak []string
	for s, n := range a.symSupport {
		if n < symThreshold {
			weak = append(weak, s)
		}
	}
	for _, s := range weak {
		a.removeSymbol(s)
	}
	var weakEdges [][2]string
	for f, m := range a.edges {
		for t, c := range m {
			if c < edgeThreshold {
				weakEdges = append(weakEdges, [2]string{f, t})
			}
		}
	}
	for _, e := range weakEdges {
		a.RemoveEdge(e[0], e[1])
	}
}

func (a *SOA) removeSymbol(s string) {
	delete(a.syms, s)
	delete(a.symSupport, s)
	delete(a.edges, s)
	for f, m := range a.edges {
		delete(m, s)
		if len(m) == 0 {
			delete(a.edges, f)
		}
	}
}

// FromExpr returns the SOA of a SORE (its Glushkov automaton, which by
// Proposition 1 is single occurrence). It panics if e is not a SORE. Edge
// supports are set to 1.
func FromExpr(e *regex.Expr) *SOA {
	if !e.IsSORE() {
		panic("soa: FromExpr requires a SORE: " + e.String())
	}
	a := New()
	for _, s := range e.FirstSymbols() {
		a.AddEdge(Source, s)
	}
	for _, s := range e.LastSymbols() {
		a.AddEdge(s, Sink)
	}
	for p := range e.FollowPairs() {
		a.AddEdge(p[0], p[1])
	}
	for _, s := range e.Symbols() {
		a.syms[s] = true
	}
	if e.Nullable() {
		a.emptyCount = 1
	}
	return a
}

// String renders the automaton compactly for debugging and logging.
func (a *SOA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SOA{I=%v F=%v", a.InitialSymbols(), a.FinalSymbols())
	var inner []string
	for _, e := range a.Edges() {
		if e[0] != Source && e[1] != Sink {
			inner = append(inner, e[0]+e[1])
		}
	}
	fmt.Fprintf(&b, " S=%v", inner)
	if a.AcceptsEmpty() {
		b.WriteString(" +ε")
	}
	b.WriteString("}")
	return b.String()
}

// Representative reports whether the sample that produced a is representative
// for the SORE r: the SOA inferred from the sample equals the SOA of r
// (Section 4: a set is representative w.r.t. a SORE when it contains all
// corresponding 2-grams).
func (a *SOA) Representative(r *regex.Expr) bool {
	return a.Equal(FromExpr(r))
}
