// Package soa implements single occurrence automata and the 2T-INF
// inference algorithm of Garcia and Vidal, as used in Section 4 of the
// paper. An SOA is an automaton in which every element name labels at most
// one state; it is fully determined by its sets of initial symbols I, final
// symbols F and allowed 2-grams S, so 2T-INF reduces to collecting those
// sets from the sample. Every SORE has an up-to-isomorphism unique SOA
// (Proposition 1).
//
// The SOA additionally records support counts — how many sample strings
// witnessed each symbol and edge — which back the noise-handling extension
// of Section 9, and it supports merging for incremental recomputation.
//
// Internally the automaton interns element names into dense integer IDs
// (Source = 0, Sink = 1, element symbols from 2, in first-seen order) and
// keeps the edge relation as slice-backed adjacency rows of support
// counts. AddString therefore performs no allocation on the hot path
// beyond amortized row growth: no nested map insertions, and per-string
// symbol support is tracked with generation stamps instead of a fresh
// `seen` map per call. The string-keyed API is preserved on top of the
// interned core; gfa consumes the IDs directly via SymbolIDs/ForEachEdgeID.
package soa

import (
	"fmt"
	"sort"
	"strings"

	"dtdinfer/internal/intern"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
)

// Source and Sink are the reserved names of the virtual initial and final
// states. They cannot be used as element names.
const (
	Source = "⊢"
	Sink   = "⊣"
)

// SourceID and SinkID are the interned IDs of the virtual initial and
// final states; element symbols are interned from 2 upward in first-seen
// order.
const (
	SourceID = 0
	SinkID   = 1
)

// SOA is a single occurrence automaton with support counts.
type SOA struct {
	// tab interns Source (ID 0), Sink (ID 1) and element names (IDs >= 2).
	tab *intern.Table
	// alive marks element IDs currently in the automaton; pruned symbols
	// stay interned but dead until re-added.
	alive []bool
	// edges[from][to] is the number of sample strings witnessing the
	// 2-gram (from, to); the virtual Source and Sink appear as endpoints
	// for initial and final symbols. Rows grow on demand; an edge in the
	// automaton is any entry with count >= 1.
	edges [][]int
	// edgeCount tracks the number of entries with count >= 1.
	edgeCount int
	// symSupport[id] counts sample strings containing the symbol.
	symSupport []int
	// lastSeen and gen stamp the symbols of the current AddString call so
	// per-string symbol support needs no per-call set allocation.
	lastSeen []uint64
	gen      uint64
	// emptyCount counts empty sample strings (ε-acceptance).
	emptyCount int
	// total counts all sample strings seen.
	total int
}

// New returns an empty SOA accepting no strings.
func New() *SOA {
	a := &SOA{tab: intern.NewTable()}
	a.tab.Intern(Source)
	a.tab.Intern(Sink)
	a.alive = make([]bool, 2)
	a.symSupport = make([]int, 2)
	a.lastSeen = make([]uint64, 2)
	a.edges = make([][]int, 2)
	return a
}

// Infer runs 2T-INF on the sample: the result is the canonical SOA whose
// language is the smallest 2-testable language containing every string.
func Infer(sample [][]string) *SOA {
	a := New()
	for _, w := range sample {
		a.AddString(w)
	}
	return a
}

// InferSample is Infer on a counted, interned sample: each unique
// sequence is processed once and contributes its multiplicity to every
// support count, producing the same automaton byte for byte as Infer on
// the expanded strings.
func InferSample(s *smp.Set) *SOA {
	a := New()
	a.AddSample(s)
	return a
}

// AddSample folds a counted sample into the automaton. Symbol IDs are
// remapped from the sample's intern table once per call, so no string
// hashing happens on the per-sequence path.
func (a *SOA) AddSample(s *smp.Set) {
	remap := make([]int, s.NumSymbols())
	for i := range remap {
		remap[i] = -1
	}
	s.ForEach(func(w []int32, n int) {
		a.total += n
		if len(w) == 0 {
			a.emptyCount += n
			return
		}
		a.gen++
		prev := SourceID
		for _, sid := range w {
			id := remap[sid]
			if id < 0 {
				name := s.Name(int(sid))
				if name == Source || name == Sink {
					panic(fmt.Sprintf("soa: reserved symbol %q in sample", name))
				}
				id = a.internID(name)
				remap[sid] = id
			}
			if a.lastSeen[id] != a.gen {
				a.lastSeen[id] = a.gen
				a.symSupport[id] += n
			}
			a.bumpIDCount(prev, id, n)
			prev = id
		}
		a.bumpIDCount(prev, SinkID, n)
	})
}

// internID interns an element name and marks it alive, growing the
// per-symbol slices when the ID is new.
func (a *SOA) internID(s string) int {
	id := a.tab.Intern(s)
	if id >= len(a.alive) {
		a.alive = append(a.alive, false)
		a.symSupport = append(a.symSupport, 0)
		a.lastSeen = append(a.lastSeen, 0)
		a.edges = append(a.edges, nil)
	}
	a.alive[id] = true
	return id
}

// idOf resolves a symbol (or virtual state name) without interning.
func (a *SOA) idOf(s string) (int, bool) {
	id, ok := a.tab.Lookup(s)
	if !ok || (id >= 2 && !a.alive[id]) {
		return -1, false
	}
	return id, true
}

// AddString extends the automaton with one sample string, incrementally
// updating the sets I, F and S and all support counts.
func (a *SOA) AddString(w []string) {
	a.total++
	if len(w) == 0 {
		a.emptyCount++
		return
	}
	a.gen++
	prev := SourceID
	for _, s := range w {
		if s == Source || s == Sink {
			panic(fmt.Sprintf("soa: reserved symbol %q in sample", s))
		}
		id := a.internID(s)
		if a.lastSeen[id] != a.gen {
			a.lastSeen[id] = a.gen
			a.symSupport[id]++
		}
		a.bumpID(prev, id)
		prev = id
	}
	a.bumpID(prev, SinkID)
}

// bumpID increments the support of an edge given by interned IDs.
func (a *SOA) bumpID(from, to int) { a.bumpIDCount(from, to, 1) }

// bumpIDCount adds n to the support of an edge given by interned IDs.
func (a *SOA) bumpIDCount(from, to, n int) {
	row := a.edges[from]
	if len(row) <= to {
		grown := make([]int, a.tab.Len())
		copy(grown, row)
		a.edges[from] = grown
		row = grown
	}
	if row[to] == 0 {
		a.edgeCount++
	}
	row[to] += n
}

// supportID returns the support of an edge given by interned IDs.
func (a *SOA) supportID(from, to int) int {
	row := a.edges[from]
	if to >= len(row) {
		return 0
	}
	return row[to]
}

// resolve interns a symbol, mapping the virtual state names to their IDs.
func (a *SOA) resolve(s string) int {
	switch s {
	case Source:
		return SourceID
	case Sink:
		return SinkID
	}
	return a.internID(s)
}

// AddEdge inserts an edge with the given support (default use: support 1),
// creating the endpoint states as needed. It is used by repair rules and by
// direct automaton construction in tests.
func (a *SOA) AddEdge(from, to string) {
	a.bumpID(a.resolve(from), a.resolve(to))
}

// RemoveEdge deletes an edge regardless of support.
func (a *SOA) RemoveEdge(from, to string) {
	f, ok := a.idOf(from)
	if !ok {
		return
	}
	t, ok := a.idOf(to)
	if !ok {
		return
	}
	a.removeEdgeID(f, t)
}

func (a *SOA) removeEdgeID(from, to int) {
	row := a.edges[from]
	if to < len(row) && row[to] > 0 {
		row[to] = 0
		a.edgeCount--
	}
}

// HasEdge reports whether the automaton has an edge from one symbol to
// another; Source and Sink address the virtual states.
func (a *SOA) HasEdge(from, to string) bool {
	return a.EdgeSupport(from, to) > 0
}

// EdgeSupport returns the number of sample strings witnessing the edge.
func (a *SOA) EdgeSupport(from, to string) int {
	f, ok := a.idOf(from)
	if !ok {
		return 0
	}
	t, ok := a.idOf(to)
	if !ok {
		return 0
	}
	return a.supportID(f, t)
}

// SymbolSupport returns the number of sample strings containing the symbol.
func (a *SOA) SymbolSupport(s string) int {
	id, ok := a.idOf(s)
	if !ok || id < 2 {
		return 0
	}
	return a.symSupport[id]
}

// Total returns the number of sample strings consumed.
func (a *SOA) Total() int { return a.total }

// AcceptsEmpty reports whether the empty string is accepted (it was seen in
// the sample).
func (a *SOA) AcceptsEmpty() bool { return a.emptyCount > 0 }

// Symbols returns the sorted alphabet of the automaton.
func (a *SOA) Symbols() []string {
	out := make([]string, 0, a.tab.Len()-2)
	for id := 2; id < a.tab.Len(); id++ {
		if a.alive[id] {
			out = append(out, a.tab.Name(id))
		}
	}
	sort.Strings(out)
	return out
}

// NumIDs returns the size of the interned ID space, virtual states
// included; valid IDs are [0, NumIDs).
func (a *SOA) NumIDs() int { return a.tab.Len() }

// NameByID returns the name interned at id (Source for SourceID, Sink for
// SinkID).
func (a *SOA) NameByID(id int) string { return a.tab.Name(id) }

// SymbolIDs returns the IDs of the alive element symbols ordered by name —
// the same order as Symbols. It lets ID-based consumers such as gfa map
// the alphabet without rebuilding a string-keyed index.
func (a *SOA) SymbolIDs() []int {
	out := make([]int, 0, a.tab.Len()-2)
	for id := 2; id < a.tab.Len(); id++ {
		if a.alive[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return a.tab.Name(out[i]) < a.tab.Name(out[j]) })
	return out
}

// ForEachEdgeID calls f for every edge (count >= 1) by interned IDs,
// virtual endpoints included, in ascending (from, to) ID order.
func (a *SOA) ForEachEdgeID(f func(from, to, support int)) {
	for from, row := range a.edges {
		for to, c := range row {
			if c > 0 {
				f(from, to, c)
			}
		}
	}
}

// Successors returns the sorted successors of a state (possibly including
// Sink). Pass Source for the initial symbols.
func (a *SOA) Successors(s string) []string {
	id, ok := a.idOf(s)
	if !ok {
		return nil
	}
	row := a.edges[id]
	out := make([]string, 0, len(row))
	for t, c := range row {
		if c > 0 {
			out = append(out, a.tab.Name(t))
		}
	}
	sort.Strings(out)
	return out
}

// Predecessors returns the sorted predecessors of a state (possibly
// including Source). Pass Sink for the final symbols.
func (a *SOA) Predecessors(s string) []string {
	id, ok := a.idOf(s)
	if !ok {
		return nil
	}
	var out []string
	for f, row := range a.edges {
		if id < len(row) && row[id] > 0 {
			out = append(out, a.tab.Name(f))
		}
	}
	sort.Strings(out)
	return out
}

// InitialSymbols returns the set I of symbols that may start a string.
func (a *SOA) InitialSymbols() []string {
	return dropVirtual(a.Successors(Source))
}

// FinalSymbols returns the set F of symbols that may end a string.
func (a *SOA) FinalSymbols() []string {
	return dropVirtual(a.Predecessors(Sink))
}

func dropVirtual(ss []string) []string {
	out := ss[:0]
	for _, s := range ss {
		if s != Source && s != Sink {
			out = append(out, s)
		}
	}
	return out
}

// EdgeCount returns the number of edges, including those from Source and to
// Sink.
func (a *SOA) EdgeCount() int { return a.edgeCount }

// Edges returns every edge (from, to) in deterministic order.
func (a *SOA) Edges() [][2]string {
	out := make([][2]string, 0, a.edgeCount)
	a.ForEachEdgeID(func(from, to, _ int) {
		out = append(out, [2]string{a.tab.Name(from), a.tab.Name(to)})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Member reports whether the automaton accepts w: the first symbol must be
// initial, every adjacent pair an edge, and the last symbol final. The empty
// string is accepted only if it occurred in the sample.
func (a *SOA) Member(w []string) bool {
	if len(w) == 0 {
		return a.AcceptsEmpty()
	}
	prev := SourceID
	for _, s := range w {
		id, ok := a.idOf(s)
		if !ok || a.supportID(prev, id) == 0 {
			return false
		}
		prev = id
	}
	return a.supportID(prev, SinkID) > 0
}

// Equal reports whether two SOAs accept the same language. Because a
// 2-testable language is uniquely identified by (I, F, S), this is a
// structural comparison of edges and ε-acceptance; supports are ignored.
func (a *SOA) Equal(b *SOA) bool {
	if a.AcceptsEmpty() != b.AcceptsEmpty() {
		return false
	}
	as, bs := a.Symbols(), b.Symbols()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// Merge folds another SOA into a, summing supports. It implements the
// incremental recomputation of Section 9: infer an SOA for the newly
// arrived data only, then merge.
func (a *SOA) Merge(b *SOA) {
	// Map b's ID space onto a's, interning b's alive symbols.
	remap := make([]int, b.tab.Len())
	remap[SourceID] = SourceID
	remap[SinkID] = SinkID
	for id := 2; id < b.tab.Len(); id++ {
		if !b.alive[id] {
			remap[id] = -1
			continue
		}
		aid := a.internID(b.tab.Name(id))
		remap[id] = aid
		a.symSupport[aid] += b.symSupport[id]
	}
	b.ForEachEdgeID(func(from, to, c int) {
		f, t := remap[from], remap[to]
		if f < 0 || t < 0 {
			return
		}
		row := a.edges[f]
		if len(row) <= t {
			grown := make([]int, a.tab.Len())
			copy(grown, row)
			a.edges[f] = grown
			row = grown
		}
		if row[t] == 0 {
			a.edgeCount++
		}
		row[t] += c
	})
	a.emptyCount += b.emptyCount
	a.total += b.total
}

// Clone returns a deep copy.
func (a *SOA) Clone() *SOA {
	c := New()
	c.Merge(a)
	return c
}

// PruneSupport removes edges whose support is below edgeThreshold and
// symbols whose support is below symThreshold (together with their incident
// edges). It implements the basic noise-handling strategy of Section 9.
// Symbols that never occurred in a sample string (support 0, e.g. added
// with AddEdge) are kept, matching the support-count semantics.
func (a *SOA) PruneSupport(symThreshold, edgeThreshold int) {
	for id := 2; id < a.tab.Len(); id++ {
		if a.alive[id] && a.symSupport[id] > 0 && a.symSupport[id] < symThreshold {
			a.removeSymbolID(id)
		}
	}
	var weakEdges [][2]int
	a.ForEachEdgeID(func(from, to, c int) {
		if c < edgeThreshold {
			weakEdges = append(weakEdges, [2]int{from, to})
		}
	})
	for _, e := range weakEdges {
		a.removeEdgeID(e[0], e[1])
	}
}

func (a *SOA) removeSymbolID(id int) {
	a.alive[id] = false
	a.symSupport[id] = 0
	for to, c := range a.edges[id] {
		if c > 0 {
			a.edges[id][to] = 0
			a.edgeCount--
		}
	}
	for _, row := range a.edges {
		if id < len(row) && row[id] > 0 {
			row[id] = 0
			a.edgeCount--
		}
	}
}

// FromExpr returns the SOA of a SORE (its Glushkov automaton, which by
// Proposition 1 is single occurrence). It panics if e is not a SORE. Edge
// supports are set to 1.
func FromExpr(e *regex.Expr) *SOA {
	if !e.IsSORE() {
		panic("soa: FromExpr requires a SORE: " + e.String())
	}
	a := New()
	for _, s := range e.FirstSymbols() {
		a.AddEdge(Source, s)
	}
	for _, s := range e.LastSymbols() {
		a.AddEdge(s, Sink)
	}
	for p := range e.FollowPairs() {
		a.AddEdge(p[0], p[1])
	}
	for _, s := range e.Symbols() {
		a.internID(s)
	}
	if e.Nullable() {
		a.emptyCount = 1
	}
	return a
}

// String renders the automaton compactly for debugging and logging.
func (a *SOA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SOA{I=%v F=%v", a.InitialSymbols(), a.FinalSymbols())
	var inner []string
	for _, e := range a.Edges() {
		if e[0] != Source && e[1] != Sink {
			inner = append(inner, e[0]+e[1])
		}
	}
	fmt.Fprintf(&b, " S=%v", inner)
	if a.AcceptsEmpty() {
		b.WriteString(" +ε")
	}
	b.WriteString("}")
	return b.String()
}

// Representative reports whether the sample that produced a is representative
// for the SORE r: the SOA inferred from the sample equals the SOA of r
// (Section 4: a set is representative w.r.t. a SORE when it contains all
// corresponding 2-grams).
func (a *SOA) Representative(r *regex.Expr) bool {
	return a.Equal(FromExpr(r))
}
