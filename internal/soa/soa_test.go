package soa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
)

func split(w string) []string {
	if w == "" {
		return nil
	}
	out := make([]string, len(w))
	for i, r := range w {
		out[i] = string(r)
	}
	return out
}

func sample(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		out[i] = split(w)
	}
	return out
}

// paperSample is W from Section 4 / Figure 1.
var paperSample = sample("bacacdacde", "cbacdbacde", "abccaadcde")

func TestInferSection4Example(t *testing.T) {
	a := Infer(paperSample)
	wantI := []string{"a", "b", "c"}
	if got := a.InitialSymbols(); !eq(got, wantI) {
		t.Errorf("I = %v, want %v", got, wantI)
	}
	if got := a.FinalSymbols(); !eq(got, []string{"e"}) {
		t.Errorf("F = %v, want [e]", got)
	}
	want2grams := []string{"aa", "ad", "ac", "ab", "ba", "bc", "cb", "cc", "ca", "cd", "da", "db", "dc", "de"}
	for _, g := range want2grams {
		if !a.HasEdge(string(g[0]), string(g[1])) {
			t.Errorf("missing 2-gram edge %s", g)
		}
	}
	inner := 0
	for _, e := range a.Edges() {
		if e[0] != Source && e[1] != Sink {
			inner++
		}
	}
	if inner != len(want2grams) {
		t.Errorf("got %d inner edges, want %d", inner, len(want2grams))
	}
}

func TestInferFigure2Subautomaton(t *testing.T) {
	// With the third string missing, the SOA is a strict subautomaton.
	full := Infer(paperSample)
	part := Infer(paperSample[:2])
	for _, e := range part.Edges() {
		if !full.HasEdge(e[0], e[1]) {
			t.Errorf("partial SOA has edge %v missing from the full SOA", e)
		}
	}
	for _, g := range []string{"aa", "ab", "ad", "bc", "cc", "dc"} {
		if part.HasEdge(string(g[0]), string(g[1])) {
			t.Errorf("partial SOA should miss edge %s", g)
		}
	}
	if part.HasEdge(Source, "a") {
		t.Error("partial SOA should miss initial a")
	}
	if full.Equal(part) {
		t.Error("full and partial SOA must differ")
	}
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMemberMatchesDefinition(t *testing.T) {
	a := Infer(paperSample)
	for _, w := range paperSample {
		if !a.Member(w) {
			t.Errorf("sample string %v rejected", w)
		}
	}
	// Strings in the 2-testable closure but not in the sample.
	for _, w := range sample("ade", "aade", "cde", "bacde") {
		if !a.Member(w) {
			t.Errorf("2-testable closure string %v rejected", w)
		}
	}
	for _, w := range sample("", "e", "ead", "ada", "dd", "abe") {
		if a.Member(w) {
			t.Errorf("string %v should be rejected", w)
		}
	}
}

func TestEmptyStringHandling(t *testing.T) {
	a := Infer([][]string{nil, {"a"}})
	if !a.AcceptsEmpty() || !a.Member(nil) {
		t.Error("empty string should be accepted when present in sample")
	}
	b := Infer([][]string{{"a"}})
	if b.AcceptsEmpty() {
		t.Error("empty string must not be accepted")
	}
}

func TestFromExprMatchesInferredOnRepresentativeSample(t *testing.T) {
	// For the paper's running SORE, the three sample strings are
	// representative: the inferred SOA equals the expression's SOA.
	r := regex.MustParse("((b?(a + c))+d)+e")
	a := Infer(paperSample)
	if !a.Equal(FromExpr(r)) {
		t.Errorf("SOA(W) != SOA(r):\n%s\n%s", a, FromExpr(r))
	}
	if !a.Representative(r) {
		t.Error("Representative should hold")
	}
	if Infer(paperSample[:2]).Representative(r) {
		t.Error("two strings are not representative")
	}
}

func TestProposition1UniqueSOAPerSORE(t *testing.T) {
	// Equivalent SOREs have equal SOAs (Proposition 1's uniqueness).
	pairs := [][2]string{
		{"(a+)?", "a*"},
		{"((b?(a + c))+d)+e", "((b?(a + c)+)+d)+e"},
		{"a? b", "b + a b"}, // second is not a SORE; skip below
	}
	for _, p := range pairs[:2] {
		a1 := FromExpr(regex.MustParse(p[0]))
		a2 := FromExpr(regex.MustParse(p[1]))
		if !a1.Equal(a2) {
			t.Errorf("SOAs of equivalent SOREs differ: %s vs %s", p[0], p[1])
		}
	}
}

func TestFromExprPanicsOnNonSORE(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FromExpr(regex.MustParse("a (a + b)*"))
}

func TestSOALanguageContainsSampleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := []string{"a", "b", "c", "d"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var ws [][]string
		for i := 0; i < 1+r.Intn(10); i++ {
			ws = append(ws, randomWord(r, alpha, 8))
		}
		a := Infer(ws)
		for _, w := range ws {
			if !a.Member(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSOAOfSOREAcceptsSampledStrings(t *testing.T) {
	// L(r) ⊆ L(SOA(r)): every string drawn from a SORE is accepted by its SOA.
	rng := rand.New(rand.NewSource(8))
	alpha := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 150; i++ {
		r := regextest.RandomSORE(rng, alpha, 3)
		a := FromExpr(r)
		for j := 0; j < 20; j++ {
			w := regextest.Sample(rng, r, 1, 2)
			if !a.Member(w) {
				t.Fatalf("SOA(%s) rejects sampled %v", r, w)
			}
		}
	}
}

func TestSOAEqualsGlushkovLanguageForSORE(t *testing.T) {
	// For a SORE, L(SOA(r)) = L(r) exactly (Proposition 1): cross-check
	// membership against the Glushkov automaton on random words.
	rng := rand.New(rand.NewSource(9))
	alpha := []string{"a", "b", "c", "d"}
	for i := 0; i < 120; i++ {
		r := regextest.RandomSORE(rng, alpha, 3)
		a := FromExpr(r)
		g := automata.Glushkov(r)
		for j := 0; j < 60; j++ {
			w := randomWord(rng, alpha, 6)
			if a.Member(w) != g.Member(w) {
				t.Fatalf("SOA and Glushkov disagree on %v for %s", w, r)
			}
		}
	}
}

func randomWord(rng *rand.Rand, alpha []string, maxLen int) []string {
	n := rng.Intn(maxLen + 1)
	w := make([]string, n)
	for i := range w {
		w[i] = alpha[rng.Intn(len(alpha))]
	}
	return w
}

func TestMergeEqualsBatch(t *testing.T) {
	// Incremental recomputation (Section 9): inferring on W1 ∪ W2 equals
	// inferring separately and merging, including supports.
	w1 := sample("bacacdacde", "cbacdbacde")
	w2 := sample("abccaadcde", "ade")
	batch := Infer(append(append([][]string{}, w1...), w2...))
	inc := Infer(w1)
	inc.Merge(Infer(w2))
	if !batch.Equal(inc) {
		t.Fatal("merged SOA differs from batch SOA")
	}
	if batch.Total() != inc.Total() {
		t.Errorf("totals differ: %d vs %d", batch.Total(), inc.Total())
	}
	for _, e := range batch.Edges() {
		if batch.EdgeSupport(e[0], e[1]) != inc.EdgeSupport(e[0], e[1]) {
			t.Errorf("support differs on %v", e)
		}
	}
}

func TestSupports(t *testing.T) {
	a := Infer(sample("aab", "ab", "b"))
	if got := a.SymbolSupport("a"); got != 2 {
		t.Errorf("SymbolSupport(a) = %d, want 2", got)
	}
	if got := a.SymbolSupport("b"); got != 3 {
		t.Errorf("SymbolSupport(b) = %d, want 3", got)
	}
	if got := a.EdgeSupport("a", "b"); got != 2 {
		t.Errorf("EdgeSupport(ab) = %d, want 2", got)
	}
	if got := a.EdgeSupport("a", "a"); got != 1 {
		t.Errorf("EdgeSupport(aa) = %d, want 1", got)
	}
	if got := a.EdgeSupport(Source, "b"); got != 1 {
		t.Errorf("EdgeSupport(⊢b) = %d, want 1", got)
	}
}

func TestPruneSupportRemovesNoise(t *testing.T) {
	// A hundred clean strings plus one noisy one containing symbol x.
	var ws [][]string
	for i := 0; i < 100; i++ {
		ws = append(ws, split("ab"))
	}
	ws = append(ws, split("axb"))
	a := Infer(ws)
	if !a.HasEdge("a", "x") {
		t.Fatal("noise edge should exist before pruning")
	}
	a.PruneSupport(10, 10)
	if a.HasEdge("a", "x") || a.HasEdge("x", "b") || a.SymbolSupport("x") != 0 {
		t.Error("noise symbol x should be pruned")
	}
	if !a.HasEdge("a", "b") || !a.HasEdge(Source, "a") || !a.HasEdge("b", Sink) {
		t.Error("clean structure must survive pruning")
	}
	// Pruning x also removed the a->x 2-gram; ab remains the only word.
	if !a.Member(split("ab")) || a.Member(split("axb")) {
		t.Error("membership after pruning is wrong")
	}
}

func TestAddRemoveEdge(t *testing.T) {
	a := New()
	a.AddEdge(Source, "a")
	a.AddEdge("a", "b")
	a.AddEdge("b", Sink)
	if !a.Member(split("ab")) {
		t.Error("constructed automaton should accept ab")
	}
	a.RemoveEdge("a", "b")
	if a.Member(split("ab")) {
		t.Error("edge removal should reject ab")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Infer(paperSample)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone differs")
	}
	c.RemoveEdge("a", "c")
	if a.Equal(c) {
		t.Fatal("clone shares state")
	}
	if !a.HasEdge("a", "c") {
		t.Fatal("original mutated")
	}
}

func TestReservedSymbolsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on reserved symbol")
		}
	}()
	New().AddString([]string{Source})
}

func TestStringer(t *testing.T) {
	a := Infer(sample("ab"))
	s := a.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestToNFAAndToDFA(t *testing.T) {
	a := Infer(paperSample)
	nfa := a.ToNFA()
	dfa := a.ToDFA()
	for _, w := range append(paperSample, sample("ade", "cde")...) {
		if !nfa.Member(w) || !dfa.Member(w) {
			t.Errorf("automata reject member %v", w)
		}
	}
	for _, w := range sample("", "e", "abe") {
		if nfa.Member(w) || dfa.Member(w) {
			t.Errorf("automata accept non-member %v", w)
		}
	}
	// ε-acceptance carries over.
	b := Infer([][]string{nil, {"a"}})
	if !b.ToNFA().Member(nil) || !b.ToDFA().Member(nil) {
		t.Error("ε lost in automata conversion")
	}
}

func TestSymbolsAndEdgeCount(t *testing.T) {
	a := Infer(sample("ab", "ba"))
	syms := a.Symbols()
	if len(syms) != 2 || syms[0] != "a" || syms[1] != "b" {
		t.Errorf("Symbols = %v", syms)
	}
	// Edges: src->a, src->b, a->b, b->a, a->snk, b->snk.
	if got := a.EdgeCount(); got != 6 {
		t.Errorf("EdgeCount = %d, want 6", got)
	}
}

func TestEqualDifferences(t *testing.T) {
	a := Infer(sample("ab"))
	b := Infer(sample("ab", ""))
	if a.Equal(b) {
		t.Error("ε-acceptance must distinguish")
	}
	c := Infer(sample("ac"))
	if a.Equal(c) {
		t.Error("different alphabets must distinguish")
	}
	d := Infer(sample("ab", "aab"))
	if a.Equal(d) {
		t.Error("different edges must distinguish")
	}
}
