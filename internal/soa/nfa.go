package soa

import "dtdinfer/internal/automata"

// ToNFA converts the SOA to an equivalent NFA over element names (in fact a
// DFA: an SOA is deterministic by construction, since all edges into a state
// carry that state's unique symbol). It enables exact language comparisons
// against regular expressions in tests and experiments.
func (a *SOA) ToNFA() *automata.NFA {
	syms := a.Symbols()
	id := map[string]int{}
	for i, s := range syms {
		id[s] = i + 1 // state 0 is the start
	}
	n := len(syms) + 1
	nfa := &automata.NFA{
		NumStates: n,
		Accept:    make([]bool, n),
		Trans:     make([]map[string][]int, n),
		Alphabet:  syms,
	}
	for i := range nfa.Trans {
		nfa.Trans[i] = map[string][]int{}
	}
	nfa.Accept[0] = a.AcceptsEmpty()
	for _, e := range a.Edges() {
		from, to := e[0], e[1]
		if to == Sink {
			nfa.Accept[id[from]] = true
			continue
		}
		src := 0
		if from != Source {
			src = id[from]
		}
		nfa.Trans[src][to] = append(nfa.Trans[src][to], id[to])
	}
	return nfa
}

// ToDFA returns the minimal DFA of the SOA's language.
func (a *SOA) ToDFA() *automata.DFA {
	return a.ToNFA().Determinize().Minimize()
}
