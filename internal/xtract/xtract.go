// Package xtract re-creates the XTRACT system of Garofalakis et al. (the
// paper's main experimental comparator) from its published description:
//
//  1. Generalization: each distinct input string spawns candidate regular
//     expressions by replacing runs of a symbol with s+ and adjacent
//     repetitions of a block with (block)+.
//  2. Factoring: common prefixes of the chosen candidates are factored to
//     share structure, as XTRACT does with logic-optimization techniques.
//  3. MDL choice: a greedy facility-location pass (the exact subproblem is
//     NP-hard) picks the candidate subset minimizing description length =
//     size of the chosen expressions plus the per-string encoding costs.
//
// The resulting inference exhibits the behaviour the paper reports: on
// small clean samples it can find the exact target, but on real-world data
// it emits disjunction-heavy expressions whose size grows with the number
// of distinct strings, and its cost explodes on large samples (the paper
// caps XTRACT at 300–1000 strings; MaxStrings mirrors that limit).
package xtract

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
)

// ErrTooLarge reports a sample beyond MaxStrings distinct strings,
// mirroring the blow-up that makes the original system crash on samples
// over about a thousand strings.
var ErrTooLarge = errors.New("xtract: sample exceeds MaxStrings distinct strings")

// Options configure the reconstruction.
type Options struct {
	// MaxStrings bounds the number of distinct input strings; 0 means 1000,
	// the paper's reported limit for the original system.
	MaxStrings int
	// MaxBlock bounds the block length considered by the repetition
	// detector; 0 means 4.
	MaxBlock int
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.MaxStrings == 0 {
		out.MaxStrings = 1000
	}
	if out.MaxBlock == 0 {
		out.MaxBlock = 4
	}
	return out
}

// Infer runs the XTRACT pipeline and returns the inferred expression.
func Infer(sample [][]string, opts *Options) (*regex.Expr, error) {
	return inferDistinct(context.Background(), dedup(sample), opts)
}

// InferSample is Infer on a counted, interned sample. XTRACT operates on
// distinct strings only (multiplicities never enter its MDL objective), so
// the counted representation hands it exactly the deduplication it
// otherwise performs itself, and the result is identical to Infer on the
// expanded strings.
func InferSample(s *smp.Set, opts *Options) (*regex.Expr, error) {
	return InferSampleContext(context.Background(), s, opts)
}

// InferSampleContext is InferSample under a context: the MDL candidate
// enumeration — the system's known blow-up, quadratic in candidates times
// strings — checks for cancellation per candidate and per greedy round.
func InferSampleContext(ctx context.Context, s *smp.Set, opts *Options) (*regex.Expr, error) {
	distinct := s.UniqueStrings()
	sort.Slice(distinct, func(i, j int) bool { return key(distinct[i]) < key(distinct[j]) })
	return inferDistinct(ctx, distinct, opts)
}

// inferDistinct runs the pipeline over deduplicated, key-sorted strings.
func inferDistinct(ctx context.Context, distinct [][]string, opts *Options) (*regex.Expr, error) {
	o := opts.withDefaults()
	if len(distinct) == 0 {
		return nil, errors.New("xtract: empty sample")
	}
	hasEmpty := false
	var strs [][]string
	for _, w := range distinct {
		if len(w) == 0 {
			hasEmpty = true
		} else {
			strs = append(strs, w)
		}
	}
	if len(strs) > o.MaxStrings {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(strs), o.MaxStrings)
	}
	if len(strs) == 0 {
		return nil, errors.New("xtract: only empty strings in sample")
	}
	candidates := generalize(strs, o.MaxBlock)
	chosen, err := mdlChoose(ctx, strs, candidates)
	if err != nil {
		return nil, err
	}
	e := factor(chosen)
	if hasEmpty {
		e = regex.Opt(e)
	}
	return e, nil
}

func dedup(sample [][]string) [][]string {
	seen := map[string]bool{}
	var out [][]string
	for _, w := range sample {
		k := key(w)
		if !seen[k] {
			seen[k] = true
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}

func key(w []string) string {
	k := ""
	for _, s := range w {
		k += s + "\x00"
	}
	return k
}

// generalize produces the candidate set: every distinct string verbatim
// plus its repetition generalizations.
func generalize(strs [][]string, maxBlock int) []*regex.Expr {
	seen := map[string]bool{}
	var out []*regex.Expr
	add := func(e *regex.Expr) {
		k := e.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	for _, w := range strs {
		add(literal(w))
		add(generalizeRuns(w, maxBlock))
	}
	return out
}

func literal(w []string) *regex.Expr {
	subs := make([]*regex.Expr, len(w))
	for i, s := range w {
		subs[i] = regex.Sym(s)
	}
	return regex.Concat(subs...)
}

// generalizeRuns replaces adjacent repetitions of a block of up to maxBlock
// symbols with (block)+, preferring longer blocks, scanning left to right.
func generalizeRuns(w []string, maxBlock int) *regex.Expr {
	var parts []*regex.Expr
	i := 0
	for i < len(w) {
		bestLen, bestReps := 0, 0
		for bl := maxBlock; bl >= 1; bl-- {
			if i+2*bl > len(w) {
				continue
			}
			reps := 1
			for i+(reps+1)*bl <= len(w) && blockEqual(w, i, i+reps*bl, bl) {
				reps++
			}
			if reps >= 2 {
				bestLen, bestReps = bl, reps
				break
			}
		}
		if bestLen == 0 {
			parts = append(parts, regex.Sym(w[i]))
			i++
			continue
		}
		parts = append(parts, regex.Plus(literal(w[i:i+bestLen])))
		i += bestLen * bestReps
	}
	return regex.Concat(parts...)
}

func blockEqual(w []string, i, j, l int) bool {
	for k := 0; k < l; k++ {
		if w[i+k] != w[j+k] {
			return false
		}
	}
	return true
}

// mdlChoose greedily selects a candidate subset covering every string,
// minimizing expression size plus encoding cost (facility location). The
// context is checked once per candidate during coverage evaluation and
// once per greedy round, the two loops whose product makes XTRACT's cost
// explode on large samples.
func mdlChoose(ctx context.Context, strs [][]string, candidates []*regex.Expr) ([]*regex.Expr, error) {
	type cand struct {
		e       *regex.Expr
		nfa     *automata.NFA
		size    int
		covers  []int
		encCost []int
	}
	cands := make([]*cand, 0, len(candidates))
	for _, e := range candidates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := &cand{e: e, nfa: automata.Glushkov(e), size: e.Tokens()}
		for i, w := range strs {
			if c.nfa.Member(w) {
				c.covers = append(c.covers, i)
				c.encCost = append(c.encCost, encodingCost(e, w))
			}
		}
		if len(c.covers) > 0 {
			cands = append(cands, c)
		}
	}
	uncovered := map[int]bool{}
	for i := range strs {
		uncovered[i] = true
	}
	var chosen []*regex.Expr
	for len(uncovered) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestIdx, bestRatio := -1, 0.0
		for ci, c := range cands {
			gain := 0
			cost := c.size
			for k, i := range c.covers {
				if uncovered[i] {
					gain++
					cost += c.encCost[k]
				}
			}
			if gain == 0 {
				continue
			}
			ratio := float64(cost) / float64(gain)
			if bestIdx < 0 || ratio < bestRatio {
				bestIdx, bestRatio = ci, ratio
			}
		}
		if bestIdx < 0 {
			break // cannot happen: literals cover everything
		}
		c := cands[bestIdx]
		chosen = append(chosen, c.e)
		for _, i := range c.covers {
			delete(uncovered, i)
		}
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].String() < chosen[j].String() })
	return chosen, nil
}

// encodingCost approximates the MDL cost of deriving w from e: one unit per
// repetition consumed beyond the first in each + block. Literal candidates
// encode their own string for free but pay their full size; generalized
// candidates are smaller but charge per repetition.
func encodingCost(e *regex.Expr, w []string) int {
	reps := 0
	e.Walk(func(n *regex.Expr) {
		if n.Op == regex.OpPlus {
			reps++
		}
	})
	if reps == 0 {
		return 0
	}
	// Upper-bound the repetitions by the length difference between the
	// string and the candidate's symbol count.
	d := len(w) - len(symbolsOf(e))
	if d < 0 {
		d = 0
	}
	return d + reps
}

func symbolsOf(e *regex.Expr) []string {
	var out []string
	e.Walk(func(n *regex.Expr) {
		if n.Op == regex.OpSymbol {
			out = append(out, n.Name)
		}
	})
	return out
}

// factor unions the chosen candidates and factors shared prefixes, the
// final assembly step of XTRACT. The output stays disjunction-heavy by
// construction, which is the shortcoming the paper demonstrates.
func factor(chosen []*regex.Expr) *regex.Expr {
	seqs := make([][]*regex.Expr, len(chosen))
	for i, e := range chosen {
		if e.Op == regex.OpConcat {
			seqs[i] = e.Subs
		} else {
			seqs[i] = []*regex.Expr{e}
		}
	}
	return factorSeqs(seqs)
}

func factorSeqs(seqs [][]*regex.Expr) *regex.Expr {
	if len(seqs) == 1 {
		return regex.Concat(seqs[0]...)
	}
	// Group by first element.
	groups := map[string][][]*regex.Expr{}
	var orderKeys []string
	hasEmpty := false
	for _, s := range seqs {
		if len(s) == 0 {
			hasEmpty = true
			continue
		}
		k := s[0].String()
		if _, ok := groups[k]; !ok {
			orderKeys = append(orderKeys, k)
		}
		groups[k] = append(groups[k], s)
	}
	sort.Strings(orderKeys)
	var alts []*regex.Expr
	for _, k := range orderKeys {
		group := groups[k]
		head := group[0][0]
		if len(group) == 1 {
			alts = append(alts, regex.Concat(group[0]...))
			continue
		}
		tails := make([][]*regex.Expr, len(group))
		allEmpty := true
		for i, s := range group {
			tails[i] = s[1:]
			if len(tails[i]) > 0 {
				allEmpty = false
			}
		}
		if allEmpty {
			alts = append(alts, head)
			continue
		}
		// factorSeqs marks the remainder optional itself when some tail
		// was empty.
		rest := factorSeqs(tails)
		alts = append(alts, regex.Concat(head, rest))
	}
	e := regex.Union(alts...)
	if hasEmpty {
		e = regex.Opt(e)
	}
	return e
}
