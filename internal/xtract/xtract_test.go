package xtract

import (
	"errors"
	"math/rand"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/crx"
	"dtdinfer/internal/datagen"
	"dtdinfer/internal/regex"
)

func split(w string) []string {
	if w == "" {
		return nil
	}
	out := make([]string, len(w))
	for i, r := range w {
		out[i] = string(r)
	}
	return out
}

func sample(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		out[i] = split(w)
	}
	return out
}

func TestXtractCoversSample(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	alpha := []string{"a", "b", "c", "d"}
	for i := 0; i < 150; i++ {
		var ws [][]string
		nonEmpty := false
		for j := 0; j < 1+rng.Intn(8); j++ {
			n := rng.Intn(8)
			w := make([]string, n)
			for k := range w {
				w[k] = alpha[rng.Intn(len(alpha))]
			}
			nonEmpty = nonEmpty || n > 0
			ws = append(ws, w)
		}
		if !nonEmpty {
			continue
		}
		e, err := Infer(ws, nil)
		if err != nil {
			t.Fatalf("Infer(%v): %v", ws, err)
		}
		for _, w := range ws {
			if !automata.ExprMember(e, w) {
				t.Fatalf("xtract %s rejects sample string %v", e, w)
			}
		}
	}
}

func TestXtractRunGeneralization(t *testing.T) {
	// aaab generalizes the run of a's.
	e, err := Infer(sample("aaab", "ab", "aab"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !automata.ExprMember(e, split("aaaaab")) {
		t.Errorf("xtract %s should generalize runs beyond the sample", e)
	}
}

func TestXtractBlockRepetition(t *testing.T) {
	// (ab)(ab)(ab) generalizes to (a b)+ somewhere in the candidate set.
	e, err := Infer(sample("ababab", "ab"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !automata.ExprMember(e, split("abababab")) {
		t.Errorf("xtract %s should generalize block repetitions", e)
	}
}

// The paper's core observation: xtract output grows with the number of
// distinct strings (disjunction-heavy), while CRX stays linear in the
// alphabet.
func TestXtractGrowsWithSampleWhereCRXStaysConcise(t *testing.T) {
	target := regex.MustParse("a (b + c + d + e)* f")
	s := datagen.NewSampler(52)
	small := datagen.RepresentativeSample(s, target, 30)
	large := datagen.RepresentativeSample(s, target, 300)
	eSmall, err := Infer(small, nil)
	if err != nil {
		t.Fatal(err)
	}
	eLarge, err := Infer(large, nil)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := crx.Infer(large)
	if err != nil {
		t.Fatal(err)
	}
	if eLarge.Tokens() <= eSmall.Tokens() {
		t.Logf("note: xtract large sample tokens %d <= small %d", eLarge.Tokens(), eSmall.Tokens())
	}
	if eLarge.Tokens() < 3*cr.Expr.Tokens() {
		t.Errorf("xtract (%d tokens) should be much larger than CRX (%d tokens): %s",
			eLarge.Tokens(), cr.Expr.Tokens(), eLarge)
	}
	if cr.Expr.String() != "a (b + c + d + e)* f" {
		t.Errorf("CRX = %s", cr.Expr)
	}
}

func TestXtractMaxStrings(t *testing.T) {
	var ws [][]string
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			ws = append(ws, []string{"a", string(rune('b' + i%20)), string(rune('b' + j%20))})
		}
	}
	_, err := Infer(ws, &Options{MaxStrings: 100})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestXtractExactOnCleanPattern(t *testing.T) {
	// On small clean repetitive data, xtract can find a compact pattern.
	e, err := Infer(sample("ab", "aab", "aaab"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"ab", "aab", "aaab", "aaaab"} {
		if !automata.ExprMember(e, split(w)) {
			t.Errorf("xtract %s rejects %s", e, w)
		}
	}
}

func TestXtractEmptyHandling(t *testing.T) {
	if _, err := Infer(nil, nil); err == nil {
		t.Fatal("want error on empty sample")
	}
	e, err := Infer([][]string{nil, {"a"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Nullable() {
		t.Errorf("result %s must be nullable", e)
	}
}

func TestFactorSharedPrefix(t *testing.T) {
	e := factor([]*regex.Expr{
		regex.MustParse("a b c"),
		regex.MustParse("a b d"),
		regex.MustParse("a b"),
	})
	// One shared "a b" prefix with an optional (c + d) tail.
	if !automata.ExprEquivalent(e, regex.MustParse("a b (c + d)?")) {
		t.Errorf("factor = %s", e)
	}
	if e.SymbolOccurrences()["a"] != 1 {
		t.Errorf("prefix not factored: %s", e)
	}
}
