package gfa

import (
	"dtdinfer/internal/intern"
	"dtdinfer/internal/regex"
)

// The four rewrite rules of Section 5. Each try function applies the rule
// once if possible (deterministically, scanning nodes in ascending id
// order) and reports whether it fired.

// TrySelfLoop applies the self-loop rule: delete an edge (r, r) and relabel
// r by r+.
func (g *GFA) TrySelfLoop() bool {
	for _, r := range g.Nodes() {
		if g.HasEdge(r, r) {
			old := g.labels[r]
			g.RemoveEdge(r, r)
			g.labels[r] = regex.Simplify(regex.Plus(g.labels[r]))
			g.tracef("self-loop: %s becomes %s", old, g.labels[r])
			return true
		}
	}
	return false
}

// TryOptional applies the optional rule to the first eligible node r: every
// closure-predecessor r' of r satisfies Succ(r) ⊆ Succ(r'), i.e. everything
// reachable through r from a predecessor is also reachable directly. The
// node is relabeled r? and the bypass edges (r', r”) with r' ∈ Pred(r) and
// r” ∈ Succ(r)\{r} are removed, since the ε-pass through r? now subsumes
// them. Nodes with already-nullable labels are skipped: the rule would not
// make progress.
func (g *GFA) TryOptional() bool {
	cl := g.Closure()
	for _, r := range g.Nodes() {
		if nullableLabel(g.labels[r]) {
			continue
		}
		preds, succs := cl.Pred(r), cl.Succ(r)
		if !hasOther(preds, r) || !hasOther(succs, r) {
			continue
		}
		ok := preds.Until(func(p int) bool {
			return p == r || succs.SubsetOf(cl.Succ(p))
		})
		if !ok {
			continue
		}
		old := g.labels[r]
		g.labels[r] = regex.Simplify(regex.Opt(g.labels[r]))
		g.tracef("optional: %s becomes %s", old, g.labels[r])
		// Remove only bypasses between real predecessors and real successors:
		// each removed edge (p, s) is re-derivable as p → r (ε) → s, so the
		// closure of the GFA is unchanged, exactly as the paper's
		// rule-interference analysis requires. Removing closure-level
		// bypasses instead could delete the edges supporting the closure
		// paths themselves and change the language.
		for _, p := range g.Predecessors(r) {
			if p == r {
				continue
			}
			for _, s := range g.Successors(r) {
				if s != r && g.HasEdge(p, s) {
					g.RemoveEdge(p, s)
				}
			}
		}
		return true
	}
	return false
}

func hasOther(set intern.Bitset, self int) bool {
	for w, word := range set {
		if self>>6 == w {
			word &^= 1 << uint(self&63)
		}
		if word != 0 {
			return true
		}
	}
	return false
}

// TryConcat applies the concatenation rule to a maximal chain r1,...,rn
// (n >= 2): consecutive edges ri → ri+1 where every node besides r1 has
// exactly one incoming edge and every node besides rn has exactly one
// outgoing edge. The chain is replaced by a single node labeled r1···rn;
// an edge rn → r1 becomes a self edge of the new node.
func (g *GFA) TryConcat() bool {
	// A link is an edge u→v between labeled nodes where u has out-degree 1
	// and v has in-degree 1; chains are maximal link paths.
	isLink := func(u, v int) bool {
		return u != v && u != SourceID && u != SinkID && v != SourceID &&
			v != SinkID && g.HasEdge(u, v) && g.OutDegree(u) == 1 && g.InDegree(v) == 1
	}
	for _, u := range g.Nodes() {
		if g.OutDegree(u) != 1 {
			continue
		}
		v := g.Successors(u)[0]
		if !isLink(u, v) {
			continue
		}
		// Extend backward from u and forward from v, guarding against a
		// full cycle (which cannot be reached from the source in practice).
		chain := []int{u, v}
		inChain := map[int]bool{u: true, v: true}
		for {
			first := chain[0]
			if g.InDegree(first) != 1 {
				break
			}
			p := g.Predecessors(first)[0]
			if !isLink(p, first) || inChain[p] {
				break
			}
			chain = append([]int{p}, chain...)
			inChain[p] = true
		}
		for {
			last := chain[len(chain)-1]
			if g.OutDegree(last) != 1 {
				break
			}
			s := g.Successors(last)[0]
			if !isLink(last, s) || inChain[s] {
				break
			}
			chain = append(chain, s)
			inChain[s] = true
		}
		g.mergeChain(chain, inChain)
		return true
	}
	return false
}

func (g *GFA) mergeChain(chain []int, inChain map[int]bool) {
	labels := make([]*regex.Expr, len(chain))
	for i, id := range chain {
		labels[i] = g.labels[id]
	}
	m := g.AddNode(regex.Concat(labels...))
	g.tracef("concatenation: %d states merge into %s", len(chain), g.labels[m])
	first, last := chain[0], chain[len(chain)-1]
	selfLoop := false
	var selfSupport int
	for _, p := range g.Predecessors(first) {
		if p == last {
			selfLoop = true
			selfSupport += g.EdgeSupport(p, first)
			continue
		}
		g.AddEdgeSupport(p, m, g.EdgeSupport(p, first))
	}
	for _, s := range g.Successors(last) {
		if s == first {
			continue // already handled as the self loop
		}
		if inChain[s] {
			continue // the internal link edges disappear with the chain
		}
		g.AddEdgeSupport(m, s, g.EdgeSupport(last, s))
	}
	if selfLoop {
		g.AddEdgeSupport(m, m, selfSupport)
	}
	for _, id := range chain {
		g.RemoveNode(id)
	}
}

// TryDisjunction applies the disjunction rule to the first eligible pair of
// nodes u, v: their closure predecessor and successor sets agree outside
// {u, v}, and internally either there are no edges between them in G at all
// (case i) or every ordered pair, including the self pairs, is an edge of
// the closure G* (case ii). The pair is replaced by a node labeled u + v; in
// case (ii) a self edge is added. Larger disjunctions arise by repeated
// pairwise application — the Union constructor flattens nested disjunctions
// and Simplify absorbs member quantifiers, so the final expression matches
// an n-ary merge.
func (g *GFA) TryDisjunction() bool {
	cl := g.Closure()
	nodes := g.Nodes()
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			if !setEqualMod(cl.Pred(u), cl.Pred(v), u, v) ||
				!setEqualMod(cl.Succ(u), cl.Succ(v), u, v) {
				continue
			}
			realInternal := g.HasEdge(u, u) || g.HasEdge(u, v) ||
				g.HasEdge(v, u) || g.HasEdge(v, v)
			if realInternal {
				// Case (ii): require full closure interconnection.
				su, sv := cl.Succ(u), cl.Succ(v)
				if !(su.Has(u) && su.Has(v) && sv.Has(u) && sv.Has(v)) {
					continue
				}
			}
			g.mergePair(u, v, realInternal)
			return true
		}
	}
	return false
}

// setEqualMod reports whether bitsets a and b agree outside {u, v}.
func setEqualMod(a, b intern.Bitset, u, v int) bool {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for w := 0; w < n; w++ {
		var aw, bw uint64
		if w < len(a) {
			aw = a[w]
		}
		if w < len(b) {
			bw = b[w]
		}
		x := aw ^ bw
		if u>>6 == w {
			x &^= 1 << uint(u&63)
		}
		if v>>6 == w {
			x &^= 1 << uint(v&63)
		}
		if x != 0 {
			return false
		}
	}
	return true
}

func (g *GFA) mergePair(u, v int, selfLoop bool) {
	m := g.AddNode(regex.Union(g.labels[u], g.labels[v]))
	kase := "i"
	if selfLoop {
		kase = "ii"
	}
	g.tracef("disjunction (case %s): %s and %s merge into %s",
		kase, g.labels[u], g.labels[v], g.labels[m])
	var selfSupport int
	for _, old := range []int{u, v} {
		for _, p := range g.Predecessors(old) {
			if p == u || p == v {
				selfSupport += g.EdgeSupport(p, old)
				continue
			}
			g.AddEdgeSupport(p, m, g.EdgeSupport(p, old))
		}
		for _, s := range g.Successors(old) {
			if s == u || s == v {
				continue // counted from the predecessor side
			}
			g.AddEdgeSupport(m, s, g.EdgeSupport(old, s))
		}
	}
	if selfLoop {
		g.AddEdgeSupport(m, m, selfSupport)
	}
	g.RemoveNode(u)
	g.RemoveNode(v)
}
