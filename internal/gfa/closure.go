package gfa

import (
	"dtdinfer/internal/intern"
	"dtdinfer/internal/regex"
)

// Closure is the ε-closure G* of a GFA: its edge set E* contains (i) a self
// edge (r, r) for every node whose label is repeatable (r+ or r*, i.e. the
// paper's s+ and (s+)? forms), and (ii) an edge (r, r') whenever there is a
// path from r to r' in G passing only through intermediate nodes with
// nullable labels. E ⊆ E* since a single edge is such a path with no
// intermediates.
//
// The successor and predecessor sets are bitsets indexed by node id. All
// rows share one backing array, so computing a closure costs a constant
// number of allocations regardless of automaton size — the rewrite loop
// recomputes closures after every rule application, which made the earlier
// map-of-maps representation the dominant allocation site of iDTD.
type Closure struct {
	succ, pred []intern.Bitset
}

// Succ returns the successor set of u in G*.
func (c *Closure) Succ(u int) intern.Bitset { return c.succ[u] }

// Pred returns the predecessor set of u in G*.
func (c *Closure) Pred(u int) intern.Bitset { return c.pred[u] }

func nullableLabel(l *regex.Expr) bool { return l != nil && l.Nullable() }

func repeatableLabel(l *regex.Expr) bool {
	return l != nil && (l.Op == regex.OpPlus || l.Op == regex.OpStar)
}

// Closure computes the ε-closure of the GFA.
func (g *GFA) Closure() *Closure {
	n := g.next
	words := (n + 63) >> 6
	backing := make([]uint64, 2*n*words)
	c := &Closure{
		succ: make([]intern.Bitset, n),
		pred: make([]intern.Bitset, n),
	}
	for i := 0; i < n; i++ {
		c.succ[i] = intern.Bitset(backing[i*words : (i+1)*words])
		c.pred[i] = intern.Bitset(backing[(n+i)*words : (n+i+1)*words])
	}
	add := func(u, v int) {
		c.succ[u].Set(v)
		c.pred[v].Set(u)
	}
	seen := make(intern.Bitset, words)
	queue := make([]int, 0, n)
	ids := append([]int{SourceID, SinkID}, g.Nodes()...)
	for _, u := range ids {
		if repeatableLabel(g.labels[u]) {
			add(u, u)
		}
		// BFS from u: an edge (u, v) is in E* when v is reachable through
		// nullable intermediates only.
		for i := range seen {
			seen[i] = 0
		}
		queue = queue[:0]
		for v := range g.succ[u] {
			seen.Set(v)
			queue = append(queue, v)
		}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			add(u, v)
			if !nullableLabel(g.labels[v]) {
				continue
			}
			for w := range g.succ[v] {
				if !seen.Has(w) {
					seen.Set(w)
					queue = append(queue, w)
				}
			}
		}
	}
	return c
}
