package gfa

import "dtdinfer/internal/regex"

// Closure is the ε-closure G* of a GFA: its edge set E* contains (i) a self
// edge (r, r) for every node whose label is repeatable (r+ or r*, i.e. the
// paper's s+ and (s+)? forms), and (ii) an edge (r, r') whenever there is a
// path from r to r' in G passing only through intermediate nodes with
// nullable labels. E ⊆ E* since a single edge is such a path with no
// intermediates.
type Closure struct {
	// Succ and Pred are the successor and predecessor sets in G*.
	Succ, Pred map[int]map[int]bool
}

func nullableLabel(l *regex.Expr) bool { return l != nil && l.Nullable() }

func repeatableLabel(l *regex.Expr) bool {
	return l != nil && (l.Op == regex.OpPlus || l.Op == regex.OpStar)
}

// Closure computes the ε-closure of the GFA.
func (g *GFA) Closure() *Closure {
	c := &Closure{
		Succ: map[int]map[int]bool{},
		Pred: map[int]map[int]bool{},
	}
	ids := append([]int{SourceID, SinkID}, g.Nodes()...)
	for _, id := range ids {
		c.Succ[id] = map[int]bool{}
		c.Pred[id] = map[int]bool{}
	}
	add := func(u, v int) {
		c.Succ[u][v] = true
		c.Pred[v][u] = true
	}
	for _, u := range ids {
		if repeatableLabel(g.labels[u]) {
			add(u, u)
		}
		// BFS from u: an edge (u, v) is in E* when v is reachable through
		// nullable intermediates only.
		seen := map[int]bool{}
		queue := sortedIDs(g.succ[u])
		for _, v := range queue {
			seen[v] = true
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			add(u, v)
			if !nullableLabel(g.labels[v]) {
				continue
			}
			for _, w := range g.Successors(v) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return c
}

// SetEqual reports whether two closure sets are identical.
func SetEqual(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of a is in b.
func SubsetOf(a, b map[int]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
