// Package gfa implements generalized finite automata (automata whose states
// are labeled with regular expressions) and the rewrite algorithm of
// Section 5 of the paper, which transforms a single occurrence automaton
// into an equivalent SORE when one exists — in polynomial time and with an
// output of linear size, in contrast to classical state elimination.
//
// A GFA node labeled r means: every incoming edge reads a string of L(r).
// The rewrite system has four rules, one per operator:
//
//	disjunction    merge states with equal predecessor and successor sets
//	concatenation  merge a maximal chain of states
//	self-loop      delete a self edge, relabel r to r+
//	optional       relabel r to r?, delete the bypass edges it subsumes
//
// Predecessor and successor sets are computed on the ε-closure G*, which
// adds self edges for repeatable labels (r+, r*) and shortcut edges along
// paths through nullable intermediate states.
package gfa

import (
	"fmt"
	"sort"

	"dtdinfer/internal/regex"
	"dtdinfer/internal/soa"
)

// SourceID and SinkID are the node ids of the virtual initial and final
// states of every GFA.
const (
	SourceID = 0
	SinkID   = 1
)

// GFA is a single occurrence generalized finite automaton. Nodes carry
// SORE labels; edges are unlabeled. Edge supports (inherited from the SOA
// sample counts) back the noise-handling variant of iDTD.
type GFA struct {
	labels  map[int]*regex.Expr
	succ    map[int]map[int]bool
	pred    map[int]map[int]bool
	support map[[2]int]int
	next    int
	// trace records rule applications when enabled via EnableTrace.
	trace   []string
	tracing bool
}

// EnableTrace makes subsequent rule applications append a human-readable
// step description, retrievable with Trace — the tool behind reproducing
// the paper's Figure 3 derivation step by step.
func (g *GFA) EnableTrace() { g.tracing = true }

// Trace returns the recorded rule applications in order.
func (g *GFA) Trace() []string { return append([]string{}, g.trace...) }

func (g *GFA) tracef(format string, args ...interface{}) {
	if g.tracing {
		g.trace = append(g.trace, fmt.Sprintf(format, args...))
	}
}

// New returns a GFA containing only the virtual source and sink.
func New() *GFA {
	g := &GFA{
		labels:  map[int]*regex.Expr{},
		succ:    map[int]map[int]bool{SourceID: {}, SinkID: {}},
		pred:    map[int]map[int]bool{SourceID: {}, SinkID: {}},
		support: map[[2]int]int{},
		next:    2,
	}
	return g
}

// FromSOA converts a single occurrence automaton into the corresponding GFA
// with one state per element name, carrying over edge supports. When the SOA
// accepts the empty string, a direct source→sink edge represents it; the
// optional rule later consumes that edge as a bypass, so nullable SOREs such
// as (a b)? are recovered exactly.
//
// The conversion consumes the SOA's interned alphabet directly: nodes are
// allocated in name order (so node IDs are reproducible) and edges are
// translated through a dense ID remap instead of a string-keyed index.
func FromSOA(a *soa.SOA) *GFA {
	g := New()
	remap := make([]int, a.NumIDs())
	remap[soa.SourceID] = SourceID
	remap[soa.SinkID] = SinkID
	for _, sid := range a.SymbolIDs() {
		remap[sid] = g.AddNode(regex.Sym(a.NameByID(sid)))
	}
	a.ForEachEdgeID(func(from, to, support int) {
		f, t := remap[from], remap[to]
		g.AddEdge(f, t)
		g.support[[2]int{f, t}] = support
	})
	if a.AcceptsEmpty() {
		g.AddEdge(SourceID, SinkID)
	}
	return g
}

// AddNode inserts a fresh node with the given label and returns its id.
func (g *GFA) AddNode(label *regex.Expr) int {
	id := g.next
	g.next++
	g.labels[id] = label
	g.succ[id] = map[int]bool{}
	g.pred[id] = map[int]bool{}
	return id
}

// RemoveNode deletes a node and all incident edges.
func (g *GFA) RemoveNode(id int) {
	for t := range g.succ[id] {
		delete(g.pred[t], id)
		delete(g.support, [2]int{id, t})
	}
	for f := range g.pred[id] {
		delete(g.succ[f], id)
		delete(g.support, [2]int{f, id})
	}
	delete(g.labels, id)
	delete(g.succ, id)
	delete(g.pred, id)
}

// AddEdge inserts the edge (from, to).
func (g *GFA) AddEdge(from, to int) {
	g.succ[from][to] = true
	g.pred[to][from] = true
}

// AddEdgeSupport inserts the edge and records a support count, accumulating
// when the edge already exists.
func (g *GFA) AddEdgeSupport(from, to, support int) {
	g.AddEdge(from, to)
	g.support[[2]int{from, to}] += support
}

// RemoveEdge deletes the edge (from, to).
func (g *GFA) RemoveEdge(from, to int) {
	delete(g.succ[from], to)
	delete(g.pred[to], from)
	delete(g.support, [2]int{from, to})
}

// HasEdge reports whether (from, to) is an edge.
func (g *GFA) HasEdge(from, to int) bool { return g.succ[from][to] }

// EdgeSupport returns the recorded support of an edge (zero when untracked).
func (g *GFA) EdgeSupport(from, to int) int { return g.support[[2]int{from, to}] }

// Label returns the label of a node (nil for source and sink).
func (g *GFA) Label(id int) *regex.Expr { return g.labels[id] }

// Nodes returns the ids of all labeled nodes in ascending order.
func (g *GFA) Nodes() []int {
	out := make([]int, 0, len(g.labels))
	for id := range g.labels {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// NumNodes returns the number of labeled nodes.
func (g *GFA) NumNodes() int { return len(g.labels) }

// Successors returns the successor ids of a node in ascending order.
func (g *GFA) Successors(id int) []int { return sortedIDs(g.succ[id]) }

// Predecessors returns the predecessor ids of a node in ascending order.
func (g *GFA) Predecessors(id int) []int { return sortedIDs(g.pred[id]) }

func sortedIDs(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// OutDegree and InDegree count real edges.
func (g *GFA) OutDegree(id int) int { return len(g.succ[id]) }

// InDegree counts real incoming edges.
func (g *GFA) InDegree(id int) int { return len(g.pred[id]) }

// IsFinal reports whether the GFA consists of a single labeled node r with
// exactly the edges source→r and r→sink, at which point the label is the
// resulting regular expression.
func (g *GFA) IsFinal() bool {
	if len(g.labels) != 1 {
		return false
	}
	var id int
	for n := range g.labels {
		id = n
	}
	return len(g.succ[SourceID]) == 1 && g.succ[SourceID][id] &&
		len(g.pred[SinkID]) == 1 && g.pred[SinkID][id] &&
		len(g.succ[id]) == 1 && g.succ[id][SinkID] &&
		len(g.pred[id]) == 1 && g.pred[id][SourceID]
}

// FinalExpr returns the label of the unique node of a final GFA.
// It panics when the GFA is not final.
func (g *GFA) FinalExpr() *regex.Expr {
	if !g.IsFinal() {
		panic("gfa: FinalExpr on non-final GFA")
	}
	for _, l := range g.labels {
		return l
	}
	panic("unreachable")
}

// Clone returns a deep copy of the GFA.
func (g *GFA) Clone() *GFA {
	c := &GFA{
		labels:  make(map[int]*regex.Expr, len(g.labels)),
		succ:    make(map[int]map[int]bool, len(g.succ)),
		pred:    make(map[int]map[int]bool, len(g.pred)),
		support: make(map[[2]int]int, len(g.support)),
		next:    g.next,
	}
	for id, l := range g.labels {
		c.labels[id] = l
	}
	for id, m := range g.succ {
		cm := make(map[int]bool, len(m))
		for t := range m {
			cm[t] = true
		}
		c.succ[id] = cm
	}
	for id, m := range g.pred {
		cm := make(map[int]bool, len(m))
		for t := range m {
			cm[t] = true
		}
		c.pred[id] = cm
	}
	for e, s := range g.support {
		c.support[e] = s
	}
	return c
}

// String renders the GFA for debugging: one line per node with its label
// and successors.
func (g *GFA) String() string {
	out := "GFA{\n"
	name := func(id int) string {
		switch id {
		case SourceID:
			return "⊢"
		case SinkID:
			return "⊣"
		}
		return g.labels[id].String()
	}
	ids := append([]int{SourceID}, g.Nodes()...)
	for _, id := range ids {
		succs := g.Successors(id)
		parts := make([]string, len(succs))
		for i, t := range succs {
			parts[i] = name(t)
		}
		out += fmt.Sprintf("  %s -> %v\n", name(id), parts)
	}
	return out + "}"
}

// Edges returns all edges in deterministic order.
func (g *GFA) Edges() [][2]int {
	var out [][2]int
	for f, m := range g.succ {
		for t := range m {
			out = append(out, [2]int{f, t})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
