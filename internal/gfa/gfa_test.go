package gfa

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
	"dtdinfer/internal/soa"
)

func split(w string) []string {
	if w == "" {
		return nil
	}
	out := make([]string, len(w))
	for i, r := range w {
		out[i] = string(r)
	}
	return out
}

func sample(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		out[i] = split(w)
	}
	return out
}

// The running example of the paper: Figure 1's automaton rewrites to
// ((b?(a+c))+d)+e (Figure 3).
func TestRewriteFigure3(t *testing.T) {
	a := soa.Infer(sample("bacacdacde", "cbacdbacde", "abccaadcde"))
	r, err := Rewrite(a)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	want := "((b? (a + c))+ d)+ e"
	if r.String() != want {
		t.Errorf("Rewrite = %q, want %q", r, want)
	}
}

func TestRewriteFailsOnFigure2(t *testing.T) {
	// Without the third sample string the SOA has no equivalent SORE;
	// rewrite must report failure (iDTD's repair rules handle this case).
	a := soa.Infer(sample("bacacdacde", "cbacdbacde"))
	_, err := Rewrite(a)
	if !errors.Is(err, ErrNoSORE) {
		t.Fatalf("Rewrite error = %v, want ErrNoSORE", err)
	}
}

func TestRewriteEmpty(t *testing.T) {
	if _, err := Rewrite(soa.New()); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	// A sample of only empty strings also has no symbols.
	if _, err := Rewrite(soa.Infer([][]string{nil})); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestRewriteSimpleShapes(t *testing.T) {
	tests := []struct {
		sample []string
		want   string
	}{
		{[]string{"a"}, "a"},
		{[]string{"a", "b"}, "a + b"},
		{[]string{"ab"}, "a b"},
		{[]string{"a", "aa"}, "a+"},
		{[]string{"ab", "b"}, "a? b"},
		{[]string{"ab", "a"}, "a b?"},
		{[]string{"ab", "ba", "aa", "bb", "a", "b"}, "(a + b)+"},
		{[]string{"ab", "cb"}, "(a + c) b"},
		{[]string{"abc", "ac"}, "a b? c"},
	}
	for _, tc := range tests {
		r, err := Rewrite(soa.Infer(sample(tc.sample...)))
		if err != nil {
			t.Errorf("Rewrite(%v): %v", tc.sample, err)
			continue
		}
		if r.String() != tc.want {
			t.Errorf("Rewrite(%v) = %q, want %q", tc.sample, r, tc.want)
		}
	}
}

func TestRewriteTopLevelUnion(t *testing.T) {
	// The SORE a+ + (a2? a3+) requires merging a repeatable node with a
	// concatenation node (disjunction case i with a closure-only self edge).
	target := regex.MustParse("a+ + (b? c+)")
	a := soa.FromExpr(target)
	r, err := Rewrite(a)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if !automata.ExprEquivalent(r, target) {
		t.Errorf("Rewrite = %s, not equivalent to %s", r, target)
	}
	if !r.IsSORE() {
		t.Errorf("result %s is not a SORE", r)
	}
}

func TestRewriteStarNormalization(t *testing.T) {
	// Strings witnessing zero-or-more occurrences produce a Kleene star in
	// the post-processed output, never (r+)?.
	r, err := Rewrite(soa.Infer(sample("ab", "aab", "b")))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if r.String() != "a* b" {
		t.Errorf("Rewrite = %q, want %q", r, "a* b")
	}
}

// Soundness: L(rewrite(A)) = L(A) whenever rewrite succeeds.
func TestRewriteSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := []string{"a", "b", "c", "d", "e"}
	succeeded := 0
	for i := 0; i < 300; i++ {
		var ws [][]string
		for j := 0; j < 1+rng.Intn(8); j++ {
			n := 1 + rng.Intn(8)
			w := make([]string, n)
			for k := range w {
				w[k] = alpha[rng.Intn(len(alpha))]
			}
			ws = append(ws, w)
		}
		a := soa.Infer(ws)
		r, err := Rewrite(a)
		if err != nil {
			continue
		}
		succeeded++
		if !r.IsSORE() {
			t.Fatalf("result %s is not a SORE", r)
		}
		d1 := a.ToDFA()
		d2 := automata.FromExpr(r)
		// The SOA may accept ε (never from these samples — all strings are
		// non-empty) so direct equivalence applies.
		if !automata.Equivalent(d1, d2) {
			t.Fatalf("language changed: sample %v, SOA %s, result %s", ws, a, r)
		}
	}
	if succeeded == 0 {
		t.Fatal("rewrite never succeeded on random samples")
	}
}

// Completeness (Theorem 1 / Claim 1): for every SORE r, rewriting the SOA
// of r yields an equivalent SORE.
func TestRewriteCompletenessOnRandomSOREs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	alpha := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < 400; i++ {
		target := regextest.RandomSORE(rng, alpha, 3)
		a := soa.FromExpr(target)
		r, err := Rewrite(a)
		if err != nil {
			t.Fatalf("Rewrite failed on SOA of SORE %s: %v", target, err)
		}
		if !r.IsSORE() {
			t.Fatalf("result %s is not a SORE (target %s)", r, target)
		}
		// Rewrite handles ε via the source→sink edge, so the result must be
		// exactly equivalent to the SOA language (= L(target)).
		if !automata.Equivalent(a.ToDFA(), automata.FromExpr(r)) {
			t.Fatalf("Rewrite(%s) = %s: language differs", target, r)
		}
	}
}

func TestRewriteLinearSize(t *testing.T) {
	// The SORE produced for an n-symbol SOA has each symbol exactly once:
	// size linear in the alphabet (contribution 1 of the paper).
	rng := rand.New(rand.NewSource(44))
	alpha := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < 100; i++ {
		target := regextest.RandomSORE(rng, alpha, 4)
		r, err := Rewrite(soa.FromExpr(target))
		if err != nil {
			t.Fatalf("Rewrite failed on %s: %v", target, err)
		}
		for sym, n := range r.SymbolOccurrences() {
			if n != 1 {
				t.Fatalf("symbol %s occurs %d times in %s", sym, n, r)
			}
		}
	}
}

func TestClosure(t *testing.T) {
	g := New()
	a := g.AddNode(regex.MustParse("a"))
	b := g.AddNode(regex.MustParse("b?"))
	c := g.AddNode(regex.MustParse("c+"))
	g.AddEdge(SourceID, a)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, SinkID)
	cl := g.Closure()
	if !cl.Succ(a).Has(b) || !cl.Succ(b).Has(c) {
		t.Error("closure must contain the real edges")
	}
	if !cl.Succ(a).Has(c) {
		t.Error("closure must shortcut through the nullable b?")
	}
	if !cl.Succ(c).Has(c) {
		t.Error("repeatable c+ must have a closure self edge")
	}
	if cl.Succ(a).Has(a) || cl.Succ(b).Has(b) {
		t.Error("non-repeatable labels must not get self edges")
	}
	if cl.Succ(a).Has(SinkID) {
		t.Error("c+ is not nullable; no shortcut a -> sink")
	}
	if cl.Succ(b).Has(SinkID) {
		t.Error("c+ is not nullable; no shortcut b -> sink")
	}
	if !cl.Pred(c).Has(a) || !cl.Pred(b).Has(a) {
		t.Error("predecessor sets must mirror successor sets")
	}
}

func TestIsFinalAndFinalExpr(t *testing.T) {
	g := New()
	r := g.AddNode(regex.MustParse("a"))
	g.AddEdge(SourceID, r)
	g.AddEdge(r, SinkID)
	if !g.IsFinal() {
		t.Fatal("GFA should be final")
	}
	if g.FinalExpr().String() != "a" {
		t.Errorf("FinalExpr = %s", g.FinalExpr())
	}
	g.AddEdge(r, r)
	if g.IsFinal() {
		t.Fatal("self edge must break finality")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := soa.Infer(sample("ab", "ba"))
	g := FromSOA(a)
	c := g.Clone()
	c.Saturate()
	if g.NumNodes() != 2 {
		t.Error("saturating the clone mutated the original")
	}
}

func TestSupportsCarriedThroughFromSOA(t *testing.T) {
	a := soa.Infer(sample("ab", "ab", "ab"))
	g := FromSOA(a)
	var aID, bID int
	for _, id := range g.Nodes() {
		switch g.Label(id).Name {
		case "a":
			aID = id
		case "b":
			bID = id
		}
	}
	if got := g.EdgeSupport(aID, bID); got != 3 {
		t.Errorf("support(a->b) = %d, want 3", got)
	}
	if got := g.EdgeSupport(SourceID, aID); got != 3 {
		t.Errorf("support(src->a) = %d, want 3", got)
	}
}

func TestStringer(t *testing.T) {
	g := FromSOA(soa.Infer(sample("ab")))
	if g.String() == "" {
		t.Fatal("empty String()")
	}
}

// The exact Figure 3 derivation, step by step: optional on b, disjunction
// on {a, c} (case i, after the optional removed their interconnection),
// then alternating concatenations and self-loops down to the final SORE.
func TestRewriteTraceMatchesFigure3(t *testing.T) {
	a := soa.Infer(sample("bacacdacde", "cbacdbacde", "abccaadcde"))
	g := FromSOA(a)
	g.EnableTrace()
	g.Saturate()
	r, err := g.Result()
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "((b? (a + c))+ d)+ e" {
		t.Fatalf("result = %s", r)
	}
	want := []string{
		"optional: b becomes b?",
		"disjunction (case i): a and c merge into a + c",
		"concatenation: 2 states merge into b? (a + c)",
		"self-loop: b? (a + c) becomes (b? (a + c))+",
		"concatenation: 2 states merge into (b? (a + c))+ d",
		"self-loop: (b? (a + c))+ d becomes ((b? (a + c))+ d)+",
		"concatenation: 2 states merge into ((b? (a + c))+ d)+ e",
	}
	got := g.Trace()
	if len(got) != len(want) {
		t.Fatalf("trace length %d, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d = %q, want %q", i+1, got[i], want[i])
		}
	}
}
