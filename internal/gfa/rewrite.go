package gfa

import (
	"context"
	"errors"
	"fmt"

	"dtdinfer/internal/budget"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
	"dtdinfer/internal/soa"
)

// ErrNoSORE is reported by Rewrite when the input automaton has no
// equivalent SORE (for example because the sample was not representative,
// leaving edges missing — the situation iDTD repairs).
var ErrNoSORE = errors.New("gfa: automaton is not equivalent to any SORE")

// ErrEmpty is reported when the automaton has no states: the empty language
// and the language {ε} have no SORE (ε is not expressible).
var ErrEmpty = errors.New("gfa: automaton has no symbols")

// Saturate applies rewrite rules until none is applicable, trying them in
// the fixed order optional, self-loop, concatenation, disjunction (the
// result does not depend on this order for automata equivalent to a SORE —
// Claim 2 of the paper — but a fixed order makes runs reproducible). It
// returns the number of rule applications.
func (g *GFA) Saturate() int {
	steps, _ := g.SaturateContext(context.Background())
	return steps
}

// SaturateContext is Saturate with a cancellation checkpoint before every
// rule application — the rewrite hot loop can run thousands of steps on
// large automata, and each step is cheap enough that a per-step ctx.Err()
// is lost in the noise. It returns the steps applied so far alongside any
// context error.
func (g *GFA) SaturateContext(ctx context.Context) (int, error) {
	steps := 0
	for {
		if err := ctx.Err(); err != nil {
			return steps, err
		}
		switch {
		case g.TryOptional():
		case g.TrySelfLoop():
		case g.TryConcat():
		case g.TryDisjunction():
		default:
			return steps, nil
		}
		steps++
	}
}

// Rewrite implements Algorithm 1: it transforms a single occurrence
// automaton into an equivalent SORE (L(result) = L(A), including ε), or
// fails with ErrNoSORE when no equivalent SORE exists. The result is
// normalized to use the Kleene star for (r+)? forms, as the paper's
// post-processing step prescribes.
func Rewrite(a *soa.SOA) (*regex.Expr, error) {
	return RewriteContext(context.Background(), a)
}

// RewriteContext is Rewrite under a context, honoring the state budget the
// context carries and checking for cancellation inside the rewrite loop.
func RewriteContext(ctx context.Context, a *soa.SOA) (*regex.Expr, error) {
	if len(a.Symbols()) == 0 {
		return nil, ErrEmpty
	}
	if err := budget.CheckStates(ctx, len(a.Symbols())); err != nil {
		return nil, err
	}
	g := FromSOA(a)
	if _, err := g.SaturateContext(ctx); err != nil {
		return nil, err
	}
	return g.Result()
}

// InferSample runs rewrite (without repair rules) over the 2T-INF
// automaton of a counted, interned sample — the repair-free half of iDTD,
// used to reproduce Figure 4's "rewrite" curve.
func InferSample(s *smp.Set) (*regex.Expr, error) {
	return Rewrite(soa.InferSample(s))
}

// InferSampleContext is InferSample under a context.
func InferSampleContext(ctx context.Context, s *smp.Set) (*regex.Expr, error) {
	return RewriteContext(ctx, soa.InferSample(s))
}

// Result extracts the regular expression of a saturated GFA. Besides the
// strictly final shape it accepts the one remaining configuration with an
// unconsumed ε edge — a single node r with edges source→r, r→sink and
// source→sink — which denotes r? exactly.
func (g *GFA) Result() (*regex.Expr, error) {
	if g.IsFinal() {
		return regex.Simplify(g.FinalExpr()), nil
	}
	if len(g.labels) == 1 && g.HasEdge(SourceID, SinkID) {
		var id int
		for n := range g.labels {
			id = n
		}
		if len(g.succ[SourceID]) == 2 && g.succ[SourceID][id] &&
			len(g.pred[SinkID]) == 2 && g.pred[SinkID][id] &&
			len(g.succ[id]) == 1 && g.succ[id][SinkID] &&
			len(g.pred[id]) == 1 && g.pred[id][SourceID] {
			return regex.Simplify(regex.Opt(g.labels[id])), nil
		}
	}
	return nil, fmt.Errorf("%w (stuck with %d states)", ErrNoSORE, g.NumNodes())
}
