package gfa

import (
	"testing"

	"dtdinfer/internal/regex"
)

// buildGFA constructs a GFA from labels and an edge list over label
// indices; -1 is the source, -2 the sink.
func buildGFA(t *testing.T, labels []string, edges [][2]int) (*GFA, []int) {
	t.Helper()
	g := New()
	ids := make([]int, len(labels))
	for i, l := range labels {
		ids[i] = g.AddNode(regex.MustParse(l))
	}
	resolve := func(i int) int {
		switch i {
		case -1:
			return SourceID
		case -2:
			return SinkID
		default:
			return ids[i]
		}
	}
	for _, e := range edges {
		g.AddEdge(resolve(e[0]), resolve(e[1]))
	}
	return g, ids
}

func TestTrySelfLoopRule(t *testing.T) {
	g, ids := buildGFA(t, []string{"a"}, [][2]int{{-1, 0}, {0, 0}, {0, -2}})
	if !g.TrySelfLoop() {
		t.Fatal("self-loop should fire")
	}
	if g.HasEdge(ids[0], ids[0]) {
		t.Error("self edge must be deleted")
	}
	if got := g.Label(ids[0]).String(); got != "a+" {
		t.Errorf("label = %q, want a+", got)
	}
	if g.TrySelfLoop() {
		t.Error("rule must not fire twice")
	}
}

func TestTryOptionalRule(t *testing.T) {
	// a -> b -> c with bypass a -> c: b becomes optional, bypass removed.
	g, ids := buildGFA(t, []string{"a", "b", "c"},
		[][2]int{{-1, 0}, {0, 1}, {1, 2}, {0, 2}, {2, -2}})
	if !g.TryOptional() {
		t.Fatal("optional should fire on b")
	}
	if got := g.Label(ids[1]).String(); got != "b?" {
		t.Errorf("label = %q, want b?", got)
	}
	if g.HasEdge(ids[0], ids[2]) {
		t.Error("bypass a->c must be removed")
	}
	if !g.HasEdge(ids[0], ids[1]) || !g.HasEdge(ids[1], ids[2]) {
		t.Error("chain edges must survive")
	}
}

func TestTryOptionalRequiresAllPredecessorsCovered(t *testing.T) {
	// d -> b without d -> c: optional on b must NOT fire.
	g, _ := buildGFA(t, []string{"a", "b", "c", "d"},
		[][2]int{{-1, 0}, {-1, 3}, {0, 1}, {3, 1}, {1, 2}, {0, 2}, {2, -2}})
	if g.TryOptional() {
		t.Fatal("optional must not fire when a predecessor lacks the bypass")
	}
}

func TestTryOptionalSkipsNullableLabels(t *testing.T) {
	g, _ := buildGFA(t, []string{"a", "b?", "c"},
		[][2]int{{-1, 0}, {0, 1}, {1, 2}, {0, 2}, {2, -2}})
	// b? is already nullable: no progress possible on it; a and c do not
	// qualify either.
	if g.TryOptional() {
		t.Fatal("optional must skip nullable labels")
	}
}

func TestTryConcatRule(t *testing.T) {
	g, ids := buildGFA(t, []string{"a", "b", "c"},
		[][2]int{{-1, 0}, {0, 1}, {1, 2}, {2, -2}})
	if !g.TryConcat() {
		t.Fatal("concat should fire")
	}
	if g.NumNodes() != 1 {
		t.Fatalf("expected one merged node, got %d", g.NumNodes())
	}
	for _, id := range g.Nodes() {
		if got := g.Label(id).String(); got != "a b c" {
			t.Errorf("label = %q, want a b c", got)
		}
	}
	_ = ids
}

func TestTryConcatRespectsDegrees(t *testing.T) {
	// b has two incoming edges: the chain a->b cannot merge.
	g, _ := buildGFA(t, []string{"a", "b", "c"},
		[][2]int{{-1, 0}, {-1, 2}, {0, 1}, {2, 1}, {1, -2}})
	if g.TryConcat() {
		t.Fatal("concat must not fire when the target has in-degree 2")
	}
}

func TestTryConcatBackEdgeBecomesSelfLoop(t *testing.T) {
	// a -> b with b -> a: merged node gets a self edge ((ab)+ after
	// self-loop).
	g, _ := buildGFA(t, []string{"a", "b"},
		[][2]int{{-1, 0}, {0, 1}, {1, 0}, {1, -2}})
	if !g.TryConcat() {
		t.Fatal("concat should fire")
	}
	var m int
	for _, id := range g.Nodes() {
		m = id
	}
	if !g.HasEdge(m, m) {
		t.Error("back edge must become a self edge")
	}
	if !g.TrySelfLoop() {
		t.Fatal("self-loop should now fire")
	}
	if got := g.Label(m).String(); got != "(a b)+" {
		t.Errorf("label = %q, want (a b)+", got)
	}
}

func TestTryDisjunctionCaseI(t *testing.T) {
	// a and b in parallel between src and sink: plain merge, no self edge.
	g, _ := buildGFA(t, []string{"a", "b"},
		[][2]int{{-1, 0}, {-1, 1}, {0, -2}, {1, -2}})
	if !g.TryDisjunction() {
		t.Fatal("disjunction should fire")
	}
	var m int
	for _, id := range g.Nodes() {
		m = id
	}
	if g.HasEdge(m, m) {
		t.Error("case (i) must not add a self edge")
	}
	if got := g.Label(m).String(); got != "a + b" {
		t.Errorf("label = %q, want a + b", got)
	}
}

func TestTryDisjunctionCaseII(t *testing.T) {
	// Fully interconnected a, b (incl. self loops): merge with self edge.
	g, _ := buildGFA(t, []string{"a", "b"},
		[][2]int{{-1, 0}, {-1, 1}, {0, 0}, {0, 1}, {1, 0}, {1, 1}, {0, -2}, {1, -2}})
	if !g.TryDisjunction() {
		t.Fatal("disjunction should fire")
	}
	var m int
	for _, id := range g.Nodes() {
		m = id
	}
	if !g.HasEdge(m, m) {
		t.Error("case (ii) must add a self edge")
	}
}

func TestTryDisjunctionRejectsPartialInterconnection(t *testing.T) {
	// a -> b but not b -> a and no self loops: neither case applies.
	g, _ := buildGFA(t, []string{"a", "b"},
		[][2]int{{-1, 0}, {-1, 1}, {0, 1}, {0, -2}, {1, -2}})
	if g.TryDisjunction() {
		t.Fatal("partial interconnection must not merge")
	}
}

func TestTryDisjunctionRejectsDifferentContexts(t *testing.T) {
	g, _ := buildGFA(t, []string{"a", "b", "c"},
		[][2]int{{-1, 0}, {-1, 1}, {0, -2}, {1, 2}, {2, -2}})
	if g.TryDisjunction() {
		t.Fatal("different successor sets must not merge")
	}
}

func TestDisjunctionWithClosureOnlySelfEdge(t *testing.T) {
	// a+ (repeatable, closure self edge) in parallel with c: case (i)
	// because no real internal edges exist; the + stays inside the union.
	g, _ := buildGFA(t, []string{"a+", "c"},
		[][2]int{{-1, 0}, {-1, 1}, {0, -2}, {1, -2}})
	if !g.TryDisjunction() {
		t.Fatal("disjunction should fire")
	}
	var m int
	for _, id := range g.Nodes() {
		m = id
	}
	if g.HasEdge(m, m) {
		t.Error("closure-only internal edges are case (i): no real self edge")
	}
	if got := g.Label(m).String(); got != "a+ + c" {
		t.Errorf("label = %q, want a+ + c", got)
	}
}
