package gfa

import (
	"math/rand"
	"testing"

	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
	"dtdinfer/internal/soa"
)

// Micro-benchmarks for the rewrite machinery: full rewriting of the
// paper's running automaton, closure computation, and rewriting of large
// random SOREs (the O(n^4) bound of Theorem 1 in practice).

func BenchmarkRewriteFigure1(b *testing.B) {
	a := soa.Infer([][]string{split("bacacdacde"), split("cbacdbacde"), split("abccaadcde")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rewrite(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	alpha := make([]string, 26)
	for i := range alpha {
		alpha[i] = string(rune('a' + i))
	}
	target := regextest.RandomSORE(rng, alpha, 5)
	g := FromSOA(soa.FromExpr(target))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Closure()
	}
}

func BenchmarkRewriteBySize(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		alpha := make([]string, n)
		for i := range alpha {
			alpha[i] = "s" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		}
		// A SORE using every symbol keeps the automaton size at n.
		rng := rand.New(rand.NewSource(int64(n)))
		var target *regex.Expr
		for {
			target = regextest.RandomSORE(rng, alpha, 6)
			if len(target.Symbols()) == n {
				break
			}
		}
		a := soa.FromExpr(target)
		b.Run(itoa(n)+"sym", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Rewrite(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
