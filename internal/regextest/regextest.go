// Package regextest provides deterministic random generators of regular
// expressions and sample strings, shared by the property-based tests of the
// inference packages.
package regextest

import (
	"math/rand"

	"dtdinfer/internal/regex"
)

// RandomExpr returns a random expression over the first k symbols of
// alphabet with at most the given depth. Symbols may repeat, so the result
// is not necessarily a SORE.
func RandomExpr(rng *rand.Rand, alphabet []string, depth int) *regex.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		return regex.Sym(alphabet[rng.Intn(len(alphabet))])
	}
	switch rng.Intn(6) {
	case 0:
		return regex.Opt(RandomExpr(rng, alphabet, depth-1))
	case 1:
		return regex.Plus(RandomExpr(rng, alphabet, depth-1))
	case 2:
		return regex.Star(RandomExpr(rng, alphabet, depth-1))
	case 3:
		n := 2 + rng.Intn(2)
		subs := make([]*regex.Expr, n)
		for i := range subs {
			subs[i] = RandomExpr(rng, alphabet, depth-1)
		}
		return regex.Concat(subs...)
	default:
		n := 2 + rng.Intn(2)
		subs := make([]*regex.Expr, n)
		for i := range subs {
			subs[i] = RandomExpr(rng, alphabet, depth-1)
		}
		return regex.Union(subs...)
	}
}

// RandomSORE returns a random single occurrence expression over a random
// non-empty subset of the alphabet: each symbol is used at most once.
func RandomSORE(rng *rand.Rand, alphabet []string, depth int) *regex.Expr {
	perm := rng.Perm(len(alphabet))
	n := 1 + rng.Intn(len(alphabet))
	syms := make([]string, n)
	for i := 0; i < n; i++ {
		syms[i] = alphabet[perm[i]]
	}
	e, _ := buildSORE(rng, syms, depth)
	return e
}

func buildSORE(rng *rand.Rand, syms []string, depth int) (*regex.Expr, []string) {
	if len(syms) == 1 || depth <= 0 {
		e := regex.Sym(syms[0])
		rest := syms[1:]
		return wrapRandomQuant(rng, e), rest
	}
	switch rng.Intn(5) {
	case 0, 1: // concat
		n := 2 + rng.Intn(2)
		var subs []*regex.Expr
		rest := syms
		for i := 0; i < n && len(rest) > 0; i++ {
			var e *regex.Expr
			e, rest = buildSORE(rng, rest, depth-1)
			subs = append(subs, e)
		}
		return wrapRandomQuant(rng, regex.Concat(subs...)), rest
	case 2, 3: // union
		n := 2 + rng.Intn(2)
		var subs []*regex.Expr
		rest := syms
		for i := 0; i < n && len(rest) > 0; i++ {
			var e *regex.Expr
			e, rest = buildSORE(rng, rest, depth-1)
			subs = append(subs, e)
		}
		return wrapRandomQuant(rng, regex.Union(subs...)), rest
	default:
		e, rest := buildSORE(rng, syms, depth-1)
		return wrapRandomQuant(rng, e), rest
	}
}

func wrapRandomQuant(rng *rand.Rand, e *regex.Expr) *regex.Expr {
	switch rng.Intn(6) {
	case 0:
		return regex.Opt(e)
	case 1:
		return regex.Plus(e)
	case 2:
		return regex.Star(e)
	default:
		return e
	}
}

// RandomCHARE returns a random chain regular expression over a random
// non-empty subset of the alphabet.
func RandomCHARE(rng *rand.Rand, alphabet []string) *regex.Expr {
	perm := rng.Perm(len(alphabet))
	n := 1 + rng.Intn(len(alphabet))
	var factors []*regex.Expr
	i := 0
	for i < n {
		k := 1 + rng.Intn(3)
		if i+k > n {
			k = n - i
		}
		subs := make([]*regex.Expr, k)
		for j := 0; j < k; j++ {
			subs[j] = regex.Sym(alphabet[perm[i+j]])
		}
		i += k
		factors = append(factors, wrapRandomQuant(rng, regex.Union(subs...)))
	}
	return regex.Concat(factors...)
}

// Sample draws a random string from L(e). Repetition lengths follow a
// geometric-ish distribution with the given continuation probability num/den.
func Sample(rng *rand.Rand, e *regex.Expr, num, den int) []string {
	var out []string
	sampleInto(rng, e, num, den, &out)
	return out
}

func sampleInto(rng *rand.Rand, e *regex.Expr, num, den int, out *[]string) {
	switch e.Op {
	case regex.OpSymbol:
		*out = append(*out, e.Name)
	case regex.OpConcat:
		for _, s := range e.Subs {
			sampleInto(rng, s, num, den, out)
		}
	case regex.OpUnion:
		sampleInto(rng, e.Subs[rng.Intn(len(e.Subs))], num, den, out)
	case regex.OpOpt:
		if rng.Intn(2) == 0 {
			sampleInto(rng, e.Sub(), num, den, out)
		}
	case regex.OpPlus:
		sampleInto(rng, e.Sub(), num, den, out)
		for rng.Intn(den) < num {
			sampleInto(rng, e.Sub(), num, den, out)
		}
	case regex.OpStar:
		for rng.Intn(den) < num {
			sampleInto(rng, e.Sub(), num, den, out)
		}
	case regex.OpRepeat:
		n := e.Min
		if e.Max == regex.Unbounded {
			for rng.Intn(den) < num {
				n++
			}
		} else if e.Max > e.Min {
			n += rng.Intn(e.Max - e.Min + 1)
		}
		for i := 0; i < n; i++ {
			sampleInto(rng, e.Sub(), num, den, out)
		}
	}
}
