package ktest

import (
	"math/rand"
	"testing"

	"dtdinfer/internal/soa"
)

func split(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		for _, r := range w {
			out[i] = append(out[i], string(r))
		}
	}
	return out
}

func randomSample(rng *rand.Rand, alpha []string, n, maxLen int) [][]string {
	out := make([][]string, n)
	for i := range out {
		w := make([]string, rng.Intn(maxLen+1))
		for j := range w {
			w[j] = alpha[rng.Intn(len(alpha))]
		}
		out[i] = w
	}
	return out
}

func TestContainsSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alpha := []string{"a", "b", "c"}
	for k := 2; k <= 5; k++ {
		for i := 0; i < 50; i++ {
			sample := randomSample(rng, alpha, 8, 10)
			l := Infer(k, sample)
			for _, w := range sample {
				if !l.Member(w) {
					t.Fatalf("k=%d: sample string %v rejected", k, w)
				}
			}
		}
	}
}

// The k-testable hierarchy: on the same sample, larger k infers a smaller
// (more precise) language.
func TestHierarchyMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	alpha := []string{"a", "b", "c"}
	for i := 0; i < 60; i++ {
		sample := randomSample(rng, alpha, 10, 10)
		l2, l3, l4 := Infer(2, sample), Infer(3, sample), Infer(4, sample)
		for j := 0; j < 200; j++ {
			w := randomSample(rng, alpha, 1, 9)[0]
			if l4.Member(w) && !l3.Member(w) {
				t.Fatalf("L_4 ⊄ L_3 on %v", w)
			}
			if l3.Member(w) && !l2.Member(w) {
				t.Fatalf("L_3 ⊄ L_2 on %v", w)
			}
		}
	}
}

// k = 2 agrees exactly with the single occurrence automaton of
// internal/soa: both implement the paper's 2-testable inference.
func TestKEquals2AgreesWithSOA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alpha := []string{"a", "b", "c", "d"}
	for i := 0; i < 80; i++ {
		sample := randomSample(rng, alpha, 8, 8)
		l := Infer(2, sample)
		a := soa.Infer(sample)
		for j := 0; j < 300; j++ {
			w := randomSample(rng, alpha, 1, 7)[0]
			if l.Member(w) != a.Member(w) {
				t.Fatalf("k=2 and SOA disagree on %v (sample %v): ktest=%v soa=%v",
					w, sample, l.Member(w), a.Member(w))
			}
		}
	}
}

// Larger k generalizes less: the strict containment is witnessed on a
// concrete case. From ab and bc, the 2-testable closure contains abc; the
// 3-testable one does not.
func TestPrecisionExample(t *testing.T) {
	sample := split("ab", "bc")
	l2, l3 := Infer(2, sample), Infer(3, sample)
	abc := []string{"a", "b", "c"}
	if !l2.Member(abc) {
		t.Error("2-testable closure should contain abc")
	}
	if l3.Member(abc) {
		t.Error("3-testable closure should not contain abc")
	}
}

func TestShortStrings(t *testing.T) {
	l := Infer(3, split("a", "xyz"))
	if !l.Member(split("a")[0]) {
		t.Error("observed short string rejected")
	}
	if l.Member(split("b")[0]) {
		t.Error("unobserved short string accepted")
	}
	// ε was not observed.
	if l.Member(nil) {
		t.Error("ε accepted without observation")
	}
	l.AddString(nil)
	if !l.Member(nil) {
		t.Error("ε rejected after observation")
	}
}

func TestMergeEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	alpha := []string{"a", "b", "c"}
	s1 := randomSample(rng, alpha, 6, 8)
	s2 := randomSample(rng, alpha, 6, 8)
	batch := Infer(3, append(append([][]string{}, s1...), s2...))
	inc := Infer(3, s1)
	inc.Merge(Infer(3, s2))
	for j := 0; j < 500; j++ {
		w := randomSample(rng, alpha, 1, 8)[0]
		if batch.Member(w) != inc.Member(w) {
			t.Fatalf("merge differs from batch on %v", w)
		}
	}
	if batch.Total() != inc.Total() || batch.Size() != inc.Size() {
		t.Error("summary counters differ")
	}
}

func TestInvalidK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for k < 2")
		}
	}()
	New(1)
}

func TestMergeDifferentKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(2).Merge(New(3))
}
