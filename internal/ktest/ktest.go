// Package ktest generalizes the Section 4 substrate from 2-testable to
// k-testable languages: the inference algorithm of Garcia and Vidal that
// 2T-INF instantiates works for any window size k, learning the smallest
// language over which membership is decided by the (k-1)-length prefix,
// the (k-1)-length suffix, and the set of k-grams. Larger k trades
// generalization for precision — the quantitative version of the paper's
// reason to stop at k = 2, where the inferred automaton is single
// occurrence and rewritable into a SORE; the tests demonstrate the
// monotone hierarchy L_{k+1} ⊆ L_k and the agreement of k = 2 with the
// SOA of internal/soa.
package ktest

import (
	"fmt"
	"strings"
)

// Language is an inferred k-testable language.
type Language struct {
	// K is the window size (k >= 2).
	K int

	prefixes map[string]bool // observed prefixes of length k-1
	suffixes map[string]bool // observed suffixes of length k-1
	grams    map[string]bool // observed k-grams
	shorts   map[string]bool // observed strings shorter than k-1, verbatim
	total    int
}

const sep = "\x00"

func key(w []string) string { return strings.Join(w, sep) }

// New returns an empty k-testable language (accepting nothing).
func New(k int) *Language {
	if k < 2 {
		panic(fmt.Sprintf("ktest: k must be at least 2, got %d", k))
	}
	return &Language{
		K:        k,
		prefixes: map[string]bool{},
		suffixes: map[string]bool{},
		grams:    map[string]bool{},
		shorts:   map[string]bool{},
	}
}

// Infer learns the smallest k-testable language containing the sample.
func Infer(k int, sample [][]string) *Language {
	l := New(k)
	for _, w := range sample {
		l.AddString(w)
	}
	return l
}

// AddString extends the language with one sample string.
func (l *Language) AddString(w []string) {
	l.total++
	m := l.K - 1
	if len(w) < m {
		l.shorts[key(w)] = true
		return
	}
	l.prefixes[key(w[:m])] = true
	l.suffixes[key(w[len(w)-m:])] = true
	for i := 0; i+l.K <= len(w); i++ {
		l.grams[key(w[i:i+l.K])] = true
	}
}

// Member reports whether w belongs to the language.
func (l *Language) Member(w []string) bool {
	m := l.K - 1
	if len(w) < m {
		return l.shorts[key(w)]
	}
	if !l.prefixes[key(w[:m])] || !l.suffixes[key(w[len(w)-m:])] {
		return false
	}
	for i := 0; i+l.K <= len(w); i++ {
		if !l.grams[key(w[i:i+l.K])] {
			return false
		}
	}
	return true
}

// Merge folds another language of the same k into l (incremental
// inference).
func (l *Language) Merge(o *Language) {
	if l.K != o.K {
		panic("ktest: merging languages of different k")
	}
	for _, pair := range []struct{ dst, src map[string]bool }{
		{l.prefixes, o.prefixes},
		{l.suffixes, o.suffixes},
		{l.grams, o.grams},
		{l.shorts, o.shorts},
	} {
		for g := range pair.src {
			pair.dst[g] = true
		}
	}
	l.total += o.total
}

// Total returns the number of strings consumed.
func (l *Language) Total() int { return l.total }

// Size returns the number of stored facts (prefixes, suffixes, k-grams,
// short strings) — the summary footprint, O(|sample alphabet|^k) at worst.
func (l *Language) Size() int {
	return len(l.prefixes) + len(l.suffixes) + len(l.grams) + len(l.shorts)
}
