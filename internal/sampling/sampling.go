// Package sampling provides reservoir sampling, the subsampling method the
// paper uses in Section 8.2 to measure how many example strings each
// algorithm needs ("generating 200 subsamples using reservoir sampling for
// each size").
package sampling

import "math/rand"

// Reservoir draws a uniform random subsample of size k from the population
// using Vitter's algorithm R. When k >= len(population) a copy of the whole
// population is returned. The population is not modified.
func Reservoir[T any](rng *rand.Rand, population []T, k int) []T {
	if k >= len(population) {
		return append([]T{}, population...)
	}
	out := make([]T, k)
	copy(out, population[:k])
	for i := k; i < len(population); i++ {
		j := rng.Intn(i + 1)
		if j < k {
			out[j] = population[i]
		}
	}
	return out
}

// ReservoirEnsuring draws subsamples until one satisfies the predicate ok,
// giving up after maxTries and returning the last draw. The paper's
// methodology "ensures that the subsamples contain all alphabet symbols of
// the target expressions for fair comparisons"; the predicate expresses
// that condition.
func ReservoirEnsuring[T any](rng *rand.Rand, population []T, k int,
	ok func([]T) bool, maxTries int) []T {
	var out []T
	for i := 0; i < maxTries; i++ {
		out = Reservoir(rng, population, k)
		if ok(out) {
			return out
		}
	}
	return out
}

// CoversAlphabet returns a predicate checking that a subsample of strings
// mentions every symbol of the alphabet.
func CoversAlphabet(alphabet []string) func([][]string) bool {
	return func(sample [][]string) bool {
		seen := map[string]bool{}
		for _, w := range sample {
			for _, s := range w {
				seen[s] = true
			}
		}
		for _, a := range alphabet {
			if !seen[a] {
				return false
			}
		}
		return true
	}
}
