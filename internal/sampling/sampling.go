// Package sampling provides reservoir sampling, the subsampling method the
// paper uses in Section 8.2 to measure how many example strings each
// algorithm needs ("generating 200 subsamples using reservoir sampling for
// each size").
package sampling

import (
	"math/rand"

	"dtdinfer/internal/sample"
)

// Reservoir draws a uniform random subsample of size k from the population
// using Vitter's algorithm R. When k >= len(population) a copy of the whole
// population is returned. The population is not modified.
func Reservoir[T any](rng *rand.Rand, population []T, k int) []T {
	if k >= len(population) {
		return append([]T{}, population...)
	}
	out := make([]T, k)
	copy(out, population[:k])
	for i := k; i < len(population); i++ {
		j := rng.Intn(i + 1)
		if j < k {
			out[j] = population[i]
		}
	}
	return out
}

// ReservoirEnsuring draws subsamples until one satisfies the predicate ok,
// giving up after maxTries and returning the last draw. The paper's
// methodology "ensures that the subsamples contain all alphabet symbols of
// the target expressions for fair comparisons"; the predicate expresses
// that condition.
func ReservoirEnsuring[T any](rng *rand.Rand, population []T, k int,
	ok func([]T) bool, maxTries int) []T {
	var out []T
	for i := 0; i < maxTries; i++ {
		out = Reservoir(rng, population, k)
		if ok(out) {
			return out
		}
	}
	return out
}

// CoversAlphabet returns a predicate checking that a subsample of strings
// mentions every symbol of the alphabet. The alphabet set is built once at
// construction, not per draw — ReservoirEnsuring calls the predicate up to
// maxTries times — and each draw scans with an early exit once every
// symbol has been found.
func CoversAlphabet(alphabet []string) func([][]string) bool {
	need := make(map[string]bool, len(alphabet))
	for _, a := range alphabet {
		need[a] = true
	}
	return func(subsample [][]string) bool {
		missing := len(need)
		seen := make(map[string]bool, len(need))
		for _, w := range subsample {
			for _, s := range w {
				if need[s] && !seen[s] {
					seen[s] = true
					missing--
					if missing == 0 {
						return true
					}
				}
			}
		}
		return missing == 0
	}
}

// CoversAlphabetSet is CoversAlphabet for counted samples: a sample.Set
// interns exactly the symbols occurring in its sequences, so coverage is
// one table lookup per alphabet symbol, independent of sample size.
func CoversAlphabetSet(alphabet []string) func(*sample.Set) bool {
	return func(s *sample.Set) bool {
		for _, a := range alphabet {
			if _, ok := s.Lookup(a); !ok {
				return false
			}
		}
		return true
	}
}
