package sampling

import (
	"math/rand"
	"testing"
)

func TestReservoirSizeAndMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop := make([]int, 100)
	for i := range pop {
		pop[i] = i
	}
	sub := Reservoir(rng, pop, 10)
	if len(sub) != 10 {
		t.Fatalf("size = %d", len(sub))
	}
	seen := map[int]bool{}
	for _, x := range sub {
		if x < 0 || x >= 100 {
			t.Fatalf("element %d not from population", x)
		}
		if seen[x] {
			t.Fatalf("duplicate element %d (sampling without replacement)", x)
		}
		seen[x] = true
	}
}

func TestReservoirWholePopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop := []int{1, 2, 3}
	sub := Reservoir(rng, pop, 10)
	if len(sub) != 3 {
		t.Fatalf("size = %d", len(sub))
	}
	sub[0] = 99
	if pop[0] == 99 {
		t.Fatal("Reservoir must copy, not alias")
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 10 elements should appear in a size-5 subsample about half
	// the time.
	rng := rand.New(rand.NewSource(3))
	pop := make([]int, 10)
	for i := range pop {
		pop[i] = i
	}
	counts := make([]int, 10)
	const trials = 4000
	for i := 0; i < trials; i++ {
		for _, x := range Reservoir(rng, pop, 5) {
			counts[x]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("element %d sampled with frequency %.3f, want ~0.5", i, frac)
		}
	}
}

func TestReservoirEnsuring(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pop := [][]string{{"a"}, {"a"}, {"a"}, {"a"}, {"b"}}
	ok := CoversAlphabet([]string{"a", "b"})
	hit := 0
	for i := 0; i < 50; i++ {
		sub := ReservoirEnsuring(rng, pop, 2, ok, 200)
		if ok(sub) {
			hit++
		}
	}
	if hit < 45 {
		t.Errorf("ReservoirEnsuring rarely satisfied the predicate: %d/50", hit)
	}
}

func TestCoversAlphabet(t *testing.T) {
	ok := CoversAlphabet([]string{"a", "b"})
	if !ok([][]string{{"a", "b"}}) {
		t.Error("covering sample rejected")
	}
	if ok([][]string{{"a"}}) {
		t.Error("non-covering sample accepted")
	}
	if !CoversAlphabet(nil)([][]string{}) {
		t.Error("empty alphabet is always covered")
	}
}
