package intern

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestTableAssignsDenseIDsInFirstSeenOrder(t *testing.T) {
	tab := NewTable()
	for i, s := range []string{"b", "a", "c", "a", "b", "d"} {
		id := tab.Intern(s)
		want := map[int]int{0: 0, 1: 1, 2: 2, 3: 1, 4: 0, 5: 3}[i]
		if id != want {
			t.Errorf("Intern #%d (%q) = %d, want %d", i, s, id, want)
		}
	}
	if tab.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tab.Len())
	}
	for id, want := range []string{"b", "a", "c", "d"} {
		if got := tab.Name(id); got != want {
			t.Errorf("Name(%d) = %q, want %q", id, got, want)
		}
	}
	if id, ok := tab.Lookup("c"); !ok || id != 2 {
		t.Errorf("Lookup(c) = %d, %v", id, ok)
	}
	if _, ok := tab.Lookup("zz"); ok {
		t.Error("Lookup of unknown string succeeded")
	}
}

func TestTableCloneIsIndependent(t *testing.T) {
	tab := NewTable()
	tab.Intern("x")
	c := tab.Clone()
	c.Intern("y")
	if tab.Len() != 1 || c.Len() != 2 {
		t.Fatalf("lens = %d, %d", tab.Len(), c.Len())
	}
	if _, ok := tab.Lookup("y"); ok {
		t.Error("clone mutated original")
	}
}

func TestBitsetSetHasForEach(t *testing.T) {
	var b Bitset
	members := []int{0, 1, 63, 64, 65, 200, 1000}
	for _, m := range members {
		b.Set(m)
	}
	for _, m := range members {
		if !b.Has(m) {
			t.Errorf("Has(%d) = false", m)
		}
	}
	for _, m := range []int{2, 62, 66, 199, 201, 999, 1001, 5000} {
		if b.Has(m) {
			t.Errorf("Has(%d) = true", m)
		}
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if !sort.IntsAreSorted(got) {
		t.Errorf("ForEach not ascending: %v", got)
	}
	if len(got) != len(members) {
		t.Fatalf("ForEach visited %v, want %v", got, members)
	}
	for i := range got {
		if got[i] != members[i] {
			t.Fatalf("ForEach visited %v, want %v", got, members)
		}
	}
}

func TestBitsetRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var b Bitset
	ref := map[int]bool{}
	for i := 0; i < 2000; i++ {
		n := rng.Intn(512)
		b.Set(n)
		ref[n] = true
	}
	count := 0
	b.ForEach(func(i int) {
		if !ref[i] {
			t.Fatalf("ForEach yielded non-member %d", i)
		}
		count++
	})
	if count != len(ref) {
		t.Fatalf("ForEach count = %d, want %d", count, len(ref))
	}
	for i := 0; i < 512; i++ {
		if b.Has(i) != ref[i] {
			t.Fatalf("Has(%d) = %v, want %v", i, b.Has(i), ref[i])
		}
	}
}

func TestRemapZeroValueAndGrowth(t *testing.T) {
	var r Remap
	if got := r.Get(0); got != -1 {
		t.Errorf("Get on zero Remap = %d, want -1", got)
	}
	if got := r.Get(1000); got != -1 {
		t.Errorf("Get(1000) on zero Remap = %d, want -1", got)
	}
	r.Set(5, 42)
	if got := r.Get(5); got != 42 {
		t.Errorf("Get(5) = %d, want 42", got)
	}
	for _, old := range []int32{0, 1, 4, 6} {
		if got := r.Get(old); got != -1 {
			t.Errorf("Get(%d) = %d, want -1 (unresolved)", old, got)
		}
	}
	r.Set(2, 7)
	if got := r.Get(5); got != 42 {
		t.Errorf("Get(5) after unrelated Set = %d, want 42", got)
	}
	r.Reset()
	for _, old := range []int32{0, 2, 5, 100} {
		if got := r.Get(old); got != -1 {
			t.Errorf("Get(%d) after Reset = %d, want -1", old, got)
		}
	}
}

func TestTableResetKeepsStorageEmptiesContent(t *testing.T) {
	tab := NewTable()
	tab.Intern("a")
	tab.Intern("b")
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", tab.Len())
	}
	if _, ok := tab.Lookup("a"); ok {
		t.Error("Lookup(a) still resolves after Reset")
	}
	if id := tab.Intern("c"); id != 0 {
		t.Errorf("first Intern after Reset = %d, want 0", id)
	}
}

// TestNamesExportImportRoundTrip pins the serialization boundary: a
// table rebuilt from its dense-ID export is indistinguishable from the
// original, including every ID assignment and the next-free-ID.
func TestNamesExportImportRoundTrip(t *testing.T) {
	tab := NewTable()
	for _, s := range []string{"beta", "alpha", "gamma", "alpha", "delta"} {
		tab.Intern(s)
	}
	names := tab.Names()
	want := []string{"beta", "alpha", "gamma", "delta"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	// The export is a copy: mutating it must not touch the table.
	names[0] = "mutated"
	if tab.Name(0) != "beta" {
		t.Fatal("Names export aliases table storage")
	}
	got, err := NewTableFromNames(tab.Names())
	if err != nil {
		t.Fatalf("NewTableFromNames: %v", err)
	}
	if !reflect.DeepEqual(got, tab) {
		t.Fatalf("imported table differs from original")
	}
	if id := got.Intern("epsilon"); id != 4 {
		t.Fatalf("next ID after import = %d, want 4", id)
	}
}

func TestNewTableFromNamesRejectsDuplicates(t *testing.T) {
	if _, err := NewTableFromNames([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestNewTableFromNamesEmpty(t *testing.T) {
	tab, err := NewTableFromNames(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tab.Len())
	}
	if id := tab.Intern("first"); id != 0 {
		t.Fatalf("first Intern = %d, want 0", id)
	}
}
