// Package intern provides dense integer interning of element-name
// strings, plus the bitset backing interned adjacency relations. The
// automaton summaries (soa, crx) key their hot-path state by these dense
// IDs instead of by strings, which turns nested map churn into slice
// indexing and makes per-string accumulation allocation-free.
package intern

import (
	"fmt"
	"math/bits"
)

// Table assigns dense integer IDs (0, 1, 2, ...) to strings in the order
// they are first interned, and maps back from ID to string. The zero
// Table is not usable; call NewTable.
type Table struct {
	ids   map[string]int
	names []string
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{ids: map[string]int{}}
}

// Intern returns the ID of s, assigning the next free ID when s has not
// been seen before.
func (t *Table) Intern(s string) int {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := len(t.names)
	t.ids[s] = id
	t.names = append(t.names, s)
	return id
}

// InternBytes is Intern for a byte-slice key. The repeat path — a name
// seen before — is allocation-free: the compiler optimizes the
// map[string]int lookup keyed by string(b) into a no-copy probe, and the
// canonical string is materialized only on first sight.
func (t *Table) InternBytes(b []byte) int {
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	s := string(b)
	id := len(t.names)
	t.ids[s] = id
	t.names = append(t.names, s)
	return id
}

// Lookup returns the ID of s without interning it.
func (t *Table) Lookup(s string) (int, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// Reset empties the table for reuse, keeping the allocated map and slice.
func (t *Table) Reset() {
	clear(t.ids)
	t.names = t.names[:0]
}

// Name returns the string interned at id. It panics on an unassigned id.
func (t *Table) Name(id int) string { return t.names[id] }

// Len returns the number of interned strings; valid IDs are [0, Len).
func (t *Table) Len() int { return len(t.names) }

// Names returns a copy of the interned strings in dense-ID order:
// Names()[id] == Name(id). It is the export half of the serialization
// boundary — writing this slice and rebuilding with NewTableFromNames
// reproduces the table exactly, including every ID assignment.
func (t *Table) Names() []string {
	return append([]string(nil), t.names...)
}

// NewTableFromNames rebuilds a table from a dense-ID-order export, the
// import half of the serialization boundary. IDs assign in slice order,
// so the result is identical to interning the names one by one. A
// duplicate name is rejected: it cannot arise from a Names export, so
// it marks a corrupt or hand-forged serialization.
func NewTableFromNames(names []string) (*Table, error) {
	t := &Table{
		ids:   make(map[string]int, len(names)),
		names: append([]string(nil), names...),
	}
	for id, s := range t.names {
		if _, dup := t.ids[s]; dup {
			return nil, fmt.Errorf("intern: duplicate name %q in table import", s)
		}
		t.ids[s] = id
	}
	return t, nil
}

// Clone returns an independent copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{
		ids:   make(map[string]int, len(t.ids)),
		names: append([]string(nil), t.names...),
	}
	for s, id := range t.ids {
		c.ids[s] = id
	}
	return c
}

// Remap is a compact, growable translation from one dense ID space into
// another: remapping corpus commits resolve a worker-local symbol ID to
// its ID in a shared corpus-level table exactly once, then every later
// occurrence is a slice index. The zero value is ready to use; unresolved
// entries read as -1.
//
// This is the merge half of the two-table interning design: workers
// intern into private Tables with no synchronization at all, and the
// single-threaded commit walks staged shard state in deterministic order,
// filling one Remap per (worker, target) pair. Strings are touched only
// on the first sight of a name corpus-wide; every repeat — the
// overwhelming majority on a real corpus — is remap[id].
type Remap struct {
	ids []int32
}

// Get returns the translation of old, or -1 when old is unresolved.
func (r *Remap) Get(old int32) int32 {
	if int(old) >= len(r.ids) {
		return -1
	}
	return r.ids[old]
}

// Set records the translation of old, growing the table as needed.
func (r *Remap) Set(old, new int32) {
	for len(r.ids) <= int(old) {
		r.ids = append(r.ids, -1)
	}
	r.ids[old] = new
}

// Reset forgets every translation, keeping the allocated storage.
func (r *Remap) Reset() {
	for i := range r.ids {
		r.ids[i] = -1
	}
}

// Bitset is a growable set of small non-negative integers.
type Bitset []uint64

// Set adds i to the set, growing the backing slice as needed.
func (b *Bitset) Set(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << uint(i&63)
}

// Has reports whether i is in the set.
func (b Bitset) Has(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<uint(i&63)) != 0
}

// Clear removes i from the set.
func (b Bitset) Clear(i int) {
	w := i >> 6
	if w < len(b) {
		b[w] &^= 1 << uint(i&63)
	}
}

// Empty reports whether the set has no members.
func (b Bitset) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Members returns the members in ascending order.
func (b Bitset) Members() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls f for every member in ascending order.
func (b Bitset) ForEach(f func(i int)) {
	for w, word := range b {
		for word != 0 {
			f(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// Until calls f on members in ascending order, stopping early when f
// returns false; it reports whether every call returned true.
func (b Bitset) Until(f func(i int) bool) bool {
	for w, word := range b {
		for word != 0 {
			if !f(w<<6 + bits.TrailingZeros64(word)) {
				return false
			}
			word &= word - 1
		}
	}
	return true
}

// SubsetOf reports whether every member of b is in o.
func (b Bitset) SubsetOf(o Bitset) bool {
	for w, word := range b {
		var ow uint64
		if w < len(o) {
			ow = o[w]
		}
		if word&^ow != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share a member.
func (b Bitset) Intersects(o Bitset) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for w := 0; w < n; w++ {
		if b[w]&o[w] != 0 {
			return true
		}
	}
	return false
}

// DiffCount returns |b \ o|, the number of members of b missing from o.
func (b Bitset) DiffCount(o Bitset) int {
	n := 0
	for w, word := range b {
		var ow uint64
		if w < len(o) {
			ow = o[w]
		}
		n += bits.OnesCount64(word &^ ow)
	}
	return n
}
