// Package crx implements the CRX algorithm (Chain Regular eXpression
// extractor) of Section 7 of the paper. CRX infers CHAREs — concatenations
// of factors (a1+...+ak) with an optional ?, + or * — directly from the
// sample, without the intermediate automaton of iDTD, which gives it the
// strong generalization ability the paper demonstrates on very small
// samples: for (a1+...+an)*, O(n) example 2-grams suffice where iDTD needs
// about n².
//
// The algorithm computes the pre-order a →W b ("a immediately precedes b in
// some string"), contracts its strongly connected components into
// equivalence classes, merges singleton classes with identical neighborhoods
// in the Hasse diagram, linearizes the classes by a topological sort, and
// assigns each class a quantifier from the per-string occurrence statistics
// (Algorithm 3, lines 5-13).
package crx

import (
	"context"
	"errors"
	"sort"
	"strconv"

	"dtdinfer/internal/gfa"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
)

// ErrCycle is reported when the class DAG — acyclic by construction on
// well-formed summaries — contains a cycle, which can only arise from a
// corrupted or adversarial summary state. Callers degrade instead of
// crashing.
var ErrCycle = errors.New("crx: cycle in class DAG")

// Result carries the inferred CHARE and the intermediate structures, which
// the experiments inspect.
type Result struct {
	// Expr is the inferred CHARE with W ⊆ L(Expr) (Theorem 3).
	Expr *regex.Expr
	// Classes are the factor symbol sets in the emitted order.
	Classes [][]string
}

// Infer runs CRX on a sample of strings. It fails with gfa.ErrEmpty when
// the sample contains no symbols at all.
func Infer(sample [][]string) (*Result, error) {
	st := NewState()
	for _, w := range sample {
		st.AddString(w)
	}
	return st.Infer()
}

// InferSample runs CRX on a counted, interned sample: multiplicities feed
// the quantifier statistics directly, each unique sequence is summarized
// once, and the result is identical to Infer on the expanded strings.
func InferSample(s *smp.Set) (*Result, error) {
	st := NewState()
	st.AddSample(s)
	return st.Infer()
}

// InferSampleContext is InferSample under a context: class construction
// checks for cancellation between its phases and inside the topological
// sort.
func InferSampleContext(ctx context.Context, s *smp.Set) (*Result, error) {
	st := NewState()
	st.AddSample(s)
	return st.InferContext(ctx)
}

// Infer computes the CHARE from the accumulated summary.
func (st *State) Infer() (*Result, error) {
	return st.InferContext(context.Background())
}

// InferContext is Infer with cooperative cancellation: the phases of class
// construction — SCC contraction, Hasse-diagram building, singleton
// merging, topological sort — each start with a checkpoint, and the
// quadratic sort checks once per emitted class.
func (st *State) InferContext(ctx context.Context) (*Result, error) {
	syms := st.symbols()
	if len(syms) == 0 {
		return nil, gfa.ErrEmpty
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	classes := st.equivalenceClasses(syms)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := newClassGraph(st, classes)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.mergeSingletons()
	order, err := g.topoSort(ctx, st)
	if err != nil {
		return nil, err
	}
	factors := make([]*regex.Expr, 0, len(order))
	resultClasses := make([][]string, 0, len(order))
	for _, c := range order {
		factors = append(factors, st.factor(g.classes[c]))
		resultClasses = append(resultClasses, g.classes[c])
	}
	return &Result{
		Expr:    regex.Simplify(regex.Concat(factors...)),
		Classes: resultClasses,
	}, nil
}

// equivalenceClasses returns the ≈W classes: the strongly connected
// components of the →W digraph, each as a sorted symbol slice.
func (st *State) equivalenceClasses(syms []string) [][]string {
	// Tarjan's algorithm, iterative over the symbol graph.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		sym   string
		succs []string
		i     int
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{sym: root, succs: st.successors(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{sym: w, succs: st.successors(w)})
				} else if onStack[w] && index[w] < low[f.sym] {
					low[f.sym] = index[w]
				}
				continue
			}
			if low[f.sym] == index[f.sym] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.sym {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.sym] < low[parent.sym] {
					low[parent.sym] = low[f.sym]
				}
			}
		}
	}
	for _, s := range syms {
		if _, seen := index[s]; !seen {
			visit(s)
		}
	}
	return sccs
}

// factor builds the regular expression factor for one class according to
// lines 5-13 of Algorithm 3.
func (st *State) factor(class []string) *regex.Expr {
	subs := make([]*regex.Expr, len(class))
	for i, s := range class {
		subs[i] = regex.Sym(s)
	}
	base := regex.Union(subs...)
	n0, _, n2 := st.classCounts(class)
	switch {
	case n0 == 0 && n2 == 0:
		// Every string contains exactly one occurrence.
		return base
	case n2 == 0:
		// Every string contains at most one occurrence.
		return regex.Opt(base)
	case n0 == 0:
		// Every string contains at least one, some at least two.
		return regex.Plus(base)
	default:
		return regex.Star(base)
	}
}

// classGraph is the Hasse diagram over the equivalence classes, mutated by
// the singleton-merging step.
type classGraph struct {
	classes [][]string
	pred    []map[int]bool
	succ    []map[int]bool
	alive   []bool
}

func newClassGraph(st *State, classes [][]string) *classGraph {
	classOf := map[string]int{}
	for i, c := range classes {
		for _, s := range c {
			classOf[s] = i
		}
	}
	n := len(classes)
	// Direct edges between distinct classes.
	direct := make([]map[int]bool, n)
	for i := range direct {
		direct[i] = map[int]bool{}
	}
	st.forEachEdge(func(a, b string) {
		ca, cb := classOf[a], classOf[b]
		if ca != cb {
			direct[ca][cb] = true
		}
	})
	// Transitive closure on the DAG of classes, then transitive reduction
	// to obtain the Hasse diagram.
	reach := make([]map[int]bool, n)
	var dfs func(u int) map[int]bool
	dfs = func(u int) map[int]bool {
		if reach[u] != nil {
			return reach[u]
		}
		r := map[int]bool{}
		reach[u] = r
		for v := range direct[u] {
			r[v] = true
			for w := range dfs(v) {
				r[w] = true
			}
		}
		return r
	}
	for u := 0; u < n; u++ {
		dfs(u)
	}
	g := &classGraph{
		classes: classes,
		pred:    make([]map[int]bool, n),
		succ:    make([]map[int]bool, n),
		alive:   make([]bool, n),
	}
	for i := range g.pred {
		g.pred[i] = map[int]bool{}
		g.succ[i] = map[int]bool{}
		g.alive[i] = true
	}
	for u := 0; u < n; u++ {
		for v := range direct[u] {
			// A Hasse edge is a direct edge not implied transitively.
			redundant := false
			for w := range direct[u] {
				if w != v && reach[w][v] {
					redundant = true
					break
				}
			}
			if !redundant {
				g.succ[u][v] = true
				g.pred[v][u] = true
			}
		}
	}
	return g
}

// mergeSingletons repeatedly merges maximal sets of singleton classes with
// identical predecessor and successor sets in the Hasse diagram (Algorithm
// 3, lines 2-3). Merged classes are unions of incomparable singletons, so
// they become disjunction factors like (d + f).
func (g *classGraph) mergeSingletons() {
	for {
		groups := map[string][]int{}
		for i := range g.classes {
			if !g.alive[i] || len(g.classes[i]) != 1 {
				continue
			}
			groups[g.signature(i)] = append(groups[g.signature(i)], i)
		}
		merged := false
		for _, group := range groups {
			if len(group) < 2 {
				continue
			}
			sort.Ints(group)
			g.merge(group)
			merged = true
		}
		if !merged {
			return
		}
	}
}

func (g *classGraph) signature(i int) string {
	ids := func(m map[int]bool) []int {
		out := make([]int, 0, len(m))
		for k := range m {
			if g.alive[k] {
				out = append(out, k)
			}
		}
		sort.Ints(out)
		return out
	}
	sig := "p"
	for _, p := range ids(g.pred[i]) {
		sig += ":" + strconv.Itoa(p)
	}
	sig += "|s"
	for _, s := range ids(g.succ[i]) {
		sig += ":" + strconv.Itoa(s)
	}
	return sig
}

func (g *classGraph) merge(group []int) {
	keep := group[0]
	var union []string
	for _, i := range group {
		union = append(union, g.classes[i]...)
	}
	sort.Strings(union)
	g.classes[keep] = union
	for _, i := range group[1:] {
		g.alive[i] = false
		for p := range g.pred[i] {
			delete(g.succ[p], i)
			if g.alive[p] || p == keep {
				g.succ[p][keep] = true
				g.pred[keep][p] = true
			}
		}
		for s := range g.succ[i] {
			delete(g.pred[s], i)
			if g.alive[s] || s == keep {
				g.pred[s][keep] = true
				g.succ[keep][s] = true
			}
		}
	}
}

// topoSort linearizes the alive classes. Among the available classes the
// one whose earliest-seen symbol came first in the sample stream is
// emitted next, which makes the output order deterministic and natural
// (the paper notes the order of factors depends on the topological sort).
// It fails with ErrCycle when no class is available before all are
// emitted, and checks the context once per emitted class.
func (g *classGraph) topoSort(ctx context.Context, st *State) ([]int, error) {
	indeg := map[int]int{}
	for i := range g.classes {
		if !g.alive[i] {
			continue
		}
		n := 0
		for p := range g.pred[i] {
			if g.alive[p] {
				n++
			}
		}
		indeg[i] = n
	}
	rank := func(i int) int {
		best := int(^uint(0) >> 1)
		for _, s := range g.classes[i] {
			if r, ok := st.rank(s); ok && r < best {
				best = r
			}
		}
		return best
	}
	var order []int
	for len(indeg) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best := -1
		for i := range indeg {
			if indeg[i] != 0 {
				continue
			}
			if best < 0 || rank(i) < rank(best) {
				best = i
			}
		}
		if best < 0 {
			return nil, ErrCycle
		}
		order = append(order, best)
		delete(indeg, best)
		for s := range g.succ[best] {
			if _, ok := indeg[s]; ok {
				indeg[s]--
			}
		}
	}
	return order, nil
}
