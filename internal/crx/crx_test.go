package crx

import (
	"math/rand"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/datagen"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
)

func split(w string) []string {
	if w == "" {
		return nil
	}
	out := make([]string, len(w))
	for i, r := range w {
		out[i] = string(r)
	}
	return out
}

func sample(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		out[i] = split(w)
	}
	return out
}

func infer(t *testing.T, ws [][]string) *regex.Expr {
	t.Helper()
	res, err := Infer(ws)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if !res.Expr.IsCHARE() {
		t.Fatalf("result %s is not a CHARE", res.Expr)
	}
	return res.Expr
}

// Example 1 of Section 7: u=abd, v=bcdee, w=cade yields (a+b+c)+ d e*.
func TestCRXSection7Example1(t *testing.T) {
	got := infer(t, sample("abd", "bcdee", "cade"))
	if got.String() != "(a + b + c)+ d e*" {
		t.Errorf("CRX = %q, want %q", got, "(a + b + c)+ d e*")
	}
}

// Examples 2-4 of Section 7: W = {abccde, cccad, bfegg, bfehi} yields
// (a+b+c)+ (d+f) e? g* h? i?.
func TestCRXSection7Examples2to4(t *testing.T) {
	res, err := Infer(sample("abccde", "cccad", "bfegg", "bfehi"))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if got, want := res.Expr.String(), "(a + b + c)+ (d + f) e? g* h? i?"; got != want {
		t.Errorf("CRX = %q, want %q", got, want)
	}
	// The merged class [d, f] of Example 4 must be present.
	foundDF := false
	for _, c := range res.Classes {
		if len(c) == 2 && c[0] == "d" && c[1] == "f" {
			foundDF = true
		}
	}
	if !foundDF {
		t.Errorf("classes = %v, missing the merged [d f]", res.Classes)
	}
}

// The non-linear-order example after Theorem 5: W = {abc, ade, abe} yields
// the all-optional chain (the factor order among incomparable classes
// depends on the topological sort; ours emits first-seen symbols first).
func TestCRXNonLinearOrderExample(t *testing.T) {
	got := infer(t, sample("abc", "ade", "abe"))
	if got.String() != "a b? c? d? e?" {
		t.Errorf("CRX = %q, want %q", got, "a b? c? d? e?")
	}
	for _, w := range sample("abc", "ade", "abe") {
		if !automata.ExprMember(got, w) {
			t.Errorf("result rejects sample string %v", w)
		}
	}
}

// Section 7's generalization claim: the O(n) ring sample {a1a2, ..., ana1}
// plus an ε witness suffices for (a1+...+an)*.
func TestCRXLearnsRepeatedDisjunctionFromRingSample(t *testing.T) {
	n := 12
	syms := make([]string, n)
	for i := range syms {
		syms[i] = string(rune('a' + i))
	}
	var ws [][]string
	for i := range syms {
		ws = append(ws, []string{syms[i], syms[(i+1)%n]})
	}
	ws = append(ws, nil) // witness for *
	got := infer(t, ws)
	subs := make([]*regex.Expr, n)
	for i, s := range syms {
		subs[i] = regex.Sym(s)
	}
	want := regex.Star(regex.Union(subs...))
	if !regex.EqualModuloUnionOrder(got, want) {
		t.Errorf("CRX = %s, want %s", got, want)
	}
	// Without the ε witness the quantifier is +.
	got = infer(t, ws[:len(ws)-1])
	if !regex.EqualModuloUnionOrder(got, regex.Plus(regex.Union(subs...))) {
		t.Errorf("CRX without ε = %s, want +", got)
	}
}

func TestCRXQuantifierAssignment(t *testing.T) {
	tests := []struct {
		ws   []string
		want string
	}{
		{[]string{"a", "a"}, "a"},
		{[]string{"a", ""}, "a?"},
		{[]string{"a", "aa"}, "a+"},
		{[]string{"aa", ""}, "a*"},
		{[]string{"ab", "b"}, "a? b"},
		{[]string{"ab", "ba"}, "(a + b)+"}, // cycle: one class, two occurrences
	}
	for _, tc := range tests {
		got := infer(t, sample(tc.ws...))
		if got.String() != tc.want {
			t.Errorf("CRX(%v) = %q, want %q", tc.ws, got, tc.want)
		}
	}
}

func TestCRXEmptyError(t *testing.T) {
	if _, err := Infer(nil); err == nil {
		t.Fatal("want error on empty sample")
	}
	if _, err := Infer([][]string{nil}); err == nil {
		t.Fatal("want error on ε-only sample")
	}
}

// Theorem 3: W ⊆ L(rW) always.
func TestCRXContainmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	alpha := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 300; i++ {
		var ws [][]string
		for j := 0; j < 1+rng.Intn(8); j++ {
			n := rng.Intn(9)
			w := make([]string, n)
			for k := range w {
				w[k] = alpha[rng.Intn(len(alpha))]
			}
			ws = append(ws, w)
		}
		nonEmpty := false
		for _, w := range ws {
			nonEmpty = nonEmpty || len(w) > 0
		}
		if !nonEmpty {
			continue
		}
		res, err := Infer(ws)
		if err != nil {
			t.Fatalf("Infer(%v): %v", ws, err)
		}
		if !res.Expr.IsCHARE() {
			t.Fatalf("result %s is not a CHARE", res.Expr)
		}
		for _, w := range ws {
			if !automata.ExprMember(res.Expr, w) {
				t.Fatalf("CRX(%v) = %s rejects %v", ws, res.Expr, w)
			}
		}
	}
}

// Theorem 4 (completeness): for each CHARE r there is a sample from which
// CRX infers an expression with L = L(r); the edge-cover sample of the SOA
// of r is such a sample. Theorem 5 strengthens this to syntactic equality
// up to commutativity of +.
func TestCRXCompletenessOnRandomCHAREs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	alpha := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i := 0; i < 400; i++ {
		target := regex.Simplify(regextest.RandomCHARE(rng, alpha))
		ws := datagen.EdgeCoverSample(target)
		res, err := Infer(ws)
		if err != nil {
			t.Fatalf("Infer failed for %s: %v", target, err)
		}
		if !regex.EqualModuloUnionOrder(res.Expr, target) {
			t.Fatalf("CRX(%s) = %s (sample %v)", target, res.Expr, ws)
		}
	}
}

// CRX is a super-approximation of iDTD's target: on arbitrary SOREs it
// still covers the sample (and the whole SORE language when the sample is
// representative).
func TestCRXSuperApproximatesSOREs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	alpha := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 200; i++ {
		target := regextest.RandomSORE(rng, alpha, 3)
		ws := datagen.EdgeCoverSample(target)
		res, err := Infer(ws)
		if err != nil {
			continue // e.g. SOREs whose language is {ε}
		}
		if !automata.ExprIncludes(res.Expr, target) {
			t.Fatalf("CRX(%s) = %s does not include the target", target, res.Expr)
		}
	}
}

// Incremental recomputation (Section 9): summarizing in parts and merging
// gives exactly the batch result.
func TestCRXIncrementalEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	alpha := []string{"a", "b", "c", "d"}
	for i := 0; i < 100; i++ {
		var ws [][]string
		for j := 0; j < 6; j++ {
			n := 1 + rng.Intn(6)
			w := make([]string, n)
			for k := range w {
				w[k] = alpha[rng.Intn(len(alpha))]
			}
			ws = append(ws, w)
		}
		batch, err := Infer(ws)
		if err != nil {
			t.Fatal(err)
		}
		st1, st2 := NewState(), NewState()
		for _, w := range ws[:3] {
			st1.AddString(w)
		}
		for _, w := range ws[3:] {
			st2.AddString(w)
		}
		st1.Merge(st2)
		inc, err := st1.Infer()
		if err != nil {
			t.Fatal(err)
		}
		if !regex.Equal(batch.Expr, inc.Expr) {
			t.Fatalf("batch %s != incremental %s for %v", batch.Expr, inc.Expr, ws)
		}
		if st1.Total() != len(ws) {
			t.Fatalf("merged total = %d", st1.Total())
		}
	}
}

func TestCRXDeterministicFactorOrder(t *testing.T) {
	// Incomparable classes are emitted in first-seen order, so re-running
	// on the same sample is stable.
	ws := sample("xq", "yq", "zq")
	first := infer(t, ws).String()
	for i := 0; i < 5; i++ {
		if got := infer(t, ws).String(); got != first {
			t.Fatalf("order not deterministic: %q vs %q", got, first)
		}
	}
}

func TestProfileCapIsExactForQuantifiers(t *testing.T) {
	// Counts are capped at 2; three or more occurrences must still read as
	// "at least two".
	got := infer(t, sample("aaaa", "a"))
	if got.String() != "a+" {
		t.Errorf("CRX = %q, want a+", got)
	}
}
