package crx

import (
	"sort"

	"dtdinfer/internal/intern"
	smp "dtdinfer/internal/sample"
)

// State is the incremental summary CRX maintains instead of the raw sample
// (Section 9, incremental computation): the →W edge relation, the order in
// which symbols were first seen (for a deterministic topological sort), and
// a multiset of per-string occurrence profiles with counts capped at two —
// two is all the quantifier assignment distinguishes ("zero, one, or more").
// The summary is quadratic in the alphabet plus one entry per distinct
// profile; merging two summaries is exact, so incremental inference equals
// batch inference.
//
// Symbols are interned into dense IDs assigned in first-seen order, so the
// ID doubles as the first-seen rank. The →W relation is a bitset adjacency
// indexed by ID, and per-string occurrence counting uses generation-stamped
// scratch arrays instead of a fresh map per string, making AddString
// allocation-free once the alphabet and profile set stabilize.
type State struct {
	tab      *intern.Table
	edges    []intern.Bitset // edges[from] = →W successors of from
	profiles map[string]*profile
	total    int

	// Per-string scratch, reset by generation stamping. State is not safe
	// for concurrent use, exactly like the map-based predecessor.
	counts  []uint8  // occurrences of each ID in the current string, capped at 2
	stamp   []uint64 // generation that last touched counts[id]
	gen     uint64
	touched []int32 // IDs seen in the current string, insertion order
	keyBuf  []byte  // reusable profile-key buffer
}

// profile is one distinct per-string occurrence vector: parallel slices of
// symbol IDs (ascending) and their capped counts, plus how many sample
// strings produced exactly this vector.
type profile struct {
	ids    []int32
	counts []uint8
	mult   int
}

// NewState returns an empty summary.
func NewState() *State {
	return &State{
		tab:      intern.NewTable(),
		profiles: map[string]*profile{},
	}
}

// internID interns s and grows the ID-indexed tables to cover the new ID.
func (st *State) internID(s string) int {
	id := st.tab.Intern(s)
	for len(st.counts) <= id {
		st.counts = append(st.counts, 0)
		st.stamp = append(st.stamp, 0)
		st.edges = append(st.edges, nil)
	}
	return id
}

// AddString folds one sample string into the summary.
func (st *State) AddString(w []string) {
	st.total++
	st.gen++
	st.touched = st.touched[:0]
	prev := -1
	for _, s := range w {
		id := st.internID(s)
		if st.stamp[id] != st.gen {
			st.stamp[id] = st.gen
			st.counts[id] = 1
			st.touched = append(st.touched, int32(id))
		} else if st.counts[id] < 2 {
			st.counts[id]++
		}
		if prev >= 0 {
			st.edges[prev].Set(id)
		}
		prev = id
	}
	st.bumpProfile()
}

// AddSample folds a counted sample into the summary: each unique sequence
// is processed once, with its multiplicity added to the matching profile.
// The result is identical to AddString over the expanded strings —
// quantifier assignment only reads per-string occurrence vectors and their
// multiplicities, both of which the counted path preserves exactly. Symbol
// IDs are remapped from the sample's intern table once per call, so no
// string hashing happens on the per-sequence path.
func (st *State) AddSample(s *smp.Set) {
	remap := make([]int32, s.NumSymbols())
	for i := range remap {
		remap[i] = -1
	}
	s.ForEach(func(w []int32, n int) {
		st.total += n
		st.gen++
		st.touched = st.touched[:0]
		prev := -1
		for _, sid := range w {
			id := int(remap[sid])
			if id < 0 {
				id = st.internID(s.Name(int(sid)))
				remap[sid] = int32(id)
			}
			if st.stamp[id] != st.gen {
				st.stamp[id] = st.gen
				st.counts[id] = 1
				st.touched = append(st.touched, int32(id))
			} else if st.counts[id] < 2 {
				st.counts[id]++
			}
			if prev >= 0 {
				st.edges[prev].Set(id)
			}
			prev = id
		}
		st.bumpProfileCount(n)
	})
}

// bumpProfile records the occurrence vector of the string just folded in,
// reading counts for the IDs in touched.
func (st *State) bumpProfile() { st.bumpProfileCount(1) }

// bumpProfileCount is bumpProfile with a multiplicity.
func (st *State) bumpProfileCount(n int) {
	// Insertion sort: strings rarely touch many distinct symbols, and the
	// IDs arrive nearly sorted for samples that reuse a stable alphabet.
	t := st.touched
	for i := 1; i < len(t); i++ {
		for j := i; j > 0 && t[j-1] > t[j]; j-- {
			t[j-1], t[j] = t[j], t[j-1]
		}
	}
	st.keyBuf = st.keyBuf[:0]
	for _, id := range t {
		st.keyBuf = append(st.keyBuf,
			byte(id), byte(id>>8), byte(id>>16), byte(id>>24), st.counts[id])
	}
	p := st.profiles[string(st.keyBuf)]
	if p == nil {
		p = &profile{ids: make([]int32, len(t)), counts: make([]uint8, len(t))}
		copy(p.ids, t)
		for i, id := range t {
			p.counts[i] = st.counts[id]
		}
		st.profiles[string(st.keyBuf)] = p
	}
	p.mult += n
}

// Merge folds another summary into st, implementing incremental
// recomputation: summarize only the newly arrived strings and merge.
func (st *State) Merge(other *State) {
	// Preserve first-seen order: iterating other's IDs in ascending order is
	// exactly other's first-seen order, so symbols new to st get ranks after
	// all of st's, in the order other first saw them.
	remap := make([]int32, other.tab.Len())
	for oid := 0; oid < other.tab.Len(); oid++ {
		remap[oid] = int32(st.internID(other.tab.Name(oid)))
	}
	for from, bs := range other.edges {
		nf := int(remap[from])
		bs.ForEach(func(to int) {
			st.edges[nf].Set(int(remap[to]))
		})
	}
	pairs := make([][2]int32, 0, 16) // (new id, count), re-sorted after remap
	for _, p := range other.profiles {
		pairs = pairs[:0]
		for i, oid := range p.ids {
			pairs = append(pairs, [2]int32{remap[oid], int32(p.counts[i])})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
		st.keyBuf = st.keyBuf[:0]
		for _, pr := range pairs {
			id := pr[0]
			st.keyBuf = append(st.keyBuf,
				byte(id), byte(id>>8), byte(id>>16), byte(id>>24), byte(pr[1]))
		}
		q := st.profiles[string(st.keyBuf)]
		if q == nil {
			q = &profile{ids: make([]int32, len(pairs)), counts: make([]uint8, len(pairs))}
			for i, pr := range pairs {
				q.ids[i] = pr[0]
				q.counts[i] = uint8(pr[1])
			}
			st.profiles[string(st.keyBuf)] = q
		}
		q.mult += p.mult
	}
	st.total += other.total
}

// Total returns the number of strings summarized.
func (st *State) Total() int { return st.total }

// rank returns the first-seen rank of a symbol (its interned ID).
func (st *State) rank(s string) (int, bool) { return st.tab.Lookup(s) }

func (st *State) symbols() []string {
	out := make([]string, 0, st.tab.Len())
	for id := 0; id < st.tab.Len(); id++ {
		out = append(out, st.tab.Name(id))
	}
	sort.Strings(out)
	return out
}

func (st *State) successors(s string) []string {
	id, ok := st.tab.Lookup(s)
	if !ok || id >= len(st.edges) {
		return nil
	}
	var out []string
	st.edges[id].ForEach(func(to int) {
		out = append(out, st.tab.Name(to))
	})
	sort.Strings(out)
	return out
}

// forEachEdge calls f for every →W edge, by symbol name.
func (st *State) forEachEdge(f func(a, b string)) {
	for from, bs := range st.edges {
		fa := st.tab.Name(from)
		bs.ForEach(func(to int) {
			f(fa, st.tab.Name(to))
		})
	}
}

// classCounts returns how many sample strings contain zero occurrences of
// symbols from the class (n0), exactly one (n1), and two or more (n2).
func (st *State) classCounts(class []string) (n0, n1, n2 int) {
	mark := make([]bool, st.tab.Len())
	for _, s := range class {
		if id, ok := st.tab.Lookup(s); ok {
			mark[id] = true
		}
	}
	for _, p := range st.profiles {
		total := 0
		for i, id := range p.ids {
			if mark[id] {
				total += int(p.counts[i])
				if total >= 2 {
					break
				}
			}
		}
		switch {
		case total == 0:
			n0 += p.mult
		case total == 1:
			n1 += p.mult
		default:
			n2 += p.mult
		}
	}
	return n0, n1, n2
}
