package crx

import (
	"sort"
	"strconv"
	"strings"
)

// State is the incremental summary CRX maintains instead of the raw sample
// (Section 9, incremental computation): the →W edge relation, the order in
// which symbols were first seen (for a deterministic topological sort), and
// a multiset of per-string occurrence profiles with counts capped at two —
// two is all the quantifier assignment distinguishes ("zero, one, or more").
// The summary is quadratic in the alphabet plus one entry per distinct
// profile; merging two summaries is exact, so incremental inference equals
// batch inference.
type State struct {
	edges     map[string]map[string]bool
	firstSeen map[string]int
	profiles  map[string]*profile
	seen      int
	total     int
}

type profile struct {
	counts map[string]int // per-symbol occurrences, capped at 2
	mult   int            // number of sample strings with this profile
}

// NewState returns an empty summary.
func NewState() *State {
	return &State{
		edges:     map[string]map[string]bool{},
		firstSeen: map[string]int{},
		profiles:  map[string]*profile{},
	}
}

// AddString folds one sample string into the summary.
func (st *State) AddString(w []string) {
	st.total++
	counts := map[string]int{}
	for i, s := range w {
		if _, ok := st.firstSeen[s]; !ok {
			st.firstSeen[s] = st.seen
			st.seen++
		}
		if counts[s] < 2 {
			counts[s]++
		}
		if i+1 < len(w) {
			m := st.edges[s]
			if m == nil {
				m = map[string]bool{}
				st.edges[s] = m
			}
			m[w[i+1]] = true
		}
	}
	key := profileKey(counts)
	p := st.profiles[key]
	if p == nil {
		p = &profile{counts: counts}
		st.profiles[key] = p
	}
	p.mult++
}

func profileKey(counts map[string]int) string {
	syms := make([]string, 0, len(counts))
	for s := range counts {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	var b strings.Builder
	for _, s := range syms {
		b.WriteString(s)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(counts[s]))
		b.WriteByte(';')
	}
	return b.String()
}

// Merge folds another summary into st, implementing incremental
// recomputation: summarize only the newly arrived strings and merge.
func (st *State) Merge(other *State) {
	// Preserve first-seen order: symbols new to st get ranks after all of
	// st's, in other's own first-seen order.
	type rankedSym struct {
		sym  string
		rank int
	}
	var incoming []rankedSym
	for s, r := range other.firstSeen {
		if _, ok := st.firstSeen[s]; !ok {
			incoming = append(incoming, rankedSym{s, r})
		}
	}
	sort.Slice(incoming, func(i, j int) bool { return incoming[i].rank < incoming[j].rank })
	for _, rs := range incoming {
		st.firstSeen[rs.sym] = st.seen
		st.seen++
	}
	for a, succs := range other.edges {
		m := st.edges[a]
		if m == nil {
			m = map[string]bool{}
			st.edges[a] = m
		}
		for b := range succs {
			m[b] = true
		}
	}
	for key, p := range other.profiles {
		q := st.profiles[key]
		if q == nil {
			counts := make(map[string]int, len(p.counts))
			for s, c := range p.counts {
				counts[s] = c
			}
			q = &profile{counts: counts}
			st.profiles[key] = q
		}
		q.mult += p.mult
	}
	st.total += other.total
}

// Total returns the number of strings summarized.
func (st *State) Total() int { return st.total }

func (st *State) symbols() []string {
	out := make([]string, 0, len(st.firstSeen))
	for s := range st.firstSeen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (st *State) successors(s string) []string {
	m := st.edges[s]
	out := make([]string, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// classCounts returns how many sample strings contain zero occurrences of
// symbols from the class (n0), exactly one (n1), and two or more (n2).
func (st *State) classCounts(class []string) (n0, n1, n2 int) {
	for _, p := range st.profiles {
		total := 0
		for _, s := range class {
			total += p.counts[s]
			if total >= 2 {
				break
			}
		}
		switch {
		case total == 0:
			n0 += p.mult
		case total == 1:
			n1 += p.mult
		default:
			n2 += p.mult
		}
	}
	return n0, n1, n2
}
