package crx

import (
	"testing"

	"dtdinfer/internal/datagen"
	"dtdinfer/internal/regex"
)

// BenchmarkCRXBySampleSize measures the near-linear scaling of CRX in the
// sample size (complexity O(m + n³) per Section 7).
func BenchmarkCRXBySampleSize(b *testing.B) {
	target := regex.MustParse("a1? a2 (a3 + a4 + a5 + a6 + a7 + a8)* a9+ a10?")
	for _, n := range []int{100, 1000, 10000} {
		sample := datagen.NewSampler(1).SampleN(target, n)
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Infer(sample); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCRXIncrementalAdd measures the per-string cost of the summary.
func BenchmarkCRXIncrementalAdd(b *testing.B) {
	target := regex.MustParse("a1? a2 (a3 + a4 + a5)* a6+")
	sample := datagen.NewSampler(2).SampleN(target, 1024)
	st := NewState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.AddString(sample[i%len(sample)])
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
