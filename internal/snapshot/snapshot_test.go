package snapshot

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// roundTrip writes a representative field mix and returns the bytes.
func roundTrip(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, "TEST", 3)
	w.Uvarint(0)
	w.Uvarint(1)
	w.Uvarint(1<<63 + 17)
	w.Varint(-42)
	w.Varint(1 << 40)
	w.Bool(true)
	w.Bool(false)
	w.Byte(0xAB)
	w.U64(0xdeadbeefcafebabe)
	w.String("")
	w.String("hello, snapshot")
	w.String(strings.Repeat("x", readChunk+7))
	w.Len(12345)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := roundTrip(t)
	r, err := NewReader(bytes.NewReader(data), "TEST")
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Version() != 3 {
		t.Fatalf("Version = %d, want 3", r.Version())
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != 1 {
		t.Errorf("Uvarint = %d, want 1", got)
	}
	if got := r.Uvarint(); got != 1<<63+17 {
		t.Errorf("Uvarint = %d, want %d", got, uint64(1<<63+17))
	}
	if got := r.Varint(); got != -42 {
		t.Errorf("Varint = %d, want -42", got)
	}
	if got := r.Varint(); got != 1<<40 {
		t.Errorf("Varint = %d, want %d", got, int64(1<<40))
	}
	if got := r.Bool(); got != true {
		t.Errorf("Bool = %v, want true", got)
	}
	if got := r.Bool(); got != false {
		t.Errorf("Bool = %v, want false", got)
	}
	if got := r.Byte(); got != 0xAB {
		t.Errorf("Byte = %#x, want 0xAB", got)
	}
	if got := r.U64(); got != 0xdeadbeefcafebabe {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if got := r.String(); got != "hello, snapshot" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != strings.Repeat("x", readChunk+7) {
		t.Errorf("long String mismatch (len %d)", len(got))
	}
	if got := r.Int(); got != 12345 {
		t.Errorf("Int = %d, want 12345", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	data := roundTrip(t)
	if _, err := NewReader(bytes.NewReader(data), "NOPE"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
	if _, err := NewReader(bytes.NewReader(nil), "TEST"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty stream: err = %v, want ErrCorrupt", err)
	}
}

// TestTruncations decodes every strict prefix of a valid stream: each
// must fail with ErrCorrupt by Close at the latest, never panic.
func TestTruncations(t *testing.T) {
	data := roundTrip(t)
	for n := 0; n < len(data); n++ {
		r, err := NewReader(bytes.NewReader(data[:n]), "TEST")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("prefix %d: NewReader err = %v, want ErrCorrupt", n, err)
			}
			continue
		}
		// Drain the same field sequence the writer produced, then Close.
		for i := 0; i < 3; i++ {
			r.Uvarint()
		}
		r.Varint()
		r.Varint()
		r.Bool()
		r.Bool()
		r.Byte()
		r.U64()
		for i := 0; i < 3; i++ {
			_ = r.String()
		}
		r.Int()
		if err := r.Close(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: Close err = %v, want ErrCorrupt", n, err)
		}
	}
}

// TestCorruption flips one bit at every byte position: the reader must
// report ErrCorrupt (usually at Close via the checksum) and never panic.
// Positions whose flip is caught earlier (bad magic, invalid bool,
// over-limit length) are equally acceptable — the invariant is that no
// corrupted stream decodes cleanly.
func TestCorruption(t *testing.T) {
	data := roundTrip(t)
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		r, err := NewReader(bytes.NewReader(mut), "TEST")
		if err != nil {
			continue // magic/version corruption caught at open
		}
		for i := 0; i < 3; i++ {
			r.Uvarint()
		}
		r.Varint()
		r.Varint()
		r.Bool()
		r.Bool()
		r.Byte()
		r.U64()
		for i := 0; i < 3; i++ {
			_ = r.String()
		}
		r.Int()
		if err := r.Close(); err == nil {
			t.Fatalf("bit flip at %d decoded cleanly", pos)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", pos, err)
		}
	}
}

func TestTrailingGarbage(t *testing.T) {
	data := append(roundTrip(t), 0x00)
	r, err := NewReader(bytes.NewReader(data), "TEST")
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	for i := 0; i < 3; i++ {
		r.Uvarint()
	}
	r.Varint()
	r.Varint()
	r.Bool()
	r.Bool()
	r.Byte()
	r.U64()
	for i := 0; i < 3; i++ {
		_ = r.String()
	}
	r.Int()
	if err := r.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: err = %v, want ErrCorrupt", err)
	}
}

// TestLyingStringLength feeds a stream whose length prefix promises far
// more bytes than follow: the reader must fail on truncation without
// allocating the promised size (enforced structurally by the chunked
// read; here we only assert the error path).
func TestLyingStringLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "TEST", 1)
	w.Uvarint(MaxStringLen) // in-limit length with no payload behind it
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), "TEST")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != "" {
		t.Fatalf("String on truncated payload = %q, want empty", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}

	// Over-limit length must fail before any payload read.
	var buf2 bytes.Buffer
	w2 := NewWriter(&buf2, "TEST", 1)
	w2.Uvarint(MaxStringLen + 1)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := NewReader(bytes.NewReader(buf2.Bytes()), "TEST")
	if err != nil {
		t.Fatal(err)
	}
	_ = r2.String()
	if !errors.Is(r2.Err(), ErrCorrupt) {
		t.Fatalf("over-limit Err = %v, want ErrCorrupt", r2.Err())
	}
}

func TestInvalidBool(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "TEST", 1)
	w.Byte(2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), "TEST")
	if err != nil {
		t.Fatal(err)
	}
	r.Bool()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Bool(2): Err = %v, want ErrCorrupt", r.Err())
	}
}

func TestStickyErrors(t *testing.T) {
	r, err := NewReader(bytes.NewReader([]byte("TEST\x01")), "TEST")
	if err != nil {
		t.Fatal(err)
	}
	r.U64() // fails: no bytes left
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	// Everything after the first failure is a zero-value no-op and the
	// error does not change.
	if got := r.Uvarint(); got != 0 {
		t.Errorf("post-error Uvarint = %d", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("post-error String = %q", got)
	}
	if r.Err() != first {
		t.Errorf("error changed after first failure")
	}
}

func TestWriterRejectsOverlongString(t *testing.T) {
	w := NewWriter(&bytes.Buffer{}, "TEST", 1)
	w.String(strings.Repeat("y", MaxStringLen+1))
	if w.Err() == nil {
		t.Fatal("overlong string accepted by writer")
	}
}

func TestFailInjectsSemanticError(t *testing.T) {
	data := roundTrip(t)
	r, err := NewReader(bytes.NewReader(data), "TEST")
	if err != nil {
		t.Fatal(err)
	}
	r.Fail("record %d makes no sense", 7)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Fail: Err = %v, want ErrCorrupt", r.Err())
	}
	if !strings.Contains(r.Err().Error(), "record 7") {
		t.Fatalf("Fail message lost: %v", r.Err())
	}
}
