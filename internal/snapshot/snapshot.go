// Package snapshot provides the framing primitives of the durable
// corpus-summary wire format: a magic-tagged, versioned, CRC-trailed
// byte stream of unsigned varints, signed varints, fixed 64-bit words
// and length-prefixed strings (DESIGN §11 specifies the field layout the
// dtd layer builds on top).
//
// The two halves are deliberately asymmetric in attitude. The Writer
// trusts its caller — it serializes whatever it is handed and only
// reports I/O failures. The Reader trusts nothing: it is fed
// attacker-controlled bytes, so every primitive validates before it
// allocates, a lying length prefix can waste at most one read chunk of
// memory, and every failure mode is a returned error wrapping
// ErrCorrupt — never a panic. Both sides run through bufio and maintain
// a running CRC-32C; Close on the writer appends the checksum, Close on
// the reader verifies it and requires the stream to end there.
//
// Errors are sticky: after the first failure every subsequent call is a
// no-op returning zero values, so decoders can be written as straight-
// line field reads with a single Err check per record.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ErrCorrupt matches (with errors.Is) every decoding failure: bad
// magic, truncation, checksum mismatch, malformed varints, out-of-range
// values, trailing garbage.
var ErrCorrupt = errors.New("snapshot: corrupt or truncated data")

const (
	// MaxStringLen caps one length-prefixed string (64 MiB). Legitimate
	// snapshots hold element names, attribute values and capped text
	// samples — nothing within orders of magnitude of this — while the
	// cap keeps a hostile length prefix from being mistaken for a
	// multi-exabyte allocation request.
	MaxStringLen = 64 << 20
	// readChunk bounds how much a lying length prefix can make the
	// reader allocate before truncation is detected: string payloads are
	// read and grown chunk by chunk, so memory tracks bytes actually
	// present in the stream.
	readChunk = 32 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer encodes the framing format onto an io.Writer. Create with
// NewWriter, emit fields, then Close to append the checksum. Errors are
// sticky; only the first is reported.
type Writer struct {
	bw      *bufio.Writer
	crc     uint32
	err     error
	scratch [binary.MaxVarintLen64]byte
}

// NewWriter starts a stream: the magic tag and format version are
// written (and checksummed) immediately.
func NewWriter(w io.Writer, magic string, version byte) *Writer {
	sw := &Writer{bw: bufio.NewWriter(w)}
	sw.raw([]byte(magic))
	sw.Byte(version)
	return sw
}

func (w *Writer) raw(b []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, castagnoli, b)
	_, w.err = w.bw.Write(b)
}

// Byte writes one raw byte.
func (w *Writer) Byte(b byte) {
	w.scratch[0] = b
	w.raw(w.scratch[:1])
}

// Bool writes a bool as one byte (0 or 1).
func (w *Writer) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(u uint64) {
	n := binary.PutUvarint(w.scratch[:], u)
	w.raw(w.scratch[:n])
}

// Varint writes a signed (zig-zag) varint.
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.scratch[:], v)
	w.raw(w.scratch[:n])
}

// Len writes a non-negative count as an unsigned varint.
func (w *Writer) Len(n int) { w.Uvarint(uint64(n)) }

// U64 writes a fixed-width little-endian 64-bit word (fingerprints,
// whose value distribution would waste varint bytes).
func (w *Writer) U64(u uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:8], u)
	w.raw(w.scratch[:8])
}

// String writes a length-prefixed string. Strings longer than
// MaxStringLen fail the writer — every stream the Writer produces must
// be acceptable to the Reader.
func (w *Writer) String(s string) {
	if len(s) > MaxStringLen {
		if w.err == nil {
			w.err = fmt.Errorf("snapshot: string of %d bytes exceeds limit %d", len(s), MaxStringLen)
		}
		return
	}
	w.Uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, castagnoli, []byte(s))
	_, w.err = w.bw.WriteString(s)
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Close appends the CRC-32C of everything written (the checksum itself
// excluded) and flushes. The Writer must not be used afterwards.
func (w *Writer) Close() error {
	if w.err == nil {
		binary.LittleEndian.PutUint32(w.scratch[:4], w.crc)
		_, w.err = w.bw.Write(w.scratch[:4])
	}
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	return w.err
}

// Reader decodes the framing format from untrusted bytes. Create with
// NewReader, read fields, then Close to verify the checksum and the end
// of stream. Every failure wraps ErrCorrupt; errors are sticky.
type Reader struct {
	br      *bufio.Reader
	crc     uint32
	err     error
	version byte
	scratch [8]byte
}

// NewReader starts decoding a stream, validating the magic tag. The
// format version is exposed via Version for the caller to dispatch on.
func NewReader(r io.Reader, magic string) (*Reader, error) {
	sr := &Reader{br: bufio.NewReader(r)}
	got := make([]byte, len(magic)+1)
	sr.raw(got)
	if sr.err != nil {
		return nil, sr.err
	}
	if string(got[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, got[:len(magic)], magic)
	}
	sr.version = got[len(magic)]
	return sr, nil
}

// Version returns the format version byte following the magic tag.
func (r *Reader) Version() byte { return r.version }

func (r *Reader) raw(b []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.br, b); err != nil {
		r.fail("unexpected end of stream")
		return
	}
	r.crc = crc32.Update(r.crc, castagnoli, b)
}

// fail records the first decoding error, wrapping ErrCorrupt.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Fail lets a caller inject a semantic validation failure (an in-range
// wire value that is nonsense for the record being decoded) into the
// sticky error, so framing and semantic errors surface uniformly.
func (r *Reader) Fail(format string, args ...any) { r.fail(format, args...) }

// ReadByte implements io.ByteReader over the checksummed stream (it is
// what binary.ReadUvarint consumes). On failure it both returns the
// error and makes it sticky.
func (r *Reader) ReadByte() (byte, error) {
	if r.err != nil {
		return 0, r.err
	}
	b, err := r.br.ReadByte()
	if err != nil {
		r.fail("unexpected end of stream")
		return 0, r.err
	}
	r.scratch[0] = b
	r.crc = crc32.Update(r.crc, castagnoli, r.scratch[:1])
	return b, nil
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	b, _ := r.ReadByte()
	return b
}

// Bool reads a bool, rejecting any encoding other than 0 or 1 so every
// stream has exactly one byte representation.
func (r *Reader) Bool() bool {
	switch r.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.fail("invalid bool encoding")
		}
		return false
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	u, err := binary.ReadUvarint(r)
	if err != nil && r.err == nil {
		r.fail("malformed varint")
	}
	if r.err != nil {
		return 0
	}
	return u
}

// Varint reads a signed (zig-zag) varint.
func (r *Reader) Varint() int64 {
	v, err := binary.ReadVarint(r)
	if err != nil && r.err == nil {
		r.fail("malformed varint")
	}
	if r.err != nil {
		return 0
	}
	return v
}

// Int reads an unsigned varint that must fit a non-negative int —
// counts and multiplicities.
func (r *Reader) Int() int {
	u := r.Uvarint()
	if u > math.MaxInt64 {
		r.fail("count %d out of range", u)
		return 0
	}
	return int(u)
}

// U64 reads a fixed-width little-endian 64-bit word.
func (r *Reader) U64() uint64 {
	r.raw(r.scratch[:8])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.scratch[:8])
}

// String reads a length-prefixed string. The length is validated
// against MaxStringLen and the payload is read chunk by chunk, so a
// hostile prefix can neither trigger a giant allocation nor make memory
// use exceed the bytes actually present in the stream.
func (r *Reader) String() string {
	n := r.Uvarint()
	if n > MaxStringLen {
		r.fail("string of %d bytes exceeds limit %d", n, MaxStringLen)
	}
	if r.err != nil || n == 0 {
		return ""
	}
	if n <= readChunk {
		b := make([]byte, n)
		r.raw(b)
		if r.err != nil {
			return ""
		}
		return string(b)
	}
	b := make([]byte, 0, readChunk)
	for left := int(n); left > 0; {
		c := min(left, readChunk)
		start := len(b)
		b = append(b, make([]byte, c)...)
		r.raw(b[start:])
		if r.err != nil {
			return ""
		}
		left -= c
	}
	return string(b)
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Close reads the trailing CRC-32C, verifies it against everything
// consumed so far, and requires the stream to end exactly there. It
// returns the sticky error, so a decoder's single error check can be
// the Close result.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc
	if _, err := io.ReadFull(r.br, r.scratch[:4]); err != nil {
		r.fail("missing checksum")
		return r.err
	}
	if got := binary.LittleEndian.Uint32(r.scratch[:4]); got != want {
		r.fail("checksum mismatch (stream %08x, computed %08x)", got, want)
		return r.err
	}
	if _, err := r.br.ReadByte(); err != io.EOF {
		r.fail("trailing data after checksum")
		return r.err
	}
	return nil
}
