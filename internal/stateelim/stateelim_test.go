package stateelim

import (
	"math/rand"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/gfa"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
	"dtdinfer/internal/soa"
)

func split(w string) []string {
	out := make([]string, len(w))
	for i, r := range w {
		out[i] = string(r)
	}
	return out
}

// The introduction's headline contrast: on the Figure 1 automaton, state
// elimination produces a huge expression (†) while rewrite produces the
// 12-token SORE (‡) — same language, wildly different size.
func TestStateEliminationBlowUpVsRewrite(t *testing.T) {
	ws := [][]string{split("bacacdacde"), split("cbacdbacde"), split("abccaadcde")}
	a := soa.Infer(ws)
	big, err := FromSOA(a)
	if err != nil {
		t.Fatalf("FromSOA: %v", err)
	}
	small, err := gfa.Rewrite(a)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if !automata.ExprEquivalent(big, small) {
		t.Fatalf("state elimination changed the language:\n%s\nvs %s", big, small)
	}
	if big.Tokens() < 5*small.Tokens() {
		t.Errorf("expected massive blow-up: state elim %d tokens vs SORE %d",
			big.Tokens(), small.Tokens())
	}
	t.Logf("state elimination: %d tokens; rewrite: %d tokens", big.Tokens(), small.Tokens())
}

// Soundness on random SOAs: the produced expression denotes exactly L(A).
func TestStateEliminationSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alpha := []string{"a", "b", "c", "d"}
	for i := 0; i < 120; i++ {
		var ws [][]string
		for j := 0; j < 1+rng.Intn(6); j++ {
			n := 1 + rng.Intn(6)
			w := make([]string, n)
			for k := range w {
				w[k] = alpha[rng.Intn(len(alpha))]
			}
			ws = append(ws, w)
		}
		a := soa.Infer(ws)
		e, err := FromSOA(a)
		if err != nil {
			t.Fatalf("FromSOA(%v): %v", ws, err)
		}
		if !automata.Equivalent(a.ToDFA(), automata.FromExpr(e)) {
			t.Fatalf("language differs for %v: %s", ws, e)
		}
	}
}

func TestStateEliminationEpsilon(t *testing.T) {
	a := soa.Infer([][]string{nil, {"a"}})
	e, err := FromSOA(a)
	if err != nil {
		t.Fatalf("FromSOA: %v", err)
	}
	if !e.Nullable() {
		t.Errorf("result %s must be nullable", e)
	}
	if !automata.ExprMember(e, []string{"a"}) {
		t.Errorf("result %s must accept a", e)
	}
}

func TestStateEliminationEmptyLanguage(t *testing.T) {
	if _, err := FromSOA(soa.New()); err == nil {
		t.Fatal("want error on empty automaton")
	}
}

func TestStateEliminationOnSOREAutomata(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	alpha := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 100; i++ {
		target := regextest.RandomSORE(rng, alpha, 3)
		a := soa.FromExpr(target)
		e, err := FromSOA(a)
		if err != nil {
			continue // {ε}-only languages are not expressible
		}
		if !automata.Equivalent(a.ToDFA(), automata.FromExpr(e)) {
			t.Fatalf("state elim of SOA(%s) = %s: language differs", target, e)
		}
	}
}

func TestLabelAlgebra(t *testing.T) {
	a := label{e: regex.Sym("a")}
	eps := label{hasEps: true}
	if got := unionLabel(a, eps); !got.hasEps || got.e.Name != "a" {
		t.Errorf("union with ε broken: %+v", got)
	}
	if got := concatLabel(a, eps); got.hasEps || got.e.Name != "a" {
		t.Errorf("concat with ε broken: %+v", got)
	}
	if got := concatLabel(a, label{}); !got.empty() {
		t.Errorf("concat with ∅ must be ∅: %+v", got)
	}
	if got := starLabel(label{}); !got.hasEps || got.e != nil {
		t.Errorf("∅* must be {ε}: %+v", got)
	}
}
