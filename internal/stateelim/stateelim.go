// Package stateelim implements the classical state elimination algorithm
// (Hopcroft & Ullman) that converts an automaton into a regular expression.
// The paper uses it as the negative baseline: applied to the Figure 1
// automaton it produces the page-filling expression (†), against the
// equivalent 9-symbol SORE ((b?(a+c))+d)+e found by rewrite, illustrating
// the Ehrenfeucht–Zeiger exponential lower bound that motivates targeting
// the SORE class instead.
package stateelim

import (
	"context"
	"errors"

	"dtdinfer/internal/budget"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/sample"
	"dtdinfer/internal/soa"
)

// ErrEmptyLanguage is returned when the automaton accepts no string.
var ErrEmptyLanguage = errors.New("stateelim: automaton accepts no strings")

// InferSample runs state elimination over the 2T-INF automaton of a
// counted, interned sample.
func InferSample(s *sample.Set) (*regex.Expr, error) {
	return FromSOA(soa.InferSample(s))
}

// InferSampleContext is InferSample under a context. State elimination is
// the engine most prone to blow-up (its output can be exponential in the
// automaton), so the context's state budget and a per-eliminated-state
// cancellation checkpoint matter most here.
func InferSampleContext(ctx context.Context, s *sample.Set) (*regex.Expr, error) {
	return FromSOAContext(ctx, soa.InferSample(s))
}

// label is a GNFA edge label: a regular language given by an optional
// expression plus an optional ε. A nil entry in the edge map means the
// empty language.
type label struct {
	e      *regex.Expr // may be nil (language ∅ or {ε} depending on eps)
	hasEps bool
}

func (l label) empty() bool { return l.e == nil && !l.hasEps }

func unionLabel(a, b label) label {
	out := label{hasEps: a.hasEps || b.hasEps}
	switch {
	case a.e == nil:
		out.e = b.e
	case b.e == nil:
		out.e = a.e
	default:
		out.e = regex.Union(a.e, b.e)
	}
	return out
}

func concatLabel(a, b label) label {
	if a.empty() || b.empty() {
		return label{}
	}
	var parts []*regex.Expr
	if a.e != nil && b.e != nil {
		parts = append(parts, regex.Concat(a.e.Clone(), b.e.Clone()))
	}
	if a.e != nil && b.hasEps {
		parts = append(parts, a.e.Clone())
	}
	if b.e != nil && a.hasEps {
		parts = append(parts, b.e.Clone())
	}
	out := label{hasEps: a.hasEps && b.hasEps}
	for _, p := range parts {
		out = unionLabel(out, label{e: p})
	}
	return out
}

// starLabel returns L* as a label: ε plus L+ when L is non-empty.
func starLabel(a label) label {
	if a.e == nil {
		return label{hasEps: true}
	}
	return label{e: regex.Plus(a.e.Clone()), hasEps: true}
}

// FromSOA runs state elimination on a single occurrence automaton,
// eliminating states in lexicographic symbol order. The output is not
// simplified beyond trivial flattening — the point of the baseline is the
// raw size of the expression the textbook algorithm produces.
func FromSOA(a *soa.SOA) (*regex.Expr, error) {
	return FromSOAContext(context.Background(), a)
}

// FromSOAContext is FromSOA with cooperative cancellation (one checkpoint
// per eliminated state, each of which can square the label sizes) and the
// context's state budget checked up front.
func FromSOAContext(ctx context.Context, a *soa.SOA) (*regex.Expr, error) {
	syms := a.Symbols()
	if err := budget.CheckStates(ctx, len(syms)); err != nil {
		return nil, err
	}
	const src, snk = "⊢", "⊣"
	// edge[from][to] holds the current label.
	edge := map[string]map[string]label{}
	set := func(from, to string, l label) {
		if l.empty() {
			return
		}
		m := edge[from]
		if m == nil {
			m = map[string]label{}
			edge[from] = m
		}
		m[to] = unionLabel(m[to], l)
	}
	for _, e := range a.Edges() {
		from, to := e[0], e[1]
		if to == soa.Sink {
			set(from, snk, label{hasEps: true})
			continue
		}
		f := from
		if from == soa.Source {
			f = src
		}
		set(f, to, label{e: regex.Sym(to)})
	}
	if a.AcceptsEmpty() {
		set(src, snk, label{hasEps: true})
	}
	for _, q := range syms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		loop := starLabel(edge[q][q])
		delete(edge[q], q)
		var ins []string
		for p, m := range edge {
			if p == q {
				continue
			}
			if _, ok := m[q]; ok {
				ins = append(ins, p)
			}
		}
		for _, p := range ins {
			inL := edge[p][q]
			delete(edge[p], q)
			for r, outL := range edge[q] {
				set(p, r, concatLabel(concatLabel(inL, loop), outL))
			}
		}
		delete(edge, q)
	}
	final := edge[src][snk]
	if final.empty() {
		return nil, ErrEmptyLanguage
	}
	if final.e == nil {
		return nil, errors.New("stateelim: language is {ε}, not expressible")
	}
	if final.hasEps {
		return regex.Opt(final.e), nil
	}
	return final.e, nil
}
