// Package xmltok is a zero-copy, structure-only streaming XML tokenizer
// for the DTD-inference ingestion hot path. It produces exactly the
// token stream extraction needs — element open/close names, attribute
// names and values, character-data runs — as byte slices into reusable
// internal buffers, so a tokenizer that is Reset between documents
// performs no per-token allocations.
//
// The accept/reject behaviour deliberately mirrors encoding/xml's strict
// mode byte for byte: the same documents parse, the same documents fail,
// tokens arrive with the same segmentation (comments and processing
// instructions split character data; a self-closing tag yields a start
// and an end event), entity references expand identically, and names
// are validated against the same XML 1.0 Appendix B character classes.
// That equivalence is what lets the dtd layer keep encoding/xml as a
// selectable fallback and differential-testing oracle; it is enforced by
// FuzzTokenizerEquivalence. What xmltok drops is everything DTD
// inference never looks at: namespace URL resolution, charset
// conversion, token structs, and per-event string materialization.
package xmltok

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind identifies the token an advance of the tokenizer produced.
type Kind uint8

const (
	// EOF means the document ended cleanly (Next also returns io.EOF).
	EOF Kind = iota
	// StartElement is an opening tag; Name and Attr describe it.
	StartElement
	// EndElement is a closing tag (or the synthetic close of <a/>); Name
	// holds the local name.
	EndElement
	// CharData is one run of character data (possibly empty, for an empty
	// CDATA section); Text holds the processed bytes.
	CharData
	// Comment, ProcInst and Directive are structure-free tokens. Their
	// content is scanned for well-formedness but not retained — inference
	// ignores it — except that an <?xml?> declaration's version and
	// encoding are validated like encoding/xml does.
	Comment
	ProcInst
	Directive
)

// Attr is one attribute of a start tag. The slices point into the
// tokenizer's internal buffers and are valid only until the next call to
// Next. Prefix and Local follow encoding/xml's splitting rules: a name
// with more than one colon is rejected, and a leading or trailing colon
// keeps the whole raw name as the local part.
type Attr struct {
	Prefix []byte
	Local  []byte
	Value  []byte
}

// SyntaxError is a malformed-XML error at a byte offset.
type SyntaxError struct {
	Msg    string
	Offset int64
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("XML syntax error at offset %d: %s", e.Offset, e.Msg)
}

// errNotName signals that the next byte cannot start a name; nothing was
// consumed. Callers translate it into their contextual syntax error,
// exactly like encoding/xml's readName false return with no stored error.
var errNotName = errors.New("xmltok: not a name")

const readBufSize = 8 << 10

// Tokenizer is a pull tokenizer over one document. It is not safe for
// concurrent use. Reset prepares it for the next document reusing every
// internal buffer, which is what makes batch ingestion allocation-free.
type Tokenizer struct {
	r        io.Reader
	rbuf     []byte
	rpos     int
	rend     int
	srcErr   error // reader error, surfaced once buffered bytes drain
	nextByte int   // ungetc buffer; -1 when empty
	offset   int64 // bytes consumed
	err      error // sticky stream error

	// stack holds the open elements; their full raw names live
	// back-to-back in stackBuf so matching an end tag is one byte compare.
	stack    []elemFrame
	stackBuf []byte

	nameBuf   []byte // current tag's full raw name
	textBuf   []byte // current text run / attribute value / PI content
	attrArena []byte // attr names and values of the current start tag
	attrSpans []attrSpan
	attrs     []Attr

	name      []byte // current event's local element name
	text      []byte // current event's character data
	needClose bool   // a self-closing tag owes its EndElement
}

type elemFrame struct {
	off, n   int // full raw name is stackBuf[off : off+n]
	localOff int // local part starts at off+localOff
}

type attrSpan struct {
	nameOff, nameLen int
	localOff         int // local part starts at nameOff+localOff
	valOff, valLen   int
}

// NewTokenizer returns a tokenizer with an empty input; call Reset.
func NewTokenizer() *Tokenizer {
	return &Tokenizer{rbuf: make([]byte, readBufSize), nextByte: -1}
}

// Reset prepares the tokenizer to read a new document from r, keeping
// all internal buffers.
func (t *Tokenizer) Reset(r io.Reader) {
	t.r = r
	t.rpos, t.rend = 0, 0
	t.srcErr = nil
	t.nextByte = -1
	t.offset = 0
	t.err = nil
	t.stack = t.stack[:0]
	t.stackBuf = t.stackBuf[:0]
	t.name = nil
	t.text = nil
	t.needClose = false
}

// Name returns the local name of the current StartElement or EndElement.
// The slice is valid until the next call to Next.
func (t *Tokenizer) Name() []byte { return t.name }

// Attr returns the current StartElement's attributes (xmlns declarations
// included). Valid until the next call to Next.
func (t *Tokenizer) Attr() []Attr { return t.attrs }

// Text returns the current CharData content: entities expanded, \r and
// \r\n normalized to \n, CDATA unwrapped. Valid until the next call to
// Next.
func (t *Tokenizer) Text() []byte { return t.text }

// InputOffset returns the number of input bytes consumed so far.
func (t *Tokenizer) InputOffset() int64 { return t.offset }

// Depth returns the number of currently open elements.
func (t *Tokenizer) Depth() int { return len(t.stack) }

// Next advances to the next token. At clean end of input it returns
// (EOF, io.EOF); any other error is sticky. Ending the input with
// elements still open is a syntax error, like encoding/xml's Token.
func (t *Tokenizer) Next() (Kind, error) {
	if t.needClose {
		// The last tag was self-closing and we returned just the
		// StartElement half; deliver the EndElement half now.
		t.needClose = false
		top := t.stack[len(t.stack)-1]
		t.name = t.stackBuf[top.off+top.localOff : top.off+top.n]
		t.stack = t.stack[:len(t.stack)-1]
		t.stackBuf = t.stackBuf[:top.off]
		return EndElement, nil
	}
	if t.err != nil {
		return EOF, t.exposedErr()
	}
	kind, err := t.rawToken()
	if err != nil {
		t.err = err
		return EOF, t.exposedErr()
	}
	return kind, nil
}

// exposedErr maps the sticky stream error to what the caller should see:
// io.EOF with elements still open is a truncation.
func (t *Tokenizer) exposedErr() error {
	if t.err == io.EOF && len(t.stack) > 0 {
		t.err = t.syntaxError("unexpected EOF")
	}
	return t.err
}

func (t *Tokenizer) syntaxError(msg string) error {
	return &SyntaxError{Msg: msg, Offset: t.offset}
}

// fill loads the next chunk from the reader. A read that returns both
// data and an error serves the data first and parks the error, so a
// capped reader (dtd.MeterReader) fails the stream at exactly the same
// byte count as it does under encoding/xml's bufio.
func (t *Tokenizer) fill() bool {
	if t.srcErr != nil {
		return false
	}
	for {
		n, err := t.r.Read(t.rbuf)
		t.rpos, t.rend = 0, n
		if err != nil {
			t.srcErr = err
		}
		if n > 0 {
			return true
		}
		if err != nil {
			return false
		}
	}
}

func (t *Tokenizer) getc() (byte, bool) {
	if t.nextByte >= 0 {
		b := byte(t.nextByte)
		t.nextByte = -1
		t.offset++
		return b, true
	}
	if t.rpos >= t.rend && !t.fill() {
		return 0, false
	}
	b := t.rbuf[t.rpos]
	t.rpos++
	t.offset++
	return b, true
}

func (t *Tokenizer) ungetc(b byte) {
	t.nextByte = int(b)
	t.offset--
}

// mustgetc is getc with end-of-input promoted to a syntax error, for
// positions where the document cannot validly end.
func (t *Tokenizer) mustgetc() (byte, error) {
	b, ok := t.getc()
	if !ok {
		if t.srcErr == io.EOF {
			return 0, t.syntaxError("unexpected EOF")
		}
		return 0, t.srcErr
	}
	return b, nil
}

// space skips leading XML whitespace.
func (t *Tokenizer) space() {
	for {
		if t.nextByte < 0 {
			for t.rpos < t.rend {
				switch t.rbuf[t.rpos] {
				case ' ', '\r', '\n', '\t':
					t.rpos++
					t.offset++
				default:
					return
				}
			}
		}
		b, ok := t.getc()
		if !ok {
			return
		}
		switch b {
		case ' ', '\r', '\n', '\t':
		default:
			t.ungetc(b)
			return
		}
	}
}

func (t *Tokenizer) rawToken() (Kind, error) {
	b, ok := t.getc()
	if !ok {
		return EOF, t.srcErr
	}
	if b != '<' {
		// Text section.
		t.ungetc(b)
		data, err := t.readText(-1, false)
		if err != nil {
			return EOF, err
		}
		t.text = data
		return CharData, nil
	}
	b, err := t.mustgetc()
	if err != nil {
		return EOF, err
	}
	switch b {
	case '/':
		return t.endTag()
	case '?':
		return t.procInst()
	case '!':
		return t.bangToken()
	}
	t.ungetc(b)
	return t.startTag()
}

// tagName reads and validates one raw name, appending it to dst (whose
// first start bytes are earlier content, e.g. previous attributes in the
// arena). It returns the updated buffer and the local-part offset within
// the appended name. errNotName means the next byte cannot start a name
// (nothing consumed) or the name has more than one colon.
func (t *Tokenizer) tagName(dst []byte, start int) ([]byte, int, error) {
	dst, err := t.readRawName(dst)
	if err != nil {
		return dst, 0, err
	}
	name := dst[start:]
	if !isName(name) {
		return dst, 0, t.syntaxError("invalid XML name: " + string(name))
	}
	localOff, ok := nsplit(name)
	if !ok {
		return dst, 0, errNotName // more than one colon: contextual error
	}
	return dst, localOff, nil
}

// readRawName appends one maximal run of name bytes to dst. The byte
// class matches encoding/xml's readName: ASCII name characters plus any
// byte >= 0x80 (full character validation happens in isName afterwards).
func (t *Tokenizer) readRawName(dst []byte) ([]byte, error) {
	b, err := t.mustgetc()
	if err != nil {
		return dst, err
	}
	if b < utf8.RuneSelf && !isNameByte(b) {
		t.ungetc(b)
		return dst, errNotName
	}
	dst = append(dst, b)
	for {
		// Bulk-scan the read buffer for the rest of the name.
		if t.nextByte < 0 {
			i := t.rpos
			for i < t.rend {
				if c := t.rbuf[i]; c < utf8.RuneSelf && !isNameByte(c) {
					break
				}
				i++
			}
			if i > t.rpos {
				dst = append(dst, t.rbuf[t.rpos:i]...)
				t.offset += int64(i - t.rpos)
				t.rpos = i
			}
			if i < t.rend {
				return dst, nil // stopped at a non-name byte, unconsumed
			}
		}
		b, err = t.mustgetc()
		if err != nil {
			return dst, err
		}
		if b < utf8.RuneSelf && !isNameByte(b) {
			t.ungetc(b)
			return dst, nil
		}
		dst = append(dst, b)
	}
}

// nsplit applies encoding/xml's prefix:local splitting to a validated
// raw name: more than one colon is rejected; an empty prefix or local
// part keeps the whole name as the local part.
func nsplit(name []byte) (localOff int, ok bool) {
	colon, colons := -1, 0
	for i, c := range name {
		if c == ':' {
			if colons++; colons > 1 {
				return 0, false
			}
			colon = i
		}
	}
	if colon <= 0 || colon == len(name)-1 {
		return 0, true
	}
	return colon + 1, true
}

func (t *Tokenizer) startTag() (Kind, error) {
	var localOff int
	var err error
	t.nameBuf, localOff, err = t.tagName(t.nameBuf[:0], 0)
	if err == errNotName {
		return EOF, t.syntaxError("expected element name after <")
	}
	if err != nil {
		return EOF, err
	}
	t.attrArena = t.attrArena[:0]
	t.attrSpans = t.attrSpans[:0]
	empty := false
	for {
		t.space()
		b, err := t.mustgetc()
		if err != nil {
			return EOF, err
		}
		if b == '/' {
			if b, err = t.mustgetc(); err != nil {
				return EOF, err
			}
			if b != '>' {
				return EOF, t.syntaxError("expected /> in element")
			}
			empty = true
			break
		}
		if b == '>' {
			break
		}
		t.ungetc(b)

		var sp attrSpan
		sp.nameOff = len(t.attrArena)
		t.attrArena, sp.localOff, err = t.tagName(t.attrArena, sp.nameOff)
		if err == errNotName {
			return EOF, t.syntaxError("expected attribute name in element")
		}
		if err != nil {
			return EOF, err
		}
		sp.nameLen = len(t.attrArena) - sp.nameOff
		t.space()
		if b, err = t.mustgetc(); err != nil {
			return EOF, err
		}
		if b != '=' {
			return EOF, t.syntaxError("attribute name without = in element")
		}
		t.space()
		val, err := t.attrval()
		if err != nil {
			return EOF, err
		}
		sp.valOff = len(t.attrArena)
		sp.valLen = len(val)
		t.attrArena = append(t.attrArena, val...)
		t.attrSpans = append(t.attrSpans, sp)
	}
	// The arena is complete; materialize the attribute views.
	t.attrs = t.attrs[:0]
	for _, sp := range t.attrSpans {
		name := t.attrArena[sp.nameOff : sp.nameOff+sp.nameLen]
		a := Attr{
			Local: name[sp.localOff:],
			Value: t.attrArena[sp.valOff : sp.valOff+sp.valLen],
		}
		if sp.localOff > 0 {
			a.Prefix = name[:sp.localOff-1]
		}
		t.attrs = append(t.attrs, a)
	}
	off := len(t.stackBuf)
	t.stackBuf = append(t.stackBuf, t.nameBuf...)
	t.stack = append(t.stack, elemFrame{off: off, n: len(t.nameBuf), localOff: localOff})
	t.name = t.stackBuf[off+localOff : off+len(t.nameBuf)]
	t.needClose = empty
	return StartElement, nil
}

func (t *Tokenizer) attrval() ([]byte, error) {
	b, err := t.mustgetc()
	if err != nil {
		return nil, err
	}
	if b == '"' || b == '\'' {
		return t.readText(int(b), false)
	}
	return nil, t.syntaxError("unquoted or missing attribute value in element")
}

func (t *Tokenizer) endTag() (Kind, error) {
	var localOff int
	var err error
	t.nameBuf, localOff, err = t.tagName(t.nameBuf[:0], 0)
	if err == errNotName {
		return EOF, t.syntaxError("expected element name after </")
	}
	if err != nil {
		return EOF, err
	}
	local := t.nameBuf[localOff:]
	t.space()
	b, err := t.mustgetc()
	if err != nil {
		return EOF, err
	}
	if b != '>' {
		return EOF, t.syntaxError("invalid characters between </" + string(local) + " and >")
	}
	if len(t.stack) == 0 {
		return EOF, t.syntaxError("unexpected end element </" + string(local) + ">")
	}
	top := t.stack[len(t.stack)-1]
	full := t.stackBuf[top.off : top.off+top.n]
	if !equalName(full, top.localOff, t.nameBuf, localOff) {
		openLocal := string(full[top.localOff:])
		if openLocal != string(local) {
			return EOF, t.syntaxError("element <" + openLocal + "> closed by </" + string(local) + ">")
		}
		return EOF, t.syntaxError("element <" + openLocal + "> closed by </" + string(local) + "> in another namespace prefix")
	}
	t.name = local
	t.stack = t.stack[:len(t.stack)-1]
	t.stackBuf = t.stackBuf[:top.off]
	return EndElement, nil
}

// equalName reports whether two raw names agree in both prefix and local
// part. Because the prefix:local split is injective on valid raw names,
// this is plain byte equality.
func equalName(a []byte, aLocal int, b []byte, bLocal int) bool {
	if len(a) != len(b) || aLocal != bLocal {
		return false
	}
	return string(a) == string(b)
}

func (t *Tokenizer) procInst() (Kind, error) {
	var err error
	t.nameBuf, err = t.readRawName(t.nameBuf[:0])
	if err == errNotName {
		return EOF, t.syntaxError("expected target name after <?")
	}
	if err != nil {
		return EOF, err
	}
	if !isName(t.nameBuf) {
		return EOF, t.syntaxError("invalid XML name: " + string(t.nameBuf))
	}
	t.space()
	buf := t.textBuf[:0]
	var b0 byte
	for {
		b, err := t.mustgetc()
		if err != nil {
			t.textBuf = buf
			return EOF, err
		}
		buf = append(buf, b)
		if b0 == '?' && b == '>' {
			break
		}
		b0 = b
	}
	t.textBuf = buf
	data := buf[:len(buf)-2] // chop ?>
	if string(t.nameBuf) == "xml" {
		content := string(data)
		if ver := procInstParam("version", content); ver != "" && ver != "1.0" {
			return EOF, fmt.Errorf("xmltok: unsupported version %q; only version 1.0 is supported", ver)
		}
		if enc := procInstParam("encoding", content); enc != "" && !strings.EqualFold(enc, "utf-8") {
			return EOF, fmt.Errorf("xmltok: encoding %q declared but only utf-8 is supported", enc)
		}
	}
	return ProcInst, nil
}

// procInstParam extracts a pseudo-attribute from an <?xml?> declaration
// body, with the same permissive scan encoding/xml uses.
func procInstParam(param, s string) string {
	param = param + "="
	lenp := len(param)
	i := 0
	var sep byte
	for i < len(s) {
		sub := s[i:]
		k := strings.Index(sub, param)
		if k < 0 || lenp+k >= len(sub) {
			return ""
		}
		i += lenp + k + 1
		if c := sub[lenp+k]; c == '\'' || c == '"' {
			sep = c
			break
		}
	}
	if sep == 0 {
		return ""
	}
	j := strings.IndexByte(s[i:], sep)
	if j < 0 {
		return ""
	}
	return s[i : i+j]
}

// bangToken handles everything after "<!": comments, CDATA sections and
// directives (DOCTYPE and friends, including their internal subsets).
func (t *Tokenizer) bangToken() (Kind, error) {
	b, err := t.mustgetc()
	if err != nil {
		return EOF, err
	}
	switch b {
	case '-': // probably <!-- comment
		if b, err = t.mustgetc(); err != nil {
			return EOF, err
		}
		if b != '-' {
			return EOF, t.syntaxError("invalid sequence <!- not part of <!--")
		}
		var b0, b1 byte
		for {
			if b, err = t.mustgetc(); err != nil {
				return EOF, err
			}
			if b0 == '-' && b1 == '-' {
				if b != '>' {
					return EOF, t.syntaxError(`invalid sequence "--" not allowed in comments`)
				}
				break
			}
			b0, b1 = b1, b
		}
		return Comment, nil

	case '[': // probably <![CDATA[
		for i := 0; i < 6; i++ {
			if b, err = t.mustgetc(); err != nil {
				return EOF, err
			}
			if b != "CDATA["[i] {
				return EOF, t.syntaxError("invalid <![ sequence")
			}
		}
		data, err := t.readText(-1, true)
		if err != nil {
			return EOF, err
		}
		t.text = data
		return CharData, nil
	}

	// A directive. The content is scanned for well-formedness (quoted
	// angle brackets don't nest, embedded comments are skipped) but not
	// retained. The byte after "<!" is content, never quoting or nesting
	// — encoding/xml buffers it before its scan loop.
	inquote := byte(0)
	depth := 0
	for {
		if b, err = t.mustgetc(); err != nil {
			return EOF, err
		}
		if inquote == 0 && b == '>' && depth == 0 {
			break
		}
	HandleB:
		switch {
		case b == inquote:
			inquote = 0
		case inquote != 0:
			// in quotes, no special action
		case b == '\'' || b == '"':
			inquote = b
		case b == '>':
			depth--
		case b == '<':
			// Look for <!-- to begin a comment.
			const s = "!--"
			for i := 0; i < len(s); i++ {
				if b, err = t.mustgetc(); err != nil {
					return EOF, err
				}
				if b != s[i] {
					// The matched prefix bytes are plain content; only
					// the mismatching byte gets control processing.
					depth++
					goto HandleB
				}
			}
			// Skip to the comment terminator.
			var b0, b1 byte
			for {
				if b, err = t.mustgetc(); err != nil {
					return EOF, err
				}
				if b0 == '-' && b1 == '-' && b == '>' {
					break
				}
				b0, b1 = b1, b
			}
		}
	}
	return Directive, nil
}

// entityValue resolves the five predefined entities; a byte-keyed map
// lookup so the hot path allocates nothing.
var entityValue = map[string]string{
	"lt":   "<",
	"gt":   ">",
	"amp":  "&",
	"apos": "'",
	"quot": `"`,
}

// readText reads a text run into the shared text buffer: plain character
// data (quote < 0), a quoted attribute value (quote is the closing
// quote byte), or a CDATA section body (cdata). The control flow — entity
// expansion, \r / \r\n rewriting, the ]]> rules, the final character
// validation — mirrors encoding/xml's text() exactly; the performance
// difference is that runs of ordinary bytes are copied straight from the
// read buffer instead of one getc round trip per byte.
func (t *Tokenizer) readText(quote int, cdata bool) ([]byte, error) {
	var b0, b1 byte
	trunc := 0
	buf := t.textBuf[:0]
	defer func() { t.textBuf = buf[:0] }()
Input:
	for {
		// Fast path: copy the maximal run of bytes that cannot affect
		// control flow, keeping b0/b1 tracking the last two raw bytes.
		if t.nextByte < 0 && t.rpos < t.rend {
			i := t.rpos
			for i < t.rend {
				c := t.rbuf[i]
				if c == '\r' || (quote < 0 && c == '>') ||
					(quote >= 0 && int(c) == quote) ||
					(!cdata && (c == '&' || c == '<')) {
					break
				}
				i++
			}
			if i > t.rpos {
				span := t.rbuf[t.rpos:i]
				buf = append(buf, span...)
				if n := len(span); n >= 2 {
					b0, b1 = span[n-2], span[n-1]
				} else {
					b0, b1 = b1, span[0]
				}
				t.offset += int64(i - t.rpos)
				t.rpos = i
			}
		}
		b, ok := t.getc()
		if !ok {
			if cdata {
				if t.srcErr == io.EOF {
					return nil, t.syntaxError("unexpected EOF in CDATA section")
				}
				return nil, t.srcErr
			}
			break Input
		}

		// A CDATA section ends with ]]>; in ordinary text ]]> is an
		// error; in quoted strings it is allowed.
		if quote < 0 && b0 == ']' && b1 == ']' && b == '>' {
			if cdata {
				trunc = 2
				break Input
			}
			return nil, t.syntaxError("unescaped ]]> not in CDATA section")
		}

		// Stop reading text if we see a <.
		if b == '<' && !cdata {
			if quote >= 0 {
				return nil, t.syntaxError("unescaped < inside quoted string")
			}
			t.ungetc('<')
			break Input
		}
		if quote >= 0 && b == byte(quote) {
			break Input
		}
		if b == '&' && !cdata {
			// Entity reference up to the semicolon. Only the predefined
			// entities resolve; anything else is a strict-mode error,
			// matching a decoder with a nil Entity map.
			before := len(buf)
			buf = append(buf, '&')
			var text string
			var haveText bool
			b, err := t.mustgetc()
			if err != nil {
				return nil, err
			}
			if b == '#' {
				buf = append(buf, b)
				if b, err = t.mustgetc(); err != nil {
					return nil, err
				}
				base := 10
				if b == 'x' {
					base = 16
					buf = append(buf, b)
					if b, err = t.mustgetc(); err != nil {
						return nil, err
					}
				}
				start := len(buf)
				for '0' <= b && b <= '9' ||
					base == 16 && 'a' <= b && b <= 'f' ||
					base == 16 && 'A' <= b && b <= 'F' {
					buf = append(buf, b)
					if b, err = t.mustgetc(); err != nil {
						return nil, err
					}
				}
				if b != ';' {
					t.ungetc(b)
				} else {
					s := string(buf[start:])
					buf = append(buf, ';')
					n, perr := strconv.ParseUint(s, base, 64)
					if perr == nil && n <= unicode.MaxRune {
						text = string(rune(n))
						haveText = true
					}
				}
			} else {
				t.ungetc(b)
				var nerr error
				buf, nerr = t.readRawName(buf)
				if nerr != nil && nerr != errNotName {
					return nil, nerr
				}
				if b, err = t.mustgetc(); err != nil {
					return nil, err
				}
				if b != ';' {
					t.ungetc(b)
				} else {
					name := buf[before+1:]
					buf = append(buf, ';')
					if isName(name) {
						if v, ok := entityValue[string(name)]; ok {
							text = v
							haveText = true
						}
					}
				}
			}

			if haveText {
				buf = append(buf[:before], text...)
				b0, b1 = 0, 0
				continue Input
			}
			ent := string(buf[before:])
			if ent[len(ent)-1] != ';' {
				ent += " (no semicolon)"
			}
			return nil, t.syntaxError("invalid character entity " + ent)
		}

		// Rewrite unescaped \r and \r\n into \n. A \n right after \r is
		// consumed here, so the bulk scanner (which treats \n as an
		// ordinary byte) never sees one that should be skipped.
		if b == '\r' {
			buf = append(buf, '\n')
			if b2, ok2 := t.getc(); ok2 {
				if b2 == '\n' {
					b0, b1 = '\r', '\n'
					continue Input
				}
				t.ungetc(b2)
			}
			b0, b1 = b1, '\r'
			continue Input
		}
		if b1 == '\r' && b == '\n' {
			// Skip \r\n — we already wrote \n (unreachable now that the
			// \r branch consumes the pair, kept for fidelity).
		} else {
			buf = append(buf, b)
		}

		b0, b1 = b1, b
	}
	data := buf[:len(buf)-trunc]

	if err := t.validateChars(data); err != nil {
		return nil, err
	}
	return data, nil
}

// validateChars rejects invalid UTF-8 and characters outside the XML
// character range, with an ASCII fast path.
func (t *Tokenizer) validateChars(data []byte) error {
	i := 0
	for i < len(data) {
		c := data[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 || c == 0x09 || c == 0x0A || c == 0x0D {
				i++
				continue
			}
			return t.syntaxError(fmt.Sprintf("illegal character code %U", rune(c)))
		}
		r, size := utf8.DecodeRune(data[i:])
		if r == utf8.RuneError && size == 1 {
			return t.syntaxError("invalid UTF-8")
		}
		if !isInCharacterRange(r) {
			return t.syntaxError(fmt.Sprintf("illegal character code %U", r))
		}
		i += size
	}
	return nil
}

// isInCharacterRange is the XML 1.0 Char production.
func isInCharacterRange(r rune) bool {
	return r == 0x09 ||
		r == 0x0A ||
		r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// isNameByte is the ASCII name-byte class of encoding/xml's readName.
func isNameByte(c byte) bool {
	return 'A' <= c && c <= 'Z' ||
		'a' <= c && c <= 'z' ||
		'0' <= c && c <= '9' ||
		c == '_' || c == ':' || c == '.' || c == '-'
}

// isName reports whether s is a valid XML name per Appendix B.
func isName(s []byte) bool {
	if len(s) == 0 {
		return false
	}
	c, n := utf8.DecodeRune(s)
	if c == utf8.RuneError && n == 1 {
		return false
	}
	if !unicode.Is(nameStart, c) {
		return false
	}
	for n < len(s) {
		s = s[n:]
		c, n = utf8.DecodeRune(s)
		if c == utf8.RuneError && n == 1 {
			return false
		}
		if !unicode.Is(nameStart, c) && !unicode.Is(nameExtra, c) {
			return false
		}
	}
	return true
}
