package xmltok

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"testing"
)

// event is one token in normalized form, comparable across the fast
// tokenizer and the encoding/xml oracle. Attribute prefixes are omitted:
// encoding/xml reports post-translation namespace URLs, not raw
// prefixes, so prefix behaviour is asserted by targeted tests instead.
type event struct {
	kind  Kind
	name  string   // StartElement/EndElement local name
	text  string   // CharData content
	attrs []string // "local=value" per attribute, in order
}

func (e event) String() string {
	return fmt.Sprintf("{%d %q %q %v}", e.kind, e.name, e.text, e.attrs)
}

// driveTok runs the fast tokenizer to completion.
func driveTok(t *Tokenizer, data string) ([]event, error) {
	t.Reset(strings.NewReader(data))
	var evs []event
	for {
		kind, err := t.Next()
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return evs, err
		}
		ev := event{kind: kind}
		switch kind {
		case StartElement:
			ev.name = string(t.Name())
			for _, a := range t.Attr() {
				ev.attrs = append(ev.attrs, string(a.Local)+"="+string(a.Value))
			}
		case EndElement:
			ev.name = string(t.Name())
		case CharData:
			ev.text = string(t.Text())
		}
		evs = append(evs, ev)
	}
}

// driveStd runs the encoding/xml oracle to completion in strict mode.
func driveStd(data string) ([]event, error) {
	dec := xml.NewDecoder(strings.NewReader(data))
	var evs []event
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return evs, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			ev := event{kind: StartElement, name: t.Name.Local}
			for _, a := range t.Attr {
				ev.attrs = append(ev.attrs, a.Name.Local+"="+a.Value)
			}
			evs = append(evs, ev)
		case xml.EndElement:
			evs = append(evs, event{kind: EndElement, name: t.Name.Local})
		case xml.CharData:
			evs = append(evs, event{kind: CharData, text: string(t)})
		case xml.Comment:
			evs = append(evs, event{kind: Comment})
		case xml.ProcInst:
			evs = append(evs, event{kind: ProcInst})
		case xml.Directive:
			evs = append(evs, event{kind: Directive})
		}
	}
}

func sameEvents(a, b []event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].kind != b[i].kind || a[i].name != b[i].name || a[i].text != b[i].text {
			return false
		}
		if len(a[i].attrs) != len(b[i].attrs) {
			return false
		}
		for j := range a[i].attrs {
			if a[i].attrs[j] != b[i].attrs[j] {
				return false
			}
		}
	}
	return true
}

// equivalenceCorpus is the shared battery of tricky documents — valid
// and invalid — that both the table test and the fuzz seeds use.
var equivalenceCorpus = []string{
	// Plain structure.
	"<a/>",
	"<a></a>",
	"<a><b/><c>x</c></a>",
	"<root><mid><leaf>text</leaf></mid><leaf/></root>",
	"<a>one<b/>two</a>",
	"  <a/>  ",
	"text only, no markup",
	"<a/><b/>",          // multiple roots: accepted by encoding/xml
	"leading<a/>middle", // top-level text around a root
	"",

	// Attributes.
	`<a x="1" y='2'/>`,
	`<a x="a&amp;b"/>`,
	`<a x="&lt;&gt;&apos;&quot;&amp;"/>`,
	`<a x="&#65;&#x42;"/>`,
	`<a x="]]>"/>`, // ]]> is legal inside quoted values
	`<a x="tab&#9;end"/>`,
	`<a x=""/>`,
	`<a x="1" x="1"/>`, // duplicate attrs are not rejected
	`<a x=1/>`,         // unquoted: strict error
	`<a x/>`,           // missing =: strict error
	`<a x="1'/>`,       // mismatched quote: unexpected EOF
	`<a x="<"/>`,       // unescaped < in value
	`<a ="1"/>`,
	"<a x=\"new\nline\"/>",
	"<a x=\"cr\rend\"/>",

	// Entities and character references in text.
	"<a>&lt;tag&gt;</a>",
	"<a>&amp;&apos;&quot;</a>",
	"<a>&#65;&#x41;&#x6a;</a>",
	"<a>&#xD;</a>", // entity-produced \r is NOT newline-normalized
	"<a>&#x20AC;</a>",
	"<a>&#xD800;</a>",                // surrogate: becomes U+FFFD, accepted
	"<a>&#x110000;</a>",              // beyond MaxRune: rejected
	"<a>&#99999999999999999999;</a>", // overflow: rejected
	"<a>&unknown;</a>",
	"<a>&lt</a>",  // missing semicolon
	"<a>&;</a>",   // empty entity
	"<a>&#;</a>",  // empty char ref
	"<a>&#x;</a>", // empty hex ref
	"<a>& lt;</a>",
	"<a>&lt ;</a>",

	// Newline normalization.
	"<a>line1\r\nline2</a>",
	"<a>line1\rline2</a>",
	"<a>line1\r\rline2</a>",
	"<a>line1\n\rline2</a>",
	"<a>\r</a>",
	"<a>\r\n</a>",

	// CDATA.
	"<a><![CDATA[hello]]></a>",
	"<a><![CDATA[]]></a>",
	"<a><![CDATA[<not><tags>&amp;]]></a>",
	"<a><![CDATA[a]]b]]></a>",
	"<a><![CDATA[\r\nx\r]]></a>",
	"<a><![CDATA[unterminated</a>",
	"<a><![CDAT[x]]></a>",
	"<a>plain ]]> text</a>", // ]]> outside CDATA: rejected
	"<a>] ]></a>",
	"<a>]]</a>",

	// Comments.
	"<a><!-- a comment --></a>",
	"<!--c--><a/>",
	"<a><!----></a>",
	"<a><!-- -- --></a>", // -- inside comment: rejected
	"<a><!----->",        // ---> : rejected
	"<a><!--unterminated</a>",
	"<a>x<!--c-->y</a>", // comment splits CharData

	// Processing instructions.
	"<?xml version=\"1.0\"?><a/>",
	"<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>",
	"<?xml version=\"1.0\" encoding=\"utf-8\"?><a/>",
	"<?xml version=\"1.1\"?><a/>",                     // unsupported version
	"<?xml version=\"1.0\" encoding=\"latin1\"?><a/>", // unsupported encoding
	"<?xml?><a/>",
	"<a><?xml version=\"1.1\"?></a>", // version checked anywhere
	"<?target some data?><a/>",
	"<a>x<?pi?>y</a>", // PI splits CharData
	"<?pi unterminated<a/>",
	"<? x?><a/>", // missing target name
	"<a><?pi a?b?>c</a>",

	// Directives / DOCTYPE.
	"<!DOCTYPE doc><a/>",
	"<!DOCTYPE doc SYSTEM \"doc.dtd\"><a/>",
	"<!DOCTYPE doc [<!ELEMENT doc (#PCDATA)>]><a/>",
	"<!DOCTYPE doc [<!ENTITY e \"v\"><!ATTLIST a x CDATA #IMPLIED>]><a/>",
	"<!DOCTYPE doc [ <!-- comment with > inside --> ]><a/>",
	"<!DOCTYPE doc \"quoted > bracket\"><a/>",
	"<!DOCTYPE doc 'single > quote'><a/>",
	"<!DOCTYPE doc [<!E a><!E b>]><a/>",
	"<!DOCTYPE unterminated [<a/>",
	"<!>x><a/>",
	"<!\"x\"><a/>",
	"<a><!-</a>",

	// Names: namespaces, colons, unicode.
	"<x:a xmlns:x=\"u\"><x:b/></x:a>",
	"<a:b></a:b>",
	"<a:b></b>", // prefix mismatch
	"<a:b:c/>",  // two colons: rejected
	"<:a/>",     // leading colon: local is ":a"
	"<:a></:a>",
	"<a:/>", // trailing colon: local is "a:"
	"<1a/>", // digit start: invalid name
	"<.a/>", // dot start: invalid name
	"<-a/>",
	"<a.b-c_d/>",
	"<\u00e9l\u00e9ment/>",      // Latin-1 letters
	"<\u65e5\u672c\u8a9e/>",     // CJK name
	"<a \u00e9=" + `"v"` + "/>", // unicode attribute name
	"<\u0301bad/>",              // combining mark start: invalid
	"<a\xff/>",                  // invalid UTF-8 in name
	"<a xmlns=\"d\"><b/></a>",
	"<a xmlns:x=\"u\" x:y=\"1\"/>",

	// Structure errors.
	"<a><b></a></b>",
	"<a></b>",
	"</a>",
	"<a>",
	"<a><b>",
	"<a",
	"<",
	"<>",
	"< a/>",
	"<a/ >",
	"<a / >",
	"<a//>",
	"<a>x",     // text then EOF with open element
	"<a></a >", // space before > in end tag is fine
	"<a></ a>", // space before name in end tag is not a name start

	// Character validity.
	"<a>\x00</a>",
	"<a>\x0b</a>",
	"<a>\xc3\x28</a>",     // invalid UTF-8 in text
	"<a>\xef\xbf\xbe</a>", // U+FFFE: outside Char range
	"<a x=\"\x00\"/>",
	"<a>\xf0\x9f\x98\x80</a>", // emoji: fine
}

func TestTokenizerEquivalence(t *testing.T) {
	tok := NewTokenizer()
	for _, doc := range equivalenceCorpus {
		fastEvs, fastErr := driveTok(tok, doc)
		stdEvs, stdErr := driveStd(doc)
		if (fastErr != nil) != (stdErr != nil) {
			t.Errorf("doc %q: fast err = %v, std err = %v", doc, fastErr, stdErr)
			continue
		}
		if fastErr != nil {
			// Both reject: the token prefixes before the error must agree.
			if !sameEvents(fastEvs, stdEvs) {
				t.Errorf("doc %q: prefix mismatch before error\nfast: %v (%v)\nstd:  %v (%v)",
					doc, fastEvs, fastErr, stdEvs, stdErr)
			}
			continue
		}
		if !sameEvents(fastEvs, stdEvs) {
			t.Errorf("doc %q:\nfast: %v\nstd:  %v", doc, fastEvs, stdEvs)
		}
	}
}

// TestTokenizerBufferBoundaries shifts a document across the internal
// read-buffer boundary so every special byte lands on a chunk edge at
// least once, and also feeds it one byte at a time.
func TestTokenizerBufferBoundaries(t *testing.T) {
	doc := `<root a="v&amp;1"><!-- c --><x:kid xmlns:x="u">text &#65;</x:kid>` +
		"<k><![CDATA[cd]]x]]></k>\r\n</root>"
	want, err := driveStd(strings.Repeat(" ", 7) + doc)
	if err != nil {
		t.Fatal(err)
	}
	tok := NewTokenizer()
	for pad := readBufSize - len(doc) - 4; pad < readBufSize+4; pad++ {
		if pad < 0 {
			continue
		}
		in := strings.Repeat(" ", pad) + doc
		got, err := driveTok(tok, in)
		if err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		// Strip the leading whitespace CharData and compare the rest.
		wantTail, gotTail := want[1:], got[1:]
		if !sameEvents(gotTail, wantTail) {
			t.Fatalf("pad %d:\ngot:  %v\nwant: %v", pad, gotTail, wantTail)
		}
	}
	// One byte at a time.
	tok.Reset(&oneByteReader{data: doc})
	var kinds []Kind
	for {
		kind, err := tok.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("byte-at-a-time: %v", err)
		}
		kinds = append(kinds, kind)
	}
	if len(kinds) == 0 {
		t.Fatal("no tokens from byte-at-a-time reader")
	}
}

// oneByteReader yields one byte per Read call.
type oneByteReader struct {
	data string
	pos  int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	p[0] = r.data[r.pos]
	r.pos++
	return 1, nil
}

func TestTokenizerPrefixes(t *testing.T) {
	tok := NewTokenizer()
	tok.Reset(strings.NewReader(`<a xmlns:x="u" x:p="1" q="2" xmlns="d" :odd="3"/>`))
	kind, err := tok.Next()
	if err != nil || kind != StartElement {
		t.Fatalf("Next = %v, %v", kind, err)
	}
	attrs := tok.Attr()
	type pl struct{ prefix, local string }
	want := []pl{{"xmlns", "x"}, {"x", "p"}, {"", "q"}, {"", "xmlns"}, {"", ":odd"}}
	if len(attrs) != len(want) {
		t.Fatalf("got %d attrs, want %d", len(attrs), len(want))
	}
	for i, w := range want {
		if string(attrs[i].Prefix) != w.prefix || string(attrs[i].Local) != w.local {
			t.Errorf("attr %d = %q:%q, want %q:%q",
				i, attrs[i].Prefix, attrs[i].Local, w.prefix, w.local)
		}
	}
}

// TestTokenizerReuseAllocs verifies the whole point of the package: after
// warmup, tokenizing a document through a Reset tokenizer performs zero
// allocations.
func TestTokenizerReuseAllocs(t *testing.T) {
	doc := `<proteinDatabase><entry id="1"><name>abc&amp;def</name>` +
		`<organism>E. coli</organism><!-- note --><seq>MKV</seq></entry>` +
		`<entry id="2"><name>x</name></entry></proteinDatabase>`
	tok := NewTokenizer()
	r := strings.NewReader(doc)
	drain := func() {
		r.Reset(doc)
		tok.Reset(r)
		for {
			_, err := tok.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	drain() // warm buffers
	if allocs := testing.AllocsPerRun(50, drain); allocs > 0 {
		t.Errorf("tokenize allocated %.1f times per document, want 0", allocs)
	}
}

// FuzzStreamEquivalence cross-checks the raw token stream against
// encoding/xml on arbitrary bytes. The dtd-level differential target
// (FuzzTokenizerEquivalence) covers extraction state; this one catches
// divergence in tokens extraction happens to ignore.
func FuzzStreamEquivalence(f *testing.F) {
	for _, doc := range equivalenceCorpus {
		f.Add(doc)
	}
	tok := NewTokenizer()
	f.Fuzz(func(t *testing.T, doc string) {
		fastEvs, fastErr := driveTok(tok, doc)
		stdEvs, stdErr := driveStd(doc)
		if (fastErr != nil) != (stdErr != nil) {
			t.Fatalf("accept/reject mismatch: fast err = %v, std err = %v", fastErr, stdErr)
		}
		if !sameEvents(fastEvs, stdEvs) {
			t.Fatalf("token streams diverge:\nfast: %v\nstd:  %v", fastEvs, stdEvs)
		}
	})
}
