package sample

import (
	"testing"

	"dtdinfer/internal/intern"
)

// TestFingerprintRemapStable builds the same logical multiset three ways —
// directly from strings, and via MergeMultiset from two worker-local ID
// spaces that assign IDs in different orders — and requires identical
// fingerprints: the hashes must depend on symbol strings, never on ID
// assignment.
func TestFingerprintRemapStable(t *testing.T) {
	seqs := [][]string{
		{"a", "b", "c"},
		{"b"},
		{"a", "b", "c"},
		{},
		{"c", "a"},
	}
	direct := FromStrings(seqs)

	// Worker 1 interns a,b,c in first-seen order; worker 2 in reverse.
	build := func(order []string, perm []int) *Set {
		tab := intern.NewTable()
		for _, sym := range order {
			tab.Intern(sym)
		}
		var ms Multiset
		for _, i := range perm {
			ids := make([]int32, len(seqs[i]))
			for j, sym := range seqs[i] {
				id, ok := tab.Lookup(sym)
				if !ok {
					t.Fatalf("symbol %q not pre-interned", sym)
				}
				ids[j] = int32(id)
			}
			ms.AddIDs(ids, 1)
		}
		s := New()
		var remap intern.Remap
		s.MergeMultiset(&ms, tab, &remap)
		return s
	}
	w1 := build([]string{"a", "b", "c"}, []int{0, 1, 2, 3, 4})
	w2 := build([]string{"c", "b", "a"}, []int{4, 3, 2, 1, 0})

	for _, o := range []*Set{w1, w2} {
		if o.ShapeFingerprint() != direct.ShapeFingerprint() {
			t.Errorf("shape fingerprint differs: %x vs %x", o.ShapeFingerprint(), direct.ShapeFingerprint())
		}
		if o.CountedFingerprint() != direct.CountedFingerprint() {
			t.Errorf("counted fingerprint differs: %x vs %x", o.CountedFingerprint(), direct.CountedFingerprint())
		}
	}
}

// TestFingerprintCountSensitivity: bumping the multiplicity of an
// already-seen sequence must leave the shape fingerprint unchanged and
// move the counted one; a new distinct sequence must move both.
func TestFingerprintCountSensitivity(t *testing.T) {
	s := FromStrings([][]string{{"a", "b"}, {"a"}})
	shape, counted := s.ShapeFingerprint(), s.CountedFingerprint()
	if shape == 0 || counted == 0 {
		t.Fatalf("zero fingerprints on non-empty set: shape=%x counted=%x", shape, counted)
	}

	s.Add([]string{"a", "b"}) // repeat shape
	if got := s.ShapeFingerprint(); got != shape {
		t.Errorf("shape fingerprint moved on multiplicity bump: %x -> %x", shape, got)
	}
	if got := s.CountedFingerprint(); got == counted {
		t.Errorf("counted fingerprint did not move on multiplicity bump: %x", counted)
	}

	shape, counted = s.ShapeFingerprint(), s.CountedFingerprint()
	s.Add([]string{"b"}) // new shape
	if got := s.ShapeFingerprint(); got == shape {
		t.Errorf("shape fingerprint did not move on new sequence: %x", shape)
	}
	if got := s.CountedFingerprint(); got == counted {
		t.Errorf("counted fingerprint did not move on new sequence: %x", counted)
	}
}

// TestFingerprintEmptySequence: an element observed only with empty
// content must fingerprint differently from one never observed (zero).
func TestFingerprintEmptySequence(t *testing.T) {
	s := FromStrings([][]string{{}})
	if s.ShapeFingerprint() == 0 {
		t.Error("empty-sequence sample has zero shape fingerprint")
	}
	if s.CountedFingerprint() == 0 {
		t.Error("empty-sequence sample has zero counted fingerprint")
	}
}

// TestFingerprintOrderWithinSequence: sequence hashes are order-sensitive
// within a sequence (ab != ba) while the multiset fingerprint is
// insensitive to the order sequences were added in.
func TestFingerprintOrderWithinSequence(t *testing.T) {
	ab := FromStrings([][]string{{"a", "b"}})
	ba := FromStrings([][]string{{"b", "a"}})
	if ab.ShapeFingerprint() == ba.ShapeFingerprint() {
		t.Error("ab and ba hash identically: sequence hash lost ordering")
	}

	fwd := FromStrings([][]string{{"a"}, {"b"}})
	rev := FromStrings([][]string{{"b"}, {"a"}})
	if fwd.ShapeFingerprint() != rev.ShapeFingerprint() {
		t.Error("shape fingerprint depends on sequence insertion order")
	}
	if fwd.CountedFingerprint() != rev.CountedFingerprint() {
		t.Error("counted fingerprint depends on sequence insertion order")
	}
}

// TestFingerprintMergePreserved: Merge and Clone reproduce the same
// fingerprints as building the union directly.
func TestFingerprintMergePreserved(t *testing.T) {
	a := FromStrings([][]string{{"x"}, {"x", "y"}})
	b := FromStrings([][]string{{"y"}, {"x", "y"}})
	union := FromStrings([][]string{{"x"}, {"x", "y"}, {"y"}, {"x", "y"}})
	m := a.Clone()
	m.Merge(b)
	if m.ShapeFingerprint() != union.ShapeFingerprint() {
		t.Errorf("merged shape fingerprint %x != direct %x", m.ShapeFingerprint(), union.ShapeFingerprint())
	}
	if m.CountedFingerprint() != union.CountedFingerprint() {
		t.Errorf("merged counted fingerprint %x != direct %x", m.CountedFingerprint(), union.CountedFingerprint())
	}
}
