package sample

import (
	"reflect"

	"dtdinfer/internal/intern"
	"sort"
	"strings"
	"testing"
)

func w(syms ...string) []string { return syms }

func TestAddDeduplicatesAndCounts(t *testing.T) {
	s := New()
	s.Add(w("a", "b"))
	s.Add(w("a", "b"))
	s.Add(w("b"))
	s.Add(nil)
	s.Add(w("a", "b"))
	if s.Total() != 5 {
		t.Errorf("Total = %d, want 5", s.Total())
	}
	if s.Unique() != 3 {
		t.Errorf("Unique = %d, want 3", s.Unique())
	}
	if s.Count(0) != 3 || s.Count(1) != 1 || s.Count(2) != 1 {
		t.Errorf("counts = %d %d %d", s.Count(0), s.Count(1), s.Count(2))
	}
	if got := strings.Join(s.SeqStrings(0), " "); got != "a b" {
		t.Errorf("first unique sequence = %q (first-seen order violated)", got)
	}
	if s.NumSymbols() != 2 {
		t.Errorf("NumSymbols = %d", s.NumSymbols())
	}
}

func TestAddCountZeroIsNoOp(t *testing.T) {
	s := New()
	s.AddCount(w("a"), 0)
	s.AddCount(w("a"), -3)
	if s.Total() != 0 || s.Unique() != 0 || s.NumSymbols() != 0 {
		t.Errorf("non-positive counts must not register anything: %v", s.Strings())
	}
}

func TestInternOrderFollowsFirstOccurrence(t *testing.T) {
	s := FromStrings([][]string{w("c", "a"), w("a", "b")})
	for id, want := range []string{"c", "a", "b"} {
		if s.Name(id) != want {
			t.Errorf("Name(%d) = %q, want %q", id, s.Name(id), want)
		}
	}
	if got := s.Symbols(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Symbols = %v", got)
	}
	if id, ok := s.Lookup("b"); !ok || id != 2 {
		t.Errorf("Lookup(b) = %d,%v", id, ok)
	}
	if _, ok := s.Lookup("z"); ok {
		t.Error("Lookup must not intern unseen symbols")
	}
}

func TestMergeAddsCountsAndPreservesOrder(t *testing.T) {
	a := FromStrings([][]string{w("x"), w("x", "y"), w("x")})
	b := FromStrings([][]string{w("y"), w("x", "y"), w("x", "y")})
	a.Merge(b)
	if a.Total() != 6 {
		t.Errorf("Total = %d, want 6", a.Total())
	}
	// a's uniques first in a's order, then b's new unique.
	wantSeqs := [][]string{w("x"), w("x", "y"), w("y")}
	wantCounts := []int{2, 3, 1}
	for i, want := range wantSeqs {
		if !reflect.DeepEqual(a.SeqStrings(i), want) || a.Count(i) != wantCounts[i] {
			t.Errorf("seq %d = %v x%d, want %v x%d",
				i, a.SeqStrings(i), a.Count(i), want, wantCounts[i])
		}
	}
	// Merge remaps b's IDs: "y" is 1 in b but must stay 1 in a ("x"=0).
	if a.Name(0) != "x" || a.Name(1) != "y" {
		t.Errorf("intern order corrupted: %v", a.Symbols())
	}
}

func TestMergeEqualsSequentialAdds(t *testing.T) {
	seqs := [][]string{w("a"), w("b", "a"), w("a"), nil, w("b", "a"), w("c")}
	whole := FromStrings(seqs)
	left := FromStrings(seqs[:3])
	left.Merge(FromStrings(seqs[3:]))
	if !reflect.DeepEqual(whole, left) {
		t.Errorf("Merge(a);Merge(b) differs from sequential adds:\n%v\nvs\n%v",
			whole.Strings(), left.Strings())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := FromStrings([][]string{w("a", "b")})
	c := s.Clone()
	c.Add(w("z"))
	if s.Total() != 1 || s.NumSymbols() != 2 {
		t.Error("mutating a clone leaked into the original")
	}
	if c.Total() != 2 || c.NumSymbols() != 3 {
		t.Errorf("clone broken: %v", c.Strings())
	}
}

func TestStringsExpandsMultiplicities(t *testing.T) {
	in := [][]string{w("a"), w("b"), w("a"), w("a")}
	out := FromStrings(in).Strings()
	if !multisetEqual(in, out) {
		t.Errorf("Strings() = %v is not the input multiset %v", out, in)
	}
	uniq := FromStrings(in).UniqueStrings()
	if len(uniq) != 2 || !reflect.DeepEqual(uniq[0], w("a")) || !reflect.DeepEqual(uniq[1], w("b")) {
		t.Errorf("UniqueStrings = %v", uniq)
	}
}

func TestForEachVisitsFirstSeenOrder(t *testing.T) {
	s := FromStrings([][]string{w("b"), w("a"), w("b")})
	var got []string
	s.ForEach(func(seq []int32, count int) {
		got = append(got, strings.Join(s.expand(seq), " ")+"x"+string(rune('0'+count)))
	})
	if !reflect.DeepEqual(got, []string{"bx2", "ax1"}) {
		t.Errorf("ForEach order = %v", got)
	}
}

// multisetEqual compares two samples as multisets of sequences.
func multisetEqual(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	enc := func(sample [][]string) []string {
		out := make([]string, len(sample))
		for i, w := range sample {
			out[i] = strings.Join(w, "\x00")
		}
		sort.Strings(out)
		return out
	}
	return reflect.DeepEqual(enc(a), enc(b))
}

// FuzzRoundTrip checks that [][]string -> Set -> [][]string is the
// identity up to the ordering of duplicates, on arbitrary samples decoded
// from the fuzz input (0x00 separates symbols, 0x01 separates sequences).
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("a\x00b\x01a\x00b\x01c"))
	f.Add([]byte("\x01\x01"))
	f.Add([]byte{})
	f.Add([]byte("x\x01x\x01x"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var in [][]string
		for _, seq := range strings.Split(string(data), "\x01") {
			var ws []string
			for _, sym := range strings.Split(seq, "\x00") {
				if sym != "" {
					ws = append(ws, sym)
				}
			}
			in = append(in, ws)
		}
		s := FromStrings(in)
		out := s.Strings()
		if !multisetEqual(in, out) {
			t.Fatalf("round trip lost data:\nin:  %q\nout: %q", in, out)
		}
		if s.Total() != len(in) {
			t.Fatalf("Total = %d, want %d", s.Total(), len(in))
		}
		seen := map[string]bool{}
		for _, w := range in {
			for _, sym := range w {
				seen[sym] = true
			}
		}
		if s.NumSymbols() != len(seen) {
			t.Fatalf("NumSymbols = %d, want %d", s.NumSymbols(), len(seen))
		}
	})
}

// TestMergeMultisetRemapPersistsAcrossCalls pins the commit contract the
// parallel ingestion path relies on: one remap per (worker, element)
// serves every multiset staged in that worker's symbol space, with
// symbols resolved through strings only on their first corpus-wide
// sight, and the result equals sequential adds.
func TestMergeMultisetRemapPersistsAcrossCalls(t *testing.T) {
	// Two "shards" staged in one worker-local symbol space.
	tab := intern.NewTable()
	ids := func(syms ...string) []int32 {
		out := make([]int32, len(syms))
		for i, s := range syms {
			out[i] = int32(tab.Intern(s))
		}
		return out
	}
	var shard1, shard2 Multiset
	shard1.AddIDs(ids("b", "a"), 1)
	shard2.AddIDs(ids("b", "a"), 1)
	shard2.AddIDs(ids("c", "a", "c"), 2)

	corpus := New()
	var remap intern.Remap
	corpus.MergeMultiset(&shard1, tab, &remap)
	corpus.MergeMultiset(&shard2, tab, &remap)

	want := FromStrings([][]string{
		{"b", "a"}, {"b", "a"}, {"c", "a", "c"}, {"c", "a", "c"},
	})
	if !reflect.DeepEqual(corpus, want) {
		t.Errorf("merged corpus = %v, want %v", corpus.Strings(), want.Strings())
	}
	// The remap now covers every symbol the worker staged; a fresh
	// multiset in the same space must merge without new resolutions.
	for old := int32(0); int(old) < tab.Len(); old++ {
		if remap.Get(old) < 0 {
			t.Errorf("symbol %d (%s) unresolved after merges", old, tab.Name(int(old)))
		}
	}
}

// TestImportSymbolsRebuildRoundTrip pins the Set serialization
// boundary: exporting the symbol list plus the unique sequences with
// multiplicities and rebuilding through ImportSymbols + AddIDsChecked
// reproduces the original Set exactly — same ID assignments, same
// first-seen sequence order, same fingerprints (recomputed from content,
// so they double as a corruption check for snapshot decoders).
func TestImportSymbolsRebuildRoundTrip(t *testing.T) {
	orig := FromStrings([][]string{
		{"b", "a"}, {"b", "a"}, {"c"}, {}, {"a", "c", "a"},
	})
	rebuilt, err := ImportSymbols(orig.SymbolList())
	if err != nil {
		t.Fatalf("ImportSymbols: %v", err)
	}
	for i := 0; i < orig.Unique(); i++ {
		if err := rebuilt.AddIDsChecked(orig.Seq(i), orig.Count(i)); err != nil {
			t.Fatalf("AddIDsChecked(seq %d): %v", i, err)
		}
	}
	if !reflect.DeepEqual(rebuilt, orig) {
		t.Fatalf("rebuilt Set differs:\n got %v\nwant %v", rebuilt.Strings(), orig.Strings())
	}
	if rebuilt.ShapeFingerprint() != orig.ShapeFingerprint() ||
		rebuilt.CountedFingerprint() != orig.CountedFingerprint() {
		t.Fatal("rebuilt fingerprints differ from original")
	}
}

func TestImportSymbolsRejectsDuplicates(t *testing.T) {
	if _, err := ImportSymbols([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate symbol accepted")
	}
}

func TestAddIDsCheckedRejectsBadInput(t *testing.T) {
	s, err := ImportSymbols([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIDsChecked([]int32{0, 2}, 1); err == nil {
		t.Fatal("out-of-range ID accepted")
	}
	if err := s.AddIDsChecked([]int32{-1}, 1); err == nil {
		t.Fatal("negative ID accepted")
	}
	if err := s.AddIDsChecked([]int32{0}, 0); err == nil {
		t.Fatal("zero multiplicity accepted")
	}
	// Rejections must leave the Set untouched.
	if s.Total() != 0 || s.Unique() != 0 {
		t.Fatalf("rejected adds mutated the set: total=%d unique=%d", s.Total(), s.Unique())
	}
	if err := s.AddIDsChecked([]int32{1, 0}, 3); err != nil {
		t.Fatalf("valid add rejected: %v", err)
	}
	if s.Total() != 3 || s.Unique() != 1 {
		t.Fatalf("after valid add: total=%d unique=%d", s.Total(), s.Unique())
	}
}
