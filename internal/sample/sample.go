// Package sample provides the counted, symbol-interned sample
// representation that every inference engine consumes: a multiset of
// children sequences stored as unique interned-ID sequences with
// multiplicities. Real-world corpora are dominated by repeated sequences,
// so deduplicating at ingestion makes the per-element sample size
// proportional to the number of *distinct* sequences, and interning once
// at the corpus edge removes the per-algorithm cost of re-interning
// strings on every inference call. Multiplicities keep the representation
// lossless: occurrence-count-sensitive consumers (CRX quantifiers, SOA
// edge supports, numeric predicates) see exactly the statistics of the
// expanded string multiset.
package sample

import (
	"fmt"
	"sort"

	"dtdinfer/internal/intern"
)

// Multiset is the table-free core of a counted sample: unique ID
// sequences in first-seen order with multiplicities, deduplicated through
// an encoded-key index. It carries no symbol table of its own — IDs are
// interpreted against whatever space the owner chose — which is what lets
// a parallel ingestion worker stage shard observations entirely in its
// private symbol space and lets the commit fold them into a Set with one
// ID translation per unique sequence. The zero value is ready to use.
type Multiset struct {
	// seqs holds each distinct sequence once, as interned IDs, in the
	// order first observed.
	seqs [][]int32
	// counts[i] is the multiplicity of seqs[i]; always >= 1.
	counts []int
	// index maps an encoded sequence to its position in seqs.
	index map[string]int
	// total is the sum of counts: the size of the expanded multiset.
	total int
	// keyBuf is the reusable encoding buffer for index lookups.
	keyBuf []byte
	// hashes[i] is the content hash of seqs[i] — a chained hash over the
	// *strings* of its symbols, so two Sets holding the same logical
	// multiset agree on it regardless of how their ID spaces were
	// assigned. Bare Multisets staged in a worker's private space carry
	// zero hashes (their fingerprints are never read); the hash is
	// supplied by the owning Set, which knows the symbol strings.
	hashes []uint64
	// shapeFp is the XOR of hashes — an order-insensitive fingerprint of
	// the *distinct* sequence set, unchanged when a merge only bumps
	// multiplicities of already-seen shapes.
	shapeFp uint64
	// countFp is the sum of hashes[i]*counts[i] (mod 2^64) — shapeFp's
	// count-sensitive sibling, changed by any multiplicity bump.
	countFp uint64
}

// Set is a counted multiset of symbol sequences: an intern table over the
// element names plus the counted Multiset of their sequences. The zero
// value is not usable; call New or FromStrings. A Set is not safe for
// concurrent mutation; concurrent reads are fine once building has
// finished.
type Set struct {
	tab *intern.Table
	// symHash[id] is the string hash of the symbol interned at id, grown
	// in lockstep with tab so sequence hashes are computed from IDs
	// without touching strings on the hot path.
	symHash []uint64
	Multiset
}

// New returns an empty Set.
func New() *Set {
	return &Set{tab: intern.NewTable(), Multiset: Multiset{index: map[string]int{}}}
}

// ImportSymbols builds an empty Set whose symbol table is pre-seeded
// with the given names in dense-ID order — the import half of the
// serialization boundary. Rebuilding a snapshotted Set is ImportSymbols
// with the exported SymbolList, then AddIDsChecked per unique sequence:
// because the symbol hashes are recomputed from the imported strings and
// the sequence hashes from those, the rebuilt fingerprints are derived
// entirely from content, so a decoder can revalidate them against the
// stored ones to detect corrupt or tampered sequence data. A duplicate
// name (impossible in a real export) is rejected.
func ImportSymbols(symbols []string) (*Set, error) {
	tab, err := intern.NewTableFromNames(symbols)
	if err != nil {
		return nil, err
	}
	s := &Set{tab: tab, Multiset: Multiset{index: map[string]int{}}}
	s.symHash = make([]uint64, len(symbols))
	for id, sym := range symbols {
		s.symHash[id] = hashSym(sym)
	}
	return s, nil
}

// FromStrings builds a Set from a verbatim sample, interning symbols in
// first-seen order and counting duplicate sequences.
func FromStrings(sample [][]string) *Set {
	s := New()
	for _, w := range sample {
		s.Add(w)
	}
	return s
}

// Add folds one sequence into the multiset.
func (s *Set) Add(w []string) { s.AddCount(w, 1) }

// AddCount folds n occurrences of one sequence into the multiset. n <= 0
// is a no-op. The hot path — a sequence seen before — is allocation-free:
// symbols are interned and encoded into the reusable key buffer, and the
// ID slice is only materialized on first sight.
func (s *Set) AddCount(w []string, n int) {
	if n <= 0 {
		return
	}
	h := uint64(seqSeed)
	for _, sym := range w {
		id := s.internID(sym)
		s.keyBuf = appendID(s.keyBuf, id)
		h = (h ^ s.symHash[id]) * fnvPrime64
	}
	s.bump(nil, n, mix64(h))
}

// Intern returns the ID of sym in s's symbol space, assigning the next
// free ID on first sight. It lets decoders that stage sequences in a
// private ID space translate into the Set's space once per distinct
// symbol, then commit with AddIDs.
func (s *Set) Intern(sym string) int { return int(s.internID(sym)) }

// internID interns sym and keeps symHash in lockstep with the table, so
// every ID a caller can hold has its string hash resolved exactly once.
func (s *Set) internID(sym string) int32 {
	id := s.tab.Intern(sym)
	if id == len(s.symHash) {
		s.symHash = append(s.symHash, hashSym(sym))
	}
	return int32(id)
}

// AddIDs folds n occurrences of a sequence already expressed in the
// multiset's ID space. n <= 0 is a no-op. The repeat path is
// allocation-free; the slice is copied on first sight, so callers may
// reuse ids. A bare Multiset has no symbol strings, so its sequences
// hash as zero and its fingerprints are meaningless — Set.AddIDs shadows
// this with the hash-maintaining version.
func (m *Multiset) AddIDs(ids []int32, n int) {
	if n <= 0 {
		return
	}
	for _, id := range ids {
		m.keyBuf = appendID(m.keyBuf, id)
	}
	// Passing nil lets bump decode a fresh copy from the key only when the
	// sequence is new, so the caller keeps ownership of ids and the repeat
	// path stays allocation-free.
	m.bump(nil, n, 0)
}

// AddIDs folds n occurrences of a sequence expressed in the Set's ID
// space, maintaining the content fingerprints. Every ID must have come
// from Intern on this Set.
func (s *Set) AddIDs(ids []int32, n int) {
	if n <= 0 {
		return
	}
	h := uint64(seqSeed)
	for _, id := range ids {
		s.keyBuf = appendID(s.keyBuf, id)
		h = (h ^ s.symHash[id]) * fnvPrime64
	}
	s.bump(nil, n, mix64(h))
}

// AddIDsChecked is AddIDs for untrusted input: every ID must be in the
// Set's assigned range and n must be positive, otherwise the sequence is
// rejected with an error and the Set is left unchanged. Snapshot
// decoders use it so a corrupt ID stream surfaces as an error instead of
// an out-of-range panic on the unchecked hot path.
func (s *Set) AddIDsChecked(ids []int32, n int) error {
	if n < 1 {
		return fmt.Errorf("sample: sequence multiplicity %d is not positive", n)
	}
	for _, id := range ids {
		if id < 0 || int(id) >= len(s.symHash) {
			return fmt.Errorf("sample: symbol ID %d out of range [0, %d)", id, len(s.symHash))
		}
	}
	s.AddIDs(ids, n)
	return nil
}

// bump adds n to the sequence encoded in keyBuf, registering it as a new
// unique sequence when unseen; ids, when non-nil, is used as the stored
// sequence (bump takes ownership), otherwise the IDs are decoded from the
// key. h is the sequence's content hash, folded into the fingerprints.
// keyBuf is left empty so two Sets holding the same multiset compare
// equal under reflect.DeepEqual regardless of insertion history.
func (m *Multiset) bump(ids []int32, n int, h uint64) {
	if m.index == nil {
		m.index = map[string]int{}
	}
	if i, ok := m.index[string(m.keyBuf)]; ok {
		m.counts[i] += n
		m.countFp += m.hashes[i] * uint64(n)
	} else {
		if ids == nil {
			ids = decodeKey(m.keyBuf)
		}
		m.index[string(m.keyBuf)] = len(m.seqs)
		m.seqs = append(m.seqs, ids)
		m.counts = append(m.counts, n)
		m.hashes = append(m.hashes, h)
		m.shapeFp ^= h
		m.countFp += h * uint64(n)
	}
	m.total += n
	m.keyBuf = m.keyBuf[:0]
}

// Fingerprint hashing. Symbols hash by their strings (FNV-1a), sequences
// by chaining symbol hashes through the FNV prime and finalizing with a
// splitmix64-style mixer — so the hash of a sequence depends only on the
// symbol strings and their order, never on the intern-table ID
// assignment. That is what makes fingerprints remap-stable: a multiset
// staged in a worker's private symbol space and merged through a remap
// fingerprints identically to one built directly.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// seqSeed keeps the empty sequence's hash away from zero so an
	// element observed only with empty content still fingerprints
	// distinctly from an element never observed.
	seqSeed = 0x9e3779b97f4a7c15
)

func hashSym(sym string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(sym); i++ {
		h = (h ^ uint64(sym[i])) * fnvPrime64
	}
	return mix64(h)
}

// HashString exposes the symbol content hash (FNV-1a finalized with
// Mix64) so sibling fingerprints — the attribute-statistics fingerprint
// in the dtd layer — hash strings the same way the sequence
// fingerprints do, keeping every fingerprint in the system remap- and
// process-stable for the same content.
func HashString(s string) uint64 { return hashSym(s) }

// Mix64 exposes the splitmix64 finalizer for callers combining several
// content hashes into one derived fingerprint.
func Mix64(x uint64) uint64 { return mix64(x) }

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche that
// spreads chained-FNV outputs across the whole 64-bit space, so XOR and
// summation over many sequence hashes do not concentrate collisions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShapeFingerprint is an order-insensitive hash of the distinct sequence
// set: merges that only bump multiplicities of already-seen shapes leave
// it unchanged. Meaningful only on a Set (or a multiset whose hashes
// were maintained by one).
func (m *Multiset) ShapeFingerprint() uint64 { return m.shapeFp }

// CountedFingerprint is ShapeFingerprint's count-sensitive sibling: any
// multiplicity change moves it. It is incremental (additive mod 2^64) so
// a bump costs one multiply-add.
func (m *Multiset) CountedFingerprint() uint64 { return m.countFp }

func appendID(buf []byte, id int32) []byte {
	return append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
}

func decodeKey(key []byte) []int32 {
	ids := make([]int32, len(key)/4)
	for i := range ids {
		k := key[i*4:]
		ids[i] = int32(k[0]) | int32(k[1])<<8 | int32(k[2])<<16 | int32(k[3])<<24
	}
	return ids
}

// MergeMultiset folds a counted multiset expressed in a foreign symbol
// space into s: each unique sequence is translated ID-by-ID through
// remap, consulting names (the foreign space's table) only on the first
// sight of a symbol, and folded in with its multiplicity. remap persists
// across calls — a parallel worker's commit reuses one remap per element
// across every shard it staged — and the repeat path allocates nothing.
// Walking o's sequences in first-seen order makes the symbols intern into
// s in first-occurrence order, so a sharded, committed-in-order ingestion
// builds a Set byte-identical to sequential ingestion.
func (s *Set) MergeMultiset(o *Multiset, names *intern.Table, remap *intern.Remap) {
	s.mergeMultiset(o, func(old int32) string { return names.Name(int(old)) }, remap)
}

// MergeMultisetNames is MergeMultiset against a dense-ID name snapshot
// (names[id] is the foreign symbol interned at id) instead of a live
// intern.Table. It is the counted-union entry point for pipelined
// commits, where the staging worker's table keeps growing concurrently
// and the committer must resolve symbols from an immutable snapshot
// captured when the stage was sealed.
func (s *Set) MergeMultisetNames(o *Multiset, names []string, remap *intern.Remap) {
	s.mergeMultiset(o, func(old int32) string { return names[old] }, remap)
}

func (s *Set) mergeMultiset(o *Multiset, name func(int32) string, remap *intern.Remap) {
	for i, seq := range o.seqs {
		h := uint64(seqSeed)
		for _, old := range seq {
			id := remap.Get(old)
			if id < 0 {
				id = s.internID(name(old))
				remap.Set(old, id)
			}
			s.keyBuf = appendID(s.keyBuf, id)
			h = (h ^ s.symHash[id]) * fnvPrime64
		}
		s.bump(nil, o.counts[i], mix64(h))
	}
}

// Merge folds another Set into s: multiplicities of shared sequences add,
// new sequences append in o's first-seen order. Merge(a); Merge(b) is
// equivalent to adding a's and b's expanded strings in order, so counted
// shard commits stay byte-identical to sequential ingestion. Symbols of o
// that occur in no sequence are not carried over.
func (s *Set) Merge(o *Set) {
	if o == nil {
		return
	}
	var remap intern.Remap
	s.MergeMultiset(&o.Multiset, o.tab, &remap)
}

// Clone returns an independent deep copy.
func (s *Set) Clone() *Set {
	c := New()
	c.Merge(s)
	return c
}

// Reset empties the multiset while keeping its allocated storage (the
// index map, the slice headers, the key buffer), so a staging arena can
// be recycled through a free list without re-growing on every reuse. The
// stored sequence slices are dropped, not reused — they may be aliased by
// whoever consumed the multiset.
func (m *Multiset) Reset() {
	for i := range m.seqs {
		m.seqs[i] = nil
	}
	m.seqs = m.seqs[:0]
	m.counts = m.counts[:0]
	m.hashes = m.hashes[:0]
	clear(m.index)
	m.total = 0
	m.shapeFp = 0
	m.countFp = 0
	m.keyBuf = m.keyBuf[:0]
}

// Total returns the size of the expanded multiset (sequences counted with
// multiplicity).
func (m *Multiset) Total() int { return m.total }

// Unique returns the number of distinct sequences.
func (m *Multiset) Unique() int { return len(m.seqs) }

// NumSymbols returns the size of the interned ID space; valid symbol IDs
// are [0, NumSymbols).
func (s *Set) NumSymbols() int { return s.tab.Len() }

// Name returns the symbol interned at id. It panics on an unassigned id.
func (s *Set) Name(id int) string { return s.tab.Name(id) }

// Lookup returns the ID of a symbol without interning it. Because the
// table only ever interns symbols that occur in added sequences, a
// successful lookup means the symbol occurs in the sample.
func (s *Set) Lookup(sym string) (int, bool) { return s.tab.Lookup(sym) }

// SymbolList returns the symbols in dense-ID order (SymbolList()[id] ==
// Name(id)) — the export half of the serialization boundary, consumed
// by ImportSymbols to rebuild the Set with identical ID assignments.
func (s *Set) SymbolList() []string { return s.tab.Names() }

// Symbols returns the sorted alphabet of the sample.
func (s *Set) Symbols() []string {
	out := make([]string, s.tab.Len())
	for id := range out {
		out[id] = s.tab.Name(id)
	}
	sort.Strings(out)
	return out
}

// Seq returns the i-th unique sequence as interned IDs. The slice is
// shared with the multiset and must not be mutated.
func (m *Multiset) Seq(i int) []int32 { return m.seqs[i] }

// Count returns the multiplicity of the i-th unique sequence.
func (m *Multiset) Count(i int) int { return m.counts[i] }

// ForEach calls f once per unique sequence, in first-seen order, with its
// multiplicity. The seq slice is shared and must not be mutated.
func (m *Multiset) ForEach(f func(seq []int32, count int)) {
	for i, seq := range m.seqs {
		f(seq, m.counts[i])
	}
}

// SeqStrings returns the i-th unique sequence as symbol strings.
func (s *Set) SeqStrings(i int) []string {
	return s.expand(s.seqs[i])
}

func (s *Set) expand(seq []int32) []string {
	w := make([]string, len(seq))
	for j, id := range seq {
		w[j] = s.tab.Name(int(id))
	}
	return w
}

// Strings expands the multiset back to a verbatim sample: each unique
// sequence appears count times, consecutively, in first-seen order. The
// expansion is lossless up to the ordering of duplicates — it contains
// exactly the same sequences with the same multiplicities as the strings
// that were added.
func (s *Set) Strings() [][]string {
	out := make([][]string, 0, s.total)
	for i, seq := range s.seqs {
		w := s.expand(seq)
		for n := 0; n < s.counts[i]; n++ {
			out = append(out, w)
		}
	}
	return out
}

// UniqueStrings expands only the distinct sequences, in first-seen order.
func (s *Set) UniqueStrings() [][]string {
	out := make([][]string, len(s.seqs))
	for i, seq := range s.seqs {
		out[i] = s.expand(seq)
	}
	return out
}
