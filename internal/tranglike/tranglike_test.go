package tranglike

import (
	"math/rand"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/crx"
	"dtdinfer/internal/datagen"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
)

func split(w string) []string {
	if w == "" {
		return nil
	}
	out := make([]string, len(w))
	for i, r := range w {
		out[i] = string(r)
	}
	return out
}

func sample(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		out[i] = split(w)
	}
	return out
}

// Section 8.1: on example1-style data, Trang can produce the top-level
// disjunction a1+ + (a2? a3+) that CRX cannot (CRX yields a1* a2? a3*).
func TestTrangTopLevelDisjunctionOnExample1(t *testing.T) {
	target := regex.MustParse("a1+ + (a2? a3+)")
	ws := datagen.EdgeCoverSample(target)
	got, err := Infer(ws)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if !automata.ExprEquivalent(got, target) {
		t.Errorf("Trang-like = %s, want ≡ %s", got, target)
	}
	cr, err := crx.Infer(ws)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Expr.String() != "a1* a2? a3*" {
		t.Errorf("CRX = %s, want a1* a2? a3*", cr.Expr)
	}
}

// The paper reports Trang's output equals CRX's on the chain-shaped
// corpora. Check a spread of CHAREs via representative samples.
func TestTrangMatchesCRXOnCHAREs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	alpha := []string{"a", "b", "c", "d", "e", "f"}
	same := 0
	runs := 200
	for i := 0; i < runs; i++ {
		target := regex.Simplify(regextest.RandomCHARE(rng, alpha))
		ws := datagen.EdgeCoverSample(target)
		tr, err := Infer(ws)
		if err != nil {
			t.Fatalf("Infer failed for %s: %v", target, err)
		}
		cr, err := crx.Infer(ws)
		if err != nil {
			t.Fatal(err)
		}
		if regex.EqualModuloUnionOrder(tr, cr.Expr) {
			same++
		}
		// Even when syntax differs, the sample must be covered.
		for _, w := range ws {
			if !automata.ExprMember(tr, w) {
				t.Fatalf("Trang-like result %s rejects %v (target %s)", tr, w, target)
			}
		}
	}
	if same < runs*3/4 {
		t.Errorf("Trang-like should match CRX on most CHAREs: %d/%d", same, runs)
	}
}

func TestTrangContainmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := []string{"a", "b", "c", "d"}
	for i := 0; i < 250; i++ {
		var ws [][]string
		nonEmpty := false
		for j := 0; j < 1+rng.Intn(6); j++ {
			n := rng.Intn(8)
			w := make([]string, n)
			for k := range w {
				w[k] = alpha[rng.Intn(len(alpha))]
			}
			nonEmpty = nonEmpty || n > 0
			ws = append(ws, w)
		}
		if !nonEmpty {
			continue
		}
		got, err := Infer(ws)
		if err != nil {
			t.Fatalf("Infer(%v): %v", ws, err)
		}
		for _, w := range ws {
			if !automata.ExprMember(got, w) {
				t.Fatalf("Trang-like %s rejects sample %v", got, w)
			}
		}
	}
}

func TestTrangSCCContraction(t *testing.T) {
	// A cycle a<->b collapses into (a+b)+.
	got, err := Infer(sample("ab", "ba", "abab"))
	if err != nil {
		t.Fatal(err)
	}
	if !regex.EqualModuloUnionOrder(got, regex.MustParse("(a + b)+")) {
		t.Errorf("Trang-like = %s, want (a+b)+", got)
	}
}

func TestTrangEmptyError(t *testing.T) {
	if _, err := Infer(nil); err == nil {
		t.Fatal("want error")
	}
}

func TestTrangEpsilon(t *testing.T) {
	got, err := Infer([][]string{nil, {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Nullable() {
		t.Errorf("result %s must be nullable", got)
	}
}
