// Package tranglike re-creates the inference strategy of James Clark's
// Trang as the paper describes it in Section 8.1: build the 2T-INF
// automaton, eliminate cycles by merging all states of a strongly connected
// component into a repeated disjunction, and serialize the resulting DAG
// into a regular expression. Trang itself ships no paper or manual; this
// reconstruction reproduces the behaviour the paper reports — output
// identical to CRX on all their corpora except expressions like
// example1 = a1+ + (a2?a3+), where the disjoint branches of the DAG yield a
// top-level disjunction that CRX cannot produce.
package tranglike

import (
	"context"
	"errors"
	"sort"
	"strconv"

	"dtdinfer/internal/budget"
	"dtdinfer/internal/gfa"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
	"dtdinfer/internal/soa"
)

// ErrCycle is reported when the contracted DAG — acyclic by construction
// on well-formed automata — contains a cycle, which can only arise from a
// corrupted or adversarial automaton. Callers degrade instead of crashing.
var ErrCycle = errors.New("tranglike: cycle in contracted DAG")

// Infer runs the Trang-like pipeline on a sample.
func Infer(sample [][]string) (*regex.Expr, error) {
	return FromSOA(soa.Infer(sample))
}

// InferSample is Infer on a counted, interned sample: the automaton is
// built from each unique sequence once.
func InferSample(s *smp.Set) (*regex.Expr, error) {
	return FromSOA(soa.InferSample(s))
}

// InferSampleContext is InferSample under a context, honoring the state
// budget the context carries and checking for cancellation during
// serialization.
func InferSampleContext(ctx context.Context, s *smp.Set) (*regex.Expr, error) {
	return FromSOAContext(ctx, soa.InferSample(s))
}

// FromSOA converts an inferred automaton into a regular expression:
// SCC contraction, merging of equal-context nodes into disjunctions,
// branch decomposition at the source, and topological serialization with
// ? marks on skippable nodes.
func FromSOA(a *soa.SOA) (*regex.Expr, error) {
	return FromSOAContext(context.Background(), a)
}

// FromSOAContext is FromSOA with cooperative cancellation and budget
// checks.
func FromSOAContext(ctx context.Context, a *soa.SOA) (*regex.Expr, error) {
	syms := a.Symbols()
	if len(syms) == 0 {
		return nil, gfa.ErrEmpty
	}
	if err := budget.CheckStates(ctx, len(syms)); err != nil {
		return nil, err
	}
	d := buildDAG(a)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.mergeEqualContexts()
	e, err := d.serialize(ctx)
	if err != nil {
		return nil, err
	}
	if a.AcceptsEmpty() && !e.Nullable() {
		e = regex.Opt(e)
	}
	return regex.Simplify(e), nil
}

// node is a contracted DAG node: a set of symbols with a flag for internal
// repetition (the SCC had more than one state or a self loop).
type node struct {
	syms     []string
	repeated bool
	alive    bool
}

func (n *node) expr() *regex.Expr {
	subs := make([]*regex.Expr, len(n.syms))
	for i, s := range n.syms {
		subs[i] = regex.Sym(s)
	}
	e := regex.Union(subs...)
	if n.repeated {
		e = regex.Plus(e)
	}
	return e
}

// dag is the SCC-contracted automaton. Index -1 is the source, -2 the sink.
type dag struct {
	nodes []*node
	succ  []map[int]bool
	pred  []map[int]bool
	// initial/final mark edges from the source / to the sink.
	initial map[int]bool
	final   map[int]bool
}

func buildDAG(a *soa.SOA) *dag {
	syms := a.Symbols()
	sccs := stronglyConnected(a, syms)
	classOf := map[string]int{}
	d := &dag{initial: map[int]bool{}, final: map[int]bool{}}
	for i, scc := range sccs {
		rep := len(scc) > 1
		if len(scc) == 1 && a.HasEdge(scc[0], scc[0]) {
			rep = true
		}
		sort.Strings(scc)
		d.nodes = append(d.nodes, &node{syms: scc, repeated: rep, alive: true})
		for _, s := range scc {
			classOf[s] = i
		}
	}
	d.succ = make([]map[int]bool, len(d.nodes))
	d.pred = make([]map[int]bool, len(d.nodes))
	for i := range d.nodes {
		d.succ[i] = map[int]bool{}
		d.pred[i] = map[int]bool{}
	}
	for _, e := range a.Edges() {
		from, to := e[0], e[1]
		switch {
		case from == soa.Source && to == soa.Sink:
			// ε, handled by the caller via AcceptsEmpty.
		case from == soa.Source:
			d.initial[classOf[to]] = true
		case to == soa.Sink:
			d.final[classOf[from]] = true
		default:
			cf, ct := classOf[from], classOf[to]
			if cf != ct {
				d.succ[cf][ct] = true
				d.pred[ct][cf] = true
			}
		}
	}
	return d
}

func stronglyConnected(a *soa.SOA, syms []string) [][]string {
	// Kosaraju: forward order, then reverse assignment.
	visited := map[string]bool{}
	var order []string
	var dfs1 func(s string)
	dfs1 = func(s string) {
		visited[s] = true
		for _, t := range a.Successors(s) {
			if t != soa.Sink && !visited[t] {
				dfs1(t)
			}
		}
		order = append(order, s)
	}
	for _, s := range syms {
		if !visited[s] {
			dfs1(s)
		}
	}
	assigned := map[string]bool{}
	var sccs [][]string
	var dfs2 func(s string, scc *[]string)
	dfs2 = func(s string, scc *[]string) {
		assigned[s] = true
		*scc = append(*scc, s)
		for _, t := range a.Predecessors(s) {
			if t != soa.Source && !assigned[t] {
				dfs2(t, scc)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		if !assigned[order[i]] {
			var scc []string
			dfs2(order[i], &scc)
			sccs = append(sccs, scc)
		}
	}
	return sccs
}

// mergeEqualContexts merges non-repeated singleton-style nodes with equal
// predecessor/successor context (including the initial/final marks) into a
// single disjunction node, mirroring CRX's singleton merging so that the
// output matches CRX on chain-shaped data, as the paper observed of Trang.
func (d *dag) mergeEqualContexts() {
	for {
		groups := map[string][]int{}
		for i, n := range d.nodes {
			if !n.alive || n.repeated || len(n.syms) != 1 {
				continue
			}
			sig := d.signature(i)
			groups[sig] = append(groups[sig], i)
		}
		merged := false
		var sigs []string
		for sig, g := range groups {
			if len(g) >= 2 {
				sigs = append(sigs, sig)
			}
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			group := groups[sig]
			sort.Ints(group)
			d.merge(group)
			merged = true
		}
		if !merged {
			return
		}
	}
}

func (d *dag) signature(i int) string {
	sig := "i"
	if d.initial[i] {
		sig += "1"
	}
	sig += "f"
	if d.final[i] {
		sig += "1"
	}
	ids := func(m map[int]bool) []int {
		var out []int
		for k := range m {
			if d.nodes[k].alive {
				out = append(out, k)
			}
		}
		sort.Ints(out)
		return out
	}
	for _, p := range ids(d.pred[i]) {
		sig += " p" + strconv.Itoa(p)
	}
	for _, s := range ids(d.succ[i]) {
		sig += " s" + strconv.Itoa(s)
	}
	return sig
}

func (d *dag) merge(group []int) {
	keep := group[0]
	for _, i := range group[1:] {
		d.nodes[keep].syms = append(d.nodes[keep].syms, d.nodes[i].syms...)
		d.nodes[i].alive = false
		for p := range d.pred[i] {
			delete(d.succ[p], i)
			if p != keep {
				d.succ[p][keep] = true
				d.pred[keep][p] = true
			}
		}
		for s := range d.succ[i] {
			delete(d.pred[s], i)
			if s != keep {
				d.pred[s][keep] = true
				d.succ[keep][s] = true
			}
		}
		delete(d.initial, i)
		delete(d.final, i)
	}
	sort.Strings(d.nodes[keep].syms)
}

// serialize converts the DAG into an expression: first decompose into
// branches whose node sets are disjoint (yielding a top-level disjunction,
// as Trang does on example1), then linearize each branch topologically,
// marking nodes that some accepted path skips with ?.
func (d *dag) serialize(ctx context.Context) (*regex.Expr, error) {
	comps := d.components()
	var branches []*regex.Expr
	for _, comp := range comps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, err := d.serializeBranch(comp)
		if err != nil {
			return nil, err
		}
		branches = append(branches, b)
	}
	return regex.Union(branches...), nil
}

// components groups alive nodes into weakly connected components, each a
// branch of the top-level disjunction.
func (d *dag) components() [][]int {
	seen := map[int]bool{}
	var comps [][]int
	for i, n := range d.nodes {
		if !n.alive || seen[i] {
			continue
		}
		var comp []int
		queue := []int{i}
		seen[i] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for v := range d.succ[u] {
				if d.nodes[v].alive && !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
			for v := range d.pred[u] {
				if d.nodes[v].alive && !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

func (d *dag) serializeBranch(comp []int) (*regex.Expr, error) {
	inComp := map[int]bool{}
	for _, i := range comp {
		inComp[i] = true
	}
	order, err := d.topo(comp)
	if err != nil {
		return nil, err
	}
	var factors []*regex.Expr
	for _, i := range order {
		e := d.nodes[i].expr()
		if !d.mandatory(i, inComp) {
			e = regex.Opt(e)
		}
		factors = append(factors, e)
	}
	return regex.Concat(factors...), nil
}

// topo linearizes one branch; it fails with ErrCycle instead of looping
// or crashing when the contracted DAG is not actually acyclic.
func (d *dag) topo(comp []int) ([]int, error) {
	indeg := map[int]int{}
	for _, i := range comp {
		n := 0
		for p := range d.pred[i] {
			if d.nodes[p].alive {
				n++
			}
		}
		indeg[i] = n
	}
	var order []int
	for len(indeg) > 0 {
		best := -1
		for _, i := range comp {
			if deg, ok := indeg[i]; ok && deg == 0 && (best < 0 || i < best) {
				best = i
			}
		}
		if best < 0 {
			return nil, ErrCycle
		}
		order = append(order, best)
		delete(indeg, best)
		for s := range d.succ[best] {
			if _, ok := indeg[s]; ok {
				indeg[s]--
			}
		}
	}
	return order, nil
}

// mandatory reports whether every accepted path through the branch visits
// node i: removing i must disconnect all initial nodes from all final nodes
// of the branch (a node that is itself initial and final counts as a path).
func (d *dag) mandatory(i int, inComp map[int]bool) bool {
	for j := range inComp {
		if j == i {
			continue
		}
		if d.initial[j] && d.reachesFinal(j, i, inComp) {
			return false
		}
	}
	return true
}

// reachesFinal reports whether a final node is reachable from start without
// passing through the banned node.
func (d *dag) reachesFinal(start, banned int, inComp map[int]bool) bool {
	seen := map[int]bool{start: true}
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if d.final[u] {
			return true
		}
		for v := range d.succ[u] {
			if v != banned && inComp[v] && d.nodes[v].alive && !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return false
}
