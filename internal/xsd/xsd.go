// Package xsd generates W3C XML Schema documents from inferred DTDs, the
// final extension sketched in Section 9 of the paper: 85% of real-world
// XSDs are structurally equivalent to a DTD, so emitting one "is merely a
// matter of using the correct syntax", improved here by datatype detection
// heuristics (integers, decimals, dates, times, booleans, NMTOKENs) over
// the sampled text values.
package xsd

import (
	"fmt"
	"strconv"
	"strings"

	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
)

// Generate renders the DTD as an XML Schema. textSamples optionally maps
// element names to observed text values for datatype detection (pass nil
// to default every text element to xs:string).
func Generate(d *dtd.DTD, textSamples map[string][]string) string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.WriteString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" elementFormDefault="qualified">` + "\n")
	// XML Schema has no designated root; emitting the DTD's root first lets
	// Parse recover it by the first-element convention.
	if root := d.Elements[d.Root]; root != nil {
		writeElement(&b, root, textSamples, "  ")
	}
	for _, name := range d.Names() {
		if name == d.Root {
			continue
		}
		writeElement(&b, d.Elements[name], textSamples, "  ")
	}
	b.WriteString("</xs:schema>\n")
	return b.String()
}

func writeElement(b *strings.Builder, e *dtd.Element, textSamples map[string][]string, indent string) {
	switch e.Type {
	case dtd.PCData:
		if len(e.Attributes) == 0 {
			fmt.Fprintf(b, "%s<xs:element name=%q type=%q/>\n", indent, e.Name,
				DetectType(textSamples[e.Name]))
			return
		}
		// Text content plus attributes: simpleContent extension.
		fmt.Fprintf(b, "%s<xs:element name=%q>\n", indent, e.Name)
		fmt.Fprintf(b, "%s  <xs:complexType>\n", indent)
		fmt.Fprintf(b, "%s    <xs:simpleContent>\n", indent)
		fmt.Fprintf(b, "%s      <xs:extension base=%q>\n", indent,
			DetectType(textSamples[e.Name]))
		writeAttributes(b, e, indent+"        ")
		fmt.Fprintf(b, "%s      </xs:extension>\n", indent)
		fmt.Fprintf(b, "%s    </xs:simpleContent>\n", indent)
		fmt.Fprintf(b, "%s  </xs:complexType>\n", indent)
		fmt.Fprintf(b, "%s</xs:element>\n", indent)
	case dtd.Empty:
		fmt.Fprintf(b, "%s<xs:element name=%q>\n", indent, e.Name)
		if len(e.Attributes) == 0 {
			fmt.Fprintf(b, "%s  <xs:complexType/>\n", indent)
		} else {
			fmt.Fprintf(b, "%s  <xs:complexType>\n", indent)
			writeAttributes(b, e, indent+"    ")
			fmt.Fprintf(b, "%s  </xs:complexType>\n", indent)
		}
		fmt.Fprintf(b, "%s</xs:element>\n", indent)
	case dtd.Any:
		fmt.Fprintf(b, "%s<xs:element name=%q type=\"xs:anyType\"/>\n", indent, e.Name)
	case dtd.Mixed:
		fmt.Fprintf(b, "%s<xs:element name=%q>\n", indent, e.Name)
		fmt.Fprintf(b, "%s  <xs:complexType mixed=\"true\">\n", indent)
		fmt.Fprintf(b, "%s    <xs:choice minOccurs=\"0\" maxOccurs=\"unbounded\">\n", indent)
		for _, n := range e.MixedNames {
			fmt.Fprintf(b, "%s      <xs:element ref=%q/>\n", indent, n)
		}
		fmt.Fprintf(b, "%s    </xs:choice>\n", indent)
		writeAttributes(b, e, indent+"    ")
		fmt.Fprintf(b, "%s  </xs:complexType>\n", indent)
		fmt.Fprintf(b, "%s</xs:element>\n", indent)
	case dtd.Children:
		fmt.Fprintf(b, "%s<xs:element name=%q>\n", indent, e.Name)
		fmt.Fprintf(b, "%s  <xs:complexType>\n", indent)
		// A complexType's content must be a model group: a bare element
		// reference (a single-symbol model) is wrapped in a sequence.
		if _, inner := combine(occurs{1, 1}, e.Model); inner.Op == regex.OpSymbol {
			fmt.Fprintf(b, "%s    <xs:sequence>\n", indent)
			writeParticle(b, e.Model, occurs{1, 1}, indent+"      ")
			fmt.Fprintf(b, "%s    </xs:sequence>\n", indent)
		} else {
			writeParticle(b, e.Model, occurs{1, 1}, indent+"    ")
		}
		writeAttributes(b, e, indent+"    ")
		fmt.Fprintf(b, "%s  </xs:complexType>\n", indent)
		fmt.Fprintf(b, "%s</xs:element>\n", indent)
	}
}

// writeAttributes renders the element's attribute declarations.
func writeAttributes(b *strings.Builder, e *dtd.Element, indent string) {
	for _, a := range e.Attributes {
		use := ""
		if a.Required {
			use = ` use="required"`
		}
		switch a.Type {
		case dtd.Enumerated:
			fmt.Fprintf(b, "%s<xs:attribute name=%q%s>\n", indent, a.Name, use)
			fmt.Fprintf(b, "%s  <xs:simpleType>\n", indent)
			fmt.Fprintf(b, "%s    <xs:restriction base=\"xs:NMTOKEN\">\n", indent)
			for _, v := range a.Values {
				fmt.Fprintf(b, "%s      <xs:enumeration value=%q/>\n", indent, v)
			}
			fmt.Fprintf(b, "%s    </xs:restriction>\n", indent)
			fmt.Fprintf(b, "%s  </xs:simpleType>\n", indent)
			fmt.Fprintf(b, "%s</xs:attribute>\n", indent)
		default:
			typ := map[dtd.AttType]string{
				dtd.CDATA:   "xs:string",
				dtd.NMTOKEN: "xs:NMTOKEN",
				dtd.ID:      "xs:ID",
				dtd.IDREF:   "xs:IDREF",
			}[a.Type]
			fmt.Fprintf(b, "%s<xs:attribute name=%q type=%q%s/>\n", indent, a.Name, typ, use)
		}
	}
}

// occurs carries minOccurs/maxOccurs; max -1 is unbounded.
type occurs struct{ min, max int }

func (o occurs) attrs() string {
	out := ""
	if o.min != 1 {
		out += fmt.Sprintf(" minOccurs=%q", strconv.Itoa(o.min))
	}
	switch {
	case o.max == regex.Unbounded:
		out += ` maxOccurs="unbounded"`
	case o.max != 1:
		out += fmt.Sprintf(" maxOccurs=%q", strconv.Itoa(o.max))
	}
	return out
}

func combine(o occurs, e *regex.Expr) (occurs, *regex.Expr) {
	for {
		switch e.Op {
		case regex.OpOpt:
			o.min = 0
			e = e.Sub()
		case regex.OpPlus:
			o.max = regex.Unbounded
			e = e.Sub()
		case regex.OpStar:
			o.min, o.max = 0, regex.Unbounded
			e = e.Sub()
		case regex.OpRepeat:
			o.min, o.max = e.Min, e.Max
			e = e.Sub()
		default:
			return o, e
		}
	}
}

func writeParticle(b *strings.Builder, e *regex.Expr, o occurs, indent string) {
	o, e = combine(o, e)
	switch e.Op {
	case regex.OpSymbol:
		fmt.Fprintf(b, "%s<xs:element ref=%q%s/>\n", indent, e.Name, o.attrs())
	case regex.OpConcat:
		fmt.Fprintf(b, "%s<xs:sequence%s>\n", indent, o.attrs())
		for _, s := range e.Subs {
			writeParticle(b, s, occurs{1, 1}, indent+"  ")
		}
		fmt.Fprintf(b, "%s</xs:sequence>\n", indent)
	case regex.OpUnion:
		fmt.Fprintf(b, "%s<xs:choice%s>\n", indent, o.attrs())
		for _, s := range e.Subs {
			writeParticle(b, s, occurs{1, 1}, indent+"  ")
		}
		fmt.Fprintf(b, "%s</xs:choice>\n", indent)
	}
}

// DetectType guesses an XML Schema built-in datatype from sampled text
// values, defaulting to xs:string. All values must agree on a type for it
// to be chosen; integers that also parse as decimals prefer xs:integer.
func DetectType(values []string) string {
	if len(values) == 0 {
		return "xs:string"
	}
	allInt, allDec, allBool, allDate, allTime, allDateTime, allNMTOKEN :=
		true, true, true, true, true, true, true
	for _, v := range values {
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			allInt = false
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			allDec = false
		}
		if v != "true" && v != "false" && v != "0" && v != "1" {
			allBool = false
		}
		if !isDate(v) {
			allDate = false
		}
		if !isTime(v) {
			allTime = false
		}
		if !isDateTime(v) {
			allDateTime = false
		}
		if !isNMTOKEN(v) {
			allNMTOKEN = false
		}
	}
	switch {
	case allBool && !allInt:
		return "xs:boolean"
	case allInt:
		return "xs:integer"
	case allDec:
		return "xs:decimal"
	case allDate:
		return "xs:date"
	case allDateTime:
		return "xs:dateTime"
	case allTime:
		return "xs:time"
	case allNMTOKEN:
		return "xs:NMTOKEN"
	default:
		return "xs:string"
	}
}

func isDate(v string) bool {
	// YYYY-MM-DD
	if len(v) != 10 || v[4] != '-' || v[7] != '-' {
		return false
	}
	return digits(v[:4]) && digits(v[5:7]) && digits(v[8:10])
}

func isTime(v string) bool {
	// HH:MM:SS
	if len(v) != 8 || v[2] != ':' || v[5] != ':' {
		return false
	}
	return digits(v[:2]) && digits(v[3:5]) && digits(v[6:8])
}

func isDateTime(v string) bool {
	// YYYY-MM-DDTHH:MM:SS
	return len(v) == 19 && v[10] == 'T' && isDate(v[:10]) && isTime(v[11:])
}

func isNMTOKEN(v string) bool {
	if v == "" {
		return false
	}
	for _, r := range v {
		ok := r == '.' || r == '-' || r == '_' || r == ':' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

func digits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
