package xsd

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"

	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
)

// Parse reads an XML Schema document covering the DTD-expressible subset
// this package emits — top-level element declarations whose complex types
// are nestings of xs:sequence, xs:choice and xs:element references with
// minOccurs/maxOccurs, plus mixed content, simpleContent and attributes —
// and converts it back into a DTD. Together with Generate it provides a
// lossless round trip for inferred schemas (datatypes collapse to #PCDATA,
// which is all a DTD can say).
func Parse(src string) (*dtd.DTD, error) {
	var schema xsdSchema
	if err := xml.Unmarshal([]byte(src), &schema); err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	if len(schema.Elements) == 0 {
		return nil, fmt.Errorf("xsd: no top-level element declarations")
	}
	d := dtd.New(schema.Elements[0].Name)
	for _, el := range schema.Elements {
		e, err := convertElement(el)
		if err != nil {
			return nil, err
		}
		d.Declare(e)
		for _, a := range collectAttributes(el.ComplexType) {
			d.DeclareAttribute(el.Name, a)
		}
	}
	return d, nil
}

type xsdSchema struct {
	XMLName  xml.Name     `xml:"schema"`
	Elements []xsdElement `xml:"element"`
}

type xsdElement struct {
	Name        string          `xml:"name,attr"`
	Ref         string          `xml:"ref,attr"`
	Type        string          `xml:"type,attr"`
	MinOccurs   string          `xml:"minOccurs,attr"`
	MaxOccurs   string          `xml:"maxOccurs,attr"`
	ComplexType *xsdComplexType `xml:"complexType"`
}

type xsdComplexType struct {
	Mixed         string         `xml:"mixed,attr"`
	Sequence      *xsdParticle   `xml:"sequence"`
	Choice        *xsdParticle   `xml:"choice"`
	SimpleContent *xsdSimple     `xml:"simpleContent"`
	Attributes    []xsdAttribute `xml:"attribute"`
}

type xsdSimple struct {
	Extension struct {
		Base       string         `xml:"base,attr"`
		Attributes []xsdAttribute `xml:"attribute"`
	} `xml:"extension"`
}

type xsdParticle struct {
	MinOccurs string         `xml:"minOccurs,attr"`
	MaxOccurs string         `xml:"maxOccurs,attr"`
	Sequences []xsdParticle  `xml:"sequence"`
	Choices   []xsdParticle  `xml:"choice"`
	Elements  []xsdElement   `xml:"element"`
	order     []particleItem // filled by UnmarshalXML
	kind      string
}

// particleItem preserves child order inside a sequence/choice.
type particleItem struct {
	particle *xsdParticle
	element  *xsdElement
}

// UnmarshalXML keeps the document order of nested particles, which the
// generic struct decoding would lose (it groups by field).
func (p *xsdParticle) UnmarshalXML(dec *xml.Decoder, start xml.StartElement) error {
	p.kind = start.Name.Local
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "minOccurs":
			p.MinOccurs = a.Value
		case "maxOccurs":
			p.MaxOccurs = a.Value
		}
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "sequence", "choice":
				child := &xsdParticle{}
				if err := child.UnmarshalXML(dec, t); err != nil {
					return err
				}
				p.order = append(p.order, particleItem{particle: child})
			case "element":
				var el xsdElement
				if err := dec.DecodeElement(&el, &t); err != nil {
					return err
				}
				p.order = append(p.order, particleItem{element: &el})
			default:
				if err := dec.Skip(); err != nil {
					return err
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

type xsdAttribute struct {
	Name       string `xml:"name,attr"`
	Type       string `xml:"type,attr"`
	Use        string `xml:"use,attr"`
	SimpleType *struct {
		Restriction struct {
			Base         string `xml:"base,attr"`
			Enumerations []struct {
				Value string `xml:"value,attr"`
			} `xml:"enumeration"`
		} `xml:"restriction"`
	} `xml:"simpleType"`
}

func convertElement(el xsdElement) (*dtd.Element, error) {
	name := el.Name
	switch {
	case el.ComplexType == nil && el.Type != "":
		if el.Type == "xs:anyType" {
			return &dtd.Element{Name: name, Type: dtd.Any}, nil
		}
		return &dtd.Element{Name: name, Type: dtd.PCData}, nil
	case el.ComplexType == nil:
		return &dtd.Element{Name: name, Type: dtd.Empty}, nil
	}
	ct := el.ComplexType
	switch {
	case ct.SimpleContent != nil:
		return &dtd.Element{Name: name, Type: dtd.PCData}, nil
	case ct.Mixed == "true":
		var names []string
		if ct.Choice != nil {
			for _, item := range ct.Choice.order {
				if item.element != nil {
					names = append(names, refName(item.element))
				}
			}
		}
		sort.Strings(names)
		return &dtd.Element{Name: name, Type: dtd.Mixed, MixedNames: names}, nil
	case ct.Sequence == nil && ct.Choice == nil:
		return &dtd.Element{Name: name, Type: dtd.Empty}, nil
	}
	var model *regex.Expr
	var err error
	if ct.Sequence != nil {
		model, err = convertParticle(ct.Sequence)
	} else {
		model, err = convertParticle(ct.Choice)
	}
	if err != nil {
		return nil, fmt.Errorf("xsd: element %s: %w", name, err)
	}
	return &dtd.Element{Name: name, Type: dtd.Children, Model: regex.Simplify(model)}, nil
}

func refName(el *xsdElement) string {
	if el.Ref != "" {
		return el.Ref
	}
	return el.Name
}

func convertParticle(p *xsdParticle) (*regex.Expr, error) {
	var subs []*regex.Expr
	for _, item := range p.order {
		var e *regex.Expr
		var err error
		switch {
		case item.particle != nil:
			e, err = convertParticle(item.particle)
		case item.element != nil:
			e = regex.Sym(refName(item.element))
			e, err = applyOccurs(e, item.element.MinOccurs, item.element.MaxOccurs)
		}
		if err != nil {
			return nil, err
		}
		subs = append(subs, e)
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("empty %s particle", p.kind)
	}
	var out *regex.Expr
	if p.kind == "choice" {
		out = regex.Union(subs...)
	} else {
		out = regex.Concat(subs...)
	}
	return applyOccurs(out, p.MinOccurs, p.MaxOccurs)
}

func applyOccurs(e *regex.Expr, minStr, maxStr string) (*regex.Expr, error) {
	min, max := 1, 1
	var err error
	if minStr != "" {
		if min, err = strconv.Atoi(minStr); err != nil {
			return nil, fmt.Errorf("bad minOccurs %q", minStr)
		}
	}
	switch {
	case maxStr == "unbounded":
		max = regex.Unbounded
	case maxStr != "":
		if max, err = strconv.Atoi(maxStr); err != nil {
			return nil, fmt.Errorf("bad maxOccurs %q", maxStr)
		}
	}
	switch {
	case min == 1 && max == 1:
		return e, nil
	case min == 0 && max == 1:
		return regex.Opt(e), nil
	case min == 1 && max == regex.Unbounded:
		return regex.Plus(e), nil
	case min == 0 && max == regex.Unbounded:
		return regex.Star(e), nil
	default:
		return regex.Repeat(e, min, max), nil
	}
}

func collectAttributes(ct *xsdComplexType) []*dtd.Attribute {
	if ct == nil {
		return nil
	}
	atts := ct.Attributes
	if ct.SimpleContent != nil {
		atts = append(atts, ct.SimpleContent.Extension.Attributes...)
	}
	var out []*dtd.Attribute
	for _, xa := range atts {
		a := &dtd.Attribute{Name: xa.Name, Required: xa.Use == "required"}
		switch {
		case xa.SimpleType != nil && len(xa.SimpleType.Restriction.Enumerations) > 0:
			a.Type = dtd.Enumerated
			for _, v := range xa.SimpleType.Restriction.Enumerations {
				a.Values = append(a.Values, v.Value)
			}
			sort.Strings(a.Values)
		case xa.Type == "xs:ID":
			a.Type = dtd.ID
		case xa.Type == "xs:IDREF":
			a.Type = dtd.IDREF
		case xa.Type == "xs:NMTOKEN":
			a.Type = dtd.NMTOKEN
		default:
			a.Type = dtd.CDATA
		}
		out = append(out, a)
	}
	return out
}
