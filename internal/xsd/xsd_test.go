package xsd

import (
	"encoding/xml"
	"strings"
	"testing"

	"dtdinfer/internal/dtd"
)

func TestGenerateWellFormedAndComplete(t *testing.T) {
	d := dtd.MustParse(`<!DOCTYPE db [
<!ELEMENT db (entry+)>
<!ELEMENT entry (name,score*,(volume|month),note?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT score (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT note (#PCDATA|b)*>
<!ELEMENT b EMPTY>
]>`)
	out := Generate(d, map[string][]string{
		"score":  {"1", "2", "33"},
		"volume": {"12.5", "13.0"},
		"month":  {"jan", "feb"},
		"name":   {"hello world"},
	})
	// Must be well-formed XML.
	if err := xml.Unmarshal([]byte(out), new(interface{})); err != nil {
		t.Fatalf("generated XSD is not well-formed: %v\n%s", err, out)
	}
	for _, want := range []string{
		`<xs:element name="db">`,
		`<xs:sequence>`,
		`<xs:element ref="entry" maxOccurs="unbounded"/>`,
		`<xs:element ref="score" minOccurs="0" maxOccurs="unbounded"/>`,
		`<xs:choice>`,
		`<xs:element ref="note" minOccurs="0"/>`,
		`<xs:element name="score" type="xs:integer"/>`,
		`<xs:element name="volume" type="xs:decimal"/>`,
		`<xs:element name="month" type="xs:NMTOKEN"/>`,
		`<xs:element name="name" type="xs:string"/>`,
		`<xs:complexType mixed="true">`,
		`<xs:complexType/>`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("XSD missing %q\n%s", want, out)
		}
	}
}

func TestGenerateNumericBounds(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT seq (a{2},b{2,})> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>`)
	out := Generate(d, nil)
	if !strings.Contains(out, `<xs:element ref="a" minOccurs="2" maxOccurs="2"/>`) {
		t.Errorf("missing a{2} bounds:\n%s", out)
	}
	if !strings.Contains(out, `<xs:element ref="b" minOccurs="2" maxOccurs="unbounded"/>`) {
		t.Errorf("missing b{2,} bounds:\n%s", out)
	}
}

func TestDetectType(t *testing.T) {
	tests := []struct {
		values []string
		want   string
	}{
		{nil, "xs:string"},
		{[]string{"1", "42", "-7"}, "xs:integer"},
		{[]string{"1.5", "2"}, "xs:decimal"},
		{[]string{"true", "false"}, "xs:boolean"},
		{[]string{"2006-09-12", "2006-09-15"}, "xs:date"},
		{[]string{"12:30:00"}, "xs:time"},
		{[]string{"2006-09-12T12:30:00"}, "xs:dateTime"},
		{[]string{"abc", "a-b_c.d"}, "xs:NMTOKEN"},
		{[]string{"hello world"}, "xs:string"},
		{[]string{"1", "abc"}, "xs:NMTOKEN"},
		{[]string{"1", "hello world"}, "xs:string"},
	}
	for _, tc := range tests {
		if got := DetectType(tc.values); got != tc.want {
			t.Errorf("DetectType(%v) = %q, want %q", tc.values, got, tc.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `<!DOCTYPE db [
<!ELEMENT db (entry+)>
<!ELEMENT entry (name,score*,(volume|month),note?)>
<!ATTLIST entry id ID #REQUIRED kind (a|b) #IMPLIED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT score (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT note (#PCDATA|b)*>
<!ELEMENT b EMPTY>
]>`
	d := dtd.MustParse(src)
	out := Generate(d, nil)
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, out)
	}
	if !d.Equal(back) {
		t.Errorf("XSD round trip changed the DTD:\n%s\nvs\n%s", d, back)
	}
}

func TestParseNumericBoundsRoundTrip(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT seq (a{2},b{2,})> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>`)
	back, err := Parse(Generate(d, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Elements["seq"].Model.String(); got != "a{2} b{2,}" {
		t.Errorf("round-tripped model = %q", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse("not xml"); err == nil {
		t.Error("want error on garbage")
	}
	if _, err := Parse(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>`); err == nil {
		t.Error("want error on empty schema")
	}
}

func TestParsePreservesNestedStructureOrder(t *testing.T) {
	// (a,(b|c),d) must come back in order, not regrouped.
	d := dtd.MustParse(`<!ELEMENT r (a,(b|c),d)>
<!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>`)
	back, err := Parse(Generate(d, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Elements["r"].Model.DTDString(); got != "a,(b|c),d" {
		t.Errorf("model = %q", got)
	}
}
