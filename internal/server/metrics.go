package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics are the daemon's Prometheus-style counters. Everything is a
// plain atomic — scrape cost is a read pass, update cost is one
// uncontended add — and the per-tenant gauges (version, queue depth,
// quarantine) are computed at scrape time from live tenant state rather
// than maintained as shadow counters that could drift.
type metrics struct {
	requests     atomic.Int64
	queueFull    atomic.Int64
	drainRejects atomic.Int64
	panics       atomic.Int64

	ingestDocs     atomic.Int64
	ingestAccepted atomic.Int64
	ingestRejected atomic.Int64
	ingestBytes    atomic.Int64
	ingestElements atomic.Int64

	// Pipelined-ingestion stage accounting, accumulated from each
	// batch's IngestReport.Pipeline (absent when a batch ran the
	// sequential path: one document, or parallelism 1).
	pipelineBatches         atomic.Int64
	pipelineFlushUnits      atomic.Int64
	pipelineArenaReuses     atomic.Int64
	pipelineDecodeNs        atomic.Int64
	pipelineFlushWaitNs     atomic.Int64
	pipelineCommitNs        atomic.Int64
	pipelineCommitterIdleNs atomic.Int64

	refreshes       atomic.Int64
	refreshFailures atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	cacheRecomputes atomic.Int64

	persists        atomic.Int64
	persistFailures atomic.Int64
	persistRetries  atomic.Int64

	summariesMerged atomic.Int64

	validations       atomic.Int64
	validationInvalid atomic.Int64

	recovered   atomic.Int64
	quarantined atomic.Int64
}

// writeMetrics renders the exposition format: server-wide counters in
// declaration order, then per-tenant gauges sorted by tenant name, so
// consecutive scrapes of an idle server are byte-identical.
func (s *Server) writeMetrics(w io.Writer) {
	m := &s.metrics
	counters := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"dtdserved_http_requests_total", "API requests received (drain rejections included).", &m.requests},
		{"dtdserved_queue_full_total", "Ingest requests rejected with 429 because the tenant queue was full.", &m.queueFull},
		{"dtdserved_drain_rejects_total", "Requests rejected with 503 because the server was draining.", &m.drainRejects},
		{"dtdserved_handler_panics_total", "Handler panics contained by the recover barrier.", &m.panics},
		{"dtdserved_ingest_documents_total", "Documents attempted across all tenants.", &m.ingestDocs},
		{"dtdserved_ingest_accepted_total", "Documents committed into a corpus.", &m.ingestAccepted},
		{"dtdserved_ingest_rejected_total", "Documents rejected by the decoder or its caps.", &m.ingestRejected},
		{"dtdserved_ingest_bytes_total", "Input bytes consumed by ingestion.", &m.ingestBytes},
		{"dtdserved_ingest_elements_total", "Start-element tokens decoded from accepted documents.", &m.ingestElements},
		{"dtdserved_pipeline_batches_total", "Ingest batches that ran the pipelined parallel path.", &m.pipelineBatches},
		{"dtdserved_pipeline_flush_units_total", "Stage units streamed to the pipelined committer.", &m.pipelineFlushUnits},
		{"dtdserved_pipeline_arena_reuses_total", "Stage arenas recycled from the committed free list.", &m.pipelineArenaReuses},
		{"dtdserved_pipeline_decode_ns_total", "Worker nanoseconds spent decoding and staging.", &m.pipelineDecodeNs},
		{"dtdserved_pipeline_flush_wait_ns_total", "Worker nanoseconds blocked on committer back-pressure.", &m.pipelineFlushWaitNs},
		{"dtdserved_pipeline_commit_ns_total", "Committer nanoseconds folding stage units into corpora.", &m.pipelineCommitNs},
		{"dtdserved_pipeline_committer_idle_ns_total", "Committer nanoseconds waiting for the next stage unit.", &m.pipelineCommitterIdleNs},
		{"dtdserved_refreshes_total", "Successful inference passes (snapshot publishes).", &m.refreshes},
		{"dtdserved_refresh_failures_total", "Inference passes that failed (previous snapshot kept).", &m.refreshFailures},
		{"dtdserved_cache_hits_total", "Per-element model-cache hits across refreshes.", &m.cacheHits},
		{"dtdserved_cache_misses_total", "Per-element model-cache misses across refreshes.", &m.cacheMisses},
		{"dtdserved_cache_recomputes_total", "Model-cache entries invalidated by sample changes.", &m.cacheRecomputes},
		{"dtdserved_persists_total", "Successful corpus-summary persists.", &m.persists},
		{"dtdserved_persist_failures_total", "Persists that failed after exhausting retries.", &m.persistFailures},
		{"dtdserved_persist_retries_total", "Individual persist attempts that failed and were retried.", &m.persistRetries},
		{"dtdserved_summaries_merged_total", "Uploaded corpus summaries merged into tenants.", &m.summariesMerged},
		{"dtdserved_validations_total", "Document validations served.", &m.validations},
		{"dtdserved_validations_invalid_total", "Validations that found at least one violation.", &m.validationInvalid},
		{"dtdserved_recovered_tenants_total", "Tenants recovered from a durable summary at startup.", &m.recovered},
		{"dtdserved_quarantined_summaries_total", "Corrupt summaries quarantined at startup.", &m.quarantined},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v.Load())
	}

	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(w, "# HELP dtdserved_draining Whether the server is draining (1) or serving (0).\n")
	fmt.Fprintf(w, "# TYPE dtdserved_draining gauge\ndtdserved_draining %d\n", draining)

	tenants := s.list()
	fmt.Fprintf(w, "# HELP dtdserved_tenant_version Latest published snapshot version per tenant.\n")
	fmt.Fprintf(w, "# TYPE dtdserved_tenant_version gauge\n")
	for _, t := range tenants {
		var v uint64
		if p := t.published.Load(); p != nil {
			v = p.snap.Version
		}
		fmt.Fprintf(w, "dtdserved_tenant_version{tenant=%q} %d\n", t.name, v)
	}
	fmt.Fprintf(w, "# HELP dtdserved_tenant_documents Documents in the tenant's published snapshot.\n")
	fmt.Fprintf(w, "# TYPE dtdserved_tenant_documents gauge\n")
	for _, t := range tenants {
		docs := 0
		if p := t.published.Load(); p != nil {
			docs = p.snap.Documents
		}
		fmt.Fprintf(w, "dtdserved_tenant_documents{tenant=%q} %d\n", t.name, docs)
	}
	fmt.Fprintf(w, "# HELP dtdserved_tenant_queue_depth Jobs waiting in the tenant's ingest queue.\n")
	fmt.Fprintf(w, "# TYPE dtdserved_tenant_queue_depth gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "dtdserved_tenant_queue_depth{tenant=%q} %d\n", t.name, len(t.queue))
	}
	fmt.Fprintf(w, "# HELP dtdserved_tenant_persist_failing Whether the tenant's last persist failed (1) or not (0).\n")
	fmt.Fprintf(w, "# TYPE dtdserved_tenant_persist_failing gauge\n")
	for _, t := range tenants {
		failing := 0
		if t.persistErr.Load() != nil {
			failing = 1
		}
		fmt.Fprintf(w, "dtdserved_tenant_persist_failing{tenant=%q} %d\n", t.name, failing)
	}
	fmt.Fprintf(w, "# HELP dtdserved_tenant_quarantined Whether the tenant's summary was quarantined at startup (1) or recovered cleanly (0).\n")
	fmt.Fprintf(w, "# TYPE dtdserved_tenant_quarantined gauge\n")
	for _, t := range tenants {
		q := 0
		if t.quarantine.Load() != nil {
			q = 1
		}
		fmt.Fprintf(w, "dtdserved_tenant_quarantined{tenant=%q} %d\n", t.name, q)
	}
}
