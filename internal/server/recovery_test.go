package server

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dtdinfer/internal/core"
)

// TestRestartRecoversByteIdenticalSchema: a server restarted over the
// same data dir serves, with no re-ingestion, a DTD byte-identical to
// library inference over the persisted summary.
func TestRestartRecoversByteIdenticalSchema(t *testing.T) {
	dir := t.TempDir()

	srv1, err := New(Config{DataDir: dir, PersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	base1 := ts1.URL + "/v1/tenants/shop"
	for _, doc := range []string{
		"<store><book><title>a</title><price>1</price></book></store>",
		"<store><book><title>b</title></book><book><title>c</title><price>2</price></book></store>",
	} {
		if code, body := post(t, base1+"/documents", doc); code != 200 {
			t.Fatalf("ingest = %d: %s", code, body)
		}
	}
	_, wantDTD := get(t, base1+"/dtd")
	_, wantXSD := get(t, base1+"/xsd")
	if code, body := post(t, base1+"/persist", ""); code != 200 {
		t.Fatalf("persist = %d: %s", code, body)
	}
	// No clean drain: tear the first server down without final persist
	// (the explicit persist above is the durability point).
	ts1.Close()
	if err := srv1.Close(10 * time.Second); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reference: direct library inference over the persisted summary.
	x, err := core.LoadCorpus(filepath.Join(dir, "shop.corpus"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.InferDTDFromExtraction(x, core.IDTD, &core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.String() != wantDTD {
		t.Fatalf("library inference over summary differs from served DTD:\n%s\nvs\n%s", ref, wantDTD)
	}

	srv2, err := New(Config{DataDir: dir, PersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Close(10 * time.Second)
	}()
	base2 := ts2.URL + "/v1/tenants/shop"
	code, gotDTD := get(t, base2+"/dtd")
	if code != 200 {
		t.Fatalf("dtd after restart = %d: %s", code, gotDTD)
	}
	if gotDTD != wantDTD {
		t.Errorf("recovered DTD differs:\n%s\nwant:\n%s", gotDTD, wantDTD)
	}
	code, gotXSD := get(t, base2+"/xsd")
	if code != 200 || gotXSD != wantXSD {
		t.Errorf("recovered XSD differs (code %d):\n%s\nwant:\n%s", code, gotXSD, wantXSD)
	}
	if code, body := get(t, ts2.URL+"/metrics"); code != 200 ||
		!strings.Contains(body, "dtdserved_recovered_tenants_total 1") {
		t.Errorf("metrics after recovery missing recovered counter: %s", body)
	}
	// Recovery replays the persisted caches: serving continues from the
	// summary, and further ingestion keeps working.
	if code, body := post(t, base2+"/documents",
		"<store><book><title>d</title><isbn>x</isbn></book></store>"); code != 200 {
		t.Errorf("ingest after recovery = %d: %s", code, body)
	}
}

// TestCorruptSummaryQuarantined: a summary that fails to load is moved
// aside, the tenant boots empty, and the failure is visible in /metrics
// and the tenant status — the daemon never refuses to start.
func TestCorruptSummaryQuarantined(t *testing.T) {
	dir := t.TempDir()
	// A good tenant and a corrupt one side by side: the corrupt file
	// must not take the good one down.
	srv0, err := New(Config{DataDir: dir, PersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts0 := httptest.NewServer(srv0.Handler())
	if code, _ := post(t, ts0.URL+"/v1/tenants/good/documents", "<a><b/></a>"); code != 200 {
		t.Fatal("priming good tenant failed")
	}
	if code, _ := post(t, ts0.URL+"/v1/tenants/good/persist", ""); code != 200 {
		t.Fatal("persisting good tenant failed")
	}
	ts0.Close()
	if err := srv0.Close(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.corpus"), []byte("garbage, not a summary"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{DataDir: dir, PersistInterval: -1})
	if err != nil {
		t.Fatalf("New with corrupt summary must boot, got %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close(10 * time.Second)
	}()

	// The good tenant recovered.
	if code, _ := get(t, ts.URL+"/v1/tenants/good/dtd"); code != 200 {
		t.Errorf("good tenant did not recover: dtd = %d", code)
	}
	// The bad tenant exists, empty, with the quarantine surfaced.
	code, body := get(t, ts.URL+"/v1/tenants/bad/status")
	if code != 200 {
		t.Fatalf("bad tenant status = %d", code)
	}
	if !strings.Contains(body, "quarantined") || !strings.Contains(body, `"documents": 0`) {
		t.Errorf("bad tenant status does not surface the quarantine: %s", body)
	}
	if code, _ := get(t, ts.URL+"/v1/tenants/bad/dtd"); code != 404 {
		t.Errorf("bad tenant dtd = %d, want 404 (starts empty)", code)
	}
	// The corpse moved aside; the original path is free for the next
	// persist.
	if _, err := os.Stat(filepath.Join(dir, "bad.corpus.quarantined")); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.corpus")); !os.IsNotExist(err) {
		t.Errorf("corrupt summary still in place: %v", err)
	}
	// Metrics surface the failure.
	_, metricsBody := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"dtdserved_quarantined_summaries_total 1",
		`dtdserved_tenant_quarantined{tenant="bad"} 1`,
		`dtdserved_tenant_quarantined{tenant="good"} 0`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The quarantined tenant accepts fresh documents and can persist to
	// the now-free path.
	if code, body := post(t, ts.URL+"/v1/tenants/bad/documents", "<a><b/></a>"); code != 200 {
		t.Errorf("ingest into quarantined tenant = %d: %s", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/tenants/bad/persist", ""); code != 200 {
		t.Errorf("persist of quarantined tenant = %d: %s", code, body)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.corpus")); err != nil {
		t.Errorf("fresh summary not written after quarantine: %v", err)
	}
}

// TestPeriodicPersist: with a short interval, a dirty tenant hits disk
// without any explicit persist call.
func TestPeriodicPersist(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{DataDir: dir, PersistInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close(10 * time.Second)
	}()
	if code, _ := post(t, ts.URL+"/v1/tenants/auto/documents", "<a><b/></a>"); code != 200 {
		t.Fatal("ingest failed")
	}
	waitFor(t, func() bool {
		_, err := os.Stat(filepath.Join(dir, "auto.corpus"))
		return err == nil
	})
	if _, err := core.LoadCorpus(filepath.Join(dir, "auto.corpus")); err != nil {
		t.Errorf("periodically persisted summary unreadable: %v", err)
	}
}
