package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dtdinfer/internal/core"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/faultinject"
)

// testServer builds a Server+httptest pair and tears both down in the
// contract order: listener first (in-flight requests complete), then
// Close (queues flush, workers exit).
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.PersistInterval == 0 {
		cfg.PersistInterval = -1 // deterministic tests persist explicitly
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(10 * time.Second); err != nil && err != ErrDrainTimeout {
			t.Logf("Close: %v", err)
		}
	})
	return srv, ts
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestIngestReadValidateFlow(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := ts.URL + "/v1/tenants/shop"

	code, body := post(t, base+"/documents",
		"<store><book><title>a</title><price>1</price></book></store>")
	if code != 200 {
		t.Fatalf("ingest = %d: %s", code, body)
	}
	var res struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil || res.Version != 1 {
		t.Fatalf("ingest reply %q, want version 1 (%v)", body, err)
	}

	code, dtdText := get(t, base+"/dtd")
	if code != 200 || !strings.Contains(dtdText, "<!ELEMENT book") {
		t.Fatalf("dtd = %d: %s", code, dtdText)
	}
	code, xsdText := get(t, base+"/xsd")
	if code != 200 || !strings.Contains(xsdText, "xs:schema") {
		t.Fatalf("xsd = %d: %s", code, xsdText)
	}

	// The served DTD must be byte-identical to library inference over
	// the same corpus.
	x := dtd.NewExtraction()
	if err := x.AddDocumentOptions(strings.NewReader(
		"<store><book><title>a</title><price>1</price></book></store>"), nil); err != nil {
		t.Fatal(err)
	}
	want, err := core.InferDTDFromExtraction(x, core.IDTD, &core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dtdText != want.String() {
		t.Errorf("served DTD:\n%s\nwant library inference:\n%s", dtdText, want)
	}

	code, body = post(t, base+"/validate",
		"<store><book><title>x</title><price>9</price></book></store>")
	if code != 200 || !strings.Contains(body, `"valid": true`) {
		t.Errorf("validate(valid doc) = %d: %s", code, body)
	}
	code, body = post(t, base+"/validate", "<store><magazine/></store>")
	if code != 200 || !strings.Contains(body, `"valid": false`) {
		t.Errorf("validate(invalid doc) = %d: %s", code, body)
	}

	// A second document advances the version; readers see v2.
	code, body = post(t, base+"/documents",
		"<store><book><title>b</title></book><book><title>c</title><price>2</price></book></store>")
	if code != 200 || !strings.Contains(body, `"version": 2`) {
		t.Errorf("second ingest = %d: %s", code, body)
	}

	code, body = get(t, base+"/status")
	if code != 200 || !strings.Contains(body, `"documents": 2`) {
		t.Errorf("status = %d: %s", code, body)
	}
}

func TestReadPathsAndErrors(t *testing.T) {
	_, ts := testServer(t, Config{})

	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Errorf("healthz = %d", code)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != 200 {
		t.Errorf("readyz = %d", code)
	}
	if code, _ := get(t, ts.URL+"/v1/tenants/nope/dtd"); code != 404 {
		t.Errorf("dtd of missing tenant = %d, want 404", code)
	}
	if code, body := post(t, ts.URL+"/v1/tenants/bad..name/documents", "<a/>"); code != 400 {
		t.Errorf("invalid tenant name = %d: %s", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/tenants/t/documents", ""); code != 400 {
		t.Errorf("empty document = %d: %s", code, body)
	}
	// A malformed document is rejected per-document (422), and the
	// tenant still has no schema.
	if code, body := post(t, ts.URL+"/v1/tenants/t/documents", "<a><b></a>"); code != 422 {
		t.Errorf("malformed document = %d: %s", code, body)
	}
	if code, _ := get(t, ts.URL+"/v1/tenants/t/dtd"); code != 404 {
		t.Errorf("dtd after only-rejected ingest = %d, want 404", code)
	}
}

func TestSummaryUploadMerges(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := ts.URL + "/v1/tenants/merged"

	if code, body := post(t, base+"/documents", "<r><x/></r>"); code != 200 {
		t.Fatalf("ingest = %d: %s", code, body)
	}
	shard := dtd.NewExtraction()
	if err := shard.AddDocumentOptions(strings.NewReader("<r><y/><z/></r>"), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.WriteCorpus(shard, &buf); err != nil {
		t.Fatal(err)
	}
	code, body := post(t, base+"/summary", buf.String())
	if code != 200 || !strings.Contains(body, `"version": 2`) {
		t.Fatalf("summary upload = %d: %s", code, body)
	}
	_, dtdText := get(t, base+"/dtd")
	for _, el := range []string{"<!ELEMENT x", "<!ELEMENT y", "<!ELEMENT z"} {
		if !strings.Contains(dtdText, el) {
			t.Errorf("merged DTD missing %q:\n%s", el, dtdText)
		}
	}
	if code, body := post(t, base+"/summary", "not a corpus summary"); code != 400 {
		t.Errorf("corrupt summary upload = %d: %s", code, body)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	defer faultinject.Reset()
	_, ts := testServer(t, Config{QueueSize: 1})
	base := ts.URL + "/v1/tenants/busy"

	// Create the tenant (and its worker) with a first document.
	if code, body := post(t, base+"/documents", "<a><b/></a>"); code != 200 {
		t.Fatalf("priming ingest = %d: %s", code, body)
	}

	// Stall the worker on its next job, fill the 1-slot queue behind
	// it, and watch the third request bounce with 429 + Retry-After.
	faultinject.Set("server.worker", "busy", faultinject.Fault{Delay: 3 * time.Second, Times: 1})
	done := make(chan int, 2)
	async := func() {
		resp, err := http.Post(base+"/documents", "application/xml",
			strings.NewReader("<a><b/><b/></a>"))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}
	go async() // dequeued by the worker, which stalls on the fault
	// The Times=1 registration disappears exactly when the worker fires
	// it — i.e. once the worker is inside its 3s stall.
	waitFor(t, func() bool { return !faultinject.Pending("server.worker", "busy") })
	go async() // sits in the queue
	waitFor(t, func() bool { return queueDepth(t, base) == 1 })

	resp, err := http.Post(base+"/documents", "application/xml", strings.NewReader("<a/>"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("third ingest = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The two queued requests complete normally once the stall clears.
	for i := 0; i < 2; i++ {
		if code := <-done; code != 200 {
			t.Errorf("queued ingest %d = %d, want 200", i, code)
		}
	}
}

func queueDepth(t *testing.T, base string) int {
	t.Helper()
	code, body := get(t, base+"/status")
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var st struct {
		QueueDepth int `json:"queueDepth"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	return st.QueueDepth
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

func TestHandlerPanicContained(t *testing.T) {
	defer faultinject.Reset()
	srv, ts := testServer(t, Config{})
	base := ts.URL + "/v1/tenants/p"
	if code, _ := post(t, base+"/documents", "<a><b/></a>"); code != 200 {
		t.Fatal("priming ingest failed")
	}
	faultinject.Set("server.handler", "dtd", faultinject.Fault{Panic: true, Times: 1})
	if code, _ := get(t, base+"/dtd"); code != 500 {
		t.Errorf("panicking handler = %d, want 500", code)
	}
	if code, _ := get(t, base+"/dtd"); code != 200 {
		t.Errorf("handler after contained panic = %d, want 200", code)
	}
	if n := srv.metrics.panics.Load(); n != 1 {
		t.Errorf("panics counter = %d, want 1", n)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := ts.URL + "/v1/tenants/m"
	post(t, base+"/documents", "<a><b/></a>")
	post(t, base+"/validate", "<a><b/></a>")
	code, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"dtdserved_ingest_accepted_total 1",
		"dtdserved_refreshes_total 1",
		"dtdserved_validations_total 1",
		`dtdserved_tenant_version{tenant="m"} 1`,
		"dtdserved_draining 0",
		// Pipeline stage counters are always exposed, even when every
		// batch so far ran the sequential path (single-document batches).
		"dtdserved_pipeline_batches_total",
		"dtdserved_pipeline_flush_units_total",
		"dtdserved_pipeline_commit_ns_total",
		"dtdserved_pipeline_committer_idle_ns_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestBatchCoalescing(t *testing.T) {
	srv, ts := testServer(t, Config{QueueSize: 64})
	base := ts.URL + "/v1/tenants/batch"
	// Fire a burst of concurrent ingests; the worker coalesces whatever
	// queues up behind the first into shared AddDocs+Refresh passes, so
	// refreshes <= documents while every request succeeds.
	const n = 16
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf("<a>%s</a>", strings.Repeat("<b/>", i+1))
		go func() {
			resp, err := http.Post(base+"/documents", "application/xml", strings.NewReader(doc))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	for i := 0; i < n; i++ {
		if code := <-codes; code != 200 {
			t.Errorf("burst ingest %d = %d, want 200", i, code)
		}
	}
	refreshes := srv.metrics.refreshes.Load()
	if refreshes < 1 || refreshes > n {
		t.Errorf("refreshes = %d, want between 1 and %d", refreshes, n)
	}
	if got := srv.metrics.ingestAccepted.Load(); got != n {
		t.Errorf("accepted = %d, want %d", got, n)
	}
	if code, body := get(t, base+"/status"); code != 200 || !strings.Contains(body, `"documents": 16`) {
		t.Errorf("status = %d: %s", code, body)
	}
}
