package server

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dtdinfer/internal/core"
	"dtdinfer/internal/faultinject"
)

// TestDrainUnderLoad is the in-process drain-correctness gate (the
// binary-level SIGTERM test rides on the same machinery): under
// concurrent ingest and read load, BeginDrain + listener close + Close
// must complete every request that was accepted before the drain began,
// answer 503 to everything after, flush the queues, and persist.
func TestDrainUnderLoad(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{DataDir: dir, QueueSize: 256, RequestTimeout: 30 * time.Second, PersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	base := ts.URL + "/v1/tenants/load"
	if code, body := post(t, base+"/documents", "<a><b/></a>"); code != 200 {
		t.Fatalf("priming ingest = %d: %s", code, body)
	}

	var (
		wg       sync.WaitGroup
		accepted atomic.Int64 // 200s
		rejected atomic.Int64 // 503s after drain began
		other    atomic.Int64 // anything else (must stay 0)
	)
	stop := make(chan struct{})
	classify := func(code int) {
		switch code {
		case 200:
			accepted.Add(1)
		case 503:
			rejected.Add(1)
		case 429: // legitimate backpressure, not a drain violation
		default:
			other.Add(1)
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() { // ingest load
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/documents", "application/xml",
					strings.NewReader("<a><b/><c/></a>"))
				if err != nil {
					other.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				classify(resp.StatusCode)
			}
		}()
		go func() { // read load
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/dtd")
				if err != nil {
					other.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case 200:
				case 503:
					rejected.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}

	// Let the load run, then drain mid-flight.
	time.Sleep(200 * time.Millisecond)
	srv.BeginDrain()

	// New requests are now refused while the server still lives.
	if code, _ := get(t, ts.URL+"/readyz"); code != 503 {
		t.Errorf("readyz while draining = %d, want 503", code)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Errorf("healthz while draining = %d, want 200", code)
	}
	if code, _ := post(t, base+"/documents", "<a/>"); code != 503 {
		t.Errorf("ingest while draining = %d, want 503", code)
	}

	close(stop)
	wg.Wait()
	ts.Close() // waits for in-flight handlers
	if err := srv.Close(15 * time.Second); err != nil {
		t.Fatalf("Close after drain: %v", err)
	}

	if other.Load() != 0 {
		t.Errorf("%d requests got unexpected statuses (want only 200/429/503)", other.Load())
	}
	if accepted.Load() == 0 {
		t.Error("load generator recorded no accepted requests")
	}
	if rejected.Load() == 0 {
		t.Error("no request was drain-rejected; drain began too late to observe")
	}

	// The final persist flushed the corpus: a fresh load must infer the
	// same document count the server accepted (priming + load 200s on
	// the ingest side are all or a subset — the summary must simply be
	// loadable and non-empty).
	x, err := core.LoadCorpus(filepath.Join(dir, "load.corpus"))
	if err != nil {
		t.Fatalf("summary after drain: %v", err)
	}
	if x.Documents == 0 {
		t.Error("persisted summary is empty after drain")
	}
}

// TestDrainCompletesWhenPersistFails pins drain-under-failure: with
// every persist attempt failing, drain still finishes inside the
// deadline (retry/backoff must not hang the flush), the failure is
// surfaced by Close, and the tenant keeps its dirty state on disk
// untouched (the last good summary, here: none).
func TestDrainCompletesWhenPersistFails(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	srv, err := New(Config{
		DataDir:         dir,
		PersistInterval: -1,
		PersistRetry:    core.RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	base := ts.URL + "/v1/tenants/doomed"
	if code, body := post(t, base+"/documents", "<a><b/></a>"); code != 200 {
		t.Fatalf("ingest = %d: %s", code, body)
	}

	faultinject.Set("persist.write", "", faultinject.Fault{Err: errors.New("injected write failure")})
	srv.BeginDrain()
	ts.Close()
	start := time.Now()
	err = srv.Close(10 * time.Second)
	if err == nil {
		t.Fatal("Close = nil, want the final-persist failure surfaced")
	}
	if errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Close hit the drain deadline (%v); persist retries must not hang drain", time.Since(start))
	}
	if !strings.Contains(err.Error(), "doomed") {
		t.Errorf("Close error %q does not name the failing tenant", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "doomed.corpus")); !errors.Is(statErr, os.ErrNotExist) {
		t.Errorf("failed persist left a summary behind: %v", statErr)
	}
}

// TestCloseIdempotentAndTimeout: Close twice is safe; a worker wedged
// past the deadline yields ErrDrainTimeout instead of hanging forever.
func TestCloseTimeout(t *testing.T) {
	defer faultinject.Reset()
	srv, err := New(Config{PersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	base := ts.URL + "/v1/tenants/wedged"
	if code, _ := post(t, base+"/documents", "<a><b/></a>"); code != 200 {
		t.Fatal("priming ingest failed")
	}
	// Wedge the worker long enough to outlive a tiny drain deadline.
	faultinject.Set("server.worker", "wedged", faultinject.Fault{Delay: 2 * time.Second, Times: 1})
	go http.Post(base+"/documents", "application/xml", strings.NewReader("<a/>"))
	waitFor(t, func() bool { return !faultinject.Pending("server.worker", "wedged") })
	if err := srv.Close(50 * time.Millisecond); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Close with wedged worker = %v, want ErrDrainTimeout", err)
	}
	// Second Close waits the workers out properly.
	if err := srv.Close(10 * time.Second); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	ts.Close()
}
