// Package server is the schema service: a long-lived daemon hosting
// named per-tenant corpora, each backed by a core.Incremental. Reads
// (the current DTD or XSD, document validation) are served lock-free
// from the tenant's immutable published snapshot; writes (document
// ingestion, corpus-summary merges) flow through a bounded per-tenant
// queue into a single worker goroutine that batches them, advances the
// next snapshot version, and periodically persists the corpus summary
// to disk. The layering follows OPA's server/runtime/plugins mold: this
// package owns HTTP, queueing, persistence scheduling and recovery;
// all inference semantics stay in internal/core.
//
// Robustness is the design center, not a feature:
//
//   - Backpressure, never unbounded memory: a full ingest queue answers
//     429 with Retry-After; nothing buffers beyond the queue bound.
//   - Per-request timeouts and panic containment: every handler runs
//     under a deadline and a recover barrier (the PR 4 plumbing), so a
//     panicking request burns itself, not the process.
//   - Crash safety: corpora persist via SaveCorpus's atomic durable
//     rename with jittered retry/backoff; on startup the last good
//     summary is recovered, and a corrupt one is quarantined — the
//     daemon starts that tenant empty and surfaces the error in
//     /metrics rather than refusing to boot.
//   - Drain correctness: once draining, new requests get 503 while
//     every accepted request completes; queues flush, each tenant
//     persists a final summary, and only then does Close return.
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dtdinfer/internal/core"
	"dtdinfer/internal/dtd"
)

// Config tunes the daemon. The zero value of every field is usable;
// DataDir="" disables persistence entirely (a pure in-memory service).
type Config struct {
	// Algo selects the inference engine for every tenant.
	Algo core.Algorithm
	// Opts are the engine options (budget, degradation, parallelism).
	Opts core.Options
	// Ingest caps the decoder per document (nil = DefaultIngestOptions'
	// XML-bomb defenses as configured by the caller; nil means uncapped
	// here, matching the library default).
	Ingest *dtd.IngestOptions
	// DataDir is where tenant summaries live, one <tenant>.corpus file
	// each. Empty disables persistence and recovery.
	DataDir string
	// QueueSize bounds each tenant's pending ingest queue (default 64).
	QueueSize int
	// RequestTimeout bounds each request's handler (default 30s).
	RequestTimeout time.Duration
	// PersistInterval is the period of the dirty-tenant auto-persist
	// sweep (default 15s; <0 disables periodic persistence — tenants
	// then persist only on drain and explicit POST .../persist).
	PersistInterval time.Duration
	// PersistRetry shapes the retry/backoff loop around failing
	// persists (zero value = core.DefaultRetryPolicy).
	PersistRetry core.RetryPolicy
	// MaxBodyBytes caps any request body (default 32 MiB).
	MaxBodyBytes int64
	// BatchMax caps how many queued ingest jobs one worker pass
	// coalesces into a single AddDocs+Refresh (default 64).
	BatchMax int
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Algo == "" {
		c.Algo = core.IDTD
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.PersistInterval == 0 {
		c.PersistInterval = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server hosts the tenants. Create with New, mount Handler, and on
// shutdown call BeginDrain, then shut the HTTP listener down (waiting
// for in-flight requests), then Close. That order matters: in-flight
// ingest handlers wait on tenant workers, so workers must outlive the
// listener; and only after the listener is down can no new work arrive,
// making the final queue flush complete by construction.
type Server struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenant

	draining atomic.Bool
	stop     chan struct{} // closed by Close: workers flush and exit
	wg       sync.WaitGroup
	closed   bool

	metrics metrics
}

// tenantName validates tenant names: path- and filename-safe, bounded.
var tenantName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_-]{0,63}$`)

// corpusExt is the summary filename suffix under DataDir.
const corpusExt = ".corpus"

// New builds a server and recovers every tenant whose summary survives
// under cfg.DataDir. A summary that fails to load is quarantined — the
// file is renamed aside with a ".quarantined" suffix, the tenant starts
// empty, and the failure is surfaced in /metrics and the tenant status —
// so one corrupt file never prevents boot.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:     cfg.withDefaults(),
		tenants: map[string]*tenant{},
		stop:    make(chan struct{}),
	}
	if s.cfg.DataDir != "" {
		if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: data dir: %w", err)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	if s.cfg.DataDir != "" && s.cfg.PersistInterval > 0 {
		s.wg.Add(1)
		go s.persistLoop()
	}
	return s, nil
}

// recover scans DataDir for tenant summaries and loads each, in name
// order so startup logs and metrics are deterministic.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return fmt.Errorf("server: scanning data dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), corpusExt) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), corpusExt)
		if !tenantName.MatchString(name) {
			s.cfg.Logf("server: ignoring summary with invalid tenant name %q", e.Name())
			continue
		}
		path := filepath.Join(s.cfg.DataDir, e.Name())
		x, err := core.LoadCorpus(path)
		if err != nil {
			s.quarantine(name, path, err)
			continue
		}
		t := s.newTenant(name, x)
		s.metrics.recovered.Add(1)
		if _, err := t.refreshAndPublish(); err != nil {
			// The summary loaded but inference failed (e.g. a budget
			// too tight for the recovered corpus). Keep serving: the
			// corpus is intact, the next refresh may succeed.
			s.cfg.Logf("server: tenant %s: initial inference failed: %v", name, err)
		} else {
			s.cfg.Logf("server: tenant %s: recovered %d documents, serving v%d",
				name, x.Documents, t.inc.Current().Version)
		}
	}
	return nil
}

// quarantine moves a summary that failed to load out of the way and
// starts the tenant empty. The rename is to a name recovery ignores, so
// the next boot does not trip over it again; a previous quarantine of
// the same tenant is overwritten (the newest corpse wins).
func (s *Server) quarantine(name, path string, cause error) {
	qpath := path + ".quarantined"
	if err := os.Rename(path, qpath); err != nil {
		s.cfg.Logf("server: tenant %s: quarantine rename failed: %v", name, err)
		qpath = path // surface the original path in the status
	}
	t := s.newTenant(name, dtd.NewExtraction())
	msg := fmt.Sprintf("summary quarantined to %s: %v", qpath, cause)
	t.quarantine.Store(&msg)
	s.metrics.quarantined.Add(1)
	s.cfg.Logf("server: tenant %s: %s; starting empty", name, msg)
}

// newTenant registers a tenant around an existing extraction and starts
// its worker; if the name already exists, the existing tenant wins and
// x is discarded (two concurrent first writes create exactly one).
func (s *Server) newTenant(name string, x *dtd.Extraction) *tenant {
	s.mu.Lock()
	if t := s.tenants[name]; t != nil {
		s.mu.Unlock()
		return t
	}
	t := &tenant{
		name:  name,
		srv:   s,
		inc:   core.NewIncrementalFromExtraction(x, s.cfg.Algo, &s.cfg.Opts),
		queue: make(chan *job, s.cfg.QueueSize),
	}
	s.tenants[name] = t
	s.wg.Add(1)
	s.mu.Unlock()
	go t.run()
	return t
}

// tenant returns the named tenant, creating it if create is set (the
// ingestion paths create tenants on first write; read paths do not).
func (s *Server) tenant(name string, create bool) (*tenant, error) {
	if !tenantName.MatchString(name) {
		return nil, errBadTenant
	}
	s.mu.Lock()
	t := s.tenants[name]
	s.mu.Unlock()
	if t != nil {
		return t, nil
	}
	if !create {
		return nil, errNoTenant
	}
	return s.newTenant(name, dtd.NewExtraction()), nil
}

// list returns the tenants sorted by name.
func (s *Server) list() []*tenant {
	s.mu.Lock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// persistLoop sweeps dirty tenants every PersistInterval, enqueueing a
// background persist job on each. The enqueue is non-blocking: a tenant
// whose queue is full is busy ingesting and will be swept again next
// tick — persistence must never add backpressure to ingestion.
func (s *Server) persistLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.PersistInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			for _, t := range s.list() {
				if t.dirty.Load() {
					select {
					case t.queue <- &job{kind: jobPersist}:
					default:
					}
				}
			}
		case <-s.stop:
			return
		}
	}
}

// BeginDrain flips the server into draining mode: /readyz and every API
// route answer 503 from now on, while requests already in flight keep
// running. Idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.cfg.Logf("server: draining")
	}
}

// Close flushes and stops every tenant worker: remaining queued jobs are
// processed, each dirty tenant persists a final summary (under the
// retry policy), and workers exit. Call only after the HTTP listener
// has fully shut down — Close assumes no new jobs can arrive. The
// deadline bounds the wait; on expiry Close returns ErrDrainTimeout
// with workers still running (the caller is about to exit anyway).
// After a clean Close, any tenant whose final persist failed is
// reported in the returned error.
func (s *Server) Close(deadline time.Duration) error {
	s.BeginDrain()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stop)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		return ErrDrainTimeout
	}
	var failed []string
	for _, t := range s.list() {
		if msg := t.persistErr.Load(); msg != nil {
			failed = append(failed, fmt.Sprintf("%s: %s", t.name, *msg))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("server: final persist failed: %s", strings.Join(failed, "; "))
	}
	return nil
}

// ErrDrainTimeout is returned by Close when workers did not finish
// flushing within the drain deadline.
var ErrDrainTimeout = fmt.Errorf("server: drain deadline exceeded")

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }
