package server

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"

	"dtdinfer/internal/core"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/faultinject"
	"dtdinfer/internal/xsd"
)

// tenant is one named corpus. All mutation — ingestion, summary merges,
// persistence — happens on the single worker goroutine consuming queue,
// so the extraction never sees concurrent writers and persistence always
// snapshots a quiescent corpus. Reads never touch the worker: they load
// the immutable published artifacts with one atomic pointer read.
type tenant struct {
	name string
	srv  *Server
	inc  *core.Incremental

	// queue is the bounded ingest queue: handlers enqueue with a
	// non-blocking send and answer 429 when it is full. Never closed —
	// the worker exits via srv.stop after the queue is flushed.
	queue chan *job

	// published holds the artifacts rendered from the latest snapshot.
	published atomic.Pointer[published]

	// dirty is set when the corpus has advanced past the last persisted
	// summary, and cleared by a successful persist.
	dirty atomic.Bool

	// persistErr is the last persist failure (nil after success).
	persistErr atomic.Pointer[string]

	// quarantine records why this tenant's summary was quarantined at
	// boot, if it was; surfaced in /metrics and the status endpoint.
	quarantine atomic.Pointer[string]
}

// published is everything readers need, rendered once per publish so
// GET handlers do zero inference work: the snapshot itself, the DTD and
// XSD texts, and a compiled validator (DFA transitions are read-only
// after compile, so one validator serves any number of concurrent
// validations).
type published struct {
	snap      *core.Snapshot
	dtdText   string
	xsdText   string
	validator *dtd.Validator
}

// jobKind discriminates queue entries.
type jobKind int

const (
	jobIngest jobKind = iota
	jobSummary
	jobPersist
)

// job is one queued unit of work. reply, when non-nil, receives exactly
// one result; it must be buffered (capacity 1) so the worker never
// blocks on a handler that timed out and went away.
type job struct {
	kind    jobKind
	data    []byte          // jobIngest: one XML document
	summary *dtd.Extraction // jobSummary: a decoded corpus summary
	reply   chan jobResult
}

// jobResult is the worker's answer to one job.
type jobResult struct {
	status  int    // HTTP status the handler should answer
	message string // error detail for non-2xx results
	version uint64 // published snapshot version after the job
}

// path is the tenant's summary location ("" when persistence is off).
func (t *tenant) path() string {
	if t.srv.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(t.srv.cfg.DataDir, t.name+corpusExt)
}

// run is the worker loop. It exits when srv.stop closes AND the queue
// is flushed, after a final persist — the drain contract: every job
// enqueued before the listener shut down is processed, then the last
// summary hits disk.
func (t *tenant) run() {
	defer t.srv.wg.Done()
	for {
		select {
		case j := <-t.queue:
			t.process(j)
		case <-t.srv.stop:
			for {
				select {
				case j := <-t.queue:
					t.process(j)
				default:
					t.finalPersist()
					return
				}
			}
		}
	}
}

// process dispatches one job. Ingest jobs coalesce: consecutive queued
// documents are drained (up to BatchMax) into one AddDocs pass and one
// Refresh, so a burst of N requests costs one inference pass, not N.
func (t *tenant) process(j *job) {
	if err := faultinject.Fire("server.worker", t.name); err != nil {
		j.fail(fmt.Errorf("worker fault: %w", err))
		return
	}
	switch j.kind {
	case jobIngest:
		batch := []*job{j}
	more:
		for len(batch) < t.srv.cfg.BatchMax {
			select {
			case next := <-t.queue:
				if next.kind != jobIngest {
					// Different kind: finish the batch first, then
					// process the interloper in arrival order.
					t.ingestBatch(batch)
					t.process(next)
					return
				}
				batch = append(batch, next)
			default:
				break more
			}
		}
		t.ingestBatch(batch)
	case jobSummary:
		t.mergeSummary(j)
	case jobPersist:
		err := t.persist()
		j.replyResult(persistResult(err))
	}
}

// fail answers a job with a 500 carrying the error text.
func (j *job) fail(err error) {
	j.replyResult(jobResult{status: 500, message: err.Error()})
}

// replyResult delivers the result if anyone is waiting (reply is nil
// for background persist jobs; buffered otherwise, so this never
// blocks).
func (j *job) replyResult(r jobResult) {
	if j.reply != nil {
		j.reply <- r
	}
}

func persistResult(err error) jobResult {
	if err != nil {
		return jobResult{status: 500, message: err.Error()}
	}
	return jobResult{status: 200}
}

// ingestBatch runs one AddDocs+Refresh pass over a coalesced batch and
// answers every job: 200 with the new version for accepted documents,
// 422 for documents the decoder rejected, 500 when the inference pass
// itself failed (the corpus advanced; readers keep the old snapshot).
func (t *tenant) ingestBatch(batch []*job) {
	m := &t.srv.metrics
	docs := make([]dtd.Doc, len(batch))
	for i, j := range batch {
		docs[i] = dtd.Doc{Label: fmt.Sprintf("doc-%d", i), R: bytes.NewReader(j.data)}
	}
	report, err := t.inc.AddDocs(context.Background(), docs, t.srv.cfg.Ingest, dtd.SkipAndRecord)
	if report != nil {
		m.ingestDocs.Add(int64(report.Documents))
		m.ingestAccepted.Add(int64(report.Accepted))
		m.ingestRejected.Add(int64(report.Rejected))
		m.ingestBytes.Add(report.Bytes)
		m.ingestElements.Add(report.Elements)
		if p := report.Pipeline; p != nil {
			m.pipelineBatches.Add(1)
			m.pipelineFlushUnits.Add(int64(p.FlushUnits))
			m.pipelineArenaReuses.Add(int64(p.ArenaReuses))
			m.pipelineDecodeNs.Add(p.Decode.Nanoseconds())
			m.pipelineFlushWaitNs.Add(p.FlushWait.Nanoseconds())
			m.pipelineCommitNs.Add(p.Commit.Nanoseconds())
			m.pipelineCommitterIdleNs.Add(p.CommitterIdle.Nanoseconds())
		}
	}
	if err != nil {
		// Batch-level failure (cancellation): nothing committed.
		for _, j := range batch {
			j.fail(err)
		}
		return
	}
	rejected := map[int]string{}
	for _, e := range report.Errors {
		rejected[e.Index] = e.Err.Error()
	}
	if report.Accepted > 0 {
		t.dirty.Store(true)
	}
	var version uint64
	var refreshErr error
	if report.Accepted > 0 {
		version, refreshErr = t.refreshAndPublish()
	} else if p := t.published.Load(); p != nil {
		version = p.snap.Version
	}
	for i, j := range batch {
		if msg, bad := rejected[i]; bad {
			j.replyResult(jobResult{status: 422, message: msg})
			continue
		}
		if refreshErr != nil {
			j.replyResult(jobResult{status: 500,
				message: fmt.Sprintf("document ingested but inference failed: %v", refreshErr)})
			continue
		}
		j.replyResult(jobResult{status: 200, version: version})
	}
}

// mergeSummary folds an uploaded corpus summary into the tenant.
func (t *tenant) mergeSummary(j *job) {
	t.inc.MergeSummary(j.summary)
	t.dirty.Store(true)
	t.srv.metrics.summariesMerged.Add(1)
	version, err := t.refreshAndPublish()
	if err != nil {
		j.replyResult(jobResult{status: 500,
			message: fmt.Sprintf("summary merged but inference failed: %v", err)})
		return
	}
	j.replyResult(jobResult{status: 200, version: version})
}

// refreshAndPublish advances the snapshot and renders the read-side
// artifacts. Rendering happens here, on the worker, because the XSD
// needs the extraction's text samples — safe exactly when no ingestion
// runs concurrently, which the single-writer discipline guarantees.
func (t *tenant) refreshAndPublish() (uint64, error) {
	m := &t.srv.metrics
	snap, err := t.inc.Refresh(context.Background())
	if err != nil {
		m.refreshFailures.Add(1)
		return 0, err
	}
	m.refreshes.Add(1)
	if st := snap.Stats; st != nil && st.Cached {
		m.cacheHits.Add(int64(st.CacheHits))
		m.cacheMisses.Add(int64(st.CacheMisses))
		m.cacheRecomputes.Add(int64(st.CacheRecomputes))
	}
	t.published.Store(&published{
		snap:      snap,
		dtdText:   snap.DTD.String(),
		xsdText:   xsd.Generate(snap.DTD, t.inc.Extraction().TextSamples),
		validator: dtd.NewValidator(snap.DTD),
	})
	return snap.Version, nil
}

// persist writes the corpus summary under the retry policy. A failure
// keeps the dirty bit: the next periodic sweep (or the final drain
// persist) tries again from the top of the backoff schedule.
func (t *tenant) persist() error {
	path := t.path()
	if path == "" {
		return nil
	}
	if !t.dirty.Load() {
		return nil
	}
	m := &t.srv.metrics
	policy := t.srv.cfg.PersistRetry
	prevRetry := policy.OnRetry
	policy.OnRetry = func(attempt int, err error) {
		m.persistRetries.Add(1)
		if prevRetry != nil {
			prevRetry(attempt, err)
		}
	}
	err := core.SaveCorpusRetry(t.inc.Extraction(), path, &policy)
	if err != nil {
		m.persistFailures.Add(1)
		msg := err.Error()
		t.persistErr.Store(&msg)
		t.srv.cfg.Logf("server: tenant %s: persist failed: %v", t.name, err)
		return err
	}
	m.persists.Add(1)
	t.persistErr.Store(nil)
	t.dirty.Store(false)
	return nil
}

// finalPersist is the drain-time flush: one last persist attempt for a
// dirty tenant, after the queue is provably empty.
func (t *tenant) finalPersist() {
	if err := t.persist(); err != nil {
		t.srv.cfg.Logf("server: tenant %s: final persist failed: %v", t.name, err)
	}
}
