package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dtdinfer/internal/core"
	"dtdinfer/internal/faultinject"
)

var (
	errBadTenant = errors.New("invalid tenant name (want [A-Za-z0-9][A-Za-z0-9_-]{0,63})")
	errNoTenant  = errors.New("no such tenant")
)

// Handler returns the daemon's HTTP surface:
//
//	GET  /healthz                          liveness (200 while the process runs)
//	GET  /readyz                           readiness (503 once draining)
//	GET  /metrics                          Prometheus-style counters and gauges
//	GET  /v1/tenants                       list tenant statuses
//	POST /v1/tenants/{tenant}/documents    ingest one XML document (429 when the queue is full)
//	POST /v1/tenants/{tenant}/summary      merge an uploaded corpus summary
//	POST /v1/tenants/{tenant}/validate     validate a document against the published schema
//	POST /v1/tenants/{tenant}/persist      force a persist of the tenant's summary
//	GET  /v1/tenants/{tenant}/dtd          current DTD (text)
//	GET  /v1/tenants/{tenant}/xsd          current XML Schema (text)
//	GET  /v1/tenants/{tenant}/status       tenant status (JSON)
//
// Every /v1 route runs wrapped: request counter, drain rejection, a
// per-request timeout, the "server.handler" fault point, and a recover
// barrier that turns a panicking handler into a 500 instead of a dead
// process. /healthz and /metrics stay unwrapped so a draining or
// misbehaving data plane never blinds the control plane.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.writeMetrics(w)
	})
	mux.HandleFunc("GET /v1/tenants", s.wrap("tenants", s.handleList))
	mux.HandleFunc("POST /v1/tenants/{tenant}/documents", s.wrap("documents", s.handleIngest))
	mux.HandleFunc("POST /v1/tenants/{tenant}/summary", s.wrap("summary", s.handleSummary))
	mux.HandleFunc("POST /v1/tenants/{tenant}/validate", s.wrap("validate", s.handleValidate))
	mux.HandleFunc("POST /v1/tenants/{tenant}/persist", s.wrap("persist", s.handlePersist))
	mux.HandleFunc("GET /v1/tenants/{tenant}/dtd", s.wrap("dtd", s.handleDTD))
	mux.HandleFunc("GET /v1/tenants/{tenant}/xsd", s.wrap("xsd", s.handleXSD))
	mux.HandleFunc("GET /v1/tenants/{tenant}/status", s.wrap("status", s.handleStatus))
	return mux
}

// wrap is the robustness shell around every API handler.
func (s *Server) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(1)
		if s.draining.Load() {
			s.metrics.drainRejects.Add(1)
			w.Header().Set("Retry-After", "5")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Add(1)
				s.cfg.Logf("server: panic in %s handler: %v", route, p)
				// Best effort: if the handler already wrote, this is a
				// no-op on the status line but still ends the request.
				http.Error(w, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
			}
		}()
		if err := faultinject.Fire("server.handler", route); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		h(w, r.WithContext(ctx))
	}
}

// tenantArg resolves the {tenant} path segment, answering the error
// itself when resolution fails.
func (s *Server) tenantArg(w http.ResponseWriter, r *http.Request, create bool) *tenant {
	t, err := s.tenant(r.PathValue("tenant"), create)
	switch {
	case errors.Is(err, errBadTenant):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil
	case errors.Is(err, errNoTenant):
		http.Error(w, err.Error(), http.StatusNotFound)
		return nil
	}
	return t
}

// readBody slurps a capped request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, fmt.Sprintf("reading body: %v", err), status)
		return nil, false
	}
	return body, true
}

// enqueue submits a job with backpressure: a full queue answers 429 +
// Retry-After immediately — the daemon never buffers beyond the bound.
// On success it waits for the worker's reply or the request deadline;
// an accepted job is processed either way (the drain contract counts it).
func (s *Server) enqueue(w http.ResponseWriter, r *http.Request, t *tenant, j *job) {
	select {
	case t.queue <- j:
	default:
		s.metrics.queueFull.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest queue full, retry later", http.StatusTooManyRequests)
		return
	}
	select {
	case res := <-j.reply:
		if res.status != http.StatusOK {
			http.Error(w, res.message, res.status)
			return
		}
		writeJSON(w, map[string]any{"tenant": t.name, "version": res.version})
	case <-r.Context().Done():
		// The job stays queued and will complete; only this response
		// gives up. 503 on drain-cancel would lie — the work happens.
		http.Error(w, "timed out waiting for ingestion (the document is still queued)",
			http.StatusGatewayTimeout)
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	t := s.tenantArg(w, r, true)
	if t == nil {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if len(body) == 0 {
		http.Error(w, "empty document", http.StatusBadRequest)
		return
	}
	s.enqueue(w, r, t, &job{kind: jobIngest, data: body, reply: make(chan jobResult, 1)})
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	t := s.tenantArg(w, r, true)
	if t == nil {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// Decode (and thereby fully validate) the summary on the request
	// goroutine: a corrupt upload costs the uploader a 400, never a
	// worker stall.
	x, err := core.ReadCorpus(bytes.NewReader(body))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad corpus summary: %v", err), http.StatusBadRequest)
		return
	}
	s.enqueue(w, r, t, &job{kind: jobSummary, summary: x, reply: make(chan jobResult, 1)})
}

func (s *Server) handlePersist(w http.ResponseWriter, r *http.Request) {
	t := s.tenantArg(w, r, false)
	if t == nil {
		return
	}
	if t.path() == "" {
		http.Error(w, "persistence disabled (no -data dir)", http.StatusConflict)
		return
	}
	s.enqueue(w, r, t, &job{kind: jobPersist, reply: make(chan jobResult, 1)})
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	t := s.tenantArg(w, r, false)
	if t == nil {
		return
	}
	p := t.published.Load()
	if p == nil {
		http.Error(w, "no schema published yet", http.StatusNotFound)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	s.metrics.validations.Add(1)
	violations, err := p.validator.ValidateOptions(bytes.NewReader(body), s.cfg.Ingest)
	if err != nil {
		http.Error(w, fmt.Sprintf("validation aborted: %v", err), http.StatusBadRequest)
		return
	}
	if len(violations) > 0 {
		s.metrics.validationInvalid.Add(1)
	}
	texts := make([]string, len(violations))
	for i, v := range violations {
		texts[i] = v.String()
	}
	writeJSON(w, map[string]any{
		"tenant":     t.name,
		"version":    p.snap.Version,
		"valid":      len(violations) == 0,
		"violations": texts,
	})
}

func (s *Server) handleDTD(w http.ResponseWriter, r *http.Request) {
	s.serveText(w, r, func(p *published) string { return p.dtdText })
}

func (s *Server) handleXSD(w http.ResponseWriter, r *http.Request) {
	s.serveText(w, r, func(p *published) string { return p.xsdText })
}

func (s *Server) serveText(w http.ResponseWriter, r *http.Request, text func(*published) string) {
	t := s.tenantArg(w, r, false)
	if t == nil {
		return
	}
	p := t.published.Load()
	if p == nil {
		http.Error(w, "no schema published yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Schema-Version", fmt.Sprint(p.snap.Version))
	io.WriteString(w, text(p))
}

// status is the JSON shape of one tenant's state.
type status struct {
	Tenant           string `json:"tenant"`
	Version          uint64 `json:"version"`
	Documents        int    `json:"documents"`
	QueueDepth       int    `json:"queueDepth"`
	QueueCapacity    int    `json:"queueCapacity"`
	Dirty            bool   `json:"dirty"`
	LastPersistError string `json:"lastPersistError,omitempty"`
	Quarantined      string `json:"quarantined,omitempty"`
}

func (t *tenant) status() status {
	st := status{
		Tenant:        t.name,
		QueueDepth:    len(t.queue),
		QueueCapacity: cap(t.queue),
		Dirty:         t.dirty.Load(),
	}
	if p := t.published.Load(); p != nil {
		st.Version = p.snap.Version
		st.Documents = p.snap.Documents
	}
	if msg := t.persistErr.Load(); msg != nil {
		st.LastPersistError = *msg
	}
	if msg := t.quarantine.Load(); msg != nil {
		st.Quarantined = *msg
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	t := s.tenantArg(w, r, false)
	if t == nil {
		return
	}
	writeJSON(w, t.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenants := s.list()
	out := make([]status, len(tenants))
	for i, t := range tenants {
		out[i] = t.status()
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
