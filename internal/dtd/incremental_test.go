package dtd

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"dtdinfer/internal/regex"
	"dtdinfer/internal/sample"
)

// countingInferrer is a deterministic children-content inferrer that
// counts how often the "engine" actually runs: (a1|...|an)* over the
// sample's alphabet.
func countingInferrer(calls *atomic.Int64) InferElementFunc {
	return func(ctx context.Context, name string, s *sample.Set) (*regex.Expr, *ElementOutcome, error) {
		calls.Add(1)
		syms := s.Symbols()
		subs := make([]*regex.Expr, len(syms))
		for i, sym := range syms {
			subs[i] = regex.Sym(sym)
		}
		return regex.Simplify(regex.Star(regex.Union(subs...))),
			&ElementOutcome{Name: name, Engine: "counting"}, nil
	}
}

func mustAdd(t *testing.T, x *Extraction, doc string) {
	t.Helper()
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
}

// TestCachedInferenceHitsAndRecomputes drives the per-element model
// cache through its three outcomes: a cold pass misses everywhere, an
// unchanged pass hits everywhere without running the engine, and a pass
// after one element's sample gained a new shape recomputes exactly that
// element.
func TestCachedInferenceHitsAndRecomputes(t *testing.T) {
	x := NewExtraction()
	mustAdd(t, x, `<r><a><c/></a><b><c/></b></r>`)
	cfg := &CacheConfig{Key: "test"}
	var calls atomic.Int64

	// Children-content elements: r, a, b (c is EMPTY, structural).
	d1, s1, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("cold pass ran engine %d times, want 3", got)
	}
	if s1.CacheMisses != 3 || s1.CacheHits != 0 || s1.CacheRecomputes != 0 {
		t.Errorf("cold pass counters: %d hits %d misses %d recomputes, want 0/3/0",
			s1.CacheHits, s1.CacheMisses, s1.CacheRecomputes)
	}
	if s1.Dirty != 4 {
		t.Errorf("cold pass dirty=%d, want 4 (every observed element)", s1.Dirty)
	}

	calls.Store(0)
	d2, s2, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 0 {
		t.Errorf("warm pass ran engine %d times, want 0", got)
	}
	if s2.CacheHits != 3 || s2.CacheMisses != 0 || s2.CacheRecomputes != 0 {
		t.Errorf("warm pass counters: %d hits %d misses %d recomputes, want 3/0/0",
			s2.CacheHits, s2.CacheMisses, s2.CacheRecomputes)
	}
	if s2.Dirty != 0 {
		t.Errorf("warm pass dirty=%d, want 0", s2.Dirty)
	}
	if d1.String() != d2.String() {
		t.Errorf("warm pass not byte-identical:\ncold: %s\nwarm: %s", d1, d2)
	}

	// New shape for a only: [c c]. r re-observes [a b], b re-observes [c].
	mustAdd(t, x, `<r><a><c/><c/></a><b><c/></b></r>`)
	if got := x.DirtyElements(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("dirty after update = %v, want [a]", got)
	}
	calls.Store(0)
	_, s3, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("update pass ran engine %d times, want 1", got)
	}
	if s3.CacheHits != 2 || s3.CacheRecomputes != 1 || s3.CacheMisses != 0 {
		t.Errorf("update pass counters: %d hits %d misses %d recomputes, want 2/0/1",
			s3.CacheHits, s3.CacheMisses, s3.CacheRecomputes)
	}
	if s3.Dirty != 1 {
		t.Errorf("update pass dirty=%d, want 1", s3.Dirty)
	}
	if len(x.DirtyElements()) != 0 {
		t.Errorf("dirty not cleared by successful pass: %v", x.DirtyElements())
	}
}

// TestCachedInferenceCountedFingerprint: under a count-sensitive config,
// re-ingesting an already-seen document (multiplicity bump, no new
// shape) must recompute; under a shape-only config it must hit.
func TestCachedInferenceCountedFingerprint(t *testing.T) {
	doc := `<r><a/><a/></r>`
	for _, tc := range []struct {
		counted                bool
		wantHits, wantRecomput int
	}{
		{counted: false, wantHits: 1, wantRecomput: 0},
		{counted: true, wantHits: 0, wantRecomput: 1},
	} {
		x := NewExtraction()
		mustAdd(t, x, doc)
		cfg := &CacheConfig{Key: fmt.Sprintf("counted=%t", tc.counted), Counted: tc.counted}
		var calls atomic.Int64
		if _, _, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls)); err != nil {
			t.Fatal(err)
		}
		mustAdd(t, x, doc) // same shapes again: counts move, shapes don't
		if got := len(x.DirtyElements()); got != 0 {
			t.Errorf("counted=%t: multiplicity-only ingest marked %d elements dirty", tc.counted, got)
		}
		_, s, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls))
		if err != nil {
			t.Fatal(err)
		}
		if s.CacheHits != tc.wantHits || s.CacheRecomputes != tc.wantRecomput {
			t.Errorf("counted=%t: %d hits %d recomputes, want %d/%d",
				tc.counted, s.CacheHits, s.CacheRecomputes, tc.wantHits, tc.wantRecomput)
		}
	}
}

// TestCachedInferenceConfigKeysIsolated: two configurations never share
// cache entries, even on the same extraction.
func TestCachedInferenceConfigKeysIsolated(t *testing.T) {
	x := NewExtraction()
	mustAdd(t, x, `<r><a/></r>`)
	var calls atomic.Int64
	if _, _, err := x.InferDTDElementsCached(context.Background(), &CacheConfig{Key: "one"}, countingInferrer(&calls)); err != nil {
		t.Fatal(err)
	}
	_, s, err := x.InferDTDElementsCached(context.Background(), &CacheConfig{Key: "two"}, countingInferrer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheMisses != 1 || s.CacheHits != 0 {
		t.Errorf("different key reused entries: %d hits %d misses", s.CacheHits, s.CacheMisses)
	}
}

// TestCachedInferenceFailedPassKeepsDirty: a pass that fails must leave
// the dirty bits so the next pass still knows what changed.
func TestCachedInferenceFailedPassKeepsDirty(t *testing.T) {
	x := NewExtraction()
	mustAdd(t, x, `<r><a><b/></a></r>`)
	cfg := &CacheConfig{Key: "test"}
	boom := errors.New("boom")
	failing := func(ctx context.Context, name string, s *sample.Set) (*regex.Expr, *ElementOutcome, error) {
		if name == "a" {
			return nil, nil, boom
		}
		var calls atomic.Int64
		return countingInferrer(&calls)(ctx, name, s)
	}
	if _, _, err := x.InferDTDElementsCached(context.Background(), cfg, failing); !errors.Is(err, boom) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	if got := x.DirtyElements(); len(got) == 0 {
		t.Error("failed pass cleared the dirty bits")
	}
	var calls atomic.Int64
	if _, _, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls)); err != nil {
		t.Fatal(err)
	}
	if got := x.DirtyElements(); len(got) != 0 {
		t.Errorf("successful pass left dirty bits: %v", got)
	}
}

// TestCachedInferenceInvalidate: InvalidateCache forces a full cold
// pass.
func TestCachedInferenceInvalidate(t *testing.T) {
	x := NewExtraction()
	mustAdd(t, x, `<r><a/></r>`)
	cfg := &CacheConfig{Key: "test"}
	var calls atomic.Int64
	if _, _, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls)); err != nil {
		t.Fatal(err)
	}
	x.InvalidateCache()
	_, s, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheMisses != 1 || s.CacheHits != 0 {
		t.Errorf("after invalidation: %d hits %d misses, want 0/1", s.CacheHits, s.CacheMisses)
	}
}

// TestDirtyTrackingAcrossIngestionPaths: every ingestion path — std and
// fast decoders, sequential and parallel — must mark the same elements
// dirty for the same corpus delta.
func TestDirtyTrackingAcrossIngestionPaths(t *testing.T) {
	base := []string{
		`<r><a><c/></a><b>text</b></r>`,
		`<r><a><c/></a><b>more</b></r>`,
	}
	update := `<r><a><c/><c/></a><b>again</b></r>` // new shape for a only
	for _, dec := range []DecoderKind{DecoderFast, DecoderStd} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("%v/workers=%d", dec, workers)
			opts := &IngestOptions{Decoder: dec}
			x := NewExtraction()
			ingest := func(doc ...string) {
				docs := make([]Doc, len(doc))
				for i, d := range doc {
					docs[i] = Doc{Label: fmt.Sprintf("doc%d", i), R: strings.NewReader(d)}
				}
				if _, err := x.AddDocsParallel(docs, workers, opts, FailFast); err != nil {
					t.Fatal(err)
				}
			}
			ingest(base...)
			want := []string{"a", "b", "c", "r"}
			if got := x.DirtyElements(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: initial dirty = %v, want %v", name, got, want)
			}
			var calls atomic.Int64
			if _, _, err := x.InferDTDElementsCached(context.Background(), &CacheConfig{Key: "t"}, countingInferrer(&calls)); err != nil {
				t.Fatal(err)
			}
			ingest(base[0]) // already-seen shapes only
			if got := x.DirtyElements(); len(got) != 0 {
				t.Errorf("%s: repeat doc marked dirty: %v", name, got)
			}
			ingest(update)
			if got := x.DirtyElements(); !reflect.DeepEqual(got, []string{"a"}) {
				t.Errorf("%s: update dirty = %v, want [a]", name, got)
			}
		}
	}
}

// TestInferStatsStringCacheLine: the stats renderer reports the cache
// counters when a cache was consulted and stays quiet when not.
func TestInferStatsStringCacheLine(t *testing.T) {
	withCache := &InferStats{Cached: true, CacheHits: 2, CacheMisses: 1, CacheRecomputes: 3, Dirty: 4}
	s := withCache.String()
	if !strings.Contains(s, "cache: 2 hits, 1 misses, 3 recomputes; 4 dirty elements") {
		t.Errorf("cache line missing or malformed:\n%s", s)
	}
	if s := (&InferStats{}).String(); strings.Contains(s, "cache:") {
		t.Errorf("uncached stats rendered a cache line:\n%s", s)
	}
}
