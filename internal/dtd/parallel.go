package dtd

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
)

// Parallel sharded ingestion. The corpus is split into contiguous shards;
// each worker claims shards off a shared queue and stages their documents
// using the same per-document fault-isolation loop as the sequential
// path, under the same IngestOptions caps. On the fast decoder a shard is
// staged entirely in the worker's private symbol space (fastShard):
// counted ID multisets per element, zero synchronization, no string
// interning beyond the worker's own table. Completed (or flush-budget
// sealed partial) stages stream to a committer that folds them into the
// corpus in shard order *while later shards are still decoding* — see
// pipeline.go for the streaming engine, its back-pressure bound and the
// per-stage instrumentation it reports. The commit is the single place
// worker IDs are translated into the corpus extraction, through
// per-worker cached remaps (intern.Remap), so each distinct symbol's
// string is touched once per worker and everything else is slice
// indexing. The std decoder keeps its per-shard staging Extraction,
// committed with the ID-level Merge.
//
// Because every observation the extraction accumulates is a commutative
// set/counter union (2T-INF edge sets, occurrence counters, root tallies)
// and the order-sensitive parts (Sequences order, capped text samples) are
// re-serialized by the in-order commit, the result is byte-identical to
// sequential ingestion of the same documents: Merge(a); Merge(b) equals
// ingesting a's then b's documents directly, and shards partition the
// batch in order. Reports are deterministic too — per-document errors
// carry original batch indexes and shards are contiguous, so concatenating
// shard reports in shard order reproduces the sequential report exactly.
//
// Under FailFast the committed prefix matches sequential FailFast: shards
// before the earliest failing document commit in full, the failing shard
// commits its documents preceding the failure, and everything after is
// discarded. The only observable difference from sequential FailFast is
// that readers of later documents may already have been partially consumed
// by workers before the failure surfaced.

// shardsPerWorker oversubscribes the shard queue so a worker that lands on
// cheap documents can steal further shards instead of idling.
const shardsPerWorker = 4

// sizeHint returns a document's byte size when cheaply knowable
// (in-memory readers with Len, regular files), else -1. Used only for
// load balancing; a wrong hint skews shard sizes, never results.
func sizeHint(r io.Reader) int64 {
	switch v := r.(type) {
	case interface{ Len() int }:
		return int64(v.Len())
	case *os.File:
		if fi, err := v.Stat(); err == nil && fi.Mode().IsRegular() {
			return fi.Size()
		}
	}
	return -1
}

// shardBounds cuts docs into shardCount contiguous shards of roughly
// equal *byte* weight — document counts make terrible shards when sizes
// are skewed, leaving one worker grinding a giant file while the rest
// idle. Documents without a size hint weigh the average of the known
// sizes; when nothing is knowable the split degrades to equal counts.
// Every shard gets at least one document (callers cap
// shardCount <= len(docs)): the weight loop only places the cuts, and the
// normalization passes below make the at-least-one guarantee structural
// rather than a property of where the weights happen to fall. Any
// contiguous partition preserves the parallel-equals-sequential
// guarantee, so bounds only affect load balance.
func shardBounds(docs []Doc, shardCount int) []int {
	bounds := make([]int, shardCount+1)
	sizes := make([]int64, len(docs))
	var known int64
	knownCount := 0
	for i, d := range docs {
		sizes[i] = sizeHint(d.R)
		if sizes[i] >= 0 {
			known += sizes[i]
			knownCount++
		}
	}
	if knownCount == 0 {
		for i := range bounds {
			bounds[i] = i * len(docs) / shardCount
		}
		return bounds
	}
	avg := known / int64(knownCount)
	if avg <= 0 {
		avg = 1
	}
	var total int64
	for i := range sizes {
		if sizes[i] < 0 {
			sizes[i] = avg
		}
		if sizes[i] == 0 {
			sizes[i] = 1
		}
		total += sizes[i]
	}
	s := 1
	var cum int64
	for i := 0; i < len(docs) && s < shardCount; i++ {
		cum += sizes[i]
		if cum*int64(shardCount) >= total*int64(s) {
			bounds[s] = i + 1
			s++
		}
	}
	for ; s <= shardCount; s++ {
		bounds[s] = len(docs)
	}
	// Normalize: a forward pass reserves at least one document for every
	// shard before a cut, a backward pass reserves one for every shard
	// after it. On any weight distribution that already yields non-empty
	// shards both passes are no-ops; on degenerate ones (all weight in the
	// first or last documents) they shift cuts minimally. After the two
	// passes s <= bounds[s] <= bounds[s+1]-1 holds for every interior cut,
	// so bounds is strictly increasing and no shard is empty.
	for s := 1; s < shardCount; s++ {
		if bounds[s] < s {
			bounds[s] = s
		}
	}
	for s := shardCount - 1; s >= 1; s-- {
		if bounds[s] > bounds[s+1]-1 {
			bounds[s] = bounds[s+1] - 1
		}
	}
	return bounds
}

// AddDocumentsParallel ingests a batch of documents across workers
// goroutines (workers <= 0 selects runtime.GOMAXPROCS(0)), labeling
// documents by position. Semantics, report and resulting extraction are
// identical to AddDocuments.
func (x *Extraction) AddDocumentsParallel(docs []io.Reader, workers int, opts *IngestOptions, policy ErrorPolicy) (*IngestReport, error) {
	labeled := make([]Doc, len(docs))
	for i, r := range docs {
		labeled[i] = Doc{Label: fmt.Sprintf("document %d", i), R: r}
	}
	return x.AddDocsParallel(labeled, workers, opts, policy)
}

// AddDocsParallel is AddDocumentsParallel with caller-supplied labels.
func (x *Extraction) AddDocsParallel(docs []Doc, workers int, opts *IngestOptions, policy ErrorPolicy) (*IngestReport, error) {
	return x.AddDocsParallelContext(context.Background(), docs, workers, opts, policy)
}

// AddDocumentsParallelContext is AddDocumentsParallel under a context,
// labeling documents by position. See AddDocsParallelContext for the
// cancellation contract.
func (x *Extraction) AddDocumentsParallelContext(ctx context.Context, docs []io.Reader, workers int, opts *IngestOptions, policy ErrorPolicy) (*IngestReport, error) {
	labeled := make([]Doc, len(docs))
	for i, r := range docs {
		labeled[i] = Doc{Label: fmt.Sprintf("document %d", i), R: r}
	}
	return x.AddDocsParallelContext(ctx, labeled, workers, opts, policy)
}

// AddDocsParallelContext is AddDocsParallel under a context. Workers check
// the context before claiming each shard and inside every document's
// decode loop, so a cancelled call returns promptly with ctx.Err() and no
// lingering goroutines (the call still joins its workers before
// returning). Cancellation is batch-atomic: with a cancellable context
// the pipelined committer folds into a staging extraction that x adopts
// only on success, so a cancelled call — even one cancelled with shards
// already in the commit channel — leaves x exactly as it was. The
// returned report carries PipelineStats (per-stage wall and idle
// timings) when the pipelined path ran.
func (x *Extraction) AddDocsParallelContext(ctx context.Context, docs []Doc, workers int, opts *IngestOptions, policy ErrorPolicy) (*IngestReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(docs) < 2 {
		return x.AddDocsContext(ctx, docs, opts, policy)
	}
	shardCount := workers * shardsPerWorker
	if shardCount > len(docs) {
		shardCount = len(docs)
	}
	if workers > shardCount {
		workers = shardCount
	}
	bounds := shardBounds(docs, shardCount)
	return x.runPipeline(ctx, docs, bounds, workers, opts, policy)
}
