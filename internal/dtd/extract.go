package dtd

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"dtdinfer/internal/regex"
	"dtdinfer/internal/sample"
)

// Extraction accumulates, over one or more XML documents, the child-element
// sequences observed under every element name — the positive example
// strings from which a DTD is inferred — plus whether non-whitespace text
// was seen and the root element names.
type Extraction struct {
	// Sequences maps an element name to the counted multiset of observed
	// children sequences. Sequences are deduplicated and symbol-interned
	// at ingestion, so repeated structures cost one count increment
	// instead of a stored copy, and inference consumes interned IDs
	// without re-interning strings.
	Sequences map[string]*sample.Set
	// HasText marks elements with non-whitespace character data.
	HasText map[string]bool
	// TextSamples keeps up to maxTextSamples trimmed text values per
	// element, for datatype detection when emitting XML Schema.
	TextSamples map[string][]string
	// TextOverflow marks elements whose TextSamples were truncated at the
	// cap: the kept samples are a prefix of the observed text values, not
	// the complete set. It mirrors the attribute statistics' overflow flag
	// so downstream datatype detection can distinguish "saw exactly these
	// values" from "saw at least these".
	TextOverflow map[string]bool
	// Attributes accumulates per-element attribute statistics for
	// <!ATTLIST> inference.
	Attributes map[string]map[string]*attStats
	// Roots counts observed document root names.
	Roots map[string]int
	// Documents counts processed documents.
	Documents int

	// dirty marks elements whose structural observations changed since the
	// last cached inference pass: a new distinct children shape (shape
	// fingerprint moved), a text flag flip, or an attribute-statistics
	// shape change (new attribute, new distinct value, overflow). Pure
	// multiplicity bumps of already-seen shapes and attribute presence
	// counts do not mark — which is what makes the bit cheap and lets a
	// merge of only-seen shapes leave an element clean. The bit is
	// observational (stats, DirtyElements); cache *correctness* rests on
	// per-element fingerprints, which count-sensitive engine configs
	// compare in counted form. Lazily allocated; cleared by a successful
	// cached inference.
	dirty map[string]bool
	// cache memoizes inferred content models per (element, engine config,
	// fingerprint); see InferDTDElementsCached. Lazily allocated.
	cache *modelCache
	// attFp holds each element's attribute-statistics fingerprint, the
	// incremental mirror of attStatsFingerprint over its attributes;
	// attCache memoizes the last complete <!ATTLIST> pass under the
	// global fingerprint derived from attFp (see attributes.go). Both
	// lazily allocated.
	attFp    map[string]uint64
	attCache *attListCache
}

const maxTextSamples = 100

// isEmpty reports whether the extraction holds no observations and no
// cache state — i.e. adopting another extraction wholesale is
// indistinguishable from having committed into this one directly. The
// pipelined committer uses it to skip the final staging merge when
// ingesting into a fresh corpus.
func (x *Extraction) isEmpty() bool {
	return len(x.Sequences) == 0 && len(x.HasText) == 0 &&
		len(x.TextSamples) == 0 && len(x.TextOverflow) == 0 &&
		len(x.Attributes) == 0 && len(x.Roots) == 0 && x.Documents == 0 &&
		len(x.dirty) == 0 && x.cache == nil &&
		len(x.attFp) == 0 && x.attCache == nil
}

// NewExtraction returns an empty accumulator.
func NewExtraction() *Extraction {
	return &Extraction{
		Sequences:    map[string]*sample.Set{},
		HasText:      map[string]bool{},
		TextSamples:  map[string][]string{},
		TextOverflow: map[string]bool{},
		Attributes:   map[string]map[string]*attStats{},
		Roots:        map[string]int{},
	}
}

// AddDocument parses one XML document and accumulates its sequences,
// without resource caps. The operation is failure-atomic: a document
// that fails mid-parse leaves the extraction unchanged, so incremental
// accumulators survive malformed inputs uncorrupted.
func (x *Extraction) AddDocument(r io.Reader) error {
	return x.AddDocumentOptions(r, nil)
}

// docStats counts one document's decoding work for the IngestReport.
type docStats struct {
	bytes    int64
	tokens   int64
	elements int64
}

// cancelCheckInterval is how many decoded tokens pass between cooperative
// cancellation checks in the decode loop — frequent enough that a
// cancelled ingestion of even a modest document returns promptly, rare
// enough that the check never shows up in a profile.
const cancelCheckInterval = 256

// extractOne runs the decode loop over one document, mutating x directly
// except for children sequences, which are buffered as verbatim strings
// into the caller-owned seqs map (cleared between documents by batch
// callers so its buckets are reused). Callers that need atomicity (all of
// them, via AddDocumentOptions and AddDocs) run it on a staging
// extraction, then Merge the stage and commit the buffered sequences on
// success. Keeping the per-document staging as plain strings means each
// observed sequence is interned exactly once, into the commit target's
// counted sample — a staged sample.Set would intern into a throwaway
// table and force Merge to re-intern on every document. A nil opts
// applies no resource caps.
//
// The context is checked every cancelCheckInterval tokens; on
// cancellation the document fails with ctx.Err(), which callers treat as
// batch abortion rather than a per-document fault. A context that can
// never be cancelled (Done() == nil, e.g. context.Background()) costs
// nothing in the loop.
func (x *Extraction) extractOne(ctx context.Context, r io.Reader, opts *IngestOptions, seqs map[string][][]string) (docStats, error) {
	var o IngestOptions
	if opts != nil {
		o = *opts
	}
	done := ctx.Done()
	mr := &meteredReader{r: r, max: o.MaxBytes}
	dec := xml.NewDecoder(mr)
	type frame struct {
		name     string
		children []string
	}
	var stack []frame
	var stats docStats
	// names tracks distinct element names only when the cap is on; the
	// uncapped path skips the per-element map traffic entirely.
	var names map[string]bool
	if o.MaxNames > 0 {
		names = make(map[string]bool, 16)
	}
	for {
		if done != nil && stats.tokens%cancelCheckInterval == 0 {
			select {
			case <-done:
				return stats, ctx.Err()
			default:
			}
		}
		tok, err := dec.Token()
		stats.bytes = mr.n
		if err == io.EOF {
			break
		}
		if err != nil {
			var le *LimitError
			if errors.As(err, &le) {
				return stats, le
			}
			return stats, fmt.Errorf("dtd: parsing XML: %w", err)
		}
		stats.tokens++
		if o.MaxTokens > 0 && stats.tokens > o.MaxTokens {
			return stats, &LimitError{Limit: "tokens", Max: o.MaxTokens, Offset: dec.InputOffset()}
		}
		switch t := tok.(type) {
		case xml.StartElement:
			stats.elements++
			if o.MaxDepth > 0 && len(stack) >= o.MaxDepth {
				return stats, &LimitError{Limit: "depth", Max: int64(o.MaxDepth), Offset: dec.InputOffset()}
			}
			name := t.Name.Local
			if o.MaxNames > 0 && !names[name] {
				if len(names) >= o.MaxNames {
					return stats, &LimitError{Limit: "names", Max: int64(o.MaxNames), Offset: dec.InputOffset()}
				}
				names[name] = true
			}
			if len(stack) == 0 {
				x.Roots[name]++
			} else {
				top := &stack[len(stack)-1]
				top.children = append(top.children, name)
			}
			for _, attr := range t.Attr {
				if attr.Name.Space == "xmlns" || attr.Name.Local == "xmlns" {
					continue
				}
				x.recordAttribute(name, attr.Name.Local, attr.Value)
			}
			stack = append(stack, frame{name: name})
		case xml.EndElement:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			seqs[top.name] = append(seqs[top.name], top.children)
		case xml.CharData:
			if trimmed := strings.TrimSpace(string(t)); len(stack) > 0 && trimmed != "" {
				name := stack[len(stack)-1].name
				x.HasText[name] = true
				if len(x.TextSamples[name]) < maxTextSamples {
					x.TextSamples[name] = append(x.TextSamples[name], trimmed)
				} else {
					x.TextOverflow[name] = true
				}
			}
		}
	}
	if len(stack) != 0 {
		return stats, fmt.Errorf("dtd: unbalanced XML document")
	}
	x.Documents++
	return stats, nil
}

// commitSequences folds one successfully decoded document's children
// sequences into the accumulator. Within each element the order of
// observation is preserved, so symbols intern in stream order; distinct
// elements have independent samples, so map iteration order is immaterial.
func (x *Extraction) commitSequences(seqs map[string][][]string) {
	for name, list := range seqs {
		s := x.sampleOf(name)
		before := s.ShapeFingerprint()
		for _, w := range list {
			s.Add(w)
		}
		if s.ShapeFingerprint() != before {
			x.markDirty(name)
		}
	}
}

// markDirty records that an element's structural observations changed
// since the last cached inference pass.
func (x *Extraction) markDirty(name string) {
	if x.dirty == nil {
		x.dirty = map[string]bool{}
	}
	x.dirty[name] = true
}

// DirtyElements returns, sorted, the elements whose structural
// observations changed since the last successful cached inference pass
// (or since the extraction was created). See the dirty field for what
// counts as a change.
func (x *Extraction) DirtyElements() []string {
	names := make([]string, 0, len(x.dirty))
	for n := range x.dirty {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// recordAttribute folds one observed attribute value into the
// statistics, mirroring every state change into the element's attribute
// fingerprint.
func (x *Extraction) recordAttribute(element, attribute, value string) {
	atts := x.Attributes[element]
	if atts == nil {
		atts = map[string]*attStats{}
		x.Attributes[element] = atts
	}
	st := atts[attribute]
	if st == nil {
		st = &attStats{values: map[string]int{}}
		atts[attribute] = st
	}
	hp, hov, hval := attNameHashes(attribute)
	st.present++
	x.attFpAdd(element, hp, 1)
	if _, seen := st.values[value]; !seen && len(st.values) >= maxAttValues {
		if !st.overflow {
			st.overflow = true
			x.attFpAdd(element, hov, 1)
		}
		return
	}
	st.values[value]++
	x.attFpAdd(element, attValueHash(hval, value), 1)
}

// sampleOf returns the element's counted sample, creating it on first use.
func (x *Extraction) sampleOf(element string) *sample.Set {
	s := x.Sequences[element]
	if s == nil {
		s = sample.New()
		x.Sequences[element] = s
	}
	return s
}

// AddSequences injects pre-extracted strings for an element, used when the
// sample is generated directly as strings rather than documents. Duplicate
// sequences fold into multiplicity counts.
func (x *Extraction) AddSequences(element string, seqs [][]string) {
	s := x.sampleOf(element)
	before := s.ShapeFingerprint()
	for _, w := range seqs {
		s.Add(w)
	}
	if s.ShapeFingerprint() != before {
		x.markDirty(element)
	}
}

// Root returns the most frequent root element name.
func (x *Extraction) Root() string {
	best, bestN := "", -1
	names := make([]string, 0, len(x.Roots))
	for n := range x.Roots {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if x.Roots[n] > bestN {
			best, bestN = n, x.Roots[n]
		}
	}
	return best
}

// InferFunc turns a sample of strings into a content expression. It is the
// compatibility shape for inferrers that want verbatim strings; the engine
// hot path is InferSampleFunc.
type InferFunc = func(sample [][]string) (*regex.Expr, error)

// InferSampleFunc turns a counted, interned sample into a content
// expression. This is the shape every registered engine consumes — string
// conversion happens only at the corpus edge.
type InferSampleFunc = func(s *sample.Set) (*regex.Expr, error)

// adaptInfer lifts a string-sample inferrer to the counted shape by
// expanding the multiset (duplicates appear with their multiplicities).
func adaptInfer(infer InferFunc) InferSampleFunc {
	return func(s *sample.Set) (*regex.Expr, error) { return infer(s.Strings()) }
}

// InferDTD builds a DTD from the accumulated sequences, applying the given
// content-model inferrer to every element observed with child elements.
// Elements seen with only text become (#PCDATA), with both text and
// children mixed content, and with neither EMPTY. Content models of
// different elements are independent and are inferred concurrently; the
// result is deterministic regardless of scheduling.
func (x *Extraction) InferDTD(infer InferFunc) (*DTD, error) {
	d, _, err := x.InferDTDStats(infer)
	return d, err
}

// InferDTDStats is InferDTD, additionally reporting per-element inference
// timings from the worker pool (the stats are valid even when inference
// of some element fails).
func (x *Extraction) InferDTDStats(infer InferFunc) (*DTD, *InferStats, error) {
	return x.InferDTDSampleStats(adaptInfer(infer))
}

// InferDTDSample is InferDTD for inferrers that consume the counted,
// interned sample directly — no string expansion anywhere on the path.
func (x *Extraction) InferDTDSample(infer InferSampleFunc) (*DTD, error) {
	d, _, err := x.InferDTDSampleStats(infer)
	return d, err
}

// InferDTDSampleStats is InferDTDElements without a context or outcome
// reporting: the inferrer is lifted to the element shape with a nil
// outcome, preserving the historical single-engine behaviour.
func (x *Extraction) InferDTDSampleStats(infer InferSampleFunc) (*DTD, *InferStats, error) {
	return x.InferDTDElements(context.Background(),
		func(ctx context.Context, name string, s *sample.Set) (*regex.Expr, *ElementOutcome, error) {
			e, err := infer(s)
			return e, nil, err
		})
}

// ElementOutcome records how one element's content model was obtained:
// which engine produced the accepted expression, whether (and from which
// engine) the inference degraded, why, and how long the whole attempt
// chain took. Engines are named by their algorithm strings so the dtd
// layer stays ignorant of the engine registry above it.
type ElementOutcome struct {
	// Name is the element name.
	Name string
	// Engine is the engine whose expression was accepted ("idtd", "crx",
	// "universal", ...).
	Engine string
	// DegradedFrom is the originally configured engine when Engine differs
	// from it; empty when the primary engine succeeded.
	DegradedFrom string
	// Cause explains the degradation ("deadline", "budget: ...", a panic
	// or engine error message); empty when the primary engine succeeded.
	Cause string
	// Elapsed is the wall-clock time of the whole attempt chain for this
	// element, including failed rungs.
	Elapsed time.Duration
	// FromCache marks an outcome replayed from the model cache: the
	// engine fields describe the pass that originally computed the model,
	// while Elapsed is this pass's (cache-lookup) cost.
	FromCache bool
}

// InferElementFunc turns one element's counted sample into a content
// expression, optionally reporting how (a nil outcome means the caller
// has nothing to record — e.g. a plain single-engine inferrer). The
// context carries cancellation and resource budgets downward.
type InferElementFunc = func(ctx context.Context, name string, s *sample.Set) (*regex.Expr, *ElementOutcome, error)

// InferDTDElements is the inference engine behind every InferDTD variant:
// a bounded worker pool infers one content model per element from its
// counted sample, deterministically regardless of scheduling. The context
// cancels the pool cooperatively — workers stop picking up elements and
// the first error returned is ctx.Err() — and is passed to every element
// inferrer, which layers per-element deadlines and budgets on top of it.
// Outcomes reported by the inferrer are collected into the stats in
// element order. No result memoization happens at this entry point; see
// InferDTDElementsCached.
func (x *Extraction) InferDTDElements(ctx context.Context, infer InferElementFunc) (*DTD, *InferStats, error) {
	return x.InferDTDElementsCached(ctx, nil, infer)
}

// inferElementOutcome derives one element's declaration. The inferrer is
// consulted only for children content; text-only, empty and mixed
// declarations are structural and never degrade (and are never cached —
// they cost map lookups, not engine runs).
func (x *Extraction) inferElementOutcome(ctx context.Context, name string, cfg *CacheConfig, cnt *cacheCounters, infer InferElementFunc) (*Element, *ElementOutcome, error) {
	seqs := x.Sequences[name]
	hasChildren := seqs.NumSymbols() > 0
	switch {
	case !hasChildren && x.HasText[name]:
		return &Element{Name: name, Type: PCData}, nil, nil
	case !hasChildren:
		return &Element{Name: name, Type: Empty}, nil, nil
	case x.HasText[name]:
		return &Element{Name: name, Type: Mixed, MixedNames: seqs.Symbols()}, nil, nil
	case cfg != nil:
		return x.inferChildrenCached(ctx, name, seqs, cfg, cnt, infer)
	default:
		model, outcome, err := infer(ctx, name, seqs)
		if err != nil {
			return nil, outcome, fmt.Errorf("dtd: inferring content model of %s: %w", name, err)
		}
		return &Element{Name: name, Type: Children, Model: model}, outcome, nil
	}
}
