package dtd

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// opaqueReader hides the underlying reader's Len, so sizeHint returns -1.
type opaqueReader struct{ r io.Reader }

func (o opaqueReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// sizedReader claims a byte length without holding the bytes, so tests
// can hand shardBounds multi-gigabyte size hints for free. It is never
// actually read.
type sizedReader struct{ n int }

func (s sizedReader) Len() int                   { return s.n }
func (s sizedReader) Read(p []byte) (int, error) { return 0, io.EOF }

// sizedDocs builds one Doc per entry; size >= 0 yields a reader claiming
// exactly that many bytes (sizeHint knows it), size < 0 yields a reader
// without a size hint.
func sizedDocs(sizes []int64) []Doc {
	docs := make([]Doc, len(sizes))
	for i, n := range sizes {
		var r io.Reader
		if n >= 0 {
			r = sizedReader{n: int(n)}
		} else {
			r = opaqueReader{strings.NewReader("<a/>")}
		}
		docs[i] = Doc{Label: fmt.Sprintf("doc-%d", i), R: r}
	}
	return docs
}

// checkBounds asserts the structural shardBounds contract: a monotone
// partition of [0, len(docs)) into shardCount contiguous, non-empty
// shards.
func checkBounds(t *testing.T, bounds []int, nDocs, shardCount int) {
	t.Helper()
	if len(bounds) != shardCount+1 {
		t.Fatalf("len(bounds) = %d, want %d", len(bounds), shardCount+1)
	}
	if bounds[0] != 0 || bounds[shardCount] != nDocs {
		t.Fatalf("bounds = %v, want first 0 and last %d", bounds, nDocs)
	}
	for s := 0; s < shardCount; s++ {
		if bounds[s+1] <= bounds[s] {
			t.Fatalf("shard %d empty or inverted: bounds = %v", s, bounds)
		}
	}
}

// TestShardBoundsSkewedDistributions pins the every-shard-non-empty
// guarantee structurally, across adversarially skewed size
// distributions — all the weight up front, all at the back, giant
// singletons, zeros, unknown sizes and power-law mixes. Any of these
// could tempt the byte-weight cut to exhaust the document list before
// every shard got one.
func TestShardBoundsSkewedDistributions(t *testing.T) {
	cases := map[string][]int64{
		"front-loaded":       {1 << 30, 1, 1, 1, 1, 1, 1, 1},
		"back-loaded":        {1, 1, 1, 1, 1, 1, 1, 1 << 30},
		"giant-middle":       {1, 1, 1, 1 << 30, 1, 1, 1},
		"two-giants-front":   {1 << 30, 1 << 30, 1, 1, 1, 1},
		"all-equal":          {7, 7, 7, 7, 7, 7, 7, 7, 7},
		"all-zero":           {0, 0, 0, 0, 0, 0},
		"all-unknown":        {-1, -1, -1, -1, -1, -1, -1},
		"unknown-then-giant": {-1, -1, -1, 1 << 30, -1, -1},
		"alternating":        {1 << 20, 1, 1 << 20, 1, 1 << 20, 1, 1 << 20, 1},
	}
	rng := rand.New(rand.NewSource(42))
	powerLaw := make([]int64, 64)
	for i := range powerLaw {
		powerLaw[i] = int64(1) << uint(rng.Intn(24))
		if rng.Intn(5) == 0 {
			powerLaw[i] = -1
		}
	}
	cases["power-law"] = powerLaw
	for name, sizes := range cases {
		t.Run(name, func(t *testing.T) {
			for shardCount := 1; shardCount <= len(sizes); shardCount++ {
				bounds := shardBounds(sizedDocs(sizes), shardCount)
				checkBounds(t, bounds, len(sizes), shardCount)
			}
		})
	}
}

// TestShardBoundsRandomized fuzzes the contract over random mixes of
// sizes (including unknowns and zeros) and every legal shard count.
func TestShardBoundsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(40)
		sizes := make([]int64, n)
		for i := range sizes {
			switch rng.Intn(4) {
			case 0:
				sizes[i] = -1
			case 1:
				sizes[i] = 0
			case 2:
				sizes[i] = int64(rng.Intn(100))
			default:
				sizes[i] = int64(1) << uint(rng.Intn(30))
			}
		}
		shardCount := 1 + rng.Intn(n)
		bounds := shardBounds(sizedDocs(sizes), shardCount)
		checkBounds(t, bounds, n, shardCount)
	}
}
