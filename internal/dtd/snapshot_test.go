package dtd

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	snap "dtdinfer/internal/snapshot"
)

// snapshotCorpus is a corpus exercising every serialized observation
// kind: children content with duplicate sequences, text and mixed
// content, attributes (ID-like, enum-like, plain), empty elements and
// multiple roots.
var snapshotCorpus = []string{
	`<db><rec id="a1" kind="x"><name>n1</name><tag/></rec></db>`,
	`<db><rec id="a2" kind="y"><name>n2</name><name>n3</name></rec></db>`,
	`<db><rec id="a3" kind="x"><name>n4</name><tag/></rec><note>mixed <b>bold</b> tail</note></db>`,
	`<alt><rec id="a4" kind="y"><name>n5</name></rec></alt>`,
}

func buildSnapshotExtraction(t *testing.T, decoder DecoderKind) *Extraction {
	t.Helper()
	x := NewExtraction()
	opts := &IngestOptions{Decoder: decoder}
	for _, doc := range snapshotCorpus {
		if err := x.AddDocumentOptions(strings.NewReader(doc), opts); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

func saveSnapshot(t *testing.T, x *Extraction) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := x.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func loadSnapshot(t *testing.T, data []byte) *Extraction {
	t.Helper()
	x, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	return x
}

// TestSnapshotRoundTripIdentical pins the losslessness contract for
// both decoders: the loaded extraction renders identically, infers a
// byte-identical DTD, and re-saves to byte-identical bytes.
func TestSnapshotRoundTripIdentical(t *testing.T) {
	for _, dec := range []DecoderKind{DecoderFast, DecoderStd} {
		t.Run(dec.String(), func(t *testing.T) {
			x := buildSnapshotExtraction(t, dec)
			data := saveSnapshot(t, x)
			loaded := loadSnapshot(t, data)
			if got, want := snapshot(loaded), snapshot(x); got != want {
				t.Fatalf("loaded extraction differs:\n got %s\nwant %s", got, want)
			}
			if got := saveSnapshot(t, loaded); !bytes.Equal(got, data) {
				t.Fatalf("re-save differs: %d bytes vs %d", len(got), len(data))
			}
			want, err := x.InferDTD(testInfer)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.InferDTD(testInfer)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Fatalf("inference over loaded extraction differs:\n got %s\nwant %s", got, want)
			}
			if loaded.Root() != x.Root() {
				t.Fatalf("Root = %q, want %q", loaded.Root(), x.Root())
			}
		})
	}
}

// TestSnapshotSaveDeterministic pins the canonical encoding: saving the
// same extraction twice yields identical bytes, and extractions built
// by the two decoders (whose internal map histories differ) save to
// identical bytes too.
func TestSnapshotSaveDeterministic(t *testing.T) {
	fast := buildSnapshotExtraction(t, DecoderFast)
	std := buildSnapshotExtraction(t, DecoderStd)
	a := saveSnapshot(t, fast)
	if b := saveSnapshot(t, fast); !bytes.Equal(a, b) {
		t.Fatal("two saves of one extraction differ")
	}
	if c := saveSnapshot(t, std); !bytes.Equal(a, c) {
		t.Fatal("fast- and std-decoder extractions save differently")
	}
}

// TestSnapshotDirtyStatePersisted: a never-inferred extraction saves
// its full dirty set; a post-inference save is clean.
func TestSnapshotDirtyStatePersisted(t *testing.T) {
	x := buildSnapshotExtraction(t, DecoderFast)
	dirty := x.DirtyElements()
	if len(dirty) == 0 {
		t.Fatal("fresh extraction has no dirty elements")
	}
	loaded := loadSnapshot(t, saveSnapshot(t, x))
	if got := loaded.DirtyElements(); !equalStrings(got, dirty) {
		t.Fatalf("loaded dirty = %v, want %v", got, dirty)
	}

	cfg := &CacheConfig{Key: "test"}
	var calls atomic.Int64
	if _, _, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls)); err != nil {
		t.Fatal(err)
	}
	clean := loadSnapshot(t, saveSnapshot(t, x))
	if got := clean.DirtyElements(); len(got) != 0 {
		t.Fatalf("post-inference snapshot still dirty: %v", got)
	}
}

// TestSnapshotKeepsInferenceWarm pins the "warm across restarts"
// contract: a snapshot taken after a cached inference pass replays both
// the content models and the <!ATTLIST> declarations on the loaded
// extraction without running any engine.
func TestSnapshotKeepsInferenceWarm(t *testing.T) {
	x := buildSnapshotExtraction(t, DecoderFast)
	cfg := &CacheConfig{Key: "test"}
	var calls atomic.Int64
	want, _, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("cold pass ran no engines")
	}

	loaded := loadSnapshot(t, saveSnapshot(t, x))
	calls.Store(0)
	got, stats, err := loaded.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("post-load pass ran engine %d times, want 0", n)
	}
	if stats.CacheMisses != 0 || stats.CacheRecomputes != 0 {
		t.Errorf("post-load counters: %d misses %d recomputes, want 0/0",
			stats.CacheMisses, stats.CacheRecomputes)
	}
	if !stats.AttListReplayed {
		t.Error("post-load pass recomputed <!ATTLIST> despite warm attribute cache")
	}
	if got.String() != want.String() {
		t.Fatalf("warm post-load DTD differs:\n got %s\nwant %s", got, want)
	}

	// A different engine config must not be served from the persisted
	// entries of another.
	calls.Store(0)
	if _, _, err := loaded.InferDTDElementsCached(context.Background(), &CacheConfig{Key: "other"}, countingInferrer(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Error("foreign config served from persisted cache entries")
	}
}

// TestMergeSummaryShardsEquivalentToSingleIngestion splits the corpus
// into K shards, ingests each into its own extraction, round-trips each
// through snapshot bytes, merges in shard order, and requires the
// result byte-identical — both as a rendered extraction and as re-saved
// snapshot bytes — to ingesting everything sequentially.
func TestMergeSummaryShardsEquivalentToSingleIngestion(t *testing.T) {
	for _, dec := range []DecoderKind{DecoderFast, DecoderStd} {
		t.Run(dec.String(), func(t *testing.T) {
			opts := &IngestOptions{Decoder: dec}
			direct := buildSnapshotExtraction(t, dec)
			directBytes := saveSnapshot(t, direct)
			for k := 1; k <= len(snapshotCorpus); k++ {
				var shards []*Extraction
				for start := 0; start < len(snapshotCorpus); start += k {
					sx := NewExtraction()
					for _, doc := range snapshotCorpus[start:min(start+k, len(snapshotCorpus))] {
						if err := sx.AddDocumentOptions(strings.NewReader(doc), opts); err != nil {
							t.Fatal(err)
						}
					}
					shards = append(shards, loadSnapshot(t, saveSnapshot(t, sx)))
				}
				merged := shards[0]
				for _, sx := range shards[1:] {
					merged.MergeSummary(sx)
				}
				if got, want := snapshot(merged), snapshot(direct); got != want {
					t.Fatalf("shard size %d: merged extraction differs:\n got %s\nwant %s", k, got, want)
				}
				if got := saveSnapshot(t, merged); !bytes.Equal(got, directBytes) {
					t.Fatalf("shard size %d: merged snapshot bytes differ", k)
				}
			}
		})
	}
}

// TestMergeSummaryAdoptsCaches: merging a warmed, snapshot-loaded
// summary into an empty extraction carries the memoized models along,
// so inference over the merge runs no engines.
func TestMergeSummaryAdoptsCaches(t *testing.T) {
	x := buildSnapshotExtraction(t, DecoderFast)
	cfg := &CacheConfig{Key: "test"}
	var calls atomic.Int64
	want, _, err := x.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	loaded := loadSnapshot(t, saveSnapshot(t, x))

	base := NewExtraction()
	base.MergeSummary(loaded)
	calls.Store(0)
	got, stats, err := base.InferDTDElementsCached(context.Background(), cfg, countingInferrer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("inference after cache-adopting merge ran engine %d times, want 0", n)
	}
	if !stats.AttListReplayed {
		t.Error("<!ATTLIST> recomputed after cache-adopting merge")
	}
	if got.String() != want.String() {
		t.Fatalf("DTD after cache-adopting merge differs:\n got %s\nwant %s", got, want)
	}
}

// TestAttListCacheDirtyTracking pins the attribute-fingerprint
// satellite: warm passes replay <!ATTLIST>, attribute-relevant changes
// (new value, presence bump, occurrence-total change of an attributed
// element) invalidate, and attribute-irrelevant ingestion does not.
func TestAttListCacheDirtyTracking(t *testing.T) {
	x := NewExtraction()
	mustAdd(t, x, `<db><rec id="a1" kind="x"/><plain/></db>`)
	mustAdd(t, x, `<db><rec id="a2" kind="y"/></db>`)
	mustAdd(t, x, `<db><rec id="a3" kind="x"/></db>`)
	cfg := &CacheConfig{Key: "test"}
	var calls atomic.Int64
	infer := countingInferrer(&calls)
	ctx := context.Background()

	pass := func() (*DTD, *InferStats) {
		t.Helper()
		d, stats, err := x.InferDTDElementsCached(ctx, cfg, infer)
		if err != nil {
			t.Fatal(err)
		}
		return d, stats
	}

	cold, stats := pass()
	if stats.AttListReplayed {
		t.Fatal("cold pass claims attlist replay")
	}
	if _, stats = pass(); !stats.AttListReplayed {
		t.Fatal("warm pass recomputed attlist")
	}

	// Ingesting attribute-free content (element "plain" and the
	// attribute-less root "db" recur; no attributed element changes)
	// keeps the attlist cache valid.
	mustAdd(t, x, `<db><plain/><plain/></db>`)
	var d *DTD
	if d, stats = pass(); !stats.AttListReplayed {
		t.Fatal("attribute-irrelevant ingestion invalidated the attlist cache")
	}
	if got, want := attsOf(d, "rec"), attsOf(cold, "rec"); got != want {
		t.Fatalf("replayed attlist differs: %q vs %q", got, want)
	}

	// A new occurrence of the attributed element changes its #REQUIRED
	// denominator: must recompute.
	mustAdd(t, x, `<db><rec id="a4" kind="y"/></db>`)
	if _, stats = pass(); stats.AttListReplayed {
		t.Fatal("occurrence-total change did not invalidate the attlist cache")
	}
	if _, stats = pass(); !stats.AttListReplayed {
		t.Fatal("cache not re-warmed after recompute")
	}

	// A new distinct value on a tracked attribute: must recompute and
	// the new declaration must reflect it. (Two occurrences, so the
	// enumeration heuristic's repeat requirement admits the value.)
	mustAdd(t, x, `<db><rec id="a5" kind="z"/><rec id="a6" kind="z"/></db>`)
	d, stats = pass()
	if stats.AttListReplayed {
		t.Fatal("new attribute value did not invalidate the attlist cache")
	}
	if got := attsOf(d, "rec"); !strings.Contains(got, "z") {
		t.Fatalf("recomputed attlist misses new enum value: %q", got)
	}
}

// attsOf renders an element's attribute declarations.
func attsOf(d *DTD, elem string) string {
	e := d.Elements[elem]
	if e == nil {
		return ""
	}
	var b strings.Builder
	for _, a := range e.Attributes {
		b.WriteString(a.String())
		b.WriteByte(';')
	}
	return b.String()
}

// TestSnapshotDecodeRejectsCorruption sweeps structured mutations over
// a valid snapshot: every truncation and every bit flip must fail with
// a clean error (fingerprints and CRC catching what field validation
// does not), never a panic, never silent acceptance.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	x := buildSnapshotExtraction(t, DecoderFast)
	data := saveSnapshot(t, x)
	for n := 0; n < len(data); n++ {
		if _, err := ReadSnapshot(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", n)
		}
	}
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x20
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at %d decoded cleanly", pos)
		}
	}
	if _, err := ReadSnapshot(bytes.NewReader(append(data, 0))); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
}

// TestSnapshotDecodeRejectsForgedStreams hand-crafts streams with valid
// framing but invalid content: wrong version, incompatible caps, a
// fingerprint that does not match the sequences.
func TestSnapshotDecodeRejectsForgedStreams(t *testing.T) {
	forge := func(build func(w *snap.Writer)) []byte {
		var buf bytes.Buffer
		w := snap.NewWriter(&buf, snapMagic, snapVersion)
		build(w)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	badVersion := forge(func(w *snap.Writer) {})
	badVersion[len(snapMagic)] = snapVersion + 1
	if _, err := ReadSnapshot(bytes.NewReader(badVersion)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version: err = %v", err)
	}

	wrongCaps := forge(func(w *snap.Writer) {
		w.Len(maxTextSamples + 1)
		w.Len(maxAttValues)
	})
	if _, err := ReadSnapshot(bytes.NewReader(wrongCaps)); err == nil || !strings.Contains(err.Error(), "maxTextSamples") {
		t.Fatalf("wrong caps: err = %v", err)
	}

	// One element, one sequence over one symbol, but a forged (zeroed)
	// fingerprint: content validation must catch it even though the CRC
	// is valid.
	forgedFp := forge(func(w *snap.Writer) {
		w.Len(maxTextSamples)
		w.Len(maxAttValues)
		w.Len(1) // documents
		w.Len(1) // elements
		w.String("a")
		w.Bool(true) // has sample
		w.Len(1)     // symbols
		w.String("b")
		w.Len(1) // sequences
		w.Len(1) // seq len
		w.Uvarint(0)
		w.Len(1) // count
		w.U64(0) // shape fp: forged
		w.U64(0) // counted fp: forged
		w.Bool(false)
		w.Bool(false)
		w.Len(0) // texts
		w.Len(0) // atts
		w.Len(0) // roots
		w.Len(0) // dirty
		w.Len(0) // model cache
		w.Bool(false)
	})
	if _, err := ReadSnapshot(bytes.NewReader(forgedFp)); err == nil || !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("forged fingerprint: err = %v", err)
	}

	// Same stream with out-of-order element records (b before a).
	outOfOrder := forge(func(w *snap.Writer) {
		w.Len(maxTextSamples)
		w.Len(maxAttValues)
		w.Len(0) // documents
		w.Len(2) // elements
		for _, name := range []string{"b", "a"} {
			w.String(name)
			w.Bool(false)
			w.Bool(false)
			w.Bool(false)
			w.Len(0)
			w.Len(0)
		}
		w.Len(0)
		w.Len(0)
		w.Len(0)
		w.Bool(false)
	})
	if _, err := ReadSnapshot(bytes.NewReader(outOfOrder)); err == nil || !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("out-of-order elements: err = %v", err)
	}
}

// TestSnapshotEmptyExtraction: an empty corpus round-trips too.
func TestSnapshotEmptyExtraction(t *testing.T) {
	x := NewExtraction()
	loaded := loadSnapshot(t, saveSnapshot(t, x))
	if got, want := snapshot(loaded), snapshot(x); got != want {
		t.Fatalf("empty round trip differs: %q vs %q", got, want)
	}
}
