package dtd

import (
	"errors"
	"strings"
	"testing"
)

// refSchema declares an ID attribute and an IDREF attribute so reference
// resolution can be exercised directly.
func refSchema(t *testing.T) *Validator {
	t.Helper()
	d, err := Parse(`<!DOCTYPE db [
<!ELEMENT db (rec|ref)*>
<!ELEMENT rec EMPTY>
<!ELEMENT ref EMPTY>
<!ATTLIST rec id ID #REQUIRED>
<!ATTLIST ref to IDREF #REQUIRED>
]>`)
	if err != nil {
		t.Fatal(err)
	}
	return NewValidator(d)
}

func TestValidatorIDREFResolution(t *testing.T) {
	v := refSchema(t)
	tests := []struct {
		name string
		doc  string
		want string // substring of a violation reason, "" = valid
	}{
		{"resolved", `<db><rec id="a"/><ref to="a"/></db>`, ""},
		{"forward reference", `<db><ref to="a"/><rec id="a"/></db>`, ""},
		{"self and cross", `<db><rec id="a"/><rec id="b"/><ref to="a"/><ref to="b"/></db>`, ""},
		{"dangling", `<db><rec id="a"/><ref to="zzz"/></db>`, `IDREF attribute to value "zzz" does not match any ID`},
		{"no ids at all", `<db><ref to="a"/></db>`, "does not match any ID"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			violations, err := v.Validate(strings.NewReader(tc.doc))
			if err != nil {
				t.Fatal(err)
			}
			if tc.want == "" {
				if len(violations) != 0 {
					t.Errorf("want valid, got %v", violations)
				}
				return
			}
			found := false
			for _, viol := range violations {
				if strings.Contains(viol.Reason, tc.want) {
					found = true
					if viol.Offset <= 0 {
						t.Errorf("dangling IDREF violation carries no offset: %+v", viol)
					}
				}
			}
			if !found {
				t.Errorf("want violation containing %q, got %v", tc.want, violations)
			}
		})
	}
}

func TestValidatorIDREFOffsetPointsAtReference(t *testing.T) {
	v := refSchema(t)
	doc := `<db><rec id="a"/><ref to="gone"/></db>`
	violations, err := v.Validate(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 {
		t.Fatalf("violations = %v", violations)
	}
	// The offset is a byte position (not a line number) at the reference's
	// start tag, which begins at byte 17.
	at := violations[0].Offset
	if at < 17 || at > int64(len(doc)) {
		t.Errorf("offset = %d, want within the <ref> tag of %q", at, doc)
	}
}

func TestValidateOptionsLimits(t *testing.T) {
	d := MustParse(`<!ELEMENT d (d?)>`)
	v := NewValidator(d)
	deep := strings.Repeat("<d>", 5000) + strings.Repeat("</d>", 5000)
	_, err := v.ValidateOptions(strings.NewReader(deep), &IngestOptions{MaxDepth: 100})
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "depth" {
		t.Fatalf("want depth LimitError, got %v", err)
	}
	if _, err := v.ValidateOptions(strings.NewReader(deep), &IngestOptions{MaxBytes: 64}); !errors.Is(err, ErrLimit) {
		t.Fatalf("want byte LimitError, got %v", err)
	}
	if _, err := v.ValidateOptions(strings.NewReader(deep), &IngestOptions{MaxTokens: 10}); !errors.Is(err, ErrLimit) {
		t.Fatalf("want token LimitError, got %v", err)
	}
	// Within caps the document validates normally.
	violations, err := v.ValidateOptions(strings.NewReader("<d><d/></d>"), DefaultIngestOptions())
	if err != nil || len(violations) != 0 {
		t.Fatalf("capped validation of a valid document: %v %v", err, violations)
	}
}
