package dtd

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse exercises the DTD parser; run with -fuzz=FuzzParse. As a unit
// test it replays the seeds. Invariants: no panic; a successfully parsed
// DTD serializes and re-parses to an equal DTD.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`<!DOCTYPE r [<!ELEMENT r (a,b?)> <!ELEMENT a EMPTY> <!ELEMENT b (#PCDATA)>]>`,
		`<!ELEMENT p (#PCDATA|b|i)*>`,
		`<!ELEMENT a ANY><!ATTLIST a x CDATA #REQUIRED y (u|v) "u">`,
		`<!ELEMENT z (q{2,4},w*)>`,
		`<!ELEMENT`,
		`<!ATTLIST a`,
		`<!DOCTYPE [`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(input)
		if err != nil {
			return
		}
		d2, err := Parse(d.String())
		if err != nil {
			t.Fatalf("serialized DTD does not re-parse: %v\nfrom input %q\n%s", err, input, d)
		}
		if !d.Equal(d2) {
			t.Fatalf("round trip changed the DTD for %q:\n%s\nvs\n%s", input, d, d2)
		}
	})
}

// FuzzExtraction feeds arbitrary bytes to the XML extraction; it must
// never panic, and on success the sequences must be consistent.
func FuzzExtraction(f *testing.F) {
	f.Add(`<a><b/><b>t</b></a>`)
	f.Add(`<a>`)
	f.Add(`not xml at all`)
	f.Add(`<a xmlns:x="u"><x:b/></a>`)
	f.Fuzz(func(t *testing.T, input string) {
		x := NewExtraction()
		if err := x.AddDocument(strings.NewReader(input)); err != nil {
			return
		}
		for name, seqs := range x.Sequences {
			if name == "" {
				t.Fatal("empty element name recorded")
			}
			_ = seqs
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder; run
// with -fuzz=FuzzSnapshotDecode. Invariants: no panic on any input, and
// any stream that decodes cleanly re-encodes (the decoder's canonical-
// order enforcement makes decode∘encode well-defined) and round-trips
// through a second decode.
func FuzzSnapshotDecode(f *testing.F) {
	valid := func(docs ...string) []byte {
		x := NewExtraction()
		for _, doc := range docs {
			if err := x.AddDocument(strings.NewReader(doc)); err != nil {
				f.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := x.WriteSnapshot(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	empty := valid()
	full := valid(
		`<db><rec id="a1" kind="x"><name>n1</name><tag/></rec></db>`,
		`<db><rec id="a2" kind="y"><name>n2</name></rec><note>t <b>b</b></note></db>`,
	)
	f.Add(empty)
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add([]byte("DTDS"))
	f.Add([]byte("DTDS\x01"))
	f.Add([]byte{})
	f.Add([]byte("not a snapshot at all, just bytes"))
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := x.WriteSnapshot(&buf); err != nil {
			t.Fatalf("accepted stream does not re-encode: %v", err)
		}
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-encoded stream does not decode: %v", err)
		}
	})
}
