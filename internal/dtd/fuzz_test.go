package dtd

import (
	"strings"
	"testing"
)

// FuzzParse exercises the DTD parser; run with -fuzz=FuzzParse. As a unit
// test it replays the seeds. Invariants: no panic; a successfully parsed
// DTD serializes and re-parses to an equal DTD.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`<!DOCTYPE r [<!ELEMENT r (a,b?)> <!ELEMENT a EMPTY> <!ELEMENT b (#PCDATA)>]>`,
		`<!ELEMENT p (#PCDATA|b|i)*>`,
		`<!ELEMENT a ANY><!ATTLIST a x CDATA #REQUIRED y (u|v) "u">`,
		`<!ELEMENT z (q{2,4},w*)>`,
		`<!ELEMENT`,
		`<!ATTLIST a`,
		`<!DOCTYPE [`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(input)
		if err != nil {
			return
		}
		d2, err := Parse(d.String())
		if err != nil {
			t.Fatalf("serialized DTD does not re-parse: %v\nfrom input %q\n%s", err, input, d)
		}
		if !d.Equal(d2) {
			t.Fatalf("round trip changed the DTD for %q:\n%s\nvs\n%s", input, d, d2)
		}
	})
}

// FuzzExtraction feeds arbitrary bytes to the XML extraction; it must
// never panic, and on success the sequences must be consistent.
func FuzzExtraction(f *testing.F) {
	f.Add(`<a><b/><b>t</b></a>`)
	f.Add(`<a>`)
	f.Add(`not xml at all`)
	f.Add(`<a xmlns:x="u"><x:b/></a>`)
	f.Fuzz(func(t *testing.T, input string) {
		x := NewExtraction()
		if err := x.AddDocument(strings.NewReader(input)); err != nil {
			return
		}
		for name, seqs := range x.Sequences {
			if name == "" {
				t.Fatal("empty element name recorded")
			}
			_ = seqs
		}
	})
}
