package dtd

import (
	"context"
	"strings"
	"testing"
)

// Differential testing of the two decoder paths: the fast structure
// tokenizer (internal/xmltok) must accept exactly the documents
// encoding/xml accepts and produce byte-identical extraction state on
// every accepted one. decoderEquivCorpus collects the structures the
// extraction layer cares about plus the XML corners where the two
// decoders could plausibly diverge.
var decoderEquivCorpus = []string{
	// Plain structure.
	`<a/>`,
	`<a></a>`,
	`<db><rec id="a1" kind="x"><name>n1</name></rec></db>`,
	`<r><a/><b/><a/><a/><b/></r>`,
	`<a><b><c><d/></c></b><b/></a>`,
	// Multiple roots (encoding/xml accepts them) and top-level text.
	`<a/><b/>`,
	` <a/> `,
	`<?xml version="1.0"?><!DOCTYPE r><r/>`,
	// Attributes: duplicates, entities, character references, newlines.
	`<a x="1" y="2"/>`,
	`<a x="1" x="2" x="1"/>`,
	`<a x="&lt;&amp;&gt;&quot;&apos;"/>`,
	`<a x="&#65;&#x42;"/>`,
	`<a x="line1&#10;line2"/>`,
	`<a x="tab&#9;end"/>`,
	"<a x='single &quot; quote'/>",
	`<e a="">text</e>`,
	// Namespace filtering: xmlns declarations are dropped, including the
	// corner where a prefix is bound to the literal value "xmlns".
	`<a xmlns="u" b="1"/>`,
	`<a xmlns:x="u" x:y="1" y="2"/>`,
	`<r xmlns:z="xmlns"><c z:a="1"/></r>`,
	`<r xmlns:z="xmlns"><c xmlns:z="u" z:a="1"/><d z:b="2"/></r>`,
	`<r><c xmlns:z="xmlns" z:a="1" b="2"/><d z:c="3"/></r>`,
	`<r xmlns:z="xmlns"><c xmlns:z="" z:a="1"/></r>`,
	`<a xml:lang="en" q:w="1"/>`,
	`<a xmlns:xml2="xmlns" xml2:x="1"/>`,
	// Prefixed element names record their local part.
	`<x:a xmlns:x="u"><x:b/><y:c/></x:a>`,
	// Text: entities, char refs, CDATA, whitespace trimming, \r\n
	// normalization, mixed content.
	`<a>plain</a>`,
	`<a>  padded  </a>`,
	"<a>\n\t\n</a>",
	`<a>one &amp; two &lt;three&gt;</a>`,
	`<a>&#x48;&#101;llo</a>`,
	"<a>line1\r\nline2\rline3</a>",
	`<a><![CDATA[<not><parsed> &amp; raw]]></a>`,
	`<a>before<![CDATA[ ]]>after</a>`,
	`<a><![CDATA[]]></a>`,
	`<a>t1<b/>t2<b/>t3</a>`,
	`<a>&#xD;</a>`,
	// Comments, PIs, DOCTYPE internal subsets.
	`<!--c--><a/><!--d-->`,
	`<a><!-- inside --><b/></a>`,
	`<!----><a/>`,
	`<?pi data?><a/>`,
	`<a><?target one two?></a>`,
	`<!DOCTYPE r [<!ELEMENT r (a)> <!-- c --> <!ENTITY e "v">]><r><a/></r>`,
	`<!DOCTYPE r [ <!ATTLIST r x CDATA "a>b"> ]><r/>`,
	// UTF-8 multibyte names and values.
	`<日本語><子 属="値"/></日本語>`,
	`<résumé naïve="café">Ü</résumé>`,
	`<a·b/>`,
	// Deep and wide structures.
	strings.Repeat("<d>", 60) + "x" + strings.Repeat("</d>", 60),
	`<r>` + strings.Repeat(`<leaf v="1"/>`, 40) + `</r>`,
	// Rejected inputs: both decoders must turn these away.
	``,
	`not xml`,
	`<a>`,
	`<a><b></a></b>`,
	`<a attr=noquote/>`,
	`<a><b/>`,
	`<a>&undefined;</a>`,
	`<a>&#xD800;</a>`,
	`<a>&#x110000;</a>`,
	`<a x="unterminated/>`,
	`<1a/>`,
	`<a:b:c/>`,
	`<a>]]></a>`,
	`<a/><`,
	"<a>\xff\xfe</a>",
	`<?xml version="2.0"?><a/>`,
	`<a x="<"/>`,
}

// ingestWith runs one document through the chosen decoder into a fresh
// extraction, returning the extraction, the decode stats and the error.
func ingestWith(t *testing.T, doc string, opts *IngestOptions) (*Extraction, docStats, error) {
	t.Helper()
	x := NewExtraction()
	stats, err := newIngester(opts).ingestOne(context.Background(), strings.NewReader(doc), opts, x)
	return x, stats, err
}

// checkDecoderEquivalence asserts the two decoders agree on one document
// under the given caps: identical acceptance, and on acceptance identical
// extraction state and identical token/element counts.
func checkDecoderEquivalence(t *testing.T, doc string, caps IngestOptions) {
	t.Helper()
	fastOpts, stdOpts := caps, caps
	fastOpts.Decoder = DecoderFast
	stdOpts.Decoder = DecoderStd
	xf, sf, errF := ingestWith(t, doc, &fastOpts)
	xs, ss, errS := ingestWith(t, doc, &stdOpts)
	if (errF == nil) != (errS == nil) {
		t.Fatalf("acceptance differs for %q:\nfast: %v\nstd:  %v", doc, errF, errS)
	}
	if errF != nil {
		return
	}
	if got, want := snapshot(xf), snapshot(xs); got != want {
		t.Fatalf("extraction state differs for %q:\nfast:\n%s\nstd:\n%s", doc, got, want)
	}
	if sf.tokens != ss.tokens || sf.elements != ss.elements || sf.bytes != ss.bytes {
		t.Fatalf("decode stats differ for %q: fast=%+v std=%+v", doc, sf, ss)
	}
}

func TestFastDecoderEquivalence(t *testing.T) {
	for _, doc := range decoderEquivCorpus {
		checkDecoderEquivalence(t, doc, IngestOptions{})
		checkDecoderEquivalence(t, doc, *DefaultIngestOptions())
		checkDecoderEquivalence(t, doc, IngestOptions{MaxDepth: 20, MaxTokens: 64, MaxNames: 8, MaxBytes: 1 << 10})
	}
}

// TestFastDecoderBatchEquivalence ingests the whole corpus as one batch
// per decoder, exercising the fast path's cross-document staging reuse
// (epoch resets, leftover state from rejected documents) that single-
// document runs cannot reach.
func TestFastDecoderBatchEquivalence(t *testing.T) {
	batch := func(d DecoderKind) (*Extraction, *IngestReport) {
		x := NewExtraction()
		docs := make([]Doc, len(decoderEquivCorpus))
		for i, s := range decoderEquivCorpus {
			docs[i] = Doc{Label: "doc", R: strings.NewReader(s)}
		}
		report, err := x.AddDocs(docs, &IngestOptions{Decoder: d}, SkipAndRecord)
		if err != nil {
			t.Fatal(err)
		}
		return x, report
	}
	xf, rf := batch(DecoderFast)
	xs, rs := batch(DecoderStd)
	if rf.Accepted != rs.Accepted || rf.Rejected != rs.Rejected {
		t.Fatalf("batch acceptance differs: fast %d/%d, std %d/%d",
			rf.Accepted, rf.Rejected, rs.Accepted, rs.Rejected)
	}
	if rf.Tokens != rs.Tokens || rf.Elements != rs.Elements {
		t.Fatalf("batch counters differ: fast tokens=%d elements=%d, std tokens=%d elements=%d",
			rf.Tokens, rf.Elements, rs.Tokens, rs.Elements)
	}
	if got, want := snapshot(xf), snapshot(xs); got != want {
		t.Fatalf("batch extraction state differs:\nfast:\n%s\nstd:\n%s", got, want)
	}
}

// FuzzTokenizerEquivalence feeds the same bytes through the fast
// tokenizer path and the encoding/xml path and requires identical
// acceptance and, on acceptance, identical extraction state — both
// uncapped and under tight resource caps. Run with
// -fuzz=FuzzTokenizerEquivalence; as a unit test it replays the seeds.
func FuzzTokenizerEquivalence(f *testing.F) {
	for _, seed := range decoderEquivCorpus {
		f.Add(seed)
	}
	caps := IngestOptions{MaxDepth: 40, MaxTokens: 4096, MaxNames: 64, MaxBytes: 1 << 16}
	f.Fuzz(func(t *testing.T, input string) {
		checkDecoderEquivalence(t, input, IngestOptions{})
		checkDecoderEquivalence(t, input, caps)
	})
}
