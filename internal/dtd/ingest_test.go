package dtd

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"testing"

	"dtdinfer/internal/gfa"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/soa"
)

// snapshot renders every observable field of an extraction
// deterministically, so tests can assert byte-for-byte equivalence.
func snapshot(x *Extraction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "documents=%d\n", x.Documents)
	names := make([]string, 0, len(x.Sequences))
	for n := range x.Sequences {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "seq %s:", n)
		s := x.Sequences[n]
		for i := 0; i < s.Unique(); i++ {
			fmt.Fprintf(&b, " [%s]x%d", strings.Join(s.SeqStrings(i), ","), s.Count(i))
		}
		b.WriteByte('\n')
	}
	names = names[:0]
	for n := range x.HasText {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "text %s=%v\n", n, x.HasText[n])
	}
	names = names[:0]
	for n := range x.TextSamples {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "samples %s=%q\n", n, x.TextSamples[n])
	}
	names = names[:0]
	for n := range x.TextOverflow {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "textoverflow %s=%v\n", n, x.TextOverflow[n])
	}
	names = names[:0]
	for n := range x.Attributes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		atts := make([]string, 0, len(x.Attributes[n]))
		for a := range x.Attributes[n] {
			atts = append(atts, a)
		}
		sort.Strings(atts)
		for _, a := range atts {
			st := x.Attributes[n][a]
			vals := make([]string, 0, len(st.values))
			for v := range st.values {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			fmt.Fprintf(&b, "att %s.%s present=%d overflow=%v", n, a, st.present, st.overflow)
			for _, v := range vals {
				fmt.Fprintf(&b, " %s=%d", v, st.values[v])
			}
			b.WriteByte('\n')
		}
	}
	names = names[:0]
	for n := range x.Roots {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "root %s=%d\n", n, x.Roots[n])
	}
	return b.String()
}

func testInfer(sample [][]string) (*regex.Expr, error) {
	return gfa.Rewrite(soa.Infer(sample))
}

const goodDoc1 = `<db><rec id="a1" kind="x"><name>n1</name></rec></db>`
const goodDoc2 = `<db><rec id="a2" kind="y"><name>n2</name><name>n3</name></rec></db>`

// badDoc breaks after several well-formed elements: the partial-mutation
// regression case from the issue.
const badDoc = `<db><rec id="a3" kind="z"><name>nX</name></rec><rec id="a4"><oops></db>`

func TestAddDocumentAtomicOnParseError(t *testing.T) {
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(goodDoc1)); err != nil {
		t.Fatal(err)
	}
	before := snapshot(x)
	if err := x.AddDocument(strings.NewReader(badDoc)); err == nil {
		t.Fatal("malformed document must fail")
	}
	if after := snapshot(x); after != before {
		t.Errorf("failed AddDocument mutated the extraction:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// The accumulator still works after the failure.
	if err := x.AddDocument(strings.NewReader(goodDoc2)); err != nil {
		t.Fatal(err)
	}
	if x.Documents != 2 || x.Sequences["rec"].Total() != 2 {
		t.Errorf("post-failure ingestion broken: %d docs, rec=%v", x.Documents, x.Sequences["rec"].Strings())
	}
}

func TestAddDocumentAtomicOnUnbalanced(t *testing.T) {
	// Truncated input: every element well-formed so far, then EOF with open
	// tags. The decoder reports no token error, only the unbalanced check.
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(goodDoc1)); err != nil {
		t.Fatal(err)
	}
	before := snapshot(x)
	truncated := `<db><rec id="t1" kind="x"><name>n</name>`
	if err := x.AddDocument(strings.NewReader(truncated)); err == nil {
		t.Fatal("truncated document must fail")
	}
	if after := snapshot(x); after != before {
		t.Errorf("truncated document mutated the extraction:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestAddDocumentAtomicOnLimit(t *testing.T) {
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(goodDoc1)); err != nil {
		t.Fatal(err)
	}
	before := snapshot(x)
	deep := strings.Repeat("<d>", 50) + strings.Repeat("</d>", 50)
	err := x.AddDocumentOptions(strings.NewReader(deep), &IngestOptions{MaxDepth: 10})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit, got %v", err)
	}
	if after := snapshot(x); after != before {
		t.Errorf("limit violation mutated the extraction")
	}
}

func deepDoc(depth int) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	return b.String()
}

func TestIngestLimits(t *testing.T) {
	wide := `<r><a/><b/><c/><d/><e/></r>`
	tests := []struct {
		name  string
		doc   string
		opts  IngestOptions
		limit string // expected LimitError.Limit, "" = accepted
	}{
		{"no limits", deepDoc(100), IngestOptions{}, ""},
		{"depth under cap", deepDoc(100), IngestOptions{MaxDepth: 100}, ""},
		{"depth over cap", deepDoc(101), IngestOptions{MaxDepth: 100}, "depth"},
		{"billion-laughs-style nesting", deepDoc(200_000), IngestOptions{MaxDepth: 1_000}, "depth"},
		{"tokens over cap", wide, IngestOptions{MaxTokens: 5}, "tokens"},
		{"tokens under cap", wide, IngestOptions{MaxTokens: 1_000}, ""},
		{"names over cap", wide, IngestOptions{MaxNames: 3}, "names"},
		{"names under cap", wide, IngestOptions{MaxNames: 6}, ""},
		{"bytes over cap", wide, IngestOptions{MaxBytes: 10}, "bytes"},
		{"bytes under cap", wide, IngestOptions{MaxBytes: 1 << 20}, ""},
		{"defaults accept sane documents", wide, *DefaultIngestOptions(), ""},
	}
	for _, tc := range tests {
		// The cap/XML-bomb corpus must hold under both decoders.
		for _, decoder := range []DecoderKind{DecoderFast, DecoderStd} {
			opts := tc.opts
			opts.Decoder = decoder
			t.Run(tc.name+"/"+decoder.String(), func(t *testing.T) {
				x := NewExtraction()
				err := x.AddDocumentOptions(strings.NewReader(tc.doc), &opts)
				if tc.limit == "" {
					if err != nil {
						t.Fatalf("want accept, got %v", err)
					}
					return
				}
				var le *LimitError
				if !errors.As(err, &le) {
					t.Fatalf("want *LimitError, got %v", err)
				}
				if le.Limit != tc.limit {
					t.Errorf("limit = %q, want %q (err: %v)", le.Limit, tc.limit, le)
				}
				if !errors.Is(err, ErrLimit) {
					t.Error("limit errors must match ErrLimit")
				}
				if !strings.Contains(le.Error(), tc.limit) {
					t.Errorf("error %q does not name the violated cap", le)
				}
				if x.Documents != 0 || len(x.Sequences) != 0 {
					t.Error("rejected document leaked state into the extraction")
				}
			})
		}
	}
}

func TestAddDocumentsSkipAndRecord(t *testing.T) {
	clean := NewExtraction()
	if _, err := clean.AddDocuments(readers(goodDoc1, goodDoc2), nil, FailFast); err != nil {
		t.Fatal(err)
	}
	wantDTD, err := clean.InferDTD(testInfer)
	if err != nil {
		t.Fatal(err)
	}

	x := NewExtraction()
	report, err := x.AddDocuments(readers(goodDoc1, badDoc, goodDoc2), nil, SkipAndRecord)
	if err != nil {
		t.Fatalf("skip-and-record must not return an error, got %v", err)
	}
	if report.Documents != 3 || report.Accepted != 2 || report.Rejected != 1 {
		t.Errorf("report counters = %+v", report)
	}
	if len(report.Errors) != 1 {
		t.Fatalf("want exactly one per-document error, got %v", report.Errors)
	}
	if e := report.Errors[0]; e.Index != 1 || e.Label != "document 1" || e.Err == nil {
		t.Errorf("error = %+v", e)
	}
	if report.Err() == nil {
		t.Error("Err() must surface the recorded failure")
	}
	if snapshot(x) != snapshot(clean) {
		t.Errorf("skip policy left different state than the clean batch:\n%s\nvs\n%s",
			snapshot(x), snapshot(clean))
	}
	got, err := x.InferDTD(testInfer)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantDTD) {
		t.Errorf("DTD with skipped document differs:\n%s\nvs\n%s", got, wantDTD)
	}
	if !strings.Contains(report.String(), "2/3") {
		t.Errorf("report summary unexpected: %s", report)
	}
}

func TestAddDocumentsFailFast(t *testing.T) {
	x := NewExtraction()
	report, err := x.AddDocuments(readers(goodDoc1, badDoc, goodDoc2), nil, FailFast)
	if err == nil {
		t.Fatal("fail-fast must surface the error")
	}
	var de *DocumentError
	if !errors.As(err, &de) || de.Index != 1 {
		t.Errorf("error = %v, want DocumentError at index 1", err)
	}
	// Documents before the failure are committed; the batch stops there.
	if report.Documents != 2 || report.Accepted != 1 || report.Rejected != 1 {
		t.Errorf("report = %+v", report)
	}
	if x.Documents != 1 {
		t.Errorf("committed documents = %d, want 1", x.Documents)
	}
}

func TestAddDocsLabels(t *testing.T) {
	x := NewExtraction()
	docs := []Doc{
		{Label: "good.xml", R: strings.NewReader(goodDoc1)},
		{Label: "bad.xml", R: strings.NewReader(badDoc)},
	}
	report, _ := x.AddDocs(docs, nil, SkipAndRecord)
	if len(report.Errors) != 1 || report.Errors[0].Label != "bad.xml" {
		t.Errorf("errors = %v", report.Errors)
	}
	if !strings.Contains(report.Errors[0].Error(), "bad.xml") {
		t.Errorf("error string misses label: %v", report.Errors[0])
	}
}

func TestIngestReportCounters(t *testing.T) {
	x := NewExtraction()
	report, err := x.AddDocuments(readers(goodDoc1), nil, FailFast)
	if err != nil {
		t.Fatal(err)
	}
	if report.Bytes != int64(len(goodDoc1)) {
		t.Errorf("bytes = %d, want %d", report.Bytes, len(goodDoc1))
	}
	// goodDoc1 has 3 start elements: db, rec, name.
	if report.Elements != 3 {
		t.Errorf("elements = %d, want 3", report.Elements)
	}
	if report.Tokens < report.Elements*2 {
		t.Errorf("tokens = %d, implausibly low", report.Tokens)
	}
}

func TestMergeEquivalentToDirectIngest(t *testing.T) {
	direct := NewExtraction()
	for _, d := range []string{goodDoc1, goodDoc2, sampleDoc} {
		if err := direct.AddDocument(strings.NewReader(d)); err != nil {
			t.Fatal(err)
		}
	}
	a, b := NewExtraction(), NewExtraction()
	if err := a.AddDocument(strings.NewReader(goodDoc1)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocument(strings.NewReader(goodDoc2)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocument(strings.NewReader(sampleDoc)); err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	if snapshot(a) != snapshot(direct) {
		t.Errorf("merge differs from direct ingestion:\n%s\nvs\n%s", snapshot(a), snapshot(direct))
	}
}

func TestMergeRespectsTextSampleCap(t *testing.T) {
	a, b := NewExtraction(), NewExtraction()
	for i := 0; i < maxTextSamples; i++ {
		a.TextSamples["e"] = append(a.TextSamples["e"], "a")
		b.TextSamples["e"] = append(b.TextSamples["e"], "b")
	}
	a.Merge(b)
	if len(a.TextSamples["e"]) != maxTextSamples {
		t.Errorf("samples = %d, want cap %d", len(a.TextSamples["e"]), maxTextSamples)
	}
}

func TestInferDTDStats(t *testing.T) {
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(sampleDoc)); err != nil {
		t.Fatal(err)
	}
	d, stats, err := x.InferDTDStats(testInfer)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || stats == nil {
		t.Fatal("want DTD and stats")
	}
	if len(stats.PerElement) != len(x.Sequences) {
		t.Errorf("timings for %d elements, want %d", len(stats.PerElement), len(x.Sequences))
	}
	byName := map[string]ElementTiming{}
	for _, et := range stats.PerElement {
		byName[et.Name] = et
	}
	if et, ok := byName["entry"]; !ok || et.Sequences != 2 {
		t.Errorf("entry timing = %+v", et)
	}
	if !strings.Contains(stats.String(), "entry") {
		t.Errorf("stats rendering misses elements:\n%s", stats)
	}
}

// TestInferDTDConcurrentReuse exercises the worker pool under the race
// detector: concurrent inference over one shared (read-only) extraction
// must be safe, since callers cache extractions across requests.
func TestInferDTDConcurrentReuse(t *testing.T) {
	x := NewExtraction()
	for _, d := range []string{goodDoc1, goodDoc2, sampleDoc} {
		if err := x.AddDocument(strings.NewReader(d)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	dtds := make([]*DTD, 8)
	for i := range dtds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := x.InferDTD(testInfer)
			if err != nil {
				t.Errorf("concurrent InferDTD: %v", err)
				return
			}
			dtds[i] = d
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(dtds); i++ {
		if dtds[i] == nil || dtds[0] == nil {
			t.Fatal("missing result")
		}
		if !dtds[i].Equal(dtds[0]) {
			t.Errorf("inference is not deterministic under concurrency:\n%s\nvs\n%s", dtds[i], dtds[0])
		}
	}
}

func readers(docs ...string) []io.Reader {
	out := make([]io.Reader, len(docs))
	for i, d := range docs {
		out[i] = strings.NewReader(d)
	}
	return out
}
