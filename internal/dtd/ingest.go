package dtd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// Ingestion hardening: real-world corpora are large and messy, so the
// extraction layer must survive truncated, malformed and adversarial
// documents without corrupting accumulated state or exhausting memory.
// This file provides the resource caps (IngestOptions), the per-document
// fault-isolation policies (ErrorPolicy), the batch API (AddDocuments)
// with its metrics report (IngestReport), and the Merge primitive that
// makes every AddDocument failure-atomic: documents are staged into a
// fresh Extraction and committed only on success.

// IngestOptions caps the resources one document may consume during
// extraction, defending against XML bombs (deeply nested or enormous
// inputs). The zero value (or a nil pointer) applies no limits; use
// DefaultIngestOptions for production-safe caps. A violated cap aborts
// the document with a *LimitError and, by failure-atomicity, leaves the
// accumulator untouched.
type IngestOptions struct {
	// MaxDepth caps element nesting depth (0 = unlimited).
	MaxDepth int
	// MaxTokens caps the number of XML tokens per document (0 = unlimited).
	MaxTokens int64
	// MaxNames caps the number of distinct element names per document
	// (0 = unlimited), bounding accumulator growth on adversarial inputs.
	MaxNames int
	// MaxBytes caps the bytes read from one document (0 = unlimited).
	MaxBytes int64
	// Decoder selects the XML decoder driving extraction. The zero value
	// (DecoderFast) is the structure-only tokenizer; DecoderStd selects
	// the encoding/xml path kept as fallback and differential oracle.
	Decoder DecoderKind
}

// DecoderKind selects which XML decoder extraction runs on.
type DecoderKind int

const (
	// DecoderFast is the purpose-built zero-copy structure tokenizer
	// (internal/xmltok) — the default.
	DecoderFast DecoderKind = iota
	// DecoderStd is the encoding/xml decoder, retained as a selectable
	// fallback and as the differential-testing oracle.
	DecoderStd
)

func (d DecoderKind) String() string {
	switch d {
	case DecoderFast:
		return "fast"
	case DecoderStd:
		return "std"
	}
	return fmt.Sprintf("DecoderKind(%d)", int(d))
}

// ParseDecoder parses a -decoder flag value ("fast" or "std").
func ParseDecoder(s string) (DecoderKind, error) {
	switch s {
	case "fast":
		return DecoderFast, nil
	case "std":
		return DecoderStd, nil
	}
	return 0, fmt.Errorf("dtd: unknown decoder %q (want fast or std)", s)
}

// DefaultIngestOptions returns caps suitable for untrusted inputs:
// generous enough for any sane document, small enough that a decoding
// bomb is rejected long before memory pressure.
func DefaultIngestOptions() *IngestOptions {
	return &IngestOptions{
		MaxDepth:  10_000,
		MaxTokens: 50_000_000,
		MaxNames:  100_000,
		MaxBytes:  1 << 30, // 1 GiB
	}
}

// ErrLimit matches (with errors.Is) every cap violation.
var ErrLimit = errors.New("dtd: ingestion limit exceeded")

// LimitError reports which IngestOptions cap a document violated.
type LimitError struct {
	// Limit names the violated cap: "depth", "tokens", "names" or "bytes".
	Limit string
	// Max is the configured cap.
	Max int64
	// Offset is the byte position in the input where the cap was hit.
	Offset int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("dtd: input exceeds %s limit %d at offset %d", e.Limit, e.Max, e.Offset)
}

// Is makes errors.Is(err, ErrLimit) true for every cap violation.
func (e *LimitError) Is(target error) bool { return target == ErrLimit }

// meteredReader counts bytes and fails the stream once max is exceeded.
type meteredReader struct {
	r   io.Reader
	n   int64
	max int64 // 0 = unlimited
}

func (m *meteredReader) Read(p []byte) (int, error) {
	n, err := m.r.Read(p)
	m.n += int64(n)
	if m.max > 0 && m.n > m.max {
		return n, &LimitError{Limit: "bytes", Max: m.max, Offset: m.n}
	}
	return n, err
}

// MeterReader wraps r so that reading more than max bytes fails the
// stream with a *LimitError (max <= 0 reads without limit). Exported for
// sibling packages that run their own decode loops under the same caps.
func MeterReader(r io.Reader, max int64) io.Reader {
	return &meteredReader{r: r, max: max}
}

// ErrorPolicy selects how a batch reacts to a failing document.
type ErrorPolicy int

const (
	// FailFast aborts the batch at the first failing document. Documents
	// before it stay committed; the failing one is rolled back.
	FailFast ErrorPolicy = iota
	// SkipAndRecord rolls back each failing document, records it in the
	// IngestReport, and continues with the rest of the batch.
	SkipAndRecord
)

func (p ErrorPolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case SkipAndRecord:
		return "skip-and-record"
	}
	return fmt.Sprintf("ErrorPolicy(%d)", int(p))
}

// DocumentError is one document's ingestion failure.
type DocumentError struct {
	// Index is the document's position in the batch.
	Index int
	// Label identifies the document (a file name, or "document N").
	Label string
	// Err is the underlying parse or limit error.
	Err error
}

func (e *DocumentError) Error() string { return fmt.Sprintf("%s: %v", e.Label, e.Err) }

func (e *DocumentError) Unwrap() error { return e.Err }

// IngestReport aggregates counters and per-document errors from a batch.
type IngestReport struct {
	// Documents counts documents attempted.
	Documents int
	// Accepted counts documents committed into the extraction.
	Accepted int
	// Rejected counts documents rolled back.
	Rejected int
	// Bytes counts input bytes consumed (including rejected documents, up
	// to their point of failure).
	Bytes int64
	// Tokens counts XML tokens decoded from accepted documents.
	Tokens int64
	// Elements counts start-element tokens in accepted documents.
	Elements int64
	// TextOverflows counts elements whose text samples were truncated at
	// the per-element cap — entries in Extraction.TextOverflow after the
	// batch, mirroring the attribute statistics' overflow flag.
	TextOverflows int
	// Errors lists one entry per rejected document.
	Errors []*DocumentError
	// Pipeline carries the streaming-ingestion stage timings when the
	// batch ran on the pipelined parallel path (nil otherwise). The
	// durations are wall-clock measurements — everything else in the
	// report stays deterministic for a given batch.
	Pipeline *PipelineStats
}

// add accumulates another report's counters and errors into r, used when
// concatenating per-shard reports in shard order. TextOverflows is not
// additive (it is a property of the merged extraction, not of a shard)
// and is set by the batch APIs after commit.
func (r *IngestReport) add(o *IngestReport) {
	r.Documents += o.Documents
	r.Accepted += o.Accepted
	r.Rejected += o.Rejected
	r.Bytes += o.Bytes
	r.Tokens += o.Tokens
	r.Elements += o.Elements
	r.Errors = append(r.Errors, o.Errors...)
}

// Err returns the first per-document error (nil when all were accepted).
func (r *IngestReport) Err() error {
	if len(r.Errors) == 0 {
		return nil
	}
	return r.Errors[0]
}

// String renders a short human-readable summary plus one line per error.
func (r *IngestReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ingested %d/%d documents (%d rejected), %d bytes, %d tokens, %d elements",
		r.Accepted, r.Documents, r.Rejected, r.Bytes, r.Tokens, r.Elements)
	if r.TextOverflows > 0 {
		fmt.Fprintf(&b, ", %d elements with truncated text samples", r.TextOverflows)
	}
	if p := r.Pipeline; p != nil {
		fmt.Fprintf(&b, "\n  pipeline: %d workers x %d shards in %d flush units (%d arenas reused), wall %v",
			p.Workers, p.Shards, p.FlushUnits, p.ArenaReuses, p.Wall.Round(time.Microsecond))
		fmt.Fprintf(&b, "\n  workers: decode %v, flush-wait %v; committer: commit %v, idle %v",
			p.Decode.Round(time.Microsecond), p.FlushWait.Round(time.Microsecond),
			p.Commit.Round(time.Microsecond), p.CommitterIdle.Round(time.Microsecond))
		if p.FinalMerge > 0 {
			fmt.Fprintf(&b, ", final merge %v", p.FinalMerge.Round(time.Microsecond))
		}
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "\n  %v", e)
	}
	return b.String()
}

// Doc pairs a reader with a label for error reporting.
type Doc struct {
	Label string
	R     io.Reader
}

// AddDocumentOptions parses one XML document under the given resource
// caps and accumulates its observations. The operation is failure-atomic:
// on any error (malformed XML, unbalanced tags, violated cap) the
// extraction is left exactly as it was.
func (x *Extraction) AddDocumentOptions(r io.Reader, opts *IngestOptions) error {
	_, err := newIngester(opts).ingestOne(context.Background(), r, opts, x)
	return err
}

// AddDocuments ingests a batch of documents with per-document fault
// isolation under the chosen policy, labeling documents by position.
// The report is never nil. Under SkipAndRecord the error is always nil
// and failures are only recorded in the report; under FailFast the first
// failure is returned (and recorded) and later documents are not read.
func (x *Extraction) AddDocuments(docs []io.Reader, opts *IngestOptions, policy ErrorPolicy) (*IngestReport, error) {
	labeled := make([]Doc, len(docs))
	for i, r := range docs {
		labeled[i] = Doc{Label: fmt.Sprintf("document %d", i), R: r}
	}
	return x.AddDocs(labeled, opts, policy)
}

// AddDocs is AddDocuments with caller-supplied labels (file names).
func (x *Extraction) AddDocs(docs []Doc, opts *IngestOptions, policy ErrorPolicy) (*IngestReport, error) {
	report := &IngestReport{}
	derr, _ := ingestDocs(context.Background(), x, docs, 0, opts, policy, report)
	report.TextOverflows = len(x.TextOverflow)
	if derr != nil {
		return report, derr
	}
	return report, nil
}

// AddDocumentsContext is AddDocuments under a context, labeling documents
// by position. See AddDocsContext for the cancellation contract.
func (x *Extraction) AddDocumentsContext(ctx context.Context, docs []io.Reader, opts *IngestOptions, policy ErrorPolicy) (*IngestReport, error) {
	labeled := make([]Doc, len(docs))
	for i, r := range docs {
		labeled[i] = Doc{Label: fmt.Sprintf("document %d", i), R: r}
	}
	return x.AddDocsContext(ctx, labeled, opts, policy)
}

// AddDocsContext is AddDocs under a context. Cancellation is batch-atomic:
// the whole batch is staged and committed only when the context is still
// live at the end, so a cancelled call returns ctx.Err() (alongside the
// partial report) and leaves x exactly as it was — no torn prefix to
// reason about. Per-document faults keep their AddDocs semantics: under
// FailFast the documents preceding the failure commit and the failing
// *DocumentError is returned; under SkipAndRecord failures land in the
// report only.
//
// The batch-level staging is paid only when the context can actually be
// cancelled; with a Done-less context (context.Background()) documents
// commit directly into x and the call costs exactly what AddDocs does.
func (x *Extraction) AddDocsContext(ctx context.Context, docs []Doc, opts *IngestOptions, policy ErrorPolicy) (*IngestReport, error) {
	report := &IngestReport{}
	target := x
	if ctx.Done() != nil {
		target = NewExtraction()
	}
	derr, cancelErr := ingestDocs(ctx, target, docs, 0, opts, policy, report)
	if cancelErr != nil {
		return report, cancelErr
	}
	if target != x {
		x.Merge(target)
	}
	report.TextOverflows = len(x.TextOverflow)
	if derr != nil {
		return report, derr
	}
	return report, nil
}

// ingestDocs runs the per-document staging loop into x, labeling errors
// with baseIndex+i so a shard of a larger batch reports original document
// positions. The first return is the first failing document under
// FailFast; the second is the context's error when the batch was
// abandoned mid-way — a cancelled document is batch abortion, not a
// per-document fault, so it is never recorded in the report. This is the
// single ingestion loop shared by the sequential and parallel batch APIs
// (each parallel worker calls it on a private extraction).
func ingestDocs(ctx context.Context, x *Extraction, docs []Doc, baseIndex int, opts *IngestOptions, policy ErrorPolicy, report *IngestReport) (*DocumentError, error) {
	return runIngest(newIngester(opts), ctx, x, docs, baseIndex, opts, policy, report)
}

// runIngest is ingestDocs with a caller-owned ingester, letting a
// parallel worker amortize one ingester's decoder and staging buffers
// across every shard it claims.
func runIngest(ing ingester, ctx context.Context, x *Extraction, docs []Doc, baseIndex int, opts *IngestOptions, policy ErrorPolicy, report *IngestReport) (*DocumentError, error) {
	for i, doc := range docs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		report.Documents++
		stats, err := ing.ingestOne(ctx, doc.R, opts, x)
		report.Bytes += stats.bytes
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				// The decode loop observed cancellation (or the reader
				// failed while the context was already dead): abandon the
				// batch instead of charging the document with a fault.
				report.Documents--
				report.Bytes -= stats.bytes
				return nil, cerr
			}
			report.Rejected++
			derr := &DocumentError{Index: baseIndex + i, Label: doc.Label, Err: err}
			report.Errors = append(report.Errors, derr)
			if policy == FailFast {
				return derr, nil
			}
			continue
		}
		report.Accepted++
		report.Tokens += stats.tokens
		report.Elements += stats.elements
	}
	return nil, nil
}

// reset clears the extraction for reuse as a staging area, keeping the
// allocated maps.
func (x *Extraction) reset() {
	clear(x.Sequences)
	clear(x.HasText)
	clear(x.TextSamples)
	clear(x.TextOverflow)
	clear(x.Attributes)
	clear(x.Roots)
	clear(x.dirty)
	clear(x.attFp)
	x.cache = nil
	x.attCache = nil
	x.Documents = 0
}

// Merge folds another extraction's observations into x, preserving the
// per-element text-sample and attribute-value caps. Merging staged
// per-document extractions is exactly how AddDocument commits, so
// Merge(a); Merge(b) is equivalent to ingesting a's and b's documents
// directly. Sequence samples merge at the interned-ID level (see
// sample.Set.Merge): cost is proportional to o's *unique* sequences, and
// element-name strings are only touched on the first corpus-wide sight of
// a symbol.
func (x *Extraction) Merge(o *Extraction) {
	for name, seqs := range o.Sequences {
		s := x.sampleOf(name)
		before := s.ShapeFingerprint()
		s.Merge(seqs)
		if s.ShapeFingerprint() != before {
			x.markDirty(name)
		}
	}
	for name, has := range o.HasText {
		if has && !x.HasText[name] {
			x.HasText[name] = true
			x.markDirty(name)
		}
	}
	for name, samples := range o.TextSamples {
		have := x.TextSamples[name]
		for _, s := range samples {
			if len(have) >= maxTextSamples {
				// Samples beyond the cap are dropped, so the kept set is no
				// longer the complete observation — record that, exactly
				// like the per-document path does when it truncates.
				x.TextOverflow[name] = true
				break
			}
			have = append(have, s)
		}
		x.TextSamples[name] = have
	}
	for name, of := range o.TextOverflow {
		if of {
			x.TextOverflow[name] = true
		}
	}
	for elem, atts := range o.Attributes {
		for att, st := range atts {
			x.mergeAttStats(elem, att, st)
		}
	}
	for name, n := range o.Roots {
		x.Roots[name] += n
	}
	x.Documents += o.Documents
}

// mergeAttStats folds one element/attribute statistic into x, honoring
// the distinct-value cap the per-document recording also enforces. The
// element is marked dirty on attribute-shape changes (new attribute,
// new distinct value, overflow flip) but not on bare presence-count
// bumps — <!ATTLIST> declarations are recomputed on every inference
// pass, so the dirty bit only tracks changes that could alter them.
func (x *Extraction) mergeAttStats(elem, att string, o *attStats) {
	atts := x.Attributes[elem]
	if atts == nil {
		atts = map[string]*attStats{}
		x.Attributes[elem] = atts
	}
	st := atts[att]
	if st == nil {
		st = &attStats{values: map[string]int{}}
		atts[att] = st
		x.markDirty(elem)
	}
	hp, hov, hval := attNameHashes(att)
	st.present += o.present
	x.attFpAdd(elem, hp, o.present)
	if o.overflow && !st.overflow {
		st.overflow = true
		x.attFpAdd(elem, hov, 1)
		x.markDirty(elem)
	}
	for v, n := range o.values {
		if _, seen := st.values[v]; !seen {
			if len(st.values) >= maxAttValues {
				if !st.overflow {
					st.overflow = true
					x.attFpAdd(elem, hov, 1)
					x.markDirty(elem)
				}
				continue
			}
			x.markDirty(elem)
		}
		st.values[v] += n
		x.attFpAdd(elem, attValueHash(hval, v), n)
	}
}

// InferStats reports per-element timings from InferDTDStats' worker pool.
type InferStats struct {
	// Wall is the wall-clock time of the whole inference.
	Wall time.Duration
	// PerElement holds one entry per inferred element, in the DTD's
	// deterministic element order.
	PerElement []ElementTiming
	// Outcomes holds one entry per element whose inferrer reported an
	// outcome (engine used, degradation rung, cause), in the DTD's
	// deterministic element order. Empty when the inferrer predates the
	// outcome protocol or no element has children content.
	Outcomes []ElementOutcome
	// Cached reports whether this pass consulted a model cache (see
	// InferDTDElementsCached); the counters below are meaningful only
	// when it is set. Hits returned a memoized model without running an
	// engine; misses had no cached entry; recomputes had an entry whose
	// fingerprint no longer matched the sample.
	Cached          bool
	CacheHits       int
	CacheMisses     int
	CacheRecomputes int
	// Dirty counts the elements whose structural observations had
	// changed since the previous cached pass, captured before this pass
	// cleared the bits.
	Dirty int
	// AttListReplayed reports (for cached passes) whether <!ATTLIST>
	// inference was replayed from the attribute-fingerprint cache
	// instead of recomputed — true on a warm pass with no attribute-
	// relevant changes since the previous one.
	AttListReplayed bool
}

// ElementTiming is one element's inference cost.
type ElementTiming struct {
	// Name is the element name.
	Name string
	// Sequences is the sample size the content model was inferred from.
	Sequences int
	// Duration is the time spent inferring this element's declaration.
	Duration time.Duration
}

// String renders the timings, slowest element first.
func (s *InferStats) String() string {
	order := make([]ElementTiming, len(s.PerElement))
	copy(order, s.PerElement)
	for i := 1; i < len(order); i++ { // insertion sort by duration, desc
		for j := i; j > 0 && order[j].Duration > order[j-1].Duration; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "inferred %d elements in %v", len(order), s.Wall)
	if s.Cached {
		attlist := "recomputed"
		if s.AttListReplayed {
			attlist = "replayed"
		}
		fmt.Fprintf(&b, "\n  cache: %d hits, %d misses, %d recomputes; %d dirty elements; attlist %s",
			s.CacheHits, s.CacheMisses, s.CacheRecomputes, s.Dirty, attlist)
	}
	for _, t := range order {
		fmt.Fprintf(&b, "\n  %-24s %8d seqs  %v", t.Name, t.Sequences, t.Duration)
	}
	for _, o := range s.Outcomes {
		if o.DegradedFrom == "" {
			continue
		}
		fmt.Fprintf(&b, "\n  %-24s degraded %s -> %s (%s)", o.Name, o.DegradedFrom, o.Engine, o.Cause)
	}
	return b.String()
}
