package dtd

import (
	"fmt"
	"sort"
	"strings"

	"dtdinfer/internal/automata"
)

// Relation compares the languages of two content models.
type Relation int

const (
	// Equivalent: both models denote the same language.
	Equivalent Relation = iota
	// Stricter: the first model's language is strictly contained in the
	// second's (the first is the tighter schema).
	Stricter
	// Looser: the first model's language strictly contains the second's.
	Looser
	// Incomparable: neither contains the other.
	Incomparable
	// OnlyFirst and OnlySecond mark elements declared in one DTD only.
	OnlyFirst
	// OnlySecond marks elements declared only in the second DTD.
	OnlySecond
	// Different marks declarations whose content kinds differ (for
	// example EMPTY in one and #PCDATA in the other).
	Different
)

func (r Relation) String() string {
	switch r {
	case Equivalent:
		return "equivalent"
	case Stricter:
		return "stricter"
	case Looser:
		return "looser"
	case Incomparable:
		return "incomparable"
	case OnlyFirst:
		return "only in first"
	case OnlySecond:
		return "only in second"
	case Different:
		return "different kind"
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// DiffEntry is one element's comparison.
type DiffEntry struct {
	Element  string
	Relation Relation
	// First and Second render the two declarations ("" when missing).
	First, Second string
}

// Diff compares two DTDs element by element, by the languages of their
// content models. This is the paper's schema-cleaning workflow in tool
// form: diffing a published DTD against the DTD inferred from the actual
// corpus reveals where the data is stricter (the refinfo volume/month
// exclusion) and, in the noise scenario of Section 9, diffing the
// inferred schema against the specification gives "a uniform view of the
// kind of errors".
func Diff(a, b *DTD) []DiffEntry {
	names := map[string]bool{}
	for n := range a.Elements {
		names[n] = true
	}
	for n := range b.Elements {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	var out []DiffEntry
	for _, n := range sorted {
		ea, eb := a.Elements[n], b.Elements[n]
		entry := DiffEntry{Element: n}
		switch {
		case ea == nil:
			entry.Relation = OnlySecond
			entry.Second = eb.String()
		case eb == nil:
			entry.Relation = OnlyFirst
			entry.First = ea.String()
		default:
			entry.First, entry.Second = ea.String(), eb.String()
			entry.Relation = compareElements(ea, eb)
		}
		out = append(out, entry)
	}
	return out
}

func compareElements(ea, eb *Element) Relation {
	if ea.Type != eb.Type {
		return Different
	}
	switch ea.Type {
	case Children:
		da, db := automata.FromExpr(ea.Model), automata.FromExpr(eb.Model)
		aInB := automata.Includes(db, da)
		bInA := automata.Includes(da, db)
		switch {
		case aInB && bInA:
			return Equivalent
		case aInB:
			return Stricter
		case bInA:
			return Looser
		default:
			return Incomparable
		}
	case Mixed:
		sa := strings.Join(ea.MixedNames, "|")
		sb := strings.Join(eb.MixedNames, "|")
		switch {
		case sa == sb:
			return Equivalent
		case subsetNames(ea.MixedNames, eb.MixedNames):
			return Stricter
		case subsetNames(eb.MixedNames, ea.MixedNames):
			return Looser
		default:
			return Incomparable
		}
	default:
		return Equivalent
	}
}

func subsetNames(a, b []string) bool {
	set := map[string]bool{}
	for _, n := range b {
		set[n] = true
	}
	for _, n := range a {
		if !set[n] {
			return false
		}
	}
	return true
}

// ChangeSummary buckets a diff into what a schema consumer cares about
// when a new version is published: elements whose declarations changed,
// elements that appeared, and elements that vanished.
type ChangeSummary struct {
	Added    []string
	Removed  []string
	Modified []string
}

// Empty reports whether nothing changed.
func (c ChangeSummary) Empty() bool {
	return len(c.Added) == 0 && len(c.Removed) == 0 && len(c.Modified) == 0
}

// Changes buckets diff entries (as returned by Diff, element-sorted)
// into a ChangeSummary: OnlySecond entries are additions, OnlyFirst
// removals, and any non-equivalent two-sided entry a modification.
func Changes(entries []DiffEntry) ChangeSummary {
	var c ChangeSummary
	for _, e := range entries {
		switch e.Relation {
		case Equivalent:
		case OnlySecond:
			c.Added = append(c.Added, e.Element)
		case OnlyFirst:
			c.Removed = append(c.Removed, e.Element)
		default:
			c.Modified = append(c.Modified, e.Element)
		}
	}
	return c
}

// FormatChangeFeed renders one change-feed line for a version step:
// "v3→v4: modified <order>, added <sku>" ("no changes" when the step
// changed nothing).
func FormatChangeFeed(from, to uint64, c ChangeSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d→v%d:", from, to)
	wrote := false
	cat := func(verb string, names []string) {
		if len(names) == 0 {
			return
		}
		if wrote {
			b.WriteString(",")
		}
		b.WriteString(" " + verb)
		for _, n := range names {
			fmt.Fprintf(&b, " <%s>", n)
		}
		wrote = true
	}
	cat("modified", c.Modified)
	cat("added", c.Added)
	cat("removed", c.Removed)
	if !wrote {
		b.WriteString(" no changes")
	}
	return b.String()
}

// FormatDiff renders a diff, hiding equivalent entries unless verbose.
func FormatDiff(entries []DiffEntry, verbose bool) string {
	var b strings.Builder
	changed := 0
	for _, e := range entries {
		if e.Relation == Equivalent && !verbose {
			continue
		}
		changed++
		fmt.Fprintf(&b, "%s: %s\n", e.Element, e.Relation)
		if e.First != "" {
			fmt.Fprintf(&b, "  first : %s\n", e.First)
		}
		if e.Second != "" {
			fmt.Fprintf(&b, "  second: %s\n", e.Second)
		}
	}
	if changed == 0 {
		return "DTDs are equivalent\n"
	}
	return b.String()
}
