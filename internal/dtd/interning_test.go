package dtd

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dtdinfer/internal/sample"
)

// genInternCorpus builds a corpus engineered to make symbol interning
// order observable and fragile: every document introduces one fresh
// element name (so corpus-level first-sight order tracks document order
// exactly), mixes it with names from earlier documents, and occasionally
// balloons in size so byte-weighted shard boundaries move around as the
// worker count changes.
func genInternCorpus(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	var pool []string
	docs := make([]string, n)
	for i := range docs {
		fresh := fmt.Sprintf("n%03d", i)
		pool = append(pool, fresh)
		var b strings.Builder
		b.WriteString("<root>")
		k := 1 + rng.Intn(8)
		if rng.Intn(4) == 0 {
			k += 40 // occasional giant document skews shard weights
		}
		for j := 0; j < k; j++ {
			el := pool[rng.Intn(len(pool))]
			if j == 0 {
				el = fresh
			}
			fmt.Fprintf(&b, "<%s><%s/></%s>", el, pool[rng.Intn(len(pool))], el)
		}
		b.WriteString("</root>")
		docs[i] = b.String()
	}
	return docs
}

// symbolTable returns a sample's dense ID assignment as the slice of
// names in ID order.
func symbolTable(s *sample.Set) []string {
	out := make([]string, s.NumSymbols())
	for i := range out {
		out[i] = s.Name(i)
	}
	return out
}

// TestParallelInternIDsIdenticalAcrossWorkerCounts pins the invariant the
// two-table interning design exists to preserve: every element's dense
// symbol IDs come out identical to sequential ingestion no matter how
// many workers ran or where the shard boundaries fell — both decoders,
// both the ID assignment explicitly and the whole extraction under
// DeepEqual. Run under the race detector (make race does, at -cpu 1,4),
// this also races the worker-local tables against each other.
func TestParallelInternIDsIdenticalAcrossWorkerCounts(t *testing.T) {
	docs := genInternCorpus(99, 120)
	for _, decoder := range []DecoderKind{DecoderFast, DecoderStd} {
		t.Run(decoder.String(), func(t *testing.T) {
			opts := &IngestOptions{Decoder: decoder}
			seq := NewExtraction()
			if _, err := seq.AddDocs(docList(docs), opts, SkipAndRecord); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3, 5, 8, 16} {
				par := NewExtraction()
				if _, err := par.AddDocsParallel(docList(docs), workers, opts, SkipAndRecord); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				for name, want := range seq.Sequences {
					got := par.Sequences[name]
					if got == nil {
						t.Fatalf("workers=%d: element %s missing", workers, name)
					}
					if !reflect.DeepEqual(symbolTable(got), symbolTable(want)) {
						t.Errorf("workers=%d: element %s interned %v, want %v",
							workers, name, symbolTable(got), symbolTable(want))
					}
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("workers=%d: extraction differs from sequential", workers)
				}
			}
		})
	}
}

// textCorpus yields n documents each contributing one text sample under
// element e (in document order) plus a text-free sibling.
func textCorpus(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		docs[i] = fmt.Sprintf("<r><e>t%03d</e><q/></r>", i)
	}
	return docs
}

// TestTextOverflowFlag pins the truncation flag semantics on both
// decoders: past the per-element cap the kept samples are the first
// maxTextSamples in document order, the element is flagged, unaffected
// elements are not, and the batch report surfaces the count.
func TestTextOverflowFlag(t *testing.T) {
	for _, decoder := range []DecoderKind{DecoderFast, DecoderStd} {
		t.Run(decoder.String(), func(t *testing.T) {
			opts := &IngestOptions{Decoder: decoder}

			x := NewExtraction()
			report, err := x.AddDocs(docList(textCorpus(maxTextSamples+30)), opts, SkipAndRecord)
			if err != nil {
				t.Fatal(err)
			}
			if !x.TextOverflow["e"] {
				t.Error("TextOverflow[e] not set past the cap")
			}
			if len(x.TextOverflow) != 1 {
				t.Errorf("TextOverflow = %v, want only e", x.TextOverflow)
			}
			if got := x.TextSamples["e"]; len(got) != maxTextSamples || got[0] != "t000" || got[maxTextSamples-1] != fmt.Sprintf("t%03d", maxTextSamples-1) {
				t.Errorf("samples = %d entries [%s..%s], want first %d in order",
					len(got), got[0], got[len(got)-1], maxTextSamples)
			}
			if report.TextOverflows != 1 {
				t.Errorf("report.TextOverflows = %d, want 1", report.TextOverflows)
			}
			if !strings.Contains(report.String(), "truncated text samples") {
				t.Errorf("report.String() = %q, want truncation mention", report.String())
			}

			// Exactly at the cap: complete, so no flag.
			atCap := NewExtraction()
			report, err = atCap.AddDocs(docList(textCorpus(maxTextSamples)), opts, SkipAndRecord)
			if err != nil {
				t.Fatal(err)
			}
			if len(atCap.TextOverflow) != 0 || report.TextOverflows != 0 {
				t.Errorf("at-cap: TextOverflow = %v, report = %d, want none",
					atCap.TextOverflow, report.TextOverflows)
			}
		})
	}
}

// TestTextOverflowParallelMatchesSequential checks the flag survives the
// sharded path bit-for-bit: same flags, same kept samples, same report.
func TestTextOverflowParallelMatchesSequential(t *testing.T) {
	docs := textCorpus(maxTextSamples + 41)
	for _, decoder := range []DecoderKind{DecoderFast, DecoderStd} {
		t.Run(decoder.String(), func(t *testing.T) {
			opts := &IngestOptions{Decoder: decoder}
			seq := NewExtraction()
			seqReport, err := seq.AddDocs(docList(docs), opts, SkipAndRecord)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				par := NewExtraction()
				parReport, err := par.AddDocsParallel(docList(docs), workers, opts, SkipAndRecord)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("workers=%d: extraction differs from sequential", workers)
				}
				if parReport.TextOverflows != seqReport.TextOverflows {
					t.Errorf("workers=%d: report.TextOverflows = %d, want %d",
						workers, parReport.TextOverflows, seqReport.TextOverflows)
				}
			}
		})
	}
}

// TestMergeSetsTextOverflowOnTruncation pins that Merge records the flag
// when the destination's cap truncates the source's samples, and
// propagates an already-set flag.
func TestMergeSetsTextOverflowOnTruncation(t *testing.T) {
	a, b := NewExtraction(), NewExtraction()
	for i := 0; i < 60; i++ {
		a.TextSamples["e"] = append(a.TextSamples["e"], "a")
		b.TextSamples["e"] = append(b.TextSamples["e"], "b")
	}
	a.Merge(b)
	if len(a.TextSamples["e"]) != maxTextSamples {
		t.Errorf("samples = %d, want cap %d", len(a.TextSamples["e"]), maxTextSamples)
	}
	if !a.TextOverflow["e"] {
		t.Error("TextOverflow[e] not set by merge truncation")
	}

	c, d := NewExtraction(), NewExtraction()
	d.TextSamples["e"] = []string{"x"}
	d.TextOverflow["e"] = true
	c.Merge(d)
	if !c.TextOverflow["e"] {
		t.Error("TextOverflow[e] not propagated by merge")
	}
}
