package dtd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"dtdinfer/internal/intern"
	"dtdinfer/internal/sample"
	"dtdinfer/internal/xmltok"
)

// The fast ingestion path: a reusable fastIngester drives the
// structure-only tokenizer (internal/xmltok) and stages one document's
// observations in a worker-local interned symbol space — no intermediate
// strings on the repeat path — before committing them into the target
// extraction. Commit produces state byte-identical to the encoding/xml
// path (stdIngester), which is retained as the fallback decoder and the
// differential-testing oracle; FuzzTokenizerEquivalence holds the two
// paths to identical acceptance and identical extraction state.

// ingester ingests one document into target, atomically: on error the
// target is untouched. Implementations carry reusable staging state, so
// one ingester must not be shared between goroutines, and a batch loop
// amortizes its buffers across every document it feeds through.
type ingester interface {
	ingestOne(ctx context.Context, r io.Reader, opts *IngestOptions, target *Extraction) (docStats, error)
}

// newIngester picks the decoder implementation requested by opts
// (nil/zero selects the fast tokenizer).
func newIngester(opts *IngestOptions) ingester {
	if opts != nil && opts.Decoder == DecoderStd {
		return newStdIngester()
	}
	return newFastIngester()
}

// stdIngester is the encoding/xml path: stage into a scratch Extraction
// plus verbatim sequence buffers, then Merge + commit on success.
type stdIngester struct {
	stage *Extraction
	seqs  map[string][][]string
}

func newStdIngester() *stdIngester {
	return &stdIngester{stage: NewExtraction(), seqs: map[string][][]string{}}
}

func (g *stdIngester) ingestOne(ctx context.Context, r io.Reader, opts *IngestOptions, target *Extraction) (docStats, error) {
	g.stage.reset()
	clear(g.seqs)
	stats, err := g.stage.extractOne(ctx, r, opts, g.seqs)
	if err != nil {
		return stats, err
	}
	target.Merge(g.stage)
	target.commitSequences(g.seqs)
	return stats, nil
}

// fastFrame is one open element during fast extraction.
type fastFrame struct {
	wid int32
	// childStart is the start of this element's children span in childBuf.
	childStart int
	// nBinds counts xmlns prefix bindings this element introduced, undone
	// when it closes.
	nBinds int
}

// valCount is one staged attribute value with its per-document count.
type valCount struct {
	v string
	n int
}

// attStage stages one element/attribute's per-document statistics. It
// persists across documents (keyed maps and buffers are reused); epoch
// marks the document it was last reset for.
type attStage struct {
	name     string
	epoch    int64
	present  int
	overflow bool
	// idx maps a value to its slot in vals; byte-keyed lookups on the
	// repeat path are allocation-free.
	idx  map[string]int
	vals []valCount
}

// elemStage stages one element name's per-document observations, indexed
// by worker-local symbol ID. Buffers persist across documents; epoch
// marks the document the stage was last reset for, so a rejected
// document's leftovers are invisible to the next one.
type elemStage struct {
	epoch int64
	// arena concatenates this document's children sequences; ends[i] is
	// the arena offset ending the i-th sequence.
	arena []int32
	ends  []int
	// hasText marks non-whitespace character data; texts stages up to
	// textCap trimmed samples (the commit destination's remaining sample
	// space, so a full destination costs no string materialization at
	// all). textOverflow records that at least one sample was dropped at
	// the cap, so the kept set is incomplete.
	hasText      bool
	texts        []string
	textCap      int
	textOverflow bool
	// atts stages attribute statistics; attsTouched lists the ones active
	// this document in first-touch order.
	atts        map[string]*attStage
	attsTouched []*attStage
}

// elemTarget caches one element's commit destination: the target
// extraction's sample.Set for the element plus the worker-local-ID ->
// set-ID remap. Both are valid for the fastIngester's current target
// (epoch); the remap persists for as long as the target does, so a
// worker committing many shards into one corpus resolves each distinct
// child symbol's string exactly once and every later occurrence is a
// slice index.
type elemTarget struct {
	epoch int64
	set   *sample.Set
	remap intern.Remap
}

// fastIngester drives xmltok over documents and stages observations in a
// worker-local dense symbol space. One instance serves a whole batch (or
// a parallel worker's run of shards): the tokenizer, the intern table,
// and every staging buffer are reused across documents, so the per-
// document cost on a warmed-up corpus is map probes and slice appends,
// not allocations.
//
// The worker-local intern table grows with every distinct element name
// the worker ever sees, including names from documents that are later
// rejected; MaxNames bounds the growth per document, and the table dies
// with the batch.
type fastIngester struct {
	tok   *xmltok.Tokenizer
	names *intern.Table

	epoch   int64
	elems   []*elemStage // indexed by worker-local symbol ID
	touched []int32      // symbols staged this document, first-touch order

	stack    []fastFrame
	childBuf []int32 // concatenated children spans of the open elements
	rootBuf  []int32

	// nsBind tracks live xmlns prefix bindings (innermost last) and
	// bindLog the prefixes bound by currently open elements, engaged only
	// when a document declares prefix bindings. The extraction filter
	// needs them for one corner: an attribute whose prefix is bound to
	// the literal value "xmlns" translates to Name.Space == "xmlns" under
	// encoding/xml and is dropped as a namespace declaration.
	nsBind  map[string][]string
	bindLog []string

	idBuf []int32 // commit scratch: one sequence in target-set IDs

	// targets caches per-element commit destinations for the current
	// target extraction, indexed by worker-local symbol ID.
	targets     []elemTarget
	target      *Extraction
	targetEpoch int64

	// shard, when non-nil, redirects successful documents' commits into a
	// worker-owned shard stage (still keyed by this ingester's symbol
	// space) instead of an Extraction; see commitToShard.
	shard *fastShard

	// afterDoc, when set alongside shard, runs after every successful
	// document commit into the shard — the pipelined driver's hook for
	// shipping a flush unit once the staged bytes cross the budget. It is
	// only ever invoked at a document boundary, which is what keeps
	// sub-shard flushing invisible to the committed result.
	afterDoc func()
}

func newFastIngester() *fastIngester {
	return &fastIngester{tok: xmltok.NewTokenizer(), names: intern.NewTable()}
}

// ingestOne decodes one document with the fast tokenizer under the same
// caps, cancellation cadence and failure-atomicity as the encoding/xml
// path, committing into target only on success.
func (f *fastIngester) ingestOne(ctx context.Context, r io.Reader, opts *IngestOptions, target *Extraction) (docStats, error) {
	var o IngestOptions
	if opts != nil {
		o = *opts
	}
	if f.shard == nil && target != f.target {
		f.target = target
		f.targetEpoch++
	}
	f.beginDoc()
	done := ctx.Done()
	mr := &meteredReader{r: r, max: o.MaxBytes}
	tok := f.tok
	tok.Reset(mr)
	var stats docStats
	for {
		if done != nil && stats.tokens%cancelCheckInterval == 0 {
			select {
			case <-done:
				return stats, ctx.Err()
			default:
			}
		}
		kind, err := tok.Next()
		stats.bytes = mr.n
		if err == io.EOF {
			break
		}
		if err != nil {
			var le *LimitError
			if errors.As(err, &le) {
				return stats, le
			}
			return stats, fmt.Errorf("dtd: parsing XML: %w", err)
		}
		stats.tokens++
		if o.MaxTokens > 0 && stats.tokens > o.MaxTokens {
			return stats, &LimitError{Limit: "tokens", Max: o.MaxTokens, Offset: tok.InputOffset()}
		}
		switch kind {
		case xmltok.StartElement:
			stats.elements++
			if o.MaxDepth > 0 && len(f.stack) >= o.MaxDepth {
				return stats, &LimitError{Limit: "depth", Max: int64(o.MaxDepth), Offset: tok.InputOffset()}
			}
			if err := f.startElement(tok, &o); err != nil {
				return stats, err
			}
		case xmltok.EndElement:
			f.endElement()
		case xmltok.CharData:
			f.charData(tok.Text())
		}
	}
	if len(f.stack) != 0 {
		// Unreachable in practice — the tokenizer turns EOF with open
		// elements into a syntax error — but kept as the same backstop
		// the encoding/xml path has.
		return stats, fmt.Errorf("dtd: unbalanced XML document")
	}
	if f.shard != nil {
		f.commitToShard(f.shard)
		if f.afterDoc != nil {
			f.afterDoc()
		}
	} else {
		f.commit(target)
	}
	return stats, nil
}

// beginDoc resets the per-document state, including leftovers of a
// previous document that failed mid-parse.
func (f *fastIngester) beginDoc() {
	f.epoch++
	f.touched = f.touched[:0]
	f.stack = f.stack[:0]
	f.childBuf = f.childBuf[:0]
	f.rootBuf = f.rootBuf[:0]
	for len(f.bindLog) > 0 {
		f.unbindLast()
	}
}

// stage returns the element's staging slot, resetting it on first touch
// this document and recording it in the touched list.
func (f *fastIngester) stage(w int32) *elemStage {
	st := f.elems[w]
	if st == nil {
		st = &elemStage{}
		f.elems[w] = st
	}
	if st.epoch != f.epoch {
		st.epoch = f.epoch
		st.arena = st.arena[:0]
		st.ends = st.ends[:0]
		st.hasText = false
		st.texts = st.texts[:0]
		st.textCap = -1
		st.textOverflow = false
		st.attsTouched = st.attsTouched[:0]
		f.touched = append(f.touched, w)
	}
	return st
}

func (f *fastIngester) startElement(tok *xmltok.Tokenizer, o *IngestOptions) error {
	w := int32(f.names.InternBytes(tok.Name()))
	for len(f.elems) <= int(w) {
		f.elems = append(f.elems, nil)
	}
	if o.MaxNames > 0 {
		if st := f.elems[w]; st == nil || st.epoch != f.epoch {
			if len(f.touched) >= o.MaxNames {
				return &LimitError{Limit: "names", Max: int64(o.MaxNames), Offset: tok.InputOffset()}
			}
		}
	}
	st := f.stage(w)
	if len(f.stack) == 0 {
		f.rootBuf = append(f.rootBuf, w)
	} else {
		f.childBuf = append(f.childBuf, w)
	}
	nBinds := 0
	if attrs := tok.Attr(); len(attrs) > 0 {
		nBinds = f.recordAttrs(st, attrs)
	}
	f.stack = append(f.stack, fastFrame{wid: w, childStart: len(f.childBuf), nBinds: nBinds})
	return nil
}

// recordAttrs stages one start tag's attributes, filtering namespace
// declarations exactly like the encoding/xml path. Prefix bindings are
// registered from every xmlns attribute before any attribute is
// filtered, matching stdlib Token's sync-then-translate order (a binding
// applies to attributes of its own element regardless of position).
func (f *fastIngester) recordAttrs(st *elemStage, attrs []xmltok.Attr) (nBinds int) {
	for i := range attrs {
		a := &attrs[i]
		if string(a.Prefix) == "xmlns" {
			f.bindPrefix(string(a.Local), string(a.Value))
			nBinds++
		}
	}
	for i := range attrs {
		a := &attrs[i]
		if string(a.Prefix) == "xmlns" || (len(a.Prefix) == 0 && string(a.Local) == "xmlns") {
			continue
		}
		if len(a.Prefix) != 0 && string(a.Prefix) != "xml" && f.boundTo(a.Prefix) == "xmlns" {
			// The prefix resolves to the literal namespace "xmlns", so
			// after stdlib translation Name.Space == "xmlns" and the
			// extraction filter treats it as a namespace declaration.
			continue
		}
		f.recordAttr(st, a.Local, a.Value)
	}
	return nBinds
}

func (f *fastIngester) bindPrefix(prefix, value string) {
	if f.nsBind == nil {
		f.nsBind = map[string][]string{}
	}
	f.nsBind[prefix] = append(f.nsBind[prefix], value)
	f.bindLog = append(f.bindLog, prefix)
}

func (f *fastIngester) unbindLast() {
	p := f.bindLog[len(f.bindLog)-1]
	f.bindLog = f.bindLog[:len(f.bindLog)-1]
	s := f.nsBind[p]
	s = s[:len(s)-1]
	if len(s) == 0 {
		delete(f.nsBind, p)
	} else {
		f.nsBind[p] = s
	}
}

// boundTo returns the innermost binding of prefix ("" when unbound).
func (f *fastIngester) boundTo(prefix []byte) string {
	if f.nsBind == nil {
		return ""
	}
	s := f.nsBind[string(prefix)]
	if len(s) == 0 {
		return ""
	}
	return s[len(s)-1]
}

// recordAttr stages one attribute occurrence under the per-document
// distinct-value cap, byte-keyed so repeated names and values cost no
// allocation.
func (f *fastIngester) recordAttr(st *elemStage, name, val []byte) {
	if st.atts == nil {
		st.atts = map[string]*attStage{}
	}
	a := st.atts[string(name)]
	if a == nil {
		a = &attStage{name: string(name), idx: map[string]int{}}
		st.atts[a.name] = a
	}
	if a.epoch != f.epoch {
		a.epoch = f.epoch
		a.present = 0
		a.overflow = false
		clear(a.idx)
		a.vals = a.vals[:0]
		st.attsTouched = append(st.attsTouched, a)
	}
	a.present++
	if slot, ok := a.idx[string(val)]; ok {
		a.vals[slot].n++
		return
	}
	if len(a.vals) >= maxAttValues {
		a.overflow = true
		return
	}
	v := string(val)
	a.idx[v] = len(a.vals)
	a.vals = append(a.vals, valCount{v: v, n: 1})
}

func (f *fastIngester) endElement() {
	fr := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	st := f.stage(fr.wid)
	st.arena = append(st.arena, f.childBuf[fr.childStart:]...)
	st.ends = append(st.ends, len(st.arena))
	f.childBuf = f.childBuf[:fr.childStart]
	for i := 0; i < fr.nBinds; i++ {
		f.unbindLast()
	}
}

func (f *fastIngester) charData(text []byte) {
	if len(f.stack) == 0 {
		return
	}
	trimmed := bytes.TrimSpace(text)
	if len(trimmed) == 0 {
		return
	}
	w := f.stack[len(f.stack)-1].wid
	st := f.stage(w)
	st.hasText = true
	if st.textCap < 0 {
		if f.shard != nil {
			st.textCap = maxTextSamples - f.shard.textLen(w)
		} else {
			st.textCap = maxTextSamples - len(f.target.TextSamples[f.names.Name(int(w))])
		}
		if st.textCap < 0 {
			st.textCap = 0
		}
	}
	if len(st.texts) < st.textCap {
		st.texts = append(st.texts, string(trimmed))
	} else {
		st.textOverflow = true
	}
}

// targetFor returns the cached commit destination for element w against
// target, resolving the sample.Set (one string-keyed map lookup) and
// resetting the ID remap only when the target changed since the cache
// was last valid.
func (f *fastIngester) targetFor(w int32, target *Extraction) *elemTarget {
	for len(f.targets) <= int(w) {
		f.targets = append(f.targets, elemTarget{epoch: -1})
	}
	t := &f.targets[w]
	if t.epoch != f.targetEpoch || t.set == nil {
		t.epoch = f.targetEpoch
		t.set = target.sampleOf(f.names.Name(int(w)))
		t.remap.Reset()
	}
	return t
}

// commit folds one successfully decoded document's staged observations
// into the target, translating worker-local symbol IDs into each
// element's sample.Set space via the cached per-element remap — symbols
// intern in observation order, so the resulting sets are byte-identical
// to the stdIngester commit.
func (f *fastIngester) commit(target *Extraction) {
	for _, w := range f.touched {
		st := f.elems[w]
		name := f.names.Name(int(w))
		if len(st.ends) > 0 {
			tgt := f.targetFor(w, target)
			before := tgt.set.ShapeFingerprint()
			start := 0
			for _, end := range st.ends {
				f.idBuf = f.idBuf[:0]
				for _, cw := range st.arena[start:end] {
					id := tgt.remap.Get(cw)
					if id < 0 {
						id = int32(tgt.set.Intern(f.names.Name(int(cw))))
						tgt.remap.Set(cw, id)
					}
					f.idBuf = append(f.idBuf, id)
				}
				tgt.set.AddIDs(f.idBuf, 1)
				start = end
			}
			if tgt.set.ShapeFingerprint() != before {
				target.markDirty(name)
			}
		}
		if st.hasText && !target.HasText[name] {
			target.HasText[name] = true
			target.markDirty(name)
		}
		if len(st.texts) > 0 {
			target.TextSamples[name] = append(target.TextSamples[name], st.texts...)
		}
		if st.textOverflow {
			target.TextOverflow[name] = true
		}
		for _, a := range st.attsTouched {
			commitAttrStage(target, name, a)
		}
	}
	for _, w := range f.rootBuf {
		target.Roots[f.names.Name(int(w))]++
	}
	target.Documents++
}

// commitAttrStage folds one staged attribute statistic into the target,
// honoring the accumulated distinct-value cap like mergeAttStats, and
// marking the element dirty under the same attribute-shape conditions.
// It is target-only state (no ingester involved), so both the worker's
// direct per-document commit and the pipeline committer share it.
func commitAttrStage(target *Extraction, elem string, a *attStage) {
	atts := target.Attributes[elem]
	if atts == nil {
		atts = map[string]*attStats{}
		target.Attributes[elem] = atts
	}
	st := atts[a.name]
	if st == nil {
		st = &attStats{values: map[string]int{}}
		atts[a.name] = st
		target.markDirty(elem)
	}
	hp, hov, hval := attNameHashes(a.name)
	st.present += a.present
	target.attFpAdd(elem, hp, a.present)
	if a.overflow && !st.overflow {
		st.overflow = true
		target.attFpAdd(elem, hov, 1)
		target.markDirty(elem)
	}
	for _, vc := range a.vals {
		if _, seen := st.values[vc.v]; !seen {
			if len(st.values) >= maxAttValues {
				if !st.overflow {
					st.overflow = true
					target.attFpAdd(elem, hov, 1)
					target.markDirty(elem)
				}
				continue
			}
			target.markDirty(elem)
		}
		st.values[vc.v] += vc.n
		target.attFpAdd(elem, attValueHash(hval, vc.v), vc.n)
	}
}

// shardElem is one element's observations accumulated across a shard's
// accepted documents, still keyed by the staging worker's symbol space:
// the children sequences as a counted multiset of worker-local IDs, plus
// the text, attribute and root observations. Nothing here holds a target
// ID or an element-name string beyond attribute names and text values.
type shardElem struct {
	// epoch marks the fastShard generation this slot was last reset for;
	// a recycled shard bumps its epoch instead of clearing every slot.
	epoch int64
	ms    sample.Multiset
	// hasText/texts/textOverflow accumulate like elemStage's fields, under
	// the same per-element cap the final extraction enforces.
	hasText      bool
	texts        []string
	textOverflow bool
	// roots counts how often the element was a document root.
	roots int
	// atts accumulates attribute statistics in first-seen order (attList),
	// so the final commit folds values deterministically even at the
	// distinct-value cap.
	atts    map[string]*attStage
	attList []*attStage
}

// resetContent empties the slot's observations for a new shard
// generation, keeping allocated storage. Staged attStages are reset
// lazily by foldAttr through their own epoch marks.
func (se *shardElem) resetContent() {
	se.ms.Reset()
	se.hasText = false
	for i := range se.texts {
		se.texts[i] = ""
	}
	se.texts = se.texts[:0]
	se.textOverflow = false
	se.roots = 0
	se.attList = se.attList[:0]
}

// fastShard stages one flush unit's worth of accepted documents entirely
// in the owning worker's symbol space: per-element counted ID multisets
// plus the scalar observations. A parallel worker fills it with
// commitToShard (per accepted document, keeping failure atomicity), seals
// it with sealNames, and ships it to the pipeline committer, which folds
// units into the corpus extraction in (shard, unit) order with
// commitFastShard — the only place worker-local IDs are translated, via
// per-worker cached remaps. Committed units are recycled through a free
// list: reset bumps the epoch and slot() lazily re-initializes storage.
type fastShard struct {
	// perElem is indexed by the owning worker's symbol ID; touched lists
	// the populated slots in first-touch order across the unit's
	// documents, which is exactly the order sequential ingestion would
	// first observe them.
	perElem   []*shardElem
	touched   []int32
	documents int
	// epoch is the reuse generation; a slot whose epoch differs was last
	// touched by a previous tenant of this arena.
	epoch int64
	// names is the symbol-name snapshot sealed when the unit was shipped:
	// names[w] resolves the worker-local ID w. Captured by the worker so
	// the committer never reads the worker's live, still-growing table.
	names []string
	// bytes estimates the staged footprint, driving sub-shard flushing.
	bytes int
}

// slot returns the shard stage for element w, creating or lazily
// resetting it (and recording the first touch) on demand.
func (sh *fastShard) slot(w int32) *shardElem {
	for len(sh.perElem) <= int(w) {
		sh.perElem = append(sh.perElem, nil)
	}
	se := sh.perElem[w]
	if se == nil {
		se = &shardElem{epoch: -1}
		sh.perElem[w] = se
	}
	if se.epoch != sh.epoch {
		se.epoch = sh.epoch
		se.resetContent()
		sh.touched = append(sh.touched, w)
	}
	return se
}

// sealNames snapshots the staging worker's symbol strings into the unit,
// so the committer resolves worker-local IDs from an immutable slice
// while the worker keeps interning into its live table. The strings
// themselves are immutable and shared; only the slice header array is
// copied.
func (sh *fastShard) sealNames(names *intern.Table) { sh.names = names.Names() }

// reset prepares a committed unit for reuse, keeping allocated storage.
// Per-slot state resets lazily: bumping the epoch invalidates every
// shardElem at once and slot() re-initializes on first touch.
func (sh *fastShard) reset() {
	sh.epoch++
	sh.touched = sh.touched[:0]
	sh.documents = 0
	sh.names = nil
	sh.bytes = 0
}

// textLen returns how many text samples the shard has staged for w.
func (sh *fastShard) textLen(w int32) int {
	if int(w) < len(sh.perElem) {
		if se := sh.perElem[w]; se != nil && se.epoch == sh.epoch {
			return len(se.texts)
		}
	}
	return 0
}

// beginShard switches the ingester into shard-staging mode: successful
// documents fold into sh instead of committing into an Extraction.
func (f *fastIngester) beginShard(sh *fastShard) { f.shard = sh }

// endShard leaves shard-staging mode.
func (f *fastIngester) endShard() { f.shard = nil }

// commitToShard folds one successfully decoded document's staged
// observations into the worker's shard stage. Everything is already in
// the worker's symbol space, so this is pure ID and counter work — no
// strings, no target maps — and a rejected document never reaches it.
// The staged-byte estimate it maintains is what the pipelined driver's
// afterDoc hook consults to decide when to flush a sub-shard unit.
func (f *fastIngester) commitToShard(sh *fastShard) {
	for _, w := range f.touched {
		st := f.elems[w]
		se := sh.slot(w)
		if len(st.ends) > 0 {
			start := 0
			for _, end := range st.ends {
				se.ms.AddIDs(st.arena[start:end], 1)
				start = end
			}
			sh.bytes += 4*len(st.arena) + 16*len(st.ends)
		}
		if st.hasText {
			se.hasText = true
		}
		if st.textOverflow {
			se.textOverflow = true
		}
		for _, t := range st.texts {
			if len(se.texts) >= maxTextSamples {
				se.textOverflow = true
				break
			}
			se.texts = append(se.texts, t)
			sh.bytes += len(t) + 16
		}
		for _, a := range st.attsTouched {
			se.foldAttr(a, sh.epoch)
			sh.bytes += 32
			for _, vc := range a.vals {
				sh.bytes += len(vc.v) + 24
			}
		}
		sh.bytes += 48
	}
	for _, w := range f.rootBuf {
		sh.slot(w).roots++
	}
	sh.documents++
}

// foldAttr accumulates one document's staged attribute statistic into the
// shard stage, preserving first-seen value order so the corpus commit is
// deterministic even when the distinct-value cap truncates. epoch is the
// owning fastShard's reuse generation: a stage last touched by a previous
// tenant of a recycled arena is reset on first sight.
func (se *shardElem) foldAttr(a *attStage, epoch int64) {
	if se.atts == nil {
		se.atts = map[string]*attStage{}
	}
	d := se.atts[a.name]
	if d == nil {
		d = &attStage{name: a.name, epoch: epoch - 1, idx: map[string]int{}}
		se.atts[a.name] = d
	}
	if d.epoch != epoch {
		d.epoch = epoch
		d.present = 0
		d.overflow = false
		clear(d.idx)
		d.vals = d.vals[:0]
		se.attList = append(se.attList, d)
	}
	d.present += a.present
	if a.overflow {
		d.overflow = true
	}
	for _, vc := range a.vals {
		if slot, ok := d.idx[vc.v]; ok {
			d.vals[slot].n += vc.n
			continue
		}
		if len(d.vals) >= maxAttValues {
			d.overflow = true
			continue
		}
		d.idx[vc.v] = len(d.vals)
		d.vals = append(d.vals, valCount{v: vc.v, n: vc.n})
	}
}

// The fold of a sealed fastShard into the corpus extraction lives with
// the pipeline committer (commitFastShard in pipeline.go): commit state
// is owned by the committer goroutine, keyed by the sealed name
// snapshot, so workers and committer never share mutable state.
