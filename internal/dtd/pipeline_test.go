package dtd

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"dtdinfer/internal/faultinject"
)

// withFlushBytes lowers the flush budget so every test shard splits into
// many sub-shard units, and restores it afterwards. Tests using it must
// not run in parallel (the budget is a package variable).
func withFlushBytes(t *testing.T, n int) {
	t.Helper()
	old := shardFlushBytes
	shardFlushBytes = n
	t.Cleanup(func() { shardFlushBytes = old })
}

// TestPipelineFlushUnitSplittingByteIdentity forces sub-shard flush units
// (a tiny byte budget makes nearly every document seal a unit) and pins
// the core invariant: splitting a shard into many units is invisible in
// the result — byte-identical extraction, identical report.
func TestPipelineFlushUnitSplittingByteIdentity(t *testing.T) {
	withFlushBytes(t, 64)
	docs := genDocs(31, 150)
	seq := NewExtraction()
	seqReport, err := seq.AddDocs(docList(docs), nil, SkipAndRecord)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par := NewExtraction()
		parReport, err := par.AddDocsParallel(docList(docs), workers, nil, SkipAndRecord)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: extraction differs from sequential", workers)
		}
		if got, want := reportString(parReport), reportString(seqReport); got != want {
			t.Errorf("workers=%d: report = %q, want %q", workers, got, want)
		}
		p := parReport.Pipeline
		if p == nil {
			t.Fatalf("workers=%d: no pipeline stats", workers)
		}
		if p.FlushUnits <= p.Shards {
			t.Errorf("workers=%d: %d flush units for %d shards, want splitting", workers, p.FlushUnits, p.Shards)
		}
	}
}

// TestPipelineArenaReuseSingleWorker drives runPipeline with one worker
// (the public API short-circuits workers==1 to the sequential path, so
// the engine is called directly) and a tiny flush budget: the worker must
// exhaust its in-flight tokens, block on the committer, and then recycle
// a committed arena — deterministically, because nobody else can drain
// the free list. Also pins pipelined byte-identity at workers=1.
func TestPipelineArenaReuseSingleWorker(t *testing.T) {
	withFlushBytes(t, 64)
	docs := genDocs(7, 80)
	seq := NewExtraction()
	if _, err := seq.AddDocs(docList(docs), nil, SkipAndRecord); err != nil {
		t.Fatal(err)
	}
	par := NewExtraction()
	list := docList(docs)
	bounds := shardBounds(list, 4)
	report, err := par.runPipeline(context.Background(), list, bounds, 1, nil, SkipAndRecord)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("extraction differs from sequential")
	}
	p := report.Pipeline
	if p.ArenaReuses == 0 {
		t.Errorf("no arena reuse across %d flush units", p.FlushUnits)
	}
	if p.FlushUnits <= p.Shards {
		t.Errorf("%d flush units for %d shards, want splitting", p.FlushUnits, p.Shards)
	}
}

// TestPipelineCommitFaultLeavesCorpusUntouched arms a fault at the
// pipeline.commit hook for a mid-pipeline shard: shards before it have
// already folded when the fault fires, yet the corpus — pre-populated, so
// "untouched" means more than "still empty" — must come back exactly as
// it was. The armed fault routes the committer into a staging extraction
// that is discarded on the abort.
func TestPipelineCommitFaultLeavesCorpusUntouched(t *testing.T) {
	defer faultinject.Reset()
	x := NewExtraction()
	if _, err := x.AddDocs(docList(genDocs(3, 10)), nil, FailFast); err != nil {
		t.Fatal(err)
	}
	before := snapshot(x)
	boom := errors.New("injected commit failure")
	faultinject.Set("pipeline.commit", "2", faultinject.Fault{Err: boom})
	report, err := x.AddDocsParallel(docList(genDocs(13, 60)), 3, nil, SkipAndRecord)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if got := snapshot(x); got != before {
		t.Errorf("aborted commit mutated the corpus:\n  before %s\n  after  %s", before, got)
	}
	if report == nil || report.Pipeline == nil {
		t.Fatal("aborted run returned no pipeline report")
	}
}

// TestPipelineCancelWithUnitsInCommitChannel is the satellite-3 contract:
// cancellation arriving while sealed units sit in the commit channel must
// leave the extraction untouched, under both decoders. A Delay fault on
// pipeline.commit stalls the committer so units demonstrably queue up
// behind it when the cancellation lands.
func TestPipelineCancelWithUnitsInCommitChannel(t *testing.T) {
	for _, decoder := range []DecoderKind{DecoderFast, DecoderStd} {
		t.Run(decoder.String(), func(t *testing.T) {
			defer faultinject.Reset()
			opts := &IngestOptions{Decoder: decoder}
			x := NewExtraction()
			if _, err := x.AddDocs(docList(genDocs(17, 8)), opts, FailFast); err != nil {
				t.Fatal(err)
			}
			before := snapshot(x)
			faultinject.Set("pipeline.commit", "", faultinject.Fault{Delay: 50 * time.Millisecond})
			docs := docList(genDocs(19, 120))
			err := runCancelled(t, func(ctx context.Context) error {
				_, err := x.AddDocsParallelContext(ctx, docs, 4, opts, SkipAndRecord)
				return err
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if got := snapshot(x); got != before {
				t.Errorf("cancelled mid-commit mutated the corpus:\n  before %s\n  after  %s", before, got)
			}
		})
	}
}

// TestPipelineCancellableContextByteIdentical runs the staging path (a
// cancellable context that is never cancelled) to completion: adopting
// the staging extraction must be byte-identical to sequential ingestion,
// and merging it into a pre-populated corpus must match sequential
// ingestion into the same corpus.
func TestPipelineCancellableContextByteIdentical(t *testing.T) {
	for _, decoder := range []DecoderKind{DecoderFast, DecoderStd} {
		t.Run(decoder.String(), func(t *testing.T) {
			opts := &IngestOptions{Decoder: decoder}
			docs := genDocs(41, 120)
			seq := NewExtraction()
			seqReport, err := seq.AddDocs(docList(docs), opts, SkipAndRecord)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				ctx, cancel := context.WithCancel(context.Background())
				par := NewExtraction()
				parReport, err := par.AddDocsParallelContext(ctx, docList(docs), workers, opts, SkipAndRecord)
				cancel()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("workers=%d: adopted staging differs from sequential", workers)
				}
				if got, want := reportString(parReport), reportString(seqReport); got != want {
					t.Errorf("workers=%d: report = %q, want %q", workers, got, want)
				}
			}

			// Merge path: same prefix on both sides, then the batch.
			prefix := genDocs(43, 15)
			seq2 := NewExtraction()
			if _, err := seq2.AddDocs(docList(prefix), opts, FailFast); err != nil {
				t.Fatal(err)
			}
			par2 := NewExtraction()
			if _, err := par2.AddDocs(docList(prefix), opts, FailFast); err != nil {
				t.Fatal(err)
			}
			if _, err := seq2.AddDocs(docList(docs), opts, SkipAndRecord); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if _, err := par2.AddDocsParallelContext(ctx, docList(docs), 4, opts, SkipAndRecord); err != nil {
				t.Fatal(err)
			}
			if snapshot(seq2) != snapshot(par2) {
				t.Errorf("merged staging differs from sequential:\n  seq %s\n  par %s", snapshot(seq2), snapshot(par2))
			}
		})
	}
}

// TestPipelineFailFastWithFlushUnits combines FailFast with sub-shard
// splitting: the committed prefix must still match sequential FailFast
// byte-for-byte even when the failing shard streamed several units before
// its failure surfaced.
func TestPipelineFailFastWithFlushUnits(t *testing.T) {
	withFlushBytes(t, 64)
	docs := genDocs(29, 90)
	docs[61] = "<unclosed>"
	seq := NewExtraction()
	seqReport, seqErr := seq.AddDocs(docList(docs), nil, FailFast)
	if seqErr == nil {
		t.Fatal("sequential FailFast did not fail")
	}
	for _, workers := range []int{2, 8} {
		par := NewExtraction()
		parReport, parErr := par.AddDocsParallel(docList(docs), workers, nil, FailFast)
		if parErr == nil {
			t.Fatalf("workers=%d: FailFast did not fail", workers)
		}
		if parErr.Error() != seqErr.Error() {
			t.Errorf("workers=%d: error = %q, want %q", workers, parErr, seqErr)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: committed prefix differs from sequential", workers)
		}
		if got, want := reportString(parReport), reportString(seqReport); got != want {
			t.Errorf("workers=%d: report = %q, want %q", workers, got, want)
		}
	}
}

// TestPipelineStatsRendered checks the -stats surface: a pipelined run's
// report renders the per-stage breakdown.
func TestPipelineStatsRendered(t *testing.T) {
	x := NewExtraction()
	report, err := x.AddDocsParallel(docList(genDocs(47, 40)), 4, nil, SkipAndRecord)
	if err != nil {
		t.Fatal(err)
	}
	s := report.String()
	for _, want := range []string{"pipeline:", "workers: decode", "committer: commit"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
	if report.Pipeline.Workers != 4 {
		t.Errorf("Workers = %d, want 4", report.Pipeline.Workers)
	}
	if report.Pipeline.FlushUnits < report.Pipeline.Shards {
		t.Errorf("FlushUnits = %d < Shards = %d", report.Pipeline.FlushUnits, report.Pipeline.Shards)
	}
}
