package dtd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// endlessXML streams a well-formed document prefix that never ends:
// <r> followed by <a></a> elements forever. Only cancellation can stop a
// decode loop reading from it.
type endlessXML struct {
	buf     []byte
	started bool
}

func (e *endlessXML) Read(p []byte) (int, error) {
	if !e.started {
		e.started = true
		e.buf = append(e.buf, "<r>"...)
	}
	for len(e.buf) < len(p) {
		e.buf = append(e.buf, "<a></a>"...)
	}
	n := copy(p, e.buf)
	e.buf = e.buf[n:]
	return n, nil
}

// The unchanged-ness checks reuse snapshot from ingest_test.go, which
// renders every observable field of an extraction deterministically.

// settleGoroutines waits for the goroutine count to drop back to at most
// base, tolerating runtime background goroutines that may come and go.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d > %d at start", runtime.NumGoroutine(), base)
}

// runCancelled runs fn with a context cancelled shortly after the call
// starts, and fails the test unless fn returns within a generous bound.
func runCancelled(t *testing.T, fn func(ctx context.Context) error) error {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- fn(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled ingestion did not return promptly")
		return nil
	}
}

func TestAddDocsParallelContextCancelPrompt(t *testing.T) {
	base := runtime.NumGoroutine()
	x := NewExtraction()
	before := snapshot(x)
	// Every worker gets an endless document so cancellation is the only
	// way out of every decode loop.
	docs := make([]Doc, 8)
	for i := range docs {
		docs[i] = Doc{Label: fmt.Sprintf("endless %d", i), R: &endlessXML{}}
	}
	err := runCancelled(t, func(ctx context.Context) error {
		_, err := x.AddDocsParallelContext(ctx, docs, 4, nil, SkipAndRecord)
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := snapshot(x); got != before {
		t.Errorf("cancelled ingestion mutated the corpus: %s -> %s", before, got)
	}
	settleGoroutines(t, base)
}

func TestAddDocsContextCancelSequential(t *testing.T) {
	base := runtime.NumGoroutine()
	x := NewExtraction()
	before := snapshot(x)
	docs := []Doc{{Label: "endless", R: &endlessXML{}}}
	err := runCancelled(t, func(ctx context.Context) error {
		_, err := x.AddDocsContext(ctx, docs, nil, FailFast)
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := snapshot(x); got != before {
		t.Errorf("cancelled ingestion mutated the corpus: %s -> %s", before, got)
	}
	settleGoroutines(t, base)
}

func TestAddDocsContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := NewExtraction()
	good := strings.NewReader("<r><a></a></r>")
	report, err := x.AddDocsContext(ctx, []Doc{{Label: "good", R: good}}, nil, FailFast)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if report.Documents != 0 || report.Accepted != 0 {
		t.Errorf("pre-cancelled batch recorded work: %+v", report)
	}
	if x.Documents != 0 || len(x.Sequences) != 0 {
		t.Error("pre-cancelled batch mutated the corpus")
	}
	// The document reader must not have been consumed either.
	if good.Len() == 0 {
		t.Error("pre-cancelled batch read a document")
	}
}

// TestAddDocsParallelContextCancelMidBatch cancels while some finite
// documents have already decoded: the corpus must still be untouched —
// cancellation is batch-atomic, not prefix-committing.
func TestAddDocsParallelContextCancelMidBatch(t *testing.T) {
	x := NewExtraction()
	docs := []Doc{
		{Label: "good 0", R: strings.NewReader("<r><a></a></r>")},
		{Label: "good 1", R: strings.NewReader("<r><a></a></r>")},
		{Label: "endless", R: &endlessXML{}},
		{Label: "good 2", R: strings.NewReader("<r><a></a></r>")},
	}
	err := runCancelled(t, func(ctx context.Context) error {
		_, err := x.AddDocsParallelContext(ctx, docs, 2, nil, SkipAndRecord)
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if x.Documents != 0 || len(x.Sequences) != 0 {
		t.Errorf("cancelled batch committed a partial prefix: docs=%d seqs=%d", x.Documents, len(x.Sequences))
	}
}

// TestAddDocsContextUncancelled pins the compatibility contract: with a
// background context the Context variants behave exactly like AddDocs —
// same report, same corpus.
func TestAddDocsContextUncancelled(t *testing.T) {
	mk := func() []Doc {
		return []Doc{
			{Label: "good", R: strings.NewReader("<r><a></a><b></b></r>")},
			{Label: "bad", R: strings.NewReader("<r><unclosed>")},
			{Label: "good 2", R: strings.NewReader("<r><a></a></r>")},
		}
	}
	xa := NewExtraction()
	ra, ea := xa.AddDocs(mk(), nil, SkipAndRecord)
	xb := NewExtraction()
	rb, eb := xb.AddDocsContext(context.Background(), mk(), nil, SkipAndRecord)
	if (ea == nil) != (eb == nil) || ra.Accepted != rb.Accepted || ra.Rejected != rb.Rejected {
		t.Errorf("context variant diverged: %+v/%v vs %+v/%v", ra, ea, rb, eb)
	}
	if snapshot(xa) != snapshot(xb) {
		t.Errorf("corpus diverged: %s vs %s", snapshot(xa), snapshot(xb))
	}
}
