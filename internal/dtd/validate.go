package dtd

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"dtdinfer/internal/automata"
)

// Validator checks XML documents against a DTD, compiling each content
// model into a DFA once. Attribute declarations are enforced too: required
// attributes, enumeration membership, document-wide ID uniqueness, and
// IDREF resolution (every IDREF value must match some ID in the document).
type Validator struct {
	dtd  *DTD
	dfas map[string]*automata.DFA
}

// NewValidator compiles the DTD's content models.
func NewValidator(d *DTD) *Validator {
	v := &Validator{dtd: d, dfas: map[string]*automata.DFA{}}
	for name, e := range d.Elements {
		if e.Type == Children {
			v.dfas[name] = automata.FromExpr(e.Model)
		}
	}
	return v
}

// Violation describes one validation failure.
type Violation struct {
	// Element is the offending element name.
	Element string
	// Offset is the decoder's input offset of the failure — a byte
	// position in the document, not a line number.
	Offset int64
	// Reason describes the failure.
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("element %s at offset %d: %s", v.Element, v.Offset, v.Reason)
}

// idref records one IDREF occurrence for the end-of-document resolution
// check (IDs may legally be declared after the references to them).
type idref struct {
	element   string
	attribute string
	value     string
	offset    int64
}

// Validate parses one document and returns all violations (nil when the
// document is valid). A document whose root differs from the DTD's root is
// a violation; undeclared elements are violations on their parent.
func (v *Validator) Validate(r io.Reader) ([]Violation, error) {
	return v.ValidateOptions(r, nil)
}

// ValidateOptions is Validate with resource caps on the decoder (depth,
// token and byte limits from IngestOptions; MaxNames is not checked since
// validation allocates per declared element, not per observed name). A
// violated cap aborts with a *LimitError, matchable with errors.Is
// against ErrLimit.
func (v *Validator) ValidateOptions(r io.Reader, opts *IngestOptions) ([]Violation, error) {
	var o IngestOptions
	if opts != nil {
		o = *opts
	}
	mr := &meteredReader{r: r, max: o.MaxBytes}
	dec := xml.NewDecoder(mr)
	type frame struct {
		name     string
		children []string
		text     bool
	}
	var stack []frame
	var out []Violation
	var tokens int64
	seenIDs := map[string]bool{}
	var pendingRefs []idref
	report := func(name, reason string) {
		out = append(out, Violation{Element: name, Offset: dec.InputOffset(), Reason: reason})
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			var le *LimitError
			if errors.As(err, &le) {
				return out, le
			}
			return out, fmt.Errorf("dtd: parsing XML: %w", err)
		}
		tokens++
		if o.MaxTokens > 0 && tokens > o.MaxTokens {
			return out, &LimitError{Limit: "tokens", Max: o.MaxTokens, Offset: dec.InputOffset()}
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if o.MaxDepth > 0 && len(stack) >= o.MaxDepth {
				return out, &LimitError{Limit: "depth", Max: int64(o.MaxDepth), Offset: dec.InputOffset()}
			}
			name := t.Name.Local
			if len(stack) == 0 && name != v.dtd.Root {
				report(name, fmt.Sprintf("root is %s, DTD expects %s", name, v.dtd.Root))
			}
			if _, ok := v.dtd.Elements[name]; !ok {
				report(name, "element not declared in DTD")
			}
			pendingRefs = v.checkAttributes(name, t.Attr, seenIDs, pendingRefs, dec.InputOffset(), report)
			if len(stack) > 0 {
				stack[len(stack)-1].children = append(stack[len(stack)-1].children, name)
			}
			stack = append(stack, frame{name: name})
		case xml.EndElement:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			v.check(top.name, top.children, top.text, report)
		case xml.CharData:
			if len(stack) > 0 && strings.TrimSpace(string(t)) != "" {
				stack[len(stack)-1].text = true
			}
		}
	}
	if len(stack) != 0 {
		return out, fmt.Errorf("dtd: unbalanced XML document")
	}
	// IDREFs resolve against the full document's ID set.
	for _, ref := range pendingRefs {
		if !seenIDs[ref.value] {
			out = append(out, Violation{
				Element: ref.element,
				Offset:  ref.offset,
				Reason: fmt.Sprintf("IDREF attribute %s value %q does not match any ID in the document",
					ref.attribute, ref.value),
			})
		}
	}
	return out, nil
}

func (v *Validator) check(name string, children []string, text bool, report func(name, reason string)) {
	e := v.dtd.Elements[name]
	if e == nil {
		return // already reported at the start tag
	}
	switch e.Type {
	case Any:
	case Empty:
		if len(children) > 0 || text {
			report(name, "EMPTY element has content")
		}
	case PCData:
		if len(children) > 0 {
			report(name, fmt.Sprintf("(#PCDATA) element has child elements %v", children))
		}
	case Mixed:
		allowed := map[string]bool{}
		for _, n := range e.MixedNames {
			allowed[n] = true
		}
		for _, c := range children {
			if !allowed[c] {
				report(name, fmt.Sprintf("child %s not allowed in mixed content", c))
			}
		}
	case Children:
		if text {
			report(name, "character data not allowed in element content")
		}
		if !v.dfas[name].Member(children) {
			report(name, fmt.Sprintf("children %v do not match (%s)",
				children, e.Model.DTDString()))
		}
	}
}

// checkAttributes validates one start tag's attributes: undeclared names,
// missing required attributes, enumeration membership, and ID uniqueness
// within the document. IDREF values cannot be judged until the whole
// document's IDs are known, so they are appended to pendingRefs and the
// updated slice is returned for resolution at end of document.
func (v *Validator) checkAttributes(name string, attrs []xml.Attr,
	seenIDs map[string]bool, pendingRefs []idref, offset int64,
	report func(name, reason string)) []idref {
	e := v.dtd.Elements[name]
	if e == nil {
		return pendingRefs
	}
	declared := map[string]*Attribute{}
	for _, a := range e.Attributes {
		declared[a.Name] = a
	}
	present := map[string]bool{}
	for _, attr := range attrs {
		an := attr.Name.Local
		if attr.Name.Space == "xmlns" || an == "xmlns" {
			continue
		}
		present[an] = true
		decl := declared[an]
		if decl == nil {
			report(name, fmt.Sprintf("attribute %s not declared", an))
			continue
		}
		switch decl.Type {
		case Enumerated:
			ok := false
			for _, val := range decl.Values {
				if attr.Value == val {
					ok = true
				}
			}
			if !ok {
				report(name, fmt.Sprintf("attribute %s value %q not in enumeration %v",
					an, attr.Value, decl.Values))
			}
		case ID:
			if seenIDs[attr.Value] {
				report(name, fmt.Sprintf("duplicate ID %q", attr.Value))
			}
			seenIDs[attr.Value] = true
		case IDREF:
			pendingRefs = append(pendingRefs, idref{
				element: name, attribute: an, value: attr.Value, offset: offset,
			})
		}
	}
	for _, a := range e.Attributes {
		if a.Required && !present[a.Name] {
			report(name, fmt.Sprintf("required attribute %s missing", a.Name))
		}
	}
	return pendingRefs
}

// ValidDocument is a convenience wrapper reporting only whether the
// document is valid.
func (v *Validator) ValidDocument(doc string) bool {
	vs, err := v.Validate(strings.NewReader(doc))
	return err == nil && len(vs) == 0
}
