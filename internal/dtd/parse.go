package dtd

import (
	"fmt"
	"sort"
	"strings"

	"dtdinfer/internal/regex"
)

// Parse reads a DTD from its textual form: a sequence of <!ELEMENT>
// declarations, optionally wrapped in <!DOCTYPE root [ ... ]>. Attribute
// lists, entities, comments and processing instructions are skipped. When
// no DOCTYPE wrapper names the root, the first declared element is used.
func Parse(src string) (*DTD, error) {
	root := ""
	rest := src
	if i := strings.Index(rest, "<!DOCTYPE"); i >= 0 {
		j := i + len("<!DOCTYPE")
		for j < len(rest) && (rest[j] == ' ' || rest[j] == '\t' || rest[j] == '\n' || rest[j] == '\r') {
			j++
		}
		k := j
		for k < len(rest) && !strings.ContainsRune(" \t\n\r[<>", rune(rest[k])) {
			k++
		}
		root = rest[j:k]
	}
	d := New(root)
	for {
		ie := strings.Index(rest, "<!ELEMENT")
		ia := strings.Index(rest, "<!ATTLIST")
		if ie < 0 && ia < 0 {
			break
		}
		isAtt := ia >= 0 && (ie < 0 || ia < ie)
		i := ie
		if isAtt {
			i = ia
		}
		rest = rest[i+len("<!ELEMENT"):] // both markers have equal length
		j := strings.IndexByte(rest, '>')
		if j < 0 {
			return nil, fmt.Errorf("dtd: unterminated declaration in %q", rest)
		}
		decl := strings.TrimSpace(rest[:j])
		rest = rest[j+1:]
		if isAtt {
			if err := parseAttlist(d, decl); err != nil {
				return nil, err
			}
			continue
		}
		e, err := parseElement(decl)
		if err != nil {
			return nil, err
		}
		d.Declare(e)
	}
	if len(d.order) == 0 {
		return nil, fmt.Errorf("dtd: no <!ELEMENT> declarations found")
	}
	if d.Root == "" {
		d.Root = d.order[0]
	}
	return d, nil
}

// MustParse is Parse that panics on error, for fixed tables in tests and
// experiments.
func MustParse(src string) *DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

// validDeclName reports whether s can serve as an element or attribute
// name in a declaration: non-empty and free of whitespace and of the
// structural characters that would make the serialized form ambiguous to
// re-parse (markup delimiters, content-model syntax, quotes).
func validDeclName(s string) bool {
	return s != "" && !strings.ContainsAny(s, "<>[]()|,?*+{}&#\"'= \t\n\r")
}

func parseElement(decl string) (*Element, error) {
	sp := strings.IndexFunc(decl, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' })
	if sp < 0 {
		return nil, fmt.Errorf("dtd: malformed declaration %q", decl)
	}
	name := decl[:sp]
	if !validDeclName(name) {
		return nil, fmt.Errorf("dtd: invalid element name %q", name)
	}
	content := strings.TrimSpace(decl[sp:])
	switch {
	case content == "EMPTY":
		return &Element{Name: name, Type: Empty}, nil
	case content == "ANY":
		return &Element{Name: name, Type: Any}, nil
	case content == "(#PCDATA)" || content == "(#PCDATA)*":
		return &Element{Name: name, Type: PCData}, nil
	case strings.HasPrefix(content, "(#PCDATA"):
		inner := strings.TrimPrefix(content, "(#PCDATA")
		inner = strings.TrimSuffix(strings.TrimSuffix(inner, "*"), ")")
		var names []string
		for _, n := range strings.Split(inner, "|") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !validDeclName(n) {
				return nil, fmt.Errorf("dtd: invalid name %q in mixed content of %s", n, name)
			}
			names = append(names, n)
		}
		sort.Strings(names)
		return &Element{Name: name, Type: Mixed, MixedNames: names}, nil
	default:
		model, err := regex.Parse(content)
		if err != nil {
			return nil, fmt.Errorf("dtd: element %s: %w", name, err)
		}
		return &Element{Name: name, Type: Children, Model: model}, nil
	}
}

// parseAttlist parses the body of an <!ATTLIST element (name type default)+>
// declaration. Attribute defaults other than #REQUIRED/#IMPLIED/#FIXED are
// recorded as implied; #FIXED values are skipped.
func parseAttlist(d *DTD, decl string) error {
	fields := tokenizeAttlist(decl)
	if len(fields) < 1 {
		return fmt.Errorf("dtd: malformed <!ATTLIST %s>", decl)
	}
	element := fields[0]
	if !validDeclName(element) {
		return fmt.Errorf("dtd: invalid element name %q in <!ATTLIST>", element)
	}
	rest := fields[1:]
	for len(rest) > 0 {
		if len(rest) < 3 {
			return fmt.Errorf("dtd: malformed attribute definition in <!ATTLIST %s>", decl)
		}
		if !validDeclName(rest[0]) {
			return fmt.Errorf("dtd: invalid attribute name %q in <!ATTLIST %s>", rest[0], element)
		}
		a := &Attribute{Name: rest[0]}
		typ := rest[1]
		switch {
		case typ == "CDATA":
			a.Type = CDATA
		case typ == "ID":
			a.Type = ID
		case typ == "IDREF":
			a.Type = IDREF
		case typ == "NMTOKEN":
			a.Type = NMTOKEN
		case strings.HasPrefix(typ, "("):
			a.Type = Enumerated
			inner := strings.TrimSuffix(strings.TrimPrefix(typ, "("), ")")
			for _, v := range strings.Split(inner, "|") {
				if v = strings.TrimSpace(v); v != "" {
					a.Values = append(a.Values, v)
				}
			}
			sort.Strings(a.Values)
		default:
			a.Type = CDATA // NMTOKENS, ENTITY, ... degrade to CDATA
		}
		use := rest[2]
		rest = rest[3:]
		switch use {
		case "#REQUIRED":
			a.Required = true
		case "#IMPLIED":
		case "#FIXED":
			if len(rest) > 0 {
				rest = rest[1:] // skip the fixed value
			}
		default:
			// A bare default value: the attribute is optional.
		}
		d.DeclareAttribute(element, a)
	}
	return nil
}

// tokenizeAttlist splits an ATTLIST body into fields, keeping
// parenthesized enumerations and quoted defaults as single tokens.
func tokenizeAttlist(decl string) []string {
	var out []string
	i := 0
	for i < len(decl) {
		switch {
		case decl[i] == ' ' || decl[i] == '\t' || decl[i] == '\n' || decl[i] == '\r':
			i++
		case decl[i] == '(':
			j := strings.IndexByte(decl[i:], ')')
			if j < 0 {
				out = append(out, decl[i:])
				return out
			}
			out = append(out, strings.Map(dropSpace, decl[i:i+j+1]))
			i += j + 1
		case decl[i] == '"' || decl[i] == '\'':
			q := decl[i]
			j := strings.IndexByte(decl[i+1:], q)
			if j < 0 {
				out = append(out, decl[i:])
				return out
			}
			out = append(out, decl[i+1:i+1+j])
			i += j + 2
		default:
			j := i
			for j < len(decl) && !strings.ContainsRune(" \t\n\r", rune(decl[j])) {
				j++
			}
			out = append(out, decl[i:j])
			i = j
		}
	}
	return out
}

func dropSpace(r rune) rune {
	if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
		return -1
	}
	return r
}
