package dtd

import (
	"reflect"
	"strings"
	"testing"
)

// TestMergePreservesMultiplicities: merging staged extractions must add
// counts for shared sequences, not lose or re-count them.
func TestMergePreservesMultiplicities(t *testing.T) {
	a := NewExtraction()
	a.AddSequences("e", [][]string{{"x"}, {"x"}, {"x", "y"}})
	b := NewExtraction()
	b.AddSequences("e", [][]string{{"x"}, {"z"}})
	a.Merge(b)
	s := a.Sequences["e"]
	if s.Total() != 5 || s.Unique() != 3 {
		t.Fatalf("total=%d unique=%d, want 5/3", s.Total(), s.Unique())
	}
	counts := map[string]int{}
	for i := 0; i < s.Unique(); i++ {
		counts[strings.Join(s.SeqStrings(i), " ")] = s.Count(i)
	}
	want := map[string]int{"x": 3, "x y": 1, "z": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("counts = %v, want %v", counts, want)
	}
}

// TestAddSequencesCountsDuplicates: injected duplicate strings must fold
// into multiplicities, visible through Total vs Unique.
func TestAddSequencesCountsDuplicates(t *testing.T) {
	x := NewExtraction()
	for i := 0; i < 100; i++ {
		x.AddSequences("e", [][]string{{"a", "b"}})
	}
	x.AddSequences("e", [][]string{{"b"}})
	s := x.Sequences["e"]
	if s.Total() != 101 || s.Unique() != 2 || s.Count(0) != 100 {
		t.Errorf("total=%d unique=%d count0=%d", s.Total(), s.Unique(), s.Count(0))
	}
}

// TestDuplicateDocumentsFoldIntoCounts: ingesting the same document twice
// must double every multiplicity but add no unique sequences.
func TestDuplicateDocumentsFoldIntoCounts(t *testing.T) {
	doc := `<r><a/><a/><b/></r>`
	x := NewExtraction()
	for i := 0; i < 3; i++ {
		if err := x.AddDocument(strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	r := x.Sequences["r"]
	if r.Unique() != 1 || r.Total() != 3 || r.Count(0) != 3 {
		t.Errorf("r: unique=%d total=%d", r.Unique(), r.Total())
	}
	if got := strings.Join(r.SeqStrings(0), " "); got != "a a b" {
		t.Errorf("sequence = %q", got)
	}
}

// TestParallelCountedIdenticalToSequential runs duplicate-heavy documents
// through the parallel path and demands the counted extractions be deeply
// equal to sequential ingestion — the counted analogue of the shard-commit
// determinism guarantee (run under -race in CI).
func TestParallelCountedIdenticalToSequential(t *testing.T) {
	docs := make([]string, 40)
	for i := range docs {
		// Three document shapes, so unique sequences repeat across shards
		// and every Merge exercises the count-addition path.
		switch i % 3 {
		case 0:
			docs[i] = `<r><a/><a/><b/></r>`
		case 1:
			docs[i] = `<r><a/><b/></r>`
		default:
			docs[i] = `<r><b/><c/></r>`
		}
	}
	seq := NewExtraction()
	if _, err := seq.AddDocs(docList(docs), nil, FailFast); err != nil {
		t.Fatal(err)
	}
	if got := seq.Sequences["r"].Unique(); got != 3 {
		t.Fatalf("unique r-sequences = %d, want 3", got)
	}
	for _, workers := range []int{2, 3, 8} {
		par := NewExtraction()
		if _, err := par.AddDocsParallel(docList(docs), workers, nil, FailFast); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: counted extraction differs from sequential:\n%s\nvs\n%s",
				workers, snapshot(seq), snapshot(par))
		}
	}
}
