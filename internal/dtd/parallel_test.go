package dtd

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// genDocs produces a deterministic synthetic corpus exercising sequences,
// text content, attributes and the text-sample cap (n > maxTextSamples).
func genDocs(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	docs := make([]string, n)
	for i := range docs {
		var b strings.Builder
		fmt.Fprintf(&b, `<root id="%d">`, i%7)
		for j := 0; j < 1+rng.Intn(6); j++ {
			el := names[rng.Intn(len(names))]
			fmt.Fprintf(&b, "<%s>", el)
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&b, "text-%d", rng.Intn(4))
			} else {
				fmt.Fprintf(&b, `<%s kind="k%d"/>`, names[rng.Intn(len(names))], rng.Intn(5))
			}
			fmt.Fprintf(&b, "</%s>", el)
		}
		b.WriteString("</root>")
		docs[i] = b.String()
	}
	return docs
}

func docList(docs []string) []Doc {
	out := make([]Doc, len(docs))
	for i, d := range docs {
		out[i] = Doc{Label: fmt.Sprintf("doc-%d", i), R: strings.NewReader(d)}
	}
	return out
}

// reportString renders a report including every error, for byte-level
// determinism comparison. The pipeline stage timings are stripped: they
// are wall-clock measurements, deliberately outside the deterministic
// contract the counters and error lists keep.
func reportString(r *IngestReport) string {
	c := *r
	c.Pipeline = nil
	return fmt.Sprintf("%s | errors=%d", c.String(), len(r.Errors))
}

func TestParallelExtractionIdenticalToSequential(t *testing.T) {
	docs := genDocs(11, 150)
	for _, decoder := range []DecoderKind{DecoderFast, DecoderStd} {
		t.Run(decoder.String(), func(t *testing.T) {
			opts := &IngestOptions{Decoder: decoder}
			seq := NewExtraction()
			seqReport, err := seq.AddDocs(docList(docs), opts, SkipAndRecord)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 2, 3, 8, 64} {
				par := NewExtraction()
				parReport, err := par.AddDocsParallel(docList(docs), workers, opts, SkipAndRecord)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("workers=%d: extraction differs from sequential", workers)
				}
				if got, want := reportString(parReport), reportString(seqReport); got != want {
					t.Errorf("workers=%d: report = %q, want %q", workers, got, want)
				}
			}
		})
	}
}

func TestParallelSkipAndRecordMatchesSequentialOnErrors(t *testing.T) {
	docs := genDocs(23, 80)
	for _, i := range []int{3, 17, 41, 79} {
		docs[i] = "<unclosed>"
	}
	seq := NewExtraction()
	seqReport, _ := seq.AddDocs(docList(docs), nil, SkipAndRecord)
	if seqReport.Rejected != 4 {
		t.Fatalf("sequential rejected %d, want 4", seqReport.Rejected)
	}
	for _, workers := range []int{2, 8} {
		par := NewExtraction()
		parReport, err := par.AddDocsParallel(docList(docs), workers, nil, SkipAndRecord)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: extraction differs from sequential", workers)
		}
		if got, want := reportString(parReport), reportString(seqReport); got != want {
			t.Errorf("workers=%d: report = %q, want %q", workers, got, want)
		}
		wantIdx := []int{3, 17, 41, 79}
		if len(parReport.Errors) != len(wantIdx) {
			t.Fatalf("workers=%d: %d errors, want %d", workers, len(parReport.Errors), len(wantIdx))
		}
		for k, e := range parReport.Errors {
			if e.Index != wantIdx[k] {
				t.Errorf("workers=%d: error %d has index %d, want %d", workers, k, e.Index, wantIdx[k])
			}
		}
	}
}

func TestParallelFailFastCommitsSequentialPrefix(t *testing.T) {
	docs := genDocs(5, 60)
	docs[37] = "<unclosed>"
	seq := NewExtraction()
	seqReport, seqErr := seq.AddDocs(docList(docs), nil, FailFast)
	if seqErr == nil {
		t.Fatal("sequential FailFast did not fail")
	}
	for _, workers := range []int{2, 8} {
		par := NewExtraction()
		parReport, parErr := par.AddDocsParallel(docList(docs), workers, nil, FailFast)
		if parErr == nil {
			t.Fatalf("workers=%d: FailFast did not fail", workers)
		}
		var de *DocumentError
		if !asDocumentError(parErr, &de) || de.Index != 37 {
			t.Fatalf("workers=%d: error = %v, want document error at 37", workers, parErr)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: committed prefix differs from sequential", workers)
		}
		if got, want := reportString(parReport), reportString(seqReport); got != want {
			t.Errorf("workers=%d: report = %q, want %q", workers, got, want)
		}
		if parErr.Error() != seqErr.Error() {
			t.Errorf("workers=%d: error = %q, want %q", workers, parErr, seqErr)
		}
	}
}

func asDocumentError(err error, out **DocumentError) bool {
	de, ok := err.(*DocumentError)
	if ok {
		*out = de
	}
	return ok
}

func TestAddDocumentsParallelLabelsByPosition(t *testing.T) {
	docs := []io.Reader{
		strings.NewReader("<a/>"),
		strings.NewReader("<bad"),
		strings.NewReader("<b/>"),
	}
	x := NewExtraction()
	report, err := x.AddDocumentsParallel(docs, 2, nil, SkipAndRecord)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Errors) != 1 {
		t.Fatalf("%d errors, want 1", len(report.Errors))
	}
	if e := report.Errors[0]; e.Index != 1 || e.Label != "document 1" {
		t.Errorf("error = index %d label %q, want index 1 label \"document 1\"", e.Index, e.Label)
	}
}
