// Package dtd provides the Document Type Definition substrate: the DTD
// model, a parser and serializer for <!ELEMENT> declarations, extraction of
// element content sequences from XML documents (the strings the inference
// algorithms learn from), and validation of documents against a DTD.
//
// A DTD is abstracted, as in Section 3 of the paper, as a mapping from
// element names to regular expressions over element names, plus a start
// symbol.
package dtd

import (
	"fmt"
	"sort"
	"strings"

	"dtdinfer/internal/regex"
)

// ContentType classifies an element declaration.
type ContentType int

const (
	// Children is a content model given by a regular expression.
	Children ContentType = iota
	// Empty is the EMPTY content model.
	Empty
	// Any is the ANY content model.
	Any
	// PCData is text-only content, (#PCDATA).
	PCData
	// Mixed is mixed content, (#PCDATA | a | b)*.
	Mixed
)

func (t ContentType) String() string {
	switch t {
	case Children:
		return "children"
	case Empty:
		return "EMPTY"
	case Any:
		return "ANY"
	case PCData:
		return "#PCDATA"
	case Mixed:
		return "mixed"
	}
	return fmt.Sprintf("ContentType(%d)", int(t))
}

// Element is one <!ELEMENT> declaration.
type Element struct {
	// Name is the element name.
	Name string
	// Type classifies the content model.
	Type ContentType
	// Model is the content regular expression for Type Children.
	Model *regex.Expr
	// MixedNames are the allowed child names for Type Mixed, sorted.
	MixedNames []string
	// Attributes are the element's attribute declarations, sorted by name.
	Attributes []*Attribute
}

// DTD is a set of element declarations with a designated root.
type DTD struct {
	// Root is the start symbol sd.
	Root string
	// Elements maps element names to their declarations.
	Elements map[string]*Element
	order    []string
}

// New returns an empty DTD with the given root element name.
func New(root string) *DTD {
	return &DTD{Root: root, Elements: map[string]*Element{}}
}

// Declare adds or replaces an element declaration, preserving first-
// declaration order for serialization.
func (d *DTD) Declare(e *Element) {
	if _, ok := d.Elements[e.Name]; !ok {
		d.order = append(d.order, e.Name)
	}
	d.Elements[e.Name] = e
}

// Names returns the declared element names in declaration order.
func (d *DTD) Names() []string {
	return append([]string{}, d.order...)
}

// Model returns the content expression of an element (nil when the element
// is undeclared or has no Children model).
func (d *DTD) Model(name string) *regex.Expr {
	e := d.Elements[name]
	if e == nil {
		return nil
	}
	return e.Model
}

// String serializes the DTD as <!DOCTYPE root [ ... ]> with one <!ELEMENT>
// declaration per line.
func (d *DTD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE %s [\n", d.Root)
	for _, name := range d.order {
		e := d.Elements[name]
		b.WriteString(e.String())
		b.WriteByte('\n')
		for _, a := range e.Attributes {
			fmt.Fprintf(&b, "<!ATTLIST %s %s>\n", name, a)
		}
	}
	b.WriteString("]>")
	return b.String()
}

// String serializes one declaration.
func (e *Element) String() string {
	switch e.Type {
	case Empty:
		return fmt.Sprintf("<!ELEMENT %s EMPTY>", e.Name)
	case Any:
		return fmt.Sprintf("<!ELEMENT %s ANY>", e.Name)
	case PCData:
		return fmt.Sprintf("<!ELEMENT %s (#PCDATA)>", e.Name)
	case Mixed:
		names := append([]string{}, e.MixedNames...)
		sort.Strings(names)
		return fmt.Sprintf("<!ELEMENT %s (#PCDATA|%s)*>", e.Name, strings.Join(names, "|"))
	default:
		return fmt.Sprintf("<!ELEMENT %s (%s)>", e.Name, e.Model.DTDString())
	}
}

// Equal reports whether two DTDs have the same root and syntactically equal
// declarations (content models up to commutativity of choices).
func (d *DTD) Equal(o *DTD) bool {
	if d.Root != o.Root || len(d.Elements) != len(o.Elements) {
		return false
	}
	for name, e := range d.Elements {
		oe := o.Elements[name]
		if oe == nil || e.Type != oe.Type {
			return false
		}
		switch e.Type {
		case Children:
			if !regex.EqualModuloUnionOrder(e.Model, oe.Model) {
				return false
			}
		case Mixed:
			if !equalStrings(e.MixedNames, oe.MixedNames) {
				return false
			}
		}
		if len(e.Attributes) != len(oe.Attributes) {
			return false
		}
		for i, a := range e.Attributes {
			oa := oe.Attributes[i]
			if a.Name != oa.Name || a.Type != oa.Type || a.Required != oa.Required ||
				!equalStrings(a.Values, oa.Values) {
				return false
			}
		}
	}
	return true
}

// equalStrings compares two slices element-wise: joining with a separator
// would conflate {"a|b"} with {"a","b"} for attribute values that contain
// the separator themselves.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
