package dtd

import (
	"fmt"
	"sort"
	"strings"

	"dtdinfer/internal/sample"
)

// Attribute inference extends the paper's element-content inference to
// <!ATTLIST> declarations, which any practical DTD inference tool needs.
// The heuristics mirror the spirit of the Section 9 datatype discussion:
//
//   - an attribute present on every occurrence of its element is
//     #REQUIRED, otherwise #IMPLIED;
//   - an attribute whose values are all distinct name tokens across a
//     sufficiently large sample is an ID;
//   - an attribute whose values all come from the ID values of some ID
//     attribute is an IDREF;
//   - a small set of repeating name-token values becomes an enumeration;
//   - everything else is CDATA.

// AttType classifies an attribute declaration.
type AttType int

const (
	// CDATA is unrestricted character data.
	CDATA AttType = iota
	// NMTOKEN restricts values to name tokens.
	NMTOKEN
	// Enumerated restricts values to a fixed set.
	Enumerated
	// ID declares a document-unique identifier.
	ID
	// IDREF declares a reference to an ID.
	IDREF
)

func (t AttType) String() string {
	switch t {
	case CDATA:
		return "CDATA"
	case NMTOKEN:
		return "NMTOKEN"
	case Enumerated:
		return "enumeration"
	case ID:
		return "ID"
	case IDREF:
		return "IDREF"
	}
	return fmt.Sprintf("AttType(%d)", int(t))
}

// Attribute is one attribute declaration of an element.
type Attribute struct {
	// Name is the attribute name.
	Name string
	// Type classifies the values.
	Type AttType
	// Values is the sorted enumeration for Type Enumerated.
	Values []string
	// Required marks #REQUIRED (false renders #IMPLIED).
	Required bool
}

// String renders the attribute definition part of an <!ATTLIST>.
func (a *Attribute) String() string {
	typ := a.Type.String()
	if a.Type == Enumerated {
		typ = "(" + strings.Join(a.Values, "|") + ")"
	}
	use := "#IMPLIED"
	if a.Required {
		use = "#REQUIRED"
	}
	return fmt.Sprintf("%s %s %s", a.Name, typ, use)
}

// DeclareAttribute adds (or replaces) an attribute declaration on an
// element already declared in the DTD.
func (d *DTD) DeclareAttribute(element string, a *Attribute) {
	e := d.Elements[element]
	if e == nil {
		e = &Element{Name: element, Type: Empty}
		d.Declare(e)
	}
	for i, old := range e.Attributes {
		if old.Name == a.Name {
			e.Attributes[i] = a
			return
		}
	}
	e.Attributes = append(e.Attributes, a)
	sort.Slice(e.Attributes, func(i, j int) bool {
		return e.Attributes[i].Name < e.Attributes[j].Name
	})
}

// attStats accumulates per-element, per-attribute observations.
type attStats struct {
	// present counts occurrences of the attribute.
	present int
	// values holds distinct observed values (capped) and their counts.
	values map[string]int
	// overflow marks that the distinct-value cap was hit.
	overflow bool
}

const (
	maxAttValues = 256
	// minIDSample is the minimum number of observations before an
	// all-distinct attribute is promoted to ID.
	minIDSample = 3
	// maxEnumValues bounds enumeration size.
	maxEnumValues = 8
)

// Attribute-statistics fingerprints: the <!ATTLIST> sibling of the
// per-element sample fingerprints (sample.Multiset), letting cached
// inference passes skip attribute inference entirely when nothing
// attribute-relevant changed. Because attribute classification is
// cross-element — IDREF detection consults every element's ID value
// pools, and #REQUIRED compares presence counts against the element's
// occurrence total — the cached unit is the whole <!ATTLIST> pass under
// one global fingerprint, not a per-element entry.
//
// The per-element fingerprint is a pure function of the accumulated
// state: for each attribute, present·H_p + overflow·H_ov + Σ_v
// count(v)·H_v over its kept values, summed mod 2^64. Every mutation
// path (recordAttribute, mergeAttStats, commitAttr) adds exactly the
// delta it applies, so extractions reaching equal attribute state
// through different merge histories agree — the same remap-stability
// argument the sequence fingerprints make — and a snapshot decoder can
// recompute the fingerprint from the restored stats.
const (
	attPresentSeed  = 0x71c9d3a4b8e6f215
	attOverflowSeed = 0x2b7e151628aed2a6
	attValueSeed    = 0x452821e638d01377
)

// attNameHashes returns the three derived hashes of one attribute name:
// the presence, overflow and value-combining bases. One string hash,
// three cheap mixes.
func attNameHashes(att string) (hp, hov, hval uint64) {
	base := sample.HashString(att)
	return sample.Mix64(base ^ attPresentSeed), sample.Mix64(base ^ attOverflowSeed), base ^ attValueSeed
}

// attValueHash combines an attribute's value-base hash with one value.
func attValueHash(hval uint64, v string) uint64 {
	return sample.Mix64(hval ^ sample.HashString(v))
}

// attFpAdd folds a state delta into an element's attribute fingerprint.
func (x *Extraction) attFpAdd(elem string, h uint64, n int) {
	if x.attFp == nil {
		x.attFp = map[string]uint64{}
	}
	x.attFp[elem] += h * uint64(n)
}

// attStatsFingerprint computes one attribute's fingerprint contribution
// from its accumulated state — the closed form of the incremental
// maintenance, used by the snapshot decoder to rebuild fingerprints
// from restored statistics.
func attStatsFingerprint(att string, st *attStats) uint64 {
	hp, hov, hval := attNameHashes(att)
	fp := hp * uint64(st.present)
	if st.overflow {
		fp += hov
	}
	for v, n := range st.values {
		fp += attValueHash(hval, v) * uint64(n)
	}
	return fp
}

// attGlobalFp condenses everything the <!ATTLIST> pass can observe into
// one value: each attributed element contributes a mix of its name
// hash, its attribute-state fingerprint, and its occurrence total (the
// #REQUIRED denominator). Elements with no attribute statistics cannot
// influence attribute inference and are excluded, so ingesting
// attribute-free documents does not invalidate the cache. O(#attributed
// elements) per inference pass.
func (x *Extraction) attGlobalFp() uint64 {
	var g uint64
	for elem := range x.Attributes {
		total := 0
		if s := x.Sequences[elem]; s != nil {
			total = s.Total()
		}
		term := sample.HashString(elem)
		term = sample.Mix64(term ^ x.attFp[elem])
		term = sample.Mix64(term ^ uint64(total))
		g += term
	}
	return g
}

// attDecl is one replayable <!ATTLIST> declaration.
type attDecl struct {
	elem string
	a    *Attribute
}

// attListCache memoizes one complete <!ATTLIST> pass: the global
// attribute fingerprint it was computed under and the declarations it
// produced, in declaration order. Attributes replay pointer-shared —
// DTD values are immutable by convention, exactly like cached content
// models.
type attListCache struct {
	fp    uint64
	decls []attDecl
}

// inferAttributesCached is inferAttributes behind the global attribute
// fingerprint: when the fingerprint matches the cached pass, the
// declarations replay without re-running classification (no ID-pool
// rebuild, no per-value scans). It reports whether the pass was
// replayed, for InferStats observability.
func (x *Extraction) inferAttributesCached(d *DTD) bool {
	fp := x.attGlobalFp()
	if c := x.attCache; c != nil && c.fp == fp {
		for _, de := range c.decls {
			if d.Elements[de.elem] == nil {
				continue // same defensive skip as inferAttributes
			}
			d.DeclareAttribute(de.elem, de.a)
		}
		return true
	}
	x.inferAttributes(d)
	decls := harvestAttDecls(d)
	x.attCache = &attListCache{fp: fp, decls: decls}
	return false
}

// harvestAttDecls collects the declarations a fresh inference pass put
// on d, in deterministic element order, for replay by later passes.
func harvestAttDecls(d *DTD) []attDecl {
	var decls []attDecl
	names := make([]string, 0, len(d.Elements))
	for n := range d.Elements {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, a := range d.Elements[n].Attributes {
			decls = append(decls, attDecl{elem: n, a: a})
		}
	}
	return decls
}

// inferAttributes converts accumulated statistics into declarations on d.
func (x *Extraction) inferAttributes(d *DTD) {
	// First pass: find ID attributes and collect their value pools.
	idPools := map[string]map[string]int{} // "elem attr" -> values
	type key struct{ elem, att string }
	var keys []key
	for elem, atts := range x.Attributes {
		for name := range atts {
			keys = append(keys, key{elem, name})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].elem != keys[j].elem {
			return keys[i].elem < keys[j].elem
		}
		return keys[i].att < keys[j].att
	})
	for _, k := range keys {
		st := x.Attributes[k.elem][k.att]
		if isIDLike(st) {
			idPools[k.elem+" "+k.att] = st.values
		}
	}
	for _, k := range keys {
		st := x.Attributes[k.elem][k.att]
		if d.Elements[k.elem] == nil {
			continue // attribute on an element never closed? defensive
		}
		occurrences := 0
		if s := x.Sequences[k.elem]; s != nil {
			occurrences = s.Total()
		}
		a := &Attribute{
			Name:     k.att,
			Required: st.present == occurrences && occurrences > 0,
		}
		switch {
		case isIDLike(st):
			a.Type = ID
		case x.isIDRefLike(k.elem, k.att, st, idPools):
			a.Type = IDREF
		case isEnumLike(st):
			a.Type = Enumerated
			for v := range st.values {
				a.Values = append(a.Values, v)
			}
			sort.Strings(a.Values)
		case allNMTokens(st):
			a.Type = NMTOKEN
		default:
			a.Type = CDATA
		}
		d.DeclareAttribute(k.elem, a)
	}
}

func isIDLike(st *attStats) bool {
	if st.overflow || st.present < minIDSample || len(st.values) != st.present {
		return false
	}
	return allNMTokens(st)
}

// isIDRefLike reports whether every value of the attribute occurs in some
// ID attribute's value pool (of a different element/attribute).
func (x *Extraction) isIDRefLike(elem, att string, st *attStats, idPools map[string]map[string]int) bool {
	if st.overflow || len(st.values) == 0 || !allNMTokens(st) {
		return false
	}
	self := elem + " " + att
	for pool, values := range idPools {
		if pool == self {
			continue
		}
		all := true
		for v := range st.values {
			if values[v] == 0 {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func isEnumLike(st *attStats) bool {
	if st.overflow || len(st.values) > maxEnumValues || len(st.values) == 0 {
		return false
	}
	if !allNMTokens(st) {
		return false
	}
	// Each value must repeat: otherwise there is no evidence of a closed set.
	if st.present < 2*len(st.values) {
		return false
	}
	for _, n := range st.values {
		if n < 2 {
			return false
		}
	}
	return true
}

func allNMTokens(st *attStats) bool {
	for v := range st.values {
		if !isNameToken(v) {
			return false
		}
	}
	return true
}

func isNameToken(v string) bool {
	if v == "" {
		return false
	}
	for _, r := range v {
		ok := r == '.' || r == '-' || r == '_' || r == ':' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}
