package dtd

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dtdinfer/internal/regex"
	"dtdinfer/internal/sample"
)

// Incremental inference: repeated InferDTD* passes over a growing
// extraction skip the engines for every element whose sample has not
// changed. Eligibility is decided per element by comparing the sample's
// content fingerprint (see sample.Multiset) against the fingerprint the
// cached model was computed from; the dirty bits maintained by the
// ingestion paths are the cheap observability layer on top (how many
// elements changed since the last pass), not the correctness mechanism.
// Cached models are returned pointer-identical, so a warm pass renders
// byte-identically to the cold pass that populated the cache.

// CacheConfig identifies one engine configuration for the model cache.
// Two inference passes share cached models only when their Keys are
// equal, so the key must encode everything that can change an engine's
// output for the same sample: algorithm, engine options, budget,
// degradation mode. Counted selects the count-sensitive fingerprint for
// engines whose output depends on sequence multiplicities (noise
// thresholds, numeric predicates, support-weighted factoring); shape-only
// engines validate against the shape fingerprint and so stay warm across
// merges that only bump multiplicities of already-seen shapes.
type CacheConfig struct {
	Key     string
	Counted bool
}

// modelKey addresses one cached content model.
type modelKey struct {
	name   string
	config string
}

// modelCacheEntry is one memoized inference result: the fingerprint of
// the sample it was computed from, the accepted model, and the outcome
// that produced it (nil when the inferrer reported none).
type modelCacheEntry struct {
	fp      uint64
	model   *regex.Expr
	outcome *ElementOutcome
}

// modelCache memoizes content models across inference passes on one
// extraction. Guarded by a mutex: the inference pool's workers look up
// and store entries concurrently.
type modelCache struct {
	mu      sync.Mutex
	entries map[modelKey]*modelCacheEntry
}

func (c *modelCache) get(k modelKey) (*modelCacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	return e, ok
}

func (c *modelCache) put(k modelKey, e *modelCacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[k] = e
}

// InvalidateCache drops every memoized content model, forcing the next
// cached inference pass to run cold. Benchmarks use it to measure cold
// passes on a warm extraction; library callers normally never need it —
// fingerprint validation already invalidates per element.
func (x *Extraction) InvalidateCache() { x.cache = nil }

// cacheCounters tallies one inference pass's cache traffic.
type cacheCounters struct {
	hits       atomic.Int64
	misses     atomic.Int64
	recomputes atomic.Int64
}

// InferDTDElementsCached is InferDTDElements with per-element result
// memoization. With a nil cfg it behaves exactly like the uncached
// entry point. With a config, each element with children content is
// looked up in the extraction's model cache under (element, cfg.Key):
// a hit whose stored fingerprint matches the sample's current one
// returns the cached model without entering the engine or the
// degradation ladder; a mismatch recomputes and overwrites; an absent
// entry computes and fills. Structural declarations (EMPTY, #PCDATA,
// mixed) and <!ATTLIST> inference are recomputed every pass — they are
// map traffic, not engine work. On a fully successful pass the dirty
// bits are cleared; a failed or cancelled pass leaves them (and the
// cache entries already stored) intact, so the next pass resumes
// incrementally.
func (x *Extraction) InferDTDElementsCached(ctx context.Context, cfg *CacheConfig, infer InferElementFunc) (*DTD, *InferStats, error) {
	start := time.Now()
	names := make([]string, 0, len(x.Sequences))
	for n := range x.Sequences {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("dtd: no elements observed")
	}
	var cnt cacheCounters
	if cfg != nil && x.cache == nil {
		// Allocated single-threaded, before the pool: workers only ever
		// see a fully constructed cache.
		x.cache = &modelCache{entries: map[modelKey]*modelCacheEntry{}}
	}
	dirty := len(x.dirty)
	elements := make([]*Element, len(names))
	outcomes := make([]*ElementOutcome, len(names))
	errs := make([]error, len(names))
	timings := make([]ElementTiming, len(names))
	// Under a cache config, everything that needs no engine work —
	// structural declarations and fingerprint-valid cache hits — is
	// served inline first; only elements that must actually run an
	// engine reach the worker pool. A warm pass over an unchanged corpus
	// therefore resolves every element right here and spawns no
	// goroutines at all: the pool's fan-out costs more than the lookups
	// it would perform.
	pending := make([]int, 0, len(names))
	for i, name := range names {
		if cfg == nil {
			pending = append(pending, i)
			continue
		}
		t0 := time.Now()
		elem, outcome, served := x.serveCached(name, cfg, &cnt)
		if !served {
			pending = append(pending, i)
			continue
		}
		elements[i], outcomes[i] = elem, outcome
		timings[i] = ElementTiming{
			Name:      name,
			Sequences: x.Sequences[name].Total(),
			Duration:  time.Since(t0),
		}
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, i := range pending {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, name string) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			elements[i], outcomes[i], errs[i] = x.inferElementOutcome(ctx, name, cfg, &cnt, infer)
			timings[i] = ElementTiming{
				Name:      name,
				Sequences: x.Sequences[name].Total(),
				Duration:  time.Since(t0),
			}
		}(i, names[i])
	}
	wg.Wait()
	stats := &InferStats{Wall: time.Since(start), PerElement: timings}
	if cfg != nil {
		stats.Cached = true
		stats.CacheHits = int(cnt.hits.Load())
		stats.CacheMisses = int(cnt.misses.Load())
		stats.CacheRecomputes = int(cnt.recomputes.Load())
		stats.Dirty = dirty
	}
	for _, o := range outcomes {
		if o != nil {
			stats.Outcomes = append(stats.Outcomes, *o)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	d := New(x.Root())
	for i, e := range elements {
		if errs[i] != nil {
			return nil, stats, errs[i]
		}
		d.Declare(e)
	}
	if cfg != nil {
		stats.AttListReplayed = x.inferAttributesCached(d)
		clear(x.dirty)
	} else {
		x.inferAttributes(d)
	}
	return d, stats, nil
}

// serveCached resolves one element without engine work when possible:
// structural declarations (EMPTY, #PCDATA, mixed — table lookups, never
// engines) and children-content elements whose cached model's stored
// fingerprint still matches the sample's. served=false means the element
// needs an engine run (absent or stale cache entry); the caller
// dispatches those to the worker pool, where inferChildrenCached counts
// the miss or recompute.
func (x *Extraction) serveCached(name string, cfg *CacheConfig, cnt *cacheCounters) (elem *Element, outcome *ElementOutcome, served bool) {
	seqs := x.Sequences[name]
	hasChildren := seqs.NumSymbols() > 0
	switch {
	case !hasChildren && x.HasText[name]:
		return &Element{Name: name, Type: PCData}, nil, true
	case !hasChildren:
		return &Element{Name: name, Type: Empty}, nil, true
	case x.HasText[name]:
		return &Element{Name: name, Type: Mixed, MixedNames: seqs.Symbols()}, nil, true
	}
	fp := seqs.ShapeFingerprint()
	if cfg.Counted {
		fp = seqs.CountedFingerprint()
	}
	t0 := time.Now()
	ent, ok := x.cache.get(modelKey{name: name, config: cfg.Key})
	if !ok || ent.fp != fp {
		return nil, nil, false
	}
	cnt.hits.Add(1)
	if ent.outcome != nil {
		oc := *ent.outcome
		oc.FromCache = true
		oc.Elapsed = time.Since(t0)
		outcome = &oc
	}
	return &Element{Name: name, Type: Children, Model: ent.model}, outcome, true
}

// inferChildrenCached resolves one children-content element through the
// model cache. The fingerprint is read before the engine runs; sample
// sets are not mutated during inference, so the stored fingerprint is
// exactly the content the model was computed from.
func (x *Extraction) inferChildrenCached(ctx context.Context, name string, seqs *sample.Set, cfg *CacheConfig, cnt *cacheCounters, infer InferElementFunc) (*Element, *ElementOutcome, error) {
	fp := seqs.ShapeFingerprint()
	if cfg.Counted {
		fp = seqs.CountedFingerprint()
	}
	key := modelKey{name: name, config: cfg.Key}
	t0 := time.Now()
	if ent, ok := x.cache.get(key); ok {
		if ent.fp == fp {
			cnt.hits.Add(1)
			var outcome *ElementOutcome
			if ent.outcome != nil {
				oc := *ent.outcome
				oc.FromCache = true
				oc.Elapsed = time.Since(t0)
				outcome = &oc
			}
			return &Element{Name: name, Type: Children, Model: ent.model}, outcome, nil
		}
		cnt.recomputes.Add(1)
	} else {
		cnt.misses.Add(1)
	}
	model, outcome, err := infer(ctx, name, seqs)
	if err != nil {
		return nil, outcome, fmt.Errorf("dtd: inferring content model of %s: %w", name, err)
	}
	x.cache.put(key, &modelCacheEntry{fp: fp, model: model, outcome: outcome})
	return &Element{Name: name, Type: Children, Model: model}, outcome, nil
}
