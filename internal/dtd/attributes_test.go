package dtd

import (
	"strings"
	"testing"

	"dtdinfer/internal/gfa"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/soa"
)

const attrDoc1 = `<db>
  <rec id="r1" kind="book" lang="en"><ref to="r2"/></rec>
  <rec id="r2" kind="cd"><ref to="r1"/><ref to="r3"/></rec>
  <rec id="r3" kind="book" lang="de"><note>free text &amp; more</note></rec>
</db>`

// attrDoc2's references resolve within the document itself: ID/IDREF
// validity is per-document, and the validator now enforces resolution.
const attrDoc2 = `<db>
  <rec id="r4" kind="book"><ref to="r4"/></rec>
  <rec id="r5" kind="cd" lang="en"><ref to="r4"/></rec>
</db>`

func inferAttrs(t *testing.T) *DTD {
	t.Helper()
	x := NewExtraction()
	for _, doc := range []string{attrDoc1, attrDoc2} {
		if err := x.AddDocument(strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := x.InferDTD(func(sample [][]string) (*regex.Expr, error) {
		return gfa.Rewrite(soa.Infer(sample))
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func attr(t *testing.T, d *DTD, element, name string) *Attribute {
	t.Helper()
	for _, a := range d.Elements[element].Attributes {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("attribute %s missing on %s", name, element)
	return nil
}

func TestAttributeInference(t *testing.T) {
	d := inferAttrs(t)

	id := attr(t, d, "rec", "id")
	if id.Type != ID || !id.Required {
		t.Errorf("id = %+v, want required ID", id)
	}
	kind := attr(t, d, "rec", "kind")
	if kind.Type != Enumerated || !kind.Required {
		t.Errorf("kind = %+v, want required enumeration", kind)
	}
	if len(kind.Values) != 2 || kind.Values[0] != "book" || kind.Values[1] != "cd" {
		t.Errorf("kind values = %v", kind.Values)
	}
	lang := attr(t, d, "rec", "lang")
	if lang.Required {
		t.Errorf("lang should be #IMPLIED: %+v", lang)
	}
	// Three observations (en, en, de) are too weak for a closed
	// enumeration; the conservative call is NMTOKEN.
	if lang.Type != NMTOKEN {
		t.Errorf("lang = %+v, want NMTOKEN", lang)
	}
	to := attr(t, d, "ref", "to")
	if to.Type != IDREF || !to.Required {
		t.Errorf("to = %+v, want required IDREF", to)
	}
}

func TestAttributeSerializationRoundTrip(t *testing.T) {
	d := inferAttrs(t)
	text := d.String()
	for _, want := range []string{
		"<!ATTLIST rec id ID #REQUIRED>",
		"<!ATTLIST rec kind (book|cd) #REQUIRED>",
		"<!ATTLIST rec lang NMTOKEN #IMPLIED>",
		"<!ATTLIST ref to IDREF #REQUIRED>",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("serialized DTD missing %q:\n%s", want, text)
		}
	}
	d2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !d.Equal(d2) {
		t.Errorf("attribute round trip changed the DTD:\n%s\nvs\n%s", d, d2)
	}
}

func TestAttributeValidation(t *testing.T) {
	d := inferAttrs(t)
	v := NewValidator(d)
	// The training documents validate.
	for _, doc := range []string{attrDoc1, attrDoc2} {
		violations, err := v.Validate(strings.NewReader(doc))
		if err != nil || len(violations) != 0 {
			t.Fatalf("training doc invalid: %v %v", err, violations)
		}
	}
	cases := []struct {
		doc    string
		reason string
	}{
		{`<db><rec kind="book"><note>x</note></rec></db>`, "required attribute id missing"},
		{`<db><rec id="x" kind="vinyl"><note>x</note></rec></db>`, "not in enumeration"},
		{`<db><rec id="x" kind="book" extra="1"><note>y</note></rec></db>`, "attribute extra not declared"},
		{`<db><rec id="x" kind="book"><note>a</note></rec><rec id="x" kind="cd"><note>b</note></rec></db>`, "duplicate ID"},
	}
	for _, tc := range cases {
		violations, err := v.Validate(strings.NewReader(tc.doc))
		if err != nil {
			t.Fatalf("Validate(%q): %v", tc.doc, err)
		}
		found := false
		for _, viol := range violations {
			if strings.Contains(viol.Reason, tc.reason) {
				found = true
			}
		}
		if !found {
			t.Errorf("doc %q: want violation %q, got %v", tc.doc, tc.reason, violations)
		}
	}
}

func TestParseAttlistForms(t *testing.T) {
	d, err := Parse(`<!ELEMENT a EMPTY>
<!ATTLIST a x CDATA #REQUIRED y (on|off) "on" z NMTOKEN #IMPLIED>
<!ATTLIST a w ID #REQUIRED>
<!ATTLIST a f CDATA #FIXED "v">`)
	if err != nil {
		t.Fatal(err)
	}
	e := d.Elements["a"]
	if len(e.Attributes) != 5 {
		t.Fatalf("attributes = %v", e.Attributes)
	}
	if a := attr(t, d, "a", "y"); a.Type != Enumerated || a.Required ||
		len(a.Values) != 2 {
		t.Errorf("y = %+v", a)
	}
	if a := attr(t, d, "a", "w"); a.Type != ID || !a.Required {
		t.Errorf("w = %+v", a)
	}
	if a := attr(t, d, "a", "f"); a.Type != CDATA || a.Required {
		t.Errorf("f = %+v", a)
	}
}

func TestAttributeStatsOverflow(t *testing.T) {
	x := NewExtraction()
	for i := 0; i < maxAttValues+10; i++ {
		x.recordAttribute("e", "big", strings.Repeat("v", 1+i%7)+string(rune('a'+i%26))+itoa(i))
		x.AddSequences("e", [][]string{nil})
	}
	st := x.Attributes["e"]["big"]
	if !st.overflow {
		t.Error("overflow flag not set")
	}
	if isIDLike(st) {
		t.Error("overflowed attribute must not be an ID")
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
