package dtd

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dtdinfer/internal/faultinject"
	"dtdinfer/internal/intern"
	"dtdinfer/internal/sample"
)

// Pipelined parallel ingestion. Decode workers claim contiguous shards
// and stage them in worker-local symbol space exactly as before, but
// instead of parking every stage until the batch-wide join, each worker
// ships completed stages into a bounded channel as soon as they seal, and
// the committer folds them into the corpus in (shard, unit) order while
// later shards are still decoding — shard k commits while k+1..N decode,
// so the serial commit overlaps the decode window instead of running as
// a tail after it.
//
// Back-pressure and memory bound: every shipped-but-uncommitted stage
// holds one of its worker's unitsPerWorker in-flight tokens, which the
// committer returns when the stage is committed or discarded. A worker
// with no free token blocks before sealing its next unit, so at most
// workers x unitsPerWorker stages are live at any instant (the old code
// kept all shards staged simultaneously). The per-worker token pools are
// what make the bound deadlock-free: the producer of the lowest
// uncommitted shard only ever waits on its own tokens, and its shipped
// units are exactly the ones the committer can always fold next.
//
// Sub-shard flush units: a worker whose staged bytes cross
// shardFlushBytes seals a partial stage at a document boundary and keeps
// staging into a fresh arena, so a huge shard streams to the committer
// as several units instead of spiking at its end. Units of one shard
// arrive in ship order on the channel and commit in that order, so the
// fold replays document order exactly; byte-identity with sequential
// ingestion is unchanged (the per-element caps are enforced at fold
// time, not at staging time).
//
// Committed arenas recycle through a free list (reset bumps a
// generation; slots re-initialize lazily), keeping steady-state
// allocations flat however many units a corpus splits into.

// shardFlushBytes is the staged-byte budget after which a worker seals a
// partial stage (a flush unit) at the next document boundary. A package
// variable so tests can force many tiny units.
var shardFlushBytes = 4 << 20

// unitsPerWorker bounds one worker's live (shipped or staging, not yet
// committed) stage units — the C in the W+C memory bound.
const unitsPerWorker = 3

// PipelineStats instruments one pipelined ingestion call: where worker
// and committer time went, and how the batch was cut into flush units.
// Counters are deterministic for a given batch and worker count except
// ArenaReuses (scheduling-dependent) and FlushUnits when cancellation
// cuts the run short; durations are wall-clock measurements and vary run
// to run. The report's ingestion counters and error lists stay fully
// deterministic — the stats ride alongside, they never feed back into
// the result.
type PipelineStats struct {
	// Workers is the number of decode workers; Shards the number of
	// contiguous corpus shards they claimed from.
	Workers int
	Shards  int
	// FlushUnits counts stage units shipped to the committer (>= Shards
	// on the fast path: every shard ships at least its final unit).
	FlushUnits int
	// ArenaReuses counts units whose staging arena came from the free
	// list of already-committed units instead of a fresh allocation.
	ArenaReuses int
	// Decode sums, across workers, time spent decoding and staging
	// (back-pressure waits excluded).
	Decode time.Duration
	// FlushWait sums, across workers, time blocked waiting for a free
	// in-flight unit slot — the back-pressure the committer exerts.
	FlushWait time.Duration
	// Commit is the committer's time folding units into the corpus.
	Commit time.Duration
	// CommitterIdle is the committer's time waiting for the next unit —
	// the overlap headroom still unused.
	CommitterIdle time.Duration
	// FinalMerge is the staging-extraction merge paid only when
	// batch-atomicity is armed (cancellable context or an armed
	// pipeline.commit fault); zero otherwise.
	FinalMerge time.Duration
	// Wall is the whole call's wall-clock time.
	Wall time.Duration
}

// stageMsg is one sealed stage unit traveling from a worker to the
// committer. Exactly one of fast (fast decoder: ID-space stage) and std
// (std decoder: per-shard staging extraction) is set on a unit carrying
// data; a final message additionally carries the shard's report and its
// FailFast document error. Every message holds one of its worker's
// in-flight tokens, returned by the committer on commit or discard.
type stageMsg struct {
	shard  int
	worker int
	fast   *fastShard
	std    *Extraction
	final  bool
	report IngestReport
	err    *DocumentError
}

type pipeline struct {
	ctx        context.Context
	docs       []Doc
	bounds     []int
	opts       *IngestOptions
	policy     ErrorPolicy
	workers    int
	shardCount int

	next        int64 // next unclaimed shard index
	failedShard int64 // lowest shard that hit FailFast (-1: committer abort)

	ch       chan stageMsg
	inflight []chan struct{} // per-worker token pools, cap unitsPerWorker
	free     chan *fastShard // committed arenas awaiting reuse

	// worker-side counters (atomics).
	decodeNs    int64
	flushWaitNs int64
	flushUnits  int64
	arenaReuses int64
	// committer-side counters (committer goroutine only).
	commitNs        int64
	committerIdleNs int64
}

// acquire takes one in-flight-unit token, blocking under back-pressure
// and accounting the blocked time into waited; false means the context
// died first.
func (p *pipeline) acquire(tokens chan struct{}, waited *int64) bool {
	select {
	case <-tokens:
		return true
	default:
	}
	t0 := time.Now()
	select {
	case <-tokens:
		*waited += int64(time.Since(t0))
		return true
	case <-p.ctx.Done():
		*waited += int64(time.Since(t0))
		return false
	}
}

// getShard returns a staging arena, recycling a committed one when the
// free list has any.
func (p *pipeline) getShard() *fastShard {
	select {
	case sh := <-p.free:
		sh.reset()
		atomic.AddInt64(&p.arenaReuses, 1)
		return sh
	default:
		return &fastShard{}
	}
}

// release returns a message's token to its worker and recycles its arena.
// Capacities make both sends non-blocking: every in-flight message holds
// exactly one token, and free is sized for every token in the system.
func (p *pipeline) release(m stageMsg) {
	if m.fast != nil {
		select {
		case p.free <- m.fast:
		default:
		}
	}
	select {
	case p.inflight[m.worker] <- struct{}{}:
	default:
	}
}

// worker claims shards and decodes them, shipping sealed stage units as
// it goes. On the fast path the afterDoc hook seals a partial unit
// whenever the staged bytes cross the flush budget; the final unit rides
// with the shard's report. A worker that observes cancellation while
// waiting for a token abandons its shard unshipped — the committer is in
// drain mode by then and the batch result is discarded anyway.
func (p *pipeline) worker(w int) {
	ing := newIngester(p.opts)
	fi, fast := ing.(*fastIngester)
	tokens := p.inflight[w]
	for {
		if p.ctx.Err() != nil {
			return
		}
		si := int(atomic.AddInt64(&p.next, 1) - 1)
		if si >= p.shardCount {
			return
		}
		if p.policy == FailFast && int64(si) > atomic.LoadInt64(&p.failedShard) {
			// A strictly earlier shard already failed; this shard's units
			// would be discarded by the in-order commit.
			continue
		}
		var waited int64
		if !p.acquire(tokens, &waited) {
			atomic.AddInt64(&p.flushWaitNs, waited)
			return
		}
		start := time.Now()
		msg := stageMsg{shard: si, worker: w, final: true}
		shardDocs := p.docs[p.bounds[si]:p.bounds[si+1]]
		if fast {
			fi.beginShard(p.getShard())
			fi.afterDoc = func() {
				if fi.shard.bytes < shardFlushBytes {
					return
				}
				if !p.acquire(tokens, &waited) {
					// Cancelled: keep staging in place; the decode loop
					// aborts at its next cancellation checkpoint.
					return
				}
				unit := fi.shard
				unit.sealNames(fi.names)
				atomic.AddInt64(&p.flushUnits, 1)
				p.ch <- stageMsg{shard: si, worker: w, fast: unit}
				fi.shard = p.getShard()
			}
			msg.err, _ = runIngest(ing, p.ctx, nil, shardDocs, p.bounds[si], p.opts, p.policy, &msg.report)
			fi.afterDoc = nil
			msg.fast = fi.shard
			msg.fast.sealNames(fi.names)
			fi.endShard()
		} else {
			msg.std = NewExtraction()
			msg.err, _ = runIngest(ing, p.ctx, msg.std, shardDocs, p.bounds[si], p.opts, p.policy, &msg.report)
		}
		atomic.AddInt64(&p.decodeNs, int64(time.Since(start))-waited)
		atomic.AddInt64(&p.flushWaitNs, waited)
		if msg.err != nil && p.policy == FailFast {
			for {
				cur := atomic.LoadInt64(&p.failedShard)
				if int64(si) >= cur || atomic.CompareAndSwapInt64(&p.failedShard, cur, int64(si)) {
					break
				}
			}
		}
		atomic.AddInt64(&p.flushUnits, 1)
		p.ch <- msg
	}
}

// commitTarget caches one element's commit destination in the target
// extraction: its sample.Set plus the worker-local-ID -> set-ID remap.
type commitTarget struct {
	set   *sample.Set
	remap intern.Remap
}

// workerCommit is the committer-owned commit state for one worker's
// symbol space, persisting across every unit that worker ships: worker
// IDs are dense and stable, so each distinct (worker, element, symbol)
// resolves its string exactly once per run and every repeat is a slice
// index.
type workerCommit struct {
	targets []commitTarget
}

// commitFastShard folds one sealed stage unit into the target. It runs
// only on the committer goroutine, in (shard, unit) order, resolving
// symbols from the unit's sealed name snapshot — never from the staging
// worker's live table. Walking touched in first-touch order makes every
// corpus-level first sight happen in sequential document order, which is
// what keeps the result byte-identical to sequential ingestion.
func commitFastShard(wc *workerCommit, sh *fastShard, target *Extraction) {
	for _, w := range sh.touched {
		se := sh.perElem[w]
		name := sh.names[w]
		if se.ms.Unique() > 0 {
			for len(wc.targets) <= int(w) {
				wc.targets = append(wc.targets, commitTarget{})
			}
			tgt := &wc.targets[w]
			if tgt.set == nil {
				tgt.set = target.sampleOf(name)
			}
			before := tgt.set.ShapeFingerprint()
			tgt.set.MergeMultisetNames(&se.ms, sh.names, &tgt.remap)
			if tgt.set.ShapeFingerprint() != before {
				target.markDirty(name)
			}
		}
		if se.hasText && !target.HasText[name] {
			target.HasText[name] = true
			target.markDirty(name)
		}
		if len(se.texts) > 0 {
			have := target.TextSamples[name]
			for _, t := range se.texts {
				if len(have) >= maxTextSamples {
					target.TextOverflow[name] = true
					break
				}
				have = append(have, t)
			}
			target.TextSamples[name] = have
		}
		if se.textOverflow {
			target.TextOverflow[name] = true
		}
		for _, a := range se.attList {
			commitAttrStage(target, name, a)
		}
		if se.roots > 0 {
			target.Roots[name] += se.roots
		}
	}
	target.Documents += sh.documents
}

// committer holds the ordered-commit state driven by runPipeline's
// receive loop.
type committer struct {
	p       *pipeline
	target  *Extraction
	states  []workerCommit
	pending map[int][]stageMsg
	reports map[int]*IngestReport
	derrs   map[int]*DocumentError
	// nextShard is the lowest shard whose final unit has not committed;
	// units of later shards buffer in pending until it completes.
	nextShard int
	// discard flips when the run stops committing (FailFast failure
	// committed, context dead, or an injected commit fault): every
	// further unit only returns its token.
	discard   bool
	commitErr error
}

// commitUnit folds one unit and returns its token; an armed
// pipeline.commit fault aborts the run instead, leaving the unit (and
// everything after it) uncommitted.
func (c *committer) commitUnit(m stageMsg) {
	if err := faultinject.Fire("pipeline.commit", strconv.Itoa(m.shard)); err != nil {
		c.commitErr = err
		c.discard = true
		// Let FailFast workers skip their remaining shards; the results
		// are all discarded from here on.
		atomic.StoreInt64(&c.p.failedShard, -1)
		c.p.release(m)
		return
	}
	t0 := time.Now()
	if m.fast != nil {
		commitFastShard(&c.states[m.worker], m.fast, c.target)
	} else if m.std != nil {
		c.target.Merge(m.std)
	}
	c.p.commitNs += int64(time.Since(t0))
	c.p.release(m)
}

// receive buffers one message and commits everything now committable in
// (shard, unit) order. Whenever the run stops committing it releases
// every buffered unit: a unit parked in pending holds its worker's
// in-flight token, and a worker blocked on a token under a Done-less
// context has no other way to wake up.
func (c *committer) receive(m stageMsg) {
	if c.p.ctx.Err() != nil {
		c.discard = true
	}
	if m.final {
		rep := m.report
		c.reports[m.shard] = &rep
		c.derrs[m.shard] = m.err
	}
	if c.discard {
		c.p.release(m)
		c.drainPending()
		return
	}
	c.pending[m.shard] = append(c.pending[m.shard], m)
	c.advance()
	if c.discard {
		c.drainPending()
	}
}

// advance commits every unit now committable in (shard, unit) order.
func (c *committer) advance() {
	for {
		q := c.pending[c.nextShard]
		if len(q) == 0 {
			return
		}
		delete(c.pending, c.nextShard)
		for i, u := range q {
			c.commitUnit(u)
			if c.discard {
				for _, rest := range q[i+1:] {
					c.p.release(rest)
				}
				return
			}
		}
		last := q[len(q)-1]
		if !last.final {
			return // shard still streaming; wait for its next unit
		}
		if c.derrs[c.nextShard] != nil && c.p.policy == FailFast {
			// The in-order commit reached the earliest FailFast failure:
			// its shard committed the prefix before the failing document;
			// everything after is discarded.
			c.discard = true
			return
		}
		c.nextShard++
	}
}

// drainPending releases every buffered unit of every shard, returning
// their workers' tokens. Called only once discard is set.
func (c *committer) drainPending() {
	for si, q := range c.pending {
		for _, u := range q {
			c.p.release(u)
		}
		delete(c.pending, si)
	}
}

// runPipeline is the pipelined AddDocsParallelContext engine: it spawns
// the decode workers, runs the ordered committer on the calling
// goroutine, and assembles the deterministic report. See the package
// comment at the top of this file for the architecture and invariants.
func (x *Extraction) runPipeline(ctx context.Context, docs []Doc, bounds []int, workers int, opts *IngestOptions, policy ErrorPolicy) (*IngestReport, error) {
	shardCount := len(bounds) - 1
	p := &pipeline{
		ctx:         ctx,
		docs:        docs,
		bounds:      bounds,
		opts:        opts,
		policy:      policy,
		workers:     workers,
		shardCount:  shardCount,
		failedShard: int64(shardCount),
		ch:          make(chan stageMsg, workers),
		inflight:    make([]chan struct{}, workers),
		free:        make(chan *fastShard, workers*unitsPerWorker),
	}
	for w := range p.inflight {
		tokens := make(chan struct{}, unitsPerWorker)
		for i := 0; i < unitsPerWorker; i++ {
			tokens <- struct{}{}
		}
		p.inflight[w] = tokens
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(context.Background(), pprof.Labels("dtd-pipeline", "decode-worker"), func(context.Context) {
				p.worker(w)
			})
		}(w)
	}
	go func() {
		wg.Wait()
		close(p.ch)
	}()

	// Batch atomicity: when the run can abort mid-commit (cancellable
	// context, or an armed pipeline.commit fault) the committer folds
	// into a staging extraction and x adopts it only on success — an
	// aborted run leaves x untouched by construction. With a Done-less
	// context and no armed fault nothing can abort a commit, so units
	// fold straight into x and the call costs no final merge at all.
	target := x
	var staging *Extraction
	if ctx.Done() != nil || faultinject.ArmedAt("pipeline.commit") {
		staging = NewExtraction()
		target = staging
	}
	c := &committer{
		p:       p,
		target:  target,
		states:  make([]workerCommit, workers),
		pending: map[int][]stageMsg{},
		reports: map[int]*IngestReport{},
		derrs:   map[int]*DocumentError{},
	}
	pprof.Do(context.Background(), pprof.Labels("dtd-pipeline", "committer"), func(context.Context) {
		for {
			idle := time.Now()
			m, ok := <-p.ch
			p.committerIdleNs += int64(time.Since(idle))
			if !ok {
				return
			}
			c.receive(m)
		}
	})

	stats := &PipelineStats{
		Workers:       workers,
		Shards:        shardCount,
		FlushUnits:    int(atomic.LoadInt64(&p.flushUnits)),
		ArenaReuses:   int(atomic.LoadInt64(&p.arenaReuses)),
		Decode:        time.Duration(atomic.LoadInt64(&p.decodeNs)),
		FlushWait:     time.Duration(atomic.LoadInt64(&p.flushWaitNs)),
		Commit:        time.Duration(p.commitNs),
		CommitterIdle: time.Duration(p.committerIdleNs),
	}
	report := &IngestReport{Pipeline: stats}
	fail := func(err error) (*IngestReport, error) {
		// Aborted run: tally the work done (in shard order, so the report
		// is as deterministic as the cut allows) and discard the staging;
		// x is untouched.
		for si := 0; si < shardCount; si++ {
			if r := c.reports[si]; r != nil {
				report.add(r)
			}
		}
		stats.Wall = time.Since(start)
		return report, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return fail(cerr)
	}
	if c.commitErr != nil {
		return fail(c.commitErr)
	}
	var derr *DocumentError
	for si := 0; si < shardCount; si++ {
		r := c.reports[si]
		if r == nil {
			continue // skipped: an earlier shard failed first under FailFast
		}
		report.add(r)
		if c.derrs[si] != nil && policy == FailFast {
			derr = c.derrs[si]
			break
		}
	}
	if staging != nil {
		t0 := time.Now()
		if x.isEmpty() {
			// Fresh corpus: adopt the staging wholesale — byte-identical
			// to having committed into x directly, and free.
			*x = *staging
		} else {
			x.Merge(staging)
		}
		stats.FinalMerge = time.Since(t0)
	}
	report.TextOverflows = len(x.TextOverflow)
	stats.Wall = time.Since(start)
	if derr != nil {
		return report, derr
	}
	return report, nil
}
