package dtd

import (
	"fmt"
	"strings"
	"testing"
)

func TestReviewShardAttCapDivergence(t *testing.T) {
	// Doc A: one occurrence of attr a="X".
	// Doc B: 256 distinct values (fills the per-shard cap).
	// Doc C: a="X" again.
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < maxAttValues; i++ {
		fmt.Fprintf(&b, `<e a="v%d"/>`, i)
	}
	b.WriteString("</r>")
	docA := `<r><e a="X"/></r>`
	docB := b.String()
	docC := `<r><e a="X"/></r>`

	mk := func() []Doc {
		return []Doc{
			{R: strings.NewReader(docA)},
			{R: strings.NewReader(docB)},
			{R: strings.NewReader(docC)},
		}
	}

	seq := NewExtraction()
	if _, err := seq.AddDocs(mk(), nil, SkipAndRecord); err != nil {
		t.Fatal(err)
	}
	par := NewExtraction()
	// 2 workers -> shards; docC should land in a later shard than docA.
	if _, err := par.AddDocsParallelContext(t.Context(), mk(), 2, nil, SkipAndRecord); err != nil {
		t.Fatal(err)
	}
	sx := seq.Attributes["e"]["a"].values["X"]
	px := par.Attributes["e"]["a"].values["X"]
	t.Logf("seq X count=%d par X count=%d overflow seq=%v par=%v",
		sx, px, seq.Attributes["e"]["a"].overflow, par.Attributes["e"]["a"].overflow)
	if sx != px {
		t.Errorf("divergence: sequential X=%d parallel X=%d", sx, px)
	}
}
