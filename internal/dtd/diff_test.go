package dtd

import (
	"strings"
	"testing"
)

func TestDiffSchemaCleaning(t *testing.T) {
	published := MustParse(`<!DOCTYPE r [
<!ELEMENT r (refinfo)>
<!ELEMENT refinfo (authors,citation,volume?,month?,year)>
<!ELEMENT authors (#PCDATA)> <!ELEMENT citation (#PCDATA)>
<!ELEMENT volume (#PCDATA)> <!ELEMENT month (#PCDATA)> <!ELEMENT year (#PCDATA)>
]>`)
	inferred := MustParse(`<!DOCTYPE r [
<!ELEMENT r (refinfo)>
<!ELEMENT refinfo (authors,citation,(volume|month),year)>
<!ELEMENT authors (#PCDATA)> <!ELEMENT citation (#PCDATA)>
<!ELEMENT volume (#PCDATA)> <!ELEMENT month (#PCDATA)> <!ELEMENT year (#PCDATA)>
]>`)
	entries := Diff(inferred, published)
	byName := map[string]DiffEntry{}
	for _, e := range entries {
		byName[e.Element] = e
	}
	if got := byName["refinfo"].Relation; got != Stricter {
		t.Errorf("refinfo relation = %v, want Stricter", got)
	}
	if got := byName["year"].Relation; got != Equivalent {
		t.Errorf("year relation = %v, want Equivalent", got)
	}
	out := FormatDiff(entries, false)
	if !strings.Contains(out, "refinfo: stricter") {
		t.Errorf("diff output missing refinfo line:\n%s", out)
	}
	if strings.Contains(out, "year: equivalent") {
		t.Errorf("equivalent elements should be hidden:\n%s", out)
	}
}

func TestDiffRelations(t *testing.T) {
	a := MustParse(`<!ELEMENT e (x,y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY> <!ELEMENT extra EMPTY>`)
	b := MustParse(`<!ELEMENT e (y,x)> <!ELEMENT x EMPTY> <!ELEMENT y (#PCDATA)> <!ELEMENT other EMPTY>`)
	byName := map[string]DiffEntry{}
	for _, e := range Diff(a, b) {
		byName[e.Element] = e
	}
	if byName["e"].Relation != Incomparable {
		t.Errorf("e = %v, want Incomparable", byName["e"].Relation)
	}
	if byName["x"].Relation != Equivalent {
		t.Errorf("x = %v", byName["x"].Relation)
	}
	if byName["y"].Relation != Different {
		t.Errorf("y = %v, want Different", byName["y"].Relation)
	}
	if byName["extra"].Relation != OnlyFirst {
		t.Errorf("extra = %v", byName["extra"].Relation)
	}
	if byName["other"].Relation != OnlySecond {
		t.Errorf("other = %v", byName["other"].Relation)
	}
}

func TestDiffLooser(t *testing.T) {
	a := MustParse(`<!ELEMENT e (x*)> <!ELEMENT x EMPTY>`)
	b := MustParse(`<!ELEMENT e (x+)> <!ELEMENT x EMPTY>`)
	for _, entry := range Diff(a, b) {
		if entry.Element == "e" && entry.Relation != Looser {
			t.Errorf("e = %v, want Looser", entry.Relation)
		}
	}
}

func TestDiffMixed(t *testing.T) {
	a := MustParse(`<!ELEMENT p (#PCDATA|b)*> <!ELEMENT b EMPTY>`)
	b := MustParse(`<!ELEMENT p (#PCDATA|b|i)*> <!ELEMENT b EMPTY> <!ELEMENT i EMPTY>`)
	for _, entry := range Diff(a, b) {
		if entry.Element == "p" && entry.Relation != Stricter {
			t.Errorf("p = %v, want Stricter", entry.Relation)
		}
	}
}

func TestFormatDiffEquivalent(t *testing.T) {
	a := MustParse(`<!ELEMENT e (x)> <!ELEMENT x EMPTY>`)
	if got := FormatDiff(Diff(a, a), false); got != "DTDs are equivalent\n" {
		t.Errorf("FormatDiff = %q", got)
	}
	if got := FormatDiff(Diff(a, a), true); !strings.Contains(got, "equivalent") {
		t.Errorf("verbose FormatDiff = %q", got)
	}
}
