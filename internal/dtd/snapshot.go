package dtd

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dtdinfer/internal/intern"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/sample"
	snap "dtdinfer/internal/snapshot"
)

// Durable corpus summaries. WriteSnapshot serializes an Extraction —
// the intern tables, counted sequence multisets, text and attribute
// statistics, roots, and the incremental-inference state (dirty set,
// memoized content models, <!ATTLIST> cache) — into the versioned
// binary wire format specified in DESIGN §11, and ReadSnapshot rebuilds
// an Extraction that is indistinguishable from one produced by
// ingesting the same documents: inference over it is byte-identical,
// re-saving it is byte-identical, and a warm model cache stays warm
// across the restart.
//
// The encoding is canonical: elements, attributes, values, roots, dirty
// names and cache keys are written in sorted order, sequences in
// first-seen order and symbols in dense-ID order (the two orders that
// byte-identical inference depends on), so equal extractions produce
// equal bytes. The decoder *enforces* canonical order, which both
// rejects hand-reordered files and makes decode∘encode idempotent.
//
// ReadSnapshot treats its input as untrusted: every structural claim is
// validated (IDs in range, counts positive, orders strict, caps
// respected), sequence fingerprints are recomputed from the decoded
// content and compared against the stored ones, and any mismatch is an
// error wrapping snap.ErrCorrupt — never a panic.

const (
	snapMagic   = "DTDS"
	snapVersion = 1

	// maxSnapshotCount caps any single decoded multiplicity or tally.
	// Real corpora sit many orders of magnitude below it; the cap keeps
	// hostile counts from overflowing int64 accumulations downstream.
	maxSnapshotCount = 1 << 48

	// maxExprDepth caps content-model tree nesting during decode, so a
	// crafted cache section cannot force unbounded recursion. Inferred
	// models are orders of magnitude shallower.
	maxExprDepth = 10_000
)

// WriteSnapshot serializes the extraction into w. The stream is
// self-describing (magic, format version, the engine-relevant caps it
// was built under) and ends in a CRC-32C; ReadSnapshot rebuilds an
// equivalent extraction from it.
func (x *Extraction) WriteSnapshot(w io.Writer) error {
	sw := snap.NewWriter(w, snapMagic, snapVersion)
	sw.Len(maxTextSamples)
	sw.Len(maxAttValues)
	sw.Len(x.Documents)
	names := x.elementUnion()
	sw.Len(len(names))
	for _, name := range names {
		x.writeElement(sw, name)
	}
	writeSortedCounts(sw, x.Roots)
	dirty := make([]string, 0, len(x.dirty))
	for n, d := range x.dirty {
		if d {
			dirty = append(dirty, n)
		}
	}
	sort.Strings(dirty)
	sw.Len(len(dirty))
	for _, n := range dirty {
		sw.String(n)
	}
	x.writeModelCache(sw)
	x.writeAttCache(sw)
	return sw.Close()
}

// elementUnion returns, sorted, every element name any per-element map
// mentions. Ingestion always populates Sequences, but the maps are
// public; the union keeps hand-built extractions round-tripping.
func (x *Extraction) elementUnion() []string {
	seen := make(map[string]bool, len(x.Sequences))
	for n := range x.Sequences {
		seen[n] = true
	}
	for n := range x.HasText {
		seen[n] = true
	}
	for n := range x.TextSamples {
		seen[n] = true
	}
	for n := range x.TextOverflow {
		seen[n] = true
	}
	for n := range x.Attributes {
		seen[n] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (x *Extraction) writeElement(sw *snap.Writer, name string) {
	sw.String(name)
	s := x.Sequences[name]
	sw.Bool(s != nil)
	if s != nil {
		nSym := s.NumSymbols()
		sw.Len(nSym)
		for id := 0; id < nSym; id++ {
			sw.String(s.Name(id))
		}
		sw.Len(s.Unique())
		s.ForEach(func(seq []int32, count int) {
			sw.Len(len(seq))
			for _, id := range seq {
				sw.Uvarint(uint64(id))
			}
			sw.Len(count)
		})
		sw.U64(s.ShapeFingerprint())
		sw.U64(s.CountedFingerprint())
	}
	sw.Bool(x.HasText[name])
	sw.Bool(x.TextOverflow[name])
	texts := x.TextSamples[name]
	sw.Len(len(texts))
	for _, t := range texts {
		sw.String(t)
	}
	atts := x.Attributes[name]
	attNames := make([]string, 0, len(atts))
	for a := range atts {
		attNames = append(attNames, a)
	}
	sort.Strings(attNames)
	sw.Len(len(attNames))
	for _, att := range attNames {
		st := atts[att]
		sw.String(att)
		sw.Len(st.present)
		sw.Bool(st.overflow)
		writeSortedCounts(sw, st.values)
	}
}

// writeSortedCounts writes a string->count map in sorted key order.
func writeSortedCounts(sw *snap.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sw.Len(len(keys))
	for _, k := range keys {
		sw.String(k)
		sw.Len(m[k])
	}
}

func (x *Extraction) writeModelCache(sw *snap.Writer) {
	if x.cache == nil {
		sw.Len(0)
		return
	}
	keys := make([]modelKey, 0, len(x.cache.entries))
	for k := range x.cache.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].config < keys[j].config
	})
	sw.Len(len(keys))
	for _, k := range keys {
		e := x.cache.entries[k]
		sw.String(k.name)
		sw.String(k.config)
		sw.U64(e.fp)
		writeExpr(sw, e.model)
		sw.Bool(e.outcome != nil)
		if e.outcome != nil {
			o := e.outcome
			sw.String(o.Name)
			sw.String(o.Engine)
			sw.String(o.DegradedFrom)
			sw.String(o.Cause)
			sw.Uvarint(uint64(o.Elapsed))
		}
	}
}

func (x *Extraction) writeAttCache(sw *snap.Writer) {
	c := x.attCache
	sw.Bool(c != nil)
	if c == nil {
		return
	}
	sw.U64(c.fp)
	sw.Len(len(c.decls))
	for _, de := range c.decls {
		sw.String(de.elem)
		sw.String(de.a.Name)
		sw.Byte(byte(de.a.Type))
		sw.Bool(de.a.Required)
		sw.Len(len(de.a.Values))
		for _, v := range de.a.Values {
			sw.String(v)
		}
	}
}

// writeExpr serializes a content-model tree structurally (op tag, then
// operands), avoiding the render/re-parse round trip and its escaping
// corner cases.
func writeExpr(sw *snap.Writer, e *regex.Expr) {
	sw.Byte(byte(e.Op))
	switch e.Op {
	case regex.OpSymbol:
		sw.String(e.Name)
		return
	case regex.OpRepeat:
		sw.Varint(int64(e.Min))
		sw.Varint(int64(e.Max))
	}
	sw.Len(len(e.Subs))
	for _, sub := range e.Subs {
		writeExpr(sw, sub)
	}
}

// ReadSnapshot rebuilds an extraction from a snapshot stream. The input
// is untrusted: malformed framing, out-of-range values, non-canonical
// ordering, cap violations and fingerprint mismatches all return errors
// (wrapping snap.ErrCorrupt) with the extraction discarded; a nil
// error means the result is indistinguishable from direct ingestion.
func ReadSnapshot(r io.Reader) (*Extraction, error) {
	sr, err := snap.NewReader(r, snapMagic)
	if err != nil {
		return nil, err
	}
	if v := sr.Version(); v != snapVersion {
		return nil, fmt.Errorf("dtd: unsupported snapshot version %d (this build reads %d)", v, snapVersion)
	}
	if got := sr.Int(); sr.Err() == nil && got != maxTextSamples {
		return nil, fmt.Errorf("dtd: snapshot built with maxTextSamples=%d, this build uses %d", got, maxTextSamples)
	}
	if got := sr.Int(); sr.Err() == nil && got != maxAttValues {
		return nil, fmt.Errorf("dtd: snapshot built with maxAttValues=%d, this build uses %d", got, maxAttValues)
	}
	x := NewExtraction()
	x.Documents = readCount(sr, "documents")
	nElem := sr.Int()
	prev := ""
	for i := 0; i < nElem && sr.Err() == nil; i++ {
		name := sr.String()
		if i > 0 && name <= prev {
			sr.Fail("element records out of order (%q after %q)", name, prev)
			break
		}
		prev = name
		x.readElement(sr, name)
	}
	readSortedCounts(sr, "root", func(name string, n int) { x.Roots[name] = n })
	nDirty := sr.Int()
	prev = ""
	for i := 0; i < nDirty && sr.Err() == nil; i++ {
		name := sr.String()
		if i > 0 && name <= prev {
			sr.Fail("dirty set out of order (%q after %q)", name, prev)
			break
		}
		prev = name
		x.markDirty(name)
	}
	x.readModelCache(sr)
	x.readAttCache(sr)
	if err := sr.Close(); err != nil {
		return nil, err
	}
	// Rebuild the attribute fingerprints from the restored statistics —
	// the closed form of the incremental maintenance, so the loaded
	// extraction's <!ATTLIST> cache validates exactly as before saving.
	for elem, atts := range x.Attributes {
		for att, st := range atts {
			x.attFpAdd(elem, attStatsFingerprint(att, st), 1)
		}
	}
	return x, nil
}

// readCount reads a tally, bounding it against hostile values.
func readCount(sr *snap.Reader, what string) int {
	n := sr.Int()
	if n > maxSnapshotCount {
		sr.Fail("%s count %d exceeds limit", what, n)
		return 0
	}
	return n
}

func (x *Extraction) readElement(sr *snap.Reader, name string) {
	if sr.Bool() { // has a sequence sample
		nSym := sr.Int()
		symbols := make([]string, 0, min(nSym, 1024))
		for j := 0; j < nSym && sr.Err() == nil; j++ {
			symbols = append(symbols, sr.String())
		}
		if sr.Err() != nil {
			return
		}
		set, err := sample.ImportSymbols(symbols)
		if err != nil {
			sr.Fail("element %q: %v", name, err)
			return
		}
		nSeq := sr.Int()
		var used intern.Bitset
		var idBuf []int32
		for j := 0; j < nSeq && sr.Err() == nil; j++ {
			seqLen := sr.Int()
			idBuf = idBuf[:0]
			for k := 0; k < seqLen && sr.Err() == nil; k++ {
				id := sr.Uvarint()
				if id >= uint64(nSym) {
					sr.Fail("element %q: symbol ID %d out of range [0, %d)", name, id, nSym)
					return
				}
				used.Set(int(id))
				idBuf = append(idBuf, int32(id))
			}
			count := readCount(sr, "sequence")
			if sr.Err() != nil {
				return
			}
			if err := set.AddIDsChecked(idBuf, count); err != nil {
				sr.Fail("element %q: %v", name, err)
				return
			}
		}
		if sr.Err() != nil {
			return
		}
		if set.Unique() != nSeq {
			sr.Fail("element %q: duplicate sequences in snapshot (%d records, %d unique)", name, nSeq, set.Unique())
			return
		}
		if used.Count() != nSym {
			sr.Fail("element %q: %d of %d symbols occur in no sequence", name, nSym-used.Count(), nSym)
			return
		}
		// The fingerprints were recomputed from the decoded strings and
		// sequences; matching the stored ones certifies the content.
		if shape := sr.U64(); sr.Err() == nil && shape != set.ShapeFingerprint() {
			sr.Fail("element %q: shape fingerprint mismatch", name)
			return
		}
		if counted := sr.U64(); sr.Err() == nil && counted != set.CountedFingerprint() {
			sr.Fail("element %q: counted fingerprint mismatch", name)
			return
		}
		if sr.Err() != nil {
			return
		}
		x.Sequences[name] = set
	}
	if sr.Bool() {
		x.HasText[name] = true
	}
	if sr.Bool() {
		x.TextOverflow[name] = true
	}
	nText := sr.Int()
	if nText > maxTextSamples {
		sr.Fail("element %q: %d text samples exceed cap %d", name, nText, maxTextSamples)
		return
	}
	for j := 0; j < nText && sr.Err() == nil; j++ {
		x.TextSamples[name] = append(x.TextSamples[name], sr.String())
	}
	nAtts := sr.Int()
	prevAtt := ""
	for j := 0; j < nAtts && sr.Err() == nil; j++ {
		att := sr.String()
		if j > 0 && att <= prevAtt {
			sr.Fail("element %q: attributes out of order (%q after %q)", name, att, prevAtt)
			return
		}
		prevAtt = att
		st := &attStats{values: map[string]int{}}
		st.present = readCount(sr, "attribute presence")
		st.overflow = sr.Bool()
		nVals := sr.Int()
		if nVals > maxAttValues {
			sr.Fail("element %q: attribute %q has %d values, cap is %d", name, att, nVals, maxAttValues)
			return
		}
		prevVal := ""
		for k := 0; k < nVals && sr.Err() == nil; k++ {
			v := sr.String()
			if k > 0 && v <= prevVal {
				sr.Fail("element %q: attribute %q values out of order", name, att)
				return
			}
			prevVal = v
			n := readCount(sr, "attribute value")
			if n < 1 {
				sr.Fail("element %q: attribute %q value with count %d", name, att, n)
				return
			}
			st.values[v] = n
		}
		if sr.Err() != nil {
			return
		}
		atts := x.Attributes[name]
		if atts == nil {
			atts = map[string]*attStats{}
			x.Attributes[name] = atts
		}
		atts[att] = st
	}
}

// readSortedCounts reads a sorted string->count section written by
// writeSortedCounts, enforcing order and positive counts.
func readSortedCounts(sr *snap.Reader, what string, put func(k string, n int)) {
	n := sr.Int()
	prev := ""
	for i := 0; i < n && sr.Err() == nil; i++ {
		k := sr.String()
		if i > 0 && k <= prev {
			sr.Fail("%s entries out of order (%q after %q)", what, k, prev)
			return
		}
		prev = k
		c := readCount(sr, what)
		if c < 1 {
			sr.Fail("%s %q has count %d", what, k, c)
			return
		}
		put(k, c)
	}
}

func (x *Extraction) readModelCache(sr *snap.Reader) {
	n := sr.Int()
	if n == 0 {
		return
	}
	cache := &modelCache{entries: make(map[modelKey]*modelCacheEntry, min(n, 1024))}
	var prev modelKey
	for i := 0; i < n && sr.Err() == nil; i++ {
		k := modelKey{name: sr.String(), config: sr.String()}
		if i > 0 && (k.name < prev.name || (k.name == prev.name && k.config <= prev.config)) {
			sr.Fail("model cache entries out of order")
			return
		}
		prev = k
		e := &modelCacheEntry{fp: sr.U64()}
		e.model = readExpr(sr, 0)
		if sr.Bool() {
			e.outcome = &ElementOutcome{
				Name:         sr.String(),
				Engine:       sr.String(),
				DegradedFrom: sr.String(),
				Cause:        sr.String(),
				Elapsed:      time.Duration(sr.Uvarint()),
			}
			if e.outcome.Elapsed < 0 {
				sr.Fail("model cache outcome with negative elapsed time")
				return
			}
		}
		if sr.Err() != nil {
			return
		}
		cache.entries[k] = e
	}
	if sr.Err() == nil {
		x.cache = cache
	}
}

func (x *Extraction) readAttCache(sr *snap.Reader) {
	if !sr.Bool() {
		return
	}
	c := &attListCache{fp: sr.U64()}
	n := sr.Int()
	var prev attDecl
	for i := 0; i < n && sr.Err() == nil; i++ {
		de := attDecl{elem: sr.String(), a: &Attribute{Name: sr.String()}}
		if i > 0 && (de.elem < prev.elem || (de.elem == prev.elem && de.a.Name <= prev.a.Name)) {
			sr.Fail("attlist cache declarations out of order")
			return
		}
		t := sr.Byte()
		if AttType(t) > IDREF {
			sr.Fail("attlist cache declaration with unknown type %d", t)
			return
		}
		de.a.Type = AttType(t)
		de.a.Required = sr.Bool()
		nVals := sr.Int()
		if nVals > maxEnumValues {
			sr.Fail("attlist cache enumeration of %d values exceeds cap %d", nVals, maxEnumValues)
			return
		}
		for k := 0; k < nVals && sr.Err() == nil; k++ {
			de.a.Values = append(de.a.Values, sr.String())
		}
		if sr.Err() != nil {
			return
		}
		prev = de
		c.decls = append(c.decls, de)
	}
	if sr.Err() == nil {
		x.attCache = c
	}
}

// readExpr decodes a content-model tree, depth-capped and validated to
// the Expr invariants (leaf shape, operand arity, repeat bounds) so
// every decoded model renders without panicking.
func readExpr(sr *snap.Reader, depth int) *regex.Expr {
	if depth > maxExprDepth {
		sr.Fail("content model nested deeper than %d", maxExprDepth)
		return nil
	}
	op := regex.Op(sr.Byte())
	if op < regex.OpSymbol || op > regex.OpRepeat {
		if sr.Err() == nil {
			sr.Fail("unknown content-model op %d", op)
		}
		return nil
	}
	e := &regex.Expr{Op: op}
	if op == regex.OpSymbol {
		e.Name = sr.String()
		if sr.Err() == nil && e.Name == "" {
			sr.Fail("content-model symbol with empty name")
			return nil
		}
		return e
	}
	if op == regex.OpRepeat {
		e.Min = int(sr.Varint())
		e.Max = int(sr.Varint())
		if sr.Err() == nil && (e.Min < 0 || (e.Max != regex.Unbounded && e.Max < e.Min)) {
			sr.Fail("content-model repeat with bounds {%d,%d}", e.Min, e.Max)
			return nil
		}
	}
	nSubs := sr.Int()
	minSubs, maxSubs := 1, 1
	if op == regex.OpConcat || op == regex.OpUnion {
		minSubs, maxSubs = 2, int(^uint(0)>>1)
	}
	if sr.Err() == nil && (nSubs < minSubs || nSubs > maxSubs) {
		sr.Fail("content-model op %d with %d operands", op, nSubs)
		return nil
	}
	for i := 0; i < nSubs && sr.Err() == nil; i++ {
		e.Subs = append(e.Subs, readExpr(sr, depth+1))
	}
	if sr.Err() != nil {
		return nil
	}
	return e
}

// MergeSummary folds another corpus summary — typically loaded with
// ReadSnapshot — into x. The observation state unions through the
// existing Merge machinery (remap + counted multiset merge, so shard
// summaries ingested on separate machines combine commutatively and, in
// shard order, byte-identically to single-corpus ingestion), and on top
// of Merge it adopts o's memoized inference state where x has none:
// model-cache entries under absent keys and, when x has no <!ATTLIST>
// cache, o's. Adopted entries are validated by fingerprint at the next
// inference pass like any other cache content, so a stale adoption
// costs a recompute, never a wrong answer. Not safe to call while an
// inference pass is running on x.
func (x *Extraction) MergeSummary(o *Extraction) {
	x.Merge(o)
	if o.cache != nil && len(o.cache.entries) > 0 {
		if x.cache == nil {
			x.cache = &modelCache{entries: map[modelKey]*modelCacheEntry{}}
		}
		for k, e := range o.cache.entries {
			if _, ok := x.cache.entries[k]; !ok {
				x.cache.entries[k] = e
			}
		}
	}
	if x.attCache == nil {
		x.attCache = o.attCache
	}
}
