package dtd

import (
	"strings"
	"testing"

	"dtdinfer/internal/gfa"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/soa"
)

const proteinDTDFragment = `<!DOCTYPE ProteinDatabase [
<!ELEMENT ProteinDatabase (ProteinEntry+)>
<!ELEMENT ProteinEntry (header,protein,organism,reference+)>
<!ELEMENT refinfo (authors,citation,volume?,month?,year,pages?,(title|description)?,xrefs?)>
<!ELEMENT authors (author+|(collective,author?))>
<!ELEMENT year (#PCDATA)>
<!ELEMENT xrefs EMPTY>
<!ELEMENT note (#PCDATA|sup|sub)*>
<!ELEMENT anything ANY>
]>`

func TestParseDTD(t *testing.T) {
	d, err := Parse(proteinDTDFragment)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Root != "ProteinDatabase" {
		t.Errorf("Root = %q", d.Root)
	}
	if got := d.Elements["refinfo"].Model.DTDString(); got != "authors,citation,volume?,month?,year,pages?,(title|description)?,xrefs?" {
		t.Errorf("refinfo model = %q", got)
	}
	if d.Elements["year"].Type != PCData {
		t.Errorf("year type = %v", d.Elements["year"].Type)
	}
	if d.Elements["xrefs"].Type != Empty {
		t.Errorf("xrefs type = %v", d.Elements["xrefs"].Type)
	}
	if d.Elements["anything"].Type != Any {
		t.Errorf("anything type = %v", d.Elements["anything"].Type)
	}
	e := d.Elements["note"]
	if e.Type != Mixed || len(e.MixedNames) != 2 || e.MixedNames[0] != "sub" || e.MixedNames[1] != "sup" {
		t.Errorf("note = %+v", e)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<!DOCTYPE x []>",
		"<!ELEMENT a (b",
		"<!ELEMENT a ((b)>",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	d, err := Parse(proteinDTDFragment)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(d.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !d.Equal(d2) {
		t.Errorf("round trip differs:\n%s\n%s", d, d2)
	}
}

const sampleDoc = `<db>
  <entry><name>alpha</name><score>1</score><score>2</score></entry>
  <entry><name>beta</name></entry>
  <note>some <b>bold</b> text</note>
</db>`

func TestExtraction(t *testing.T) {
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(sampleDoc)); err != nil {
		t.Fatalf("AddDocument: %v", err)
	}
	if x.Root() != "db" {
		t.Errorf("Root = %q", x.Root())
	}
	seqs := x.Sequences["entry"]
	if seqs.Total() != 2 || seqs.Unique() != 2 {
		t.Fatalf("entry sequences = %v", seqs.Strings())
	}
	if strings.Join(seqs.SeqStrings(0), " ") != "name score score" || strings.Join(seqs.SeqStrings(1), " ") != "name" {
		t.Errorf("entry sequences = %v", seqs.Strings())
	}
	if !x.HasText["name"] || x.HasText["entry"] {
		t.Errorf("HasText wrong: %v", x.HasText)
	}
	if !x.HasText["note"] {
		t.Error("note should have text")
	}
}

func TestExtractionRejectsBadXML(t *testing.T) {
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader("<a><b></a>")); err == nil {
		t.Fatal("want error on mismatched tags")
	}
}

func TestInferDTDFullPipeline(t *testing.T) {
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(sampleDoc)); err != nil {
		t.Fatal(err)
	}
	d, err := x.InferDTD(func(sample [][]string) (*regex.Expr, error) {
		return gfa.Rewrite(soa.Infer(sample))
	})
	if err != nil {
		t.Fatalf("InferDTD: %v", err)
	}
	if d.Root != "db" {
		t.Errorf("root = %s", d.Root)
	}
	if got := d.Elements["entry"].Model.String(); got != "name score*" {
		t.Errorf("entry model = %q, want \"name score*\"", got)
	}
	if d.Elements["name"].Type != PCData {
		t.Errorf("name should be #PCDATA")
	}
	if d.Elements["note"].Type != Mixed {
		t.Errorf("note should be mixed, got %v", d.Elements["note"].Type)
	}
	// The inferred DTD must validate the document it came from.
	v := NewValidator(d)
	violations, err := v.Validate(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("inferred DTD rejects its own sample: %v", violations)
	}
}

func TestValidator(t *testing.T) {
	d := MustParse(`<!DOCTYPE db [
<!ELEMENT db (entry+)>
<!ELEMENT entry (name,score*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT score (#PCDATA)>
]>`)
	v := NewValidator(d)
	valid := `<db><entry><name>x</name><score>1</score></entry></db>`
	if !v.ValidDocument(valid) {
		t.Error("valid document rejected")
	}
	tests := []struct {
		doc    string
		reason string
	}{
		{`<db></db>`, "children [] do not match"},
		{`<db><entry><score>1</score></entry></db>`, "do not match"},
		{`<db><entry><name>x</name></entry><bogus/></db>`, "not declared"},
		{`<entry><name>x</name></entry>`, "root"},
		{`<db><entry><name>x</name>loose text</entry></db>`, "character data"},
		{`<db><entry><name>x<b/></name></entry></db>`, "child elements"},
	}
	for _, tc := range tests {
		violations, err := v.Validate(strings.NewReader(tc.doc))
		if err != nil {
			t.Fatalf("Validate(%q): %v", tc.doc, err)
		}
		found := false
		for _, viol := range violations {
			if strings.Contains(viol.String(), tc.reason) {
				found = true
			}
		}
		if !found {
			t.Errorf("doc %q: want violation containing %q, got %v", tc.doc, tc.reason, violations)
		}
	}
}

func TestValidatorEmptyAndMixed(t *testing.T) {
	d := MustParse(`<!DOCTYPE a [
<!ELEMENT a (b,c)>
<!ELEMENT b EMPTY>
<!ELEMENT c (#PCDATA|d)*>
<!ELEMENT d (#PCDATA)>
]>`)
	v := NewValidator(d)
	if !v.ValidDocument(`<a><b/><c>x<d>y</d>z</c></a>`) {
		t.Error("valid mixed document rejected")
	}
	if v.ValidDocument(`<a><b>no</b><c/></a>`) {
		t.Error("EMPTY with content accepted")
	}
	if v.ValidDocument(`<a><b/><c><b/></c></a>`) {
		t.Error("mixed with disallowed child accepted")
	}
}

func TestDTDEqual(t *testing.T) {
	d1 := MustParse(`<!ELEMENT a (b|c)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`)
	d2 := MustParse(`<!ELEMENT a (c|b)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`)
	if !d1.Equal(d2) {
		t.Error("union order must not matter")
	}
	d3 := MustParse(`<!ELEMENT a (b)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`)
	if d1.Equal(d3) {
		t.Error("different models must differ")
	}
}

func TestDTDEqualAttributeValuesElementwise(t *testing.T) {
	// Joining values with "|" would conflate {"a|b"} with {"a","b"}.
	mk := func(values []string) *DTD {
		d := New("r")
		d.Declare(&Element{Name: "r", Type: Empty})
		d.DeclareAttribute("r", &Attribute{Name: "k", Type: Enumerated, Values: values})
		return d
	}
	if mk([]string{"a|b"}).Equal(mk([]string{"a", "b"})) {
		t.Error(`{"a|b"} must not equal {"a","b"}`)
	}
	if !mk([]string{"a", "b"}).Equal(mk([]string{"a", "b"})) {
		t.Error("identical enumerations must be equal")
	}
	if mk([]string{"a", "b"}).Equal(mk([]string{"a", "c"})) {
		t.Error("different enumerations must differ")
	}
}

func TestExtractionIgnoresCommentsAndPIs(t *testing.T) {
	doc := `<?xml version="1.0"?>
<!-- leading comment -->
<r><?pi data?><a>x</a><!-- inner --><a>y</a></r>`
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if got := x.Sequences["r"]; got.Total() != 1 || strings.Join(got.SeqStrings(0), " ") != "a a" {
		t.Errorf("sequences = %v", got.Strings())
	}
	if x.HasText["r"] {
		t.Error("comments and PIs must not count as text")
	}
}

func TestExtractionCDATAIsText(t *testing.T) {
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(`<r><a><![CDATA[raw <text>]]></a></r>`)); err != nil {
		t.Fatal(err)
	}
	if !x.HasText["a"] {
		t.Error("CDATA must count as character data")
	}
	if got := x.TextSamples["a"]; len(got) != 1 || got[0] != "raw <text>" {
		t.Errorf("TextSamples = %v", got)
	}
}

func TestExtractionNamespacesUseLocalNames(t *testing.T) {
	doc := `<ns:r xmlns:ns="http://example.com/x"><ns:a/><other:a xmlns:other="http://example.com/y"/></ns:r>`
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if got := x.Sequences["r"]; got.Total() != 1 || strings.Join(got.SeqStrings(0), " ") != "a a" {
		t.Errorf("sequences = %v (namespaced elements should use local names)", got.Strings())
	}
}

func TestExtractionUnicodeNamesAndText(t *testing.T) {
	doc := `<日誌><項目>値段は¥100</項目></日誌>`
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if x.Root() != "日誌" {
		t.Errorf("root = %q", x.Root())
	}
	if !x.HasText["項目"] {
		t.Error("unicode text lost")
	}
	d, err := x.InferDTD(func(sample [][]string) (*regex.Expr, error) {
		return gfa.Rewrite(soa.Infer(sample))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["日誌"].Model.String(); got != "項目" {
		t.Errorf("model = %q", got)
	}
	// The unicode DTD round-trips through its textual form.
	if _, err := Parse(d.String()); err != nil {
		t.Errorf("unicode DTD does not re-parse: %v\n%s", err, d)
	}
}

func TestExtractionDeeplyNestedDocument(t *testing.T) {
	var b strings.Builder
	const depth = 2000
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	x := NewExtraction()
	if err := x.AddDocument(strings.NewReader(b.String())); err != nil {
		t.Fatal(err)
	}
	if x.Sequences["d"].Total() != depth {
		t.Errorf("got %d d-sequences", x.Sequences["d"].Total())
	}
}
