package datagen

import (
	"math/rand"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
	"dtdinfer/internal/soa"
)

func TestSampleStringsAreMembers(t *testing.T) {
	s := NewSampler(1)
	alpha := []string{"a", "b", "c", "d"}
	for i := 0; i < 100; i++ {
		e := regextest.RandomExpr(rand.New(rand.NewSource(int64(i))), alpha, 4)
		a := automata.Glushkov(e)
		for j := 0; j < 20; j++ {
			if w := s.Sample(e); !a.Member(w) {
				t.Fatalf("sampled %v not in L(%s)", w, e)
			}
		}
	}
}

func TestSampleRespectsRepeatBounds(t *testing.T) {
	s := NewSampler(2)
	e := regex.MustParse("a{2,4}")
	for i := 0; i < 200; i++ {
		w := s.Sample(e)
		if len(w) < 2 || len(w) > 4 {
			t.Fatalf("sample %v violates {2,4}", w)
		}
	}
}

func TestEdgeCoverSampleIsRepresentative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alpha := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < 300; i++ {
		e := regextest.RandomSORE(rng, alpha, 3)
		ws := EdgeCoverSample(e)
		got := soa.Infer(ws)
		if !got.Representative(e) {
			t.Fatalf("edge cover of %s is not representative:\nwant %s\ngot  %s",
				e, soa.FromExpr(e), got)
		}
		// Every string must be a member of L(e).
		g := automata.Glushkov(e)
		for _, w := range ws {
			if !g.Member(w) {
				t.Fatalf("edge-cover string %v not in L(%s)", w, e)
			}
		}
	}
}

func TestEdgeCoverIncludesEpsilonForNullable(t *testing.T) {
	ws := EdgeCoverSample(regex.MustParse("(a b)?"))
	foundEmpty := false
	for _, w := range ws {
		if len(w) == 0 {
			foundEmpty = true
		}
	}
	if !foundEmpty {
		t.Error("nullable expression needs an ε witness")
	}
}

func TestRepresentativeSampleSizeAndCoverage(t *testing.T) {
	s := NewSampler(4)
	e := regex.MustParse("((b?(a + c))+d)+e")
	ws := RepresentativeSample(s, e, 50)
	if len(ws) != 50 {
		t.Fatalf("size = %d", len(ws))
	}
	if !soa.Infer(ws).Representative(e) {
		t.Fatal("sample not representative")
	}
}

func TestRepresentativeSamplePanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	RepresentativeSample(NewSampler(5), regex.MustParse("((b?(a + c))+d)+e"), 1)
}

func TestSamplerDeterminism(t *testing.T) {
	e := regex.MustParse("(a + b)+ c?")
	w1 := NewSampler(7).SampleN(e, 10)
	w2 := NewSampler(7).SampleN(e, 10)
	for i := range w1 {
		if len(w1[i]) != len(w2[i]) {
			t.Fatal("same seed must give same sample")
		}
		for j := range w1[i] {
			if w1[i][j] != w2[i][j] {
				t.Fatal("same seed must give same sample")
			}
		}
	}
}
