package datagen

import (
	"strings"
	"testing"

	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
)

func TestDocGeneratorValidatesAgainstItsDTD(t *testing.T) {
	d := dtd.MustParse(`<!DOCTYPE r [
<!ELEMENT r (head,item+,foot?)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT item (sku,(price|quote),note*)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT quote (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT foot EMPTY>
]>`)
	g := &DocGenerator{DTD: d, Sampler: NewSampler(1)}
	v := dtd.NewValidator(d)
	for i, doc := range g.GenerateN(100) {
		violations, err := v.Validate(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("document %d malformed: %v\n%s", i, err, doc)
		}
		if len(violations) != 0 {
			t.Fatalf("document %d invalid: %v\n%s", i, violations, doc)
		}
	}
}

func TestDocGeneratorRecursiveDTDTerminates(t *testing.T) {
	d := dtd.MustParse(`<!DOCTYPE tree [
<!ELEMENT tree (node)>
<!ELEMENT node (leaf|node,node?)>
<!ELEMENT leaf EMPTY>
]>`)
	g := &DocGenerator{DTD: d, Sampler: NewSampler(2), MaxDepth: 6}
	for i := 0; i < 50; i++ {
		doc := g.Generate()
		if strings.Count(doc, "<node>") > 1<<12 {
			t.Fatalf("runaway recursion: %d nodes", strings.Count(doc, "<node>"))
		}
	}
}

func TestDocGeneratorMixedAndText(t *testing.T) {
	d := dtd.MustParse(`<!DOCTYPE p [
<!ELEMENT p (#PCDATA|b)*>
<!ELEMENT b (#PCDATA)>
]>`)
	g := &DocGenerator{
		DTD:     d,
		Sampler: NewSampler(3),
		Text:    func(e string) string { return "<" + e + "&>" },
	}
	sawChild := false
	for i := 0; i < 40; i++ {
		doc := g.Generate()
		if strings.Contains(doc, "<p&") || strings.Contains(doc, "< p") {
			t.Fatalf("text not escaped: %s", doc)
		}
		if !strings.Contains(doc, "&lt;p&amp;&gt;") {
			t.Fatalf("custom text missing or badly escaped: %s", doc)
		}
		if strings.Contains(doc, "<b>") {
			sawChild = true
		}
	}
	if !sawChild {
		t.Error("mixed content never produced a child element")
	}
}

func TestMinimalString(t *testing.T) {
	tests := []struct {
		expr string
		want int
	}{
		{"a b c", 3},
		{"a?", 0},
		{"a*", 0},
		{"a+", 1},
		{"a + b c", 1},
		{"a{3}", 3},
		{"(a + b?) c", 1}, // b? branch empty, then c
	}
	for _, tc := range tests {
		got := minimalString(regex.MustParse(tc.expr))
		if len(got) != tc.want {
			t.Errorf("minimalString(%q) = %v (len %d), want len %d",
				tc.expr, got, len(got), tc.want)
		}
	}
}

func TestDocGeneratorUndeclaredElement(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (ghost)>`)
	g := &DocGenerator{DTD: d, Sampler: NewSampler(4)}
	doc := g.Generate()
	if !strings.Contains(doc, "<ghost/>") {
		t.Errorf("undeclared children render as empty elements, got %s", doc)
	}
}
