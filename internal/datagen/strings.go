// Package datagen generates synthetic samples from regular expressions and
// DTDs. It stands in for the ToXgene generator used in the paper's
// experiments (Section 8): real corpora for expressions outside the simple
// classes were not available, so the authors generated data "taking care
// that all relevant examples where present to ensure the target expression
// could be learned". RepresentativeSample reproduces exactly that: a sample
// whose 2T-INF automaton has no missing edges with respect to the target.
package datagen

import (
	"math/rand"
	"sort"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/regex"
)

// Sampler draws random strings from a regular expression. Repetition
// operators continue with probability Continue (default 1/2), truncated at
// MaxReps (default 8) to bound string lengths.
type Sampler struct {
	Rng      *rand.Rand
	Continue float64
	MaxReps  int
}

// NewSampler returns a sampler with the default distribution.
func NewSampler(seed int64) *Sampler {
	return &Sampler{Rng: rand.New(rand.NewSource(seed)), Continue: 0.5, MaxReps: 8}
}

func (s *Sampler) reps() int {
	n := 1
	for n < s.maxReps() && s.Rng.Float64() < s.cont() {
		n++
	}
	return n
}

func (s *Sampler) cont() float64 {
	if s.Continue == 0 {
		return 0.5
	}
	return s.Continue
}

func (s *Sampler) maxReps() int {
	if s.MaxReps == 0 {
		return 8
	}
	return s.MaxReps
}

// Sample draws one random string of L(e).
func (s *Sampler) Sample(e *regex.Expr) []string {
	var out []string
	s.sampleInto(e, &out)
	return out
}

// SampleN draws n random strings of L(e).
func (s *Sampler) SampleN(e *regex.Expr, n int) [][]string {
	out := make([][]string, n)
	for i := range out {
		out[i] = s.Sample(e)
	}
	return out
}

func (s *Sampler) sampleInto(e *regex.Expr, out *[]string) {
	switch e.Op {
	case regex.OpSymbol:
		*out = append(*out, e.Name)
	case regex.OpConcat:
		for _, sub := range e.Subs {
			s.sampleInto(sub, out)
		}
	case regex.OpUnion:
		s.sampleInto(e.Subs[s.Rng.Intn(len(e.Subs))], out)
	case regex.OpOpt:
		if s.Rng.Intn(2) == 0 {
			s.sampleInto(e.Sub(), out)
		}
	case regex.OpPlus:
		for i, n := 0, s.reps(); i < n; i++ {
			s.sampleInto(e.Sub(), out)
		}
	case regex.OpStar:
		if s.Rng.Intn(2) == 0 {
			return
		}
		for i, n := 0, s.reps(); i < n; i++ {
			s.sampleInto(e.Sub(), out)
		}
	case regex.OpRepeat:
		n := e.Min
		if e.Max == regex.Unbounded {
			n += s.reps() - 1
		} else if e.Max > e.Min {
			n += s.Rng.Intn(e.Max - e.Min + 1)
		}
		for i := 0; i < n; i++ {
			s.sampleInto(e.Sub(), out)
		}
	}
}

// EdgeCoverSample returns a small set of strings of L(e) witnessing every
// transition of the Glushkov automaton of e (and ε when e is nullable).
// Every accepting path of the Glushkov automaton spells a string of L(e),
// so one shortest path through each transition yields a sample whose
// 2T-INF automaton covers every 2-gram, first symbol and last symbol that
// e can realize — a representative sample in the Section 4 sense. For a
// SORE the Glushkov automaton is the SOA itself (Proposition 1), making
// the inferred SOA equal to SOA(e).
func EdgeCoverSample(e *regex.Expr) [][]string {
	a := automata.Glushkov(e)
	var out [][]string
	if e.Nullable() {
		out = append(out, nil)
	}
	prefix := shortestPrefixes(a)
	suffix := shortestSuffixes(a)
	for s := 0; s < a.NumStates; s++ {
		if prefix[s] == nil && s != 0 {
			continue // unreachable position
		}
		for _, sym := range sortedSyms(a.Trans[s]) {
			for _, t := range a.Trans[s][sym] {
				tail, ok := suffix[t]
				if !ok {
					continue // dead position
				}
				w := append(append([]string{}, prefix[s]...), sym)
				w = append(w, tail...)
				out = append(out, w)
			}
		}
	}
	return out
}

// sortedSyms keeps sample generation deterministic despite map iteration.
func sortedSyms(m map[string][]int) []string {
	out := make([]string, 0, len(m))
	for sym := range m {
		out = append(out, sym)
	}
	sort.Strings(out)
	return out
}

// shortestPrefixes returns, per state, the symbols along a shortest path
// from the start state to it (nil slice for the start itself).
func shortestPrefixes(a *automata.NFA) map[int][]string {
	out := map[int][]string{0: {}}
	frontier := []int{0}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, sym := range sortedSyms(a.Trans[s]) {
			for _, t := range a.Trans[s][sym] {
				if _, ok := out[t]; ok {
					continue
				}
				out[t] = append(append([]string{}, out[s]...), sym)
				frontier = append(frontier, t)
			}
		}
	}
	return out
}

// shortestSuffixes returns, per state, the symbols along a shortest path
// from it to an accepting state (empty slice when the state accepts).
func shortestSuffixes(a *automata.NFA) map[int][]string {
	// Reverse BFS over transitions.
	type rev struct {
		from int
		sym  string
	}
	incoming := make(map[int][]rev)
	for s := 0; s < a.NumStates; s++ {
		for _, sym := range sortedSyms(a.Trans[s]) {
			for _, t := range a.Trans[s][sym] {
				incoming[t] = append(incoming[t], rev{from: s, sym: sym})
			}
		}
	}
	out := map[int][]string{}
	var frontier []int
	for s := 0; s < a.NumStates; s++ {
		if a.Accept[s] {
			out[s] = []string{}
			frontier = append(frontier, s)
		}
	}
	for len(frontier) > 0 {
		t := frontier[0]
		frontier = frontier[1:]
		for _, r := range incoming[t] {
			if _, ok := out[r.from]; ok {
				continue
			}
			out[r.from] = append([]string{r.sym}, out[t]...)
			frontier = append(frontier, r.from)
		}
	}
	return out
}

// RepresentativeSample returns a sample of exactly n strings of L(e) whose
// 2T-INF automaton equals the automaton of the SORE e: the edge-cover
// strings padded with random draws and shuffled deterministically. It
// panics if n is smaller than the size of the edge cover.
func RepresentativeSample(s *Sampler, e *regex.Expr, n int) [][]string {
	base := EdgeCoverSample(e)
	if n < len(base) {
		panic("datagen: representative sample size below edge-cover size")
	}
	for len(base) < n {
		base = append(base, s.Sample(e))
	}
	s.Rng.Shuffle(len(base), func(i, j int) {
		base[i], base[j] = base[j], base[i]
	})
	return base
}
