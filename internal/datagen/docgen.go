package datagen

import (
	"fmt"
	"strings"

	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
)

// DocGenerator synthesizes XML documents conforming to a DTD, the
// document-level counterpart of the string sampler (our stand-in for
// ToXgene). Recursion is depth-bounded: beyond MaxDepth, optional content
// is dropped and repetitions are minimized so documents stay finite even
// for recursive DTDs.
type DocGenerator struct {
	DTD *dtd.DTD
	// Sampler drives all random choices.
	Sampler *Sampler
	// MaxDepth bounds element nesting; 0 means 12.
	MaxDepth int
	// Text supplies character data for (#PCDATA) elements; nil uses a
	// fixed placeholder.
	Text func(element string) string
}

// Generate returns one document as a string.
func (g *DocGenerator) Generate() string {
	var b strings.Builder
	g.element(&b, g.DTD.Root, 0)
	return b.String()
}

// GenerateN returns n documents.
func (g *DocGenerator) GenerateN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.Generate()
	}
	return out
}

func (g *DocGenerator) maxDepth() int {
	if g.MaxDepth == 0 {
		return 12
	}
	return g.MaxDepth
}

func (g *DocGenerator) text(name string) string {
	if g.Text != nil {
		return g.Text(name)
	}
	return "text"
}

func (g *DocGenerator) element(b *strings.Builder, name string, depth int) {
	e := g.DTD.Elements[name]
	if e == nil || e.Type == dtd.Empty {
		fmt.Fprintf(b, "<%s/>", name)
		return
	}
	fmt.Fprintf(b, "<%s>", name)
	switch e.Type {
	case dtd.PCData, dtd.Any:
		b.WriteString(xmlEscape(g.text(name)))
	case dtd.Mixed:
		b.WriteString(xmlEscape(g.text(name)))
		if depth < g.maxDepth() && len(e.MixedNames) > 0 && g.Sampler.Rng.Intn(2) == 0 {
			child := e.MixedNames[g.Sampler.Rng.Intn(len(e.MixedNames))]
			g.element(b, child, depth+1)
			b.WriteString(xmlEscape(g.text(name)))
		}
	case dtd.Children:
		var children []string
		if depth >= g.maxDepth() {
			children = minimalString(e.Model)
		} else {
			children = g.Sampler.Sample(e.Model)
		}
		for _, c := range children {
			g.element(b, c, depth+1)
		}
	}
	fmt.Fprintf(b, "</%s>", name)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// minimalString returns a shortest derivation of e, used to terminate
// recursive content models at the depth bound.
func minimalString(e *regex.Expr) []string {
	switch e.Op {
	case regex.OpSymbol:
		return []string{e.Name}
	case regex.OpConcat:
		var out []string
		for _, s := range e.Subs {
			out = append(out, minimalString(s)...)
		}
		return out
	case regex.OpUnion:
		best := minimalString(e.Subs[0])
		for _, s := range e.Subs[1:] {
			if m := minimalString(s); len(m) < len(best) {
				best = m
			}
		}
		return best
	case regex.OpOpt, regex.OpStar:
		return nil
	case regex.OpPlus:
		return minimalString(e.Sub())
	case regex.OpRepeat:
		var out []string
		m := minimalString(e.Sub())
		for i := 0; i < e.Min; i++ {
			out = append(out, m...)
		}
		return out
	}
	return nil
}
