package numpred

import (
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/regex"
)

func split(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		for _, r := range w {
			out[i] = append(out[i], string(r))
		}
	}
	return out
}

// The paper's Section 9 example: strings of the shape aab+ refine to
// a{2} b{2,}.
func TestRefinePaperExample(t *testing.T) {
	e := regex.MustParse("a+ b+")
	sample := split("aabb", "aabbb", "aabbbb")
	got := Refine(e, sample)
	if got.String() != "a{2} b{2,}" {
		t.Errorf("Refine = %q, want %q", got, "a{2} b{2,}")
	}
}

func TestRefineKeepsSingleRuns(t *testing.T) {
	e := regex.MustParse("a+ b")
	got := Refine(e, split("ab", "aab"))
	if got.String() != "a+ b" {
		t.Errorf("Refine = %q, want unchanged", got)
	}
}

func TestRefineDisjunctionClass(t *testing.T) {
	e := regex.MustParse("(a + b)+ c")
	got := Refine(e, split("abc", "bac", "aabc"))
	if got.String() != "(a + b){2,} c" {
		t.Errorf("Refine = %q, want (a + b){2,} c", got)
	}
}

func TestRefineLeavesStarAndOpt(t *testing.T) {
	e := regex.MustParse("a* b?")
	got := Refine(e, split("aa", "b", "aab"))
	if got.String() != "a* b?" {
		t.Errorf("Refine = %q, want unchanged", got)
	}
}

func TestRefineSkipsComplexOperands(t *testing.T) {
	e := regex.MustParse("(a b)+")
	got := Refine(e, split("abab"))
	if got.String() != "(a b)+" {
		t.Errorf("Refine = %q, want unchanged", got)
	}
}

func TestRefineResultCoversSample(t *testing.T) {
	e := regex.MustParse("a+ (b + c)+ d?")
	sample := split("aabbc", "aaabcbd", "aacc")
	got := Refine(e, sample)
	for _, w := range sample {
		if !automata.ExprMember(regex.ExpandRepeats(got), w) {
			t.Errorf("refined %s rejects sample %v", got, w)
		}
	}
	// And the refinement is a restriction of the original language.
	if !automata.ExprIncludes(e, regex.ExpandRepeats(got)) {
		t.Errorf("refined %s is not a subset of %s", got, e)
	}
}

func TestRunStats(t *testing.T) {
	min, max, seen := runStats(map[string]bool{"a": true}, split("aaba", "xx"))
	if !seen || min != 1 || max != 2 {
		t.Errorf("runStats = %d %d %v", min, max, seen)
	}
	_, _, seen = runStats(map[string]bool{"q": true}, split("ab"))
	if seen {
		t.Error("q never occurs")
	}
}
