// Package numpred implements the numerical-predicates extension of
// Section 9: SOREs and CHAREs can only count "zero, one or more", so a
// post-processing step rewrites r+ into r{m,} or r{m} based on the exact
// occurrence counts in the sample — the paper's example being aabb+
// refined to a{2} b{2,} (rendered in XML Schema as minOccurs/maxOccurs).
package numpred

import (
	"dtdinfer/internal/regex"
	"dtdinfer/internal/sample"
)

// Refine rewrites the repeatable factors of e whose operand is a single
// symbol or a disjunction of symbols, using run statistics from the sample:
//
//   - x+ becomes x{m} when every maximal run of x-symbols in the sample has
//     length exactly m >= 2, and x{m,} when the shortest run has length
//     m >= 2;
//   - x* and x? are left alone: "absent or at least m" is not expressible
//     as a single {m,n} bound.
//
// Other subexpressions are preserved. The result denotes a subset of L(e)
// that still contains every sample string.
func Refine(e *regex.Expr, sample [][]string) *regex.Expr {
	return refine(e, func(class map[string]bool) (min, max int, seen bool) {
		return runStats(class, sample)
	})
}

// RefineSample is Refine on a counted, interned sample. The minimal and
// maximal run lengths are scanned over each unique sequence once —
// multiplicities cannot change a min or max, so the result is identical to
// Refine on the expanded strings at a fraction of the scanning cost.
func RefineSample(e *regex.Expr, s *sample.Set) *regex.Expr {
	return refine(e, func(class map[string]bool) (min, max int, seen bool) {
		return runStatsSample(class, s)
	})
}

// statsFunc reports the shortest and longest maximal run of class symbols
// over the whole sample, and whether any run occurred.
type statsFunc func(class map[string]bool) (min, max int, seen bool)

func refine(e *regex.Expr, stats statsFunc) *regex.Expr {
	if e.Op == regex.OpPlus {
		if class, ok := symbolClass(e.Sub()); ok {
			min, max, seen := stats(class)
			switch {
			case !seen || min < 2:
				return e
			case min == max:
				return regex.Repeat(e.Sub(), min, min)
			default:
				return regex.Repeat(e.Sub(), min, regex.Unbounded)
			}
		}
	}
	if e.Subs == nil {
		return e
	}
	c := &regex.Expr{Op: e.Op, Name: e.Name, Min: e.Min, Max: e.Max}
	c.Subs = make([]*regex.Expr, len(e.Subs))
	for i, s := range e.Subs {
		c.Subs[i] = refine(s, stats)
	}
	return c
}

// symbolClass returns the symbol set of a plain symbol or a disjunction of
// symbols.
func symbolClass(e *regex.Expr) (map[string]bool, bool) {
	switch e.Op {
	case regex.OpSymbol:
		return map[string]bool{e.Name: true}, true
	case regex.OpUnion:
		out := map[string]bool{}
		for _, s := range e.Subs {
			if s.Op != regex.OpSymbol {
				return nil, false
			}
			out[s.Name] = true
		}
		return out, true
	}
	return nil, false
}

// runTracker accumulates min/max over maximal run lengths.
type runTracker struct {
	min, max int
	seen     bool
	run      int
}

func (t *runTracker) step(inClass bool) {
	if inClass {
		t.run++
		return
	}
	t.flush()
}

func (t *runTracker) flush() {
	if t.run == 0 {
		return
	}
	if !t.seen || t.run < t.min {
		t.min = t.run
	}
	if t.run > t.max {
		t.max = t.run
	}
	t.seen = true
	t.run = 0
}

// runStats scans the sample for maximal runs of symbols from the class and
// returns the shortest and longest run lengths, plus whether any run was
// seen at all.
func runStats(class map[string]bool, sample [][]string) (min, max int, seen bool) {
	var t runTracker
	for _, w := range sample {
		for _, s := range w {
			t.step(class[s])
		}
		t.flush()
	}
	return t.min, t.max, t.seen
}

// runStatsSample scans each unique sequence of a counted sample once,
// resolving the class to interned IDs up front.
func runStatsSample(class map[string]bool, s *sample.Set) (min, max int, seen bool) {
	inClass := make([]bool, s.NumSymbols())
	for sym := range class {
		if id, ok := s.Lookup(sym); ok {
			inClass[id] = true
		}
	}
	var t runTracker
	s.ForEach(func(w []int32, _ int) {
		for _, id := range w {
			t.step(inClass[id])
		}
		t.flush()
	})
	return t.min, t.max, t.seen
}
