// Package numpred implements the numerical-predicates extension of
// Section 9: SOREs and CHAREs can only count "zero, one or more", so a
// post-processing step rewrites r+ into r{m,} or r{m} based on the exact
// occurrence counts in the sample — the paper's example being aabb+
// refined to a{2} b{2,} (rendered in XML Schema as minOccurs/maxOccurs).
package numpred

import (
	"dtdinfer/internal/regex"
)

// Refine rewrites the repeatable factors of e whose operand is a single
// symbol or a disjunction of symbols, using run statistics from the sample:
//
//   - x+ becomes x{m} when every maximal run of x-symbols in the sample has
//     length exactly m >= 2, and x{m,} when the shortest run has length
//     m >= 2;
//   - x* and x? are left alone: "absent or at least m" is not expressible
//     as a single {m,n} bound.
//
// Other subexpressions are preserved. The result denotes a subset of L(e)
// that still contains every sample string.
func Refine(e *regex.Expr, sample [][]string) *regex.Expr {
	return refine(e, sample)
}

func refine(e *regex.Expr, sample [][]string) *regex.Expr {
	if e.Op == regex.OpPlus {
		if class, ok := symbolClass(e.Sub()); ok {
			min, max, seen := runStats(class, sample)
			switch {
			case !seen || min < 2:
				return e
			case min == max:
				return regex.Repeat(e.Sub(), min, min)
			default:
				return regex.Repeat(e.Sub(), min, regex.Unbounded)
			}
		}
	}
	if e.Subs == nil {
		return e
	}
	c := &regex.Expr{Op: e.Op, Name: e.Name, Min: e.Min, Max: e.Max}
	c.Subs = make([]*regex.Expr, len(e.Subs))
	for i, s := range e.Subs {
		c.Subs[i] = refine(s, sample)
	}
	return c
}

// symbolClass returns the symbol set of a plain symbol or a disjunction of
// symbols.
func symbolClass(e *regex.Expr) (map[string]bool, bool) {
	switch e.Op {
	case regex.OpSymbol:
		return map[string]bool{e.Name: true}, true
	case regex.OpUnion:
		out := map[string]bool{}
		for _, s := range e.Subs {
			if s.Op != regex.OpSymbol {
				return nil, false
			}
			out[s.Name] = true
		}
		return out, true
	}
	return nil, false
}

// runStats scans the sample for maximal runs of symbols from the class and
// returns the shortest and longest run lengths, plus whether any run was
// seen at all.
func runStats(class map[string]bool, sample [][]string) (min, max int, seen bool) {
	for _, w := range sample {
		run := 0
		flush := func() {
			if run == 0 {
				return
			}
			if !seen || run < min {
				min = run
			}
			if run > max {
				max = run
			}
			seen = true
			run = 0
		}
		for _, s := range w {
			if class[s] {
				run++
			} else {
				flush()
			}
		}
		flush()
	}
	return min, max, seen
}
